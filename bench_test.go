package smrp

// The benchmark harness regenerates every figure of the paper's evaluation
// (§4) plus the in-text claims and the design ablations. Each benchmark
// prints the same rows/series the paper plots and reports the regeneration
// cost. Run with:
//
//	go test -bench=. -benchmem
//
// Full paper-scale scenario counts (10 topologies × 10 member sets) are used
// when -bench runs with -benchtime=1x or more; results land on stdout so
// EXPERIMENTS.md can record paper-vs-measured values.

import (
	"fmt"
	"testing"
	"time"
)

// paperScale are the scenario counts of §4.3.2–4.3.4: ten random topologies
// and ten member sets per topology.
const (
	paperTopologies = 10
	paperMemberSets = 10
	benchSeed       = 2005 // the paper's year; fixed for reproducibility
)

// BenchmarkFig7 regenerates Figure 7: the local-vs-global detour scatter
// over five random topologies (N=100, N_G=30, α=0.2, D_thresh=0.3) and the
// in-text ≈33% average reduction.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunFig7(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\nFigure 7: points=%d below-diagonal=%.1f%% mean-reduction=%.1f%%\n",
				len(res.Points), 100*res.BelowDiagonal, 100*res.MeanReduction)
		}
		b.ReportMetric(100*res.MeanReduction, "%reduction")
	}
}

// BenchmarkFig8 regenerates Figure 8: the D_thresh sweep with 95% CIs over
// 100 scenarios per point.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunFig8(paperTopologies, paperMemberSets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n%s", res.Render())
		}
		b.ReportMetric(100*res.Rows[2].RDRel.Mean, "%RDrel@0.3")
	}
}

// BenchmarkFig9 regenerates Figure 9: the α / average-node-degree sweep.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunFig9(paperTopologies, paperMemberSets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n%s", res.Render())
		}
		b.ReportMetric(100*res.Rows[len(res.Rows)-1].RDRel.Mean, "%RDrel@hi-deg")
	}
}

// BenchmarkFig10 regenerates Figure 10: the group-size sweep.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunFig10(paperTopologies, paperMemberSets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n%s", res.Render())
		}
		b.ReportMetric(100*res.Rows[len(res.Rows)-1].RDRel.Mean, "%RDrel@NG50")
	}
}

// BenchmarkDegree10 regenerates the §4.3.3 in-text claim: ≈12% recovery-path
// reduction persists when the average node degree approaches 10.
func BenchmarkDegree10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunDegree10(paperTopologies, paperMemberSets/2, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n%s", res.Render())
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.AvgDegree, "avg-degree")
		b.ReportMetric(100*last.RDRel.Mean, "%RDrel")
	}
}

// BenchmarkLatency regenerates the motivating claim at the message level:
// restoration latency of local detours vs. reconvergence-gated rejoins on
// the event-driven protocol implementations.
func BenchmarkLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunLatency(10, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n%s", res.Render())
		}
		b.ReportMetric(res.Speedup, "speedup-x")
	}
}

// BenchmarkHierarchy regenerates the §3.3.3 architecture comparison:
// recovery scope confined to one domain vs. the whole network.
func BenchmarkHierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunHierarchy(10, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n%s", res.Render())
		}
		b.ReportMetric(res.ScopeFlat.Mean/res.ScopeHier.Mean, "scope-shrink-x")
	}
}

// BenchmarkAblations regenerates the design-ablation table: local detour on
// the SPF tree (tree shape vs. recovery strategy), the §3.3.1 query scheme,
// §3.3.2 deferred SHR maintenance, and §3.2.3 reshaping variants — all
// measured on identical scenario sets.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunAblations(5, 4, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n%s", res.Render())
		}
		for _, row := range res.Rows {
			if row.Name == "smrp-full" {
				b.ReportMetric(100*row.RDRel.Mean, "%RDrel-full")
			}
		}
	}
}

// BenchmarkChurn regenerates the reshaping-under-churn extension study
// (§3.2.3's motivation measured end to end).
func BenchmarkChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunChurn(5, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n%s", res.Render())
		}
		b.ReportMetric(100*res.Rows[len(res.Rows)-1].RDRel.Mean, "%RDrel-reshaped")
	}
}

// BenchmarkNLevel measures how recovery scope shrinks as hierarchy depth
// grows (the §3.3.3 N-level generalization).
func BenchmarkNLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunNLevel(10, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n%s", res.Render())
		}
		b.ReportMetric(res.ScopeFlat.Mean/res.ScopeLeaf.Mean, "scope-shrink-x")
	}
}

// BenchmarkProtection regenerates the related-work comparison: reactive
// recovery (SMRP, SPF) vs preplanned protection (Médard redundant trees,
// Han-Shin dependable connections) on biconnected topologies.
func BenchmarkProtection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunProtection(10, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n%s", res.Render())
		}
		b.ReportMetric(100*res.RedundantCoverage, "%redundant-coverage")
		b.ReportMetric(res.CostRedundant.Mean, "redundant-cost-x")
	}
}

// BenchmarkThroughput regenerates the sharded session-throughput study:
// sessions advancing concurrently on one shared topology and one shared
// lock-free SPF cache, each admitting a flash crowd through the batched
// join path and then riding a high-rate churn storm. The study's rendered
// counters are deterministic; the rates reported here are this machine's
// wall clock over them.
func BenchmarkThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		start := time.Now()
		res, err := RunThroughput(10, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		wall := time.Since(start).Seconds()
		if i == 0 {
			fmt.Printf("\n%s", res.Render())
		}
		b.ReportMetric(float64(res.Joins)/wall, "joins/sec")
		b.ReportMetric(float64(res.Events)/wall, "events/sec")
		b.ReportMetric(100*res.SettledReduction(), "%settled-reduction")
	}
}

// BenchmarkJoin measures the cost of a single SMRP join on the default
// evaluation topology (the protocol's critical path).
func BenchmarkJoin(b *testing.B) {
	net, err := GenerateWaxman(100, 0.2, DefaultBeta, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sess, err := NewSession(net, 0, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		rng := NewRNG(uint64(i))
		members := rng.Sample(99, 30)
		b.StartTimer()
		for _, m := range members {
			if _, err := sess.Join(NodeID(m + 1)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkLocalDetour measures the recovery-path computation itself.
func BenchmarkLocalDetour(b *testing.B) {
	net, err := GenerateWaxman(100, 0.2, DefaultBeta, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := NewSession(net, 0, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := NewRNG(benchSeed)
	for _, m := range rng.Sample(99, 30) {
		if _, err := sess.Join(NodeID(m + 1)); err != nil {
			b.Fatal(err)
		}
	}
	members := sess.Tree().Members()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := members[i%len(members)]
		f, err := WorstCaseFor(sess.Tree(), m)
		if err != nil {
			b.Fatal(err)
		}
		_, _, _ = LocalDetour(sess.Tree(), f.Mask(), m)
	}
}
