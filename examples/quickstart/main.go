// Quickstart: build a survivable multicast session on a random network,
// inspect the SHR path-sharing metric, break the worst link, and watch the
// session restore itself through local detours.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"smrp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A 100-node Waxman network, the topology model of the paper's
	// evaluation.
	net, err := smrp.GenerateWaxman(100, 0.2, smrp.DefaultBeta, 42)
	if err != nil {
		return err
	}
	fmt.Println("network:", smrp.DescribeTopology(net))

	// 2. An SMRP session with the paper's default D_thresh = 0.3.
	sess, err := smrp.NewSession(net, 0, smrp.DefaultConfig())
	if err != nil {
		return err
	}
	members := []smrp.NodeID{7, 19, 33, 51, 64, 88}
	for _, m := range members {
		res, err := sess.Join(m)
		if err != nil {
			return err
		}
		fmt.Printf("member %-3d joined via merger %-3d delay %.3f (SPF %.3f, SHR %d)\n",
			m, res.Merger, res.Delay, res.SPFDelay, res.MergerSHR)
	}

	// 3. The SHR metric: how many member paths share each on-tree node's
	// uplink toward the source.
	shr := smrp.ComputeSHR(sess.Tree())
	fmt.Printf("\ntree: %d nodes, cost ", sess.Tree().NumNodes())
	if cost, err := sess.Tree().Cost(); err == nil {
		fmt.Printf("%.3f\n", cost)
	}
	for _, m := range members {
		fmt.Printf("  SHR(S,%d) = %d\n", m, shr[m])
	}

	// 4. Break the worst-case link for the first member: the link right
	// next to the source on its multicast path.
	f, err := smrp.WorstCaseFor(sess.Tree(), members[0])
	if err != nil {
		return err
	}
	fmt.Printf("\ninjecting %v — disconnects %v\n", f, smrp.DisconnectedMembers(sess.Tree(), f.Mask()))

	// 5. Recover with local detours: each cut member reconnects to the nearest
	// unaffected on-tree node instead of waiting for routing to reconverge.
	rep, err := sess.Recover(f)
	if err != nil {
		return err
	}
	for m, rd := range rep.RecoveryDistance {
		fmt.Printf("  member %-3d recovered via %v (RD %.3f)\n", m, rep.Detours[m], rd)
	}
	if len(rep.Unrecovered) > 0 {
		fmt.Println("  unrecoverable:", rep.Unrecovered)
	}
	fmt.Printf("total recovery distance: %.3f\n", rep.TotalRecoveryDistance())
	return sess.Tree().Validate()
}
