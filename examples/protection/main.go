// Protection: SMRP's reactive local detours side by side with the
// preplanned schemes from the paper's related work (§2) — Médard et al.
// redundant trees (instant switchover, two standing trees) and Han & Shin
// dependable primary/backup connections — on one biconnected network, under
// the same worst-case failure.
//
//	go run ./examples/protection
package main

import (
	"fmt"
	"log"

	"smrp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Preplanned protection needs redundancy to exist: sample a biconnected
	// Waxman network.
	var net *smrp.Network
	for seed := uint64(0); ; seed++ {
		g, err := smrp.GenerateWaxman(40, 0.6, 0.4, seed)
		if err != nil {
			return err
		}
		if g.Biconnected(nil) {
			net = g
			break
		}
		if seed > 200 {
			return fmt.Errorf("no biconnected sample found")
		}
	}
	fmt.Println("network:", smrp.DescribeTopology(net))
	source := smrp.NodeID(0)
	members := []smrp.NodeID{5, 11, 23, 31, 37}

	// Reactive: an SMRP session.
	sess, err := smrp.NewSession(net, source, smrp.DefaultConfig())
	if err != nil {
		return err
	}
	// Preplanned: Médard red/blue trees and Han–Shin channel pairs.
	rt, err := smrp.BuildRedundantTrees(net, source)
	if err != nil {
		return err
	}
	dep, err := smrp.NewDependableSession(net, source)
	if err != nil {
		return err
	}
	for _, m := range members {
		if _, err := sess.Join(m); err != nil {
			return err
		}
		if err := rt.Subscribe(m); err != nil {
			return err
		}
		if _, err := dep.Join(m); err != nil {
			return err
		}
	}

	smrpCost, err := sess.Tree().Cost()
	if err != nil {
		return err
	}
	redCost, err := rt.PrunedCost()
	if err != nil {
		return err
	}
	depCost, err := dep.ReservedCost()
	if err != nil {
		return err
	}
	fmt.Printf("\nstanding resource usage:\n")
	fmt.Printf("  SMRP tree:                 %.3f\n", smrpCost)
	fmt.Printf("  redundant trees (2, pruned): %.3f (%.1fx)\n", redCost, redCost/smrpCost)
	fmt.Printf("  dependable channels:       %.3f (%.1fx)\n", depCost, depCost/smrpCost)

	// Worst-case failure for the first member on the SMRP tree.
	victim := members[0]
	f, err := smrp.WorstCaseFor(sess.Tree(), victim)
	if err != nil {
		return err
	}
	fmt.Printf("\ninjecting %v (worst case for member %d)\n\n", f, victim)

	// Reactive recovery: a short search, then a short new path.
	_, rd, err := smrp.LocalDetour(sess.Tree(), f.Mask(), victim)
	if err != nil {
		fmt.Println("  SMRP: unrecoverable for this member")
	} else {
		fmt.Printf("  SMRP local detour:     recovery distance %.3f (reactive)\n", rd)
	}
	// Preplanned: no search at all.
	reach := rt.Survives(f.Mask(), victim)
	fmt.Printf("  redundant trees:       red-alive=%v blue-alive=%v (instant switchover)\n",
		reach.ViaRed, reach.ViaBlue)
	outcome, err := dep.Failover(f.Mask(), victim)
	if err != nil {
		return err
	}
	fmt.Printf("  dependable channels:   %v\n", outcome)
	return nil
}
