// Videoconf: the paper's motivating application class — a QoS-sensitive
// video conference that cannot tolerate long service disruptions. Twelve
// receivers join an event-driven session; mid-conference a backbone link is
// cut. The example runs SMRP and the SPF/PIM baseline side by side on the
// discrete-event simulator and compares how long each receiver's video
// stream stayed dark.
//
//	go run ./examples/videoconf
package main

import (
	"fmt"
	"log"

	"smrp"
)

const (
	netSize   = 100
	receivers = 12
	failAt    = smrp.SimTime(300)
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := smrp.GenerateWaxman(netSize, 0.2, smrp.DefaultBeta, 77)
	if err != nil {
		return err
	}

	// The conference source: the best-connected router (the studio uplink).
	source := smrp.NodeID(0)
	for n := 1; n < net.NumNodes(); n++ {
		if net.Degree(smrp.NodeID(n)) > net.Degree(source) {
			source = smrp.NodeID(n)
		}
	}
	rng := smrp.NewRNG(77)
	var members []smrp.NodeID
	for _, id := range rng.Sample(netSize, receivers+1) {
		if smrp.NodeID(id) != source && len(members) < receivers {
			members = append(members, smrp.NodeID(id))
		}
	}
	fmt.Printf("video conference: source %d, %d receivers\n", source, len(members))

	cfg := smrp.DefaultProtocolConfig()
	smrpInst, err := smrp.NewSMRPInstance(net, source, cfg)
	if err != nil {
		return err
	}
	spfInst, err := smrp.NewSPFInstance(net, source, cfg)
	if err != nil {
		return err
	}

	// Receivers trickle in over the first minute of the call.
	for k, m := range members {
		at := smrp.SimTime(2 * (k + 1))
		if err := smrpInst.ScheduleJoin(at, m); err != nil {
			return err
		}
		if err := spfInst.ScheduleJoin(at, m); err != nil {
			return err
		}
	}
	if err := smrpInst.Run(200); err != nil {
		return err
	}
	if err := spfInst.Run(200); err != nil {
		return err
	}

	// Mid-conference, a backbone fiber is cut: the worst-case link for the
	// keynote viewer (the first receiver) in each protocol's own tree.
	victim := members[0]
	fSMRP, err := smrp.WorstCaseFor(smrpInst.Session().Tree(), victim)
	if err != nil {
		return err
	}
	fSPF, err := smrp.WorstCaseFor(spfInst.Session().Tree(), victim)
	if err != nil {
		return err
	}
	fmt.Printf("\nt=%.0f: fiber cut — SMRP tree loses %v, SPF tree loses %v\n",
		float64(failAt),
		smrp.DisconnectedMembers(smrpInst.Session().Tree(), fSMRP.Mask()),
		smrp.DisconnectedMembers(spfInst.Session().Tree(), fSPF.Mask()))
	if err := smrpInst.InjectFailure(failAt, fSMRP); err != nil {
		return err
	}
	if err := spfInst.InjectFailure(failAt, fSPF); err != nil {
		return err
	}
	if err := smrpInst.Run(2000); err != nil {
		return err
	}
	if err := spfInst.Run(2000); err != nil {
		return err
	}

	fmt.Println("\nscreen-dark time per recovered receiver:")
	fmt.Printf("  %-10s %-28s %-28s\n", "receiver", "SMRP (local detour)", "SPF/PIM (reconvergence)")
	smrpLat := latencies(smrpInst.Restorations())
	spfLat := latencies(spfInst.Restorations())
	var sSum, gSum float64
	var count int
	for _, m := range members {
		s, okS := smrpLat[m]
		g, okG := spfLat[m]
		if !okS && !okG {
			continue
		}
		fmt.Printf("  %-10d %-28s %-28s\n", m, renderLatency(s, okS), renderLatency(g, okG))
		if okS && okG {
			sSum += s
			gSum += g
			count++
		}
	}
	if count > 0 {
		fmt.Printf("\naverage disruption: SMRP %.2f vs SPF %.2f — %.1fx faster restoration\n",
			sSum/float64(count), gSum/float64(count), gSum/sSum)
	} else {
		fmt.Println("\nno receiver was disconnected by this cut (or none was recoverable)")
	}
	return nil
}

func latencies(rs []smrp.Restoration) map[smrp.NodeID]float64 {
	out := make(map[smrp.NodeID]float64, len(rs))
	for _, r := range rs {
		out[r.Member] = float64(r.Latency)
	}
	return out
}

func renderLatency(v float64, ok bool) string {
	if !ok {
		return "—"
	}
	return fmt.Sprintf("%.3f", v)
}
