// Hierarchy: the paper's §3.3.3 recovery architecture on a transit–stub
// internetwork. Receivers are clustered into stub recovery domains, each
// with an agent relaying from the level-0 core tree; a link failure inside
// one stub is recovered entirely inside that domain, leaving every other
// domain (and the core) untouched.
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"

	"smrp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ts, err := smrp.GenerateTransitStub(smrp.DefaultTransitStubConfig(), 19)
	if err != nil {
		return err
	}
	fmt.Printf("transit–stub network: %s\n", smrp.DescribeTopology(ts.Graph))
	fmt.Printf("  %d-node transit core, %d stub domains of %d nodes each\n",
		len(ts.Transit.Nodes), len(ts.Stubs), len(ts.Stubs[0].Nodes))

	// Source inside the first stub domain.
	var src smrp.NodeID = smrp.Invalid
	for _, n := range ts.Stubs[0].Nodes {
		if n != ts.Stubs[0].Gateway {
			src = n
			break
		}
	}
	sess, err := smrp.NewHierarchicalSession(ts, src, smrp.DefaultConfig())
	if err != nil {
		return err
	}

	// Two receivers per stub domain.
	joined := 0
	for i := range ts.Stubs {
		count := 0
		for _, n := range ts.Stubs[i].Nodes {
			if n == ts.Stubs[i].Gateway || n == src {
				continue
			}
			if err := sess.Join(n); err != nil {
				return err
			}
			joined++
			if count++; count == 2 {
				break
			}
		}
	}
	fmt.Printf("source %d (stub %d), %d receivers across %d domains\n\n",
		src, ts.Stubs[0].ID, joined, len(ts.Stubs))

	for _, m := range sess.Members() {
		d, err := sess.EndToEndDelay(m)
		if err != nil {
			return err
		}
		fmt.Printf("  receiver %-4d domain %-2d end-to-end delay %.3f\n",
			m, ts.DomainOf(m).ID, d)
	}

	// Fail the worst-case link for a receiver in a non-source stub.
	var victim smrp.NodeID = smrp.Invalid
	var victimDomain int
	for _, m := range sess.Members() {
		if d := ts.DomainOf(m); d.ID != ts.Stubs[0].ID {
			victim, victimDomain = m, d.ID
			break
		}
	}
	stubSess, nm, err := sess.StubTree(victimDomain)
	if err != nil {
		return err
	}
	sub, _ := nm.ToSub(victim)
	fSub, err := smrp.WorstCaseFor(stubSess.Tree(), sub)
	if err != nil {
		return err
	}
	a, _ := nm.ToFull(fSub.Edge.A)
	b, _ := nm.ToFull(fSub.Edge.B)
	f := smrp.LinkDown(a, b)
	fmt.Printf("\ninjecting %v inside stub domain %d (victim receiver %d)\n", f, victimDomain, victim)

	rep, err := sess.Recover(f)
	if err != nil {
		return err
	}
	fmt.Printf("recovery handled at level %d, domain %d\n", rep.Level, rep.DomainID)
	fmt.Printf("  reconfiguration scope: %d nodes (network has %d — %.0f%% untouched)\n",
		rep.NodesInDomain, ts.Graph.NumNodes(),
		100*(1-float64(rep.NodesInDomain)/float64(ts.Graph.NumNodes())))
	fmt.Printf("  members re-grafted inside the domain: %d, total RD %.3f\n",
		len(rep.Heal.RecoveryDistance), rep.Heal.TotalRecoveryDistance())
	if len(rep.Heal.Unrecovered) > 0 {
		fmt.Printf("  unrecoverable inside the domain (cut edge): %v\n", rep.Heal.Unrecovered)
	}
	return sess.Validate()
}
