// Reshaping: a step-by-step replay of the paper's worked example
// (Figures 4 and 5) on the exact fixture topology: members E, G and F join
// under D_thresh = 0.3, and F's arrival triggers Condition-I tree reshaping
// at E, which switches from the crowded D branch to the fresh C branch.
//
//	go run ./examples/reshaping
package main

import (
	"fmt"
	"log"
	"sort"

	"smrp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := smrp.PaperFig4()
	if err != nil {
		return err
	}
	names := smrp.Fig4Nodes()
	name := func(n smrp.NodeID) string { return names[n] }

	sess, err := smrp.NewSession(net, 0, smrp.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Println("Figure 4/5 walkthrough (D_thresh = 0.3)")
	fmt.Println("=======================================")

	joinOrder := []smrp.NodeID{4, 5, 6} // E, G, F
	for _, m := range joinOrder {
		res, err := sess.Join(m)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s joins:\n", name(m))
		fmt.Printf("  selected path  : %s\n", renderPath(res.Connection, name))
		fmt.Printf("  merger         : %s (SHR %d)\n", name(res.Merger), res.MergerSHR)
		fmt.Printf("  delay          : %.2f (unicast SPF %.2f, bound %.2f)\n",
			res.Delay, res.SPFDelay, 1.3*res.SPFDelay)
		if len(res.Reshaped) > 0 {
			for _, r := range res.Reshaped {
				p, _ := sess.Tree().PathToSource(r)
				fmt.Printf("  ⟳ Condition I reshaped %s onto %s\n", name(r), renderPath(p, name))
			}
		}
		printSHR(sess, name)
	}

	fmt.Println("\nFinal tree (matches the paper's Figure 5(d)):")
	for _, m := range sess.Tree().Members() {
		p, err := sess.Tree().PathToSource(m)
		if err != nil {
			return err
		}
		fmt.Printf("  %s: %s\n", name(m), renderPath(p, name))
	}
	return sess.Tree().Validate()
}

func renderPath(p smrp.Path, name func(smrp.NodeID) string) string {
	out := ""
	for i, n := range p {
		if i > 0 {
			out += "→"
		}
		out += name(n)
	}
	return out
}

func printSHR(sess *smrp.Session, name func(smrp.NodeID) string) {
	snap := sess.SHRSnapshot()
	ids := make([]smrp.NodeID, 0, len(snap))
	for n := range snap {
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Printf("  SHR            :")
	for _, n := range ids {
		fmt.Printf(" %s=%d", name(n), snap[n])
	}
	fmt.Println()
}
