// Serve: the smrp-serve control plane driven end to end over HTTP. Boots
// the server in-process on an ephemeral port, then acts as a client:
// creates sessions, subscribes to a Server-Sent-Events feed, joins
// receivers, injects a node failure (recovered by SMRP local detours),
// repairs it, and drains the server gracefully — printing the event feed
// the whole way.
//
//	go run ./examples/serve
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"

	"smrp/internal/graph"
	"smrp/internal/server"
	"smrp/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func post(base, path string, body any) (int, map[string]any, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out, nil
}

func run() error {
	// One shared 60-node Waxman topology for every session the server hosts.
	g, err := topology.Waxman(topology.WaxmanConfig{
		N: 60, Alpha: 0.25, Beta: topology.DefaultBeta, EnsureConnected: true,
	}, topology.NewRNG(2005))
	if err != nil {
		return err
	}

	reg := server.NewRegistry(g, server.RegistryConfig{Generation: 1})
	srv := server.New(reg, server.Config{})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	served := make(chan error, 1)
	go func() {
		served <- srv.ListenAndServe(ctx, "127.0.0.1:0", func(addr string) { ready <- addr })
	}()
	base := "http://" + <-ready
	fmt.Printf("control plane up at %s\n\n", base)

	// Create a session rooted at node 0.
	code, info, err := post(base, "/v1/sessions", map[string]any{"source": 0})
	if err != nil || code != http.StatusCreated {
		return fmt.Errorf("create session: status %d err %v", code, err)
	}
	id := info["id"].(string)
	fmt.Printf("created session %s (source 0)\n", id)

	// Tail the session's SSE feed concurrently, exactly as a monitoring
	// client would.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(base + "/v1/sessions/" + id + "/events")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		var kind string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				kind = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				var ev struct {
					Seq  uint64       `json:"seq"`
					Node graph.NodeID `json:"node"`
				}
				_ = json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev)
				fmt.Printf("  feed: #%-3d %-9s node=%d\n", ev.Seq, kind, ev.Node)
			}
		}
	}()

	// Join a handful of receivers.
	for _, n := range []graph.NodeID{10, 20, 30, 40, 50} {
		code, _, err := post(base, fmt.Sprintf("/v1/sessions/%s/join", id), map[string]any{"node": n})
		if err != nil {
			return err
		}
		fmt.Printf("join %-2d -> %d\n", n, code)
	}

	// Persistent failure: take down a node; the server heals the session
	// with SMRP local detours and parks anything partitioned.
	code, rep, err := post(base, fmt.Sprintf("/v1/sessions/%s/fail", id),
		map[string]any{"nodes": []int{20}})
	if err != nil {
		return err
	}
	fmt.Printf("fail node 20 -> %d %v\n", code, rep["detours"])

	// Repair it: parked members are readmitted.
	code, _, err = post(base, fmt.Sprintf("/v1/sessions/%s/repair", id),
		map[string]any{"nodes": []int{20}})
	if err != nil {
		return err
	}
	fmt.Printf("repair node 20 -> %d\n", code)

	// Per-session stats and process metrics.
	resp, err := http.Get(base + "/v1/sessions/" + id + "/stats")
	if err != nil {
		return err
	}
	var stats map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	fmt.Printf("stats: %v\n", stats["stats"])

	// Graceful drain: the feed receives a final closed snapshot, then ends.
	fmt.Println("\ndraining...")
	cancel()
	if err := <-served; err != nil {
		return err
	}
	wg.Wait()
	fmt.Println("drained cleanly")
	return nil
}
