package smrp

import (
	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/hierarchy"
	"smrp/internal/protocol"
	"smrp/internal/topology"
)

// Sentinel errors re-exported from the internal layers. Every error returned
// by the public API wraps one of these (or a stdlib sentinel such as
// context.Canceled), so callers can branch with errors.Is instead of
// matching message text:
//
//	if _, err := sess.Join(n); errors.Is(err, smrp.ErrPartitioned) {
//	    // n is cut off by the accumulated failures; it is parked and will
//	    // be re-admitted automatically once a Repair restores a path.
//	}
var (
	// ErrUnknownNode is returned when an operation names a node outside the
	// network graph.
	ErrUnknownNode = graph.ErrUnknownNode
	// ErrAlreadyMember is returned when a join names an existing member.
	ErrAlreadyMember = core.ErrAlreadyMember
	// ErrNotMember is returned when a member operation names a non-member.
	ErrNotMember = core.ErrNotMember
	// ErrNoPath is returned when a joining node cannot reach the tree at all.
	ErrNoPath = core.ErrNoPath
	// ErrNoCandidate is returned when a joiner is reachable but every
	// candidate connection is excluded (wraps ErrNoPath).
	ErrNoCandidate = core.ErrNoCandidate
	// ErrPartitioned is returned when a member is genuinely cut off from the
	// source by the accumulated failures. The member is parked and
	// re-admitted automatically on Repair.
	ErrPartitioned = core.ErrPartitioned
	// ErrBadConfig is returned by session-configuration validation.
	ErrBadConfig = core.ErrBadConfig

	// ErrNotDisconnected is returned when recovery is requested for a member
	// the failure did not cut off.
	ErrNotDisconnected = failure.ErrNotDisconnected
	// ErrUnrecoverable is returned when no residual path can restore a
	// member.
	ErrUnrecoverable = failure.ErrUnrecoverable
	// ErrSourceFailed is returned when a failure takes down the multicast
	// source itself.
	ErrSourceFailed = failure.ErrSourceFailed
	// ErrMemberFailed is returned when recovery is requested for a member
	// that failed itself.
	ErrMemberFailed = failure.ErrMemberFailed
	// ErrBadSchedule is returned when a failure schedule is structurally
	// invalid (unordered, empty events, bad chaos parameters).
	ErrBadSchedule = failure.ErrBadSchedule

	// ErrNoDomain is returned when a node belongs to no recovery domain.
	ErrNoDomain = hierarchy.ErrUnknownNode
	// ErrOutsideDomains is returned when a failure touches no recovery
	// domain.
	ErrOutsideDomains = hierarchy.ErrFailureOutsideDomains
	// ErrUnsupportedFailure is returned when a recovery model cannot
	// attribute the failure kind to a domain.
	ErrUnsupportedFailure = hierarchy.ErrUnsupportedFailure

	// ErrBadTopologyConfig is returned by topology-generator validation.
	ErrBadTopologyConfig = topology.ErrBadConfig
	// ErrBadProtocolConfig is returned by protocol-configuration validation.
	ErrBadProtocolConfig = protocol.ErrBadConfig
	// ErrPastEvent is returned when a protocol event is scheduled before the
	// simulator's current virtual time.
	ErrPastEvent = protocol.ErrPastEvent
)
