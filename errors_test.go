package smrp_test

import (
	"errors"
	"testing"

	"smrp"
)

// TestPublicSentinels exercises the re-exported sentinel errors through the
// public API only: every failure mode must be matchable with errors.Is on a
// smrp.Err* value.
func TestPublicSentinels(t *testing.T) {
	net, err := smrp.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := smrp.NewSession(net, 0, smrp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Join(3); err != nil {
		t.Fatal(err)
	}

	if _, err := sess.Join(99); !errors.Is(err, smrp.ErrUnknownNode) {
		t.Errorf("Join(99) = %v, want ErrUnknownNode", err)
	}
	if _, err := sess.Join(3); !errors.Is(err, smrp.ErrAlreadyMember) {
		t.Errorf("re-Join = %v, want ErrAlreadyMember", err)
	}

	// Cut every link around member 4's would-be attachment: joining it under
	// the accumulated mask degrades gracefully to the parked state.
	if _, err := sess.Join(4); err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Recover(smrp.SRLG(net, 4)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unrecovered) != 1 || rep.Unrecovered[0] != 4 {
		t.Fatalf("Unrecovered = %v, want [4]", rep.Unrecovered)
	}
	if !sess.IsParked(4) {
		t.Fatal("member 4 should be parked")
	}
	if _, _, err := sess.RecoverMember(4); !errors.Is(err, smrp.ErrPartitioned) {
		t.Errorf("RecoverMember(parked) = %v, want ErrPartitioned", err)
	}

	// Repair re-admits automatically.
	rr, err := sess.Repair(smrp.SRLG(net, 4)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Readmitted) != 1 || rr.Readmitted[0] != 4 {
		t.Fatalf("Readmitted = %v, want [4]", rr.Readmitted)
	}

	// Configuration and schedule validation sentinels.
	bad := smrp.DefaultConfig()
	bad.DThresh = -1
	if _, err := smrp.NewSession(net, 0, bad); !errors.Is(err, smrp.ErrBadConfig) {
		t.Errorf("NewSession(bad config) = %v, want ErrBadConfig", err)
	}
	if _, err := smrp.GenerateWaxman(0, 0.2, smrp.DefaultBeta, 1); !errors.Is(err, smrp.ErrBadTopologyConfig) {
		t.Errorf("GenerateWaxman(0 nodes) = %v, want ErrBadTopologyConfig", err)
	}
	s := smrp.FailureSchedule{Events: []smrp.FailureEvent{{At: 1}}}
	if err := s.Validate(); !errors.Is(err, smrp.ErrBadSchedule) {
		t.Errorf("Validate(empty event) = %v, want ErrBadSchedule", err)
	}
	cfg := smrp.DefaultChaosConfig()
	cfg.Events = 0
	if _, err := smrp.RandomSchedule(net, 0, nil, cfg, smrp.NewRNG(1)); !errors.Is(err, smrp.ErrBadSchedule) {
		t.Errorf("RandomSchedule(bad config) = %v, want ErrBadSchedule", err)
	}
}
