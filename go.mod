module smrp

go 1.22
