package smrp

import (
	"smrp/internal/experiment"
	"smrp/internal/faultisolation"
	"smrp/internal/protect"
	"smrp/internal/workload"
)

// Preplanned-protection aliases (the related-work baselines of §2).
type (
	// RedundantTrees is a Médard-style red/blue tree pair: any single
	// link/node failure leaves every member attached via one tree.
	RedundantTrees = protect.RedundantTrees
	// DependableSession manages Han & Shin-style primary/backup channels.
	DependableSession = protect.DependableSession
	// DependableConnection is one receiver's primary/backup pair.
	DependableConnection = protect.DependableConnection
	// FailoverOutcome describes how a preplanned channel weathers a failure.
	FailoverOutcome = protect.FailoverOutcome
)

// Re-exported failover outcomes.
const (
	PrimaryUnaffected = protect.PrimaryUnaffected
	SwitchedToBackup  = protect.SwitchedToBackup
	BothChannelsDown  = protect.BothChannelsDown
)

// Preplanned-protection constructors.
var (
	// BuildRedundantTrees constructs the red/blue pair on a biconnected
	// network.
	BuildRedundantTrees = protect.BuildRedundantTrees
	// NewDependableSession creates a primary/backup channel manager.
	NewDependableSession = protect.NewDependableSession
)

// Fault-isolation aliases (reference [1]'s role in the hierarchical
// architecture: find which domain a failure is in from reachability alone).
type (
	// FaultObservation records which members still receive data.
	FaultObservation = faultisolation.Observation
	// FaultSuspect is one candidate failure location.
	FaultSuspect = faultisolation.Suspect
)

// Fault-isolation functions.
var (
	// IsolateFault infers the failed tree link(s) from an observation.
	IsolateFault = faultisolation.Isolate
	// ObserveFailure produces the observation a failure mask would cause.
	ObserveFailure = faultisolation.ObserveFailure
	// NewFaultObservation builds an observation from the reachable members.
	NewFaultObservation = faultisolation.NewObservation
)

// Workload aliases (membership churn schedules).
type (
	// ChurnConfig parameterizes churn generation.
	ChurnConfig = workload.Config
	// ChurnSchedule is a time-ordered join/leave schedule.
	ChurnSchedule = workload.Schedule
	// ChurnEvent is one membership change.
	ChurnEvent = workload.Event
)

// GenerateChurn builds a deterministic churn schedule.
var GenerateChurn = workload.Generate

// ProtectionResult compares reactive recovery with preplanned protection.
type ProtectionResult = experiment.ProtectionResult

// RunProtection executes the reactive-vs-preplanned comparison.
var RunProtection = experiment.RunProtection
