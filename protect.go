package smrp

import (
	"context"

	"smrp/internal/experiment"
	"smrp/internal/faultisolation"
	"smrp/internal/protect"
	"smrp/internal/workload"
)

// Preplanned-protection aliases (the related-work baselines of §2).
type (
	// RedundantTrees is a Médard-style red/blue tree pair: any single
	// link/node failure leaves every member attached via one tree.
	RedundantTrees = protect.RedundantTrees
	// DependableSession manages Han & Shin-style primary/backup channels.
	DependableSession = protect.DependableSession
	// DependableConnection is one receiver's primary/backup pair.
	DependableConnection = protect.DependableConnection
	// FailoverOutcome describes how a preplanned channel weathers a failure.
	FailoverOutcome = protect.FailoverOutcome
)

// Re-exported failover outcomes.
const (
	PrimaryUnaffected = protect.PrimaryUnaffected
	SwitchedToBackup  = protect.SwitchedToBackup
	BothChannelsDown  = protect.BothChannelsDown
)

// BuildRedundantTrees constructs the red/blue pair on a biconnected network.
func BuildRedundantTrees(g *Network, source NodeID) (*RedundantTrees, error) {
	return protect.BuildRedundantTrees(g, source)
}

// NewDependableSession creates a primary/backup channel manager.
func NewDependableSession(g *Network, source NodeID) (*DependableSession, error) {
	return protect.NewDependableSession(g, source)
}

// Fault-isolation aliases (reference [1]'s role in the hierarchical
// architecture: find which domain a failure is in from reachability alone).
type (
	// FaultObservation records which members still receive data.
	FaultObservation = faultisolation.Observation
	// FaultSuspect is one candidate failure location.
	FaultSuspect = faultisolation.Suspect
)

// IsolateFault infers the failed tree link(s) from an observation.
func IsolateFault(t *Tree, obs FaultObservation) ([]FaultSuspect, error) {
	return faultisolation.Isolate(t, obs)
}

// ObserveFailure produces the observation a failure mask would cause.
func ObserveFailure(t *Tree, mask *Mask) FaultObservation {
	return faultisolation.ObserveFailure(t, mask)
}

// NewFaultObservation builds an observation from the reachable members.
func NewFaultObservation(reachable []NodeID) FaultObservation {
	return faultisolation.NewObservation(reachable)
}

// Workload aliases (membership churn schedules).
type (
	// ChurnConfig parameterizes churn generation.
	ChurnConfig = workload.Config
	// ChurnSchedule is a time-ordered join/leave schedule.
	ChurnSchedule = workload.Schedule
	// ChurnEvent is one membership change.
	ChurnEvent = workload.Event
)

// GenerateChurn builds a deterministic churn schedule.
func GenerateChurn(cfg ChurnConfig, rng *RNG) (*ChurnSchedule, error) {
	return workload.Generate(cfg, rng)
}

// ProtectionResult compares reactive recovery with preplanned protection.
type ProtectionResult = experiment.ProtectionResult

// RunProtection executes the reactive-vs-preplanned comparison.
func RunProtection(runs int, seed uint64) (*ProtectionResult, error) {
	return experiment.RunProtection(runs, seed)
}

// RunProtectionCtx is RunProtection under a caller-supplied context.
func RunProtectionCtx(ctx context.Context, runs int, seed uint64) (*ProtectionResult, error) {
	return experiment.RunProtectionCtx(ctx, runs, seed)
}
