package smrp

import (
	"context"

	"smrp/internal/eventsim"
	"smrp/internal/experiment"
	"smrp/internal/hierarchy"
	"smrp/internal/metrics"
	"smrp/internal/protocol"
	"smrp/internal/routing"
	"smrp/internal/topology"
	"smrp/internal/trace"
)

// Tracing aliases: structured event logs for protocol runs.
type (
	// TraceLog records protocol events (joins, failures, recoveries) with
	// virtual timestamps; install via SMRPInstance.SetTrace.
	TraceLog = trace.Log
	// TraceEntry is one recorded protocol event.
	TraceEntry = trace.Entry
)

// NewTraceLog returns an event log bounded to capacity entries (0 =
// unbounded).
func NewTraceLog(capacity int) *TraceLog { return trace.New(capacity) }

// Event-driven protocol aliases (the ns2-equivalent message-level layer).
type (
	// SimTime is virtual simulation time (edge-weight units).
	SimTime = eventsim.Time
	// ProtocolConfig parameterizes the message-level protocol instances.
	ProtocolConfig = protocol.Config
	// SMRPInstance is an event-driven SMRP session.
	SMRPInstance = protocol.SMRPInstance
	// SPFInstance is an event-driven SPF baseline session.
	SPFInstance = protocol.SPFInstance
	// Restoration records one member's recovery timing.
	Restoration = protocol.Restoration
	// RoutingConfig models unicast reconvergence timing.
	RoutingConfig = routing.Config
)

// DefaultProtocolConfig returns the message-level protocol defaults.
func DefaultProtocolConfig() ProtocolConfig { return protocol.DefaultConfig() }

// NewSMRPInstance builds an event-driven SMRP protocol instance.
func NewSMRPInstance(net *Network, source NodeID, cfg ProtocolConfig) (*SMRPInstance, error) {
	return protocol.NewSMRPInstance(net, source, cfg)
}

// NewSPFInstance builds an event-driven SPF baseline instance.
func NewSPFInstance(net *Network, source NodeID, cfg ProtocolConfig) (*SPFInstance, error) {
	return protocol.NewSPFInstance(net, source, cfg)
}

// Hierarchical recovery aliases (§3.3.3).
type (
	// HierarchicalSession runs SMRP per recovery domain over a transit–stub
	// topology, confining failures to the domain where they occur.
	HierarchicalSession = hierarchy.Session
	// DomainRecoveryReport describes a domain-confined recovery.
	DomainRecoveryReport = hierarchy.RecoveryReport
	// NLevelSession generalizes the recovery architecture to N levels.
	NLevelSession = hierarchy.NLevelSession
	// NLevelTopology is an N-level hierarchical network.
	NLevelTopology = topology.NLevelTopology
	// NLevelConfig parameterizes the N-level generator.
	NLevelConfig = topology.NLevelConfig
)

// NewHierarchicalSession builds a hierarchical SMRP session over ts with
// the true multicast source at src (inside a stub domain).
func NewHierarchicalSession(ts *TransitStub, src NodeID, cfg Config) (*HierarchicalSession, error) {
	return hierarchy.New(ts, src, cfg)
}

// GenerateNLevel builds an N-level hierarchical network.
func GenerateNLevel(cfg NLevelConfig, seed uint64) (*NLevelTopology, error) {
	return topology.GenerateNLevel(cfg, topology.NewRNG(seed))
}

// DefaultNLevelConfig returns a 3-level hierarchy configuration.
func DefaultNLevelConfig() NLevelConfig { return topology.DefaultNLevelConfig() }

// NewNLevelSession builds an N-level hierarchical SMRP session.
func NewNLevelSession(t *NLevelTopology, src NodeID, cfg Config) (*NLevelSession, error) {
	return hierarchy.NewNLevel(t, src, cfg)
}

// Statistics aliases.
type (
	// MetricSample accumulates observations.
	MetricSample = metrics.Sample
	// MetricSummary is mean/std/CI95/min/max of a sample.
	MetricSummary = metrics.Summary
)

// Experiment-harness aliases: each Run* regenerates one piece of the
// paper's evaluation (see EXPERIMENTS.md for the index).
type (
	// ExperimentBase is the shared N/N_G/α/D_thresh setup.
	ExperimentBase = experiment.Base
	// Fig7Result is the local-vs-global detour scatter (§4.3.1).
	Fig7Result = experiment.Fig7Result
	// SweepResult is a Figure 8/9/10-style parameter sweep.
	SweepResult = experiment.SweepResult
	// AblationResult is the design-ablation study.
	AblationResult = experiment.AblationResult
	// LatencyResult is the message-level restoration-latency comparison.
	LatencyResult = experiment.LatencyResult
	// HierResult is the hierarchical-recovery comparison.
	HierResult = experiment.HierResult
	// ChurnResult is the reshaping-under-churn study.
	ChurnResult = experiment.ChurnResult
	// NLevelResult is the N-level recovery-scope study.
	NLevelResult = experiment.NLevelResult
	// ChaosResult is the multi-failure chaos harness summary.
	ChaosResult = experiment.ChaosResult
	// StrategiesResult is the three-way recovery-strategy testbed summary.
	StrategiesResult = experiment.StrategiesResult
	// StrategyArm is one strategy's aggregate outcome within a
	// StrategiesResult.
	StrategyArm = experiment.StrategyArm
	// ThroughputResult is the sharded session-throughput study summary.
	ThroughputResult = experiment.ThroughputResult
	// MegascaleResult is the flat-vs-hierarchical scaling study summary.
	MegascaleResult = experiment.MegascaleResult
	// MultigroupResult is the thousands-of-groups shared-topology study
	// summary.
	MultigroupResult = experiment.MultigroupResult
)

// RunFig7 reproduces Figure 7 (5 topologies, default parameters).
func RunFig7(seed uint64) (*Fig7Result, error) { return experiment.RunFig7(seed) }

// RunFig7Ctx is RunFig7 under a caller-supplied context: a cancelled ctx
// stops trial dispatch promptly and returns ctx.Err(). The same contract
// holds for every Run*Ctx variant below.
func RunFig7Ctx(ctx context.Context, seed uint64) (*Fig7Result, error) {
	return experiment.RunFig7Ctx(ctx, seed)
}

// RunFig8 reproduces Figure 8 (the D_thresh sweep).
func RunFig8(nTopo, nSets int, seed uint64) (*SweepResult, error) {
	return experiment.RunFig8(nTopo, nSets, seed)
}

// RunFig8Ctx is RunFig8 under a caller-supplied context.
func RunFig8Ctx(ctx context.Context, nTopo, nSets int, seed uint64) (*SweepResult, error) {
	return experiment.RunFig8Ctx(ctx, nTopo, nSets, seed)
}

// RunFig9 reproduces Figure 9 (the α / node-degree sweep).
func RunFig9(nTopo, nSets int, seed uint64) (*SweepResult, error) {
	return experiment.RunFig9(nTopo, nSets, seed)
}

// RunFig9Ctx is RunFig9 under a caller-supplied context.
func RunFig9Ctx(ctx context.Context, nTopo, nSets int, seed uint64) (*SweepResult, error) {
	return experiment.RunFig9Ctx(ctx, nTopo, nSets, seed)
}

// RunFig10 reproduces Figure 10 (the group-size sweep).
func RunFig10(nTopo, nSets int, seed uint64) (*SweepResult, error) {
	return experiment.RunFig10(nTopo, nSets, seed)
}

// RunFig10Ctx is RunFig10 under a caller-supplied context.
func RunFig10Ctx(ctx context.Context, nTopo, nSets int, seed uint64) (*SweepResult, error) {
	return experiment.RunFig10Ctx(ctx, nTopo, nSets, seed)
}

// RunDegree10 reproduces the §4.3.3 in-text high-connectivity study.
func RunDegree10(nTopo, nSets int, seed uint64) (*SweepResult, error) {
	return experiment.RunDegree10(nTopo, nSets, seed)
}

// RunDegree10Ctx is RunDegree10 under a caller-supplied context.
func RunDegree10Ctx(ctx context.Context, nTopo, nSets int, seed uint64) (*SweepResult, error) {
	return experiment.RunDegree10Ctx(ctx, nTopo, nSets, seed)
}

// RunAblations executes the design ablations from DESIGN.md.
func RunAblations(nTopo, nSets int, seed uint64) (*AblationResult, error) {
	return experiment.RunAblations(nTopo, nSets, seed)
}

// RunAblationsCtx is RunAblations under a caller-supplied context.
func RunAblationsCtx(ctx context.Context, nTopo, nSets int, seed uint64) (*AblationResult, error) {
	return experiment.RunAblationsCtx(ctx, nTopo, nSets, seed)
}

// RunLatency measures restoration latency on the event-driven protocols.
func RunLatency(runs int, seed uint64) (*LatencyResult, error) {
	return experiment.RunLatency(runs, seed)
}

// RunLatencyCtx is RunLatency under a caller-supplied context.
func RunLatencyCtx(ctx context.Context, runs int, seed uint64) (*LatencyResult, error) {
	return experiment.RunLatencyCtx(ctx, runs, seed)
}

// RunHierarchy compares hierarchical and flat recovery scope.
func RunHierarchy(runs int, seed uint64) (*HierResult, error) {
	return experiment.RunHierarchy(runs, seed)
}

// RunHierarchyCtx is RunHierarchy under a caller-supplied context.
func RunHierarchyCtx(ctx context.Context, runs int, seed uint64) (*HierResult, error) {
	return experiment.RunHierarchyCtx(ctx, runs, seed)
}

// RunChurn studies reshaping under membership churn (§3.2.3).
func RunChurn(runs int, seed uint64) (*ChurnResult, error) {
	return experiment.RunChurn(runs, seed)
}

// RunChurnCtx is RunChurn under a caller-supplied context.
func RunChurnCtx(ctx context.Context, runs int, seed uint64) (*ChurnResult, error) {
	return experiment.RunChurnCtx(ctx, runs, seed)
}

// RunNLevel measures recovery-scope shrink under N-level hierarchies.
func RunNLevel(runs int, seed uint64) (*NLevelResult, error) {
	return experiment.RunNLevel(runs, seed)
}

// RunNLevelCtx is RunNLevel under a caller-supplied context.
func RunNLevelCtx(ctx context.Context, runs int, seed uint64) (*NLevelResult, error) {
	return experiment.RunNLevelCtx(ctx, runs, seed)
}

// RunChaos replays seeded multi-failure schedules (overlapping failures,
// SRLG bursts, full partitions, repairs) through both the algorithmic
// session and the message-level protocol, checking a structural-invariant
// oracle after every event. A healthy build reports zero violations.
func RunChaos(trials int, seed uint64) (*ChaosResult, error) {
	return experiment.RunChaos(trials, seed)
}

// RunChaosCtx is RunChaos under a caller-supplied context.
func RunChaosCtx(ctx context.Context, trials int, seed uint64) (*ChaosResult, error) {
	return experiment.RunChaosCtx(ctx, trials, seed)
}

// RunStrategies plays seeded chaos schedules three-way — SMRP local detours
// vs MRC backup configurations vs Bhosle–Gonzalez precomputed detours —
// through the RecoveryStrategy seam, checking the chaos invariant oracle
// after every event for every arm, and reports recovery distance,
// disruption, settled-node work (precompute vs recovery time) and
// precomputed-state bytes per strategy.
func RunStrategies(trials int, seed uint64) (*StrategiesResult, error) {
	return experiment.RunStrategies(trials, seed)
}

// RunStrategiesCtx is RunStrategies under a caller-supplied context.
func RunStrategiesCtx(ctx context.Context, trials int, seed uint64) (*StrategiesResult, error) {
	return experiment.RunStrategiesCtx(ctx, trials, seed)
}

// RunThroughput advances many independent sessions concurrently on one
// shared topology with one shared SPF cache: each shard admits a flash
// crowd through the batched join path (against a one-at-a-time reference
// twin) and then plays a high-rate join/leave churn schedule. Output is
// byte-identical for any worker count.
func RunThroughput(sessions int, seed uint64) (*ThroughputResult, error) {
	return experiment.RunThroughput(sessions, seed)
}

// RunThroughputCtx is RunThroughput under a caller-supplied context.
func RunThroughputCtx(ctx context.Context, sessions int, seed uint64) (*ThroughputResult, error) {
	return experiment.RunThroughputCtx(ctx, sessions, seed)
}

// RunMegascale compares flat against N-level hierarchical session
// architecture at growing network sizes: same membership and branch-cut
// recovery schedule on both arms, reported in deterministic settled-node
// counters and exact per-component byte accounting (never wall-clock). The
// headline: per-recovery-event work in the hierarchy is bounded by the
// domain size while the flat arm's grows with N.
func RunMegascale(sizes []int, groups int, seed uint64) (*MegascaleResult, error) {
	return experiment.RunMegascale(sizes, groups, seed)
}

// RunMegascaleCtx is RunMegascale under a caller-supplied context.
func RunMegascaleCtx(ctx context.Context, sizes []int, groups int, seed uint64) (*MegascaleResult, error) {
	return experiment.RunMegascaleCtx(ctx, sizes, groups, seed)
}

// RunMegascaleHier is the hierarchical-only megascale tier: the same
// membership and branch-cut schedule with the flat control arm skipped,
// which is what admits sizes up to N=10⁶ within a CI-sized budget (the
// hierarchy's per-event work stays domain-bounded at any N).
func RunMegascaleHier(sizes []int, groups int, seed uint64) (*MegascaleResult, error) {
	return experiment.RunMegascaleHier(sizes, groups, seed)
}

// RunMegascaleHierCtx is RunMegascaleHier under a caller-supplied context.
func RunMegascaleHierCtx(ctx context.Context, sizes []int, groups int, seed uint64) (*MegascaleResult, error) {
	return experiment.RunMegascaleHierCtx(ctx, sizes, groups, seed)
}

// RunMultigroup drives thousands of concurrent multicast groups — one
// sparse-storage session each, membership sizes on a Zipf popularity profile
// — over ONE shared megascale topology and ONE shared SPF cache, reporting
// deterministic per-group standing bytes, settled work per recovery event,
// and an in-study dense-twin comparison. Output is byte-identical for any
// worker count.
func RunMultigroup(groups, maxMembers, nodes int, seed uint64) (*MultigroupResult, error) {
	return experiment.RunMultigroup(groups, maxMembers, nodes, seed)
}

// RunMultigroupCtx is RunMultigroup under a caller-supplied context.
func RunMultigroupCtx(ctx context.Context, groups, maxMembers, nodes int, seed uint64) (*MultigroupResult, error) {
	return experiment.RunMultigroupCtx(ctx, groups, maxMembers, nodes, seed)
}

// DefaultExperimentBase returns the paper's default evaluation setup.
func DefaultExperimentBase() ExperimentBase { return experiment.DefaultBase() }

// SetExperimentParallelism fixes the worker count the experiment runners use
// (n < 1 restores the GOMAXPROCS default) and returns the effective value.
// Results are bit-identical for any worker count; only wall-clock time
// changes.
func SetExperimentParallelism(n int) int { return experiment.SetParallelism(n) }

// ExperimentParallelism returns the worker count studies currently use.
func ExperimentParallelism() int { return experiment.Parallelism() }
