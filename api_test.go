package smrp_test

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestPublicAPI is the API-compatibility gate: it renders the exported
// surface of the root smrp package (every exported func, type, const and var
// declaration, doc comments stripped) and compares it against the blessed
// baseline in api/smrp.txt. CI runs this test, so an undeclared breaking
// change to the public API fails the build.
//
// To bless an intentional API change, regenerate the baseline:
//
//	SMRP_UPDATE_API=1 go test -run TestPublicAPI .
//
// and commit api/smrp.txt together with the change.
func TestPublicAPI(t *testing.T) {
	got, err := renderAPI(".")
	if err != nil {
		t.Fatalf("render public API: %v", err)
	}

	const baseline = "api/smrp.txt"
	if os.Getenv("SMRP_UPDATE_API") != "" {
		if err := os.MkdirAll(filepath.Dir(baseline), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(baseline, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d declarations)", baseline, strings.Count(got, "\n"))
		return
	}

	wantBytes, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatalf("missing API baseline %s (regenerate with SMRP_UPDATE_API=1 go test -run TestPublicAPI .): %v", baseline, err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}

	gotSet := splitDecls(got)
	wantSet := splitDecls(want)
	for d := range wantSet {
		if !gotSet[d] {
			t.Errorf("removed or changed (breaking):\n%s", d)
		}
	}
	for d := range gotSet {
		if !wantSet[d] {
			t.Errorf("added or changed (bless with SMRP_UPDATE_API=1 if intentional):\n%s", d)
		}
	}
	t.Errorf("public API differs from %s; if the change is intentional, regenerate with SMRP_UPDATE_API=1 go test -run TestPublicAPI .", baseline)
}

// splitDecls breaks a rendered API file into its blank-line-separated
// declarations.
func splitDecls(s string) map[string]bool {
	out := make(map[string]bool)
	for _, d := range strings.Split(s, "\n\n") {
		if d = strings.TrimSpace(d); d != "" {
			out[d] = true
		}
	}
	return out
}

// renderAPI parses the non-test Go files of dir and prints every exported
// top-level declaration, doc comments and function bodies stripped, sorted
// for stability.
func renderAPI(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return "", err
	}
	pkg, ok := pkgs["smrp"]
	if !ok {
		return "", fmt.Errorf("package smrp not found in %s", dir)
	}

	var decls []string
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			for _, rendered := range renderDecl(fset, d) {
				decls = append(decls, rendered)
			}
		}
	}
	sort.Strings(decls)
	return strings.Join(decls, "\n\n") + "\n", nil
}

// renderDecl returns the exported portion of one top-level declaration,
// normalized: no doc comments, no bodies, one spec per entry for grouped
// const/var/type declarations.
func renderDecl(fset *token.FileSet, d ast.Decl) []string {
	switch d := d.(type) {
	case *ast.FuncDecl:
		if d.Recv != nil || !d.Name.IsExported() {
			return nil // root package has no exported methods of its own
		}
		fn := *d
		fn.Doc = nil
		fn.Body = nil
		return []string{printNode(fset, &fn)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				ts := *s
				ts.Doc, ts.Comment = nil, nil
				out = append(out, "type "+printNode(fset, &ts))
			case *ast.ValueSpec:
				vs := *s
				vs.Doc, vs.Comment = nil, nil
				exported := false
				for _, n := range vs.Names {
					if n.IsExported() {
						exported = true
					}
				}
				if !exported {
					continue
				}
				kw := "var"
				if d.Tok == token.CONST {
					kw = "const"
				}
				out = append(out, kw+" "+printNode(fset, &vs))
			}
		}
		return out
	}
	return nil
}

func printNode(fset *token.FileSet, n any) string {
	var b bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 8}
	if err := cfg.Fprint(&b, fset, n); err != nil {
		return fmt.Sprintf("<print error: %v>", err)
	}
	return b.String()
}
