package smrp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"smrp/internal/server"
	"smrp/internal/topology"
)

// BenchSummary is the machine-readable wall-clock record the bench harness
// emits: one entry per (figure, worker count) pair, so parallel-runner
// speedups can be tracked across machines and commits.
type BenchSummary struct {
	// Generated is the UTC timestamp of the measurement.
	Generated string `json:"generated"`
	// CPUs is runtime.NumCPU() on the measuring machine — the hard ceiling on
	// any real speedup.
	CPUs int `json:"cpus"`
	// GoVersion identifies the toolchain.
	GoVersion string `json:"go_version"`
	// Entries are the timed figure regenerations.
	Entries []BenchEntry `json:"entries"`
}

// BenchEntry times one figure regeneration at one worker count.
type BenchEntry struct {
	Figure      string  `json:"figure"`
	Scenarios   int     `json:"scenarios"` // trials dispatched to the runner
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`

	// Throughput rates, recorded only for figures that process membership
	// events ("throughput", "serve"): deterministic event counts divided by
	// this machine's wall clock.
	JoinsPerSec  float64 `json:"joins_per_sec,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// SettledReduction is the batched-join settled-node saving over the
	// sequential twin (0.43 = 43% fewer nodes settled) — deterministic,
	// machine-independent evidence recorded alongside the rates
	// ("throughput" only).
	SettledReduction float64 `json:"settled_reduction,omitempty"`

	// SettledPerEvent is the settled-node work per recovery event at the
	// study's largest N — the megascale study's machine-independent unit of
	// comparison ("megascale-flat" grows with N, "megascale-hier" stays
	// domain-bounded).
	SettledPerEvent float64 `json:"settled_per_event,omitempty"`
	// MemBytes is the arm's deterministic memory accounting at the largest
	// N: the routed-over graph plus, for the hierarchy, its per-domain
	// subgraph copies ("megascale-*"), or the fleet's mean per-group
	// standing bytes ("multigroup").
	MemBytes int64 `json:"mem_bytes,omitempty"`

	// RecoveryDistance is the arm's mean per-member RD_R and StateBytes its
	// mean precomputed-state footprint per trial — the recovery-strategy
	// testbed's deterministic comparison axes ("strategies-*" only; SMRP
	// keeps no precomputed state, so its state_bytes is omitted as zero).
	RecoveryDistance float64 `json:"recovery_distance,omitempty"`
	StateBytes       int64   `json:"state_bytes,omitempty"`
}

// benchFigures are the figure regenerations the summary times. Scenario
// counts are the number of independent trials the parallel runner dispatches.
var benchFigures = []struct {
	name      string
	scenarios int
	run       func() error
}{
	{"fig7", 5, func() error { _, err := RunFig7(benchSeed); return err }},
	{"fig8", 100, func() error { _, err := RunFig8(5, 5, benchSeed); return err }}, // 25 scenarios × 4 sweep points
	{"latency", 10, func() error { _, err := RunLatency(10, benchSeed); return err }},
	{"hierarchy", 10, func() error { _, err := RunHierarchy(10, benchSeed); return err }},
	{"churn", 5, func() error { _, err := RunChurn(5, benchSeed); return err }},
	{"chaos", 50, func() error { _, err := RunChaos(50, benchSeed); return err }},
}

// TestWriteBenchSummary regenerates BENCH_SUMMARY.json. It is gated behind
// the SMRP_BENCH_SUMMARY environment variable so ordinary test runs stay
// fast:
//
//	SMRP_BENCH_SUMMARY=BENCH_SUMMARY.json go test -run TestWriteBenchSummary .
//
// Set the variable to the output path ("1" selects BENCH_SUMMARY.json in the
// current directory). Every figure runs at workers=1 and workers=4; rendered
// results are bit-identical across worker counts (see the determinism
// regression test), so only the wall clock differs. On a single-CPU machine
// the two timings will be roughly equal — the file records whatever this
// machine honestly measured.
func TestWriteBenchSummary(t *testing.T) {
	path := os.Getenv("SMRP_BENCH_SUMMARY")
	if path == "" {
		t.Skip("set SMRP_BENCH_SUMMARY=<path> to regenerate the bench summary")
	}
	if path == "1" {
		path = "BENCH_SUMMARY.json"
	}
	defer SetExperimentParallelism(0)

	sum := BenchSummary{
		Generated: time.Now().UTC().Format(time.RFC3339),
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
	for _, fig := range benchFigures {
		for _, workers := range []int{1, 4} {
			SetExperimentParallelism(workers)
			start := time.Now()
			if err := fig.run(); err != nil {
				t.Fatalf("%s (workers=%d): %v", fig.name, workers, err)
			}
			sum.Entries = append(sum.Entries, BenchEntry{
				Figure:      fig.name,
				Scenarios:   fig.scenarios,
				Workers:     workers,
				WallSeconds: time.Since(start).Seconds(),
			})
			t.Logf("%-10s workers=%d: %.2fs", fig.name, workers,
				sum.Entries[len(sum.Entries)-1].WallSeconds)
		}
	}

	// Sharded session throughput: 10 sessions on one shared topology and one
	// shared lock-free SPF cache. The rendered counters are byte-identical
	// across worker counts; joins/sec and events/sec are this machine's wall
	// clock over them, and the settled reduction is the deterministic
	// batched-join evidence (gated >= 30% by the study's own test).
	const throughputSessions = 10
	for _, workers := range []int{1, 4} {
		SetExperimentParallelism(workers)
		start := time.Now()
		tr, err := RunThroughput(throughputSessions, benchSeed)
		if err != nil {
			t.Fatalf("throughput (workers=%d): %v", workers, err)
		}
		wall := time.Since(start).Seconds()
		sum.Entries = append(sum.Entries, BenchEntry{
			Figure:           "throughput",
			Scenarios:        throughputSessions,
			Workers:          workers,
			WallSeconds:      wall,
			JoinsPerSec:      float64(tr.Joins) / wall,
			EventsPerSec:     float64(tr.Events) / wall,
			SettledReduction: tr.SettledReduction(),
		})
		t.Logf("throughput workers=%d: %.2fs (%.0f joins/sec, %.0f events/sec, %.1f%% settled reduction)",
			workers, wall, float64(tr.Joins)/wall, float64(tr.Events)/wall, 100*tr.SettledReduction())
	}

	// Megascale architecture comparison at CI-sized N: one timed run per
	// worker count emits a flat and a hierarchical entry sharing that run's
	// wall clock. The settled-per-event and byte counters come from the
	// largest N and are deterministic — the same numbers the megascale-smoke
	// CI gate asserts ratios over.
	megaSizes := []int{2000, 8000}
	for _, workers := range []int{1, 4} {
		SetExperimentParallelism(workers)
		start := time.Now()
		mr, err := RunMegascale(megaSizes, 16, benchSeed)
		if err != nil {
			t.Fatalf("megascale (workers=%d): %v", workers, err)
		}
		wall := time.Since(start).Seconds()
		top := mr.Rows[len(mr.Rows)-1]
		sum.Entries = append(sum.Entries,
			BenchEntry{
				Figure: "megascale-flat", Scenarios: len(megaSizes), Workers: workers,
				WallSeconds:     wall,
				SettledPerEvent: top.Flat.SettledPerEvent(),
				MemBytes:        top.Flat.GraphBytes,
			},
			BenchEntry{
				Figure: "megascale-hier", Scenarios: len(megaSizes), Workers: workers,
				WallSeconds:     wall,
				SettledPerEvent: top.Hier.SettledPerEvent(),
				MemBytes:        top.Hier.GraphBytes + top.Hier.SessionBytes,
			})
		t.Logf("megascale  workers=%d: %.2fs (N=%d settled/event flat=%.1f hier=%.1f)",
			workers, wall, top.Target, top.Flat.SettledPerEvent(), top.Hier.SettledPerEvent())
	}

	// Million-node tier: the hierarchical arm alone (the flat control's
	// dense admission work is exactly what this tier retires) at N=10^6,
	// timed once at workers=4. Settled-per-event stays domain-bounded and
	// the byte counters are deterministic; the wall clock records what a
	// full generate/freeze/admit/recover cycle on a million-node graph
	// costs on this machine.
	{
		SetExperimentParallelism(4)
		start := time.Now()
		hr, err := RunMegascaleHier([]int{1_000_000}, 8, benchSeed)
		if err != nil {
			t.Fatalf("megascale-1m: %v", err)
		}
		wall := time.Since(start).Seconds()
		top := hr.Rows[len(hr.Rows)-1]
		sum.Entries = append(sum.Entries, BenchEntry{
			Figure: "megascale-1m-hier", Scenarios: 1, Workers: 4,
			WallSeconds:     wall,
			SettledPerEvent: top.Hier.SettledPerEvent(),
			MemBytes:        top.Hier.GraphBytes + top.Hier.SessionBytes,
		})
		t.Logf("megascale-1m workers=4: %.2fs (settled/event %.1f)",
			wall, top.Hier.SettledPerEvent())
	}

	// Multigroup fleet: thousands of Zipf-profiled sparse sessions on one
	// shared frozen topology and one shared SPF cache, at the CI smoke
	// shape. Joins/sec is admitted receivers over this machine's wall
	// clock; the standing-bytes mean is deterministic.
	const mgGroups, mgMax, mgNodes = 200, 32, 5000
	for _, workers := range []int{1, 4} {
		SetExperimentParallelism(workers)
		start := time.Now()
		mg, err := RunMultigroup(mgGroups, mgMax, mgNodes, benchSeed)
		if err != nil {
			t.Fatalf("multigroup (workers=%d): %v", workers, err)
		}
		wall := time.Since(start).Seconds()
		sum.Entries = append(sum.Entries, BenchEntry{
			Figure:          "multigroup",
			Scenarios:       mgGroups,
			Workers:         workers,
			WallSeconds:     wall,
			JoinsPerSec:     float64(mg.Members) / wall,
			EventsPerSec:    float64(mg.Events) / wall,
			SettledPerEvent: mg.SettledPerEvent(),
			MemBytes:        mg.BytesMean(),
		})
		t.Logf("multigroup workers=%d: %.2fs (%.0f joins/sec, mean standing %dB)",
			workers, wall, float64(mg.Members)/wall, mg.BytesMean())
	}

	// Recovery-strategy testbed: one timed run per worker count emits an
	// entry per arm sharing that run's wall clock. Recovery distance and
	// state bytes are deterministic (byte-identical across worker counts) —
	// the same numbers the strategies CI gate asserts over.
	const strategyTrials = 50
	for _, workers := range []int{1, 4} {
		SetExperimentParallelism(workers)
		start := time.Now()
		sr, err := RunStrategies(strategyTrials, benchSeed)
		if err != nil {
			t.Fatalf("strategies (workers=%d): %v", workers, err)
		}
		wall := time.Since(start).Seconds()
		for _, arm := range sr.Arms {
			sum.Entries = append(sum.Entries, BenchEntry{
				Figure:           "strategies-" + arm.Name,
				Scenarios:        strategyTrials,
				Workers:          workers,
				WallSeconds:      wall,
				RecoveryDistance: arm.RD.Mean,
				StateBytes:       arm.StateBytes,
			})
		}
		t.Logf("strategies workers=%d: %.2fs (mean RD smrp=%.4f mrc=%.4f detour=%.4f)",
			workers, wall, sr.Arms[0].RD.Mean, sr.Arms[1].RD.Mean, sr.Arms[2].RD.Mean)
	}

	// Serving capacity: total HTTP joins completed across concurrent
	// sessions on one shared topology. Here workers means concurrent
	// sessions (client goroutines), not the experiment runner's pool, and
	// joins/sec = scenarios / wall_seconds.
	const serveSessions, joinsPer = 16, 64
	start := time.Now()
	if err := runServeCapacity(serveSessions, joinsPer); err != nil {
		t.Fatalf("serve: %v", err)
	}
	serveWall := time.Since(start).Seconds()
	sum.Entries = append(sum.Entries, BenchEntry{
		Figure:      "serve",
		Scenarios:   serveSessions * joinsPer,
		Workers:     serveSessions,
		WallSeconds: serveWall,
		JoinsPerSec: float64(serveSessions*joinsPer) / serveWall,
	})
	t.Logf("serve      workers=%d: %.2fs (%.0f joins/sec)", serveSessions,
		sum.Entries[len(sum.Entries)-1].WallSeconds,
		float64(serveSessions*joinsPer)/sum.Entries[len(sum.Entries)-1].WallSeconds)

	data, err := json.MarshalIndent(&sum, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d entries)", path, len(sum.Entries))
}

// runServeCapacity boots the smrp-serve control plane in-process and drives
// sessions concurrent client goroutines, each creating one session over the
// shared topology and issuing joinsPer HTTP joins. It is the workload behind
// the "serve" BENCH_SUMMARY entry.
func runServeCapacity(sessions, joinsPer int) error {
	g, err := topology.Waxman(topology.WaxmanConfig{
		N: 200, Alpha: 0.2, Beta: topology.DefaultBeta, EnsureConnected: true,
	}, topology.NewRNG(benchSeed))
	if err != nil {
		return err
	}
	reg := server.NewRegistry(g, server.RegistryConfig{})
	srv := server.New(reg, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		srv.Drain()
		ts.Close()
	}()
	client := ts.Client()

	post := func(path string, body any) (int, string, error) {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, "", err
		}
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		var out struct {
			ID string `json:"id"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out.ID, nil
	}

	errs := make(chan error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, id, err := post("/v1/sessions", map[string]any{"source": i})
			if err != nil || code != http.StatusCreated {
				errs <- fmt.Errorf("create %d: status %d err %v", i, code, err)
				return
			}
			joinURL := "/v1/sessions/" + id + "/join"
			for n := 1; n <= joinsPer; n++ {
				node := (i + n*3) % 200
				if node == i {
					continue
				}
				code, _, err := post(joinURL, map[string]any{"node": node})
				if err != nil {
					errs <- fmt.Errorf("join: %w", err)
					return
				}
				switch code {
				case http.StatusOK, http.StatusConflict, http.StatusUnprocessableEntity:
				default:
					errs <- fmt.Errorf("join session %s node %d: status %d", id, node, code)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// TestBenchSummaryRoundTrip keeps the committed BENCH_SUMMARY.json parseable:
// if the file exists it must decode into BenchSummary with sane fields.
func TestBenchSummaryRoundTrip(t *testing.T) {
	data, err := os.ReadFile("BENCH_SUMMARY.json")
	if os.IsNotExist(err) {
		t.Skip("no committed BENCH_SUMMARY.json")
	}
	if err != nil {
		t.Fatal(err)
	}
	var sum BenchSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("BENCH_SUMMARY.json does not parse: %v", err)
	}
	if len(sum.Entries) == 0 {
		t.Fatal("BENCH_SUMMARY.json has no entries")
	}
	for _, e := range sum.Entries {
		if e.Figure == "" || e.Workers < 1 || e.Scenarios < 1 || e.WallSeconds <= 0 {
			t.Errorf("implausible entry: %+v", e)
		}
	}
}
