package smrp

import (
	"testing"
)

// TestFacadeQuickstart exercises the README quick-start flow end to end
// through the public API.
func TestFacadeQuickstart(t *testing.T) {
	net, err := GenerateWaxman(60, 0.2, DefaultBeta, 42)
	if err != nil {
		t.Fatal(err)
	}
	if got := DescribeTopology(net); got.Nodes != 60 || got.Components != 1 {
		t.Fatalf("topology stats = %+v", got)
	}
	sess, err := NewSession(net, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	members := []NodeID{7, 19, 33, 51}
	for _, m := range members {
		if _, err := sess.Join(m); err != nil {
			t.Fatalf("join %d: %v", m, err)
		}
	}
	f, err := WorstCaseFor(sess.Tree(), members[0])
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Recover(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Disconnected) == 0 {
		t.Error("worst-case failure should disconnect at least the member")
	}
	if err := sess.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	shr := ComputeSHR(sess.Tree())
	if shr[sess.Tree().Source()] != 0 {
		t.Error("SHR(S,S) must be 0")
	}
}

func TestFacadeBaseline(t *testing.T) {
	net, err := GenerateWaxman(40, 0.25, DefaultBeta, 7)
	if err != nil {
		t.Fatal(err)
	}
	spf, err := NewSPFSession(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := spf.Join(11); err != nil {
		t.Fatal(err)
	}
	f := LinkDown(0, spf.Tree().Children(0)[0])
	if _, err := spf.Heal(f); err != nil {
		t.Fatal(err)
	}
	if err := spf.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeProtocolInstances(t *testing.T) {
	net, err := GenerateWaxman(40, 0.25, DefaultBeta, 9)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewSMRPInstance(net, 0, DefaultProtocolConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ScheduleJoin(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(50); err != nil {
		t.Fatal(err)
	}
	if !inst.Session().Tree().IsMember(5) {
		t.Error("member did not join")
	}
	spf, err := NewSPFInstance(net, 0, DefaultProtocolConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := spf.ScheduleJoin(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := spf.Run(50); err != nil {
		t.Fatal(err)
	}
	if !spf.Session().Tree().IsMember(5) {
		t.Error("baseline member did not join")
	}
}

func TestFacadeNLevel(t *testing.T) {
	nt, err := GenerateNLevel(DefaultNLevelConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	leaves := nt.Leaves()
	leaf := nt.Domains[leaves[0]]
	var src NodeID = Invalid
	for _, n := range leaf.Nodes {
		if n != leaf.Gateway {
			src = n
			break
		}
	}
	s, err := NewNLevelSession(nt, src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A member in a different leaf domain, three levels away.
	other := nt.Domains[leaves[len(leaves)-1]]
	var m NodeID = Invalid
	for _, n := range other.Nodes {
		if n != other.Gateway {
			m = n
			break
		}
	}
	if err := s.Join(m); err != nil {
		t.Fatal(err)
	}
	d, err := s.EndToEndDelay(m)
	if err != nil || d <= 0 {
		t.Fatalf("delay = %v, %v", d, err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeProtection(t *testing.T) {
	net, err := GenerateWaxman(30, 0.7, 0.4, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Biconnected(nil) {
		t.Skip("sample not biconnected")
	}
	rt, err := BuildRedundantTrees(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Subscribe(5); err != nil {
		t.Fatal(err)
	}
	r := rt.Survives(LinkDown(0, net.Neighbors(0)[0].To).Mask(), 5)
	if !r.ViaRed && !r.ViaBlue {
		t.Error("redundant trees must survive a single link failure")
	}
	dep, err := NewDependableSession(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Join(5); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeFaultIsolation(t *testing.T) {
	net, err := PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DThresh = 0
	sess, err := NewSession(net, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []NodeID{3, 4} {
		if _, err := sess.Join(m); err != nil {
			t.Fatal(err)
		}
	}
	f := LinkDown(1, 4)
	obs := ObserveFailure(sess.Tree(), f.Mask())
	suspects, err := IsolateFault(sess.Tree(), obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(suspects) != 1 || suspects[0].Edge != f.Edge {
		t.Errorf("suspects = %v", suspects)
	}
}

func TestFacadeHierarchy(t *testing.T) {
	ts, err := GenerateTransitStub(DefaultTransitStubConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	var src NodeID = Invalid
	for _, n := range ts.Stubs[0].Nodes {
		if n != ts.Stubs[0].Gateway {
			src = n
			break
		}
	}
	hs, err := NewHierarchicalSession(ts, src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	joined := 0
	for i := range ts.Stubs {
		for _, n := range ts.Stubs[i].Nodes {
			if n != ts.Stubs[i].Gateway && n != src {
				if err := hs.Join(n); err != nil {
					t.Fatal(err)
				}
				joined++
				break
			}
		}
	}
	if joined == 0 || len(hs.Members()) != joined {
		t.Errorf("joined %d, members %d", joined, len(hs.Members()))
	}
	if err := hs.Validate(); err != nil {
		t.Fatal(err)
	}
}
