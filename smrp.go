// Package smrp is a Go implementation of SMRP, the Survivable Multicast
// Routing Protocol (Wu & Shin, "SMRP: Fast Restoration of Multicast Sessions
// from Persistent Failures", DSN 2005), together with everything needed to
// study it: Waxman/transit–stub topology generators, a link-state unicast
// routing substrate, a deterministic discrete-event simulator, an SPF/PIM
// baseline, a hierarchical recovery architecture, and the complete
// evaluation harness regenerating the paper's figures.
//
// # Quick start
//
//	net, _ := smrp.GenerateWaxman(100, 0.2, smrp.DefaultBeta, 42)
//	sess, _ := smrp.NewSession(net, 0, smrp.DefaultConfig())
//	sess.Join(17)
//	sess.Join(33)
//	rep, _ := sess.Recover(smrp.LinkDown(0, 5)) // recover from a cut
//	fmt.Println(rep.TotalRecoveryDistance())
//
// The package re-exports the library's building blocks through type
// aliases, so one import gives access to the full system; the underlying
// implementations live in internal/ packages organized per subsystem (see
// DESIGN.md for the map).
package smrp

import (
	"slices"

	"smrp/internal/core"
	"smrp/internal/detour"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/mrc"
	"smrp/internal/multicast"
	"smrp/internal/spfbase"
	"smrp/internal/topology"
)

// Tree is a source-rooted multicast tree overlaid on a Network.
type Tree = multicast.Tree

// Graph-layer aliases.
type (
	// NodeID identifies a network node.
	NodeID = graph.NodeID
	// EdgeID identifies an undirected link by its canonical endpoints.
	EdgeID = graph.EdgeID
	// Path is a node sequence connected by links.
	Path = graph.Path
	// Network is the weighted undirected network graph.
	Network = graph.Graph
	// Point is a 2-D node position.
	Point = graph.Point
	// Mask excludes failed or avoided components from traversal.
	Mask = graph.Mask
)

// Invalid is the sentinel "no node" identifier.
const Invalid = graph.Invalid

// Topology-generation aliases.
type (
	// WaxmanConfig parameterizes the Waxman random-graph model.
	WaxmanConfig = topology.WaxmanConfig
	// TransitStub is a 2-level transit–stub topology.
	TransitStub = topology.TransitStub
	// TransitStubConfig parameterizes the transit–stub generator.
	TransitStubConfig = topology.TransitStubConfig
	// RNG is the deterministic random generator all generation uses.
	RNG = topology.RNG
	// TopologyStats summarizes a generated topology.
	TopologyStats = topology.Stats
)

// DefaultBeta is the calibrated Waxman β used throughout the evaluation.
const DefaultBeta = topology.DefaultBeta

// NewRNG returns a seeded deterministic random generator.
func NewRNG(seed uint64) *RNG { return topology.NewRNG(seed) }

// GenerateWaxman builds a connected Waxman random network with n nodes.
func GenerateWaxman(n int, alpha, beta float64, seed uint64) (*Network, error) {
	return topology.Waxman(WaxmanConfig{
		N:               n,
		Alpha:           alpha,
		Beta:            beta,
		EnsureConnected: true,
	}, topology.NewRNG(seed))
}

// GenerateTransitStub builds a 2-level transit–stub network.
func GenerateTransitStub(cfg TransitStubConfig, seed uint64) (*TransitStub, error) {
	return topology.GenerateTransitStub(cfg, topology.NewRNG(seed))
}

// DefaultTransitStubConfig returns the transit–stub setup used by the
// hierarchical experiments.
func DefaultTransitStubConfig() TransitStubConfig {
	return topology.DefaultTransitStubConfig()
}

// DescribeTopology computes summary statistics for a network.
func DescribeTopology(n *Network) TopologyStats { return topology.Describe(n) }

// SMRP-core aliases.
type (
	// Config parameterizes an SMRP session (D_thresh, reshaping, knowledge
	// and SHR-maintenance modes).
	Config = core.Config
	// Session is a synchronous SMRP multicast session.
	Session = core.Session
	// JoinResult describes the outcome of a member join.
	JoinResult = core.JoinResult
	// HealReport describes a local-detour recovery.
	HealReport = core.HealReport
	// Stats counts protocol work for overhead studies.
	Stats = core.Stats
	// Knowledge selects full-topology or query-scheme discovery.
	Knowledge = core.Knowledge
	// SHRMode selects eager or deferred SHR maintenance.
	SHRMode = core.SHRMode
	// TreeStorage selects the session's tree-state backend: dense
	// NodeID-indexed arrays (O(topology) standing bytes) or the sparse
	// touched-node remap (O(|tree| + |members|)).
	TreeStorage = core.TreeStorage
)

// Re-exported enum values.
const (
	FullTopology = core.FullTopology
	QueryScheme  = core.QueryScheme
	EagerSHR     = core.EagerSHR
	DeferredSHR  = core.DeferredSHR
	// Tree-storage modes for Config.TreeStorage: StorageAuto (the zero
	// value) keeps dense arrays below SparseNodeThreshold graph nodes and
	// cuts over to sparse above it.
	StorageAuto   = core.StorageAuto
	StorageDense  = core.StorageDense
	StorageSparse = core.StorageSparse
)

// SparseNodeThreshold is the StorageAuto cutover: sessions on topologies
// with at least this many nodes default to sparse tree storage.
const SparseNodeThreshold = core.SparseNodeThreshold

// DefaultConfig returns the paper's evaluation configuration
// (D_thresh = 0.3, Condition I+II reshaping, full topology, eager SHR).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewSession creates an SMRP session on net rooted at source.
func NewSession(net *Network, source NodeID, cfg Config) (*Session, error) {
	return core.NewSession(net, source, cfg)
}

// ComputeSHR returns the paper's path-sharing metric for every on-tree node
// of a multicast tree.
func ComputeSHR(t *Tree) map[NodeID]int { return core.ComputeSHR(t) }

// RecoveryStrategy is the pluggable failure-restoration seam: it decides how
// a session reconnects members after persistent failures. Install one via
// Config.Strategy (nil keeps SMRP's local-detour recovery); instances are
// bound to a single session.
type RecoveryStrategy = core.RecoveryStrategy

// NewSMRPStrategy returns the paper's local-detour recovery as an explicit
// strategy — bit-identical to a session with no strategy configured.
func NewSMRPStrategy() RecoveryStrategy { return core.NewSMRPStrategy() }

// NewMRCStrategy returns the MRC backup-configurations baseline: k
// precomputed routing configurations, each isolating a disjoint node class;
// recovery switches affected members onto the configuration isolating the
// failed component (k < 1 selects the package default).
func NewMRCStrategy(k int) RecoveryStrategy { return mrc.New(k) }

// NewDetourStrategy returns the Bhosle–Gonzalez precomputed-detour baseline:
// every on-tree node precomputes, at graft time, the detour it would use if
// its parent failed; recovery is a table lookup plus a graft.
func NewDetourStrategy() RecoveryStrategy { return detour.New() }

// Baseline aliases.
type (
	// SPFSession is the SPF/PIM-style baseline session.
	SPFSession = spfbase.Session
	// SPFHealReport describes a global-detour recovery.
	SPFHealReport = spfbase.HealReport
)

// NewSPFSession creates a baseline SPF multicast session.
func NewSPFSession(net *Network, source NodeID) (*SPFSession, error) {
	return spfbase.NewSession(net, source)
}

// Failure-model aliases.
type (
	// Failure is a persistent link or node failure.
	Failure = failure.Failure
	// FailureKind distinguishes link from node failures.
	FailureKind = failure.Kind
)

// Re-exported failure kinds.
const (
	LinkFailure = failure.LinkFailure
	NodeFailure = failure.NodeFailure
)

// LinkDown returns the failure of the undirected link (u, v).
func LinkDown(u, v NodeID) Failure { return failure.LinkDown(u, v) }

// NodeDown returns the failure of node n.
func NodeDown(n NodeID) Failure { return failure.NodeDown(n) }

// WorstCaseFor returns the paper's worst-case failure for a member: the
// source-incident link of its multicast path.
func WorstCaseFor(t *Tree, m NodeID) (Failure, error) { return failure.WorstCaseFor(t, m) }

// LocalDetour computes SMRP's recovery path and distance for a disconnected
// member.
func LocalDetour(t *Tree, mask *Mask, m NodeID) (Path, float64, error) {
	return failure.LocalDetour(t, mask, m)
}

// GlobalDetour computes the SPF baseline's recovery path and distance.
func GlobalDetour(t *Tree, mask *Mask, m NodeID) (Path, float64, error) {
	return failure.GlobalDetour(t, mask, m)
}

// DisconnectedMembers lists the members a failure cuts off.
func DisconnectedMembers(t *Tree, mask *Mask) []NodeID {
	return failure.DisconnectedMembers(t, mask)
}

// SurvivingNodes returns the on-tree nodes a failure leaves connected.
func SurvivingNodes(t *Tree, mask *Mask) map[NodeID]bool {
	return failure.SurvivingNodes(t, mask)
}

// Multi-failure schedule aliases (overlapping failures, SRLG-correlated
// cuts, repairs).
type (
	// FailureSchedule is a time-ordered sequence of failure/repair events.
	FailureSchedule = failure.Schedule
	// FailureEvent is one schedule step: correlated failures plus repairs.
	FailureEvent = failure.Event
	// ChaosConfig parameterizes random-schedule generation.
	ChaosConfig = failure.ChaosConfig
)

// SRLG builds a shared-risk link group around node n: the correlated
// failure of every link incident to n (the node survives, its links don't).
func SRLG(g *Network, n NodeID) []Failure { return failure.SRLG(g, n) }

// DefaultChaosConfig returns the chaos harness's schedule-generation
// defaults.
func DefaultChaosConfig() ChaosConfig { return failure.DefaultChaosConfig() }

// RandomSchedule draws a seeded multi-failure schedule against a topology:
// correlated bursts, node failures, optional full partition of a victim, and
// repairs. The source is never failed directly.
func RandomSchedule(g *Network, source NodeID, victims []NodeID, cfg ChaosConfig, rng *RNG) (FailureSchedule, error) {
	return failure.RandomSchedule(g, source, victims, cfg, rng)
}

// PaperFig1 reconstructs the Figure 1 topology (S, A, B, C, D).
func PaperFig1() (*Network, error) { return topology.PaperFig1() }

// PaperFig4 reconstructs the Figure 4/5 topology (S, A, B, D, E, G, F, C).
func PaperFig4() (*Network, error) { return topology.PaperFig4() }

// Fig1Nodes gives the symbolic node names of the Figure 1 topology in ID
// order.
func Fig1Nodes() []string { return slices.Clone(topology.Fig1Nodes) }

// Fig4Nodes gives the symbolic node names of the Figure 4/5 topology in ID
// order.
func Fig4Nodes() []string { return slices.Clone(topology.Fig4Nodes) }
