package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapMatchesSequential: pool output must be bit-identical to the
// sequential reference for several worker counts, including trials that
// consume their RNG stream.
func TestMapMatchesSequential(t *testing.T) {
	const n = 97
	fn := func(_ context.Context, tr Trial) (uint64, error) {
		// Consume a trial-dependent amount of randomness: determinism must
		// not rely on uniform consumption.
		v := tr.Seed
		for k := 0; k < tr.Index%7+1; k++ {
			v ^= tr.RNG.Uint64()
		}
		return v, nil
	}
	want, err := MapSeq(context.Background(), Config{BaseSeed: 42}, n, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8, 32} {
		got, err := Map(context.Background(), Config{Workers: workers, BaseSeed: 42}, n, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d trial %d: got %x want %x", workers, i, got[i], want[i])
			}
		}
	}
}

// TestDeriveSeedIndependence: neighbouring trial seeds must not be trivially
// related, and the map must be injective over a large index range.
func TestDeriveSeedIndependence(t *testing.T) {
	seen := make(map[uint64]int)
	for i := 0; i < 100000; i++ {
		s := DeriveSeed(2005, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("seed collision between trials %d and %d", i, j)
		}
		seen[s] = i
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("different base seeds must derive different streams")
	}
	if d := DeriveSeed(1, 1) ^ DeriveSeed(1, 2); d == 0x9E3779B97F4A7C15 {
		t.Error("adjacent seeds look linearly related; finalizer missing?")
	}
}

// TestPanicIsolation: a panicking trial becomes a *PanicError naming the
// trial; the sweep itself survives.
func TestPanicIsolation(t *testing.T) {
	fn := func(_ context.Context, tr Trial) (int, error) {
		if tr.Index == 5 {
			panic("boom")
		}
		return tr.Index, nil
	}
	_, err := Map(context.Background(), Config{Workers: 4, BaseSeed: 1}, 10, fn)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 5 || fmt.Sprint(pe.Value) != "boom" {
		t.Errorf("PanicError = {Index: %d, Value: %v}", pe.Index, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
}

// TestLowestIndexErrorWins: with many failing trials the reported error must
// name the lowest-numbered one, regardless of scheduling.
func TestLowestIndexErrorWins(t *testing.T) {
	fn := func(_ context.Context, tr Trial) (int, error) {
		if tr.Index%3 == 2 { // trials 2, 5, 8, … fail
			// Stagger completion so higher-index failures tend to land first.
			time.Sleep(time.Duration(30-tr.Index) * time.Millisecond)
			return 0, fmt.Errorf("trial %d failed", tr.Index)
		}
		return tr.Index, nil
	}
	for run := 0; run < 3; run++ {
		_, err := Map(context.Background(), Config{Workers: 8, BaseSeed: 1}, 12, fn)
		var te *TrialError
		if !errors.As(err, &te) {
			t.Fatalf("err = %v, want *TrialError", err)
		}
		if te.Index != 2 {
			t.Fatalf("reported trial %d, want lowest failing trial 2", te.Index)
		}
	}
}

// TestContextCancellation: cancelling the parent context aborts the sweep
// and reports ctx.Err().
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	fn := func(c context.Context, tr Trial) (int, error) {
		if started.Add(1) == 3 {
			cancel()
		}
		select {
		case <-c.Done():
			return 0, c.Err()
		case <-time.After(50 * time.Millisecond):
			return tr.Index, nil
		}
	}
	_, err := Map(ctx, Config{Workers: 2, QueueDepth: 1, BaseSeed: 1}, 100, fn)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n > 10 {
		t.Errorf("%d trials started after early cancel; bounded queue not limiting dispatch", n)
	}
}

// TestReduceMatchesSequentialFold: contiguous-block Reduce with an exactly
// associative merge (slice concatenation) must reproduce the sequential fold
// for every worker count.
func TestReduceMatchesSequentialFold(t *testing.T) {
	const n = 41
	fn := func(_ context.Context, tr Trial) (uint64, error) {
		return tr.RNG.Uint64(), nil
	}
	newAcc := func() []uint64 { return nil }
	fold := func(a []uint64, v uint64) []uint64 { return append(a, v) }
	merge := func(a, b []uint64) []uint64 { return append(a, b...) }

	want, err := Reduce(context.Background(), Config{Workers: 1, BaseSeed: 7}, n, fn, newAcc, fold, merge)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != n {
		t.Fatalf("sequential fold has %d entries, want %d", len(want), n)
	}
	for _, workers := range []int{2, 3, 5, 8, 64} {
		got, err := Reduce(context.Background(), Config{Workers: workers, BaseSeed: 7}, n, fn, newAcc, fold, merge)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d position %d: got %x want %x", workers, i, got[i], want[i])
			}
		}
	}
}

// TestReduceErrorPolicy mirrors Map's lowest-index error guarantee.
func TestReduceErrorPolicy(t *testing.T) {
	fn := func(_ context.Context, tr Trial) (int, error) {
		if tr.Index >= 6 {
			return 0, fmt.Errorf("late failure %d", tr.Index)
		}
		return 1, nil
	}
	_, err := Reduce(context.Background(), Config{Workers: 4, BaseSeed: 1}, 10, fn,
		func() int { return 0 },
		func(a, v int) int { return a + v },
		func(a, b int) int { return a + b },
	)
	var te *TrialError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TrialError", err)
	}
	if te.Index != 6 {
		t.Errorf("reported trial %d, want 6", te.Index)
	}
}

// TestZeroTrials: degenerate sweeps succeed and return empty results.
func TestZeroTrials(t *testing.T) {
	res, err := Map(context.Background(), Config{}, 0, func(context.Context, Trial) (int, error) {
		t.Error("trial body must not run")
		return 0, nil
	})
	if err != nil || len(res) != 0 {
		t.Errorf("Map(0) = (%v, %v)", res, err)
	}
	sum, err := Reduce(context.Background(), Config{}, 0,
		func(context.Context, Trial) (int, error) { return 1, nil },
		func() int { return 0 },
		func(a, v int) int { return a + v },
		func(a, b int) int { return a + b },
	)
	if err != nil || sum != 0 {
		t.Errorf("Reduce(0) = (%v, %v)", sum, err)
	}
}

// TestDefaultsNormalize: zero-valued config picks sane pool parameters.
func TestDefaultsNormalize(t *testing.T) {
	c := Config{}.normalize()
	if c.Workers < 1 || c.QueueDepth < 1 {
		t.Errorf("normalized config %+v has non-positive fields", c)
	}
	if c.QueueDepth != 2*c.Workers {
		t.Errorf("default queue depth = %d, want %d", c.QueueDepth, 2*c.Workers)
	}
}
