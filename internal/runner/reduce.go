package runner

import (
	"context"
	"errors"
	"sync"
)

// Reduce executes n trials and streams each trial's result into a
// per-worker accumulator, avoiding the O(n) result buffer Map keeps. This is
// the memory-bounded path for very large sweeps.
//
// Determinism: trials are partitioned into contiguous index blocks — worker
// w owns [w·⌈n/W⌉, (w+1)·⌈n/W⌉) — each worker folds its block in ascending
// index order, and the per-worker accumulators merge in block order. The
// overall fold order is therefore exactly 0,1,…,n−1 for ANY worker count, so
// any merge that concatenates or is otherwise exactly associative (e.g.
// metrics.Sample.Merge) reproduces the sequential fold bit-for-bit.
// Merges that are only approximately associative (floating-point moment
// merging, metrics.Summary.Merge) are deterministic for a fixed worker count
// and equal across worker counts up to float round-off.
//
// newAcc creates one empty accumulator per worker; fold folds one trial
// result into a worker's accumulator; merge combines two accumulators
// (left argument is the lower index block).
//
// Error policy (deterministic, matching Map): each worker stops its own
// block at that block's first failure — ascending order makes that the block
// minimum — while other blocks run to completion, so the reported error is
// the globally lowest-numbered failing trial regardless of scheduling.
// Parent-context cancellation aborts everything and reports ctx.Err().
func Reduce[T, A any](
	ctx context.Context,
	cfg Config,
	n int,
	fn Func[T],
	newAcc func() A,
	fold func(A, T) A,
	merge func(A, A) A,
) (A, error) {
	cfg = cfg.normalize()
	var zero A
	if n < 0 {
		return zero, &TrialError{Index: -1, Err: errors.New("negative trial count")}
	}
	if n == 0 {
		return newAcc(), ctx.Err()
	}
	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	block := (n + workers - 1) / workers

	accs := make([]A, workers)
	var (
		mu       sync.Mutex
		firstErr error
		firstIdx = n
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := newAcc()
			lo, hi := w*block, (w+1)*block
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					break
				}
				out, err := call(ctx, fn, cfg.trial(i))
				if err != nil {
					if errors.Is(err, context.Canceled) && ctx.Err() != nil {
						break
					}
					var pe *PanicError
					if !errors.As(err, &pe) {
						err = &TrialError{Index: i, Err: err}
					}
					record(i, err)
					break // block minimum found; later indices can't lower it
				}
				acc = fold(acc, out)
			}
			accs[w] = acc
		}(w)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return zero, err
	}
	if firstErr != nil {
		return zero, firstErr
	}
	total := accs[0]
	for _, a := range accs[1:] {
		total = merge(total, a)
	}
	return total, nil
}
