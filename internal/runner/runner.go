// Package runner is the deterministic parallel scenario-execution engine
// behind every evaluation sweep in this repository.
//
// The engine runs N independent trials on a fixed-size worker pool and
// guarantees that results are bit-identical regardless of the worker count
// or OS scheduling order:
//
//   - every trial receives its own RNG stream derived purely from
//     (baseSeed, trialIndex) via splitmix64 (see DeriveSeed), so no trial's
//     randomness depends on which worker ran it or in which order;
//   - Map collects results into a slice indexed by trial index, so callers
//     fold them in trial order — byte-identical output for any worker count;
//   - Reduce partitions trials into contiguous index blocks (one per worker)
//     and merges per-worker accumulators in block order, so any merge that is
//     exactly associative (e.g. metrics.Sample.Merge, which concatenates)
//     reproduces the sequential fold bit-for-bit.
//
// Failure semantics are deterministic too: a worker panic is converted into
// a per-trial *PanicError instead of crashing the sweep, and when trials
// fail the engine reports the error of the lowest-numbered failing trial,
// not whichever happened to be observed first.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"smrp/internal/topology"
)

// Config parameterizes a pool run.
type Config struct {
	// Workers is the fixed pool size. Values < 1 select
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the dispatch queue feeding the pool. Values < 1
	// select 2×Workers. A bounded queue keeps cancellation responsive on
	// huge sweeps: at most QueueDepth trials are committed beyond the ones
	// already executing.
	QueueDepth int
	// BaseSeed is the root of every per-trial RNG stream.
	BaseSeed uint64
}

// normalize resolves defaulted fields.
func (c Config) normalize() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 2 * c.Workers
	}
	return c
}

// Trial is the per-trial execution context handed to the user function.
type Trial struct {
	// Index is the trial's position in [0, N).
	Index int
	// Seed is the trial's derived seed: DeriveSeed(cfg.BaseSeed, Index).
	Seed uint64
	// RNG is a fresh generator seeded with Seed. Independent of worker
	// identity and scheduling, so consuming it cannot break determinism.
	RNG *topology.RNG
}

// Func is one trial's body. It must be self-contained: any state shared with
// other trials must be read-only (e.g. a generated topology with an SPF
// cache attached).
type Func[T any] func(ctx context.Context, t Trial) (T, error)

// PanicError wraps a recovered worker panic as a per-trial error.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: trial %d panicked: %v", e.Index, e.Value)
}

// TrialError attributes a trial-body error to its trial index.
type TrialError struct {
	Index int
	Err   error
}

// Error implements the error interface.
func (e *TrialError) Error() string {
	return fmt.Sprintf("runner: trial %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *TrialError) Unwrap() error { return e.Err }

// DeriveSeed maps (base, trial index) to an independent seed via splitmix64
// finalization. It is a pure function of its arguments — the foundation of
// the engine's determinism guarantee.
func DeriveSeed(base uint64, index int) uint64 {
	x := base + 0x9E3779B97F4A7C15*uint64(index+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// trial builds the execution context for one trial index.
func (c Config) trial(i int) Trial {
	seed := DeriveSeed(c.BaseSeed, i)
	return Trial{Index: i, Seed: seed, RNG: topology.NewRNG(seed)}
}

// call runs fn for one trial with panic isolation.
func call[T any](ctx context.Context, fn Func[T], t Trial) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: t.Index, Value: r, Stack: debug.Stack()}
		}
	}()
	out, err = fn(ctx, t)
	return out, err
}

// Map executes n trials on the pool and returns their results ordered by
// trial index.
//
// Error policy (deterministic): if the parent context is cancelled, Map
// stops dispatching and returns ctx's error. Otherwise every trial is
// attempted even when some fail — aborting early would make "which trials
// ran" scheduling-dependent — and Map returns the error of the
// LOWEST-numbered failing trial, wrapped in *TrialError (or *PanicError for
// panics), independent of worker count and scheduling. On error the result
// slice is still returned; entries for failed or unexecuted trials hold zero
// values. Callers that want fail-fast behaviour cancel ctx themselves.
func Map[T any](ctx context.Context, cfg Config, n int, fn Func[T]) ([]T, error) {
	cfg = cfg.normalize()
	if n < 0 {
		return nil, fmt.Errorf("runner: negative trial count %d", n)
	}
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}

	jobs := make(chan int, cfg.QueueDepth)
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var (
		mu       sync.Mutex
		firstErr error
		firstIdx = n // lowest failing trial index seen so far
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
	}

	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					// Parent cancelled: drain the queue without running.
					continue
				}
				out, err := call(ctx, fn, cfg.trial(i))
				if err != nil {
					// Cancellation-induced errors are an artifact of the
					// caller aborting, not a property of the trial; ctx.Err()
					// is reported instead, below.
					if errors.Is(err, context.Canceled) && ctx.Err() != nil {
						continue
					}
					var pe *PanicError
					if !errors.As(err, &pe) {
						err = &TrialError{Index: i, Err: err}
					}
					record(i, err)
					continue
				}
				results[i] = out
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return results, err
	}
	if firstErr != nil {
		return results, firstErr
	}
	return results, nil
}

// MapSeq is the sequential reference implementation of Map: same trial
// contexts, same error policy (all trials attempted, lowest-index error
// reported), no goroutines. It exists so determinism tests can compare pool
// output against a known-simple baseline and so callers can bypass the pool
// entirely (Workers == 1 uses the pool but produces identical results).
func MapSeq[T any](ctx context.Context, cfg Config, n int, fn Func[T]) ([]T, error) {
	cfg = cfg.normalize()
	if n < 0 {
		return nil, fmt.Errorf("runner: negative trial count %d", n)
	}
	results := make([]T, n)
	var firstErr error
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return results, err
		}
		out, err := call(ctx, fn, cfg.trial(i))
		if err != nil {
			if firstErr == nil {
				var pe *PanicError
				if !errors.As(err, &pe) {
					err = &TrialError{Index: i, Err: err}
				}
				firstErr = err
			}
			continue
		}
		results[i] = out
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, firstErr
}
