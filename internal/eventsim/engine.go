// Package eventsim is a deterministic discrete-event simulation engine — the
// repository's substitute for ns2. It provides a virtual clock, an event
// heap with stable FIFO ordering at equal timestamps, timers, and a simple
// message-passing network layer with per-link delays and failure injection.
//
// The message-level protocol implementations in internal/protocol run on
// top of this engine; all evaluation latencies (failure detection, query
// round-trips, join propagation, routing reconvergence) are expressed in the
// engine's virtual time.
package eventsim

import (
	"errors"
	"fmt"
	"math"

	"smrp/internal/pqueue"
)

// Time is virtual simulation time in abstract delay units (the same units
// as graph edge weights).
type Time float64

// Infinity is a time later than any schedulable event.
var Infinity = Time(math.Inf(1))

// Event is a scheduled callback.
type Event struct {
	at      Time
	seq     uint64
	fn      func()
	r       runnable
	cancel  bool
	recycle bool
}

// runnable is the allocation-free alternative to a func() event body: a
// reusable object (e.g. the network layer's pooled transit) that carries its
// own state and is invoked by pointer. Events scheduled through
// scheduleRunnable return to the engine's freelist after firing, so the
// per-message Event+closure garbage that dominated the latency study's
// allocation profile disappears (see DESIGN.md §8).
type runnable interface{ run() }

// Cancel prevents the event from firing (safe to call multiple times).
func (e *Event) Cancel() { e.cancel = true }

// Cancelled reports whether the event was cancelled.
func (e *Event) Cancelled() bool { return e.cancel }

// At returns the time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Before orders events by time, breaking ties by scheduling sequence so
// simultaneous events fire in FIFO order (determinism). It implements
// pqueue.Ordered, letting the engine's queue run on the shared generic
// min-heap instead of container/heap's `any`-boxed interface (which
// allocated on every Push and type-asserted on every Pop).
func (e *Event) Before(other *Event) bool {
	if e.at != other.at {
		return e.at < other.at
	}
	return e.seq < other.seq
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// not usable; construct with NewEngine. Engines are not safe for concurrent
// use.
type Engine struct {
	now    Time
	seq    uint64
	queue  pqueue.Heap[*Event]
	fired  uint64
	budget uint64   // max events per Run, guards against livelock
	free   []*Event // recycled Events for scheduleRunnable (no handle escapes)
}

// DefaultEventBudget bounds the number of events a single Run may process.
const DefaultEventBudget = 10_000_000

// NewEngine returns an engine at time 0.
func NewEngine() *Engine {
	return &Engine{budget: DefaultEventBudget}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events still queued (including cancelled
// ones not yet popped).
func (e *Engine) Pending() int { return e.queue.Len() }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// SetEventBudget overrides the per-Run event cap (for tests).
func (e *Engine) SetEventBudget(n uint64) { e.budget = n }

// Schedule queues fn to run after delay; it returns the event handle so the
// caller may cancel it. Negative delays are rejected.
func (e *Engine) Schedule(delay Time, fn func()) (*Event, error) {
	if delay < 0 {
		return nil, fmt.Errorf("eventsim: negative delay %v", delay)
	}
	if fn == nil {
		return nil, errors.New("eventsim: nil event function")
	}
	ev := &Event{at: e.now + delay, seq: e.seq, fn: fn}
	e.seq++
	e.queue.Push(ev)
	return ev, nil
}

// scheduleRunnable queues r to fire after delay on a freelisted Event. No
// handle is returned — the Event is owned by the engine and recycled the
// moment it pops, which is only sound because nobody outside the engine can
// retain (or Cancel) it. The public Schedule keeps allocating precisely
// because its handle escapes. The caller guarantees delay >= 0 (edge weights
// are validated positive at graph construction).
func (e *Engine) scheduleRunnable(delay Time, r runnable) {
	var ev *Event
	if k := len(e.free); k > 0 {
		ev = e.free[k-1]
		e.free = e.free[:k-1]
	} else {
		ev = &Event{}
	}
	ev.at = e.now + delay
	ev.seq = e.seq
	ev.r = r
	ev.recycle = true
	e.seq++
	e.queue.Push(ev)
}

// MustSchedule is Schedule for callers with static arguments; it panics on
// the programming errors Schedule rejects.
func (e *Engine) MustSchedule(delay Time, fn func()) *Event {
	ev, err := e.Schedule(delay, fn)
	if err != nil {
		panic(err)
	}
	return ev
}

// Run processes events in timestamp order until the queue empties, the
// event budget is exhausted, or until (inclusive) the given horizon. It
// returns an error if the budget was exhausted (likely livelock).
func (e *Engine) Run(until Time) error {
	processed := uint64(0)
	for {
		next, ok := e.queue.Peek()
		if !ok || next.at > until {
			break
		}
		popped, _ := e.queue.Pop() // non-empty: Peek above succeeded
		if popped.cancel {
			continue
		}
		if processed >= e.budget {
			return fmt.Errorf("eventsim: event budget %d exhausted at t=%v (livelock?)", e.budget, e.now)
		}
		e.now = popped.at
		fn, r := popped.fn, popped.r
		if popped.recycle {
			// Return the Event to the freelist before invoking the body:
			// the body may schedule further events and reuse it immediately.
			popped.fn, popped.r = nil, nil
			popped.recycle, popped.cancel = false, false
			e.free = append(e.free, popped)
		}
		if r != nil {
			r.run()
		} else {
			fn()
		}
		e.fired++
		processed++
	}
	// Advance the clock to the horizon if it is finite and ahead.
	if until != Infinity && until > e.now {
		e.now = until
	}
	return nil
}

// RunAll processes every queued event (no horizon).
func (e *Engine) RunAll() error { return e.Run(Infinity) }
