package eventsim

import (
	"testing"

	"smrp/internal/graph"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.MustSchedule(3, func() { order = append(order, 3) })
	e.MustSchedule(1, func() { order = append(order, 1) })
	e.MustSchedule(2, func() { order = append(order, 2) })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("Fired = %d", e.Fired())
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.MustSchedule(5, func() { order = append(order, i) })
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.MustSchedule(1, func() {
		times = append(times, e.Now())
		e.MustSchedule(2, func() {
			times = append(times, e.Now())
		})
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v", times)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.MustSchedule(1, func() { fired = true })
	ev.Cancel()
	if !ev.Cancelled() {
		t.Error("Cancelled should report true")
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestScheduleErrors(t *testing.T) {
	e := NewEngine()
	if _, err := e.Schedule(-1, func() {}); err == nil {
		t.Error("negative delay should error")
	}
	if _, err := e.Schedule(1, nil); err == nil {
		t.Error("nil fn should error")
	}
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.MustSchedule(1, func() { fired = append(fired, e.Now()) })
	e.MustSchedule(5, func() { fired = append(fired, e.Now()) })
	if err := e.Run(3); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || e.Now() != 3 {
		t.Errorf("fired=%v now=%v", fired, e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || e.Now() != 5 {
		t.Errorf("fired=%v now=%v", fired, e.Now())
	}
}

func TestEventBudget(t *testing.T) {
	e := NewEngine()
	e.SetEventBudget(100)
	var loop func()
	loop = func() { e.MustSchedule(1, loop) }
	e.MustSchedule(1, loop)
	if err := e.RunAll(); err == nil {
		t.Error("livelock should exhaust the budget and error")
	}
}

func TestEventAt(t *testing.T) {
	e := NewEngine()
	ev := e.MustSchedule(4, func() {})
	if ev.At() != 4 {
		t.Errorf("At = %v", ev.At())
	}
}

// lineNet builds a 3-node line network 0-1-2 with weights 1 and 2.
func lineNet(t *testing.T) (*Engine, *Network) {
	t.Helper()
	g := graph.New(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	return e, NewNetwork(e, g)
}

func TestNetworkSendDelay(t *testing.T) {
	e, n := lineNet(t)
	var got []string
	var at Time
	n.Register(1, func(from graph.NodeID, msg Message) {
		s, ok := msg.(string)
		if !ok {
			t.Error("wrong payload type")
			return
		}
		got = append(got, s)
		at = e.Now()
		if from != 0 {
			t.Errorf("from = %d", from)
		}
	})
	if err := n.Send(0, 1, "hello"); err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "hello" || at != 1 {
		t.Errorf("got=%v at=%v", got, at)
	}
	if n.Sent != 1 || n.Delivered != 1 {
		t.Errorf("counters: sent=%d delivered=%d", n.Sent, n.Delivered)
	}
}

func TestNetworkSendNoSuchLink(t *testing.T) {
	_, n := lineNet(t)
	if err := n.Send(0, 2, "x"); err == nil {
		t.Error("send over non-edge should error")
	}
}

func TestNetworkFailedLinkLosesMessages(t *testing.T) {
	e, n := lineNet(t)
	delivered := false
	n.Register(1, func(graph.NodeID, Message) { delivered = true })
	n.FailLink(0, 1)
	if n.LinkUp(0, 1) {
		t.Error("failed link reported up")
	}
	if err := n.Send(0, 1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Error("message crossed a dead link")
	}
}

func TestNetworkMidFlightFailure(t *testing.T) {
	e, n := lineNet(t)
	delivered := false
	n.Register(1, func(graph.NodeID, Message) { delivered = true })
	if err := n.Send(0, 1, "x"); err != nil {
		t.Fatal(err)
	}
	// The cut happens while the message is in flight (at t=0.5 < delay 1).
	e.MustSchedule(0.5, func() { n.FailLink(0, 1) })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Error("in-flight message survived a cut")
	}
}

func TestNetworkFailNode(t *testing.T) {
	e, n := lineNet(t)
	delivered := false
	n.Register(1, func(graph.NodeID, Message) { delivered = true })
	n.FailNode(1)
	if err := n.Send(0, 1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Error("message delivered to failed node")
	}
	if !n.Failed().NodeBlocked(1) {
		t.Error("failure mask should record the node")
	}
}

func TestSendAlong(t *testing.T) {
	e, n := lineNet(t)
	midDelivered := false
	var endAt Time
	var endFrom graph.NodeID
	n.Register(1, func(graph.NodeID, Message) { midDelivered = true })
	n.Register(2, func(from graph.NodeID, msg Message) {
		endAt = e.Now()
		endFrom = from
	})
	if err := n.SendAlong(graph.Path{0, 1, 2}, "j"); err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if midDelivered {
		t.Error("transit node handler must not fire for source-routed messages")
	}
	if endAt != 3 {
		t.Errorf("end-to-end delivery at %v, want 3 (1+2)", endAt)
	}
	if endFrom != 0 {
		t.Errorf("from = %d, want original sender", endFrom)
	}
}

func TestSendAlongErrors(t *testing.T) {
	_, n := lineNet(t)
	if err := n.SendAlong(graph.Path{0}, "x"); err == nil {
		t.Error("single-node path should error")
	}
	if err := n.SendAlong(graph.Path{0, 2}, "x"); err == nil {
		t.Error("non-edge hop should error")
	}
}

func TestSendAlongCutMidPath(t *testing.T) {
	e, n := lineNet(t)
	delivered := false
	n.Register(2, func(graph.NodeID, Message) { delivered = true })
	if err := n.SendAlong(graph.Path{0, 1, 2}, "x"); err != nil {
		t.Fatal(err)
	}
	// Cut the second hop while the message is on the first.
	e.MustSchedule(0.5, func() { n.FailLink(1, 2) })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Error("message crossed a cut on a later hop")
	}
}
