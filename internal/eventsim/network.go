package eventsim

import (
	"errors"
	"fmt"

	"smrp/internal/graph"
)

// Message is an opaque protocol payload delivered between adjacent nodes.
type Message any

// Handler receives messages addressed to a node. from is the adjacent
// sender; at is the delivery time.
type Handler func(from graph.NodeID, msg Message)

// Network simulates hop-by-hop message delivery over a weighted graph:
// sending over an edge delivers after the edge-weight delay, unless the edge
// or a node has failed in the meantime (persistent failures — messages in
// flight on a failed component are lost, like packets on a cut fiber).
type Network struct {
	engine   *Engine
	g        *graph.Graph
	handlers map[graph.NodeID]Handler
	failed   *graph.Mask

	// Sent and Delivered count messages for overhead accounting.
	Sent      uint64
	Delivered uint64

	// freeTransits recycles in-flight message state. Engines are
	// single-threaded, so a plain slice freelist suffices — no sync.Pool.
	freeTransits []*transit
}

// transit is one message in flight: an owned copy of its remaining route, the
// index of the hop currently being crossed, and the payload. It implements
// runnable and re-schedules itself per hop, replacing the per-hop closure
// chain that used to allocate an Event plus a capture for every link crossed.
// The path is copied on acquire so callers may reuse their own path buffers
// the moment Send/SendAlong returns.
type transit struct {
	net  *Network
	path graph.Path
	i    int
	msg  Message
}

// acquireTransit returns a recycled (or new) transit with the route copied in.
func (n *Network) acquireTransit(path graph.Path, msg Message) *transit {
	var t *transit
	if k := len(n.freeTransits); k > 0 {
		t = n.freeTransits[k-1]
		n.freeTransits = n.freeTransits[:k-1]
	} else {
		t = &transit{net: n}
	}
	t.path = append(t.path[:0], path...)
	t.i = 0
	t.msg = msg
	return t
}

// releaseTransit returns t to the freelist, dropping payload references.
func (n *Network) releaseTransit(t *transit) {
	t.msg = nil
	t.path = t.path[:0]
	t.i = 0
	n.freeTransits = append(n.freeTransits, t)
}

// hop schedules t's delivery across its current hop. It reports false — the
// message is lost — when the link is gone or already failed at entry, exactly
// the pre-schedule check the recursive forwarder performed per hop.
func (t *transit) hop() bool {
	n := t.net
	u, v := t.path[t.i], t.path[t.i+1]
	w, ok := n.g.EdgeWeight(u, v)
	if !ok || n.failed.EdgeBlocked(u, v) {
		return false
	}
	n.engine.scheduleRunnable(Time(w), t)
	return true
}

// run fires when t finishes crossing its current hop: re-check the link (it
// may have died mid-flight — EdgeBlocked also covers endpoint node failures),
// then either advance to the next hop or deliver to the final node.
func (t *transit) run() {
	n := t.net
	u, v := t.path[t.i], t.path[t.i+1]
	if n.failed.EdgeBlocked(u, v) {
		n.releaseTransit(t)
		return
	}
	if t.i+2 < len(t.path) {
		t.i++
		if !t.hop() {
			n.releaseTransit(t)
		}
		return
	}
	h, ok := n.handlers[v]
	if !ok {
		n.releaseTransit(t)
		return
	}
	from, msg := t.path[0], t.msg
	n.releaseTransit(t) // release first: the handler may send (and reuse t)
	n.Delivered++
	h(from, msg)
}

// NewNetwork builds a network over g driven by engine.
func NewNetwork(engine *Engine, g *graph.Graph) *Network {
	return &Network{
		engine:   engine,
		g:        g,
		handlers: make(map[graph.NodeID]Handler),
		failed:   graph.NewMask(),
	}
}

// Engine returns the driving engine.
func (n *Network) Engine() *Engine { return n.engine }

// Graph returns the underlying topology.
func (n *Network) Graph() *graph.Graph { return n.g }

// Register installs the message handler for node id, replacing any previous
// handler.
func (n *Network) Register(id graph.NodeID, h Handler) {
	n.handlers[id] = h
}

// FailLink marks the undirected link (u, v) as persistently failed from the
// current simulation time onward.
func (n *Network) FailLink(u, v graph.NodeID) {
	n.failed.BlockEdge(u, v)
}

// FailNode marks node v (and all its links) as persistently failed.
func (n *Network) FailNode(v graph.NodeID) {
	n.failed.BlockNode(v)
}

// RepairLink restores the undirected link (u, v) from the current simulation
// time onward. Repairing a healthy link is a no-op; links blocked because an
// endpoint node is down stay down until the node is repaired.
func (n *Network) RepairLink(u, v graph.NodeID) {
	n.failed.UnblockEdge(u, v)
}

// RepairNode restores node v (and the links that failed with it). Links that
// were cut independently of the node stay cut.
func (n *Network) RepairNode(v graph.NodeID) {
	n.failed.UnblockNode(v)
}

// Failed returns the current failure mask (shared; callers must not mutate).
func (n *Network) Failed() *graph.Mask { return n.failed }

// LinkUp reports whether the link (u, v) exists and is currently healthy.
func (n *Network) LinkUp(u, v graph.NodeID) bool {
	return n.g.HasEdge(u, v) && !n.failed.EdgeBlocked(u, v)
}

// Send transmits msg from node u to adjacent node v. Delivery happens after
// the link's propagation delay; the message is silently lost if the link (or
// either endpoint) fails before delivery, or is already down at send time —
// exactly how a persistent cut behaves. Sending over a non-existent edge is
// a programming error and is reported immediately.
func (n *Network) Send(u, v graph.NodeID, msg Message) error {
	w, ok := n.g.EdgeWeight(u, v)
	if !ok {
		return fmt.Errorf("eventsim: send %d→%d: no such link", u, v)
	}
	n.Sent++
	if n.failed.EdgeBlocked(u, v) {
		return nil // lost on a dead link
	}
	t := n.acquireTransit(graph.Path{u, v}, msg)
	n.engine.scheduleRunnable(Time(w), t)
	return nil
}

// SendAlong forwards msg hop-by-hop along path (path[0] is the sender). Each
// hop's handler is NOT invoked; the message is delivered only to the final
// node after the cumulative path delay, but the transit is still subject to
// link failures hop-by-hop. This models source-routed control messages
// (e.g. Join_Req travelling the selected path) without requiring every node
// to implement forwarding for every message type.
//
// The path is copied before the call returns, so callers may reuse their
// path buffer immediately (the protocol refresh timers rely on this).
func (n *Network) SendAlong(path graph.Path, msg Message) error {
	if len(path) < 2 {
		return errors.New("eventsim: SendAlong needs at least one hop")
	}
	if err := path.Validate(n.g); err != nil {
		return fmt.Errorf("eventsim: SendAlong: %w", err)
	}
	n.Sent++
	t := n.acquireTransit(path, msg)
	if !t.hop() {
		n.releaseTransit(t) // lost on the first link
	}
	return nil
}
