// Package mrc implements a Multiple Routing Configurations (MRC) recovery
// baseline in the style of Enhanced MRC (Kumar & Krishna Prasad,
// arXiv:1212.0311): k backup routing configurations are precomputed over the
// shared topology, each isolating a disjoint class of nodes, and recovery
// switches the affected subtree onto the configuration that isolates the
// failed component — a table-driven config switch instead of SMRP's reactive
// nearest-survivor search.
//
// The implementation plugs into core.Session through the
// core.RecoveryStrategy seam:
//
//   - Precompute partitions the nodes (source excluded) into k isolation
//     classes, greedily keeping the residual graph connected when a class is
//     removed, and warms one source-rooted SPF tree per configuration. The
//     trees are built through graph.Dijkstra, so with an SPF cache attached
//     they are memoized by (source, config-mask fingerprint) and every
//     recovery-time lookup is a cache hit riding the iSPF lineage path.
//   - Recover routes each disconnected member along the backup
//     configuration isolating the failed component. Configurations isolate
//     exactly one failure class, so a proposal is validated against the
//     session's full accumulated mask; when every configuration is broken
//     (overlapping failures across classes — outside MRC's single-failure
//     design scope) the scaffold falls back to a live search and counts the
//     miss in Stats.StrategyFallbacks.
//
// MRC proper keeps isolated nodes reachable through restricted links; this
// reproduction approximates isolation by masking the class out entirely,
// which only forfeits recoveries where the member shares a class with the
// failed component — those surface as fallbacks, not wrong routes.
package mrc

import (
	"fmt"
	"math"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
)

// DefaultConfigurations is the backup-configuration count used when New is
// given k < 1. Small k keeps per-config state low but makes classes large
// (coarser isolation); the EMRC paper evaluates k in the low single digits.
const DefaultConfigurations = 4

// Deterministic per-element sizes of the precomputed state, in the style of
// graph.MemoryFootprint: fixed constants, never live heap measurement.
const (
	bytesPerSPTreeNode = 16 // Dist float64(8) + Parent NodeID(8), per node per config
	bytesPerClassEntry = 4  // classOf int32, per node
)

// Strategy is the MRC recovery strategy. Create with New, then install via
// core.Config.Strategy; one instance serves one session.
type Strategy struct {
	k int
	s *core.Session

	// classOf maps each node to the configuration that isolates it
	// (-1: never isolated — the source, plus nodes whose removal would
	// disconnect every candidate configuration).
	classOf []int32
	// masks[c] blocks configuration c's isolated class.
	masks []*graph.Mask

	built          bool
	precompSettled int
}

// New returns an MRC strategy precomputing k backup configurations
// (k < 1 selects DefaultConfigurations).
func New(k int) *Strategy {
	if k < 1 {
		k = DefaultConfigurations
	}
	return &Strategy{k: k}
}

// Name implements core.RecoveryStrategy.
func (st *Strategy) Name() string { return "mrc" }

// Configurations returns the backup-configuration count k.
func (st *Strategy) Configurations() int { return st.k }

// Precompute implements core.RecoveryStrategy: it binds the session and
// builds the isolation classes and per-configuration SPF trees once (the
// state depends only on the topology, so later calls — the session notifies
// after every tree mutation — return immediately).
func (st *Strategy) Precompute(s *core.Session) error {
	if st.built && st.s == s {
		return nil
	}
	st.s = s
	g := s.Graph()
	src := s.Tree().Source()
	n := g.NumNodes()

	st.classOf = make([]int32, n)
	for i := range st.classOf {
		st.classOf[i] = -1
	}
	st.masks = make([]*graph.Mask, st.k)
	for c := range st.masks {
		st.masks[c] = graph.NewMaskWithCapacity(n)
	}

	// Greedy class assignment in node-ID order, round-robin across
	// configurations: a node joins the first configuration that stays
	// connected with the node added to its isolated class. Nodes no
	// configuration can absorb (articulation points every class already
	// strains) stay unassigned; failures there fall back to a live search.
	next := 0
	for id := 0; id < n; id++ {
		v := graph.NodeID(id)
		if v == src {
			continue
		}
		for j := 0; j < st.k; j++ {
			c := (next + j) % st.k
			st.masks[c].BlockNode(v)
			if g.Connected(st.masks[c]) {
				st.classOf[id] = int32(c)
				next = (c + 1) % st.k
				break
			}
			st.masks[c].UnblockNode(v)
		}
	}

	// Warm one SPF tree per configuration through the shared cache and
	// account the settled work: a full sweep settles every reachable node.
	st.precompSettled = 0
	for c := range st.masks {
		t := g.Dijkstra(src, st.masks[c])
		for id := 0; id < n; id++ {
			if !math.IsInf(t.Dist[id], 1) {
				st.precompSettled++
			}
		}
	}
	st.built = true
	return nil
}

// Recover implements core.RecoveryStrategy: flush dead state, then offer
// each disconnected member its backup-configuration route — the
// configuration isolating the failed component first, then the remaining
// configurations in ascending order.
func (st *Strategy) Recover(fs []failure.Failure) (*core.HealReport, error) {
	if st.s == nil || !st.built {
		return nil, fmt.Errorf("mrc: %w", core.ErrUnboundStrategy)
	}
	prefs := st.preferredConfigs(fs)
	g := st.s.Graph()
	tree := st.s.Tree()
	src := tree.Source()
	return st.s.RecoverScaffold(fs, func(m graph.NodeID, mask *graph.Mask) (graph.Path, bool) {
		for _, c := range prefs {
			t := g.Dijkstra(src, st.masks[c])
			if !t.Reachable(m) {
				continue // m is in the isolated class, or cut off in this config
			}
			// The config path runs source→…→m; the scaffold wants the
			// member-outward direction and trims at the first live on-tree
			// node. Pre-validate against the accumulated mask so a broken
			// configuration falls through to the next one instead of
			// burning the proposal.
			p := t.PathTo(m).Reverse()
			if detourUsable(p, tree, mask) {
				return p, true
			}
		}
		return nil, false
	})
}

// preferredConfigs orders the configurations for one recovery: those
// isolating a component of fs first (node failures by the node's class,
// link failures by either endpoint's class), then every other configuration
// ascending. The order is deterministic in fs.
func (st *Strategy) preferredConfigs(fs []failure.Failure) []int {
	prefs := make([]int, 0, st.k)
	seen := make([]bool, st.k)
	add := func(v graph.NodeID) {
		if v < 0 || int(v) >= len(st.classOf) {
			return
		}
		if c := st.classOf[v]; c >= 0 && !seen[c] {
			seen[c] = true
			prefs = append(prefs, int(c))
		}
	}
	for _, f := range fs {
		switch f.Kind {
		case failure.NodeFailure:
			add(f.Node)
		case failure.LinkFailure:
			add(f.Edge.A)
			add(f.Edge.B)
		}
	}
	for c := 0; c < st.k; c++ {
		if !seen[c] {
			prefs = append(prefs, c)
		}
	}
	return prefs
}

// detourUsable reports whether the member-outward path p reaches a live
// on-tree node without crossing the accumulated failure mask — the same
// trim-at-first-on-tree-node walk core.Session.sanitizeDetour performs, run
// early so Recover can try the next configuration on a miss.
func detourUsable(p graph.Path, tree interface{ OnTree(graph.NodeID) bool }, mask *graph.Mask) bool {
	for i, n := range p {
		if mask.NodeBlocked(n) {
			return false
		}
		if i > 0 {
			if mask.EdgeBlocked(p[i-1], n) {
				return false
			}
			if tree.OnTree(n) {
				return true
			}
		}
	}
	return false
}

// StateBytes implements core.RecoveryStrategy: k precomputed SPF trees plus
// the per-configuration class masks and the class table, at fixed
// per-element sizes.
func (st *Strategy) StateBytes() int64 {
	if !st.built {
		return 0
	}
	n := int64(len(st.classOf))
	maskWords := (n + 63) / 64
	perConfig := n*bytesPerSPTreeNode + maskWords*8
	return int64(st.k)*perConfig + n*bytesPerClassEntry
}

// PrecomputeSettled returns the nodes settled building the per-configuration
// SPF trees — the strategy's precompute-time share of the settled-node work
// the strategies study reports.
func (st *Strategy) PrecomputeSettled() int { return st.precompSettled }
