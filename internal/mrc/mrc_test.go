package mrc

import (
	"errors"
	"reflect"
	"testing"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

// TestClassPartition checks the configuration construction across random
// topologies: every assigned node sits in exactly one class, the class table
// and the per-configuration masks agree, and — the MRC safety property —
// removing any single class leaves the residual graph connected.
func TestClassPartition(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 2005} {
		rng := topology.NewRNG(seed)
		g, err := topology.Waxman(topology.WaxmanConfig{
			N: 40, Alpha: 0.2, Beta: 0.35, EnsureConnected: true,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		source := graph.NodeID(0)
		st := New(0)
		cfg := core.DefaultConfig()
		cfg.Strategy = st
		if _, err := core.NewSession(g, source, cfg); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.Configurations() != DefaultConfigurations {
			t.Fatalf("seed %d: k = %d, want %d", seed, st.Configurations(), DefaultConfigurations)
		}
		assigned := 0
		for id, c := range st.classOf {
			v := graph.NodeID(id)
			if v == source {
				if c != -1 {
					t.Errorf("seed %d: source assigned to class %d", seed, c)
				}
				continue
			}
			inClasses := 0
			for k, m := range st.masks {
				if m.NodeBlocked(v) {
					inClasses++
					if int32(k) != c {
						t.Errorf("seed %d: node %d blocked in config %d but classOf says %d", seed, v, k, c)
					}
				}
			}
			if c >= 0 {
				assigned++
				if inClasses != 1 {
					t.Errorf("seed %d: node %d in %d classes, want 1", seed, v, inClasses)
				}
			} else if inClasses != 0 {
				t.Errorf("seed %d: unassigned node %d blocked in %d configs", seed, v, inClasses)
			}
		}
		if assigned == 0 {
			t.Errorf("seed %d: no node assigned to any class", seed)
		}
		for k, m := range st.masks {
			if !g.Connected(m) {
				t.Errorf("seed %d: residual graph disconnected when class %d removed", seed, k)
			}
		}
		if st.StateBytes() <= 0 {
			t.Errorf("seed %d: StateBytes = %d, want > 0", seed, st.StateBytes())
		}
		if st.PrecomputeSettled() <= 0 {
			t.Errorf("seed %d: PrecomputeSettled = %d, want > 0", seed, st.PrecomputeSettled())
		}
	}
}

// TestRecoverPaperFig1 plays the paper's Figure-1 example against MRC. With
// k=2 the greedy assignment isolates {A, C} in config 0 and {B, D} in config
// 1. Failing L_AD, the config isolating A routes D over S→B→D, so MRC
// recovers D at RD 4 where SMRP's reactive local detour finds D→C at RD 2 —
// the precomputed-state-vs-recovery-quality trade the testbed measures.
func TestRecoverPaperFig1(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	st := New(2)
	cfg := core.DefaultConfig()
	cfg.DThresh = 0 // SPF tree: S→A→C, S→A→D
	cfg.Strategy = st
	s, err := core.NewSession(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []graph.NodeID{3, 4} {
		if _, err := s.Join(m); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Recover(failure.LinkDown(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Disconnected) != 1 || rep.Disconnected[0] != 4 {
		t.Fatalf("disconnected = %v, want [4]", rep.Disconnected)
	}
	if rd := rep.RecoveryDistance[4]; rd != 4 {
		t.Errorf("RD = %v, want 4 (config route S→B→D)", rd)
	}
	if want := (graph.Path{4, 2, 0}); !reflect.DeepEqual(rep.Detours[4], want) {
		t.Errorf("detour = %v, want %v", rep.Detours[4], want)
	}
	if fb := s.Stats().StrategyFallbacks; fb != 0 {
		t.Errorf("fallbacks = %d, want 0 (config hit)", fb)
	}
	if err := s.Tree().Validate(); err != nil {
		t.Errorf("tree invalid after recovery: %v", err)
	}
}

// TestUnbound pins the not-precomputed error contract.
func TestUnbound(t *testing.T) {
	if _, err := New(2).Recover(nil); !errors.Is(err, core.ErrUnboundStrategy) {
		t.Errorf("Recover on unbound strategy = %v, want ErrUnboundStrategy", err)
	}
}
