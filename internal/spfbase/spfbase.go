// Package spfbase implements the baseline the paper compares SMRP against:
// an SPF-based multicast routing protocol in the style of MOSPF/PIM. Members
// join along the source's unicast shortest-path tree, and failure recovery
// is the "global detour": wait for unicast routing to reconverge, then
// rejoin along the new shortest path to the source.
package spfbase

import (
	"errors"
	"fmt"
	"slices"

	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/multicast"
)

// Sentinel errors returned by Session operations.
var (
	// ErrAlreadyMember is returned when a join names an existing member.
	ErrAlreadyMember = errors.New("spfbase: node is already a member")
	// ErrNoPath is returned when a joining node cannot reach the source.
	ErrNoPath = errors.New("spfbase: no path to the source")
)

// Session is a synchronous SPF-based multicast session. All member paths
// follow the source-rooted shortest-path tree (deterministic tie-breaking),
// so shared prefixes merge maximally — exactly the link/node concentration
// SMRP is designed to avoid.
//
// Session is not safe for concurrent use. Its shortest-path queries go
// through graph.Graph.Dijkstra, so when the topology has a memoizing SPF
// cache attached (Graph.EnableSPFCache) sessions over the same graph share
// memoized trees automatically — including across parallel trials that pair
// an SPF baseline with SMRP variants on one topology.
type Session struct {
	g    *graph.Graph
	tree *multicast.Tree
	// spt caches the source's shortest-path tree over the healthy network.
	// It may be shared with the graph's SPF cache and must not be mutated.
	spt *graph.SPTree
}

// NewSession creates an SPF multicast session on g rooted at source.
func NewSession(g *graph.Graph, source graph.NodeID) (*Session, error) {
	tree, err := multicast.New(g, source)
	if err != nil {
		return nil, err
	}
	return &Session{
		g:    g,
		tree: tree,
		spt:  g.Dijkstra(source, nil),
	}, nil
}

// Tree returns the session's multicast tree. Callers must not mutate it
// directly.
func (s *Session) Tree() *multicast.Tree { return s.tree }

// Join admits nr along the source's shortest path, merging at the deepest
// node already on the tree (PIM-style join toward the source).
func (s *Session) Join(nr graph.NodeID) error {
	if nr < 0 || int(nr) >= s.g.NumNodes() {
		return fmt.Errorf("join %d: %w", nr, graph.ErrUnknownNode)
	}
	if s.tree.IsMember(nr) {
		return fmt.Errorf("join %d: %w", nr, ErrAlreadyMember)
	}
	if s.tree.OnTree(nr) {
		return s.tree.Graft(graph.Path{nr}, true)
	}
	p := s.spt.PathTo(nr) // source → … → nr
	if p == nil {
		return fmt.Errorf("join %d: %w", nr, ErrNoPath)
	}
	seg := mergeSegment(s.tree, p)
	if err := s.tree.Graft(seg, true); err != nil {
		return fmt.Errorf("join %d: graft: %w", nr, err)
	}
	return nil
}

// mergeSegment trims a source-rooted path to its suffix starting at the
// deepest on-tree node, i.e. the segment a PIM join would actually set up.
// All member paths come from the same source SPT, so every node before that
// suffix is already on the tree with the same upstream.
func mergeSegment(t *multicast.Tree, p graph.Path) graph.Path {
	start := 0
	for i, n := range p {
		if t.OnTree(n) {
			start = i
		} else {
			break
		}
	}
	return p[start:]
}

// Leave removes member m, pruning its unused branch.
func (s *Session) Leave(m graph.NodeID) error {
	return s.tree.Leave(m)
}

// FlushDead removes all tree state cut off from the source by the mask,
// returning the members that lost their branch. The protocol layer calls
// this at failure time and rejoins members individually after their routers
// reconverge.
func (s *Session) FlushDead(mask *graph.Mask) ([]graph.NodeID, error) {
	surviving := failure.SurvivingNodes(s.tree, mask)
	if len(surviving) == 0 {
		return nil, failure.ErrSourceFailed
	}
	disconnected := failure.DisconnectedMembers(s.tree, mask)
	var deadRoots []graph.NodeID
	for _, n := range s.tree.Nodes() {
		if surviving[n] || n == s.tree.Source() {
			continue
		}
		p, ok := s.tree.Parent(n)
		if ok && (p == graph.Invalid || surviving[p]) {
			deadRoots = append(deadRoots, n)
		}
	}
	for _, r := range deadRoots {
		if !s.tree.OnTree(r) {
			continue
		}
		if err := s.tree.DetachSubtree(r); err != nil {
			return nil, fmt.Errorf("flush dead: %w", err)
		}
	}
	return disconnected, nil
}

// HealReport describes an SPF (global-detour) recovery.
type HealReport struct {
	Failure      failure.Failure
	Disconnected []graph.NodeID
	// RecoveryDistance maps each recovered member to the weight of the new
	// links its rejoin brought into the tree (the global-detour RD).
	RecoveryDistance map[graph.NodeID]float64
	// NewPaths maps each recovered member to its post-reconvergence unicast
	// path to the source (member → … → source).
	NewPaths map[graph.NodeID]graph.Path
	// Unrecovered lists members partitioned from the source.
	Unrecovered []graph.NodeID
	// Pruned lists stale relays reclaimed after recovery.
	Pruned []graph.NodeID
}

// Heal restores the session after the failure using global detours: the
// unicast routing reconverges (modeled by recomputing the source SPT on the
// residual network), dead tree state is flushed, and every disconnected
// member rejoins along its new shortest path. Recovery distances are
// measured against the surviving tree before any rejoin, matching the
// per-member accounting of the paper's evaluation.
func (s *Session) Heal(f failure.Failure) (*HealReport, error) {
	mask := f.Mask()
	surviving := failure.SurvivingNodes(s.tree, mask)
	if len(surviving) == 0 {
		return nil, failure.ErrSourceFailed
	}
	rep := &HealReport{
		Failure:          f,
		Disconnected:     failure.DisconnectedMembers(s.tree, mask),
		RecoveryDistance: make(map[graph.NodeID]float64),
		NewPaths:         make(map[graph.NodeID]graph.Path),
	}

	// Measure RDs against the pre-recovery surviving tree.
	for _, m := range rep.Disconnected {
		p, rd, err := failure.GlobalDetour(s.tree, mask, m)
		if err != nil {
			rep.Unrecovered = append(rep.Unrecovered, m)
			continue
		}
		rep.RecoveryDistance[m] = rd
		rep.NewPaths[m] = p
	}
	slices.Sort(rep.Unrecovered)

	// Flush dead state.
	var deadRoots []graph.NodeID
	for _, n := range s.tree.Nodes() {
		if surviving[n] || n == s.tree.Source() {
			continue
		}
		p, ok := s.tree.Parent(n)
		if ok && (p == graph.Invalid || surviving[p]) {
			deadRoots = append(deadRoots, n)
		}
	}
	for _, r := range deadRoots {
		if !s.tree.OnTree(r) {
			continue
		}
		if err := s.tree.DetachSubtree(r); err != nil {
			return nil, fmt.Errorf("heal: flush %d: %w", r, err)
		}
	}

	// Reconverged routing: new SPT over the residual network.
	s.spt = s.g.Dijkstra(s.tree.Source(), mask)

	// Rejoin each recoverable member along its new unicast path.
	for _, m := range rep.Disconnected {
		if _, ok := rep.NewPaths[m]; !ok {
			continue
		}
		p := s.spt.PathTo(m)
		if p == nil {
			rep.Unrecovered = append(rep.Unrecovered, m)
			delete(rep.RecoveryDistance, m)
			delete(rep.NewPaths, m)
			continue
		}
		seg := mergeSegment(s.tree, p)
		if err := s.tree.Graft(seg, true); err != nil {
			return nil, fmt.Errorf("heal: regraft %d: %w", m, err)
		}
	}
	slices.Sort(rep.Unrecovered)

	rep.Pruned = s.tree.PruneStale()
	return rep, nil
}
