package spfbase

import (
	"errors"
	"math"
	"testing"

	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

func fig1Session(t *testing.T) *Session {
	t.Helper()
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSessionRejectsBadSource(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession(g, 42); err == nil {
		t.Error("expected error for source outside graph")
	}
}

func TestJoinFollowsSPF(t *testing.T) {
	s := fig1Session(t)
	// C (3) and D (4) both route via A (1) on shortest paths.
	for _, m := range []graph.NodeID{3, 4} {
		if err := s.Join(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	pC, _ := s.Tree().PathToSource(3)
	pD, _ := s.Tree().PathToSource(4)
	if pC.String() != "3→1→0" || pD.String() != "4→1→0" {
		t.Errorf("paths C=%v D=%v, want via A", pC, pD)
	}
	// Per-member delay equals the unicast SPF delay — the defining property
	// of the baseline.
	spt := s.Tree().Graph().Dijkstra(0, nil)
	for _, m := range s.Tree().Members() {
		d, err := s.Tree().DelayTo(m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d-spt.Dist[m]) > 1e-9 {
			t.Errorf("member %d delay %v != SPF %v", m, d, spt.Dist[m])
		}
	}
}

func TestJoinErrors(t *testing.T) {
	s := fig1Session(t)
	if err := s.Join(99); err == nil {
		t.Error("unknown node should fail")
	}
	if err := s.Join(3); err != nil {
		t.Fatal(err)
	}
	if err := s.Join(3); !errors.Is(err, ErrAlreadyMember) {
		t.Errorf("duplicate join err = %v", err)
	}
	// On-tree relay joins in place.
	if err := s.Join(1); err != nil {
		t.Fatal(err)
	}
	if !s.Tree().IsMember(1) {
		t.Error("relay should have become member in place")
	}
}

func TestJoinUnreachable(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Join(2); !errors.Is(err, ErrNoPath) {
		t.Errorf("unreachable join err = %v", err)
	}
}

func TestLeave(t *testing.T) {
	s := fig1Session(t)
	for _, m := range []graph.NodeID{3, 4} {
		if err := s.Join(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Leave(3); err != nil {
		t.Fatal(err)
	}
	if s.Tree().OnTree(3) {
		t.Error("left member should be pruned")
	}
	if !s.Tree().OnTree(1) {
		t.Error("shared relay must remain for D")
	}
}

// TestHealGlobalDetour replays the paper's Figure 1(b): after L_AD fails,
// the SPF baseline reconnects D along D→B→S with all-new links (RD 4).
func TestHealGlobalDetour(t *testing.T) {
	s := fig1Session(t)
	for _, m := range []graph.NodeID{3, 4} {
		if err := s.Join(m); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Heal(failure.LinkDown(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Disconnected) != 1 || rep.Disconnected[0] != 4 {
		t.Fatalf("disconnected = %v", rep.Disconnected)
	}
	if rd := rep.RecoveryDistance[4]; rd != 4 {
		t.Errorf("RD = %v, want 4 (D→B→S, both links new)", rd)
	}
	if rep.NewPaths[4].String() != "4→2→0" {
		t.Errorf("new path = %v, want D→B→S", rep.NewPaths[4])
	}
	if err := s.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Tree().UsesEdge(graph.MakeEdgeID(1, 4)) {
		t.Error("healed tree uses failed link")
	}
	if p, _ := s.Tree().Parent(4); p != 2 {
		t.Errorf("D's parent = %d, want B", p)
	}
}

func TestHealSourceFailure(t *testing.T) {
	s := fig1Session(t)
	if err := s.Join(3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Heal(failure.NodeDown(0)); !errors.Is(err, failure.ErrSourceFailed) {
		t.Errorf("err = %v", err)
	}
}

func TestHealUnrecoverable(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Join(2); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Heal(failure.LinkDown(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unrecovered) != 1 || rep.Unrecovered[0] != 2 {
		t.Errorf("unrecovered = %v", rep.Unrecovered)
	}
	if err := s.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestHealRandom checks global-detour healing invariants across random
// scenarios: valid trees, no failed component in use, members preserved, and
// every member back on its post-reconvergence shortest path.
func TestHealRandom(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		rng := topology.NewRNG(seed + 500)
		g, err := topology.Waxman(topology.WaxmanConfig{
			N: 70, Alpha: 0.2, Beta: topology.DefaultBeta, EnsureConnected: true,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSession(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		members := rng.Sample(69, 12)
		for _, m := range members {
			if err := s.Join(graph.NodeID(m + 1)); err != nil {
				t.Fatal(err)
			}
		}
		victim := graph.NodeID(members[3] + 1)
		f, err := failure.WorstCaseFor(s.Tree(), victim)
		if err != nil {
			t.Fatal(err)
		}
		before := s.Tree().NumMembers()
		rep, err := s.Heal(f)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Tree().Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if s.Tree().UsesEdge(f.Edge) {
			t.Errorf("seed %d: tree uses failed link", seed)
		}
		if got := s.Tree().NumMembers() + len(rep.Unrecovered); got != before {
			t.Errorf("seed %d: member accounting broken", seed)
		}
		// Every recovered member sits on its reconverged shortest path.
		mask := f.Mask()
		spt := g.Dijkstra(0, mask)
		for m := range rep.RecoveryDistance {
			d, err := s.Tree().DelayTo(m)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if math.Abs(d-spt.Dist[m]) > 1e-9 {
				t.Errorf("seed %d: member %d post-heal delay %v != reconverged SPF %v",
					seed, m, d, spt.Dist[m])
			}
		}
	}
}

func TestFlushDeadDirect(t *testing.T) {
	s := fig1Session(t)
	for _, m := range []graph.NodeID{3, 4} {
		if err := s.Join(m); err != nil {
			t.Fatal(err)
		}
	}
	// L_SA failure kills both branches.
	disc, err := s.FlushDead(failure.LinkDown(0, 1).Mask())
	if err != nil {
		t.Fatal(err)
	}
	if len(disc) != 2 {
		t.Errorf("disconnected = %v", disc)
	}
	if s.Tree().NumMembers() != 0 || s.Tree().NumNodes() != 1 {
		t.Errorf("dead state not flushed: %v", s.Tree().Nodes())
	}
	if err := s.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	// Source failure is unrecoverable.
	if _, err := s.FlushDead(failure.NodeDown(0).Mask()); !errors.Is(err, failure.ErrSourceFailed) {
		t.Errorf("err = %v", err)
	}
}
