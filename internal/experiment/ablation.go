package experiment

import (
	"context"
	"fmt"
	"strings"

	"smrp/internal/core"
	"smrp/internal/metrics"
)

// AblationRow is one configuration variant of an ablation study.
type AblationRow struct {
	Name     string
	RDRel    metrics.Summary
	DelayRel metrics.Summary
	CostRel  metrics.Summary
	// Overhead counters (per scenario averages) for the §3.3.2 comparison.
	SHRUpdates  float64
	SHRComputes float64
	QueryMsgs   float64
	Reshapes    float64
}

// AblationResult is a full ablation study.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// Render prints the study as an aligned table.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "  %-24s %-20s %-20s %-20s %-10s %-10s %-10s %-8s\n",
		"variant", "RD_rel", "Delay_rel", "Cost_rel", "shr-upd", "shr-cmp", "queries", "reshapes")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-24s %7.4f ± %-9.4f %7.4f ± %-9.4f %7.4f ± %-9.4f %-10.1f %-10.1f %-10.1f %-8.1f\n",
			row.Name,
			row.RDRel.Mean, row.RDRel.CI95,
			row.DelayRel.Mean, row.DelayRel.CI95,
			row.CostRel.Mean, row.CostRel.CI95,
			row.SHRUpdates, row.SHRComputes, row.QueryMsgs, row.Reshapes)
	}
	return b.String()
}

// ablationVariant evaluates all scenarios under one SMRP configuration on
// the parallel runner and summarizes metrics plus overhead counters. The
// scenario set is shared between variants, so the per-topology SPF caches
// attached by GenScenarios serve hits across the whole study.
func ablationVariant(ctx context.Context, name string, scenarios []Scenario, cfg core.Config, useLocalOnSPF bool, seed uint64) (AblationRow, error) {
	results, err := evaluateAll(ctx, scenarios, cfg, seed)
	if err != nil {
		return AblationRow{}, err
	}
	var agg Aggregate
	var updates, computes, queries, reshapes float64
	for _, res := range results {
		if err := agg.Accumulate(res); err != nil {
			return AblationRow{}, err
		}
		updates += float64(res.SMRPStats.SHRUpdates)
		computes += float64(res.SMRPStats.SHRComputes)
		queries += float64(res.SMRPStats.QueryMessages)
		reshapes += float64(res.SMRPStats.Reshapes)
	}
	n := float64(len(scenarios))
	rdSample := agg.RDRel
	if useLocalOnSPF {
		rdSample = agg.RDRelLocalOnSPF
	}
	rd, err := rdSample.Summarize()
	if err != nil {
		return AblationRow{}, fmt.Errorf("ablation %s: %w", name, err)
	}
	dl, err := agg.DelayRel.Summarize()
	if err != nil {
		return AblationRow{}, err
	}
	ct, err := agg.CostRel.Summarize()
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Name:        name,
		RDRel:       rd,
		DelayRel:    dl,
		CostRel:     ct,
		SHRUpdates:  updates / n,
		SHRComputes: computes / n,
		QueryMsgs:   queries / n,
		Reshapes:    reshapes / n,
	}, nil
}

// RunAblations executes the four design ablations called out in DESIGN.md on
// a shared scenario set:
//
//   - detour-on-spf-tree: local detours applied to the *SPF* tree, isolating
//     how much of the gain comes from the recovery strategy vs. the SMRP
//     tree shape;
//   - query-scheme: §3.3.1 partial-knowledge joins vs. full topology;
//   - deferred-shr: §3.3.2 lazy SHR maintenance (identical metrics, very
//     different overhead profile);
//   - no-reshaping / condition-I-only: §3.2.3 contribution of reshaping.
func RunAblations(nTopo, nSets int, seed uint64) (*AblationResult, error) {
	return RunAblationsCtx(context.Background(), nTopo, nSets, seed)
}

// RunAblationsCtx is RunAblations under a caller-supplied context.
func RunAblationsCtx(ctx context.Context, nTopo, nSets int, seed uint64) (*AblationResult, error) {
	base := DefaultBase()
	scenarios, err := GenScenarios(base, nTopo, nSets, seed)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{
		Title: fmt.Sprintf("Design ablations (N=%d NG=%d alpha=%.2f Dthresh=%.1f, %d scenarios)",
			base.N, base.NG, base.Alpha, base.SMRP.DThresh, len(scenarios)),
	}

	full := core.DefaultConfig()

	noReshape := full
	noReshape.ReshapeDelta = 0
	noReshape.PeriodicReshape = false

	condIOnly := full
	condIOnly.PeriodicReshape = false

	query := full
	query.Knowledge = core.QueryScheme

	deferred := full
	deferred.SHRMode = core.DeferredSHR

	type variant struct {
		name       string
		cfg        core.Config
		localOnSPF bool
	}
	for _, v := range []variant{
		{name: "smrp-full", cfg: full},
		{name: "detour-on-spf-tree", cfg: full, localOnSPF: true},
		{name: "query-scheme", cfg: query},
		{name: "deferred-shr", cfg: deferred},
		{name: "no-reshaping", cfg: noReshape},
		{name: "condition-I-only", cfg: condIOnly},
	} {
		row, err := ablationVariant(ctx, v.name, scenarios, v.cfg, v.localOnSPF, seed)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
