package experiment

import (
	"context"
	"fmt"
	"strings"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/hierarchy"
	"smrp/internal/metrics"
	"smrp/internal/runner"
	"smrp/internal/topology"
)

// HierResult reproduces the §3.3.3 / Figure 6 architecture comparison:
// failures inside a stub domain are recovered with reconfiguration confined
// to that domain, versus a flat session where any node may be touched.
type HierResult struct {
	Runs int
	// ScopeHier is the number of nodes in the recovery domain that had to
	// react; ScopeFlat is the whole-network size a flat session exposes.
	ScopeHier metrics.Summary
	ScopeFlat metrics.Summary
	// RDHier / RDFlat are total recovery distances for the same failure.
	RDHier metrics.Summary
	RDFlat metrics.Summary
	// DelayStretch is the hierarchical end-to-end delay relative to the
	// flat SMRP tree (the price of domain confinement).
	DelayStretch metrics.Summary
}

// Render prints the comparison.
func (r *HierResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hierarchical recovery architecture (transit–stub, %d runs)\n", r.Runs)
	fmt.Fprintf(&b, "  %-28s %-24s %-24s\n", "metric", "hierarchical", "flat")
	fmt.Fprintf(&b, "  %-28s %8.2f ± %-13.2f %8.2f ± %-13.2f\n", "recovery scope (nodes)",
		r.ScopeHier.Mean, r.ScopeHier.CI95, r.ScopeFlat.Mean, r.ScopeFlat.CI95)
	fmt.Fprintf(&b, "  %-28s %8.4f ± %-13.4f %8.4f ± %-13.4f\n", "total recovery distance",
		r.RDHier.Mean, r.RDHier.CI95, r.RDFlat.Mean, r.RDFlat.CI95)
	fmt.Fprintf(&b, "  %-28s %8.4f ± %-13.4f\n", "delay stretch (hier/flat)",
		r.DelayStretch.Mean, r.DelayStretch.CI95)
	return b.String()
}

// hierRun is one trial's contribution. Delay-stretch observations are
// recorded even when the failure-recovery phase is skipped (matching the
// sequential accounting); scope/RD observations only when ok.
type hierRun struct {
	stretches      []float64
	ok             bool
	scopeH, scopeF float64
	rdH, rdF       float64
}

// RunHierarchy builds paired hierarchical and flat SMRP sessions over
// transit–stub topologies, injects a worst-case failure inside a member's
// stub domain, and compares recovery scope and distance. Runs execute on the
// parallel runner and fold in run order (bit-identical for any worker
// count).
func RunHierarchy(runs int, seed uint64) (*HierResult, error) {
	return RunHierarchyCtx(context.Background(), runs, seed)
}

// RunHierarchyCtx is RunHierarchy under a caller-supplied context.
func RunHierarchyCtx(ctx context.Context, runs int, seed uint64) (*HierResult, error) {
	cfg := core.DefaultConfig()
	out := &HierResult{}

	runResults, err := mapTrialsCtx(ctx, seed, runs, func(_ context.Context, t runner.Trial) (*hierRun, error) {
		r := t.Index
		hr := &hierRun{}
		rng := topology.NewRNG(seed + uint64(r)*104729)
		ts, err := topology.GenerateTransitStub(topology.DefaultTransitStubConfig(), rng)
		if err != nil {
			return nil, err
		}
		// Stub sessions and worst-case probes re-query shortest paths on the
		// shared full topology; memoize them for this run.
		ts.Graph.EnableSPFCache()
		// Source: first non-gateway node of stub 0.
		var src graph.NodeID = graph.Invalid
		for _, n := range ts.Stubs[0].Nodes {
			if n != ts.Stubs[0].Gateway {
				src = n
				break
			}
		}
		if src == graph.Invalid {
			return hr, nil
		}
		// Members: two non-gateway nodes from every stub.
		var members []graph.NodeID
		for i := range ts.Stubs {
			count := 0
			for _, n := range ts.Stubs[i].Nodes {
				if n != ts.Stubs[i].Gateway && n != src {
					members = append(members, n)
					if count++; count == 2 {
						break
					}
				}
			}
		}

		hier, err := hierarchy.New(ts, src, cfg)
		if err != nil {
			return nil, err
		}
		flat, err := core.NewSession(ts.Graph, src, cfg)
		if err != nil {
			return nil, err
		}
		for _, m := range members {
			if err := hier.Join(m); err != nil {
				return nil, err
			}
			if _, err := flat.Join(m); err != nil {
				return nil, err
			}
		}

		// Delay stretch across members.
		for _, m := range members {
			dh, err := hier.EndToEndDelay(m)
			if err != nil {
				return nil, err
			}
			df, err := flat.Tree().DelayTo(m)
			if err != nil {
				return nil, err
			}
			if df > 0 {
				hr.stretches = append(hr.stretches, dh/df)
			}
		}

		// Worst-case failure for a member in a non-source stub, inside its
		// own stub domain.
		victim, victimDomain := graph.Invalid, -1
		for _, m := range members {
			if d := ts.DomainOf(m); d.ID != ts.DomainOf(src).ID {
				victim, victimDomain = m, d.ID
				break
			}
		}
		if victim == graph.Invalid {
			return hr, nil
		}
		sess, nm, err := hier.StubTree(victimDomain)
		if err != nil {
			return nil, err
		}
		sub, _ := nm.ToSub(victim)
		fSub, err := failure.WorstCaseFor(sess.Tree(), sub)
		if err != nil {
			return hr, nil
		}
		fullA, _ := nm.ToFull(fSub.Edge.A)
		fullB, _ := nm.ToFull(fSub.Edge.B)
		f := failure.LinkDown(fullA, fullB)

		hrep, err := hier.Recover(f)
		if err != nil {
			return hr, nil // failure may be unrecoverable inside the domain
		}
		frep, err := flat.Recover(f)
		if err != nil {
			return hr, nil
		}
		hr.ok = true
		hr.scopeH = float64(hrep.NodesInDomain)
		hr.scopeF = float64(ts.Graph.NumNodes())
		hr.rdH = hrep.Heal.TotalRecoveryDistance()
		hr.rdF = frep.TotalRecoveryDistance()
		return hr, nil
	})
	if err != nil {
		return nil, err
	}

	// Fold in run order: delay-stretch observations from every run, scope/RD
	// only from runs whose failure-recovery phase completed.
	var stretch, scopeH, scopeF, rdH, rdF metrics.Sample
	for _, hr := range runResults {
		for _, s := range hr.stretches {
			stretch.Add(s)
		}
		if !hr.ok {
			continue
		}
		scopeH.Add(hr.scopeH)
		scopeF.Add(hr.scopeF)
		rdH.Add(hr.rdH)
		rdF.Add(hr.rdF)
		out.Runs++
	}
	if out.Runs == 0 {
		return nil, fmt.Errorf("experiment: no usable hierarchy runs")
	}
	if out.ScopeHier, err = scopeH.Summarize(); err != nil {
		return nil, err
	}
	if out.ScopeFlat, err = scopeF.Summarize(); err != nil {
		return nil, err
	}
	if out.RDHier, err = rdH.Summarize(); err != nil {
		return nil, err
	}
	if out.RDFlat, err = rdF.Summarize(); err != nil {
		return nil, err
	}
	if out.DelayStretch, err = stretch.Summarize(); err != nil {
		return nil, err
	}
	return out, nil
}
