package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestSweepWriteCSV(t *testing.T) {
	res, err := RunFig8(1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(Fig8DThreshValues) {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "D_thresh,rd_rel_mean") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestFig7WriteCSV(t *testing.T) {
	res := &Fig7Result{Points: []Fig7Point{{Global: 2, Local: 1}, {Global: 3, Local: 2.5}}}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "global_rd,local_rd\n2,1\n3,2.5\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}

func TestAblationWriteCSV(t *testing.T) {
	res := &AblationResult{Rows: []AblationRow{{Name: "x"}}}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "variant,rd_rel_mean") || !strings.Contains(buf.String(), "\nx,") {
		t.Errorf("csv = %q", buf.String())
	}
}
