package experiment

import (
	"os"
	"testing"
)

// TestCaptureGolden dumps rendered study output at seed 2005 for manual
// byte-identity verification. Gated by SMRP_CAPTURE_GOLDEN=<path>.
func TestCaptureGolden(t *testing.T) {
	path := os.Getenv("SMRP_CAPTURE_GOLDEN")
	if path == "" {
		t.Skip("set SMRP_CAPTURE_GOLDEN")
	}
	defer SetParallelism(0)
	SetParallelism(1)
	out := renderStudies(t, 2005)
	// Bench-summary-scale runs of the two acceptance figures.
	r8, err := RunFig8(5, 5, 2005)
	if err != nil {
		t.Fatal(err)
	}
	out += r8.Render()
	ch, err := RunChurn(5, 2005)
	if err != nil {
		t.Fatal(err)
	}
	out += ch.Render()
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
}
