package experiment

import "testing"

func TestProtectionExperiment(t *testing.T) {
	res, err := RunProtection(3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs == 0 {
		t.Fatal("no runs")
	}
	// Médard trees must survive every single-link worst case by
	// construction on biconnected graphs.
	if res.RedundantCoverage < 0.999 {
		t.Errorf("redundant-tree coverage = %.3f, want 1.0", res.RedundantCoverage)
	}
	// Dependable connections cover most but not necessarily all (backup and
	// primary share the first hop only when forced; worst cases target the
	// source-incident link of the primary, which disjoint backups avoid).
	if res.DependableCoverage < 0.8 {
		t.Errorf("dependable coverage = %.3f suspiciously low", res.DependableCoverage)
	}
	// Reactive schemes have positive RD; SMRP below SPF.
	if res.RDSMRP.Mean <= 0 || res.RDSPF.Mean <= 0 {
		t.Error("reactive RD must be positive")
	}
	if res.RDSMRP.Mean >= res.RDSPF.Mean {
		t.Errorf("SMRP RD %.3f should beat SPF %.3f", res.RDSMRP.Mean, res.RDSPF.Mean)
	}
	// Preplanned protection costs more than one tree.
	if res.CostRedundant.Mean <= 1 || res.CostDependable.Mean <= 1 {
		t.Errorf("preplanned costs = %.3f / %.3f, want > 1x SPF",
			res.CostRedundant.Mean, res.CostDependable.Mean)
	}
	if res.Render() == "" {
		t.Error("Render empty")
	}
}
