package experiment

import "testing"

func TestNLevelExperiment(t *testing.T) {
	res, err := RunNLevel(4, 55)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs == 0 {
		t.Fatal("no runs")
	}
	if res.Levels != 3 {
		t.Errorf("levels = %d", res.Levels)
	}
	if res.ScopeLeaf.Mean >= res.ScopeFlat.Mean {
		t.Errorf("leaf scope %.1f should be far below flat %.1f",
			res.ScopeLeaf.Mean, res.ScopeFlat.Mean)
	}
	// At 3 levels the shrink should beat the 2-level 4.3x.
	if res.ScopeFlat.Mean/res.ScopeLeaf.Mean < 4 {
		t.Errorf("scope shrink %.1fx too small for a 3-level hierarchy",
			res.ScopeFlat.Mean/res.ScopeLeaf.Mean)
	}
	if res.Render() == "" {
		t.Error("Render empty")
	}
}
