package experiment

import (
	"testing"
)

// TestThroughputDeterministicAcrossWorkerCounts pins the sharded event-sim
// contract: with sessions sharing one topology and one SPF cache, the
// rendered report must be byte-identical whether the shards advance on one
// worker or four (seed 2005, the repository's blessed seed). Shard RNG
// streams derive from (seed, shard index) alone, results fold in shard
// order, and the shared cache is a pure memo — scheduling must never leak
// into the numbers.
func TestThroughputDeterministicAcrossWorkerCounts(t *testing.T) {
	const seed = 2005
	sessions := 10
	if testing.Short() {
		sessions = 3
	}
	defer SetParallelism(0)

	SetParallelism(1)
	r1, err := RunThroughput(sessions, seed)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	r4, err := RunThroughput(sessions, seed)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := r4.Render(), r1.Render(); got != want {
		t.Fatalf("throughput output depends on worker count:\nworkers=1:\n%s\nworkers=4:\n%s", want, got)
	}
	if len(r1.Violations) != 0 {
		t.Fatalf("integrity violations: %v", r1.Violations)
	}
}

// TestThroughputBatchSettledReduction is the batched-join capacity gate: on
// the blessed seed, admitting the 16-joiner flash crowd through JoinBatch
// must settle at least 30% fewer enumeration nodes than one-at-a-time joins.
// Settled-node counts are exact and deterministic, so this is a stable CI
// gate where wall-clock on a shared single-core runner is not.
func TestThroughputBatchSettledReduction(t *testing.T) {
	sessions := 10
	if testing.Short() {
		sessions = 3
	}
	r, err := RunThroughput(sessions, 2005)
	if err != nil {
		t.Fatal(err)
	}
	if r.BatchSettled >= r.SeqSettled {
		t.Fatalf("batched flash crowd settled no fewer nodes: %d vs %d", r.BatchSettled, r.SeqSettled)
	}
	if red := r.SettledReduction(); red < 0.30 {
		t.Fatalf("flash-crowd settled-node reduction = %.1f%%, want >= 30%%", 100*red)
	}
	if r.BatchJoins != sessions*r.FlashCrowd {
		t.Fatalf("BatchJoins = %d, want %d", r.BatchJoins, sessions*r.FlashCrowd)
	}
}
