// Megascale architecture study: the same structurally-defined failure/
// recovery schedule driven against a flat session and an N-level hierarchy at
// growing network sizes. The headline is the paper's scaling argument made
// concrete: per-recovery-event settled work (the CI-stable unit of SPF
// effort) stays bounded by the domain size in the hierarchy while it grows
// with N on the flat topology — and the price is memory, accounted here
// deterministically per component (shared full graph vs per-domain induced
// subgraphs).
//
// Wall-clock appears nowhere in the result: every number is an exact counter
// or a byte count computed from element sizes, so the rendered report is
// byte-identical for any worker count (see
// TestMegascaleDeterministicAcrossWorkerCounts) and means the same thing on
// any machine.
package experiment

import (
	"context"
	"fmt"
	"strings"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/hierarchy"
	"smrp/internal/runner"
	"smrp/internal/topology"
)

// megascaleEvents is the number of recovery events driven per arm: enough to
// average over members attached near and far from the source, few enough that
// the 100k-node arms stay inside a CI budget.
const megascaleEvents = 8

// DefaultMegascaleSizes are the network sizes the study sweeps by default.
var DefaultMegascaleSizes = []int{10_000, 50_000, 100_000}

// MegascaleArm is one architecture's outcome at one network size.
type MegascaleArm struct {
	Nodes int // realized node count (hierarchy rounds up to a complete tree)
	Edges int

	Members     int // receivers admitted
	JoinSettled int // nodes settled by candidate enumeration during admission

	Events         int // recovery events driven (branch-cut failure → heal → repair)
	RecoverSettled int // nodes settled by recovery + readmission across all events
	Parked         int // members left parked (partitioned) after the last event

	// GraphBytes is the deterministic footprint of the full topology;
	// SessionBytes is what the architecture adds on top (zero for the flat
	// session, which routes over the shared graph; the per-domain induced
	// subgraphs for the hierarchy). Domains is 1 for the flat arm.
	GraphBytes   int64
	SessionBytes int64
	Domains      int
}

// SettledPerEvent is the arm's mean restoration work per event: every node
// settled by the heal's nearest-survivor sweeps plus the repair's readmission
// path selections.
func (a MegascaleArm) SettledPerEvent() float64 {
	if a.Events == 0 {
		return 0
	}
	return float64(a.RecoverSettled) / float64(a.Events)
}

// MegascaleRow pairs the two arms at one target size.
type MegascaleRow struct {
	Target int
	Flat   MegascaleArm
	Hier   MegascaleArm
}

// MegascaleResult is the full sweep.
type MegascaleResult struct {
	Groups   int  // members per arm
	Events   int  // recovery events per arm
	HierOnly bool // the million-node tier: flat arm skipped, Flat rows zero
	Rows     []MegascaleRow
}

// Render prints the study. Counters and byte accounting only — no clocks.
func (r *MegascaleResult) Render() string {
	if r.HierOnly {
		return r.renderHierOnly()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Megascale architecture study (flat vs hierarchical, %d members, %d recovery events per arm)\n",
		r.Groups, r.Events)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  N=%d (flat %d nodes / %d edges; hier %d nodes / %d edges in %d domains)\n",
			row.Target, row.Flat.Nodes, row.Flat.Edges, row.Hier.Nodes, row.Hier.Edges, row.Hier.Domains)
		fmt.Fprintf(&b, "    join settled:        flat=%-10d hier=%-10d (%.1fx less)\n",
			row.Flat.JoinSettled, row.Hier.JoinSettled, ratioOf(row.Flat.JoinSettled, row.Hier.JoinSettled))
		fmt.Fprintf(&b, "    settled/event:       flat=%-10.1f hier=%-10.1f (%.1fx less, %d/%d events, parked %d/%d)\n",
			row.Flat.SettledPerEvent(), row.Hier.SettledPerEvent(),
			ratioOf(row.Flat.RecoverSettled*row.Hier.Events, row.Hier.RecoverSettled*row.Flat.Events),
			row.Flat.Events, row.Hier.Events, row.Flat.Parked, row.Hier.Parked)
		fmt.Fprintf(&b, "    memory:              flat graph=%s; hier graph=%s + domain subgraphs=%s\n",
			fmtBytes(row.Flat.GraphBytes), fmtBytes(row.Hier.GraphBytes), fmtBytes(row.Hier.SessionBytes))
	}
	return b.String()
}

// renderHierOnly prints the hierarchical-only tier: the sizes where the flat
// control arm is no longer worth running (a single flat recovery event at
// N=10⁶ sweeps more nodes than the whole hierarchical schedule), so only the
// architecture that scales is reported.
func (r *MegascaleResult) renderHierOnly() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Megascale architecture study (hierarchical tier, %d members, %d recovery events per arm)\n",
		r.Groups, r.Events)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  N=%d (%d nodes / %d edges in %d domains)\n",
			row.Target, row.Hier.Nodes, row.Hier.Edges, row.Hier.Domains)
		fmt.Fprintf(&b, "    join settled:        %d\n", row.Hier.JoinSettled)
		fmt.Fprintf(&b, "    settled/event:       %.1f (%d events, parked %d)\n",
			row.Hier.SettledPerEvent(), row.Hier.Events, row.Hier.Parked)
		fmt.Fprintf(&b, "    memory:              graph=%s + domain subgraphs=%s\n",
			fmtBytes(row.Hier.GraphBytes), fmtBytes(row.Hier.SessionBytes))
	}
	return b.String()
}

// ratioOf renders a/b guarding the degenerate denominators.
func ratioOf(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// fmtBytes renders a byte count with a fixed KiB/MiB unit choice (stable
// across sizes — no locale or precision drift).
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
}

// megascaleConfig is the session configuration both arms run: default SMRP
// path selection with reshaping off, so the settled counters isolate
// admission and recovery work (the churn study characterizes reshaping).
func megascaleConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.ReshapeDelta = 0
	cfg.PeriodicReshape = false
	return cfg
}

// runMegascaleFlat drives the schedule against a flat session on a
// constant-density plane topology.
func runMegascaleFlat(n int, t runner.Trial, groups int) (MegascaleArm, error) {
	var arm MegascaleArm
	g, _, err := topology.FlatMegascale(n, t.Seed)
	if err != nil {
		return arm, err
	}
	g.EnableSPFCache()
	arm.Nodes, arm.Edges = g.NumNodes(), g.NumEdges()
	arm.GraphBytes = g.MemoryFootprint()
	arm.Domains = 1

	rng := t.RNG
	source := graph.NodeID(rng.Intn(n))
	sess, err := core.NewSession(g, source, megascaleConfig())
	if err != nil {
		return arm, err
	}
	seen := map[graph.NodeID]bool{source: true}
	members := make([]graph.NodeID, 0, groups)
	for len(members) < groups {
		m := graph.NodeID(rng.Intn(n))
		if seen[m] {
			continue
		}
		seen[m] = true
		if _, err := sess.Join(m); err != nil {
			return arm, fmt.Errorf("megascale flat join %d: %w", m, err)
		}
		members = append(members, m)
	}
	arm.Members = len(members)
	arm.JoinSettled = sess.Stats().EnumSettled

	// Each event cuts the whole branch serving member e mod G — the uplink of
	// its top ancestor, the edge right below the source on its delivery path —
	// heals the survivors via local detours, then repairs the link (readmitting
	// anyone parked). The branch cut is the schedule shape both arms share.
	for e := 0; e < megascaleEvents; e++ {
		m := members[e%len(members)]
		ta := sess.Tree().TopAncestor(m)
		if ta == graph.Invalid {
			continue // member currently parked; a later heal re-admits it
		}
		f := failure.LinkDown(ta, source)
		if _, err := sess.Recover(f); err != nil {
			return arm, fmt.Errorf("megascale flat recover %v: %w", f.Edge, err)
		}
		arm.Events++
		if _, err := sess.Repair(f); err != nil {
			return arm, fmt.Errorf("megascale flat repair %v: %w", f.Edge, err)
		}
	}
	st := sess.Stats()
	arm.RecoverSettled = st.HealSettled + st.EnumSettled - arm.JoinSettled
	arm.Parked = len(sess.Parked())
	return arm, nil
}

// runMegascaleHier drives the same schedule shape against an N-level
// hierarchy sized to the same target.
func runMegascaleHier(n int, t runner.Trial, groups int) (MegascaleArm, error) {
	var arm MegascaleArm
	topo, err := topology.GenerateMegascale(topology.MegascaleConfig{TargetNodes: n}, t.Seed)
	if err != nil {
		return arm, err
	}
	g := topo.Graph
	arm.Nodes, arm.Edges = g.NumNodes(), g.NumEdges()
	arm.GraphBytes = g.MemoryFootprint()

	rng := t.RNG
	leaves := topo.Leaves()
	if len(leaves) < 2 {
		return arm, fmt.Errorf("megascale hier: only %d leaf domains", len(leaves))
	}
	pickIn := func(d *topology.NLevelDomain) graph.NodeID {
		for {
			m := d.Nodes[rng.Intn(len(d.Nodes))]
			if m != d.Gateway {
				return m
			}
		}
	}
	srcDom := &topo.Domains[leaves[0]]
	source := pickIn(srcDom)
	sess, err := hierarchy.NewNLevel(topo, source, megascaleConfig())
	if err != nil {
		return arm, err
	}
	arm.SessionBytes = sess.SubgraphBytes()
	arm.Domains = sess.NumDomains()

	// One member in each of `groups` leaf domains, spread evenly across the
	// leaf list so the tree exercises distinct subtrees of the hierarchy.
	rest := leaves[1:]
	members := make([]graph.NodeID, 0, groups)
	for i := 0; i < groups && i < len(rest); i++ {
		d := &topo.Domains[rest[(i*len(rest))/min(groups, len(rest))]]
		m := pickIn(d)
		if err := sess.Join(m); err != nil {
			return arm, fmt.Errorf("megascale hier join %d: %w", m, err)
		}
		members = append(members, m)
	}
	arm.Members = len(members)
	arm.JoinSettled, _ = sess.SettledWork()

	// The same branch-cut schedule, confined by construction: the cut is the
	// uplink of the member's top ancestor inside its domain sub-session, so
	// heal and repair touch exactly one paper-sized domain per event.
	for e := 0; e < megascaleEvents; e++ {
		m := members[e%len(members)]
		di := topo.DomainOf(m)
		ds, nm, err := sess.DomainSession(di)
		if err != nil {
			return arm, err
		}
		sub, ok := nm.ToSub(m)
		if !ok {
			return arm, fmt.Errorf("megascale hier: member %d not in domain %d", m, di)
		}
		ta := ds.Tree().TopAncestor(sub)
		if ta == graph.Invalid {
			continue // parked inside its domain; a later heal re-admits it
		}
		root := ds.Tree().Source()
		a, _ := nm.ToFull(ta)
		b, _ := nm.ToFull(root)
		if _, err := sess.Recover(failure.LinkDown(a, b)); err != nil {
			return arm, fmt.Errorf("megascale hier recover (%d-%d): %w", a, b, err)
		}
		arm.Events++
		if _, err := ds.Repair(failure.LinkDown(ta, root)); err != nil {
			return arm, fmt.Errorf("megascale hier repair (%d-%d): %w", a, b, err)
		}
	}
	enum, heal := sess.SettledWork()
	arm.RecoverSettled = heal + enum - arm.JoinSettled
	for i := 0; i < sess.NumDomains(); i++ {
		ds, _, err := sess.DomainSession(i)
		if err != nil {
			return arm, err
		}
		arm.Parked += len(ds.Parked())
	}
	return arm, nil
}

// RunMegascaleCtx executes the study: for every size, one flat trial and one
// hierarchical trial, fanned out on the worker pool as independent trials and
// folded in order (byte-identical output for any worker count — each trial's
// topology and schedule derive from (seed, trial index) alone).
func RunMegascaleCtx(ctx context.Context, sizes []int, groups int, seed uint64) (*MegascaleResult, error) {
	return runMegascale(ctx, sizes, groups, seed, false)
}

// RunMegascaleHierCtx is the hierarchical-only tier of the study: the same
// membership and branch-cut schedule with the flat control arm skipped,
// which is what admits sizes up to N=10⁶ — the hierarchy's work per event
// stays domain-bounded while a flat arm at that size would sweep the million
// nodes on every recovery. Trial seeds differ from the two-arm study (one
// trial per size instead of two), so hier numbers are comparable within a
// mode, not across modes.
func RunMegascaleHierCtx(ctx context.Context, sizes []int, groups int, seed uint64) (*MegascaleResult, error) {
	return runMegascale(ctx, sizes, groups, seed, true)
}

func runMegascale(ctx context.Context, sizes []int, groups int, seed uint64, hierOnly bool) (*MegascaleResult, error) {
	if len(sizes) == 0 {
		sizes = DefaultMegascaleSizes
	}
	if groups < 1 {
		return nil, fmt.Errorf("experiment: megascale: groups = %d must be >= 1", groups)
	}
	for _, n := range sizes {
		if n < 1000 {
			return nil, fmt.Errorf("experiment: megascale: size %d too small (need >= 1000)", n)
		}
	}
	perSize := 2
	if hierOnly {
		perSize = 1
	}
	arms, err := mapTrialsCtx(ctx, seed, perSize*len(sizes), func(_ context.Context, t runner.Trial) (MegascaleArm, error) {
		n := sizes[t.Index/perSize]
		if !hierOnly && t.Index%2 == 0 {
			return runMegascaleFlat(n, t, groups)
		}
		return runMegascaleHier(n, t, groups)
	})
	if err != nil {
		return nil, err
	}
	res := &MegascaleResult{Groups: groups, Events: megascaleEvents, HierOnly: hierOnly}
	for i, n := range sizes {
		row := MegascaleRow{Target: n}
		if hierOnly {
			row.Hier = arms[i]
		} else {
			row.Flat, row.Hier = arms[2*i], arms[2*i+1]
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunMegascale is RunMegascaleCtx without cancellation.
func RunMegascale(sizes []int, groups int, seed uint64) (*MegascaleResult, error) {
	return RunMegascaleCtx(context.Background(), sizes, groups, seed)
}

// RunMegascaleHier is RunMegascaleHierCtx without cancellation.
func RunMegascaleHier(sizes []int, groups int, seed uint64) (*MegascaleResult, error) {
	return RunMegascaleHierCtx(context.Background(), sizes, groups, seed)
}
