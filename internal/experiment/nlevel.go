package experiment

import (
	"context"
	"fmt"
	"strings"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/hierarchy"
	"smrp/internal/metrics"
	"smrp/internal/runner"
	"smrp/internal/topology"
)

// NLevelResult measures how recovery scope scales with hierarchy depth —
// the §3.3.3 claim that the 2-level architecture "can be easily generalized
// into an N-level architecture": the deeper the hierarchy, the smaller the
// fraction of the network any single failure can touch.
type NLevelResult struct {
	Runs int
	// ScopeLeaf is the recovery scope for failures inside leaf domains;
	// ScopeFlat is the whole network.
	ScopeLeaf metrics.Summary
	ScopeFlat metrics.Summary
	// Levels/Domains/Nodes describe the topology under test.
	Levels, Domains, Nodes int
}

// Render prints the study.
func (r *NLevelResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "N-level recovery architecture (%d levels, %d domains, %d nodes, %d runs)\n",
		r.Levels, r.Domains, r.Nodes, r.Runs)
	fmt.Fprintf(&b, "  leaf-domain recovery scope: %8.2f ± %.2f nodes\n", r.ScopeLeaf.Mean, r.ScopeLeaf.CI95)
	fmt.Fprintf(&b, "  flat recovery scope:        %8.2f ± %.2f nodes (%.1fx shrink)\n",
		r.ScopeFlat.Mean, r.ScopeFlat.CI95, r.ScopeFlat.Mean/r.ScopeLeaf.Mean)
	return b.String()
}

// nlevelRun is one trial's contribution (ok=false when the run was skipped
// before its failure-recovery phase completed). Domains/Nodes describe the
// generated topology and are recorded even for skipped runs, matching the
// sequential accounting.
type nlevelRun struct {
	ok                   bool
	scopeLeaf, scopeFlat float64
	domains, nodes       int
}

// RunNLevel builds 3-level sessions, fails worst-case links inside leaf
// domains, and compares the domain-confined scope against a flat session's
// whole-network scope. Runs execute on the parallel runner and fold in run
// order (bit-identical for any worker count).
func RunNLevel(runs int, seed uint64) (*NLevelResult, error) {
	return RunNLevelCtx(context.Background(), runs, seed)
}

// RunNLevelCtx is RunNLevel under a caller-supplied context.
func RunNLevelCtx(ctx context.Context, runs int, seed uint64) (*NLevelResult, error) {
	cfg := topology.DefaultNLevelConfig()
	out := &NLevelResult{Levels: cfg.Levels}

	runResults, err := mapTrialsCtx(ctx, seed, runs, func(_ context.Context, t runner.Trial) (*nlevelRun, error) {
		r := t.Index
		nr := &nlevelRun{}
		rng := topology.NewRNG(seed + uint64(r)*32452843)
		nt, err := topology.GenerateNLevel(cfg, rng)
		if err != nil {
			return nil, err
		}
		// Domain sessions and worst-case probes re-query shortest paths on
		// the shared full topology; memoize them for this run.
		nt.Graph.EnableSPFCache()
		nr.domains = len(nt.Domains)
		nr.nodes = nt.Graph.NumNodes()
		leaves := nt.Leaves()
		srcLeaf := nt.Domains[leaves[0]]
		var src graph.NodeID = graph.Invalid
		for _, n := range srcLeaf.Nodes {
			if n != srcLeaf.Gateway {
				src = n
				break
			}
		}
		if src == graph.Invalid {
			return nr, nil
		}
		sess, err := hierarchy.NewNLevel(nt, src, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		// One member per leaf domain.
		var victim graph.NodeID = graph.Invalid
		victimDomain := -1
		for _, li := range leaves[1:] {
			d := nt.Domains[li]
			for _, n := range d.Nodes {
				if n != d.Gateway {
					if err := sess.Join(n); err != nil {
						return nil, err
					}
					if victim == graph.Invalid {
						victim, victimDomain = n, li
					}
					break
				}
			}
		}
		if victim == graph.Invalid {
			return nr, nil
		}
		ds, nm, err := sess.DomainSession(victimDomain)
		if err != nil {
			return nil, err
		}
		sub, _ := nm.ToSub(victim)
		fSub, err := failure.WorstCaseFor(ds.Tree(), sub)
		if err != nil {
			return nr, nil
		}
		a, _ := nm.ToFull(fSub.Edge.A)
		b, _ := nm.ToFull(fSub.Edge.B)
		rep, err := sess.Recover(failure.LinkDown(a, b))
		if err != nil {
			return nr, nil
		}
		nr.ok = true
		nr.scopeLeaf = float64(rep.NodesInDomain)
		nr.scopeFlat = float64(nt.Graph.NumNodes())
		return nr, nil
	})
	if err != nil {
		return nil, err
	}

	var scopeLeaf, scopeFlat metrics.Sample
	for _, nr := range runResults {
		out.Domains = nr.domains
		out.Nodes = nr.nodes
		if !nr.ok {
			continue
		}
		scopeLeaf.Add(nr.scopeLeaf)
		scopeFlat.Add(nr.scopeFlat)
		out.Runs++
	}
	if out.Runs == 0 {
		return nil, fmt.Errorf("experiment: no usable N-level runs")
	}
	if out.ScopeLeaf, err = scopeLeaf.Summarize(); err != nil {
		return nil, err
	}
	if out.ScopeFlat, err = scopeFlat.Summarize(); err != nil {
		return nil, err
	}
	return out, nil
}
