// Multigroup megascale study: thousands of concurrent multicast groups on
// ONE shared frozen megascale topology with ONE shared lock-free SPF cache.
//
// This is the control-plane shape the sparse tree backend exists for. A
// production head-end carries one session per channel, and channel
// popularity is Zipf-distributed: a handful of groups are large, the long
// tail is tiny. With dense per-session state every group — even a two-member
// tail channel — pays O(topology) standing bytes, so the fleet's memory is
// groups × topology and the topology size caps the channel count. Sparse
// storage makes each group pay O(|tree| + |members|), so the fleet costs
// what the trees actually contain.
//
// Every group derives its source, membership, and branch-cut recovery
// schedule from (seed, group rank) alone and advances on the worker pool;
// results fold in rank order, so the rendered report is byte-identical for
// any worker count (see TestMultigroupDeterministicAcrossWorkerCounts).
// Counters and deterministic byte accounting only — joins/sec is layered on
// by the bench harness, which owns the clock.
package experiment

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/runner"
	"smrp/internal/topology"
)

// Multigroup defaults: a 50k-node shared plane carrying two thousand groups,
// the most popular of which has 64 receivers. Sized so the full study is an
// opt-in minute, not a CI gate; the smoke gate runs a reduced shape.
const (
	DefaultMultigroupNodes  = 50_000
	DefaultMultigroupGroups = 2000
	DefaultMultigroupMax    = 64

	// multigroupMinMembers floors the Zipf tail: every group has at least
	// two receivers so the branch-cut schedule has a branch to cut.
	multigroupMinMembers = 2
	// multigroupEvents is the branch-cut recovery events driven per group.
	multigroupEvents = 2
)

// multigroupSize returns the membership of the group at popularity rank
// (0-based): the harmonic Zipf profile max/(rank+1), floored at
// multigroupMinMembers. Rank 0 is the headline channel; the tail is flat at
// the floor.
func multigroupSize(rank, maxMembers int) int {
	s := maxMembers / (rank + 1)
	if s < multigroupMinMembers {
		return multigroupMinMembers
	}
	return s
}

// multigroupGroup is one group's outcome.
type multigroupGroup struct {
	members        int
	joinSettled    int
	events         int
	recoverSettled int
	parked         int
	standingBytes  int64

	// denseTwinBytes is set only for rank 0: the standing footprint of a
	// dense-storage twin session driven through the identical admission, the
	// in-study reference the sparse saving is reported against.
	denseTwinBytes int64

	violations []string
}

// MultigroupResult aggregates the study.
type MultigroupResult struct {
	Groups     int // concurrent groups (sessions) on the shared topology
	Nodes      int // shared-topology size
	Edges      int
	MaxMembers int // rank-0 group size (Zipf maximum)

	Members     int // receivers admitted across all groups
	JoinSettled int // nodes settled by candidate enumeration during admission

	Events         int // branch-cut recovery events driven across all groups
	RecoverSettled int // nodes settled by recovery + readmission
	Parked         int // members left parked after each group's last event

	// Standing-bytes accounting across groups, from the deterministic
	// Session.MemoryFootprint (element counts × fixed sizes, never live
	// heap): the fleet sum, the median, and the largest single group.
	BytesTotal int64
	BytesP50   int64
	BytesMax   int64

	// Rank0Bytes is the rank-0 (most popular) group's sparse footprint and
	// DenseTwinBytes the same group's footprint replayed on the dense
	// backend — the per-group price the sparse backend avoids, measured on
	// this topology rather than modeled.
	Rank0Bytes     int64
	DenseTwinBytes int64

	// Violations lists per-group integrity failures; empty on a healthy run.
	Violations []string
}

// SettledPerEvent is the mean restoration work per branch-cut event.
func (r *MultigroupResult) SettledPerEvent() float64 {
	if r.Events == 0 {
		return 0
	}
	return float64(r.RecoverSettled) / float64(r.Events)
}

// BytesMean is the mean standing bytes per group.
func (r *MultigroupResult) BytesMean() int64 {
	if r.Groups == 0 {
		return 0
	}
	return r.BytesTotal / int64(r.Groups)
}

// DenseSavings is DenseTwinBytes over the rank-0 sparse footprint — how many
// times more a dense session would cost the study's most popular group.
func (r *MultigroupResult) DenseSavings() float64 {
	if r.Rank0Bytes == 0 {
		return 0
	}
	return float64(r.DenseTwinBytes) / float64(r.Rank0Bytes)
}

// Render prints the study. Counters and byte accounting only — no clocks.
func (r *MultigroupResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multigroup megascale study (%d sparse-session groups on one shared %d-node/%d-edge topology)\n",
		r.Groups, r.Nodes, r.Edges)
	fmt.Fprintf(&b, "  group sizes:    Zipf harmonic, max=%d floor=%d -> %d receivers total\n",
		r.MaxMembers, multigroupMinMembers, r.Members)
	fmt.Fprintf(&b, "  admission:      joins=%d settled=%d (%.1f settled/join)\n",
		r.Members, r.JoinSettled, ratioF(r.JoinSettled, r.Members))
	fmt.Fprintf(&b, "  recovery:       events=%d settled=%d (%.1f settled/event), parked=%d\n",
		r.Events, r.RecoverSettled, r.SettledPerEvent(), r.Parked)
	fmt.Fprintf(&b, "  standing bytes: mean=%s p50=%s max=%s total=%s per fleet\n",
		fmtBytes(r.BytesMean()), fmtBytes(r.BytesP50), fmtBytes(r.BytesMax), fmtBytes(r.BytesTotal))
	fmt.Fprintf(&b, "  dense twin (rank-0 group): %s vs sparse %s (%.0fx less)\n",
		fmtBytes(r.DenseTwinBytes), fmtBytes(r.Rank0Bytes), r.DenseSavings())
	fmt.Fprintf(&b, "  integrity violations: %d\n", len(r.Violations))
	for i, v := range r.Violations {
		if i == 10 {
			fmt.Fprintf(&b, "    … %d more\n", len(r.Violations)-10)
			break
		}
		fmt.Fprintf(&b, "    %s\n", v)
	}
	return b.String()
}

// ratioF renders a/b guarding a zero denominator.
func ratioF(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// multigroupConfig is the per-group session configuration: megascale
// settings (reshaping off, so counters isolate admission and recovery) with
// sparse tree storage forced — the study characterizes the sparse backend at
// every topology size, including smoke-sized shapes below the auto
// threshold.
func multigroupConfig() core.Config {
	cfg := megascaleConfig()
	cfg.TreeStorage = core.StorageSparse
	return cfg
}

// playMultigroupSchedule drives one group's whole workload on the given
// storage backend: admission of members through the batched join path, then
// the branch-cut schedule (cut the edge right below the source on one
// member's delivery path, recover the subtree through local detours, repair
// the link, readmitting anyone parked).
func playMultigroupSchedule(g *graph.Graph, rank int, source graph.NodeID, members []graph.NodeID, storage core.TreeStorage) (sess *core.Session, events, joinSettled int, err error) {
	cfg := multigroupConfig()
	cfg.TreeStorage = storage
	sess, err = core.NewSession(g, source, cfg)
	if err != nil {
		return nil, 0, 0, err
	}
	if _, errs := sess.JoinBatch(members); errs != nil {
		for i, jerr := range errs {
			if jerr != nil {
				return nil, 0, 0, fmt.Errorf("multigroup: group %d join %d: %w", rank, members[i], jerr)
			}
		}
	}
	joinSettled = sess.Stats().EnumSettled
	for e := 0; e < multigroupEvents; e++ {
		m := members[e%len(members)]
		ta := sess.Tree().TopAncestor(m)
		if ta == graph.Invalid {
			continue // member currently parked; a later event re-admits it
		}
		f := failure.LinkDown(ta, source)
		if _, err := sess.Recover(f); err != nil {
			return nil, 0, 0, fmt.Errorf("multigroup: group %d recover %v: %w", rank, f.Edge, err)
		}
		events++
		if _, err := sess.Repair(f); err != nil {
			return nil, 0, 0, fmt.Errorf("multigroup: group %d repair %v: %w", rank, f.Edge, err)
		}
	}
	return sess, events, joinSettled, nil
}

// runMultigroupGroup plays one group, drawing its source and Zipf-sized
// membership from the trial's RNG stream.
func runMultigroupGroup(g *graph.Graph, t runner.Trial, maxMembers int, denseTwin bool) (multigroupGroup, error) {
	var out multigroupGroup
	n := g.NumNodes()
	rng := t.RNG
	source := graph.NodeID(rng.Intn(n))
	size := multigroupSize(t.Index, maxMembers)
	seen := map[graph.NodeID]bool{source: true}
	members := make([]graph.NodeID, 0, size)
	for len(members) < size {
		m := graph.NodeID(rng.Intn(n))
		if !seen[m] {
			seen[m] = true
			members = append(members, m)
		}
	}

	sess, events, joinSettled, err := playMultigroupSchedule(g, t.Index, source, members, core.StorageSparse)
	if err != nil {
		return out, err
	}
	if !sess.Tree().SparseStorage() {
		return out, fmt.Errorf("multigroup: group %d came up on dense storage", t.Index)
	}
	st := sess.Stats()
	out.members = len(members)
	out.joinSettled = joinSettled
	out.recoverSettled = st.HealSettled + st.EnumSettled - joinSettled
	out.events = events
	out.parked = len(sess.Parked())
	out.standingBytes = sess.MemoryFootprint()
	if err := sess.Tree().Validate(); err != nil {
		out.violations = append(out.violations,
			fmt.Sprintf("group %d (seed %d): tree invalid after schedule: %v", t.Index, t.Seed, err))
	}

	// Rank 0 replays the identical schedule on a dense-storage twin: the
	// dense footprint in the report is measured on this topology rather than
	// modeled, and the twin doubles as an in-study equivalence probe — every
	// work counter must agree between backends.
	if denseTwin {
		twin, _, _, err := playMultigroupSchedule(g, t.Index, source, members, core.StorageDense)
		if err != nil {
			return out, err
		}
		if twin.Stats() != st {
			out.violations = append(out.violations,
				fmt.Sprintf("group %d: dense twin stats %+v diverge from sparse %+v",
					t.Index, twin.Stats(), st))
		}
		out.denseTwinBytes = twin.MemoryFootprint()
	}
	return out, nil
}

// RunMultigroupCtx executes the multigroup study: groups sessions with
// Zipf-profiled memberships over one shared n-node megascale plane and one
// shared SPF cache, fanned out on the worker pool and folded in rank order.
func RunMultigroupCtx(ctx context.Context, groups, maxMembers, n int, seed uint64) (*MultigroupResult, error) {
	if groups < 1 {
		return nil, fmt.Errorf("experiment: multigroup: groups = %d must be >= 1", groups)
	}
	if maxMembers < multigroupMinMembers {
		return nil, fmt.Errorf("experiment: multigroup: max group size %d below floor %d",
			maxMembers, multigroupMinMembers)
	}
	if n < 1000 {
		return nil, fmt.Errorf("experiment: multigroup: %d nodes too small (need >= 1000)", n)
	}
	if maxMembers >= n {
		return nil, fmt.Errorf("experiment: multigroup: max group size %d must be < %d nodes", maxMembers, n)
	}

	// One shared frozen topology for every group, from its own RNG stream
	// (distinct from every group stream by DeriveSeed's avalanche), and one
	// shared SPF cache under genuine cross-goroutine read pressure.
	g, _, err := topology.FlatMegascale(n, runner.DeriveSeed(seed, -1))
	if err != nil {
		return nil, err
	}
	g.EnableSPFCache()

	gs, err := mapTrialsCtx(ctx, seed, groups, func(_ context.Context, t runner.Trial) (multigroupGroup, error) {
		return runMultigroupGroup(g, t, maxMembers, t.Index == 0)
	})
	if err != nil {
		return nil, err
	}

	res := &MultigroupResult{
		Groups:     groups,
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		MaxMembers: multigroupSize(0, maxMembers),
	}
	res.Rank0Bytes = gs[0].standingBytes
	res.DenseTwinBytes = gs[0].denseTwinBytes
	bytes := make([]int64, 0, len(gs))
	for _, gr := range gs {
		res.Members += gr.members
		res.JoinSettled += gr.joinSettled
		res.Events += gr.events
		res.RecoverSettled += gr.recoverSettled
		res.Parked += gr.parked
		res.BytesTotal += gr.standingBytes
		if gr.standingBytes > res.BytesMax {
			res.BytesMax = gr.standingBytes
		}
		res.Violations = append(res.Violations, gr.violations...)
		bytes = append(bytes, gr.standingBytes)
	}
	slices.Sort(bytes)
	res.BytesP50 = bytes[len(bytes)/2]
	return res, nil
}

// RunMultigroup is RunMultigroupCtx without cancellation.
func RunMultigroup(groups, maxMembers, n int, seed uint64) (*MultigroupResult, error) {
	return RunMultigroupCtx(context.Background(), groups, maxMembers, n, seed)
}
