// Sharded event-sim throughput study: many independent sessions ("shards")
// advance concurrently on ONE shared topology with ONE shared SPF cache.
//
// Every other study in this package gives each trial a private topology, so
// parallelism never shares hot state. This study is the opposite by design:
// the shared graph and its lock-free SPF cache are exactly what the
// smrp-serve control plane runs in production, and advancing the shards on
// the worker pool puts the cache's lock-free read path under genuine
// cross-goroutine pressure. Determinism survives sharing because the shared
// state is read-only (the graph) or a pure memo whose hit/miss pattern never
// leaks into results (the cache): each shard derives its RNG stream from
// (seed, shard index) alone and results fold in shard order, so the rendered
// output is byte-identical for any worker count (see
// TestThroughputDeterministicAcrossWorkerCounts).
//
// Each shard plays a two-phase workload drawn from the dynamic-multicast
// shapes in PAPERS.md: a flash crowd (k simultaneous joiners of one group,
// admitted through core.JoinBatch) followed by a zap storm (high-rate join/
// leave churn). The flash phase also runs a one-at-a-time twin session as the
// sequential reference, so the batched join path's settled-node saving is
// measured inside the study and reported as CI-stable evidence (wall-clock
// is noise on a single-core container; settled nodes are exact).
package experiment

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"smrp/internal/core"
	"smrp/internal/graph"
	"smrp/internal/runner"
	"smrp/internal/topology"
	"smrp/internal/workload"
)

// throughputFlashCrowd is the flash-crowd batch width: 16 simultaneous
// joiners of one group, the k the batched-join acceptance gate is stated for.
const throughputFlashCrowd = 16

// ThroughputResult aggregates the sharded throughput study.
type ThroughputResult struct {
	Sessions   int // shards (independent sessions on the shared topology)
	FlashCrowd int // joiners per flash-crowd batch
	Nodes      int // shared-topology size

	Joins      int // successful joins across all shards (flash + churn)
	BatchJoins int // joins admitted through the batched path
	Leaves     int // churn departures processed
	Events     int // total membership events processed

	// SeqSettled / BatchSettled count the nodes settled by candidate
	// enumeration during the flash-crowd phase: the one-at-a-time reference
	// twin vs the batched path on identical joins. Their ratio is the
	// batched-join saving.
	SeqSettled   int
	BatchSettled int

	// Violations lists per-shard integrity failures (tree validation after
	// the full workload); empty on a healthy run.
	Violations []string
}

// SettledReduction returns the fractional settled-node saving of the batched
// flash-crowd path versus the sequential reference (0.44 = 44% fewer nodes
// settled).
func (r *ThroughputResult) SettledReduction() float64 {
	if r.SeqSettled == 0 {
		return 0
	}
	return 1 - float64(r.BatchSettled)/float64(r.SeqSettled)
}

// Render prints the throughput summary. Deliberately free of wall-clock
// numbers: the rendered report is byte-stable for any worker count, and
// timing (joins/sec, events/sec) is layered on by the bench harness, which
// owns the clock.
func (r *ThroughputResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded session throughput (%d sessions on one shared %d-node topology)\n",
		r.Sessions, r.Nodes)
	fmt.Fprintf(&b, "  events=%d joins=%d (batched=%d) leaves=%d\n",
		r.Events, r.Joins, r.BatchJoins, r.Leaves)
	fmt.Fprintf(&b, "  flash-crowd (%d joiners/batch): settled %d batched vs %d sequential (%.1f%% reduction)\n",
		r.FlashCrowd, r.BatchSettled, r.SeqSettled, 100*r.SettledReduction())
	fmt.Fprintf(&b, "  integrity violations: %d\n", len(r.Violations))
	for i, v := range r.Violations {
		if i == 10 {
			fmt.Fprintf(&b, "    … %d more\n", len(r.Violations)-10)
			break
		}
		fmt.Fprintf(&b, "    %s\n", v)
	}
	return b.String()
}

// throughputShard is one session's outcome.
type throughputShard struct {
	joins, batchJoins, leaves, events int
	seqSettled, batchSettled          int
	violations                        []string
}

// RunThroughputCtx executes the sharded throughput study with the given
// number of sessions. All sessions share one topology (drawn from seed) and
// one SPF cache; each session derives its own source, flash crowd, and churn
// schedule from (seed, shard index) and advances on the worker pool.
func RunThroughputCtx(ctx context.Context, sessions int, seed uint64) (*ThroughputResult, error) {
	if sessions < 1 {
		return nil, fmt.Errorf("experiment: throughput: sessions = %d must be >= 1", sessions)
	}
	base := DefaultBase()
	base.N = 300
	// The study measures raw membership throughput; Condition-I reshaping is
	// a per-join tail that the churn study already characterizes, so it is
	// off here (and its absence keeps the flash-crowd settled-node numbers a
	// pure batch-vs-sequential comparison).
	base.SMRP.ReshapeDelta = 0
	base.SMRP.PeriodicReshape = false

	// One shared topology for every shard, from its own RNG stream (distinct
	// from every shard stream by DeriveSeed's avalanche).
	topoRNG := topology.NewRNG(runner.DeriveSeed(seed, -1))
	g, err := topology.Waxman(topology.WaxmanConfig{
		N: base.N, Alpha: base.Alpha, Beta: base.Beta, EnsureConnected: true,
	}, topoRNG)
	if err != nil {
		return nil, err
	}
	g.EnableSPFCache()

	shards, err := mapTrialsCtx(ctx, seed, sessions, func(_ context.Context, t runner.Trial) (throughputShard, error) {
		rng := t.RNG
		source := graph.NodeID(rng.Intn(base.N))

		// Flash crowd: the throughputFlashCrowd nodes nearest the source, in
		// random arrival order. Flash crowds are topologically correlated —
		// a regional event pulls in a neighborhood, not a uniform sample —
		// and this is exactly the shape where batching pays: the group's
		// tree stays compact, so each bounded candidate sweep stops after a
		// small ball instead of flooding the topology. (A uniformly random
		// crowd spreads the tree graph-wide and the bounded exit saves only
		// a few percent; the churn phase below covers that dispersed shape.)
		spt := g.Dijkstra(source, nil)
		type nodeDist struct {
			n graph.NodeID
			d float64
		}
		byDist := make([]nodeDist, 0, base.N-1)
		for n := 0; n < base.N; n++ {
			id := graph.NodeID(n)
			if id != source && spt.Reachable(id) {
				byDist = append(byDist, nodeDist{n: id, d: spt.Dist[id]})
			}
		}
		slices.SortFunc(byDist, func(a, b nodeDist) int {
			if a.d != b.d {
				if a.d < b.d {
					return -1
				}
				return 1
			}
			return int(a.n - b.n)
		})
		crowd := make([]graph.NodeID, 0, throughputFlashCrowd)
		for _, nd := range byDist[:min(throughputFlashCrowd, len(byDist))] {
			crowd = append(crowd, nd.n)
		}
		for i, p := range rng.Perm(len(crowd)) {
			crowd[i], crowd[p] = crowd[p], crowd[i]
		}

		var out throughputShard

		// Sequential reference twin: the same crowd, one Join at a time.
		twin, err := core.NewSession(g, source, base.SMRP)
		if err != nil {
			return out, err
		}
		for _, m := range crowd {
			if _, err := twin.Join(m); err != nil {
				return out, fmt.Errorf("throughput: reference join %d: %w", m, err)
			}
		}
		out.seqSettled = twin.Stats().EnumSettled

		// The measured session: the crowd arrives as one batch.
		sess, err := core.NewSession(g, source, base.SMRP)
		if err != nil {
			return out, err
		}
		_, errs := sess.JoinBatch(crowd)
		for i, err := range errs {
			if err != nil {
				return out, fmt.Errorf("throughput: batch join %d: %w", crowd[i], err)
			}
		}
		out.batchSettled = sess.Stats().EnumSettled
		out.events += len(crowd)

		// Zap storm: high-rate churn over the rest of the population.
		inCrowd := make(map[graph.NodeID]bool, len(crowd))
		for _, m := range crowd {
			inCrowd[m] = true
		}
		var pool []graph.NodeID
		for n := 0; n < base.N; n++ {
			id := graph.NodeID(n)
			if id != source && !inCrowd[id] {
				pool = append(pool, id)
			}
		}
		sched, err := workload.Generate(workload.Config{
			Nodes:        pool,
			Horizon:      40,
			ArrivalRate:  2.0, // zap storm: arrivals far outpace lifetimes
			MeanLifetime: 4,
		}, rng)
		if err != nil {
			return out, err
		}
		for _, ev := range sched.Events {
			switch ev.Kind {
			case workload.Join:
				if _, err := sess.Join(ev.Node); err != nil {
					return out, fmt.Errorf("throughput: churn join %d: %w", ev.Node, err)
				}
			case workload.Leave:
				if err := sess.Leave(ev.Node); err != nil {
					return out, fmt.Errorf("throughput: churn leave %d: %w", ev.Node, err)
				}
			}
		}
		out.events += len(sched.Events)

		st := sess.Stats()
		out.joins = st.Joins
		out.batchJoins = st.BatchJoins
		out.leaves = st.Leaves
		if err := sess.Tree().Validate(); err != nil {
			out.violations = append(out.violations,
				fmt.Sprintf("shard %d (seed %d): tree invalid at horizon: %v", t.Index, t.Seed, err))
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	res := &ThroughputResult{
		Sessions:   sessions,
		FlashCrowd: throughputFlashCrowd,
		Nodes:      base.N,
	}
	for _, sh := range shards {
		res.Joins += sh.joins
		res.BatchJoins += sh.batchJoins
		res.Leaves += sh.leaves
		res.Events += sh.events
		res.SeqSettled += sh.seqSettled
		res.BatchSettled += sh.batchSettled
		res.Violations = append(res.Violations, sh.violations...)
	}
	return res, nil
}

// RunThroughput is RunThroughputCtx without cancellation.
func RunThroughput(sessions int, seed uint64) (*ThroughputResult, error) {
	return RunThroughputCtx(context.Background(), sessions, seed)
}
