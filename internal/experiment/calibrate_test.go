package experiment

import (
	"context"
	"testing"

	"smrp/internal/topology"
)

// TestCalibrateBeta sweeps the fixed Waxman β to document how topology
// path-diversity drives the SMRP/SPF trade-off magnitudes. Run with -v to
// see the table; the assertion is only that every point keeps the paper's
// qualitative shape (positive RD gain, small positive penalties).
func TestCalibrateBeta(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	for _, beta := range []float64{0.10, 0.15, 0.20, 0.25} {
		base := DefaultBase()
		base.Beta = beta
		row, err := sweepPoint(context.Background(), "b", beta, base, 4, 2, 99)
		if err != nil {
			t.Fatalf("beta %v: %v", beta, err)
		}
		t.Logf("beta=%.2f deg=%.2f RDrel=%.3f±%.3f delayRel=%.3f costRel=%.3f",
			beta, row.AvgDegree, row.RDRel.Mean, row.RDRel.CI95, row.DelayRel.Mean, row.CostRel.Mean)
		if row.RDRel.Mean <= 0 {
			t.Errorf("beta %v: RD_rel %.3f not positive", beta, row.RDRel.Mean)
		}
	}
	_ = topology.DefaultBeta
}

// TestCalibrateReshape isolates the reshaping passes' contribution to the
// trade-off at β=0.15.
func TestCalibrateReshape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	type variant struct {
		name     string
		delta    int
		periodic bool
	}
	for _, v := range []variant{
		{name: "no-reshape", delta: 0, periodic: false},
		{name: "cond-I", delta: 2, periodic: false},
		{name: "cond-I+II", delta: 2, periodic: true},
	} {
		base := DefaultBase()
		base.Beta = 0.15
		base.SMRP.ReshapeDelta = v.delta
		base.SMRP.PeriodicReshape = v.periodic
		row, err := sweepPoint(context.Background(), v.name, 0, base, 4, 2, 99)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		t.Logf("%-10s deg=%.2f RDrel=%.3f delayRel=%.3f costRel=%.3f",
			v.name, row.AvgDegree, row.RDRel.Mean, row.DelayRel.Mean, row.CostRel.Mean)
	}
}
