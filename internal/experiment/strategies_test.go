package experiment

import (
	"context"
	"testing"
)

// TestStrategiesAcceptance is the PR's acceptance gate for the comparative
// restoration testbed: 200 seeded chaos schedules played three-way (SMRP,
// MRC backup configurations, precomputed detours) must produce zero
// invariant violations in every arm, and the aggregate must be
// byte-identical between 1 worker and 8 workers.
func TestStrategiesAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("strategies acceptance is a long test")
	}
	const trials, seed = 200, 2005

	prev := Parallelism()
	defer SetParallelism(prev)

	SetParallelism(1)
	seq, err := RunStrategies(trials, seed)
	if err != nil {
		t.Fatalf("RunStrategies(workers=1): %v", err)
	}
	SetParallelism(8)
	par, err := RunStrategies(trials, seed)
	if err != nil {
		t.Fatalf("RunStrategies(workers=8): %v", err)
	}

	if len(seq.Violations) > 0 {
		t.Errorf("invariant violations with 1 worker: %d", len(seq.Violations))
		for i, v := range seq.Violations {
			if i == 10 {
				t.Errorf("… %d more", len(seq.Violations)-10)
				break
			}
			t.Error(v)
		}
	}
	if a, b := seq.Render(), par.Render(); a != b {
		t.Errorf("strategies output differs between 1 and 8 workers:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", a, b)
	}

	checkStrategiesSanity(t, seq)
}

// TestStrategiesSmoke is the short-mode gate: a reduced three-way run must
// stay violation-free and exhibit each strategy's defining signature.
func TestStrategiesSmoke(t *testing.T) {
	res, err := RunStrategies(15, 2005)
	if err != nil {
		t.Fatalf("RunStrategies: %v", err)
	}
	if len(res.Violations) > 0 {
		t.Errorf("invariant violations: %d (first: %s)", len(res.Violations), res.Violations[0])
	}
	checkStrategiesSanity(t, res)
}

// checkStrategiesSanity asserts the structural expectations that hold at any
// trial count: three arms in fixed order, every arm recovering members and
// exercising the park/readmit machinery, SMRP all-reactive (no precomputed
// state, no table to miss), and both baselines carrying precomputed state
// they actually consulted.
func checkStrategiesSanity(t *testing.T, res *StrategiesResult) {
	t.Helper()
	if len(res.Arms) != 3 {
		t.Fatalf("arms = %d, want 3", len(res.Arms))
	}
	for i, want := range []string{"smrp", "mrc", "detour"} {
		if res.Arms[i].Name != want {
			t.Fatalf("arm %d = %q, want %q", i, res.Arms[i].Name, want)
		}
	}
	if res.Failures == 0 || res.Repairs == 0 {
		t.Errorf("degenerate schedule mix: failures=%d repairs=%d", res.Failures, res.Repairs)
	}
	for _, a := range res.Arms {
		if a.Recovered == 0 {
			t.Errorf("%s: no member ever recovered", a.Name)
		}
		if a.Parks == 0 || a.Readmitted == 0 {
			t.Errorf("%s: degraded-state machinery never exercised: parks=%d readmitted=%d",
				a.Name, a.Parks, a.Readmitted)
		}
		if a.RD.Mean < 0 {
			t.Errorf("%s: negative mean RD %v", a.Name, a.RD.Mean)
		}
	}
	smrp, mrc, detour := res.Arms[0], res.Arms[1], res.Arms[2]
	if smrp.StateBytes != 0 || smrp.PrecomputeSettled != 0 || smrp.Fallbacks != 0 {
		t.Errorf("smrp arm must be all-reactive: state=%d precompute=%d fallbacks=%d",
			smrp.StateBytes, smrp.PrecomputeSettled, smrp.Fallbacks)
	}
	if smrp.RecoverySettled == 0 {
		t.Error("smrp arm settled no nodes at recovery time")
	}
	for _, a := range []StrategyArm{mrc, detour} {
		if a.StateBytes == 0 {
			t.Errorf("%s: no precomputed state accounted", a.Name)
		}
		if a.PrecomputeSettled == 0 {
			t.Errorf("%s: no precompute-time settled work accounted", a.Name)
		}
		// The baselines' point: precomputation displaces recovery-time work.
		if a.RecoverySettled >= smrp.RecoverySettled {
			t.Errorf("%s: recovery-time settled %d not below smrp's %d",
				a.Name, a.RecoverySettled, smrp.RecoverySettled)
		}
	}
}

// TestStrategiesCancellation verifies that a cancelled context aborts the
// sweep with ctx.Err() instead of running all trials.
func TestStrategiesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunStrategiesCtx(ctx, 50, 2005); err != context.Canceled {
		t.Fatalf("RunStrategiesCtx(cancelled) error = %v, want context.Canceled", err)
	}
}
