package experiment

import (
	"context"
	"fmt"
	"strings"

	"smrp/internal/core"
	"smrp/internal/eventsim"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/protocol"
	"smrp/internal/runner"
	"smrp/internal/topology"
)

// ChaosResult aggregates the multi-failure chaos harness: seeded random
// failure schedules (overlapping link/node failures, SRLG bursts, full
// partitions, repairs) played against both the algorithmic session and the
// message-level protocol, with a structural-invariant oracle checked after
// every event. A healthy implementation reports zero violations.
type ChaosResult struct {
	Trials   int
	Events   int
	Failures int
	Repairs  int

	// Core-session accounting across all trials.
	Disconnections int // members cut off by some failure event
	Recovered      int // members re-grafted by a local detour
	Parks          int // members degraded to the parked state
	Readmissions   int // parked members automatically re-admitted

	// Protocol-level accounting.
	Restorations  int // message-level recoveries completed
	ParkedAtEnd   int // protocol members still parked at the horizon
	FullyRestored int // trials whose members were all back after full repair

	// Violations lists invariant-oracle failures (empty on a healthy run).
	Violations []string
}

// Render prints the chaos summary.
func (r *ChaosResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos harness (%d seeded multi-failure schedules)\n", r.Trials)
	fmt.Fprintf(&b, "  schedule: events=%d failures=%d repairs=%d\n", r.Events, r.Failures, r.Repairs)
	fmt.Fprintf(&b, "  core:     disconnected=%d recovered=%d parked=%d readmitted=%d\n",
		r.Disconnections, r.Recovered, r.Parks, r.Readmissions)
	fmt.Fprintf(&b, "  protocol: restorations=%d parked-at-horizon=%d fully-restored-trials=%d\n",
		r.Restorations, r.ParkedAtEnd, r.FullyRestored)
	fmt.Fprintf(&b, "  invariant violations: %d\n", len(r.Violations))
	for i, v := range r.Violations {
		if i == 10 {
			fmt.Fprintf(&b, "    … %d more\n", len(r.Violations)-10)
			break
		}
		fmt.Fprintf(&b, "    %s\n", v)
	}
	return b.String()
}

// chaosTrial is one schedule's outcome.
type chaosTrial struct {
	events, failures, repairs int
	disconnected, recovered   int
	parks, readmissions       int
	restorations, parkedEnd   int
	fullyRestored             bool
	violations                []string
}

// chaosInvariants is the oracle: after every event the tree must be
// structurally valid (no loops, no orphans, every branch rooted at the
// source), must not route over any failed component, every original member
// must be accounted for — either on the tree or parked, never both, never
// neither — and the partition of members into on-tree vs parked must agree
// with residual reachability from the source (see the audit below).
func chaosInvariants(s *core.Session, members []graph.NodeID, when string) []string {
	var v []string
	tr := s.Tree()
	if err := tr.Validate(); err != nil {
		v = append(v, fmt.Sprintf("%s: tree invalid: %v", when, err))
	}
	mask := s.FailedMask()
	for _, n := range tr.Nodes() {
		if mask.NodeBlocked(n) {
			v = append(v, fmt.Sprintf("%s: failed node %d still on tree", when, n))
		}
		if p, ok := tr.Parent(n); ok && p != graph.Invalid && mask.EdgeBlocked(p, n) {
			v = append(v, fmt.Sprintf("%s: failed link %d-%d still on tree", when, p, n))
		}
	}
	parked := make(map[graph.NodeID]bool)
	for _, m := range s.Parked() {
		parked[m] = true
	}
	for _, m := range members {
		switch {
		case tr.IsMember(m) && parked[m]:
			v = append(v, fmt.Sprintf("%s: member %d both on-tree and parked", when, m))
		case !tr.IsMember(m) && !parked[m]:
			v = append(v, fmt.Sprintf("%s: member %d lost (neither on-tree nor parked)", when, m))
		}
	}
	// Residual-reachability audit: one source-rooted shortest-path tree over
	// the surviving network decides both directions of the member partition.
	// A parked member that can reach the source was wrongly parked — the
	// reconcile pass readmits any parked member with a path to a surviving
	// on-tree node, and the source is one. Conversely an on-tree member must
	// be reachable, because the (already validated) tree carries a live path
	// between them. The source stays fixed while each event moves the failure
	// mask by one to three elements, so this query is also the chaos
	// harness's incremental-SPF workload: with delta repair on, each audit
	// costs roughly the orphaned subtree instead of a full sweep.
	if !mask.NodeBlocked(tr.Source()) {
		spt := tr.Graph().Dijkstra(tr.Source(), mask)
		for _, m := range s.Parked() {
			if spt.Reachable(m) {
				v = append(v, fmt.Sprintf("%s: parked member %d has a residual path to the source", when, m))
			}
		}
		for _, m := range tr.Members() {
			if !spt.Reachable(m) {
				v = append(v, fmt.Sprintf("%s: on-tree member %d unreachable from source in residual network", when, m))
			}
		}
	}
	return v
}

// RunChaosCtx executes trials seeded multi-failure schedules. Each trial
// draws a random topology and schedule, plays the schedule against a core
// session event by event (checking the invariant oracle after every event),
// then replays it at the message level through the protocol instance —
// failures land mid-recovery, Join_Reqs get lost on dying links, retries
// back off, partitioned members park and are re-admitted on repair. Trials
// run on the parallel runner and fold in trial order, so the result is
// bit-identical for any worker count. A cancelled ctx stops dispatch and
// returns ctx.Err().
func RunChaosCtx(ctx context.Context, trials int, seed uint64) (*ChaosResult, error) {
	base := DefaultBase()
	base.N = 60
	base.NG = 12
	pcfg := protocol.DefaultConfig()
	pcfg.SMRP = base.SMRP

	results, err := mapTrialsCtx(ctx, seed, trials, func(_ context.Context, t runner.Trial) (chaosTrial, error) {
		rng := t.RNG
		g, err := topology.Waxman(topology.WaxmanConfig{
			N: base.N, Alpha: base.Alpha, Beta: base.Beta, EnsureConnected: true,
		}, rng)
		if err != nil {
			return chaosTrial{}, err
		}
		g.EnableSPFCache()
		source := graph.NodeID(0)
		for n := 1; n < g.NumNodes(); n++ {
			if g.Degree(graph.NodeID(n)) > g.Degree(source) {
				source = graph.NodeID(n)
			}
		}
		var members []graph.NodeID
		for _, id := range rng.Sample(base.N, base.NG+1) {
			if graph.NodeID(id) != source && len(members) < base.NG {
				members = append(members, graph.NodeID(id))
			}
		}

		ccfg := failure.DefaultChaosConfig()
		sched, err := failure.RandomSchedule(g, source, members, ccfg, rng)
		if err != nil {
			return chaosTrial{}, err
		}

		var out chaosTrial
		out.events = len(sched.Events)
		out.failures = sched.NumFailures()
		out.repairs = sched.NumRepairs()

		// Phase 1: algorithmic session, event by event, oracle after each.
		sess, err := core.NewSession(g, source, base.SMRP)
		if err != nil {
			return chaosTrial{}, err
		}
		// The initial membership is a flash crowd by construction — every
		// member of one group arriving at once — so it goes through the
		// batched join path (bit-identical to sequential joins; this also
		// keeps JoinBatch under the invariant oracle on every schedule).
		_, joinErrs := sess.JoinBatch(members)
		for i, err := range joinErrs {
			if err != nil {
				return chaosTrial{}, fmt.Errorf("chaos: join %d: %w", members[i], err)
			}
		}
		for k, ev := range sched.Events {
			if len(ev.Failures) > 0 {
				rep, err := sess.Recover(ev.Failures...)
				if err != nil {
					return chaosTrial{}, fmt.Errorf("chaos: heal event %d: %w", k, err)
				}
				out.disconnected += len(rep.Disconnected)
				out.recovered += len(rep.RecoveryDistance)
				out.parks += len(rep.Unrecovered)
				out.readmissions += len(rep.Readmitted)
			}
			if len(ev.Repairs) > 0 {
				rep, err := sess.Repair(ev.Repairs...)
				if err != nil {
					return chaosTrial{}, fmt.Errorf("chaos: repair event %d: %w", k, err)
				}
				out.readmissions += len(rep.Readmitted)
			}
			out.violations = append(out.violations,
				chaosInvariants(sess, members, fmt.Sprintf("seed %d event %d", t.Seed, k))...)
		}

		// Phase 2: message level. The same schedule plays out in virtual
		// time: later failures land while earlier recoveries are in flight.
		inst, err := protocol.NewSMRPInstance(g, source, pcfg)
		if err != nil {
			return chaosTrial{}, err
		}
		for k, m := range members {
			if err := inst.ScheduleJoin(eventsim.Time(k+1), m); err != nil {
				return chaosTrial{}, err
			}
		}
		if err := inst.InjectSchedule(sched); err != nil {
			return chaosTrial{}, err
		}
		if err := inst.Run(5000); err != nil {
			return chaosTrial{}, err
		}
		if err := inst.Session().Tree().Validate(); err != nil {
			out.violations = append(out.violations,
				fmt.Sprintf("seed %d protocol: tree invalid at horizon: %v", t.Seed, err))
		}
		endMask := inst.Network().Failed()
		for _, n := range inst.Session().Tree().Nodes() {
			if endMask.NodeBlocked(n) {
				out.violations = append(out.violations,
					fmt.Sprintf("seed %d protocol: failed node %d on tree at horizon", t.Seed, n))
			}
			if p, ok := inst.Session().Tree().Parent(n); ok && p != graph.Invalid && endMask.EdgeBlocked(p, n) {
				out.violations = append(out.violations,
					fmt.Sprintf("seed %d protocol: failed link %d-%d on tree at horizon", t.Seed, p, n))
			}
		}
		out.restorations = len(inst.Restorations())
		out.parkedEnd = len(inst.Parked())

		// After the full repair the core mask is empty: every member must be
		// back on the tree.
		if sched.CumulativeMask().IsEmpty() {
			back := true
			for _, m := range members {
				if !sess.Tree().IsMember(m) {
					back = false
					out.violations = append(out.violations,
						fmt.Sprintf("seed %d: member %d not re-admitted after full repair", t.Seed, m))
				}
			}
			out.fullyRestored = back
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	res := &ChaosResult{Trials: trials}
	for _, tr := range results {
		res.Events += tr.events
		res.Failures += tr.failures
		res.Repairs += tr.repairs
		res.Disconnections += tr.disconnected
		res.Recovered += tr.recovered
		res.Parks += tr.parks
		res.Readmissions += tr.readmissions
		res.Restorations += tr.restorations
		res.ParkedAtEnd += tr.parkedEnd
		if tr.fullyRestored {
			res.FullyRestored++
		}
		res.Violations = append(res.Violations, tr.violations...)
	}
	return res, nil
}

// RunChaos is RunChaosCtx without cancellation.
func RunChaos(trials int, seed uint64) (*ChaosResult, error) {
	return RunChaosCtx(context.Background(), trials, seed)
}
