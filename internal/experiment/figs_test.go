package experiment

import (
	"strings"
	"testing"
)

// Reduced scenario counts keep the test suite fast; the full paper-scale
// counts run in the benchmark harness.
const (
	testTopo = 3
	testSets = 2
)

func TestGenScenariosValidation(t *testing.T) {
	b := DefaultBase()
	b.N = 1
	if _, err := GenScenarios(b, 1, 1, 0); err == nil {
		t.Error("tiny N should fail")
	}
	b2 := DefaultBase()
	b2.NG = b2.N
	if _, err := GenScenarios(b2, 1, 1, 0); err == nil {
		t.Error("NG >= N should fail")
	}
	if _, err := GenScenarios(DefaultBase(), 0, 1, 0); err == nil {
		t.Error("zero topologies should fail")
	}
}

func TestGenScenariosShapeAndDeterminism(t *testing.T) {
	b := DefaultBase()
	s1, err := GenScenarios(b, 2, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != 6 {
		t.Fatalf("scenarios = %d, want 6", len(s1))
	}
	s2, err := GenScenarios(b, 2, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if s1[i].Source != s2[i].Source {
			t.Errorf("scenario %d source differs", i)
		}
		for j := range s1[i].Members {
			if s1[i].Members[j] != s2[i].Members[j] {
				t.Errorf("scenario %d member %d differs", i, j)
			}
		}
	}
	// Members are distinct and exclude the source.
	for _, sc := range s1 {
		seen := map[int]bool{int(sc.Source): true}
		for _, m := range sc.Members {
			if seen[int(m)] {
				t.Fatalf("duplicate/source member %d", m)
			}
			seen[int(m)] = true
		}
		if len(sc.Members) != b.NG {
			t.Errorf("member count = %d", len(sc.Members))
		}
	}
}

func TestEvaluateProducesConsistentObservations(t *testing.T) {
	b := DefaultBase()
	scenarios, err := GenScenarios(b, 1, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(scenarios[0], b.SMRP)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != b.NG {
		t.Fatalf("observations = %d", len(res.Members))
	}
	if res.CostSPF <= 0 || res.CostSMRP <= 0 {
		t.Errorf("costs = %v, %v", res.CostSPF, res.CostSMRP)
	}
	for _, o := range res.Members {
		if o.DelaySPF <= 0 || o.DelaySMRP <= 0 {
			t.Errorf("member %d: non-positive delay", o.Member)
		}
		// SMRP trades delay away, never gains it (both trees are delay
		// graphs over the same topology; SPF is optimal).
		if o.DelaySMRP < o.DelaySPF-1e-9 {
			t.Errorf("member %d: SMRP delay %v below SPF optimum %v",
				o.Member, o.DelaySMRP, o.DelaySPF)
		}
		if !o.Recoverable {
			continue
		}
		if o.RDGlobalSPF <= 0 || o.RDLocalSMRP <= 0 || o.RDLocalSPF <= 0 {
			t.Errorf("member %d: non-positive RD", o.Member)
		}
		// On the same (SPF) tree, the local detour is never longer than the
		// global one.
		if o.RDLocalSPF > o.RDGlobalSPF+1e-9 {
			t.Errorf("member %d: local-on-SPF %v exceeds global %v",
				o.Member, o.RDLocalSPF, o.RDGlobalSPF)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := RunFig7(21)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no scatter points")
	}
	// The paper's qualitative claims: most points below the diagonal and a
	// clearly positive mean reduction.
	if res.BelowDiagonal < 0.6 {
		t.Errorf("below-diagonal fraction = %.2f, want > 0.6", res.BelowDiagonal)
	}
	if res.MeanReduction <= 0.05 {
		t.Errorf("mean reduction = %.3f, want clearly positive", res.MeanReduction)
	}
	if !strings.Contains(res.Render(), "Figure 7") {
		t.Error("Render should include the figure title")
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := RunFig8(testTopo, testSets, 33)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(Fig8DThreshValues) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// RD gain grows with D_thresh; penalties grow with D_thresh; everything
	// stays positive.
	for i, row := range res.Rows {
		if row.RDRel.Mean <= 0 {
			t.Errorf("Dthresh %s: RD_rel %.3f not positive", row.Label, row.RDRel.Mean)
		}
		if row.DelayRel.Mean < -1e-9 {
			t.Errorf("Dthresh %s: negative delay penalty", row.Label)
		}
		if i > 0 && row.RDRel.Mean < res.Rows[i-1].RDRel.Mean-0.1 {
			t.Errorf("RD_rel dropped sharply between %s and %s",
				res.Rows[i-1].Label, row.Label)
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.RDRel.Mean <= first.RDRel.Mean {
		t.Errorf("RD_rel should grow with D_thresh: %.3f → %.3f",
			first.RDRel.Mean, last.RDRel.Mean)
	}
	if last.DelayRel.Mean <= first.DelayRel.Mean {
		t.Errorf("delay penalty should grow with D_thresh: %.3f → %.3f",
			first.DelayRel.Mean, last.DelayRel.Mean)
	}
	if !strings.Contains(res.Render(), "D_thresh") {
		t.Error("Render output malformed")
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := RunFig9(testTopo, testSets, 44)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(Fig9AlphaValues) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Degree grows with alpha; RD gain stays positive throughout and tends
	// to shrink at high connectivity.
	for i, row := range res.Rows {
		if row.RDRel.Mean <= 0 {
			t.Errorf("alpha %s: RD_rel %.3f not positive", row.Label, row.RDRel.Mean)
		}
		if i > 0 && row.AvgDegree <= res.Rows[i-1].AvgDegree {
			t.Errorf("avg degree should grow with alpha (%s → %s)",
				res.Rows[i-1].Label, row.Label)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := RunFig10(testTopo, testSets, 55)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(Fig10GroupSizes) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper: performance held steadily across group sizes.
	for _, row := range res.Rows {
		if row.RDRel.Mean <= 0 {
			t.Errorf("NG %s: RD_rel %.3f not positive", row.Label, row.RDRel.Mean)
		}
		if row.DelayRel.Mean > 0.3 {
			t.Errorf("NG %s: delay penalty %.3f implausibly large", row.Label, row.DelayRel.Mean)
		}
	}
}

func TestDegree10Shape(t *testing.T) {
	res, err := RunDegree10(2, 1, 66)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Rows[len(res.Rows)-1]
	if last.AvgDegree < 7 {
		t.Errorf("high-connectivity study should reach degree ≈10, got %.1f", last.AvgDegree)
	}
	if last.RDRel.Mean <= 0 {
		t.Errorf("RD gain should persist at high connectivity, got %.3f", last.RDRel.Mean)
	}
}

func TestAblations(t *testing.T) {
	res, err := RunAblations(2, 1, 77)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]AblationRow{}
	for _, r := range res.Rows {
		rows[r.Name] = r
	}
	full, ok := rows["smrp-full"]
	if !ok {
		t.Fatal("missing smrp-full row")
	}
	// Deferred SHR must match metrics but flip the overhead profile.
	def := rows["deferred-shr"]
	if def.RDRel.Mean != full.RDRel.Mean {
		t.Errorf("deferred SHR changed RD_rel: %.4f vs %.4f", def.RDRel.Mean, full.RDRel.Mean)
	}
	if def.SHRUpdates != 0 || full.SHRComputes != 0 {
		t.Errorf("overhead profile wrong: def-updates=%.1f full-computes=%.1f",
			def.SHRUpdates, full.SHRComputes)
	}
	if def.SHRComputes == 0 || full.SHRUpdates == 0 {
		t.Error("overhead counters missing")
	}
	// Query scheme sends messages; full knowledge does not.
	if rows["query-scheme"].QueryMsgs == 0 || full.QueryMsgs != 0 {
		t.Error("query-message accounting wrong")
	}
	// No-reshaping performs no reshapes.
	if rows["no-reshaping"].Reshapes != 0 {
		t.Error("no-reshaping variant still reshaped")
	}
	// Local detours help even on the SPF tree, but the SMRP tree helps more
	// than the raw strategy alone on average.
	if rows["detour-on-spf-tree"].RDRel.Mean <= 0 {
		t.Error("local detour on SPF tree should still be positive")
	}
	if res.Render() == "" {
		t.Error("Render should produce output")
	}
}

func TestLatencyExperiment(t *testing.T) {
	res, err := RunLatency(3, 88)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios == 0 {
		t.Fatal("no scenarios measured")
	}
	if res.SMRPLatency.Mean <= 0 || res.SPFLatency.Mean <= 0 {
		t.Error("latencies must be positive")
	}
	if res.Speedup <= 1 {
		t.Errorf("local detours should beat reconvergence-gated recovery, speedup = %.2f", res.Speedup)
	}
	if !strings.Contains(res.Render(), "speedup") {
		t.Error("Render output malformed")
	}
}

func TestHierarchyExperiment(t *testing.T) {
	res, err := RunHierarchy(3, 99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs == 0 {
		t.Fatal("no runs measured")
	}
	if res.ScopeHier.Mean >= res.ScopeFlat.Mean {
		t.Errorf("hierarchical scope %.1f should be below flat %.1f",
			res.ScopeHier.Mean, res.ScopeFlat.Mean)
	}
	if res.DelayStretch.Mean < 1-1e-9 {
		t.Errorf("delay stretch %.3f below 1 is impossible", res.DelayStretch.Mean)
	}
	if res.Render() == "" {
		t.Error("Render should produce output")
	}
}
