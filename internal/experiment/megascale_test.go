package experiment

import (
	"strings"
	"testing"
)

// megascaleSmokeSizes are the CI-scale sizes: large enough that the flat
// arm's recovery work visibly exceeds the hierarchy's domain-bounded work,
// small enough to finish in seconds.
var megascaleSmokeSizes = []int{2000, 8000}

// TestMegascaleSettledRatio is the CI gate on the study's headline, stated in
// settled-node counters (exact and machine-independent), never wall-clock:
// per-recovery-event settled work in the hierarchy is bounded by the domain
// size, while the flat arm's grows with N and exceeds the hierarchy's by a
// widening factor.
func TestMegascaleSettledRatio(t *testing.T) {
	res, err := RunMegascale(megascaleSmokeSizes, 16, 2005)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(megascaleSmokeSizes) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(megascaleSmokeSizes))
	}
	for _, row := range res.Rows {
		t.Logf("N=%d: flat settled/event=%.1f hier settled/event=%.1f, join flat=%d hier=%d",
			row.Target, row.Flat.SettledPerEvent(), row.Hier.SettledPerEvent(),
			row.Flat.JoinSettled, row.Hier.JoinSettled)
		if row.Flat.Events == 0 || row.Hier.Events == 0 {
			t.Fatalf("N=%d: no recovery events driven (flat %d, hier %d)",
				row.Target, row.Flat.Events, row.Hier.Events)
		}
		// Hierarchical recovery work is confined to one domain per event. The
		// reconnect loop re-sweeps each still-disconnected member per round,
		// so the bound is a small multiple of the ~100-node domain, not N.
		if perEvent := row.Hier.SettledPerEvent(); perEvent > 1000 {
			t.Errorf("N=%d: hierarchical settled/event = %.1f, not domain-bounded",
				row.Target, perEvent)
		}
		// The ratio gate: a flat restoration event settles orders of magnitude
		// more nodes than a domain-confined one (observed >500x; 20x leaves
		// room for schedule-shape variance without weakening the claim).
		if row.Flat.RecoverSettled*row.Hier.Events < 20*row.Hier.RecoverSettled*row.Flat.Events {
			t.Errorf("N=%d: flat settled/event %.1f not >= 20x hierarchical %.1f",
				row.Target, row.Flat.SettledPerEvent(), row.Hier.SettledPerEvent())
		}
		if row.Flat.JoinSettled < 4*row.Hier.JoinSettled {
			t.Errorf("N=%d: flat join settled %d not >= 4x hierarchical %d",
				row.Target, row.Flat.JoinSettled, row.Hier.JoinSettled)
		}
	}
	// Growth with N, measured on the admission counter where per-member work
	// is exactly one near-full sweep: flat scales with the network (4x nodes
	// here), the hierarchy with the domain chain (constant domain size, so
	// bounded drift). Per-event restoration work has a noisier multiplier —
	// how many members hang off the cut branch varies with tree shape — which
	// is why the per-event claim above is a ratio, not a growth curve.
	small, large := res.Rows[0], res.Rows[len(res.Rows)-1]
	if large.Flat.JoinSettled < 2*small.Flat.JoinSettled {
		t.Errorf("flat join settled did not grow with N: %d at N=%d vs %d at N=%d",
			small.Flat.JoinSettled, small.Target, large.Flat.JoinSettled, large.Target)
	}
	if large.Hier.JoinSettled > 3*small.Hier.JoinSettled {
		t.Errorf("hierarchical join settled grew with N: %d at N=%d vs %d at N=%d",
			small.Hier.JoinSettled, small.Target, large.Hier.JoinSettled, large.Target)
	}
}

// TestMegascaleMemoryAccounting pins the deterministic memory story: the
// hierarchy pays for domain confinement with per-domain subgraph copies on
// the order of the full graph's own footprint, and the accounting is exact
// (re-running reproduces it bit-for-bit).
func TestMegascaleMemoryAccounting(t *testing.T) {
	res, err := RunMegascale([]int{2000}, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row.Flat.GraphBytes <= 0 || row.Hier.GraphBytes <= 0 {
		t.Fatalf("graph bytes not accounted: flat %d, hier %d", row.Flat.GraphBytes, row.Hier.GraphBytes)
	}
	if row.Flat.SessionBytes != 0 {
		t.Errorf("flat arm reported session bytes %d, routes over the shared graph", row.Flat.SessionBytes)
	}
	if row.Hier.SessionBytes <= 0 {
		t.Fatal("hierarchical arm reported no subgraph bytes")
	}
	// Per-domain subgraphs re-materialize every node and its intra-domain
	// edges once: same order of magnitude as the graph, bounded by a small
	// multiple of it.
	if row.Hier.SessionBytes > 3*row.Hier.GraphBytes {
		t.Errorf("subgraph bytes %d exceed 3x graph bytes %d", row.Hier.SessionBytes, row.Hier.GraphBytes)
	}
	again, err := RunMegascale([]int{2000}, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if again.Render() != res.Render() {
		t.Fatal("same-seed megascale reruns rendered differently")
	}
}

// TestMegascaleDeterministicAcrossWorkerCounts is the megascale-smoke
// determinism gate: the rendered study must be byte-identical on one worker
// and four.
func TestMegascaleDeterministicAcrossWorkerCounts(t *testing.T) {
	defer SetParallelism(0)
	const seed = 2005
	sizes := []int{1000, 2000}

	SetParallelism(1)
	r1, err := RunMegascale(sizes, 8, seed)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	r4, err := RunMegascale(sizes, 8, seed)
	if err != nil {
		t.Fatal(err)
	}
	seq, par := r1.Render(), r4.Render()
	if seq != par {
		seqLines, parLines := strings.Split(seq, "\n"), strings.Split(par, "\n")
		for i := 0; i < min(len(seqLines), len(parLines)); i++ {
			if seqLines[i] != parLines[i] {
				t.Fatalf("workers=1 and workers=4 diverge at line %d:\n  w1: %q\n  w4: %q",
					i+1, seqLines[i], parLines[i])
			}
		}
		t.Fatalf("workers=1 and workers=4 outputs differ in length")
	}
}

// TestMegascaleHierOnly pins the hierarchical tier (the mode the N=10⁶ CI
// trial runs in): events drive domain-bounded settled work, the accounting
// is present, the render carries no flat columns, and the output is
// byte-identical across worker counts.
func TestMegascaleHierOnly(t *testing.T) {
	defer SetParallelism(0)
	sizes := []int{2000, 8000}

	SetParallelism(1)
	r1, err := RunMegascaleHier(sizes, 16, 2005)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.HierOnly {
		t.Fatal("result not marked hier-only")
	}
	for _, row := range r1.Rows {
		if row.Flat != (MegascaleArm{}) {
			t.Fatalf("N=%d: hier-only run populated the flat arm: %+v", row.Target, row.Flat)
		}
		if row.Hier.Events == 0 {
			t.Fatalf("N=%d: no recovery events driven", row.Target)
		}
		if perEvent := row.Hier.SettledPerEvent(); perEvent > 1000 {
			t.Errorf("N=%d: settled/event = %.1f, not domain-bounded", row.Target, perEvent)
		}
		if row.Hier.GraphBytes <= 0 || row.Hier.SessionBytes <= 0 {
			t.Fatalf("N=%d: memory accounting missing: graph=%d subgraphs=%d",
				row.Target, row.Hier.GraphBytes, row.Hier.SessionBytes)
		}
	}
	if out := r1.Render(); strings.Contains(out, "flat") {
		t.Fatalf("hier-only render mentions the flat arm:\n%s", out)
	}

	SetParallelism(4)
	r4, err := RunMegascaleHier(sizes, 16, 2005)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r4.Render() {
		t.Fatal("hier-only output differs between workers=1 and workers=4")
	}
}
