package experiment

import (
	"context"
	"fmt"
	"strings"

	"smrp/internal/eventsim"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/metrics"
	"smrp/internal/protocol"
	"smrp/internal/runner"
	"smrp/internal/topology"
)

// LatencyResult reproduces the paper's motivating claim at the message
// level: service-restoration latency via local detours vs. the
// reconvergence-gated global detour, measured on the event-driven protocol
// implementations.
type LatencyResult struct {
	Scenarios     int
	SMRPLatency   metrics.Summary
	SPFLatency    metrics.Summary
	Speedup       float64 // mean SPF latency / mean SMRP latency
	SMRPMessages  float64 // mean control messages per scenario
	SPFMessages   float64
	Unrecoverable int
}

// Render prints the comparison.
func (r *LatencyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Restoration latency (event-driven protocols, %d scenarios)\n", r.Scenarios)
	fmt.Fprintf(&b, "  %-22s %-24s %-10s\n", "protocol", "latency (mean±ci95)", "msgs/run")
	fmt.Fprintf(&b, "  %-22s %8.3f ± %-13.3f %-10.1f\n", "SMRP (local detour)",
		r.SMRPLatency.Mean, r.SMRPLatency.CI95, r.SMRPMessages)
	fmt.Fprintf(&b, "  %-22s %8.3f ± %-13.3f %-10.1f\n", "SPF (global detour)",
		r.SPFLatency.Mean, r.SPFLatency.CI95, r.SPFMessages)
	fmt.Fprintf(&b, "  speedup = %.2fx, unrecoverable scenarios skipped = %d\n",
		r.Speedup, r.Unrecoverable)
	return b.String()
}

// latencyRun is one trial's measurement (ok=false when the victim was
// unrecoverable in either protocol).
type latencyRun struct {
	ok         bool
	sLat, gLat float64
	sMsg, gMsg float64
}

// RunLatency builds paired protocol instances over random topologies, drives
// member joins, injects each protocol's worst-case failure for a victim
// member, and measures restoration latency. Runs execute on the parallel
// runner and fold in run order (bit-identical for any worker count).
func RunLatency(runs int, seed uint64) (*LatencyResult, error) {
	return RunLatencyCtx(context.Background(), runs, seed)
}

// RunLatencyCtx is RunLatency under a caller-supplied context.
func RunLatencyCtx(ctx context.Context, runs int, seed uint64) (*LatencyResult, error) {
	base := DefaultBase()
	pcfg := protocol.DefaultConfig()
	pcfg.SMRP = base.SMRP

	out := &LatencyResult{}
	runResults, err := mapTrialsCtx(ctx, seed, runs, func(_ context.Context, t runner.Trial) (latencyRun, error) {
		r := t.Index
		rng := topology.NewRNG(seed + uint64(r)*7919)
		g, err := topology.Waxman(topology.WaxmanConfig{
			N: base.N, Alpha: base.Alpha, Beta: base.Beta, EnsureConnected: true,
		}, rng)
		if err != nil {
			return latencyRun{}, err
		}
		// Reconvergence modeling re-runs Dijkstra from every LSA detector;
		// memoize them for this run's private topology.
		g.EnableSPFCache()
		// Root at a well-connected node so single failures cannot partition
		// the source itself.
		source := graph.NodeID(0)
		for n := 1; n < g.NumNodes(); n++ {
			if g.Degree(graph.NodeID(n)) > g.Degree(source) {
				source = graph.NodeID(n)
			}
		}
		var members []graph.NodeID
		for _, id := range rng.Sample(base.N, base.NG+1) {
			if graph.NodeID(id) != source && len(members) < base.NG {
				members = append(members, graph.NodeID(id))
			}
		}
		smrp, err := protocol.NewSMRPInstance(g, source, pcfg)
		if err != nil {
			return latencyRun{}, err
		}
		spf, err := protocol.NewSPFInstance(g, source, pcfg)
		if err != nil {
			return latencyRun{}, err
		}
		for k, m := range members {
			at := eventsim.Time(k + 1)
			if err := smrp.ScheduleJoin(at, m); err != nil {
				return latencyRun{}, err
			}
			if err := spf.ScheduleJoin(at, m); err != nil {
				return latencyRun{}, err
			}
		}
		if err := smrp.Run(200); err != nil {
			return latencyRun{}, err
		}
		if err := spf.Run(200); err != nil {
			return latencyRun{}, err
		}

		victim := members[0]
		fS, err := failure.WorstCaseFor(smrp.Session().Tree(), victim)
		if err != nil {
			return latencyRun{}, err
		}
		fG, err := failure.WorstCaseFor(spf.Session().Tree(), victim)
		if err != nil {
			return latencyRun{}, err
		}
		if err := smrp.InjectFailure(300, fS); err != nil {
			return latencyRun{}, err
		}
		if err := spf.InjectFailure(300, fG); err != nil {
			return latencyRun{}, err
		}
		if err := smrp.Run(2000); err != nil {
			return latencyRun{}, err
		}
		if err := spf.Run(2000); err != nil {
			return latencyRun{}, err
		}

		var sv, gv *protocol.Restoration
		for _, rr := range smrp.Restorations() {
			if rr.Member == victim {
				r := rr
				sv = &r
			}
		}
		for _, rr := range spf.Restorations() {
			if rr.Member == victim {
				r := rr
				gv = &r
			}
		}
		if sv == nil || gv == nil {
			return latencyRun{}, nil
		}
		return latencyRun{
			ok:   true,
			sLat: float64(sv.Latency),
			gLat: float64(gv.Latency),
			sMsg: float64(smrp.Network().Sent),
			gMsg: float64(spf.Network().Sent),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	var sLat, gLat metrics.Sample
	var sMsg, gMsg float64
	for _, lr := range runResults {
		if !lr.ok {
			out.Unrecoverable++
			continue
		}
		sLat.Add(lr.sLat)
		gLat.Add(lr.gLat)
		sMsg += lr.sMsg
		gMsg += lr.gMsg
		out.Scenarios++
	}
	if out.Scenarios == 0 {
		return nil, fmt.Errorf("experiment: no recoverable latency scenarios out of %d", runs)
	}
	if out.SMRPLatency, err = sLat.Summarize(); err != nil {
		return nil, err
	}
	if out.SPFLatency, err = gLat.Summarize(); err != nil {
		return nil, err
	}
	if out.SMRPLatency.Mean > 0 {
		out.Speedup = out.SPFLatency.Mean / out.SMRPLatency.Mean
	}
	out.SMRPMessages = sMsg / float64(out.Scenarios)
	out.SPFMessages = gMsg / float64(out.Scenarios)
	return out, nil
}
