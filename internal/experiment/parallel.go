package experiment

import (
	"context"
	"runtime"
	"sync/atomic"

	"smrp/internal/runner"
)

// parallelism holds the worker-pool size used by every study in this
// package. 0 means "use runtime.GOMAXPROCS(0)".
var parallelism atomic.Int64

// SetParallelism fixes the number of workers the experiment runners use for
// scenario execution. n < 1 restores the default (GOMAXPROCS). It returns
// the effective worker count. Studies are bit-deterministic in their output
// regardless of this setting — it only changes wall-clock time.
func SetParallelism(n int) int {
	if n < 1 {
		parallelism.Store(0)
	} else {
		parallelism.Store(int64(n))
	}
	return Parallelism()
}

// Parallelism returns the worker count studies currently use.
func Parallelism() int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// runnerConfig builds the pool configuration for one study sweep.
func runnerConfig(seed uint64) runner.Config {
	return runner.Config{Workers: Parallelism(), BaseSeed: seed}
}

// mapTrials runs n trials through the shared worker pool with this package's
// parallelism setting. Results come back ordered by trial index, so callers
// fold them sequentially and stay bit-deterministic for any worker count.
func mapTrials[T any](seed uint64, n int, fn runner.Func[T]) ([]T, error) {
	return mapTrialsCtx(context.Background(), seed, n, fn)
}

// mapTrialsCtx is mapTrials under a caller-supplied context: a cancelled ctx
// stops dispatching new trials and surfaces ctx.Err().
func mapTrialsCtx[T any](ctx context.Context, seed uint64, n int, fn runner.Func[T]) ([]T, error) {
	return runner.Map(ctx, runnerConfig(seed), n, fn)
}

// Merge folds other into a, preserving other's internal sample order after
// a's (exactly associative, see metrics.Sample.Merge). Folding per-trial
// aggregates in trial order reproduces the sequential accumulation
// bit-for-bit.
func (a *Aggregate) Merge(other *Aggregate) {
	a.RDRel.Merge(&other.RDRel)
	a.DelayRel.Merge(&other.DelayRel)
	a.CostRel.Merge(&other.CostRel)
	a.RDRelLocalOnSPF.Merge(&other.RDRelLocalOnSPF)
	a.Unrecoverable += other.Unrecoverable
	a.AvgDegree.Merge(&other.AvgDegree)
}
