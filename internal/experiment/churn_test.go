package experiment

import "testing"

func TestChurnExperiment(t *testing.T) {
	res, err := RunChurn(2, 101)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 2 || len(res.Rows) != 3 {
		t.Fatalf("runs=%d rows=%d", res.Runs, len(res.Rows))
	}
	rows := map[string]ChurnRow{}
	for _, r := range res.Rows {
		rows[r.Name] = r
	}
	if rows["no-reshaping"].Reshapes != 0 {
		t.Error("no-reshaping variant reshaped")
	}
	if rows["condition-I+II"].Reshapes < rows["condition-I"].Reshapes {
		t.Error("Condition II should add reshapes on top of Condition I")
	}
	for name, r := range rows {
		if r.RDRel.Mean <= 0 {
			t.Errorf("%s: RD_rel %.3f not positive", name, r.RDRel.Mean)
		}
	}
	if res.Events.Mean <= 0 {
		t.Error("no churn events recorded")
	}
	if res.Render() == "" {
		t.Error("Render empty")
	}
}
