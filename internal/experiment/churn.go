package experiment

import (
	"context"
	"fmt"
	"strings"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/metrics"
	"smrp/internal/runner"
	"smrp/internal/spfbase"
	"smrp/internal/topology"
	"smrp/internal/workload"
)

// ChurnResult studies tree reshaping under membership churn (§3.2.3): after
// a long series of joins and departures, how do recovery distance, delay and
// cost compare against the SPF baseline with reshaping disabled, with
// Condition I only, and with Conditions I+II?
type ChurnResult struct {
	Runs   int
	Events metrics.Summary // churn events applied per run
	Rows   []ChurnRow
}

// ChurnRow is one reshaping configuration's post-churn quality.
type ChurnRow struct {
	Name     string
	RDRel    metrics.Summary
	DelayRel metrics.Summary
	CostRel  metrics.Summary
	Reshapes float64 // mean path switches per run
}

// Render prints the study.
func (r *ChurnResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reshaping under churn (%d runs, %.0f events/run avg)\n", r.Runs, r.Events.Mean)
	fmt.Fprintf(&b, "  %-18s %-20s %-20s %-20s %-8s\n", "variant", "RD_rel", "Delay_rel", "Cost_rel", "reshapes")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-18s %7.4f ± %-9.4f %7.4f ± %-9.4f %7.4f ± %-9.4f %-8.1f\n",
			row.Name,
			row.RDRel.Mean, row.RDRel.CI95,
			row.DelayRel.Mean, row.DelayRel.CI95,
			row.CostRel.Mean, row.CostRel.CI95,
			row.Reshapes)
	}
	return b.String()
}

// churnVariant names one reshaping configuration.
type churnVariant struct {
	name string
	cfg  core.Config
}

// churnVariants returns the three reshaping configurations under study.
func churnVariants() []churnVariant {
	off := core.DefaultConfig()
	off.ReshapeDelta = 0
	off.PeriodicReshape = false
	condI := core.DefaultConfig()
	condI.PeriodicReshape = false
	full := core.DefaultConfig()
	return []churnVariant{
		{name: "no-reshaping", cfg: off},
		{name: "condition-I", cfg: condI},
		{name: "condition-I+II", cfg: full},
	}
}

// churnRun is one trial's contribution: the per-variant aggregates and
// reshape counts for a single topology + churn schedule.
type churnRun struct {
	events   float64
	aggs     []*Aggregate
	reshapes []float64
}

// RunChurn drives the same churn schedule through an SPF session and three
// SMRP reshaping variants, then evaluates the surviving members under
// worst-case failures. Condition II (the periodic timer) fires every
// reshapeEvery events for the full variant. Runs are independent and execute
// on the parallel runner; per-run results fold in run order, so output is
// identical for any worker count.
func RunChurn(runs int, seed uint64) (*ChurnResult, error) {
	return RunChurnCtx(context.Background(), runs, seed)
}

// RunChurnCtx is RunChurn under a caller-supplied context.
func RunChurnCtx(ctx context.Context, runs int, seed uint64) (*ChurnResult, error) {
	const reshapeEvery = 10
	base := DefaultBase()
	out := &ChurnResult{}
	variants := churnVariants()

	runResults, err := mapTrialsCtx(ctx, seed, runs, func(_ context.Context, t runner.Trial) (*churnRun, error) {
		r := t.Index
		rng := topology.NewRNG(seed + uint64(r)*6151)
		g, err := topology.Waxman(topology.WaxmanConfig{
			N: base.N, Alpha: base.Alpha, Beta: base.Beta, EnsureConnected: true,
		}, rng)
		if err != nil {
			return nil, err
		}
		// Worst-case evaluation below re-queries many (member, mask) pairs;
		// memoize SPF trees for the run's private topology.
		g.EnableSPFCache()
		source := graph.NodeID(0)
		pop := make([]graph.NodeID, 0, base.N-1)
		for n := 1; n < base.N; n++ {
			pop = append(pop, graph.NodeID(n))
		}
		sched, err := workload.Generate(workload.Config{
			Nodes:          pop,
			Horizon:        300,
			ArrivalRate:    0.3,
			MeanLifetime:   120,
			InitialMembers: base.NG,
		}, rng.Split())
		if err != nil {
			return nil, err
		}
		cr := &churnRun{
			events:   float64(len(sched.Events)),
			aggs:     make([]*Aggregate, len(variants)),
			reshapes: make([]float64, len(variants)),
		}

		// SPF baseline under the same schedule.
		spfSess, err := newSPFUnderChurn(g, source, sched)
		if err != nil {
			return nil, err
		}

		for vi, v := range variants {
			cr.aggs[vi] = &Aggregate{}
			sess, err := core.NewSession(g, source, v.cfg)
			if err != nil {
				return nil, err
			}
			applied := 0
			for _, e := range sched.Events {
				switch e.Kind {
				case workload.Join:
					if _, err := sess.Join(e.Node); err != nil {
						return nil, fmt.Errorf("churn join %d: %w", e.Node, err)
					}
				case workload.Leave:
					if err := sess.Leave(e.Node); err != nil {
						return nil, fmt.Errorf("churn leave %d: %w", e.Node, err)
					}
				}
				applied++
				if v.cfg.PeriodicReshape && applied%reshapeEvery == 0 {
					sess.ReshapeAll()
				}
			}
			cr.reshapes[vi] = float64(sess.Stats().Reshapes)
			if err := accumulateChurn(cr.aggs[vi], sess, spfSess); err != nil {
				return nil, err
			}
		}
		return cr, nil
	})
	if err != nil {
		return nil, err
	}

	aggs := make([]*Aggregate, len(variants))
	reshapes := make([]float64, len(variants))
	for i := range aggs {
		aggs[i] = &Aggregate{}
	}
	var eventsSample metrics.Sample
	for _, cr := range runResults {
		eventsSample.Add(cr.events)
		for vi := range variants {
			aggs[vi].Merge(cr.aggs[vi])
			reshapes[vi] += cr.reshapes[vi]
		}
		out.Runs++
	}

	if out.Events, err = eventsSample.Summarize(); err != nil {
		return nil, err
	}
	for vi, v := range variants {
		rd, err := aggs[vi].RDRel.Summarize()
		if err != nil {
			return nil, fmt.Errorf("churn %s: %w", v.name, err)
		}
		dl, err := aggs[vi].DelayRel.Summarize()
		if err != nil {
			return nil, err
		}
		ct, err := aggs[vi].CostRel.Summarize()
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ChurnRow{
			Name:     v.name,
			RDRel:    rd,
			DelayRel: dl,
			CostRel:  ct,
			Reshapes: reshapes[vi] / float64(out.Runs),
		})
	}
	return out, nil
}

// newSPFUnderChurn replays the schedule on the SPF baseline.
func newSPFUnderChurn(g *graph.Graph, source graph.NodeID, sched *workload.Schedule) (*spfbase.Session, error) {
	s, err := spfbase.NewSession(g, source)
	if err != nil {
		return nil, err
	}
	for _, e := range sched.Events {
		switch e.Kind {
		case workload.Join:
			if err := s.Join(e.Node); err != nil {
				return nil, err
			}
		case workload.Leave:
			if err := s.Leave(e.Node); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// accumulateChurn measures the post-churn trees member by member.
func accumulateChurn(agg *Aggregate, smrp *core.Session, spf *spfbase.Session) error {
	costSPF, err := spf.Tree().Cost()
	if err != nil {
		return err
	}
	costSMRP, err := smrp.Tree().Cost()
	if err != nil {
		return err
	}
	if cr, err := metrics.RelativeCost(costSPF, costSMRP); err == nil {
		agg.CostRel.Add(cr)
	}
	for _, m := range smrp.Tree().Members() {
		if !spf.Tree().IsMember(m) {
			continue // schedules are identical, so this cannot happen
		}
		dSPF, err := spf.Tree().DelayTo(m)
		if err != nil {
			return err
		}
		dSMRP, err := smrp.Tree().DelayTo(m)
		if err != nil {
			return err
		}
		if dr, err := metrics.RelativeDelay(dSPF, dSMRP); err == nil {
			agg.DelayRel.Add(dr)
		}
		fS, err := failure.WorstCaseFor(smrp.Tree(), m)
		if err != nil {
			continue
		}
		fG, err := failure.WorstCaseFor(spf.Tree(), m)
		if err != nil {
			continue
		}
		_, rdL, errL := failure.LocalDetour(smrp.Tree(), fS.Mask(), m)
		_, rdG, errG := failure.GlobalDetour(spf.Tree(), fG.Mask(), m)
		if errL != nil || errG != nil {
			agg.Unrecoverable++
			continue
		}
		if rr, err := metrics.RelativeRD(rdG, rdL); err == nil {
			agg.RDRel.Add(rr)
		}
	}
	return nil
}
