package experiment

import (
	"testing"
)

// TestSmokeShapes runs a reduced Figure-8-style sweep and logs the headline
// numbers so the result shapes can be eyeballed during development. The
// real assertions live in figs_test.go.
func TestSmokeShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test")
	}
	res, err := RunFig8(3, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	f7, err := RunFig7(42)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fig7: mean reduction %.3f below-diag %.3f points %d",
		f7.MeanReduction, f7.BelowDiagonal, len(f7.Points))
}
