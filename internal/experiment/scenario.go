// Package experiment regenerates the paper's evaluation (§4): scenario
// generation over Waxman topologies, paired SMRP-vs-SPF measurement of
// recovery distance, end-to-end delay and tree cost under per-member
// worst-case failures, and the runners for Figures 7–10, the in-text
// degree-10 study, and the design ablations.
package experiment

import (
	"errors"
	"fmt"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/metrics"
	"smrp/internal/spfbase"
	"smrp/internal/topology"
)

// Base holds the parameters shared by every run of an experiment:
// the paper's N, N_G, α (with fixed β) and the SMRP configuration.
type Base struct {
	N     int     // network size (paper: 100)
	NG    int     // multicast group size (paper: 30)
	Alpha float64 // Waxman α (paper: 0.2)
	Beta  float64 // Waxman β (fixed)
	SMRP  core.Config
}

// DefaultBase returns the paper's default setup: N=100, N_G=30, α=0.2,
// D_thresh=0.3.
func DefaultBase() Base {
	return Base{
		N:     100,
		NG:    30,
		Alpha: 0.2,
		Beta:  topology.DefaultBeta,
		SMRP:  core.DefaultConfig(),
	}
}

// Validate reports whether the base is usable.
func (b Base) Validate() error {
	if b.N < 3 {
		return fmt.Errorf("experiment: N = %d too small", b.N)
	}
	if b.NG < 1 || b.NG >= b.N {
		return fmt.Errorf("experiment: NG = %d out of [1, N)", b.NG)
	}
	return b.SMRP.Validate()
}

// Scenario is one concrete experiment instance: a topology plus a source and
// member set.
type Scenario struct {
	Topo      *graph.Graph
	Source    graph.NodeID
	Members   []graph.NodeID // join order
	AvgDegree float64
	// TopoSeed and MemberSeed identify the scenario for reproduction.
	TopoSeed, MemberSeed uint64
}

// GenScenarios produces nTopo topologies × nSets member sets (every member
// set re-drawn per topology), seeded deterministically from seed. This
// mirrors the paper's "ten network topologies … in each topology, ten
// different sets of multicast members".
func GenScenarios(b Base, nTopo, nSets int, seed uint64) ([]Scenario, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if nTopo < 1 || nSets < 1 {
		return nil, errors.New("experiment: need at least one topology and one member set")
	}
	out := make([]Scenario, 0, nTopo*nSets)
	for ti := 0; ti < nTopo; ti++ {
		topoSeed := seed + uint64(ti)*0x9E3779B9
		g, err := topology.Waxman(topology.WaxmanConfig{
			N:               b.N,
			Alpha:           b.Alpha,
			Beta:            b.Beta,
			EnsureConnected: true,
		}, topology.NewRNG(topoSeed))
		if err != nil {
			return nil, fmt.Errorf("experiment: topology %d: %w", ti, err)
		}
		// The nSets scenarios built below share this topology; parallel
		// trials evaluating them memoize shortest-path trees in a shared
		// concurrency-safe cache instead of re-running Dijkstra.
		g.EnableSPFCache()
		deg := g.AvgDegree()
		for mi := 0; mi < nSets; mi++ {
			memberSeed := seed + 0xABCDEF + uint64(ti)*1000 + uint64(mi)
			rng := topology.NewRNG(memberSeed)
			ids := rng.Sample(b.N, b.NG+1)
			members := make([]graph.NodeID, b.NG)
			for i, id := range ids[1:] {
				members[i] = graph.NodeID(id)
			}
			out = append(out, Scenario{
				Topo:       g,
				Source:     graph.NodeID(ids[0]),
				Members:    members,
				AvgDegree:  deg,
				TopoSeed:   topoSeed,
				MemberSeed: memberSeed,
			})
		}
	}
	return out, nil
}

// MemberObs is the paired per-member measurement of one scenario.
type MemberObs struct {
	Member graph.NodeID
	// Pre-failure end-to-end delays on each protocol's tree.
	DelaySPF, DelaySMRP float64
	// Worst-case recovery distances: the paper's headline comparison is
	// RDGlobalSPF (baseline) vs RDLocalSMRP (SMRP).
	RDGlobalSPF float64 // global detour on the SPF tree
	RDLocalSMRP float64 // local detour on the SMRP tree
	RDLocalSPF  float64 // ablation: local detour on the SPF tree
	// Recoverable is false when the worst-case failure partitions the
	// member from the source entirely (excluded from aggregates).
	Recoverable bool
}

// Result is the full measurement of one scenario.
type Result struct {
	Scenario  Scenario
	CostSPF   float64
	CostSMRP  float64
	Members   []MemberObs
	SMRPStats core.Stats
}

// Evaluate builds the SPF and SMRP trees for the scenario (same join order),
// applies one settling Condition-II reshaping pass when enabled, and
// measures every member under its per-tree worst-case failure.
func Evaluate(sc Scenario, smrpCfg core.Config) (*Result, error) {
	spf, err := spfbase.NewSession(sc.Topo, sc.Source)
	if err != nil {
		return nil, fmt.Errorf("experiment: spf session: %w", err)
	}
	smrp, err := core.NewSession(sc.Topo, sc.Source, smrpCfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: smrp session: %w", err)
	}
	for _, m := range sc.Members {
		if err := spf.Join(m); err != nil {
			return nil, fmt.Errorf("experiment: spf join %d: %w", m, err)
		}
		if _, err := smrp.Join(m); err != nil {
			return nil, fmt.Errorf("experiment: smrp join %d: %w", m, err)
		}
	}
	if smrpCfg.PeriodicReshape {
		// One Condition-II settling pass, as the protocol's periodic timer
		// would perform after the joins complete.
		smrp.ReshapeAll()
	}

	res := &Result{Scenario: sc, SMRPStats: smrp.Stats()}
	if res.CostSPF, err = spf.Tree().Cost(); err != nil {
		return nil, err
	}
	if res.CostSMRP, err = smrp.Tree().Cost(); err != nil {
		return nil, err
	}

	for _, m := range sc.Members {
		obs := MemberObs{Member: m, Recoverable: true}
		if obs.DelaySPF, err = spf.Tree().DelayTo(m); err != nil {
			return nil, err
		}
		if obs.DelaySMRP, err = smrp.Tree().DelayTo(m); err != nil {
			return nil, err
		}

		// Worst case on the SPF tree → global detour (baseline) and the
		// local-detour ablation.
		fSPF, err := failure.WorstCaseFor(spf.Tree(), m)
		if err != nil {
			return nil, fmt.Errorf("experiment: worst case (spf) for %d: %w", m, err)
		}
		maskSPF := fSPF.Mask()
		_, rdG, errG := failure.GlobalDetour(spf.Tree(), maskSPF, m)
		_, rdLS, errLS := failure.LocalDetour(spf.Tree(), maskSPF, m)

		// Worst case on the SMRP tree → local detour (SMRP's recovery).
		fSMRP, err := failure.WorstCaseFor(smrp.Tree(), m)
		if err != nil {
			return nil, fmt.Errorf("experiment: worst case (smrp) for %d: %w", m, err)
		}
		_, rdL, errL := failure.LocalDetour(smrp.Tree(), fSMRP.Mask(), m)

		if errG != nil || errL != nil || errLS != nil {
			obs.Recoverable = false
		} else {
			obs.RDGlobalSPF = rdG
			obs.RDLocalSMRP = rdL
			obs.RDLocalSPF = rdLS
		}
		res.Members = append(res.Members, obs)
	}
	return res, nil
}

// Aggregate collects the paper's three relative metrics over a set of
// results: RD and delay are per-member samples, cost is per-scenario.
type Aggregate struct {
	RDRel    metrics.Sample // (RD_SPF − RD_SMRP) / RD_SPF, per member
	DelayRel metrics.Sample // (D_SMRP − D_SPF) / D_SPF, per member
	CostRel  metrics.Sample // (Cost_SMRP − Cost_SPF) / Cost_SPF, per scenario
	// RDRelLocalOnSPF supports the detour ablation: local detours on the
	// *SPF* tree against the same global baseline.
	RDRelLocalOnSPF metrics.Sample
	Unrecoverable   int // members excluded because no recovery path existed
	AvgDegree       metrics.Sample
}

// Accumulate folds one result into the aggregate.
func (a *Aggregate) Accumulate(r *Result) error {
	cr, err := metrics.RelativeCost(r.CostSPF, r.CostSMRP)
	if err != nil {
		return err
	}
	a.CostRel.Add(cr)
	a.AvgDegree.Add(r.Scenario.AvgDegree)
	for _, o := range r.Members {
		if dr, err := metrics.RelativeDelay(o.DelaySPF, o.DelaySMRP); err == nil {
			a.DelayRel.Add(dr)
		}
		if !o.Recoverable {
			a.Unrecoverable++
			continue
		}
		rr, err := metrics.RelativeRD(o.RDGlobalSPF, o.RDLocalSMRP)
		if err != nil {
			return err
		}
		a.RDRel.Add(rr)
		if rrl, err := metrics.RelativeRD(o.RDGlobalSPF, o.RDLocalSPF); err == nil {
			a.RDRelLocalOnSPF.Add(rrl)
		}
	}
	return nil
}
