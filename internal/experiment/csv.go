package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the sweep as machine-readable CSV, one row per swept value,
// so the figures can be re-plotted outside Go.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		r.XName,
		"rd_rel_mean", "rd_rel_ci95",
		"delay_rel_mean", "delay_rel_ci95",
		"cost_rel_mean", "cost_rel_ci95",
		"avg_degree",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("csv: %w", err)
	}
	for _, row := range r.Rows {
		rec := []string{
			row.Label,
			f(row.RDRel.Mean), f(row.RDRel.CI95),
			f(row.DelayRel.Mean), f(row.DelayRel.CI95),
			f(row.CostRel.Mean), f(row.CostRel.CI95),
			f(row.AvgDegree),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the scatter as CSV (global_rd, local_rd per point).
func (r *Fig7Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"global_rd", "local_rd"}); err != nil {
		return fmt.Errorf("csv: %w", err)
	}
	for _, p := range r.Points {
		if err := cw.Write([]string{f(p.Global), f(p.Local)}); err != nil {
			return fmt.Errorf("csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the ablation rows as CSV.
func (r *AblationResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"variant",
		"rd_rel_mean", "rd_rel_ci95",
		"delay_rel_mean", "delay_rel_ci95",
		"cost_rel_mean", "cost_rel_ci95",
		"shr_updates", "shr_computes", "query_msgs", "reshapes",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("csv: %w", err)
	}
	for _, row := range r.Rows {
		rec := []string{
			row.Name,
			f(row.RDRel.Mean), f(row.RDRel.CI95),
			f(row.DelayRel.Mean), f(row.DelayRel.CI95),
			f(row.CostRel.Mean), f(row.CostRel.CI95),
			f(row.SHRUpdates), f(row.SHRComputes), f(row.QueryMsgs), f(row.Reshapes),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// f renders a float compactly for CSV cells.
func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
