package experiment

import (
	"strings"
	"testing"
)

// renderable is any study result that renders to the human-readable report.
type renderable interface{ Render() string }

// renderStudies runs every study in this package at a small scale and
// concatenates the rendered reports. Any study error is fatal.
func renderStudies(t *testing.T, seed uint64) string {
	t.Helper()
	var b strings.Builder
	add := func(name string, r renderable, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b.WriteString(r.Render())
	}

	r7, err := RunFig7(seed)
	add("fig7", r7, err)
	r8, err := RunFig8(2, 2, seed)
	add("fig8", r8, err)
	ab, err := RunAblations(2, 1, seed)
	add("ablations", ab, err)
	ch, err := RunChurn(3, seed)
	add("churn", ch, err)
	la, err := RunLatency(3, seed)
	add("latency", la, err)
	hi, err := RunHierarchy(3, seed)
	add("hierarchy", hi, err)
	nl, err := RunNLevel(3, seed)
	add("nlevel", nl, err)
	pr, err := RunProtection(2, seed)
	add("protection", pr, err)
	return b.String()
}

// TestStudiesDeterministicAcrossWorkerCounts is the regression guard for the
// parallel runner: every study must render byte-identical output for the same
// seed whether trials run on one worker or eight. Trials derive their RNG
// streams from (seed, trial index) alone and results fold in trial order, so
// scheduling must never leak into the numbers.
func TestStudiesDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full study runs")
	}
	const seed = 97
	defer SetParallelism(0)

	SetParallelism(1)
	seq := renderStudies(t, seed)
	SetParallelism(8)
	par := renderStudies(t, seed)

	if seq == par {
		return
	}
	seqLines := strings.Split(seq, "\n")
	parLines := strings.Split(par, "\n")
	n := len(seqLines)
	if len(parLines) < n {
		n = len(parLines)
	}
	for i := 0; i < n; i++ {
		if seqLines[i] != parLines[i] {
			t.Fatalf("workers=1 and workers=8 diverge at line %d:\n  workers=1: %q\n  workers=8: %q",
				i+1, seqLines[i], parLines[i])
		}
	}
	t.Fatalf("workers=1 and workers=8 outputs differ in length: %d vs %d lines",
		len(seqLines), len(parLines))
}
