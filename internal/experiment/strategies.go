package experiment

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"smrp/internal/core"
	"smrp/internal/detour"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/metrics"
	"smrp/internal/mrc"
	"smrp/internal/runner"
	"smrp/internal/topology"
)

// StrategyArm is one recovery strategy's aggregate outcome across every
// schedule of the strategies study.
type StrategyArm struct {
	Name string

	// RD summarizes the per-member recovery distance (RD_R) over every
	// reconnection the strategy performed.
	RD metrics.Summary

	Recovered  int // members re-grafted after a failure event
	Parks      int // members degraded to the parked state
	Readmitted int // parked members automatically re-admitted

	// Disruption is the study's virtual-time-free disruption measure: the
	// number of member-events spent parked (after each schedule event, every
	// currently parked member counts one). Faster, more complete restoration
	// ⇒ fewer parked member-events.
	Disruption int

	// PrecomputeSettled and RecoverySettled split the settled-node work (the
	// repository's CI-stable unit of SPF effort) into the share paid before
	// failures (building backup configurations / detour tables) and the
	// share paid at recovery time (live searches). The baselines trade the
	// former for the latter; SMRP is all recovery-time by design.
	PrecomputeSettled int
	RecoverySettled   int

	// Fallbacks counts recoveries where the strategy's precomputed answer
	// was missing or invalidated and the scaffold's live search stood in
	// (always 0 for SMRP, which has no table to miss).
	Fallbacks int

	// StateBytes is the mean precomputed-state footprint per trial at the
	// schedule horizon, deterministic per-element accounting.
	StateBytes int64
}

// StrategiesResult aggregates the comparative restoration testbed: the same
// seeded chaos schedules played three-way — SMRP local detours vs MRC backup
// configurations vs Bhosle–Gonzalez precomputed detours — through the
// core.RecoveryStrategy seam, with the chaos invariant oracle checked after
// every event for every arm.
type StrategiesResult struct {
	Trials   int
	Events   int
	Failures int
	Repairs  int

	Arms []StrategyArm

	// Violations lists invariant-oracle failures across all arms (empty on a
	// healthy run).
	Violations []string
}

// Render prints the three-way comparison.
func (r *StrategiesResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Recovery-strategy testbed (%d seeded chaos schedules, three-way)\n", r.Trials)
	fmt.Fprintf(&b, "  schedule: events=%d failures=%d repairs=%d\n", r.Events, r.Failures, r.Repairs)
	fmt.Fprintf(&b, "  %-8s %9s %16s %7s %8s %9s %9s %14s %12s\n",
		"strategy", "recovered", "RD_R mean±ci95", "parked", "readmit", "disrupt", "fallback", "settled pre/rec", "state-bytes")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "  %-8s %9d %7.4f±%7.4f %7d %8d %9d %9d %7d/%6d %12d\n",
			a.Name, a.Recovered, a.RD.Mean, a.RD.CI95,
			a.Parks, a.Readmitted, a.Disruption, a.Fallbacks,
			a.PrecomputeSettled, a.RecoverySettled, a.StateBytes)
	}
	fmt.Fprintf(&b, "  invariant violations: %d\n", len(r.Violations))
	for i, v := range r.Violations {
		if i == 10 {
			fmt.Fprintf(&b, "    … %d more\n", len(r.Violations)-10)
			break
		}
		fmt.Fprintf(&b, "    %s\n", v)
	}
	return b.String()
}

// strategyArms defines the study's three arms. Factories return a fresh
// strategy per session — instances are session-bound and must not be shared.
var strategyArms = []struct {
	name string
	make func() core.RecoveryStrategy
}{
	{"smrp", core.NewSMRPStrategy},
	{"mrc", func() core.RecoveryStrategy { return mrc.New(0) }},
	{"detour", func() core.RecoveryStrategy { return detour.New() }},
}

// stratArmTrial is one arm's outcome on one schedule.
type stratArmTrial struct {
	rd                           []float64
	recovered, parks, readmitted int
	disruption                   int
	precompSettled, recovSettled int
	fallbacks                    int
	stateBytes                   int64
	violations                   []string
}

// stratTrial is one schedule's outcome across all arms.
type stratTrial struct {
	events, failures, repairs int
	arms                      []stratArmTrial
}

// preSettler is the optional accessor the baselines expose for their
// precompute-time settled-node work (SMRP precomputes nothing and does not
// implement it).
type preSettler interface{ PrecomputeSettled() int }

// RunStrategiesCtx executes trials seeded chaos schedules three-way. Each
// trial draws one random topology and failure schedule (the same generation
// as the chaos harness: 60-node Waxman, 12 members, overlapping link/node
// failures, SRLG bursts, partitions, repairs) and plays it against three
// core sessions — one per recovery strategy — sharing the topology and its
// SPF cache. The invariant oracle runs after every event for every arm, so
// a baseline that parks a reachable member or routes over a failed
// component fails loudly. Trials run on the parallel runner and fold in
// trial order: the result is bit-identical for any worker count.
func RunStrategiesCtx(ctx context.Context, trials int, seed uint64) (*StrategiesResult, error) {
	base := DefaultBase()
	base.N = 60
	base.NG = 12

	results, err := mapTrialsCtx(ctx, seed, trials, func(_ context.Context, t runner.Trial) (stratTrial, error) {
		rng := t.RNG
		g, err := topology.Waxman(topology.WaxmanConfig{
			N: base.N, Alpha: base.Alpha, Beta: base.Beta, EnsureConnected: true,
		}, rng)
		if err != nil {
			return stratTrial{}, err
		}
		g.EnableSPFCache()
		source := graph.NodeID(0)
		for n := 1; n < g.NumNodes(); n++ {
			if g.Degree(graph.NodeID(n)) > g.Degree(source) {
				source = graph.NodeID(n)
			}
		}
		var members []graph.NodeID
		for _, id := range rng.Sample(base.N, base.NG+1) {
			if graph.NodeID(id) != source && len(members) < base.NG {
				members = append(members, graph.NodeID(id))
			}
		}

		ccfg := failure.DefaultChaosConfig()
		sched, err := failure.RandomSchedule(g, source, members, ccfg, rng)
		if err != nil {
			return stratTrial{}, err
		}

		out := stratTrial{
			events:   len(sched.Events),
			failures: sched.NumFailures(),
			repairs:  sched.NumRepairs(),
			arms:     make([]stratArmTrial, len(strategyArms)),
		}
		for ai, armDef := range strategyArms {
			arm := &out.arms[ai]
			strat := armDef.make()
			cfg := base.SMRP
			cfg.Strategy = strat
			sess, err := core.NewSession(g, source, cfg)
			if err != nil {
				return stratTrial{}, fmt.Errorf("strategies %s: new session: %w", armDef.name, err)
			}
			_, joinErrs := sess.JoinBatch(members)
			for i, err := range joinErrs {
				if err != nil {
					return stratTrial{}, fmt.Errorf("strategies %s: join %d: %w", armDef.name, members[i], err)
				}
			}
			for k, ev := range sched.Events {
				if len(ev.Failures) > 0 {
					rep, err := sess.Recover(ev.Failures...)
					if err != nil {
						return stratTrial{}, fmt.Errorf("strategies %s: recover event %d: %w", armDef.name, k, err)
					}
					arm.recovered += len(rep.RecoveryDistance)
					arm.parks += len(rep.Unrecovered)
					arm.readmitted += len(rep.Readmitted)
					// Map iteration is unordered; fold RD ascending by member
					// so the sample (and its float summation) is deterministic.
					ids := make([]graph.NodeID, 0, len(rep.RecoveryDistance))
					for m := range rep.RecoveryDistance {
						ids = append(ids, m)
					}
					slices.Sort(ids)
					for _, m := range ids {
						arm.rd = append(arm.rd, rep.RecoveryDistance[m])
					}
				}
				if len(ev.Repairs) > 0 {
					rep, err := sess.Repair(ev.Repairs...)
					if err != nil {
						return stratTrial{}, fmt.Errorf("strategies %s: repair event %d: %w", armDef.name, k, err)
					}
					arm.readmitted += len(rep.Readmitted)
				}
				arm.disruption += len(sess.Parked())
				arm.violations = append(arm.violations,
					chaosInvariants(sess, members, fmt.Sprintf("seed %d %s event %d", t.Seed, armDef.name, k))...)
			}
			stats := sess.Stats()
			arm.recovSettled = stats.HealSettled
			arm.fallbacks = stats.StrategyFallbacks
			arm.stateBytes = strat.StateBytes()
			if ps, ok := strat.(preSettler); ok {
				arm.precompSettled = ps.PrecomputeSettled()
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	res := &StrategiesResult{Trials: trials}
	samples := make([]metrics.Sample, len(strategyArms))
	arms := make([]StrategyArm, len(strategyArms))
	for ai, armDef := range strategyArms {
		arms[ai].Name = armDef.name
	}
	for _, tr := range results {
		res.Events += tr.events
		res.Failures += tr.failures
		res.Repairs += tr.repairs
		for ai := range strategyArms {
			at := tr.arms[ai]
			arms[ai].Recovered += at.recovered
			arms[ai].Parks += at.parks
			arms[ai].Readmitted += at.readmitted
			arms[ai].Disruption += at.disruption
			arms[ai].PrecomputeSettled += at.precompSettled
			arms[ai].RecoverySettled += at.recovSettled
			arms[ai].Fallbacks += at.fallbacks
			arms[ai].StateBytes += at.stateBytes
			samples[ai].AddAll(at.rd...)
			res.Violations = append(res.Violations, at.violations...)
		}
	}
	for ai := range arms {
		if samples[ai].N() > 0 {
			s, err := samples[ai].Summarize()
			if err != nil {
				return nil, err
			}
			arms[ai].RD = s
		}
		if trials > 0 {
			arms[ai].StateBytes /= int64(trials)
		}
	}
	res.Arms = arms
	return res, nil
}

// RunStrategies is RunStrategiesCtx without cancellation.
func RunStrategies(trials int, seed uint64) (*StrategiesResult, error) {
	return RunStrategiesCtx(context.Background(), trials, seed)
}
