package experiment

import (
	"context"
	"fmt"
	"strings"

	"smrp/internal/core"
	"smrp/internal/metrics"
	"smrp/internal/runner"
)

// Fig7Point is one scatter point of Figure 7: a member's worst-case recovery
// distance via global detour (x) and via local detour (y).
type Fig7Point struct {
	Global float64
	Local  float64
}

// Fig7Result reproduces Figure 7 (§4.3.1): local vs. global detour over five
// random topologies with the default parameters.
type Fig7Result struct {
	Points []Fig7Point
	// MeanReduction is the average relative shortening of the recovery path
	// (the paper reports ≈33%).
	MeanReduction float64
	// BelowDiagonal is the fraction of points with Local < Global ("most
	// points are below the line y = x").
	BelowDiagonal float64
	Unrecoverable int
}

// RunFig7 executes the Figure 7 experiment: N=100, N_G=30, α=0.2,
// D_thresh=0.3, five random topologies, worst-case failure per member.
// Scenarios are evaluated on the parallel runner (see SetParallelism);
// per-scenario results fold in trial order, so the output is identical for
// any worker count.
func RunFig7(seed uint64) (*Fig7Result, error) {
	return RunFig7Ctx(context.Background(), seed)
}

// RunFig7Ctx is RunFig7 under a caller-supplied context: a cancelled ctx
// stops trial dispatch promptly and returns ctx.Err().
func RunFig7Ctx(ctx context.Context, seed uint64) (*Fig7Result, error) {
	base := DefaultBase()
	scenarios, err := GenScenarios(base, 5, 1, seed)
	if err != nil {
		return nil, err
	}
	results, err := evaluateAll(ctx, scenarios, base.SMRP, seed)
	if err != nil {
		return nil, err
	}
	out := &Fig7Result{}
	var rel metrics.Sample
	below := 0
	for _, res := range results {
		for _, o := range res.Members {
			if !o.Recoverable {
				out.Unrecoverable++
				continue
			}
			out.Points = append(out.Points, Fig7Point{Global: o.RDGlobalSPF, Local: o.RDLocalSMRP})
			if o.RDLocalSMRP < o.RDGlobalSPF {
				below++
			}
			rr, err := metrics.RelativeRD(o.RDGlobalSPF, o.RDLocalSMRP)
			if err != nil {
				return nil, err
			}
			rel.Add(rr)
		}
	}
	out.MeanReduction = rel.Mean()
	if len(out.Points) > 0 {
		out.BelowDiagonal = float64(below) / float64(len(out.Points))
	}
	return out, nil
}

// Render prints the scatter summary the way the paper's text reports it.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: local vs. global detour (N=100 NG=30 alpha=0.2 Dthresh=0.3)\n")
	fmt.Fprintf(&b, "  points=%d below-diagonal=%.1f%% mean-reduction=%.1f%% unrecoverable=%d\n",
		len(r.Points), 100*r.BelowDiagonal, 100*r.MeanReduction, r.Unrecoverable)
	fmt.Fprintf(&b, "  %-12s %-12s\n", "global-RD", "local-RD")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-12.4f %-12.4f\n", p.Global, p.Local)
	}
	return b.String()
}

// SweepRow is one x-axis point of Figures 8–10: the swept parameter value
// plus the three relative metrics with 95% confidence intervals.
type SweepRow struct {
	Label     string // swept parameter rendering, e.g. "0.3"
	X         float64
	RDRel     metrics.Summary
	DelayRel  metrics.Summary
	CostRel   metrics.Summary
	AvgDegree float64
}

// SweepResult is a full figure: one row per swept value.
type SweepResult struct {
	Title string
	XName string
	Rows  []SweepRow
}

// Render prints the figure as the table of series the paper plots.
func (r *SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "  %-10s %-22s %-22s %-22s %-8s\n",
		r.XName, "RD_rel (mean±ci95)", "Delay_rel (mean±ci95)", "Cost_rel (mean±ci95)", "avg-deg")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %8.4f ± %-11.4f %8.4f ± %-11.4f %8.4f ± %-11.4f %-8.2f\n",
			row.Label,
			row.RDRel.Mean, row.RDRel.CI95,
			row.DelayRel.Mean, row.DelayRel.CI95,
			row.CostRel.Mean, row.CostRel.CI95,
			row.AvgDegree)
	}
	return b.String()
}

// evaluateAll measures every scenario on the parallel runner and returns the
// results ordered by scenario index.
func evaluateAll(ctx context.Context, scenarios []Scenario, cfg core.Config, seed uint64) ([]*Result, error) {
	return mapTrialsCtx(ctx, seed, len(scenarios), func(_ context.Context, t runner.Trial) (*Result, error) {
		return Evaluate(scenarios[t.Index], cfg)
	})
}

// sweepPoint evaluates all scenarios for one swept configuration and
// produces a row. Scenario evaluation fans out across the worker pool;
// accumulation happens afterwards in scenario order, keeping the row
// bit-identical for any worker count.
func sweepPoint(ctx context.Context, label string, x float64, base Base, nTopo, nSets int, seed uint64) (SweepRow, error) {
	scenarios, err := GenScenarios(base, nTopo, nSets, seed)
	if err != nil {
		return SweepRow{}, err
	}
	results, err := evaluateAll(ctx, scenarios, base.SMRP, seed)
	if err != nil {
		return SweepRow{}, err
	}
	var agg Aggregate
	for _, res := range results {
		if err := agg.Accumulate(res); err != nil {
			return SweepRow{}, err
		}
	}
	rd, err := agg.RDRel.Summarize()
	if err != nil {
		return SweepRow{}, fmt.Errorf("experiment: %s: %w", label, err)
	}
	dl, err := agg.DelayRel.Summarize()
	if err != nil {
		return SweepRow{}, err
	}
	ct, err := agg.CostRel.Summarize()
	if err != nil {
		return SweepRow{}, err
	}
	return SweepRow{
		Label:     label,
		X:         x,
		RDRel:     rd,
		DelayRel:  dl,
		CostRel:   ct,
		AvgDegree: agg.AvgDegree.Mean(),
	}, nil
}

// Fig8DThreshValues are the four D_thresh values swept in Figure 8.
var Fig8DThreshValues = []float64{0.1, 0.2, 0.3, 0.4}

// RunFig8 reproduces Figure 8 (§4.3.2): the effect of D_thresh with
// N=100, N_G=30, α=0.2, over 10 topologies × 10 member sets, with 95% CIs.
// The same 100 scenarios are reused across the sweep (paired comparison).
func RunFig8(nTopo, nSets int, seed uint64) (*SweepResult, error) {
	return RunFig8Ctx(context.Background(), nTopo, nSets, seed)
}

// RunFig8Ctx is RunFig8 under a caller-supplied context.
func RunFig8Ctx(ctx context.Context, nTopo, nSets int, seed uint64) (*SweepResult, error) {
	out := &SweepResult{
		Title: fmt.Sprintf("Figure 8: effect of D_thresh (N=100 NG=30 alpha=0.2, %d scenarios)", nTopo*nSets),
		XName: "D_thresh",
	}
	for _, dt := range Fig8DThreshValues {
		base := DefaultBase()
		base.SMRP.DThresh = dt
		row, err := sweepPoint(ctx, fmt.Sprintf("%.1f", dt), dt, base, nTopo, nSets, seed)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Fig9AlphaValues are the four α values swept in Figure 9.
var Fig9AlphaValues = []float64{0.15, 0.2, 0.25, 0.3}

// RunFig9 reproduces Figure 9 (§4.3.3): the effect of the average node
// degree (tuned through α) with N=100, N_G=30, D_thresh=0.3. Each row also
// reports the measured average node degree, as the figure annotates.
func RunFig9(nTopo, nSets int, seed uint64) (*SweepResult, error) {
	return RunFig9Ctx(context.Background(), nTopo, nSets, seed)
}

// RunFig9Ctx is RunFig9 under a caller-supplied context.
func RunFig9Ctx(ctx context.Context, nTopo, nSets int, seed uint64) (*SweepResult, error) {
	out := &SweepResult{
		Title: fmt.Sprintf("Figure 9: effect of alpha / node degree (N=100 NG=30 Dthresh=0.3, %d scenarios)", nTopo*nSets),
		XName: "alpha",
	}
	for _, a := range Fig9AlphaValues {
		base := DefaultBase()
		base.Alpha = a
		row, err := sweepPoint(ctx, fmt.Sprintf("%.2f", a), a, base, nTopo, nSets, seed)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Fig10GroupSizes are the four group sizes swept in Figure 10.
var Fig10GroupSizes = []int{20, 30, 40, 50}

// RunFig10 reproduces Figure 10 (§4.3.4): the effect of the group size N_G
// with N=100, α=0.2, D_thresh=0.3.
func RunFig10(nTopo, nSets int, seed uint64) (*SweepResult, error) {
	return RunFig10Ctx(context.Background(), nTopo, nSets, seed)
}

// RunFig10Ctx is RunFig10 under a caller-supplied context.
func RunFig10Ctx(ctx context.Context, nTopo, nSets int, seed uint64) (*SweepResult, error) {
	out := &SweepResult{
		Title: fmt.Sprintf("Figure 10: effect of group size (N=100 alpha=0.2 Dthresh=0.3, %d scenarios)", nTopo*nSets),
		XName: "N_G",
	}
	for _, ng := range Fig10GroupSizes {
		base := DefaultBase()
		base.NG = ng
		row, err := sweepPoint(ctx, fmt.Sprintf("%d", ng), float64(ng), base, nTopo, nSets, seed)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// RunDegree10 reproduces the §4.3.3 in-text claim: even at an average node
// degree around 10, SMRP still shortens recovery paths (the paper reports
// ≈12% at ≈5% penalty). α is raised until the measured degree approaches 10.
func RunDegree10(nTopo, nSets int, seed uint64) (*SweepResult, error) {
	return RunDegree10Ctx(context.Background(), nTopo, nSets, seed)
}

// RunDegree10Ctx is RunDegree10 under a caller-supplied context.
func RunDegree10Ctx(ctx context.Context, nTopo, nSets int, seed uint64) (*SweepResult, error) {
	out := &SweepResult{
		Title: fmt.Sprintf("§4.3.3 in-text: high-connectivity study (N=100 NG=30 Dthresh=0.3, %d scenarios)", nTopo*nSets),
		XName: "alpha",
	}
	for _, a := range []float64{0.5, 0.65} {
		base := DefaultBase()
		base.Alpha = a
		row, err := sweepPoint(ctx, fmt.Sprintf("%.2f", a), a, base, nTopo, nSets, seed)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
