package experiment

import (
	"context"
	"fmt"
	"strings"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/metrics"
	"smrp/internal/protect"
	"smrp/internal/runner"
	"smrp/internal/spfbase"
	"smrp/internal/topology"
)

// ProtectionResult compares SMRP's reactive local detours against the
// preplanned schemes from the paper's related work (§2): Médard et al.
// redundant trees and Han & Shin dependable (primary/backup) connections.
// Proactive schemes recover instantly (recovery distance 0) but pay a
// standing resource cost; the comparison quantifies that trade on the same
// topologies and worst-case failures.
type ProtectionResult struct {
	Runs int
	// Per-scheme worst-case recovery distance (0 when preplanned).
	RDSMRP metrics.Summary
	RDSPF  metrics.Summary
	// Coverage: fraction of worst-case failures each preplanned scheme
	// survives without any reactive recovery at all.
	RedundantCoverage  float64
	DependableCoverage float64
	// Standing resource usage, relative to the single SPF tree.
	CostSMRP       metrics.Summary
	CostRedundant  metrics.Summary
	CostDependable metrics.Summary
	// Per-member delivery-delay ratio (Cho & Breen's cost/delay-ratio
	// metric): each scheme's source→member delivery delay over the unicast
	// shortest-path delay. SPF is 1 by construction; SMRP pays up to
	// 1+DThresh for sharing reduction; the preplanned schemes pay whatever
	// their protected structures impose.
	DelaySMRP       metrics.Summary
	DelayRedundant  metrics.Summary
	DelayDependable metrics.Summary
}

// Render prints the comparison.
func (r *ProtectionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reactive vs preplanned protection (biconnected topologies, %d runs)\n", r.Runs)
	fmt.Fprintf(&b, "  %-28s %-22s %-14s %-16s %-12s\n", "scheme", "worst-case RD", "coverage", "cost / SPF", "delay / SPF")
	fmt.Fprintf(&b, "  %-28s %8.4f ± %-11.4f %-14s %8.3f ± %-6.3f %8.3f ± %.3f\n", "SPF + global detour",
		r.RDSPF.Mean, r.RDSPF.CI95, "reactive", 1.0, 0.0, 1.0, 0.0)
	fmt.Fprintf(&b, "  %-28s %8.4f ± %-11.4f %-14s %8.3f ± %-6.3f %8.3f ± %.3f\n", "SMRP + local detour",
		r.RDSMRP.Mean, r.RDSMRP.CI95, "reactive", r.CostSMRP.Mean, r.CostSMRP.CI95,
		r.DelaySMRP.Mean, r.DelaySMRP.CI95)
	fmt.Fprintf(&b, "  %-28s %8.4f   %-11s %13.1f%% %8.3f ± %-6.3f %8.3f ± %.3f\n", "redundant trees (Médard)",
		0.0, "", 100*r.RedundantCoverage, r.CostRedundant.Mean, r.CostRedundant.CI95,
		r.DelayRedundant.Mean, r.DelayRedundant.CI95)
	fmt.Fprintf(&b, "  %-28s %8.4f   %-11s %13.1f%% %8.3f ± %-6.3f %8.3f ± %.3f\n", "dependable conns (Han-Shin)",
		0.0, "", 100*r.DependableCoverage, r.CostDependable.Mean, r.CostDependable.CI95,
		r.DelayDependable.Mean, r.DelayDependable.CI95)
	return b.String()
}

// protRun is one trial's contribution (ok=false when no biconnected sample
// was drawn). Per-member observations are carried as slices so the fold can
// reproduce the sequential sample order exactly.
type protRun struct {
	ok                         bool
	hasCost                    bool
	costSMRP, costRed, costDep float64
	rdSPF, rdSMRP              []float64
	dlySMRP, dlyRed, dlyDep    []float64
	redOK, redTotal            int
	depOK, depTotal            int
}

// RunProtection executes the comparison on biconnected Waxman samples. Runs
// execute on the parallel runner and fold in run order (bit-identical for any
// worker count).
func RunProtection(runs int, seed uint64) (*ProtectionResult, error) {
	return RunProtectionCtx(context.Background(), runs, seed)
}

// RunProtectionCtx is RunProtection under a caller-supplied context.
func RunProtectionCtx(ctx context.Context, runs int, seed uint64) (*ProtectionResult, error) {
	out := &ProtectionResult{}

	runResults, err := mapTrialsCtx(ctx, seed, runs, func(_ context.Context, t runner.Trial) (*protRun, error) {
		r := t.Index
		pr := &protRun{}
		rng := topology.NewRNG(seed + uint64(r)*15485863)
		g := sampleBiconnected(rng, 60)
		if g == nil {
			return pr, nil
		}
		// Four schemes plus worst-case probes all re-query shortest paths on
		// this run's private topology; memoize them.
		g.EnableSPFCache()
		source := graph.NodeID(0)
		var members []graph.NodeID
		for _, id := range rng.Sample(g.NumNodes(), 13) {
			if graph.NodeID(id) != source && len(members) < 12 {
				members = append(members, graph.NodeID(id))
			}
		}

		spf, err := spfbase.NewSession(g, source)
		if err != nil {
			return nil, err
		}
		smrp, err := core.NewSession(g, source, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		rt, err := protect.BuildRedundantTrees(g, source)
		if err != nil {
			return nil, err
		}
		dep, err := protect.NewDependableSession(g, source)
		if err != nil {
			return nil, err
		}
		conns := make(map[graph.NodeID]*protect.DependableConnection, len(members))
		for _, m := range members {
			if err := spf.Join(m); err != nil {
				return nil, err
			}
			if _, err := smrp.Join(m); err != nil {
				return nil, err
			}
			if err := rt.Subscribe(m); err != nil {
				return nil, err
			}
			c, err := dep.Join(m)
			if err != nil {
				return nil, err
			}
			conns[m] = c
		}

		// Cho & Breen delay ratio: each scheme's delivery delay to m over the
		// unicast shortest-path delay (the SPF tree's, by construction).
		// Redundant trees deliver on both trees, so the member hears the
		// earlier copy; a dependable connection delivers on its primary.
		for _, m := range members {
			base, err := spf.Tree().DelayTo(m)
			if err != nil || base <= 0 {
				continue
			}
			if d, err := smrp.Tree().DelayTo(m); err == nil {
				pr.dlySMRP = append(pr.dlySMRP, d/base)
			}
			dRed, errR := rt.Red.DelayTo(m)
			dBlue, errB := rt.Blue.DelayTo(m)
			switch {
			case errR == nil && errB == nil:
				pr.dlyRed = append(pr.dlyRed, min(dRed, dBlue)/base)
			case errR == nil:
				pr.dlyRed = append(pr.dlyRed, dRed/base)
			case errB == nil:
				pr.dlyRed = append(pr.dlyRed, dBlue/base)
			}
			if w, err := conns[m].Primary.Weight(g); err == nil {
				pr.dlyDep = append(pr.dlyDep, w/base)
			}
		}

		spfCost, err := spf.Tree().Cost()
		if err != nil {
			return nil, err
		}
		smrpCost, err := smrp.Tree().Cost()
		if err != nil {
			return nil, err
		}
		redCost, err := rt.PrunedCost()
		if err != nil {
			return nil, err
		}
		depCost, err := dep.ReservedCost()
		if err != nil {
			return nil, err
		}
		if spfCost > 0 {
			pr.hasCost = true
			pr.costSMRP = smrpCost / spfCost
			pr.costRed = redCost / spfCost
			pr.costDep = depCost / spfCost
		}

		for _, m := range members {
			fSPF, err := failure.WorstCaseFor(spf.Tree(), m)
			if err != nil {
				return nil, err
			}
			fSMRP, err := failure.WorstCaseFor(smrp.Tree(), m)
			if err != nil {
				return nil, err
			}
			if _, rd, err := failure.GlobalDetour(spf.Tree(), fSPF.Mask(), m); err == nil {
				pr.rdSPF = append(pr.rdSPF, rd)
			}
			if _, rd, err := failure.LocalDetour(smrp.Tree(), fSMRP.Mask(), m); err == nil {
				pr.rdSMRP = append(pr.rdSMRP, rd)
			}
			// Preplanned schemes face the SPF-tree worst case (they have no
			// tree of their own shape to bias the pick).
			pr.redTotal++
			reach := rt.Survives(fSPF.Mask(), m)
			if reach.ViaRed || reach.ViaBlue {
				pr.redOK++
			}
			pr.depTotal++
			if o, err := dep.Failover(fSPF.Mask(), m); err == nil && o != protect.BothChannelsDown {
				pr.depOK++
			}
		}
		pr.ok = true
		return pr, nil
	})
	if err != nil {
		return nil, err
	}

	var rdSMRP, rdSPF, costSMRP, costRed, costDep metrics.Sample
	var dlySMRP, dlyRed, dlyDep metrics.Sample
	var redOK, redTotal, depOK, depTotal int
	for _, pr := range runResults {
		if !pr.ok {
			continue
		}
		if pr.hasCost {
			costSMRP.Add(pr.costSMRP)
			costRed.Add(pr.costRed)
			costDep.Add(pr.costDep)
		}
		for _, rd := range pr.rdSPF {
			rdSPF.Add(rd)
		}
		for _, rd := range pr.rdSMRP {
			rdSMRP.Add(rd)
		}
		dlySMRP.AddAll(pr.dlySMRP...)
		dlyRed.AddAll(pr.dlyRed...)
		dlyDep.AddAll(pr.dlyDep...)
		redOK += pr.redOK
		redTotal += pr.redTotal
		depOK += pr.depOK
		depTotal += pr.depTotal
		out.Runs++
	}
	if out.Runs == 0 {
		return nil, fmt.Errorf("experiment: no biconnected samples drawn")
	}
	if out.RDSMRP, err = rdSMRP.Summarize(); err != nil {
		return nil, err
	}
	if out.RDSPF, err = rdSPF.Summarize(); err != nil {
		return nil, err
	}
	if out.CostSMRP, err = costSMRP.Summarize(); err != nil {
		return nil, err
	}
	if out.CostRedundant, err = costRed.Summarize(); err != nil {
		return nil, err
	}
	if out.CostDependable, err = costDep.Summarize(); err != nil {
		return nil, err
	}
	if out.DelaySMRP, err = dlySMRP.Summarize(); err != nil {
		return nil, err
	}
	if out.DelayRedundant, err = dlyRed.Summarize(); err != nil {
		return nil, err
	}
	if out.DelayDependable, err = dlyDep.Summarize(); err != nil {
		return nil, err
	}
	if redTotal > 0 {
		out.RedundantCoverage = float64(redOK) / float64(redTotal)
	}
	if depTotal > 0 {
		out.DependableCoverage = float64(depOK) / float64(depTotal)
	}
	return out, nil
}

// sampleBiconnected draws Waxman graphs until one is biconnected (denser
// parameters than the headline experiments; preplanned protection requires
// redundancy to exist at all).
func sampleBiconnected(rng *topology.RNG, n int) *graph.Graph {
	for tries := 0; tries < 60; tries++ {
		g, err := topology.Waxman(topology.WaxmanConfig{
			N: n, Alpha: 0.6, Beta: 0.4, EnsureConnected: true,
		}, rng)
		if err != nil {
			return nil
		}
		if g.Biconnected(nil) {
			return g
		}
	}
	return nil
}
