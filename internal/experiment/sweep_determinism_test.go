package experiment

import "testing"

// TestSweepEnumeratorDeterministicSeed2005 pins the evaluation seed (2005)
// across worker counts for the studies that lean hardest on the
// absorbing-sweep candidate enumerator (fig8 joins, churn join/leave/reshape
// cycles). It complements TestStudiesDeterministicAcrossWorkerCounts: that
// test covers every study at seed 97, this one guards the seed the reported
// numbers are generated with, so an enumerator change that reorders
// candidates cannot slip into the published tables unnoticed.
func TestSweepEnumeratorDeterministicSeed2005(t *testing.T) {
	if testing.Short() {
		t.Skip("full study runs")
	}
	const seed = 2005
	defer SetParallelism(0)

	render := func() string {
		t.Helper()
		f8, err := RunFig8(2, 2, seed)
		if err != nil {
			t.Fatalf("fig8: %v", err)
		}
		ch, err := RunChurn(2, seed)
		if err != nil {
			t.Fatalf("churn: %v", err)
		}
		return f8.Render() + ch.Render()
	}

	SetParallelism(1)
	seq := render()
	SetParallelism(8)
	par := render()
	if seq != par {
		t.Fatal("seed-2005 fig8/churn output differs between workers=1 and workers=8")
	}
}
