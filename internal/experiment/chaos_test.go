package experiment

import (
	"context"
	"testing"

	"smrp/internal/graph"
)

// TestChaosAcceptance is the PR's acceptance gate: 200 seeded multi-failure
// schedules must produce zero invariant violations, and the aggregate must be
// byte-identical between 1 worker and 8 workers.
func TestChaosAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos acceptance is a long test")
	}
	const trials, seed = 200, 2005

	prev := Parallelism()
	defer SetParallelism(prev)

	SetParallelism(1)
	seq, err := RunChaos(trials, seed)
	if err != nil {
		t.Fatalf("RunChaos(workers=1): %v", err)
	}
	SetParallelism(8)
	par, err := RunChaos(trials, seed)
	if err != nil {
		t.Fatalf("RunChaos(workers=8): %v", err)
	}

	if len(seq.Violations) > 0 {
		t.Errorf("invariant violations with 1 worker: %d", len(seq.Violations))
		for i, v := range seq.Violations {
			if i == 10 {
				t.Errorf("… %d more", len(seq.Violations)-10)
				break
			}
			t.Error(v)
		}
	}
	if a, b := seq.Render(), par.Render(); a != b {
		t.Errorf("chaos output differs between 1 and 8 workers:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", a, b)
	}

	// Sanity: the schedules actually exercised the multi-failure machinery.
	if seq.Failures == 0 || seq.Repairs == 0 {
		t.Errorf("degenerate schedule mix: failures=%d repairs=%d", seq.Failures, seq.Repairs)
	}
	if seq.Parks == 0 || seq.Readmissions == 0 {
		t.Errorf("degraded-state machinery never exercised: parks=%d readmissions=%d", seq.Parks, seq.Readmissions)
	}
	if seq.Restorations == 0 {
		t.Errorf("protocol never restored a member: restorations=%d", seq.Restorations)
	}
}

// TestChaosCancellation verifies that a cancelled context aborts the sweep
// with ctx.Err() instead of running all trials.
func TestChaosCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunChaosCtx(ctx, 50, 2005); err != context.Canceled {
		t.Fatalf("RunChaosCtx(cancelled) error = %v, want context.Canceled", err)
	}
}

// TestChaosSPFDeltaReduction quantifies the incremental-SPF win on the chaos
// workload, where every trial replays long failure/repair sequences whose
// masks evolve by one or two elements at a time — the delta-repair sweet
// spot. It runs the same 20 seeded schedules with the delta path disabled
// (every cache miss is a full sweep) and enabled, and requires (a) identical
// rendered results — the optimization must be invisible — and (b) at least a
// 50% reduction in nodes settled, the PR's acceptance threshold. Counters are
// process-global, so the run is pinned to one worker and the test must not
// be marked parallel.
func TestChaosSPFDeltaReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos delta-reduction is a long test")
	}
	const trials, seed = 20, 2005

	prevWorkers := Parallelism()
	defer SetParallelism(prevWorkers)
	SetParallelism(1)
	defer graph.SetSPFDelta(true)

	graph.SetSPFDelta(false)
	before := graph.SPFCounters()
	base, err := RunChaos(trials, seed)
	if err != nil {
		t.Fatalf("RunChaos(delta off): %v", err)
	}
	baseStats := graph.SPFCounters().Sub(before)

	graph.SetSPFDelta(true)
	before = graph.SPFCounters()
	fast, err := RunChaos(trials, seed)
	if err != nil {
		t.Fatalf("RunChaos(delta on): %v", err)
	}
	fastStats := graph.SPFCounters().Sub(before)

	if a, b := base.Render(), fast.Render(); a != b {
		t.Errorf("chaos output differs with delta repair enabled:\n--- delta off ---\n%s--- delta on ---\n%s", a, b)
	}
	if baseStats.DeltaRuns != 0 {
		t.Errorf("delta disabled but %d delta runs recorded", baseStats.DeltaRuns)
	}
	if fastStats.DeltaRuns == 0 {
		t.Error("delta enabled but no delta repairs ran")
	}
	if baseStats.NodesSettled == 0 {
		t.Fatal("baseline settled no nodes — counter wiring broken")
	}
	reduction := 1 - float64(fastStats.NodesSettled)/float64(baseStats.NodesSettled)
	t.Logf("nodes settled: full-recompute=%d delta=%d (%.1f%% reduction; full=%d→%d delta-runs=%d)",
		baseStats.NodesSettled, fastStats.NodesSettled, 100*reduction,
		baseStats.FullRuns, fastStats.FullRuns, fastStats.DeltaRuns)
	if reduction < 0.50 {
		t.Errorf("delta repair reduced nodes settled by only %.1f%%, want >= 50%%", 100*reduction)
	}
}
