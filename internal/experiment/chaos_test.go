package experiment

import (
	"context"
	"testing"
)

// TestChaosAcceptance is the PR's acceptance gate: 200 seeded multi-failure
// schedules must produce zero invariant violations, and the aggregate must be
// byte-identical between 1 worker and 8 workers.
func TestChaosAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos acceptance is a long test")
	}
	const trials, seed = 200, 2005

	prev := Parallelism()
	defer SetParallelism(prev)

	SetParallelism(1)
	seq, err := RunChaos(trials, seed)
	if err != nil {
		t.Fatalf("RunChaos(workers=1): %v", err)
	}
	SetParallelism(8)
	par, err := RunChaos(trials, seed)
	if err != nil {
		t.Fatalf("RunChaos(workers=8): %v", err)
	}

	if len(seq.Violations) > 0 {
		t.Errorf("invariant violations with 1 worker: %d", len(seq.Violations))
		for i, v := range seq.Violations {
			if i == 10 {
				t.Errorf("… %d more", len(seq.Violations)-10)
				break
			}
			t.Error(v)
		}
	}
	if a, b := seq.Render(), par.Render(); a != b {
		t.Errorf("chaos output differs between 1 and 8 workers:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", a, b)
	}

	// Sanity: the schedules actually exercised the multi-failure machinery.
	if seq.Failures == 0 || seq.Repairs == 0 {
		t.Errorf("degenerate schedule mix: failures=%d repairs=%d", seq.Failures, seq.Repairs)
	}
	if seq.Parks == 0 || seq.Readmissions == 0 {
		t.Errorf("degraded-state machinery never exercised: parks=%d readmissions=%d", seq.Parks, seq.Readmissions)
	}
	if seq.Restorations == 0 {
		t.Errorf("protocol never restored a member: restorations=%d", seq.Restorations)
	}
}

// TestChaosCancellation verifies that a cancelled context aborts the sweep
// with ctx.Err() instead of running all trials.
func TestChaosCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunChaosCtx(ctx, 50, 2005); err != context.Canceled {
		t.Fatalf("RunChaosCtx(cancelled) error = %v, want context.Canceled", err)
	}
}
