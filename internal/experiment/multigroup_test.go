package experiment

import (
	"strings"
	"testing"
)

// Multigroup smoke shape: small enough for CI seconds, large enough that the
// Zipf head and tail both exist and the dense twin's footprint visibly
// dwarfs the sparse fleet mean.
const (
	mgSmokeGroups = 200
	mgSmokeMax    = 32
	mgSmokeNodes  = 5000
)

// TestMultigroupZipfProfile pins the popularity profile: harmonic decay from
// the configured maximum, floored at the minimum group size, monotone
// nonincreasing in rank.
func TestMultigroupZipfProfile(t *testing.T) {
	if got := multigroupSize(0, 64); got != 64 {
		t.Errorf("rank-0 size = %d, want 64", got)
	}
	if got := multigroupSize(1, 64); got != 32 {
		t.Errorf("rank-1 size = %d, want 32", got)
	}
	prev := multigroupSize(0, 64)
	for rank := 1; rank < 500; rank++ {
		s := multigroupSize(rank, 64)
		if s > prev {
			t.Fatalf("size grew with rank: %d at rank %d after %d", s, rank, prev)
		}
		if s < multigroupMinMembers {
			t.Fatalf("size %d below floor at rank %d", s, rank)
		}
		prev = s
	}
	if prev != multigroupMinMembers {
		t.Errorf("tail size = %d, want floor %d", prev, multigroupMinMembers)
	}
}

// TestMultigroupStandingBytesGate is the multigroup smoke gate, stated in
// deterministic counters and exact byte accounting (never wall-clock):
//   - zero integrity violations — which includes the dense-twin probe, i.e.
//     the rank-0 group's full schedule produced identical work counters on
//     both storage backends;
//   - every group drove its full branch-cut schedule and settled real work;
//   - the per-group standing-bytes ceiling: the mean sparse group costs at
//     most a tenth of what one dense session costs on the same topology.
func TestMultigroupStandingBytesGate(t *testing.T) {
	res, err := RunMultigroup(mgSmokeGroups, mgSmokeMax, mgSmokeNodes, 2005)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("%d integrity violations, first: %s", len(res.Violations), res.Violations[0])
	}
	wantMembers := 0
	for rank := 0; rank < mgSmokeGroups; rank++ {
		wantMembers += multigroupSize(rank, mgSmokeMax)
	}
	if res.Members != wantMembers {
		t.Errorf("admitted %d receivers, Zipf profile says %d", res.Members, wantMembers)
	}
	if res.Events != multigroupEvents*mgSmokeGroups {
		t.Errorf("drove %d events, want %d", res.Events, multigroupEvents*mgSmokeGroups)
	}
	if res.JoinSettled == 0 || res.RecoverSettled == 0 {
		t.Fatalf("no settled work recorded: join=%d recover=%d", res.JoinSettled, res.RecoverSettled)
	}
	if res.DenseTwinBytes == 0 || res.Rank0Bytes == 0 {
		t.Fatalf("twin accounting missing: dense=%d rank0=%d", res.DenseTwinBytes, res.Rank0Bytes)
	}
	t.Logf("standing bytes: mean=%d p50=%d max=%d vs dense twin %d (mean is %.1f%% of dense)",
		res.BytesMean(), res.BytesP50, res.BytesMax, res.DenseTwinBytes,
		100*float64(res.BytesMean())/float64(res.DenseTwinBytes))
	// The ceiling: a fleet of sparse groups averages well under a tenth of
	// one dense session (observed ~3%; 10% leaves room for schedule-shape
	// variance without weakening the claim).
	if res.BytesMean()*10 > res.DenseTwinBytes {
		t.Errorf("mean standing bytes %d exceed 10%% of a dense session's %d",
			res.BytesMean(), res.DenseTwinBytes)
	}
	// Even the most popular group undercuts its dense twin.
	if res.Rank0Bytes >= res.DenseTwinBytes {
		t.Errorf("rank-0 sparse bytes %d not below dense twin %d", res.Rank0Bytes, res.DenseTwinBytes)
	}
}

// TestMultigroupDeterministicAcrossWorkerCounts gates the study's
// determinism contract: the rendered report must be byte-identical on one
// worker and four, shared topology and shared SPF cache notwithstanding.
func TestMultigroupDeterministicAcrossWorkerCounts(t *testing.T) {
	defer SetParallelism(0)
	const (
		groups = 60
		maxM   = 16
		nodes  = 2000
		seed   = 2005
	)
	SetParallelism(1)
	r1, err := RunMultigroup(groups, maxM, nodes, seed)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	r4, err := RunMultigroup(groups, maxM, nodes, seed)
	if err != nil {
		t.Fatal(err)
	}
	seq, par := r1.Render(), r4.Render()
	if seq != par {
		seqLines, parLines := strings.Split(seq, "\n"), strings.Split(par, "\n")
		for i := 0; i < min(len(seqLines), len(parLines)); i++ {
			if seqLines[i] != parLines[i] {
				t.Fatalf("workers=1 and workers=4 diverge at line %d:\n  w1: %q\n  w4: %q",
					i+1, seqLines[i], parLines[i])
			}
		}
		t.Fatalf("workers=1 and workers=4 outputs differ in length")
	}
}
