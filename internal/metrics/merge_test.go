package metrics

import (
	"math"
	"testing"
)

func sampleOf(vs ...float64) *Sample {
	s := &Sample{}
	s.AddAll(vs...)
	return s
}

// TestSampleMergeAssociativity: (a⊕b)⊕c and a⊕(b⊕c) must agree exactly —
// concatenation is exactly associative, which is what lets runner.Reduce
// reproduce sequential accumulation bit-for-bit.
func TestSampleMergeAssociativity(t *testing.T) {
	mk := func() (*Sample, *Sample, *Sample) {
		return sampleOf(1, 2, 3), sampleOf(4.5, -1), sampleOf(0.25, 9, 7, 11)
	}

	a1, b1, c1 := mk()
	left := &Sample{}
	left.Merge(a1)
	left.Merge(b1)
	left.Merge(c1) // (a ⊕ b) ⊕ c

	a2, b2, c2 := mk()
	bc := &Sample{}
	bc.Merge(b2)
	bc.Merge(c2)
	right := &Sample{}
	right.Merge(a2)
	right.Merge(bc) // a ⊕ (b ⊕ c)

	lv, rv := left.Values(), right.Values()
	if len(lv) != 9 || len(rv) != 9 {
		t.Fatalf("merged lengths = %d, %d, want 9", len(lv), len(rv))
	}
	for i := range lv {
		if lv[i] != rv[i] {
			t.Fatalf("position %d: %v != %v", i, lv[i], rv[i])
		}
	}
}

// TestSampleMergeMatchesSequential: merging per-worker samples in block
// order equals streaming every value into one sample.
func TestSampleMergeMatchesSequential(t *testing.T) {
	var seq Sample
	blocks := [][]float64{{1, 2, 3}, {4, 5}, {6, 7, 8, 9}}
	for _, b := range blocks {
		seq.AddAll(b...)
	}
	var merged Sample
	for _, b := range blocks {
		merged.Merge(sampleOf(b...))
	}
	ws, err := seq.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	ms, err := merged.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if ws != ms {
		t.Errorf("summaries differ: %+v vs %+v", ws, ms)
	}
	if merged.Merge(nil); merged.N() != 9 {
		t.Error("nil merge must be a no-op")
	}
}

// TestSummaryMergeMatchesPooled: merging summaries must agree with
// summarizing the pooled raw sample.
func TestSummaryMergeMatchesPooled(t *testing.T) {
	a := sampleOf(1, 2, 3, 4)
	b := sampleOf(10, 20, 30)
	sa, _ := a.Summarize()
	sb, _ := b.Summarize()

	pooled := sampleOf(1, 2, 3, 4, 10, 20, 30)
	want, _ := pooled.Summarize()
	got := sa.Merge(sb)

	const tol = 1e-12
	if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
		t.Errorf("merged = %+v, want %+v", got, want)
	}
	for _, c := range []struct {
		name     string
		got, www float64
	}{
		{"mean", got.Mean, want.Mean},
		{"std", got.Std, want.Std},
		{"ci95", got.CI95, want.CI95},
	} {
		if math.Abs(c.got-c.www) > tol {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.www)
		}
	}
}

// TestSummaryMergeAssociativity: associative up to round-off; identity on
// empty summaries.
func TestSummaryMergeAssociativity(t *testing.T) {
	sa, _ := sampleOf(0.5, 1.5, 2.25).Summarize()
	sb, _ := sampleOf(-3, 4).Summarize()
	sc, _ := sampleOf(7, 8, 9, 10, 11).Summarize()

	left := sa.Merge(sb).Merge(sc)
	right := sa.Merge(sb.Merge(sc))
	const tol = 1e-9
	if left.N != right.N ||
		math.Abs(left.Mean-right.Mean) > tol ||
		math.Abs(left.Std-right.Std) > tol ||
		math.Abs(left.CI95-right.CI95) > tol ||
		left.Min != right.Min || left.Max != right.Max {
		t.Errorf("associativity violated:\n (a⊕b)⊕c = %+v\n a⊕(b⊕c) = %+v", left, right)
	}

	var empty Summary
	if got := empty.Merge(sa); got != sa {
		t.Errorf("empty⊕a = %+v, want %+v", got, sa)
	}
	if got := sa.Merge(empty); got != sa {
		t.Errorf("a⊕empty = %+v, want %+v", got, sa)
	}
}

// TestSummaryMergeSingletons: merging single-observation summaries must
// still produce a usable pooled variance.
func TestSummaryMergeSingletons(t *testing.T) {
	s1, _ := sampleOf(2).Summarize()
	s2, _ := sampleOf(4).Summarize()
	got := s1.Merge(s2)
	want, _ := sampleOf(2, 4).Summarize()
	if got.N != 2 || math.Abs(got.Mean-3) > 1e-15 || math.Abs(got.Std-want.Std) > 1e-12 {
		t.Errorf("singleton merge = %+v, want %+v", got, want)
	}
}

// TestHistogramMerge: same-shape histograms add counts; shape mismatches and
// clamping are handled.
func TestHistogramMerge(t *testing.T) {
	h1, err := NewFixedHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := NewFixedHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1, 3, 5} {
		h1.Observe(v)
	}
	for _, v := range []float64{5, 9, 42, -1} { // 42 clamps to last bin, -1 to first
		h2.Observe(v)
	}
	if err := h1.Merge(h2); err != nil {
		t.Fatal(err)
	}
	wantCounts := []int{2, 1, 2, 0, 2}
	for i, w := range wantCounts {
		if h1.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, h1.Counts[i], w, h1.Counts)
		}
	}

	bad, _ := NewFixedHistogram(0, 10, 4)
	if err := h1.Merge(bad); err == nil {
		t.Error("shape mismatch must error")
	}
	if err := h1.Merge(nil); err != nil {
		t.Errorf("nil merge errored: %v", err)
	}

	if _, err := NewFixedHistogram(3, 3, 4); err == nil {
		t.Error("empty range must error")
	}
	if _, err := NewFixedHistogram(0, 1, 0); err == nil {
		t.Error("zero bins must error")
	}
}
