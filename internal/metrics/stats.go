// Package metrics provides the statistics used by the evaluation harness:
// sample summaries with 95% confidence intervals (Student t), and the
// relative performance metrics defined in §4.2 of the paper.
package metrics

import (
	"errors"
	"fmt"
	"math"
)

// ErrEmptySample is returned by summaries of empty samples.
var ErrEmptySample = errors.New("metrics: empty sample")

// Sample accumulates float64 observations.
type Sample struct {
	values []float64
}

// Add appends one observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// AddAll appends many observations.
func (s *Sample) AddAll(vs ...float64) { s.values = append(s.values, vs...) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Values returns a copy of the observations.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (s *Sample) Variance() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (+Inf for an empty sample).
func (s *Sample) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.values {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation (−Inf for an empty sample).
func (s *Sample) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.values {
		if v > max {
			max = v
		}
	}
	return max
}

// tTable95 holds two-sided 95% Student-t critical values for small degrees
// of freedom; larger df fall back to the asymptotic normal value.
var tTable95 = []float64{
	// df:  1       2      3      4      5      6      7      8      9     10
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	// df: 11      12     13     14     15     16     17     18     19     20
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	// df: 21      22     23     24     25     26     27     28     29     30
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom.
func tCritical95(df int) float64 {
	switch {
	case df <= 0:
		return math.NaN()
	case df <= len(tTable95):
		return tTable95[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}

// CI95 returns the half-width of the 95% confidence interval for the mean
// (0 for fewer than two observations).
func (s *Sample) CI95() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	return tCritical95(n-1) * s.StdDev() / math.Sqrt(float64(n))
}

// Summary is a compact description of a sample.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	CI95 float64 // half-width of the 95% CI on the mean
	Min  float64
	Max  float64
}

// Summarize computes a Summary, erroring on empty samples.
func (s *Sample) Summarize() (Summary, error) {
	if len(s.values) == 0 {
		return Summary{}, ErrEmptySample
	}
	return Summary{
		N:    len(s.values),
		Mean: s.Mean(),
		Std:  s.StdDev(),
		CI95: s.CI95(),
		Min:  s.Min(),
		Max:  s.Max(),
	}, nil
}

// String renders the summary as "mean ± ci (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", s.Mean, s.CI95, s.N)
}

// RelativeRD computes RD^relative = (RD_SPF − RD_SMRP) / RD_SPF (§4.2):
// positive values mean SMRP's recovery path is shorter. It errors when the
// baseline distance is non-positive.
func RelativeRD(rdSPF, rdSMRP float64) (float64, error) {
	if rdSPF <= 0 {
		return 0, fmt.Errorf("metrics: RD_SPF = %v must be positive", rdSPF)
	}
	return (rdSPF - rdSMRP) / rdSPF, nil
}

// RelativeDelay computes D^relative = (D_SMRP − D_SPF) / D_SPF (§4.2):
// positive values are SMRP's delay penalty.
func RelativeDelay(dSPF, dSMRP float64) (float64, error) {
	if dSPF <= 0 {
		return 0, fmt.Errorf("metrics: D_SPF = %v must be positive", dSPF)
	}
	return (dSMRP - dSPF) / dSPF, nil
}

// RelativeCost computes Cost^relative = (Cost_SMRP − Cost_SPF) / Cost_SPF
// (§4.2): positive values are SMRP's tree-cost penalty.
func RelativeCost(cSPF, cSMRP float64) (float64, error) {
	if cSPF <= 0 {
		return 0, fmt.Errorf("metrics: Cost_SPF = %v must be positive", cSPF)
	}
	return (cSMRP - cSPF) / cSPF, nil
}
