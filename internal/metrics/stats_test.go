package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Error("empty sample should be all zeros")
	}
	s.AddAll(2, 4, 4, 4, 5, 5, 7, 9)
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Known population: sample variance = 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	vals := s.Values()
	vals[0] = 99
	if s.Min() != 2 {
		t.Error("Values must return a copy")
	}
}

func TestSingleValueSample(t *testing.T) {
	var s Sample
	s.Add(3)
	if s.Mean() != 3 || s.StdDev() != 0 || s.CI95() != 0 {
		t.Errorf("single-value sample: mean=%v std=%v ci=%v", s.Mean(), s.StdDev(), s.CI95())
	}
}

func TestTCritical95(t *testing.T) {
	tests := []struct {
		df   int
		want float64
	}{
		{df: 1, want: 12.706},
		{df: 5, want: 2.571},
		{df: 30, want: 2.042},
		{df: 35, want: 2.021},
		{df: 50, want: 2.000},
		{df: 100, want: 1.980},
		{df: 1000, want: 1.960},
	}
	for _, tt := range tests {
		if got := tCritical95(tt.df); got != tt.want {
			t.Errorf("tCritical95(%d) = %v, want %v", tt.df, got, tt.want)
		}
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Error("df=0 should be NaN")
	}
}

func TestCI95KnownValue(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 3, 4, 5)
	// std = sqrt(2.5), n = 5, df = 4 → t = 2.776.
	want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(s.CI95()-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", s.CI95(), want)
	}
}

func TestSummarize(t *testing.T) {
	var empty Sample
	if _, err := empty.Summarize(); !errors.Is(err, ErrEmptySample) {
		t.Errorf("empty Summarize err = %v", err)
	}
	var s Sample
	s.AddAll(1, 2, 3)
	sum, err := s.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 3 || sum.Mean != 2 || sum.Min != 1 || sum.Max != 3 {
		t.Errorf("Summary = %+v", sum)
	}
	if sum.String() == "" {
		t.Error("String should render")
	}
}

func TestRelativeMetrics(t *testing.T) {
	if v, err := RelativeRD(10, 8); err != nil || math.Abs(v-0.2) > 1e-12 {
		t.Errorf("RelativeRD = %v, %v", v, err)
	}
	if v, err := RelativeDelay(10, 10.5); err != nil || math.Abs(v-0.05) > 1e-12 {
		t.Errorf("RelativeDelay = %v, %v", v, err)
	}
	if v, err := RelativeCost(20, 21); err != nil || math.Abs(v-0.05) > 1e-12 {
		t.Errorf("RelativeCost = %v, %v", v, err)
	}
	for _, f := range []func(a, b float64) (float64, error){RelativeRD, RelativeDelay, RelativeCost} {
		if _, err := f(0, 1); err == nil {
			t.Error("zero baseline should error")
		}
		if _, err := f(-1, 1); err == nil {
			t.Error("negative baseline should error")
		}
	}
}

// TestMeanBoundsProperty property-checks Min ≤ Mean ≤ Max and CI ≥ 0.
func TestMeanBoundsProperty(t *testing.T) {
	prop := func(vs []float64) bool {
		var s Sample
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			// Keep magnitudes sane to avoid float overflow in variance.
			s.Add(math.Mod(v, 1e6))
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return s.Min() <= m+1e-6 && m <= s.Max()+1e-6 && s.CI95() >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
