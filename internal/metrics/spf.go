package metrics

import "fmt"

// SPFStats is a snapshot of the process-wide shortest-path-tree computation
// counters maintained by internal/graph: how many trees were built from
// scratch (FullRuns), how many were produced by the incremental-SPF delta
// repair (DeltaRuns), how much heap work those tree builds cost in settled
// nodes (NodesSettled — full builds and delta repairs only; early-exit and
// nearest-of sweeps are deliberately excluded so the number is comparable
// across cache configurations), and the SPF-cache hit/miss totals.
//
// Counters are cumulative; use Sub to get the delta attributable to one study
// or phase. All values are deterministic for single-worker runs; with
// parallel workers, racing double-computes may shift a few units between
// hits and misses without affecting any study output. The underlying
// counters are atomics, so snapshots may be taken concurrently with live
// traffic (the serving layer's /metrics endpoint does exactly that).
type SPFStats struct {
	FullRuns     uint64 // shortest-path trees computed by a full sweep
	DeltaRuns    uint64 // trees produced by incremental delta repair
	NodesSettled uint64 // heap-settled nodes across full builds + delta repairs
	CacheHits    uint64 // SPF cache hits
	CacheMisses  uint64 // SPF cache misses (each becomes a full or delta run)
}

// Sub returns the counter delta s - prev (field-wise).
func (s SPFStats) Sub(prev SPFStats) SPFStats {
	return SPFStats{
		FullRuns:     s.FullRuns - prev.FullRuns,
		DeltaRuns:    s.DeltaRuns - prev.DeltaRuns,
		NodesSettled: s.NodesSettled - prev.NodesSettled,
		CacheHits:    s.CacheHits - prev.CacheHits,
		CacheMisses:  s.CacheMisses - prev.CacheMisses,
	}
}

// String renders the snapshot as a single stable line (used by the
// smrp-sim -spfstats flag).
func (s SPFStats) String() string {
	return fmt.Sprintf("spf: full=%d delta=%d settled=%d hits=%d misses=%d",
		s.FullRuns, s.DeltaRuns, s.NodesSettled, s.CacheHits, s.CacheMisses)
}
