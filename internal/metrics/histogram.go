package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of the sample using
// linear interpolation between order statistics. It errors on empty samples
// or out-of-range p.
func (s *Sample) Percentile(p float64) (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrEmptySample
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("metrics: percentile %v out of [0, 100]", p)
	}
	sorted := s.Values()
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile.
func (s *Sample) Median() (float64, error) { return s.Percentile(50) }

// Histogram buckets a sample into equal-width bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// HistogramOf builds a histogram with the given number of bins spanning
// [min, max] of the sample. It errors on empty samples or bins < 1.
func (s *Sample) HistogramOf(bins int) (*Histogram, error) {
	if len(s.values) == 0 {
		return nil, ErrEmptySample
	}
	if bins < 1 {
		return nil, fmt.Errorf("metrics: %d bins, need at least 1", bins)
	}
	h := &Histogram{Lo: s.Min(), Hi: s.Max(), Counts: make([]int, bins)}
	width := (h.Hi - h.Lo) / float64(bins)
	for _, v := range s.values {
		idx := 0
		if width > 0 {
			idx = int((v - h.Lo) / width)
			if idx >= bins {
				idx = bins - 1 // the max lands in the last bin
			}
		}
		h.Counts[idx]++
	}
	return h, nil
}

// Render draws the histogram as ASCII bars of at most barWidth characters.
func (h *Histogram) Render(barWidth int) string {
	if barWidth < 1 {
		barWidth = 40
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * barWidth / maxCount
		}
		fmt.Fprintf(&b, "[%8.3f, %8.3f) %6d %s\n",
			h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c,
			strings.Repeat("█", bar))
	}
	return b.String()
}
