package metrics

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestPercentile(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 3, 4, 5)
	tests := []struct {
		p    float64
		want float64
	}{
		{p: 0, want: 1},
		{p: 25, want: 2},
		{p: 50, want: 3},
		{p: 75, want: 4},
		{p: 100, want: 5},
		{p: 90, want: 4.6},
	}
	for _, tt := range tests {
		got, err := s.Percentile(tt.p)
		if err != nil {
			t.Fatalf("p%.0f: %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("p%.0f = %v, want %v", tt.p, got, tt.want)
		}
	}
	if m, err := s.Median(); err != nil || m != 3 {
		t.Errorf("median = %v, %v", m, err)
	}
}

func TestPercentileErrors(t *testing.T) {
	var empty Sample
	if _, err := empty.Percentile(50); !errors.Is(err, ErrEmptySample) {
		t.Errorf("empty err = %v", err)
	}
	var s Sample
	s.Add(1)
	if _, err := s.Percentile(-1); err == nil {
		t.Error("p < 0 should error")
	}
	if _, err := s.Percentile(101); err == nil {
		t.Error("p > 100 should error")
	}
	if v, err := s.Percentile(30); err != nil || v != 1 {
		t.Errorf("single-value percentile = %v, %v", v, err)
	}
}

func TestHistogram(t *testing.T) {
	var s Sample
	s.AddAll(0, 0.1, 0.2, 0.9, 1.0)
	h, err := s.HistogramOf(2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Lo != 0 || h.Hi != 1 {
		t.Errorf("range = [%v, %v]", h.Lo, h.Hi)
	}
	if h.Counts[0] != 3 || h.Counts[1] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	out := h.Render(20)
	if !strings.Contains(out, "█") || !strings.Contains(out, "3") {
		t.Errorf("render = %q", out)
	}
	// Degenerate bar width falls back to a default.
	if h.Render(0) == "" {
		t.Error("render with bad width should still draw")
	}
}

func TestHistogramErrors(t *testing.T) {
	var empty Sample
	if _, err := empty.HistogramOf(3); !errors.Is(err, ErrEmptySample) {
		t.Errorf("empty err = %v", err)
	}
	var s Sample
	s.Add(1)
	if _, err := s.HistogramOf(0); err == nil {
		t.Error("0 bins should error")
	}
	// All-identical values: everything in one bin.
	var same Sample
	same.AddAll(2, 2, 2)
	h, err := same.HistogramOf(4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 3 {
		t.Errorf("degenerate histogram counts = %v", h.Counts)
	}
}
