package metrics

import (
	"fmt"
	"math"
)

// This file provides the mergeable-accumulator support used by the parallel
// scenario runner: per-worker Samples, Summaries and Histograms combine into
// the whole-sweep statistic without re-streaming raw observations.

// Merge appends all of other's observations to s, preserving their order.
// Concatenation is exactly associative, so merging per-worker samples in
// trial-index-block order (runner.Reduce's contract) reproduces the
// sequential accumulation bit-for-bit. A nil other is a no-op.
func (s *Sample) Merge(other *Sample) {
	if other == nil {
		return
	}
	s.values = append(s.values, other.values...)
}

// Merge combines two summaries as if their underlying samples had been
// pooled, without access to the raw observations. Mean and variance combine
// via the parallel-variance recurrence (Chan et al., 1979):
//
//	n   = n_a + n_b
//	δ   = mean_b − mean_a
//	mean = mean_a + δ·n_b/n
//	M2   = M2_a + M2_b + δ²·n_a·n_b/n
//
// Min/Max take the extrema and CI95 is recomputed for the pooled size.
// The operation is commutative and associative up to floating-point
// round-off; an empty side is the identity.
func (s Summary) Merge(other Summary) Summary {
	if s.N == 0 {
		return other
	}
	if other.N == 0 {
		return s
	}
	na, nb := float64(s.N), float64(other.N)
	n := na + nb
	delta := other.Mean - s.Mean
	mean := s.Mean + delta*nb/n

	// Recover the second central moments: M2 = var·(n−1).
	m2a := s.Std * s.Std * (na - 1)
	m2b := other.Std * other.Std * (nb - 1)
	m2 := m2a + m2b + delta*delta*na*nb/n

	out := Summary{
		N:    s.N + other.N,
		Mean: mean,
		Min:  math.Min(s.Min, other.Min),
		Max:  math.Max(s.Max, other.Max),
	}
	if out.N > 1 {
		out.Std = math.Sqrt(m2 / (n - 1))
		out.CI95 = tCritical95(out.N-1) * out.Std / math.Sqrt(n)
	}
	return out
}

// Merge adds other's bucket counts into h. The histograms must have been
// built over the same range with the same bin count — per-worker histograms
// in a parallel sweep should therefore be constructed with fixed, agreed
// bounds (see NewFixedHistogram) rather than data-dependent ones.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if len(h.Counts) != len(other.Counts) || h.Lo != other.Lo || h.Hi != other.Hi {
		return fmt.Errorf("metrics: histogram shapes differ: [%v,%v]×%d vs [%v,%v]×%d",
			h.Lo, h.Hi, len(h.Counts), other.Lo, other.Hi, len(other.Counts))
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	return nil
}

// NewFixedHistogram returns an empty histogram with caller-chosen bounds, so
// independently-filled copies (one per worker) can be merged exactly. It
// errors when the range is inverted or bins < 1.
func NewFixedHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("metrics: %d bins, need at least 1", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("metrics: histogram range [%v, %v] is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Observe buckets one value into the histogram. Values outside [Lo, Hi]
// clamp into the first/last bin so fixed-bound worker histograms never drop
// observations.
func (h *Histogram) Observe(v float64) {
	bins := len(h.Counts)
	if bins == 0 {
		return
	}
	width := (h.Hi - h.Lo) / float64(bins)
	idx := 0
	if width > 0 {
		idx = int((v - h.Lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
	}
	h.Counts[idx]++
}
