package hierarchy

import (
	"errors"
	"slices"
	"testing"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
)

// TestDomainDownRepairRevive drives the hierarchy through the degraded-domain
// state machine: failing a stub's agent (its gateway) suspends the whole
// domain, its members park as a group, and repairing the agent revives the
// domain and re-admits them automatically.
func TestDomainDownRepairRevive(t *testing.T) {
	ts, src := buildTS(t, 3)
	s, err := New(ts, src, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	members := pickMembers(ts, src, 8)
	for _, m := range members {
		if err := s.Join(m); err != nil {
			t.Fatalf("Join(%d) = %v", m, err)
		}
	}

	// Pick a member outside the source's domain; its stub's gateway is the
	// domain agent we will fail.
	srcDom := ts.DomainOf(src)
	var victim graph.NodeID = graph.Invalid
	for _, m := range members {
		if d := ts.DomainOf(m); d.ID != srcDom.ID && m != d.Gateway {
			victim = m
			break
		}
	}
	if victim == graph.Invalid {
		t.Fatal("no member outside the source domain")
	}
	dom := ts.DomainOf(victim)
	agent := dom.Gateway

	reports, err := s.RecoverSet([]failure.Failure{failure.NodeDown(agent)})
	if err != nil {
		t.Fatalf("RecoverSet(NodeDown agent) = %v", err)
	}
	var domainDown bool
	for _, r := range reports {
		if r.DomainID == dom.ID && r.DomainDown {
			domainDown = true
		}
	}
	if !domainDown {
		t.Fatalf("agent failure did not mark domain %d down; reports: %+v", dom.ID, reports)
	}
	// Every member of the down domain is degraded as a group.
	parked := s.Parked()
	for _, m := range members {
		if ts.DomainOf(m).ID == dom.ID {
			if !slices.Contains(parked, m) {
				t.Errorf("member %d of down domain %d not parked (parked = %v)", m, dom.ID, parked)
			}
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("degraded hierarchy invalid: %v", err)
	}

	// While the agent is down, further failures inside the domain must
	// accumulate silently (DomainDown again), not error out.
	reports, err = s.RecoverSet([]failure.Failure{failure.NodeDown(victim)})
	if err != nil {
		t.Fatalf("RecoverSet while domain down = %v", err)
	}
	for _, r := range reports {
		if r.DomainID == dom.ID && !r.DomainDown {
			t.Fatalf("domain %d should still be down: %+v", dom.ID, r)
		}
	}

	// Repair both: the agent revives the domain; the victim's own failure is
	// lifted with it, so every parked member of the domain is re-admitted.
	sum, err := s.Repair(failure.NodeDown(agent), failure.NodeDown(victim))
	if err != nil {
		t.Fatalf("Repair = %v", err)
	}
	if !slices.Contains(sum.Revived, dom.ID) {
		t.Fatalf("Revived = %v, want to contain %d", sum.Revived, dom.ID)
	}
	if len(sum.StillParked) != 0 {
		t.Fatalf("StillParked = %v, want empty", sum.StillParked)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("revived hierarchy invalid: %v", err)
	}
	for _, m := range members {
		if _, err := s.EndToEndDelay(m); err != nil {
			t.Errorf("EndToEndDelay(%d) after revival = %v", m, err)
		}
	}
}

// TestHierarchyErrorIdentity pins the typed sentinels of the hierarchy API.
func TestHierarchyErrorIdentity(t *testing.T) {
	ts, src := buildTS(t, 4)
	s, err := New(ts, src, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RecoverSet(nil); !errors.Is(err, failure.ErrBadSchedule) {
		t.Errorf("RecoverSet(nil) = %v, want ErrBadSchedule", err)
	}
	if _, err := s.RecoverSet([]failure.Failure{{Kind: failure.Kind(99)}}); !errors.Is(err, ErrFailureOutsideDomains) {
		t.Errorf("RecoverSet(bad kind) = %v, want ErrFailureOutsideDomains", err)
	}
	if err := s.Join(graph.NodeID(ts.Graph.NumNodes() + 5)); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Join(out of range) = %v, want ErrUnknownNode", err)
	}
}
