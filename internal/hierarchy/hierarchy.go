// Package hierarchy implements the paper's hierarchical recovery
// architecture (§3.3.3, Figure 6): the network is partitioned into recovery
// domains over a transit–stub topology, each domain runs its own SMRP
// sub-session rooted at a domain agent, and any failure is recovered
// entirely inside the domain where it occurred. This bounds the scope of
// tree reconfiguration and makes SMRP scale to large networks.
//
// The 2-level instantiation here maps directly onto the transit–stub
// structure: every stub domain is a level-1 recovery domain whose agent is
// its gateway router; the transit core (plus the agents) forms the level-0
// domain. The agent of the domain containing the actual multicast source
// relays packets from the source into the level-0 tree (A₁ in Figure 6).
package hierarchy

import (
	"errors"
	"fmt"
	"slices"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

// Errors returned by Session operations.
var (
	// ErrUnknownNode is returned when a node belongs to no recovery domain.
	ErrUnknownNode = errors.New("hierarchy: node belongs to no recovery domain")
	// ErrFailureOutsideDomains is returned when a failure touches no domain
	// (cannot happen on well-formed transit–stub inputs).
	ErrFailureOutsideDomains = errors.New("hierarchy: failure outside all recovery domains")
	// ErrUnsupportedFailure is returned when a recovery model cannot
	// attribute the given failure kind to a domain.
	ErrUnsupportedFailure = errors.New("hierarchy: failure kind not supported")
)

// domainSession is one recovery domain's sub-multicast tree, built over the
// induced subgraph of the domain's nodes (plus, for the top domain, the
// agents).
type domainSession struct {
	id      int // topology.Domain ID; -1 for the top (level-0) domain
	session *core.Session
	nm      *graph.NodeMap
	// agent is the domain's source in full-graph IDs (the gateway for
	// stubs; the source-domain relays from the true source).
	agent graph.NodeID
}

// Session is a hierarchical SMRP session over a transit–stub topology.
type Session struct {
	ts     *topology.TransitStub
	cfg    core.Config
	source graph.NodeID

	// stubs maps stub-domain ID → its sub-session; top is the level-0
	// session spanning the transit core and the stub agents.
	stubs map[int]*domainSession
	top   *domainSession

	members map[graph.NodeID]bool
}

// New builds a hierarchical session over ts, with the true multicast source
// at src (which must live in a stub domain, as members do in Figure 6).
func New(ts *topology.TransitStub, src graph.NodeID, cfg core.Config) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	srcDomain := ts.DomainOf(src)
	if srcDomain == nil || srcDomain.Kind != topology.StubDomain {
		return nil, fmt.Errorf("hierarchy: source %d must be inside a stub domain", src)
	}
	s := &Session{
		ts:      ts,
		cfg:     cfg,
		source:  src,
		stubs:   make(map[int]*domainSession, len(ts.Stubs)),
		members: make(map[graph.NodeID]bool),
	}

	// Per-stub sub-sessions. The source's own domain is rooted at the true
	// source; every other stub is rooted at its gateway agent. The agent of
	// the source's domain is its gateway too — it joins the stub tree as a
	// member so it can relay the stream into the level-0 core (Figure 6's
	// A₁).
	for i := range ts.Stubs {
		d := &ts.Stubs[i]
		root := d.Gateway
		if d.ID == srcDomain.ID {
			root = src
		}
		ds, err := newDomainSession(ts.Graph, d.ID, d.Nodes, root, d.Gateway, cfg)
		if err != nil {
			return nil, fmt.Errorf("hierarchy: stub %d: %w", d.ID, err)
		}
		s.stubs[d.ID] = ds
	}

	// Level-0 session: transit nodes plus all stub agents, rooted at the
	// source domain's agent (which relays from the true source).
	topNodes := append([]graph.NodeID(nil), ts.Transit.Nodes...)
	for i := range ts.Stubs {
		topNodes = append(topNodes, ts.Stubs[i].Gateway)
	}
	topAgent := srcDomain.Gateway
	top, err := newDomainSession(ts.Graph, -1, topNodes, topAgent, topAgent, cfg)
	if err != nil {
		return nil, fmt.Errorf("hierarchy: top domain: %w", err)
	}
	s.top = top

	// Connect the relay agent inside the source's stub.
	if srcDomain.Gateway != src {
		if _, err := s.stubs[srcDomain.ID].join(srcDomain.Gateway); err != nil {
			return nil, fmt.Errorf("hierarchy: connect source agent: %w", err)
		}
	}
	return s, nil
}

// newDomainSession builds a sub-session over the induced subgraph of nodes,
// rooted at root, with the given agent (both full-graph IDs).
func newDomainSession(g *graph.Graph, id int, nodes []graph.NodeID, root, agent graph.NodeID, cfg core.Config) (*domainSession, error) {
	sub, nm, err := g.Subgraph(nodes)
	if err != nil {
		return nil, err
	}
	// Sub-sessions route over the induced subgraph but never mutate it
	// (failures are mask-based), so freeze it into the CSR representation:
	// at megascale the per-domain copies are the hierarchy's dominant memory
	// term, and the sorted-pair form halves their edge storage.
	sub.Freeze()
	subRoot, ok := nm.ToSub(root)
	if !ok {
		return nil, fmt.Errorf("root %d not in domain", root)
	}
	sess, err := core.NewSession(sub, subRoot, cfg)
	if err != nil {
		return nil, err
	}
	return &domainSession{id: id, session: sess, nm: nm, agent: agent}, nil
}

// join admits a full-graph node into the domain's sub-session.
func (d *domainSession) join(n graph.NodeID) (*core.JoinResult, error) {
	sub, ok := d.nm.ToSub(n)
	if !ok {
		return nil, fmt.Errorf("join %d: %w", n, ErrUnknownNode)
	}
	return d.session.Join(sub)
}

// leave removes a full-graph node from the domain's sub-session.
func (d *domainSession) leave(n graph.NodeID) error {
	sub, ok := d.nm.ToSub(n)
	if !ok {
		return fmt.Errorf("leave %d: %w", n, ErrUnknownNode)
	}
	return d.session.Leave(sub)
}

// isMember reports membership of a full-graph node.
func (d *domainSession) isMember(n graph.NodeID) bool {
	sub, ok := d.nm.ToSub(n)
	return ok && d.session.Tree().IsMember(sub)
}

// Join admits a receiver. Its stub domain's agent transparently joins the
// level-0 tree the first time the domain gains a member.
func (s *Session) Join(n graph.NodeID) error {
	if s.members[n] {
		return fmt.Errorf("hierarchy: join %d: %w", n, core.ErrAlreadyMember)
	}
	d := s.ts.DomainOf(n)
	if d == nil {
		return fmt.Errorf("hierarchy: join %d: %w", n, ErrUnknownNode)
	}
	if d.Kind != topology.StubDomain {
		return fmt.Errorf("hierarchy: join %d: receivers live in stub domains", n)
	}
	ds := s.stubs[d.ID]
	if !ds.isMember(n) { // the source-domain agent is already a relay member
		if _, err := ds.join(n); err != nil {
			return fmt.Errorf("hierarchy: join %d in stub %d: %w", n, d.ID, err)
		}
	}
	s.members[n] = true
	// Hook the domain into the core tree if not already there.
	if !s.top.isMember(ds.agent) && ds.agent != s.top.agent {
		if _, err := s.top.join(ds.agent); err != nil {
			return fmt.Errorf("hierarchy: agent %d join top: %w", ds.agent, err)
		}
	}
	return nil
}

// Leave removes a receiver; the domain's agent leaves the level-0 tree when
// its domain empties.
func (s *Session) Leave(n graph.NodeID) error {
	if !s.members[n] {
		return fmt.Errorf("hierarchy: leave %d: %w", n, core.ErrNotMember)
	}
	d := s.ts.DomainOf(n)
	if d == nil {
		return fmt.Errorf("hierarchy: leave %d: %w", n, ErrUnknownNode)
	}
	ds := s.stubs[d.ID]
	srcDomain := s.ts.DomainOf(s.source)
	// The source-domain gateway stays connected as the relay agent even if
	// it stops being a receiver itself.
	if !(d.ID == srcDomain.ID && n == ds.agent) {
		if err := ds.leave(n); err != nil {
			return err
		}
	}
	delete(s.members, n)
	if s.domainMemberCount(d.ID) == 0 && s.top.isMember(ds.agent) {
		if err := s.top.leave(ds.agent); err != nil {
			return err
		}
	}
	return nil
}

// domainMemberCount counts live receivers registered in stub domain id.
func (s *Session) domainMemberCount(id int) int {
	count := 0
	for m := range s.members {
		if d := s.ts.DomainOf(m); d != nil && d.ID == id {
			count++
		}
	}
	return count
}

// Members returns the session's receivers in ascending order.
func (s *Session) Members() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(s.members))
	for m := range s.members {
		out = append(out, m)
	}
	slices.Sort(out)
	return out
}

// DomainSessions returns the stub-domain IDs in ascending order (for
// inspection and tests).
func (s *Session) DomainSessions() []int {
	out := make([]int, 0, len(s.stubs))
	for id := range s.stubs {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// StubTree returns the sub-tree of stub domain id along with its node map.
func (s *Session) StubTree(id int) (*core.Session, *graph.NodeMap, error) {
	ds, ok := s.stubs[id]
	if !ok {
		return nil, nil, fmt.Errorf("hierarchy: no stub domain %d", id)
	}
	return ds.session, ds.nm, nil
}

// TopTree returns the level-0 session and its node map.
func (s *Session) TopTree() (*core.Session, *graph.NodeMap) {
	return s.top.session, s.top.nm
}

// RecoveryReport describes a domain-confined recovery.
type RecoveryReport struct {
	// DomainID is the recovery domain that handled the failure (-1 = the
	// level-0 core domain).
	DomainID int
	// Level is 1 for stub domains, 0 for the core.
	Level int
	// Heal is the domain-local SMRP recovery report, in the domain's local
	// ID space.
	Heal *core.HealReport
	// NodesInDomain is the size of the domain that had to react — every
	// other domain is untouched, which is the scalability argument of
	// §3.3.3.
	NodesInDomain int
	// DomainDown reports that the domain's own agent is down: recovery
	// there is suspended (Heal is nil) and its members are degraded as a
	// group until a Repair revives the agent.
	DomainDown bool
}

// Recover handles one failure: each domain the failure touches heals its own
// sub-tree with local detours; every other domain is left untouched. A link
// inside a stub is that stub's problem; cross-domain uplinks (stub gateway ↔
// transit) and transit links are handled in the level-0 domain; a node
// failure hits the node's own domain (a gateway failure additionally hits
// level 0). When the failure touches several domains (a gateway crash), the
// stub-level report is returned; RecoverSet exposes the full list.
func (s *Session) Recover(f failure.Failure) (*RecoveryReport, error) {
	reports, err := s.RecoverSet([]failure.Failure{f})
	if err != nil {
		return nil, err
	}
	return reports[0], nil
}

// indexOfStub finds the slice index of the stub with the given domain ID.
func indexOfStub(ts *topology.TransitStub, id int) int {
	for i := range ts.Stubs {
		if ts.Stubs[i].ID == id {
			return i
		}
	}
	return 0
}

// Validate checks every sub-tree's structural invariants.
func (s *Session) Validate() error {
	for id, ds := range s.stubs {
		if err := ds.session.Tree().Validate(); err != nil {
			return fmt.Errorf("hierarchy: stub %d: %w", id, err)
		}
	}
	if err := s.top.session.Tree().Validate(); err != nil {
		return fmt.Errorf("hierarchy: top: %w", err)
	}
	return nil
}

// EndToEndDelay computes a member's total delivery delay: source → its
// domain agent inside the source stub, across the level-0 tree, then down
// the member's own stub tree. Members in the source's domain use only their
// stub tree.
func (s *Session) EndToEndDelay(m graph.NodeID) (float64, error) {
	if !s.members[m] {
		return 0, fmt.Errorf("hierarchy: delay %d: %w", m, core.ErrNotMember)
	}
	d := s.ts.DomainOf(m)
	srcDomain := s.ts.DomainOf(s.source)
	ds := s.stubs[d.ID]

	// Distance inside m's own stub from the stub root (its agent, or the
	// true source in the source's domain) down to m.
	sub, ok := ds.nm.ToSub(m)
	if !ok {
		return 0, ErrUnknownNode
	}
	inStub, err := ds.session.Tree().DelayTo(sub)
	if err != nil {
		return 0, err
	}
	if d.ID == srcDomain.ID {
		return inStub, nil
	}

	// Source stub: source → its agent.
	srcDS := s.stubs[srcDomain.ID]
	agentSub, ok := srcDS.nm.ToSub(srcDS.agent)
	if !ok {
		return 0, ErrUnknownNode
	}
	toAgent, err := srcDS.session.Tree().DelayTo(agentSub)
	if err != nil {
		return 0, err
	}

	// Level-0 tree: source agent → m's domain agent.
	topSub, ok := s.top.nm.ToSub(ds.agent)
	if !ok {
		return 0, ErrUnknownNode
	}
	across, err := s.top.session.Tree().DelayTo(topSub)
	if err != nil {
		return 0, err
	}
	return toAgent + across + inStub, nil
}
