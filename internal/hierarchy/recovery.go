package hierarchy

import (
	"errors"
	"fmt"
	"slices"

	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

// This file extends §3.3.3's domain-confined recovery to the multi-failure
// regime: correlated batches that straddle domains, node failures (including
// a domain's own agent), graceful domain-wide degradation while an agent is
// down, and repair-driven revival with automatic re-admission. The
// single-failure Recover in hierarchy.go delegates here.

// attribution pairs a recovery domain with a failure translated into the
// domain's local ID space.
type attribution struct {
	ds    *domainSession
	local failure.Failure
}

// attribute maps f onto every recovery domain it touches. Link failures
// follow the paper's rule: a link inside one stub is that stub's problem;
// anything touching the transit core or crossing domains is handled at
// level 0. A node failure hits the node's own domain; a gateway failure
// additionally hits the level-0 domain, where the node doubles as the
// stub's agent.
func (s *Session) attribute(f failure.Failure) ([]attribution, error) {
	switch f.Kind {
	case failure.LinkFailure:
		du := s.ts.DomainOf(f.Edge.A)
		dv := s.ts.DomainOf(f.Edge.B)
		if du == nil || dv == nil {
			return nil, ErrFailureOutsideDomains
		}
		if du.Kind == topology.StubDomain && dv.Kind == topology.StubDomain && du.ID == dv.ID {
			ds := s.stubs[du.ID]
			a, okA := ds.nm.ToSub(f.Edge.A)
			b, okB := ds.nm.ToSub(f.Edge.B)
			if !okA || !okB {
				return nil, fmt.Errorf("hierarchy: link %v not inside stub %d: %w", f, du.ID, ErrFailureOutsideDomains)
			}
			return []attribution{{ds, failure.LinkDown(a, b)}}, nil
		}
		a, okA := s.top.nm.ToSub(f.Edge.A)
		b, okB := s.top.nm.ToSub(f.Edge.B)
		if !okA || !okB {
			return nil, fmt.Errorf("hierarchy: link %v not visible at level 0: %w", f, ErrFailureOutsideDomains)
		}
		return []attribution{{s.top, failure.LinkDown(a, b)}}, nil

	case failure.NodeFailure:
		d := s.ts.DomainOf(f.Node)
		if d == nil {
			return nil, ErrFailureOutsideDomains
		}
		if d.Kind == topology.TransitDomain {
			sub, ok := s.top.nm.ToSub(f.Node)
			if !ok {
				return nil, fmt.Errorf("hierarchy: transit node %d not visible at level 0: %w", f.Node, ErrFailureOutsideDomains)
			}
			return []attribution{{s.top, failure.NodeDown(sub)}}, nil
		}
		ds := s.stubs[d.ID]
		sub, ok := ds.nm.ToSub(f.Node)
		if !ok {
			return nil, fmt.Errorf("hierarchy: node %d not inside stub %d: %w", f.Node, d.ID, ErrFailureOutsideDomains)
		}
		atts := []attribution{{ds, failure.NodeDown(sub)}}
		if f.Node == d.Gateway {
			if topSub, ok := s.top.nm.ToSub(f.Node); ok {
				atts = append(atts, attribution{s.top, failure.NodeDown(topSub)})
			}
		}
		return atts, nil

	default:
		return nil, fmt.Errorf("hierarchy: failure kind %v: %w", f.Kind, ErrFailureOutsideDomains)
	}
}

// down reports whether the domain's own root — the stub's agent, or the
// source relay for the level-0 domain — is blocked by the domain's
// accumulated failure mask. A down domain suspends recovery: its members are
// degraded as a group until a repair revives the root.
func (d *domainSession) down() bool {
	return d.session.FailedMask().NodeBlocked(d.session.Tree().Source())
}

// domainByID resolves a recovery-domain ID (-1 = level-0 core).
func (s *Session) domainByID(id int) *domainSession {
	if id == -1 {
		return s.top
	}
	return s.stubs[id]
}

// domainSize is the number of routers that must react when domain id heals.
func (s *Session) domainSize(id int) int {
	if id == -1 {
		return len(s.ts.Transit.Nodes) + len(s.ts.Stubs)
	}
	return len(s.ts.Stubs[indexOfStub(s.ts, id)].Nodes)
}

// sortDomainIDs orders recovery domains deterministically: stubs ascending,
// the level-0 core (-1) last, so stub-local damage is resolved before the
// core reacts to agent changes.
func sortDomainIDs(ids []int) {
	slices.SortFunc(ids, func(a, b int) int {
		switch {
		case a == b:
			return 0
		case a == -1:
			return 1
		case b == -1:
			return -1
		case a < b:
			return -1
		default:
			return 1
		}
	})
}

// groupByDomain attributes every failure and groups the translated failures
// per recovery domain, returning the touched domain IDs in heal order.
func (s *Session) groupByDomain(fs []failure.Failure) (map[int][]failure.Failure, []int, error) {
	per := make(map[int][]failure.Failure)
	for _, f := range fs {
		atts, err := s.attribute(f)
		if err != nil {
			return nil, nil, err
		}
		for _, a := range atts {
			per[a.ds.id] = append(per[a.ds.id], a.local)
		}
	}
	ids := make([]int, 0, len(per))
	for id := range per {
		ids = append(ids, id)
	}
	sortDomainIDs(ids)
	return per, ids, nil
}

// RecoverSet handles a correlated failure batch (an SRLG cut): each failure
// is attributed to the recovery domain(s) it touches, and every touched
// domain heals its own sub-tree — all other domains are untouched, which is
// the scalability argument of §3.3.3. Domains whose agent is (or goes) down
// degrade gracefully: recovery there is suspended, the failures keep
// accumulating in the domain's mask, and the report carries DomainDown; a
// later Repair that revives the agent reconciles the domain automatically.
func (s *Session) RecoverSet(fs []failure.Failure) ([]*RecoveryReport, error) {
	if len(fs) == 0 {
		return nil, fmt.Errorf("hierarchy: recover: %w: empty failure set", failure.ErrBadSchedule)
	}
	per, ids, err := s.groupByDomain(fs)
	if err != nil {
		return nil, err
	}
	var reports []*RecoveryReport
	for _, id := range ids {
		ds := s.domainByID(id)
		rep := &RecoveryReport{DomainID: id, Level: 1, NodesInDomain: s.domainSize(id)}
		if id == -1 {
			rep.Level = 0
		}
		if ds.down() {
			// Agent already down: recovery stays suspended, but the failures
			// must still accumulate so revival reconciles against all of them.
			ds.session.ApplyFailure(per[id]...)
			rep.DomainDown = true
			reports = append(reports, rep)
			continue
		}
		heal, err := ds.session.Recover(per[id]...)
		if err != nil {
			if errors.Is(err, failure.ErrSourceFailed) {
				// The domain's own agent just failed. Recover rejects the
				// batch without touching the mask (so servers can't be
				// corrupted by a rejected request), so fold it in
				// explicitly here: the domain degrades as a group (see
				// Parked) and revival must reconcile against every
				// accumulated failure.
				ds.session.ApplyFailure(per[id]...)
				rep.DomainDown = true
				reports = append(reports, rep)
				continue
			}
			return nil, fmt.Errorf("hierarchy: heal domain %d: %w", id, err)
		}
		rep.Heal = heal
		reports = append(reports, rep)
	}
	return reports, nil
}

// RepairSummary describes a hierarchy-level repair: which domains came back
// from the degraded state and which receivers were re-admitted.
type RepairSummary struct {
	// Repaired lists the components restored.
	Repaired []failure.Failure
	// Revived lists recovery domains whose agent came back up (and whose
	// sub-tree was reconciled against everything that failed while it was
	// down), stub IDs ascending, -1 (the core) last.
	Revived []int
	// Readmitted lists receivers re-admitted somewhere in the hierarchy by
	// this repair, ascending (full-graph IDs).
	Readmitted []graph.NodeID
	// StillParked lists receivers that remain degraded afterwards.
	StillParked []graph.NodeID
}

// Repair restores failed components across the hierarchy. Each touched
// domain lifts the repairs from its mask and automatically re-admits the
// members the repair reconnects; a domain whose agent comes back is
// reconciled against every failure that accumulated while it was down.
func (s *Session) Repair(fs ...failure.Failure) (*RepairSummary, error) {
	sum := &RepairSummary{Repaired: fs}
	per, ids, err := s.groupByDomain(fs)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		ds := s.domainByID(id)
		wasDown := ds.down()
		rep, err := ds.session.Repair(per[id]...)
		if err != nil {
			return nil, fmt.Errorf("hierarchy: repair domain %d: %w", id, err)
		}
		for _, m := range rep.Readmitted {
			if full, ok := ds.nm.ToFull(m); ok && s.members[full] {
				sum.Readmitted = append(sum.Readmitted, full)
			}
		}
		if wasDown && !ds.down() {
			// The agent is back: reconcile the domain tree against whatever
			// else failed while it was suspended.
			if _, err := ds.session.Reconcile(); err != nil {
				return nil, fmt.Errorf("hierarchy: revive domain %d: %w", id, err)
			}
			sum.Revived = append(sum.Revived, id)
		}
	}
	slices.Sort(sum.Readmitted)
	sum.StillParked = s.Parked()
	return sum, nil
}

// Parked lists the receivers currently degraded, ascending: members parked
// inside their stub session, members of a down domain, and members whose
// cross-domain delivery is cut because their agent is unreachable at
// level 0 (or the level-0 domain itself is down).
func (s *Session) Parked() []graph.NodeID {
	srcDomain := s.ts.DomainOf(s.source)
	topDown := s.top.down()
	out := make([]graph.NodeID, 0)
	for m := range s.members {
		d := s.ts.DomainOf(m)
		ds := s.stubs[d.ID]
		switch {
		case ds.down():
			out = append(out, m)
		case parkedIn(ds, m):
			out = append(out, m)
		case d.ID != srcDomain.ID && (topDown || parkedIn(s.top, ds.agent)):
			out = append(out, m)
		}
	}
	slices.Sort(out)
	return out
}

// parkedIn reports whether full-graph node n is parked inside domain d's
// sub-session.
func parkedIn(d *domainSession, n graph.NodeID) bool {
	sub, ok := d.nm.ToSub(n)
	return ok && d.session.IsParked(sub)
}
