package hierarchy

import (
	"testing"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

// buildTS generates the default 4-transit/4-stub topology and returns it
// with a source placed inside the first stub domain.
func buildTS(t *testing.T, seed uint64) (*topology.TransitStub, graph.NodeID) {
	t.Helper()
	ts, err := topology.GenerateTransitStub(topology.DefaultTransitStubConfig(), topology.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	// Source: a non-gateway node of stub 1.
	for _, n := range ts.Stubs[0].Nodes {
		if n != ts.Stubs[0].Gateway {
			return ts, n
		}
	}
	t.Fatal("no non-gateway node in stub 0")
	return nil, 0
}

// pickMembers returns up to k non-gateway, non-source receivers spread over
// all stub domains.
func pickMembers(ts *topology.TransitStub, src graph.NodeID, k int) []graph.NodeID {
	var out []graph.NodeID
	for round := 0; len(out) < k && round < 16; round++ {
		for i := range ts.Stubs {
			if len(out) >= k {
				break
			}
			nodes := ts.Stubs[i].Nodes
			if round < len(nodes) {
				n := nodes[round]
				if n != src && n != ts.Stubs[i].Gateway {
					out = append(out, n)
				}
			}
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	ts, _ := buildTS(t, 1)
	if _, err := New(ts, ts.Transit.Nodes[0], core.DefaultConfig()); err == nil {
		t.Error("source in transit domain should be rejected")
	}
	bad := core.DefaultConfig()
	bad.DThresh = -1
	if _, err := New(ts, ts.Stubs[0].Nodes[0], bad); err == nil {
		t.Error("bad config should be rejected")
	}
}

func TestJoinAcrossDomains(t *testing.T) {
	ts, src := buildTS(t, 2)
	s, err := New(ts, src, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	members := pickMembers(ts, src, 8)
	for _, m := range members {
		if err := s.Join(m); err != nil {
			t.Fatalf("join %d: %v", m, err)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Members()); got != len(members) {
		t.Errorf("members = %d, want %d", got, len(members))
	}
	// Every member domain's agent sits on the level-0 tree.
	topSess, topNM := s.TopTree()
	for _, m := range members {
		d := ts.DomainOf(m)
		agentSub, ok := topNM.ToSub(ts.Stubs[indexOfStub(ts, d.ID)].Gateway)
		if !ok {
			t.Fatalf("agent of domain %d not in top session", d.ID)
		}
		if !topSess.Tree().OnTree(agentSub) {
			t.Errorf("agent of domain %d not on level-0 tree", d.ID)
		}
	}
	// Duplicate join rejected.
	if err := s.Join(members[0]); err == nil {
		t.Error("duplicate join should fail")
	}
	// End-to-end delay is positive and finite for every member.
	for _, m := range members {
		d, err := s.EndToEndDelay(m)
		if err != nil {
			t.Fatalf("delay %d: %v", m, err)
		}
		if d <= 0 {
			t.Errorf("member %d delay = %v", m, d)
		}
	}
}

func TestLeaveEmptiesDomain(t *testing.T) {
	ts, src := buildTS(t, 3)
	s, err := New(ts, src, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// One member in a non-source domain.
	var m graph.NodeID = graph.Invalid
	for _, n := range ts.Stubs[1].Nodes {
		if n != ts.Stubs[1].Gateway {
			m = n
			break
		}
	}
	if m == graph.Invalid {
		t.Fatal("no candidate member")
	}
	if err := s.Join(m); err != nil {
		t.Fatal(err)
	}
	topSess, topNM := s.TopTree()
	agentSub, _ := topNM.ToSub(ts.Stubs[1].Gateway)
	if !topSess.Tree().IsMember(agentSub) {
		t.Fatal("agent should be on top tree while domain has members")
	}
	if err := s.Leave(m); err != nil {
		t.Fatal(err)
	}
	if topSess.Tree().IsMember(agentSub) {
		t.Error("agent should leave top tree when its domain empties")
	}
	if err := s.Leave(m); err == nil {
		t.Error("double leave should fail")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDomainConfinedRecovery is the §3.3.3 claim: a failure inside one stub
// domain is recovered entirely within that domain; all other sub-trees are
// byte-for-byte untouched.
func TestDomainConfinedRecovery(t *testing.T) {
	ts, src := buildTS(t, 4)
	s, err := New(ts, src, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	members := pickMembers(ts, src, 8)
	for _, m := range members {
		if err := s.Join(m); err != nil {
			t.Fatal(err)
		}
	}

	// Find a victim member in a non-source stub and its worst-case link
	// inside that stub.
	var victim graph.NodeID = graph.Invalid
	var victimDomain int
	for _, m := range members {
		if d := ts.DomainOf(m); d.ID != ts.DomainOf(src).ID {
			victim, victimDomain = m, d.ID
			break
		}
	}
	if victim == graph.Invalid {
		t.Skip("no member outside the source domain in this draw")
	}
	sess, nm, err := s.StubTree(victimDomain)
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := nm.ToSub(victim)
	f, err := failure.WorstCaseFor(sess.Tree(), sub)
	if err != nil {
		t.Fatal(err)
	}
	fullA, _ := nm.ToFull(f.Edge.A)
	fullB, _ := nm.ToFull(f.Edge.B)

	// Snapshot all OTHER domains' trees.
	type snap struct {
		edges []graph.EdgeID
	}
	before := make(map[int]snap)
	for _, id := range s.DomainSessions() {
		if id == victimDomain {
			continue
		}
		o, _, err := s.StubTree(id)
		if err != nil {
			t.Fatal(err)
		}
		before[id] = snap{edges: o.Tree().Edges()}
	}
	topBefore := func() []graph.EdgeID { ts, _ := s.TopTree(); return ts.Tree().Edges() }()

	rep, err := s.Recover(failure.LinkDown(fullA, fullB))
	if err != nil {
		t.Fatal(err)
	}
	if rep.DomainID != victimDomain || rep.Level != 1 {
		t.Errorf("recovery attributed to domain %d level %d, want %d level 1", rep.DomainID, rep.Level, victimDomain)
	}
	if rep.NodesInDomain >= ts.Graph.NumNodes() {
		t.Error("recovery scope should be a strict subset of the network")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// All other domains untouched.
	for id, sn := range before {
		o, _, err := s.StubTree(id)
		if err != nil {
			t.Fatal(err)
		}
		after := o.Tree().Edges()
		if len(after) != len(sn.edges) {
			t.Errorf("domain %d changed during foreign recovery", id)
			continue
		}
		for i := range after {
			if after[i] != sn.edges[i] {
				t.Errorf("domain %d edge %d changed", id, i)
			}
		}
	}
	topAfter := func() []graph.EdgeID { ts, _ := s.TopTree(); return ts.Tree().Edges() }()
	if len(topBefore) != len(topAfter) {
		t.Error("level-0 tree changed during stub-confined recovery")
	}
}

// TestCoreRecoveryLevel0 checks that transit-core failures are healed in the
// level-0 domain.
func TestCoreRecoveryLevel0(t *testing.T) {
	ts, src := buildTS(t, 5)
	s, err := New(ts, src, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range pickMembers(ts, src, 6) {
		if err := s.Join(m); err != nil {
			t.Fatal(err)
		}
	}
	// Fail a transit-core link that the level-0 tree actually uses.
	topSess, topNM := s.TopTree()
	edges := topSess.Tree().Edges()
	if len(edges) == 0 {
		t.Skip("level-0 tree has no edges in this draw")
	}
	a, _ := topNM.ToFull(edges[len(edges)-1].A)
	b, _ := topNM.ToFull(edges[len(edges)-1].B)
	rep, err := s.Recover(failure.LinkDown(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Level != 0 || rep.DomainID != -1 {
		t.Errorf("recovery level = %d domain %d, want level 0", rep.Level, rep.DomainID)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverNodeFailure(t *testing.T) {
	ts, src := buildTS(t, 6)
	s, err := New(ts, src, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A transit-node failure is attributed to the level-0 domain.
	rep, err := s.Recover(failure.NodeDown(ts.Transit.Nodes[len(ts.Transit.Nodes)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Level != 0 || rep.DomainID != -1 {
		t.Errorf("recovery level = %d domain %d, want level 0", rep.Level, rep.DomainID)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinErrors(t *testing.T) {
	ts, src := buildTS(t, 7)
	s, err := New(ts, src, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Join(ts.Transit.Nodes[0]); err == nil {
		t.Error("transit nodes cannot be receivers")
	}
	if err := s.Join(graph.NodeID(ts.Graph.NumNodes() + 4)); err == nil {
		t.Error("unknown node should fail")
	}
	if err := s.Leave(ts.Stubs[0].Nodes[0]); err == nil {
		t.Error("leave of non-member should fail")
	}
}
