package hierarchy

import (
	"errors"
	"fmt"
	"slices"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

// NLevelSession generalizes the 2-level recovery architecture to an N-level
// domain hierarchy (the extension §3.3.3 sketches): every domain runs its
// own SMRP sub-session over its nodes plus its children's gateways; agents
// relay across levels; a failure is recovered entirely inside the deepest
// domain containing it.
type NLevelSession struct {
	topo   *topology.NLevelTopology
	cfg    core.Config
	source graph.NodeID

	// sessions[i] is domain i's sub-session; sourceChain lists domain
	// indices from the source's domain up to the root.
	sessions    []*domainSession
	sourceChain []int
	onChain     map[int]bool
	members     map[graph.NodeID]bool
}

// NewNLevel builds an N-level session over t with the true source at src.
func NewNLevel(t *topology.NLevelTopology, src graph.NodeID, cfg core.Config) (*NLevelSession, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	srcDom := t.DomainOf(src)
	if srcDom < 0 {
		return nil, fmt.Errorf("hierarchy: source %d in no domain", src)
	}
	s := &NLevelSession{
		topo:    t,
		cfg:     cfg,
		source:  src,
		onChain: make(map[int]bool),
		members: make(map[graph.NodeID]bool),
	}
	for d := srcDom; d != -1; d = t.Domains[d].Parent {
		s.sourceChain = append(s.sourceChain, d)
		s.onChain[d] = true
	}

	// Build every domain's sub-session. The session graph covers the
	// domain's nodes plus its children's gateways. The root of the session:
	//   - the true source, in the source's own domain;
	//   - the gateway of the chain child, in ancestors of the source domain
	//     (the relaying agent, Figure 6's A₁ generalized);
	//   - the domain's own gateway everywhere else (data arrives from the
	//     parent through it).
	s.sessions = make([]*domainSession, len(t.Domains))
	for i := range t.Domains {
		d := &t.Domains[i]
		nodes := append([]graph.NodeID(nil), d.Nodes...)
		for _, c := range d.Children {
			nodes = append(nodes, t.Domains[c].Gateway)
		}
		root := d.Gateway
		switch {
		case i == srcDom:
			root = src
		case s.onChain[i]:
			root = t.Domains[s.chainChild(i)].Gateway
		}
		ds, err := newDomainSession(t.Graph, i, nodes, root, d.Gateway, cfg)
		if err != nil {
			return nil, fmt.Errorf("hierarchy: domain %d: %w", i, err)
		}
		s.sessions[i] = ds
	}

	// Wire the upward relay chain: in every source-chain domain with a
	// parent, the domain's own gateway joins as a member so it can push the
	// stream up into the parent's session (where it is the root).
	for _, i := range s.sourceChain {
		d := &t.Domains[i]
		if d.Parent == -1 {
			continue
		}
		ds := s.sessions[i]
		if !ds.isMember(d.Gateway) {
			if _, err := ds.join(d.Gateway); err != nil {
				return nil, fmt.Errorf("hierarchy: relay agent of domain %d: %w", i, err)
			}
		}
	}
	return s, nil
}

// chainChild returns the source-chain child of chain domain i.
func (s *NLevelSession) chainChild(i int) int {
	for k, d := range s.sourceChain {
		if d == i && k > 0 {
			return s.sourceChain[k-1]
		}
	}
	return -1
}

// Join admits receiver n; agents along the path toward the root join their
// parent sessions transparently as needed.
func (s *NLevelSession) Join(n graph.NodeID) error {
	if s.members[n] {
		return fmt.Errorf("hierarchy: %d already a member", n)
	}
	di := s.topo.DomainOf(n)
	if di < 0 {
		return fmt.Errorf("hierarchy: join %d: %w", n, ErrUnknownNode)
	}
	ds := s.sessions[di]
	if !ds.isMember(n) {
		if _, err := ds.join(n); err != nil {
			return fmt.Errorf("hierarchy: join %d in domain %d: %w", n, di, err)
		}
	}
	s.members[n] = true
	// Hook the domain chain into the delivery structure: for every domain
	// from n's up to (but excluding) the first that already carries the
	// stream, the domain's gateway joins the parent session.
	for d := di; d != -1; d = s.topo.Domains[d].Parent {
		if s.onChain[d] {
			break // the source chain always carries the stream
		}
		parent := s.topo.Domains[d].Parent
		if parent == -1 {
			break
		}
		gw := s.topo.Domains[d].Gateway
		ps := s.sessions[parent]
		if ps.isMember(gw) || gw == ps.agentRoot() {
			break // already delivered here
		}
		if _, err := ps.join(gw); err != nil {
			return fmt.Errorf("hierarchy: agent %d join domain %d: %w", gw, parent, err)
		}
	}
	return nil
}

// agentRoot returns the domain session's root in full-graph IDs.
func (d *domainSession) agentRoot() graph.NodeID {
	sub := d.session.Tree().Source()
	full, _ := d.nm.ToFull(sub)
	return full
}

// Leave removes receiver n. Agent chains are left in place (they expire via
// soft state in a deployment; Validate tolerates relay-only domains).
func (s *NLevelSession) Leave(n graph.NodeID) error {
	if !s.members[n] {
		return fmt.Errorf("hierarchy: %d is not a member", n)
	}
	di := s.topo.DomainOf(n)
	ds := s.sessions[di]
	gwRelay := s.onChain[di] && n == s.topo.Domains[di].Gateway
	if !gwRelay {
		if err := ds.leave(n); err != nil {
			return err
		}
	}
	delete(s.members, n)
	return nil
}

// Members returns the receivers in ascending order.
func (s *NLevelSession) Members() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(s.members))
	for m := range s.members {
		out = append(out, m)
	}
	slices.Sort(out)
	return out
}

// DomainSession exposes domain i's sub-session and node map.
func (s *NLevelSession) DomainSession(i int) (*core.Session, *graph.NodeMap, error) {
	if i < 0 || i >= len(s.sessions) {
		return nil, nil, fmt.Errorf("hierarchy: no domain %d", i)
	}
	return s.sessions[i].session, s.sessions[i].nm, nil
}

// EndToEndDelay computes the delivery delay to member m across the domain
// hierarchy: up the source chain agent by agent to the deepest common
// ancestor, then down the member's chain gateway by gateway.
func (s *NLevelSession) EndToEndDelay(m graph.NodeID) (float64, error) {
	if !s.members[m] {
		return 0, fmt.Errorf("hierarchy: %d is not a member", m)
	}
	// Member's chain from its domain up to the root.
	var mChain []int
	for d := s.topo.DomainOf(m); d != -1; d = s.topo.Domains[d].Parent {
		mChain = append(mChain, d)
	}
	onMChain := make(map[int]int, len(mChain)) // domain → position
	for k, d := range mChain {
		onMChain[d] = k
	}
	// Ascend the source chain accumulating agent-relay delay until hitting
	// a domain on m's chain (the deepest common ancestor).
	var cum float64
	common := -1
	for _, d := range s.sourceChain {
		if _, ok := onMChain[d]; ok {
			common = d
			break
		}
		// Delay from this domain's session root to its gateway (the relay
		// handoff into the parent, where that gateway is the root).
		v, err := s.delayIn(d, s.topo.Domains[d].Gateway)
		if err != nil {
			return 0, err
		}
		cum += v
	}
	if common == -1 {
		return 0, errors.New("hierarchy: domain chains share no ancestor")
	}
	// Descend from the common ancestor to m.
	for k := onMChain[common]; k >= 0; k-- {
		d := mChain[k]
		target := m
		if k > 0 {
			target = s.topo.Domains[mChain[k-1]].Gateway
		}
		v, err := s.delayIn(d, target)
		if err != nil {
			return 0, err
		}
		cum += v
	}
	return cum, nil
}

// delayIn returns the delay from domain d's session root to node n (full
// IDs).
func (s *NLevelSession) delayIn(d int, n graph.NodeID) (float64, error) {
	ds := s.sessions[d]
	sub, ok := ds.nm.ToSub(n)
	if !ok {
		return 0, fmt.Errorf("hierarchy: node %d not in domain %d", n, d)
	}
	return ds.session.Tree().DelayTo(sub)
}

// Recover heals a link failure inside the deepest domain containing both
// endpoints (cross-level gateway uplinks belong to the parent domain). All
// other domains are untouched.
func (s *NLevelSession) Recover(f failure.Failure) (*RecoveryReport, error) {
	if f.Kind != failure.LinkFailure {
		return nil, fmt.Errorf("%w in the N-level model (only link failures are domain-attributable)", ErrUnsupportedFailure)
	}
	du := s.topo.DomainOf(f.Edge.A)
	dv := s.topo.DomainOf(f.Edge.B)
	if du < 0 || dv < 0 {
		return nil, ErrFailureOutsideDomains
	}
	target := du
	if du != dv {
		// A gateway uplink: handled by the parent side.
		if s.topo.Domains[du].Parent == dv {
			target = dv
		} else if s.topo.Domains[dv].Parent == du {
			target = du
		} else {
			return nil, fmt.Errorf("hierarchy: edge %v spans unrelated domains %d/%d", f.Edge, du, dv)
		}
	}
	ds := s.sessions[target]
	a, okA := ds.nm.ToSub(f.Edge.A)
	b, okB := ds.nm.ToSub(f.Edge.B)
	if !okA || !okB {
		return nil, fmt.Errorf("hierarchy: failure %v not inside domain %d's session", f, target)
	}
	rep, err := ds.session.Recover(failure.LinkDown(a, b))
	if err != nil {
		return nil, err
	}
	return &RecoveryReport{
		DomainID:      target,
		Level:         s.topo.Domains[target].Level,
		Heal:          rep,
		NodesInDomain: len(s.topo.Domains[target].Nodes) + len(s.topo.Domains[target].Children),
	}, nil
}

// SettledWork sums the settled-node work counters across every domain
// sub-session: enum is candidate-enumeration work (joins, reshapes), heal is
// failure-recovery sweep work. Both are deterministic, making them the
// megascale study's CI-stable unit of comparison against a flat session.
func (s *NLevelSession) SettledWork() (enum, heal int) {
	for _, ds := range s.sessions {
		st := ds.session.Stats()
		enum += st.EnumSettled
		heal += st.HealSettled
	}
	return enum, heal
}

// SubgraphBytes reports the deterministic memory footprint of the per-domain
// induced subgraphs the sub-sessions route over — the memory the hierarchy
// pays on top of the shared full topology in exchange for domain-confined
// recovery. The sum is O(N·avg-degree) total because every node belongs to
// exactly one domain (gateways additionally appear in their parent's
// session).
func (s *NLevelSession) SubgraphBytes() int64 {
	var total int64
	for _, ds := range s.sessions {
		total += ds.session.Graph().MemoryFootprint()
	}
	return total
}

// NumDomains returns the number of domain sub-sessions.
func (s *NLevelSession) NumDomains() int { return len(s.sessions) }

// Validate checks every domain session's structural invariants.
func (s *NLevelSession) Validate() error {
	for i, ds := range s.sessions {
		if err := ds.session.Tree().Validate(); err != nil {
			return fmt.Errorf("hierarchy: domain %d: %w", i, err)
		}
	}
	return nil
}
