package hierarchy

import (
	"testing"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

// buildNLevel generates the default 3-level topology and picks a source in
// the first leaf domain.
func buildNLevel(t *testing.T, seed uint64) (*topology.NLevelTopology, graph.NodeID) {
	t.Helper()
	nt, err := topology.GenerateNLevel(topology.DefaultNLevelConfig(), topology.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	leaves := nt.Leaves()
	if len(leaves) == 0 {
		t.Fatal("no leaf domains")
	}
	leaf := nt.Domains[leaves[0]]
	for _, n := range leaf.Nodes {
		if n != leaf.Gateway {
			return nt, n
		}
	}
	t.Fatal("no non-gateway node")
	return nil, 0
}

func TestGenerateNLevelShape(t *testing.T) {
	cfg := topology.DefaultNLevelConfig()
	nt, err := topology.GenerateNLevel(cfg, topology.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	wantDomains := 1 + cfg.Fanout + cfg.Fanout*cfg.Fanout
	if len(nt.Domains) != wantDomains {
		t.Fatalf("domains = %d, want %d", len(nt.Domains), wantDomains)
	}
	if nt.Graph.NumNodes() != wantDomains*cfg.NodesPerDomain {
		t.Errorf("nodes = %d", nt.Graph.NumNodes())
	}
	if !nt.Graph.Connected(nil) {
		t.Error("hierarchy must be connected")
	}
	// Parent/child wiring and levels.
	for _, d := range nt.Domains {
		if d.Parent == -1 {
			if d.Level != 0 || d.ID != nt.Root {
				t.Errorf("root domain mis-wired: %+v", d)
			}
			continue
		}
		p := nt.Domains[d.Parent]
		if p.Level != d.Level-1 {
			t.Errorf("domain %d level %d under parent level %d", d.ID, d.Level, p.Level)
		}
		if !nt.Graph.HasEdge(d.Gateway, d.Attach) {
			t.Errorf("domain %d uplink missing", d.ID)
		}
		if nt.DomainOf(d.Attach) != p.ID {
			t.Errorf("attach of %d not owned by parent", d.ID)
		}
	}
	// Every node is owned by exactly one domain.
	seen := map[graph.NodeID]bool{}
	for _, d := range nt.Domains {
		for _, n := range d.Nodes {
			if seen[n] {
				t.Fatalf("node %d in two domains", n)
			}
			seen[n] = true
		}
	}
	if len(nt.Leaves()) != cfg.Fanout*cfg.Fanout {
		t.Errorf("leaves = %d", len(nt.Leaves()))
	}
	if nt.DomainOf(graph.NodeID(nt.Graph.NumNodes()+1)) != -1 {
		t.Error("unknown node should map to -1")
	}
}

func TestGenerateNLevelValidation(t *testing.T) {
	bad := topology.DefaultNLevelConfig()
	bad.Levels = 1
	if _, err := topology.GenerateNLevel(bad, topology.NewRNG(1)); err == nil {
		t.Error("Levels=1 should fail")
	}
	bad2 := topology.DefaultNLevelConfig()
	bad2.Shrink = 1.5
	if _, err := topology.GenerateNLevel(bad2, topology.NewRNG(1)); err == nil {
		t.Error("Shrink >= 1 should fail")
	}
}

func TestNLevelSessionJoinsAcrossLevels(t *testing.T) {
	nt, src := buildNLevel(t, 11)
	s, err := NewNLevel(nt, src, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// One member from every domain (including the root/core domain).
	var members []graph.NodeID
	for _, d := range nt.Domains {
		for _, n := range d.Nodes {
			if n != d.Gateway && n != src {
				members = append(members, n)
				break
			}
		}
	}
	for _, m := range members {
		if err := s.Join(m); err != nil {
			t.Fatalf("join %d: %v", m, err)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Members()) != len(members) {
		t.Errorf("members = %d, want %d", len(s.Members()), len(members))
	}
	for _, m := range members {
		d, err := s.EndToEndDelay(m)
		if err != nil {
			t.Fatalf("delay %d: %v", m, err)
		}
		if d <= 0 {
			t.Errorf("member %d delay %v", m, d)
		}
	}
	if err := s.Join(members[0]); err == nil {
		t.Error("duplicate join should fail")
	}
	if err := s.Join(graph.NodeID(nt.Graph.NumNodes() + 7)); err == nil {
		t.Error("unknown node should fail")
	}
}

func TestNLevelDomainConfinedRecovery(t *testing.T) {
	nt, src := buildNLevel(t, 12)
	s, err := NewNLevel(nt, src, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Members in two different leaf domains far from the source.
	leaves := nt.Leaves()
	var victim graph.NodeID = graph.Invalid
	var victimDomain int
	joined := 0
	for _, li := range leaves {
		d := nt.Domains[li]
		if nt.DomainOf(src) == li {
			continue
		}
		for _, n := range d.Nodes {
			if n != d.Gateway {
				if err := s.Join(n); err != nil {
					t.Fatal(err)
				}
				joined++
				if victim == graph.Invalid {
					victim, victimDomain = n, li
				}
				break
			}
		}
	}
	if joined < 2 || victim == graph.Invalid {
		t.Skip("not enough leaf members in this draw")
	}
	// Worst-case link inside the victim's domain session.
	sess, nm, err := s.DomainSession(victimDomain)
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := nm.ToSub(victim)
	fSub, err := failure.WorstCaseFor(sess.Tree(), sub)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := nm.ToFull(fSub.Edge.A)
	b, _ := nm.ToFull(fSub.Edge.B)

	// Snapshot all other domain trees.
	type snap []graph.EdgeID
	before := map[int]snap{}
	for i := range nt.Domains {
		if i == victimDomain {
			continue
		}
		o, _, err := s.DomainSession(i)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = o.Tree().Edges()
	}

	rep, err := s.Recover(failure.LinkDown(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if rep.DomainID != victimDomain {
		// The worst-case link may be the domain's uplink handled by the
		// parent — also legitimate confinement.
		if nt.Domains[victimDomain].Parent != rep.DomainID {
			t.Errorf("recovery in domain %d, expected %d or its parent", rep.DomainID, victimDomain)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, sn := range before {
		if i == rep.DomainID {
			continue
		}
		o, _, err := s.DomainSession(i)
		if err != nil {
			t.Fatal(err)
		}
		after := o.Tree().Edges()
		if len(after) != len(sn) {
			t.Errorf("domain %d changed during foreign recovery", i)
			continue
		}
		for k := range after {
			if after[k] != sn[k] {
				t.Errorf("domain %d edge %d changed", i, k)
			}
		}
	}
}

func TestNLevelLeave(t *testing.T) {
	nt, src := buildNLevel(t, 13)
	s, err := NewNLevel(nt, src, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	leaf := nt.Domains[nt.Leaves()[len(nt.Leaves())-1]]
	var m graph.NodeID = graph.Invalid
	for _, n := range leaf.Nodes {
		if n != leaf.Gateway && n != src {
			m = n
			break
		}
	}
	if m == graph.Invalid {
		t.Skip("no candidate member")
	}
	if err := s.Join(m); err != nil {
		t.Fatal(err)
	}
	if err := s.Leave(m); err != nil {
		t.Fatal(err)
	}
	if err := s.Leave(m); err == nil {
		t.Error("double leave should fail")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNLevelRejectsNodeFailure(t *testing.T) {
	nt, src := buildNLevel(t, 14)
	s, err := NewNLevel(nt, src, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(failure.NodeDown(0)); err == nil {
		t.Error("node failures are not attributable")
	}
}
