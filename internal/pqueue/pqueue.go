// Package pqueue provides a small allocation-free generic binary min-heap.
//
// It replaces container/heap on the repository's hot paths (the Dijkstra
// core in internal/graph and the event queue in internal/eventsim), where
// container/heap's interface-based API boxes every element into an `any` on
// Push/Pop — one heap allocation per operation plus a type assertion on the
// way out. The generic heap stores elements inline in a reusable slice, so a
// warmed-up heap performs zero allocations in steady state, and the
// element-type ordering method is statically dispatched (and inlinable) for
// each instantiation.
package pqueue

// Ordered is implemented by heap element types: Before reports whether the
// receiver sorts strictly before other. An element type's Before must define
// a strict weak ordering; ties (neither a.Before(b) nor b.Before(a)) keep an
// unspecified relative order, so element types that need deterministic
// behaviour must break ties themselves (all element types in this repository
// do: by node ID in graph sweeps, by scheduling sequence in eventsim).
type Ordered[E any] interface {
	Before(other E) bool
}

// Heap is a binary min-heap of E. The zero value is an empty heap ready for
// use. Heap is not safe for concurrent use.
//
// Pop zeroes vacated slots, so element types containing pointers do not leak
// through the heap's spare capacity.
type Heap[E Ordered[E]] struct {
	a []E
}

// Len returns the number of queued elements.
func (h *Heap[E]) Len() int { return len(h.a) }

// Reset empties the heap while keeping its storage for reuse.
func (h *Heap[E]) Reset() {
	var zero E
	for i := range h.a {
		h.a[i] = zero
	}
	h.a = h.a[:0]
}

// Grow ensures capacity for at least n elements (pre-warming for
// allocation-free steady state).
func (h *Heap[E]) Grow(n int) {
	if cap(h.a) < n {
		a := make([]E, len(h.a), n)
		copy(a, h.a)
		h.a = a
	}
}

// Push inserts x.
func (h *Heap[E]) Push(x E) {
	h.a = append(h.a, x)
	// Sift up.
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.a[i].Before(h.a[parent]) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

// Peek returns the minimum element without removing it; ok is false when the
// heap is empty.
func (h *Heap[E]) Peek() (min E, ok bool) {
	if len(h.a) == 0 {
		var zero E
		return zero, false
	}
	return h.a[0], true
}

// Pop removes and returns the minimum element; ok is false when the heap is
// empty.
func (h *Heap[E]) Pop() (min E, ok bool) {
	n := len(h.a)
	if n == 0 {
		var zero E
		return zero, false
	}
	min = h.a[0]
	n--
	h.a[0] = h.a[n]
	var zero E
	h.a[n] = zero // do not leak pointers through spare capacity
	h.a = h.a[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		smallest := l
		if r < n && h.a[r].Before(h.a[l]) {
			smallest = r
		}
		if !h.a[smallest].Before(h.a[i]) {
			break
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
	return min, true
}
