package pqueue

import (
	"math/rand"
	"runtime/debug"
	"sort"
	"testing"
)

// item is a test element: ordered by key, ties broken by seq (FIFO).
type item struct {
	key float64
	seq int
}

func (a item) Before(b item) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

func TestHeapOrdersRandomInput(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		var h Heap[item]
		want := make([]item, 0, n)
		for i := 0; i < n; i++ {
			it := item{key: float64(rng.Intn(20)), seq: i}
			h.Push(it)
			want = append(want, it)
		}
		sort.Slice(want, func(i, j int) bool { return want[i].Before(want[j]) })
		if h.Len() != n {
			t.Fatalf("Len = %d, want %d", h.Len(), n)
		}
		for i := 0; i < n; i++ {
			if peek, ok := h.Peek(); !ok || peek != want[i] {
				t.Fatalf("trial %d: Peek[%d] = %v/%v, want %v", trial, i, peek, ok, want[i])
			}
			got, ok := h.Pop()
			if !ok || got != want[i] {
				t.Fatalf("trial %d: Pop[%d] = %v/%v, want %v", trial, i, got, ok, want[i])
			}
		}
		if _, ok := h.Pop(); ok {
			t.Fatal("Pop on empty heap reported ok")
		}
		if _, ok := h.Peek(); ok {
			t.Fatal("Peek on empty heap reported ok")
		}
	}
}

func TestHeapFIFOAtEqualKeys(t *testing.T) {
	var h Heap[item]
	for i := 0; i < 32; i++ {
		h.Push(item{key: 1, seq: i})
	}
	for i := 0; i < 32; i++ {
		got, ok := h.Pop()
		if !ok || got.seq != i {
			t.Fatalf("equal-key pop %d returned seq %d", i, got.seq)
		}
	}
}

func TestHeapReset(t *testing.T) {
	var h Heap[item]
	for i := 0; i < 10; i++ {
		h.Push(item{key: float64(i)})
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d", h.Len())
	}
	h.Push(item{key: 3})
	h.Push(item{key: 1})
	if got, _ := h.Pop(); got.key != 1 {
		t.Fatalf("heap unusable after Reset: popped %v", got)
	}
}

// TestHeapSteadyStateAllocs verifies the heap's reason for existing: a
// warmed-up push/pop cycle performs zero heap allocations (container/heap
// boxes every element into an `any`, costing one allocation per Push).
func TestHeapSteadyStateAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var h Heap[item]
	h.Grow(64)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			h.Push(item{key: float64(64 - i), seq: i})
		}
		for h.Len() > 0 {
			h.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocates %.1f times per run, want 0", allocs)
	}
}

func BenchmarkHeapPushPop(b *testing.B) {
	var h Heap[item]
	h.Grow(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 256; j++ {
			h.Push(item{key: float64((j * 2654435761) % 997), seq: j})
		}
		for h.Len() > 0 {
			h.Pop()
		}
	}
}
