// Package detour implements a precomputed alternate-path recovery baseline
// after Bhosle & Gonzalez ("Algorithms for single link failure recovery and
// related problems", arXiv:0810.3438): every on-tree node precomputes, at the
// moment it is grafted, the best detour it would use if its tree parent
// failed — a path around the parent to a survivor outside the parent's
// subtree. Recovery is then a table lookup plus a graft, shifting the
// settled-node work from the failure instant (SMRP's reactive search) to
// join/graft time.
//
// The table is maintained through the core.RecoveryStrategy seam: the session
// re-invokes Precompute after every tree mutation, and the refresh is
// memoized against Tree.Epoch so a quiet tree costs one compare. On a
// mutation, entries whose node left the tree or whose parent changed are
// recomputed; the rest are kept as precomputed (possibly no-longer-optimal)
// answers, exactly the staleness the scheme trades for O(1) failure response.
// Entries only cover the designed single-failure case — the member's own
// parent (or the parent link) failing; deeper-ancestor or overlapping
// failures invalidate entries against the accumulated mask and fall back to
// the live search, counted in Stats.StrategyFallbacks.
package detour

import (
	"fmt"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
)

// Deterministic per-element sizes of the detour table, in the style of
// graph.MemoryFootprint: fixed constants, never live heap measurement.
const (
	bytesPerEntry    = 48 // key NodeID(8) + parent NodeID(8) + dist float64(8) + path slice header(24)
	bytesPerPathNode = 8  // NodeID per stored path element
)

// entry is one node's precomputed answer to "my parent just failed": the
// parent it was computed against (for invalidation), the detour path
// node→…→survivor, and its weight. A nil path records that no detour existed
// when the node was grafted (the parent is an articulation point for it).
type entry struct {
	parent graph.NodeID
	path   graph.Path
	dist   float64
}

// Strategy is the precomputed-detour recovery strategy. Create with New,
// then install via core.Config.Strategy; one instance serves one session.
type Strategy struct {
	s     *core.Session
	table map[graph.NodeID]entry
	epoch uint64
	ready bool

	precompSettled int
}

// New returns a precomputed-detour strategy with an empty table; the table
// fills as members join the bound session.
func New() *Strategy {
	return &Strategy{table: make(map[graph.NodeID]entry)}
}

// Name implements core.RecoveryStrategy.
func (st *Strategy) Name() string { return "detour" }

// Precompute implements core.RecoveryStrategy: bind the session and bring
// the detour table up to date with the current tree. Memoized against
// Tree.Epoch, so the post-mutation notification is O(1) when nothing
// actually changed.
func (st *Strategy) Precompute(s *core.Session) error {
	if st.s != s {
		st.s = s
		st.table = make(map[graph.NodeID]entry)
		st.ready = false
	}
	t := s.Tree()
	if st.ready && st.epoch == t.Epoch() {
		return nil
	}

	// Invalidate entries the mutation made stale: node left the tree, or is
	// now attached through a different parent. (Deleting while ranging is
	// safe in Go, and deletion order cannot affect the resulting table.)
	for n, e := range st.table {
		p, ok := t.Parent(n)
		if !ok || p != e.parent {
			delete(st.table, n)
		}
	}

	// Compute entries for newly covered nodes in ascending ID order (the
	// order only affects settled-work attribution, and ascending keeps it
	// deterministic). The detour for node v against parent p must end
	// outside p's subtree: when p dies, everything below it is cut off, so
	// a survivor inside would be no survivor at all.
	g := s.Graph()
	src := t.Source()
	for _, v := range t.Nodes() {
		if v == src {
			continue
		}
		if _, ok := st.table[v]; ok {
			continue
		}
		p, ok := t.Parent(v)
		if !ok || p == graph.Invalid {
			continue
		}
		sub, err := t.SubtreeNodes(p)
		if err != nil {
			return fmt.Errorf("detour: subtree of %d: %w", p, err)
		}
		inSub := make(map[graph.NodeID]bool, len(sub))
		for _, n := range sub {
			inSub[n] = true
		}
		mask := graph.NewMaskWithCapacity(g.NumNodes())
		mask.BlockNode(p)
		accept := func(n graph.NodeID) bool {
			return t.OnTree(n) && !inSub[n]
		}
		node, path, d, settled := g.NearestOfCounted(v, mask, accept)
		st.precompSettled += settled
		if node == graph.Invalid {
			// Negative entry: no detour existed at graft time. Kept (and
			// re-examined only when v's parent changes) so refreshes don't
			// re-run a hopeless search after every mutation.
			st.table[v] = entry{parent: p}
			continue
		}
		st.table[v] = entry{parent: p, path: path, dist: d}
	}
	st.epoch = t.Epoch()
	st.ready = true
	return nil
}

// Recover implements core.RecoveryStrategy: offer every disconnected member
// its precomputed detour. RecoverScaffold validates each proposal against
// the accumulated failure mask and the post-flush tree — a stale entry
// (target dead, path crossing a later failure) degrades to the live
// fallback search rather than a wrong graft — and its fixpoint passes give
// interior members of a cut subtree additional chances as the subtree's
// root regrafts and their stored paths regain live on-tree nodes.
func (st *Strategy) Recover(fs []failure.Failure) (*core.HealReport, error) {
	if st.s == nil || !st.ready {
		return nil, fmt.Errorf("detour: %w", core.ErrUnboundStrategy)
	}
	return st.s.RecoverScaffold(fs, func(m graph.NodeID, mask *graph.Mask) (graph.Path, bool) {
		e, ok := st.table[m]
		if !ok || e.path == nil {
			return nil, false
		}
		return e.path, true
	})
}

// StateBytes implements core.RecoveryStrategy: the table's entries at fixed
// per-element sizes.
func (st *Strategy) StateBytes() int64 {
	var b int64
	for _, e := range st.table {
		b += bytesPerEntry + bytesPerPathNode*int64(len(e.path))
	}
	return b
}

// PrecomputeSettled returns the nodes settled building and maintaining the
// detour table — the strategy's precompute-time share of the settled-node
// work the strategies study reports (the counterpart of Stats.HealSettled,
// which stays near zero here by design).
func (st *Strategy) PrecomputeSettled() int { return st.precompSettled }

// TableSize returns the number of table entries (including negative
// entries), for tests and diagnostics.
func (st *Strategy) TableSize() int { return len(st.table) }
