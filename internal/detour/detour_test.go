package detour

import (
	"errors"
	"reflect"
	"testing"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

// TestRecoverPaperFig1 plays the paper's Figure-1 example against the
// precomputed-detour baseline and checks its defining property: recovery is
// a pure table lookup — zero recovery-time settled nodes, zero fallbacks.
// With members {C, D} on the SPF tree S→A→{C, D}, failing node A leaves only
// S alive on the tree, so C's precomputed parent-detour (computed at join
// time, avoiding A, targeting outside A's subtree) is C→D→B→S at distance 6;
// D then reattaches in place as a relay of C's graft.
func TestRecoverPaperFig1(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	st := New()
	cfg := core.DefaultConfig()
	cfg.DThresh = 0 // SPF tree: S→A→C, S→A→D
	cfg.Strategy = st
	s, err := core.NewSession(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []graph.NodeID{3, 4} {
		if _, err := s.Join(m); err != nil {
			t.Fatal(err)
		}
	}
	// One entry per on-tree non-source node: A (negative — its parent is the
	// source, and no survivor exists outside the source's subtree), C, D.
	if st.TableSize() != 3 {
		t.Fatalf("table size = %d, want 3", st.TableSize())
	}
	if e := st.table[1]; e.path != nil {
		t.Errorf("source child A should hold a negative entry, got path %v", e.path)
	}
	if want := (graph.Path{4, 2, 0}); !reflect.DeepEqual(st.table[4].path, want) {
		t.Errorf("D's precomputed detour = %v, want %v", st.table[4].path, want)
	}

	rep, err := s.Recover(failure.NodeDown(1))
	if err != nil {
		t.Fatal(err)
	}
	if rd := rep.RecoveryDistance[3]; rd != 6 {
		t.Errorf("RD_C = %v, want 6 (precomputed C→D→B→S)", rd)
	}
	if want := (graph.Path{3, 4, 2, 0}); !reflect.DeepEqual(rep.Detours[3], want) {
		t.Errorf("C's detour = %v, want %v", rep.Detours[3], want)
	}
	if rd := rep.RecoveryDistance[4]; rd != 0 {
		t.Errorf("RD_D = %v, want 0 (in-place reattach on C's graft)", rd)
	}
	stats := s.Stats()
	if stats.StrategyFallbacks != 0 {
		t.Errorf("fallbacks = %d, want 0 (pure table recovery)", stats.StrategyFallbacks)
	}
	if stats.HealSettled != 0 {
		t.Errorf("recovery settled %d nodes, want 0 (no live search)", stats.HealSettled)
	}
	if err := s.Tree().Validate(); err != nil {
		t.Errorf("tree invalid after recovery: %v", err)
	}
	// The post-recovery notification rebuilt the table for the regrafted
	// tree (S→B→D→C): parents changed, entries follow.
	if st.TableSize() != 3 {
		t.Errorf("table size after recovery = %d, want 3", st.TableSize())
	}
	if e := st.table[3]; e.parent != 4 {
		t.Errorf("C's entry parent = %d, want 4 after regraft", e.parent)
	}
}

// TestTableMaintenance checks the epoch-memoized refresh: joins grow the
// table, leaves shrink it, and a quiet tree leaves it untouched.
func TestTableMaintenance(t *testing.T) {
	rng := topology.NewRNG(99)
	g, err := topology.Waxman(topology.WaxmanConfig{
		N: 30, Alpha: 0.2, Beta: 0.35, EnsureConnected: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	g.EnableSPFCache()
	st := New()
	cfg := core.DefaultConfig()
	cfg.Strategy = st
	s, err := core.NewSession(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	covered := func() int {
		n := 0
		for _, v := range s.Tree().Nodes() {
			if v != s.Tree().Source() {
				n++
			}
		}
		return n
	}
	var members []graph.NodeID
	for _, id := range rng.Sample(g.NumNodes(), 9) {
		if graph.NodeID(id) == 0 {
			continue
		}
		m := graph.NodeID(id)
		if _, err := s.Join(m); err != nil {
			t.Fatalf("join %d: %v", m, err)
		}
		members = append(members, m)
		if st.TableSize() != covered() {
			t.Fatalf("after join %d: table size %d, want %d (every on-tree non-source node)",
				m, st.TableSize(), covered())
		}
	}
	settled := st.PrecomputeSettled()
	if settled <= 0 {
		t.Fatalf("PrecomputeSettled = %d, want > 0", settled)
	}
	if st.StateBytes() <= 0 {
		t.Fatalf("StateBytes = %d, want > 0", st.StateBytes())
	}
	// A no-op notification (same epoch) must not redo any work.
	if err := st.Precompute(s); err != nil {
		t.Fatal(err)
	}
	if st.PrecomputeSettled() != settled {
		t.Errorf("quiet refresh settled nodes: %d -> %d", settled, st.PrecomputeSettled())
	}
	for _, m := range members {
		if err := s.Leave(m); err != nil {
			t.Fatalf("leave %d: %v", m, err)
		}
		if st.TableSize() != covered() {
			t.Fatalf("after leave %d: table size %d, want %d", m, st.TableSize(), covered())
		}
	}
}

// TestUnbound pins the not-precomputed error contract.
func TestUnbound(t *testing.T) {
	if _, err := New().Recover(nil); !errors.Is(err, core.ErrUnboundStrategy) {
		t.Errorf("Recover on unbound strategy = %v, want ErrUnboundStrategy", err)
	}
}
