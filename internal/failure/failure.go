// Package failure models persistent network failures (link cuts, node
// crashes) against multicast trees, and computes the two recovery paths the
// paper compares:
//
//   - local detour: the shortest residual path from a disconnected member to
//     the nearest on-tree node unaffected by the failure (SMRP's recovery);
//   - global detour: the member's new unicast shortest path to the source
//     after routing reconvergence (the SPF/PIM baseline recovery), whose
//     recovery distance counts only links not already on the surviving tree.
//
// It also selects the paper's per-member worst case: the failure of the
// link incident to the source on the member's multicast path (§4.3.1).
package failure

import (
	"errors"
	"fmt"
	"slices"

	"smrp/internal/graph"
	"smrp/internal/multicast"
)

// Kind distinguishes link from node failures.
type Kind int

// Failure kinds. Enum starts at 1 so the zero value is invalid.
const (
	LinkFailure Kind = iota + 1
	NodeFailure
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case LinkFailure:
		return "link"
	case NodeFailure:
		return "node"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Failure is a persistent component failure.
type Failure struct {
	Kind Kind
	Edge graph.EdgeID // valid when Kind == LinkFailure
	Node graph.NodeID // valid when Kind == NodeFailure
}

// LinkDown returns the failure of the undirected link (u, v).
func LinkDown(u, v graph.NodeID) Failure {
	return Failure{Kind: LinkFailure, Edge: graph.MakeEdgeID(u, v)}
}

// NodeDown returns the failure of node n (all incident links die with it).
func NodeDown(n graph.NodeID) Failure {
	return Failure{Kind: NodeFailure, Node: n}
}

// Mask expresses the failure as a traversal mask.
func (f Failure) Mask() *graph.Mask {
	m := graph.NewMask()
	switch f.Kind {
	case LinkFailure:
		m.BlockEdge(f.Edge.A, f.Edge.B)
	case NodeFailure:
		m.BlockNode(f.Node)
	}
	return m
}

// String implements fmt.Stringer.
func (f Failure) String() string {
	switch f.Kind {
	case LinkFailure:
		return fmt.Sprintf("link%v down", f.Edge)
	case NodeFailure:
		return fmt.Sprintf("node %d down", f.Node)
	default:
		return "no failure"
	}
}

// Errors returned by recovery computations.
var (
	// ErrNotDisconnected is returned when recovery is requested for a member
	// the failure did not actually cut off.
	ErrNotDisconnected = errors.New("failure: member is not disconnected")
	// ErrUnrecoverable is returned when no residual path can restore the
	// member (the failure partitions it from the source).
	ErrUnrecoverable = errors.New("failure: no recovery path exists")
	// ErrSourceFailed is returned when the failure takes down the multicast
	// source itself.
	ErrSourceFailed = errors.New("failure: multicast source failed")
)

// TakesDownNode reports whether any failure in fs is a node failure of n.
// Recovery entry points use it with the multicast source to reject a batch
// that would take the source down *before* any session state is mutated —
// a source failure has no recovery (see ErrSourceFailed), so folding it
// into an accumulated mask on a rejected request would corrupt the session.
func TakesDownNode(fs []Failure, n graph.NodeID) bool {
	for _, f := range fs {
		if f.Kind == NodeFailure && f.Node == n {
			return true
		}
	}
	return false
}

// WorstCaseFor returns the paper's worst-case failure for member m on tree
// t: the on-tree link incident to the source on m's multicast path. This
// failure disables the largest possible portion of m's path.
func WorstCaseFor(t *multicast.Tree, m graph.NodeID) (Failure, error) {
	p, err := t.PathToSource(m)
	if err != nil {
		return Failure{}, err
	}
	if len(p) < 2 {
		return Failure{}, fmt.Errorf("worst case for %d: %w: member is the source", m, ErrNotDisconnected)
	}
	// p runs member→…→source; the source-incident link is the last hop.
	return LinkDown(p[len(p)-1], p[len(p)-2]), nil
}

// SurvivingNodes returns the set of on-tree nodes still connected to the
// source over tree edges after applying the failure mask. The source is
// surviving unless it failed itself, in which case the set is empty.
func SurvivingNodes(t *multicast.Tree, mask *graph.Mask) map[graph.NodeID]bool {
	out := make(map[graph.NodeID]bool, t.NumNodes())
	src := t.Source()
	if mask.NodeBlocked(src) {
		return out
	}
	out[src] = true
	stack := []graph.NodeID{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, k := range t.Children(n) {
			if mask.NodeBlocked(k) || mask.EdgeBlocked(n, k) {
				continue
			}
			out[k] = true
			stack = append(stack, k)
		}
	}
	return out
}

// DisconnectedMembers returns the members cut off from the source by the
// failure, in ascending order. Members that failed themselves (node
// failures) are excluded — they are gone, not disconnected.
func DisconnectedMembers(t *multicast.Tree, mask *graph.Mask) []graph.NodeID {
	surviving := SurvivingNodes(t, mask)
	var out []graph.NodeID
	for _, m := range t.Members() {
		if !surviving[m] && !mask.NodeBlocked(m) {
			out = append(out, m)
		}
	}
	slices.Sort(out)
	return out
}

// LocalDetour computes SMRP's local recovery for disconnected member m: the
// shortest path in the residual network from m to the nearest on-tree node
// unaffected by the failure. The returned distance is the paper's recovery
// distance RD_R ("the distance between the disconnected member R and its
// local recovery on-tree node", §4.2). The path runs m → … → survivor.
func LocalDetour(t *multicast.Tree, mask *graph.Mask, m graph.NodeID) (graph.Path, float64, error) {
	surviving := SurvivingNodes(t, mask)
	if len(surviving) == 0 {
		return nil, 0, ErrSourceFailed
	}
	if surviving[m] {
		return nil, 0, fmt.Errorf("local detour for %d: %w", m, ErrNotDisconnected)
	}
	if mask.NodeBlocked(m) {
		return nil, 0, fmt.Errorf("local detour for %d: %w", m, ErrMemberFailed)
	}
	node, p, d := t.Graph().NearestOf(m, mask, func(n graph.NodeID) bool { return surviving[n] })
	if node == graph.Invalid {
		return nil, 0, fmt.Errorf("local detour for %d: %w", m, ErrUnrecoverable)
	}
	return p, d, nil
}

// GlobalDetour computes the SPF baseline recovery for disconnected member m:
// after unicast routing reconverges, m rejoins along its new shortest path
// to the source. Per PIM join semantics the Join_Req travels only until the
// first node that is still on the surviving tree — the segment of new links
// that must be brought into the multicast tree — so the recovery distance is
// the weight of that prefix. The full new path is returned (m → … → source).
func GlobalDetour(t *multicast.Tree, mask *graph.Mask, m graph.NodeID) (graph.Path, float64, error) {
	surviving := SurvivingNodes(t, mask)
	if len(surviving) == 0 {
		return nil, 0, ErrSourceFailed
	}
	if surviving[m] {
		return nil, 0, fmt.Errorf("global detour for %d: %w", m, ErrNotDisconnected)
	}
	if mask.NodeBlocked(m) {
		return nil, 0, fmt.Errorf("global detour for %d: %w", m, ErrMemberFailed)
	}
	g := t.Graph()
	p, _ := g.ShortestPath(m, t.Source(), mask)
	if p == nil {
		return nil, 0, fmt.Errorf("global detour for %d: %w", m, ErrUnrecoverable)
	}
	var rd float64
	for i := 0; i+1 < len(p); i++ {
		if surviving[p[i]] {
			break // merged into the surviving tree; the rest rides it
		}
		w, ok := g.EdgeWeight(p[i], p[i+1])
		if !ok {
			return nil, 0, fmt.Errorf("global detour for %d: %d-%d not an edge", m, p[i], p[i+1])
		}
		rd += w
	}
	return p, rd, nil
}
