package failure

import (
	"errors"
	"fmt"
	"slices"
	"strings"

	"smrp/internal/graph"
	"smrp/internal/topology"
)

// This file models *multi-failure* regimes: sets of correlated failures
// (SRLG-style shared-risk cuts), failure schedules whose events arrive over
// time (including while a previous recovery is still in progress), and the
// repair events that eventually restore components. The single-failure
// primitives in failure.go stay untouched; a Schedule composes them.

// Errors returned by schedule validation and application.
var (
	// ErrBadSchedule is returned when a schedule is structurally invalid
	// (unsorted events, an event with neither failures nor repairs, …).
	ErrBadSchedule = errors.New("failure: invalid schedule")
	// ErrMemberFailed is returned when recovery is requested for a member
	// that failed itself (node failure) — it is gone, not disconnected.
	ErrMemberFailed = errors.New("failure: member itself failed")
)

// ApplyTo folds the failure into an accumulated mask. Applying the same
// failure twice is idempotent (Mask.Block* is).
func (f Failure) ApplyTo(m *graph.Mask) {
	switch f.Kind {
	case LinkFailure:
		m.BlockEdge(f.Edge.A, f.Edge.B)
	case NodeFailure:
		m.BlockNode(f.Node)
	}
}

// RemoveFrom lifts the failure from an accumulated mask (a repair). Links
// that were blocked independently of a repaired node stay blocked.
func (f Failure) RemoveFrom(m *graph.Mask) {
	switch f.Kind {
	case LinkFailure:
		m.UnblockEdge(f.Edge.A, f.Edge.B)
	case NodeFailure:
		m.UnblockNode(f.Node)
	}
}

// SRLG returns the correlated failure group of every link incident to n —
// the canonical shared-risk-link-group: one conduit cut takes out all fibers
// routed through it. The node itself stays up (unlike NodeDown).
func SRLG(g *graph.Graph, n graph.NodeID) []Failure {
	arcs := g.Neighbors(n)
	out := make([]Failure, 0, len(arcs))
	for _, a := range arcs {
		out = append(out, LinkDown(n, a.To))
	}
	return out
}

// Event is one instant of a failure schedule: a batch of correlated
// failures (applied atomically, SRLG-style) and/or repairs.
type Event struct {
	// At is the virtual time of the event (edge-weight units, matching
	// eventsim.Time).
	At float64
	// Failures are the components that fail at this instant.
	Failures []Failure
	// Repairs are the components restored at this instant.
	Repairs []Failure
}

// Schedule is a time-ordered sequence of failure/repair events — the input
// of the multi-failure chaos harness and of SMRPInstance.InjectSchedule.
type Schedule struct {
	Events []Event
}

// Validate reports whether the schedule is well-formed: events sorted by
// time, each with at least one failure or repair.
func (s Schedule) Validate() error {
	for i, ev := range s.Events {
		if len(ev.Failures) == 0 && len(ev.Repairs) == 0 {
			return fmt.Errorf("%w: event %d is empty", ErrBadSchedule, i)
		}
		if i > 0 && ev.At < s.Events[i-1].At {
			return fmt.Errorf("%w: event %d at t=%v precedes event %d at t=%v",
				ErrBadSchedule, i, ev.At, i-1, s.Events[i-1].At)
		}
	}
	return nil
}

// Sort orders the events by time (stable, preserving same-instant order).
func (s *Schedule) Sort() {
	slices.SortStableFunc(s.Events, func(a, b Event) int {
		switch {
		case a.At < b.At:
			return -1
		case a.At > b.At:
			return 1
		default:
			return 0
		}
	})
}

// NumFailures counts the individual component failures across all events.
func (s Schedule) NumFailures() int {
	n := 0
	for _, ev := range s.Events {
		n += len(ev.Failures)
	}
	return n
}

// NumRepairs counts the individual component repairs across all events.
func (s Schedule) NumRepairs() int {
	n := 0
	for _, ev := range s.Events {
		n += len(ev.Repairs)
	}
	return n
}

// MaskAt returns the accumulated failure mask in effect at time t (events
// with At <= t applied, failures first within an event, then repairs).
func (s Schedule) MaskAt(t float64) *graph.Mask {
	m := graph.NewMask()
	for _, ev := range s.Events {
		if ev.At > t {
			break
		}
		for _, f := range ev.Failures {
			f.ApplyTo(m)
		}
		for _, r := range ev.Repairs {
			r.RemoveFrom(m)
		}
	}
	return m
}

// CumulativeMask returns the mask after the whole schedule has played out.
func (s Schedule) CumulativeMask() *graph.Mask {
	if len(s.Events) == 0 {
		return graph.NewMask()
	}
	return s.MaskAt(s.Events[len(s.Events)-1].At)
}

// String renders the schedule compactly for traces and test failures.
func (s Schedule) String() string {
	var b strings.Builder
	b.WriteString("schedule[")
	for i, ev := range s.Events {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "t=%.3g", ev.At)
		for _, f := range ev.Failures {
			fmt.Fprintf(&b, " %v", f)
		}
		for _, r := range ev.Repairs {
			fmt.Fprintf(&b, " repair(%v)", r)
		}
	}
	b.WriteString("]")
	return b.String()
}

// ChaosConfig parameterizes RandomSchedule.
type ChaosConfig struct {
	// Events is the number of failure events drawn (>= 1).
	Events int
	// MaxPerEvent caps the number of simultaneous link cuts in one SRLG
	// burst event (>= 1).
	MaxPerEvent int
	// PNode is the probability an event is a single node crash.
	PNode float64
	// PSRLG is the probability an event is a correlated burst: every link
	// incident to one node cut at once (the node survives). The remaining
	// probability mass draws 1..MaxPerEvent independent random link cuts.
	PSRLG float64
	// PPartition is the probability that the *last* failure event isolates a
	// chosen victim node entirely (all incident links cut) — a guaranteed
	// full partition exercising the parked-member path.
	PPartition float64
	// Start/Spacing position the events in virtual time: event i fires at
	// Start + i*Spacing. A Spacing smaller than the recovery latency makes
	// later failures land mid-recovery.
	Start, Spacing float64
	// Repair appends one final event (one Spacing after the last failure)
	// repairing every component the schedule failed, so parked members can
	// be re-admitted.
	Repair bool
}

// DefaultChaosConfig returns the chaos harness defaults: three failure
// events (bursty, occasionally partitioning), arriving close enough
// together to overlap recoveries, followed by a full repair.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Events:      3,
		MaxPerEvent: 3,
		PNode:       0.25,
		PSRLG:       0.25,
		PPartition:  0.5,
		Start:       300,
		Spacing:     2,
		Repair:      true,
	}
}

// Validate reports whether the configuration is usable.
func (c ChaosConfig) Validate() error {
	if c.Events < 1 {
		return fmt.Errorf("%w: Events = %d", ErrBadSchedule, c.Events)
	}
	if c.MaxPerEvent < 1 {
		return fmt.Errorf("%w: MaxPerEvent = %d", ErrBadSchedule, c.MaxPerEvent)
	}
	for _, p := range []float64{c.PNode, c.PSRLG, c.PPartition} {
		if p < 0 || p > 1 {
			return fmt.Errorf("%w: probability %v out of [0, 1]", ErrBadSchedule, p)
		}
	}
	if c.Spacing <= 0 {
		return fmt.Errorf("%w: Spacing = %v", ErrBadSchedule, c.Spacing)
	}
	return nil
}

// RandomSchedule draws a seeded multi-failure schedule against g. The source
// node never fails and is never fully isolated by a generated SRLG burst
// (schedules are about surviving member-side damage; a dead source is a
// different, trivially-detected regime covered by ErrSourceFailed). victims
// optionally biases the partition event toward interesting nodes (members);
// when empty, any non-source node may be isolated. The draw consumes rng
// deterministically: equal seeds yield equal schedules.
func RandomSchedule(g *graph.Graph, source graph.NodeID, victims []graph.NodeID, cfg ChaosConfig, rng *topology.RNG) (Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return Schedule{}, err
	}
	n := g.NumNodes()
	if n < 3 {
		return Schedule{}, fmt.Errorf("%w: graph too small (%d nodes)", ErrBadSchedule, n)
	}
	edges := g.Edges() // sorted canonical order: deterministic
	var sched Schedule
	pick := func() graph.NodeID { // any node but the source
		for {
			v := graph.NodeID(rng.Intn(n))
			if v != source {
				return v
			}
		}
	}
	for i := 0; i < cfg.Events; i++ {
		at := cfg.Start + float64(i)*cfg.Spacing
		ev := Event{At: at}
		switch r := rng.Float64(); {
		case i == cfg.Events-1 && rng.Float64() < cfg.PPartition:
			// Full partition of a victim: cut every incident link.
			v := pick()
			if len(victims) > 0 {
				v = victims[rng.Intn(len(victims))]
			}
			ev.Failures = SRLG(g, v)
		case r < cfg.PNode:
			ev.Failures = []Failure{NodeDown(pick())}
		case r < cfg.PNode+cfg.PSRLG:
			// Correlated burst: all links of one node cut at once while the
			// node itself stays up (a conduit cut under a surviving router).
			ev.Failures = SRLG(g, pick())
		default:
			k := 1 + rng.Intn(cfg.MaxPerEvent)
			seen := make(map[graph.EdgeID]bool, k)
			for len(ev.Failures) < k {
				e := edges[rng.Intn(len(edges))]
				if seen[e] {
					continue
				}
				seen[e] = true
				ev.Failures = append(ev.Failures, Failure{Kind: LinkFailure, Edge: e})
			}
		}
		if len(ev.Failures) == 0 {
			ev.Failures = []Failure{NodeDown(pick())}
		}
		sched.Events = append(sched.Events, ev)
	}
	if cfg.Repair {
		last := sched.Events[len(sched.Events)-1]
		rep := Event{At: last.At + cfg.Spacing}
		seen := make(map[Failure]bool)
		for _, ev := range sched.Events {
			for _, f := range ev.Failures {
				if !seen[f] {
					seen[f] = true
					rep.Repairs = append(rep.Repairs, f)
				}
			}
		}
		sched.Events = append(sched.Events, rep)
	}
	if err := sched.Validate(); err != nil {
		return Schedule{}, err
	}
	return sched, nil
}
