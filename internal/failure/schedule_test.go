package failure

import (
	"errors"
	"testing"

	"smrp/internal/graph"
	"smrp/internal/topology"
)

func TestScheduleValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
		ok   bool
	}{
		{name: "empty schedule", s: Schedule{}, ok: true},
		{name: "ordered", s: Schedule{Events: []Event{
			{At: 1, Failures: []Failure{LinkDown(0, 1)}},
			{At: 2, Repairs: []Failure{LinkDown(0, 1)}},
		}}, ok: true},
		{name: "empty event", s: Schedule{Events: []Event{{At: 1}}}, ok: false},
		{name: "unordered", s: Schedule{Events: []Event{
			{At: 2, Failures: []Failure{LinkDown(0, 1)}},
			{At: 1, Failures: []Failure{LinkDown(1, 2)}},
		}}, ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok {
				if !errors.Is(err, ErrBadSchedule) {
					t.Fatalf("Validate() = %v, want ErrBadSchedule", err)
				}
			}
		})
	}
}

func TestScheduleMasks(t *testing.T) {
	s := Schedule{Events: []Event{
		{At: 1, Failures: []Failure{LinkDown(0, 1), NodeDown(3)}},
		{At: 2, Failures: []Failure{LinkDown(1, 2)}},
		{At: 3, Repairs: []Failure{LinkDown(0, 1), NodeDown(3), LinkDown(1, 2)}},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if n, r := s.NumFailures(), s.NumRepairs(); n != 3 || r != 3 {
		t.Fatalf("NumFailures/NumRepairs = %d/%d, want 3/3", n, r)
	}
	m1 := s.MaskAt(1.5)
	if !m1.EdgeBlocked(0, 1) || !m1.NodeBlocked(3) || m1.EdgeBlocked(1, 2) {
		t.Fatalf("MaskAt(1.5) wrong: %+v", m1)
	}
	m2 := s.MaskAt(2)
	if !m2.EdgeBlocked(1, 2) {
		t.Fatal("MaskAt(2) should block 1-2")
	}
	if !s.CumulativeMask().IsEmpty() {
		t.Fatal("CumulativeMask should be empty after the full repair")
	}
}

func TestScheduleSortStable(t *testing.T) {
	s := Schedule{Events: []Event{
		{At: 5, Failures: []Failure{LinkDown(0, 1)}},
		{At: 1, Failures: []Failure{NodeDown(2)}},
		{At: 5, Repairs: []Failure{LinkDown(0, 1)}},
	}}
	s.Sort()
	if s.Events[0].At != 1 {
		t.Fatalf("Sort: first event at %v, want 1", s.Events[0].At)
	}
	// Stable: the t=5 failure event must precede the t=5 repair event.
	if len(s.Events[1].Failures) != 1 || len(s.Events[2].Repairs) != 1 {
		t.Fatal("Sort must be stable for same-instant events")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("sorted schedule invalid: %v", err)
	}
}

func TestChaosConfigValidate(t *testing.T) {
	bad := []ChaosConfig{
		{Events: 0, MaxPerEvent: 1, Spacing: 1},
		{Events: 1, MaxPerEvent: 0, Spacing: 1},
		{Events: 1, MaxPerEvent: 1, Spacing: 0},
		{Events: 1, MaxPerEvent: 1, Spacing: 1, PNode: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrBadSchedule) {
			t.Errorf("case %d: Validate() = %v, want ErrBadSchedule", i, err)
		}
	}
	if err := DefaultChaosConfig().Validate(); err != nil {
		t.Fatalf("DefaultChaosConfig invalid: %v", err)
	}
}

func TestRandomScheduleDeterministicAndSourceSafe(t *testing.T) {
	g, err := topology.Waxman(topology.WaxmanConfig{
		N: 40, Alpha: 0.3, Beta: 0.3, EnsureConnected: true,
	}, topology.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	source := graph.NodeID(0)
	victims := []graph.NodeID{5, 9, 13}

	draw := func(seed uint64) Schedule {
		s, err := RandomSchedule(g, source, victims, DefaultChaosConfig(), topology.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	for seed := uint64(1); seed < 30; seed++ {
		a, b := draw(seed), draw(seed)
		if a.String() != b.String() {
			t.Fatalf("seed %d: RandomSchedule not deterministic:\n%s\n%s", seed, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, ev := range a.Events {
			for _, f := range ev.Failures {
				if f.Kind == NodeFailure && f.Node == source {
					t.Fatalf("seed %d: schedule fails the source: %s", seed, a)
				}
			}
		}
		// The default config repairs everything it broke.
		if !a.CumulativeMask().IsEmpty() {
			t.Fatalf("seed %d: cumulative mask not empty: %s", seed, a)
		}
	}
}
