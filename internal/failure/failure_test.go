package failure

import (
	"errors"
	"math"
	"testing"

	"smrp/internal/graph"
	"smrp/internal/multicast"
	"smrp/internal/topology"
)

// fig1SPFTree builds the paper's Figure 1 SPF tree: members C(3), D(4) via A.
func fig1SPFTree(t *testing.T) *multicast.Tree {
	t.Helper()
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := multicast.New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Graft(graph.Path{0, 1, 3}, true); err != nil {
		t.Fatal(err)
	}
	if err := tr.Graft(graph.Path{1, 4}, true); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestKindAndFailureStrings(t *testing.T) {
	if LinkFailure.String() != "link" || NodeFailure.String() != "node" {
		t.Error("Kind String mismatch")
	}
	if Kind(0).String() == "" {
		t.Error("unknown kind should render")
	}
	f := LinkDown(2, 1)
	if f.String() != "link(1-2) down" {
		t.Errorf("LinkDown String = %q", f.String())
	}
	if NodeDown(3).String() != "node 3 down" {
		t.Errorf("NodeDown String = %q", NodeDown(3).String())
	}
	if (Failure{}).String() != "no failure" {
		t.Error("zero Failure should render as no failure")
	}
}

func TestMask(t *testing.T) {
	lm := LinkDown(1, 4).Mask()
	if !lm.EdgeBlocked(4, 1) || lm.NodeBlocked(1) {
		t.Error("link mask wrong")
	}
	nm := NodeDown(2).Mask()
	if !nm.NodeBlocked(2) || !nm.EdgeBlocked(2, 0) {
		t.Error("node mask wrong")
	}
}

func TestWorstCaseFor(t *testing.T) {
	tr := fig1SPFTree(t)
	f, err := WorstCaseFor(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != LinkFailure || f.Edge != graph.MakeEdgeID(0, 1) {
		t.Errorf("worst case for D = %v, want link (0-1)", f)
	}
	if _, err := WorstCaseFor(tr, 2); err == nil {
		t.Error("worst case for off-tree node should error")
	}
}

func TestWorstCaseForSource(t *testing.T) {
	tr := fig1SPFTree(t)
	if err := tr.Graft(graph.Path{0}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := WorstCaseFor(tr, 0); err == nil {
		t.Error("worst case for the source should error")
	}
}

func TestSurvivingNodes(t *testing.T) {
	tr := fig1SPFTree(t)
	// L_AD fails: D cut off, S/A/C survive.
	mask := LinkDown(1, 4).Mask()
	surv := SurvivingNodes(tr, mask)
	for _, n := range []graph.NodeID{0, 1, 3} {
		if !surv[n] {
			t.Errorf("node %d should survive", n)
		}
	}
	if surv[4] {
		t.Error("D should be disconnected")
	}
	// L_SA fails: only S survives.
	surv2 := SurvivingNodes(tr, LinkDown(0, 1).Mask())
	if len(surv2) != 1 || !surv2[0] {
		t.Errorf("after L_SA: surviving = %v", surv2)
	}
	// Source node failure: nothing survives.
	surv3 := SurvivingNodes(tr, NodeDown(0).Mask())
	if len(surv3) != 0 {
		t.Errorf("after source failure: surviving = %v", surv3)
	}
}

func TestDisconnectedMembers(t *testing.T) {
	tr := fig1SPFTree(t)
	got := DisconnectedMembers(tr, LinkDown(0, 1).Mask())
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("disconnected = %v, want [3 4]", got)
	}
	// A failed member is gone, not disconnected.
	got2 := DisconnectedMembers(tr, NodeDown(3).Mask())
	if len(got2) != 0 {
		t.Errorf("disconnected after member-node failure = %v", got2)
	}
	// Node A fails: both members disconnected.
	got3 := DisconnectedMembers(tr, NodeDown(1).Mask())
	if len(got3) != 2 {
		t.Errorf("disconnected after relay failure = %v", got3)
	}
}

// TestFigure1Detours checks the paper's motivating numbers: after L_AD,
// D's local detour is D→C (RD 2) while the SPF global detour is D→B→S
// (RD 4, all links new).
func TestFigure1Detours(t *testing.T) {
	tr := fig1SPFTree(t)
	mask := LinkDown(1, 4).Mask()

	p, rd, err := LocalDetour(tr, mask, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rd != 2 || p.String() != "4→3" {
		t.Errorf("local detour = %v (RD %v), want D→C (2)", p, rd)
	}

	gp, grd, err := GlobalDetour(tr, mask, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gp.String() != "4→2→0" {
		t.Errorf("global detour path = %v, want D→B→S", gp)
	}
	if grd != 4 {
		t.Errorf("global RD = %v, want 4", grd)
	}
}

// TestGlobalDetourReusesSurvivingTree checks that links already on the
// surviving tree do not count toward the global recovery distance.
func TestGlobalDetourReusesSurvivingTree(t *testing.T) {
	// Line S(0)-1-2-3 with member at 3 and a shortcut 3-4-1 back to node 1.
	g := graph.New(5)
	for _, e := range []struct {
		u, v graph.NodeID
		w    float64
	}{
		{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 1, 1},
	} {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := multicast.New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Members at 2 and 3.
	if err := tr.Graft(graph.Path{0, 1, 2}, true); err != nil {
		t.Fatal(err)
	}
	if err := tr.Graft(graph.Path{2, 3}, true); err != nil {
		t.Fatal(err)
	}
	// Fail link 2-3: member 3 cut; surviving tree keeps S-1-2.
	mask := LinkDown(2, 3).Mask()
	p, rd, err := GlobalDetour(tr, mask, 3)
	if err != nil {
		t.Fatal(err)
	}
	// New shortest path 3→4→1→0; only links 3-4 and 4-1 are new (1-0 is on
	// the surviving tree).
	if p.String() != "3→4→1→0" {
		t.Errorf("path = %v", p)
	}
	if rd != 2 {
		t.Errorf("RD = %v, want 2 (tree link 1-0 reused)", rd)
	}
}

func TestDetourErrors(t *testing.T) {
	tr := fig1SPFTree(t)
	mask := LinkDown(1, 4).Mask()
	// C (3) is not disconnected.
	if _, _, err := LocalDetour(tr, mask, 3); !errors.Is(err, ErrNotDisconnected) {
		t.Errorf("local detour for connected member err = %v", err)
	}
	if _, _, err := GlobalDetour(tr, mask, 3); !errors.Is(err, ErrNotDisconnected) {
		t.Errorf("global detour for connected member err = %v", err)
	}
	// Source failure.
	if _, _, err := LocalDetour(tr, NodeDown(0).Mask(), 4); !errors.Is(err, ErrSourceFailed) {
		t.Errorf("source failure err = %v", err)
	}
	// Member's own node failed.
	if _, _, err := LocalDetour(tr, NodeDown(4).Mask(), 4); err == nil {
		t.Error("detour for failed member should error")
	}
	if _, _, err := GlobalDetour(tr, NodeDown(4).Mask(), 4); err == nil {
		t.Error("global detour for failed member should error")
	}
}

func TestDetourUnrecoverable(t *testing.T) {
	// S(0)-1 with member 1 and no alternative path.
	g := graph.New(2)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	tr, err := multicast.New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Graft(graph.Path{0, 1}, true); err != nil {
		t.Fatal(err)
	}
	mask := LinkDown(0, 1).Mask()
	if _, _, err := LocalDetour(tr, mask, 1); !errors.Is(err, ErrUnrecoverable) {
		t.Errorf("err = %v, want ErrUnrecoverable", err)
	}
	if _, _, err := GlobalDetour(tr, mask, 1); !errors.Is(err, ErrUnrecoverable) {
		t.Errorf("err = %v, want ErrUnrecoverable", err)
	}
}

// TestLocalNeverExceedsGlobalOnSameTree: on the SAME tree, the local detour
// reaches the nearest surviving node, so its RD can never exceed the weight
// of the global detour's full new path; and both recover whenever recovery
// is possible at all.
func TestLocalNeverExceedsGlobalOnSameTree(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		rng := topology.NewRNG(seed)
		g, err := topology.Waxman(topology.WaxmanConfig{
			N: 60, Alpha: 0.2, Beta: topology.DefaultBeta, EnsureConnected: true,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := multicast.New(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Build the SPF tree for 15 random members.
		spt := g.Dijkstra(0, nil)
		for _, m := range rng.Sample(59, 15) {
			n := graph.NodeID(m + 1)
			if tr.IsMember(n) {
				continue
			}
			if tr.OnTree(n) {
				if err := tr.Graft(graph.Path{n}, true); err != nil {
					t.Fatal(err)
				}
				continue
			}
			p := spt.PathTo(n)
			start := 0
			for i, x := range p {
				if tr.OnTree(x) {
					start = i
				} else {
					break
				}
			}
			if err := tr.Graft(p[start:], true); err != nil {
				t.Fatal(err)
			}
		}
		for _, m := range tr.Members() {
			f, err := WorstCaseFor(tr, m)
			if err != nil {
				t.Fatal(err)
			}
			mask := f.Mask()
			if !inSlice(DisconnectedMembers(tr, mask), m) {
				t.Fatalf("seed %d: worst-case failure did not disconnect %d", seed, m)
			}
			_, lrd, lerr := LocalDetour(tr, mask, m)
			gp, _, gerr := GlobalDetour(tr, mask, m)
			if (lerr == nil) != (gerr == nil) {
				t.Fatalf("seed %d member %d: recoverability mismatch (%v vs %v)", seed, m, lerr, gerr)
			}
			if lerr != nil {
				continue
			}
			gw, err := gp.Weight(g)
			if err != nil {
				t.Fatal(err)
			}
			if lrd > gw+1e-9 {
				t.Errorf("seed %d member %d: local RD %v exceeds full global path %v", seed, m, lrd, gw)
			}
			if lrd <= 0 || math.IsInf(lrd, 0) {
				t.Errorf("seed %d member %d: degenerate local RD %v", seed, m, lrd)
			}
		}
	}
}

func inSlice(s []graph.NodeID, n graph.NodeID) bool {
	for _, v := range s {
		if v == n {
			return true
		}
	}
	return false
}
