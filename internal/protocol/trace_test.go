package protocol

import (
	"testing"

	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
	"smrp/internal/trace"
)

// TestSMRPInstanceTracing checks the event log captures the full lifecycle:
// joins, failure, notices, recoveries.
func TestSMRPInstanceTracing(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SMRP.DThresh = 0
	inst, err := NewSMRPInstance(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	log := trace.New(0)
	inst.SetTrace(log)
	for _, m := range []graph.NodeID{3, 4} {
		if err := inst.ScheduleJoin(1, m); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.InjectFailure(30, failure.LinkDown(1, 4)); err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := len(log.Filter(trace.CatJoin)); got != 2 {
		t.Errorf("join events = %d, want 2", got)
	}
	if got := len(log.Filter(trace.CatFailure)); got != 1 {
		t.Errorf("failure events = %d, want 1", got)
	}
	if got := len(log.Filter(trace.CatNotice)); got != 1 {
		t.Errorf("notice events = %d, want 1", got)
	}
	recov := log.Filter(trace.CatRecovery)
	if len(recov) != 1 || recov[0].Node != 4 {
		t.Errorf("recovery events = %v", recov)
	}
	// Event ordering is chronological.
	es := log.Entries()
	for i := 1; i < len(es); i++ {
		if es[i].At < es[i-1].At {
			t.Fatalf("events out of order: %v then %v", es[i-1], es[i])
		}
	}
}

// TestSPFInstanceTracing checks the baseline's log too.
func TestSPFInstanceTracing(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewSPFInstance(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	log := trace.New(0)
	inst.SetTrace(log)
	for _, m := range []graph.NodeID{3, 4} {
		if err := inst.ScheduleJoin(1, m); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.InjectFailure(30, failure.LinkDown(1, 4)); err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(200); err != nil {
		t.Fatal(err)
	}
	if got := len(log.Filter(trace.CatJoin)); got != 2 {
		t.Errorf("join events = %d", got)
	}
	if got := len(log.Filter(trace.CatRecovery)); got != 1 {
		t.Errorf("recovery events = %d", got)
	}
}

// TestTracingOffByDefault ensures instances run silently with no log set.
func TestTracingOffByDefault(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewSMRPInstance(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ScheduleJoin(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(20); err != nil {
		t.Fatal(err) // nil trace must not panic anywhere
	}
	if !inst.Session().Tree().IsMember(3) {
		t.Error("join failed without trace")
	}
}
