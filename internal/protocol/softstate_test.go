package protocol

import (
	"testing"

	"smrp/internal/eventsim"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

// TestSoftStateExpiryReclaimsSilentMember: a member that crashes (stops
// refreshing without a Leave_Req) loses its branch after HoldTime — the
// robustness property of the paper's soft-state design.
func TestSoftStateExpiryReclaimsSilentMember(t *testing.T) {
	g, err := topology.PaperFig4()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewSMRPInstance(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k, m := range []graph.NodeID{4, 5} {
		if err := inst.ScheduleJoin(eventsim.Time(k+1), m); err != nil {
			t.Fatal(err)
		}
	}
	// Member 5 (G) crashes at t=30.
	if err := inst.SilenceMember(30, 5); err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(100); err != nil {
		t.Fatal(err)
	}
	exp := inst.Expired()
	if len(exp) != 1 || exp[0] != 5 {
		t.Fatalf("expired = %v, want [5]", exp)
	}
	tr := inst.Session().Tree()
	if tr.IsMember(5) || tr.OnTree(5) {
		t.Error("silent member's branch should be reclaimed")
	}
	if !tr.IsMember(4) {
		t.Error("healthy member must survive the audit")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSoftStateSurvivesHealthyRefresh: no member is expired while refreshes
// keep flowing, even over a long horizon.
func TestSoftStateSurvivesHealthyRefresh(t *testing.T) {
	g, err := topology.PaperFig4()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewSMRPInstance(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k, m := range []graph.NodeID{4, 5, 6} {
		if err := inst.ScheduleJoin(eventsim.Time(k+1), m); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.Run(500); err != nil {
		t.Fatal(err)
	}
	if got := inst.Expired(); len(got) != 0 {
		t.Errorf("expired = %v, want none", got)
	}
	if inst.Session().Tree().NumMembers() != 3 {
		t.Errorf("members = %d", inst.Session().Tree().NumMembers())
	}
}

// TestRefreshSurvivesRecovery: a member recovered via local detour must keep
// refreshing on its new branch (and not be expired by the audit later).
func TestRefreshSurvivesRecovery(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SMRP.DThresh = 0
	inst, err := NewSMRPInstance(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []graph.NodeID{3, 4} {
		if err := inst.ScheduleJoin(1, m); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.InjectFailure(30, failure.LinkDown(1, 4)); err != nil {
		t.Fatal(err)
	}
	// Run far beyond HoldTime after the recovery.
	if err := inst.Run(30 + 20*cfg.HoldTime); err != nil {
		t.Fatal(err)
	}
	if len(inst.Restorations()) != 1 {
		t.Fatalf("restorations = %v", inst.Restorations())
	}
	if got := inst.Expired(); len(got) != 0 {
		t.Errorf("recovered member expired: %v", got)
	}
	if !inst.Session().Tree().IsMember(4) {
		t.Error("recovered member lost")
	}
	last, ok := inst.LastRefresh(4)
	if !ok {
		t.Fatal("no refresh bookkeeping for recovered member")
	}
	if float64(inst.Engine().Now()-last) > 2*float64(cfg.RefreshInterval) {
		t.Errorf("refresh loop stalled: last at %v, now %v", last, inst.Engine().Now())
	}
}

func TestSilenceInPastRejected(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewSMRPInstance(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inst.Engine().MustSchedule(10, func() {})
	if err := inst.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := inst.SilenceMember(5, 3); err == nil {
		t.Error("past silence should be rejected")
	}
}

func TestSPFLastRefresh(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewSPFInstance(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ScheduleJoin(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(40); err != nil {
		t.Fatal(err)
	}
	last, ok := inst.LastRefresh(3)
	if !ok || float64(last) <= 1 {
		t.Errorf("LastRefresh = %v,%v", last, ok)
	}
}
