// Package protocol runs SMRP and the SPF baseline as message-level protocols
// on the discrete-event simulator: explicit Join_Req/Leave_Req propagation,
// soft-state refresh, failure detection and notification, neighbor queries,
// and — the paper's motivation — service-restoration latency:
//
//   - SMRP recovers after failure detection plus a local query round-trip
//     and a short join along the detour;
//   - the SPF baseline must first wait for unicast routing to reconverge
//     (detection + LSA flooding + SPF recomputation) before rejoining.
//
// Protocol decisions are delegated to the algorithmic layer (internal/core,
// internal/spfbase), keeping the two layers behaviourally identical (this is
// property-tested); the event layer contributes timing, message accounting,
// and loss-on-failure semantics.
package protocol

import (
	"smrp/internal/eventsim"
	"smrp/internal/graph"
)

// JoinReq asks the tree to graft the sender along a chosen path.
type JoinReq struct {
	Member graph.NodeID
	Path   graph.Path // merger → … → member (the path being set up)
}

// LeaveReq tears down the sender's membership.
type LeaveReq struct {
	Member graph.NodeID
}

// Refresh keeps a member's soft state alive along its tree path.
type Refresh struct {
	Member graph.NodeID
}

// FailureNotice tells a disconnected subtree that its uplink died.
type FailureNotice struct {
	FailedAt graph.NodeID // the cut point (downstream endpoint of the dead link)
	At       eventsim.Time
}

// QueryReq is the §3.3.1 neighbor query from a joining/recovering node.
type QueryReq struct {
	Origin graph.NodeID
}

// QueryResp carries an on-tree node's SHR back to the querying node.
type QueryResp struct {
	Merger graph.NodeID
	SHR    int
}
