package protocol

import (
	"testing"

	"smrp/internal/core"
	"smrp/internal/eventsim"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.RefreshInterval = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero refresh interval should fail")
	}
	bad2 := DefaultConfig()
	bad2.HoldTime = bad2.RefreshInterval
	if err := bad2.Validate(); err == nil {
		t.Error("HoldTime <= RefreshInterval should fail")
	}
	bad3 := DefaultConfig()
	bad3.SMRP.DThresh = -1
	if err := bad3.Validate(); err == nil {
		t.Error("bad SMRP config should fail")
	}
}

// TestSMRPProtocolMatchesAlgorithm replays the Figure-4 join sequence at the
// message level and checks the distributed outcome equals the synchronous
// session (behavioural equivalence of the two layers).
func TestSMRPProtocolMatchesAlgorithm(t *testing.T) {
	g, err := topology.PaperFig4()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewSMRPInstance(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	members := []graph.NodeID{4, 5, 6} // E, G, F
	for k, m := range members {
		if err := inst.ScheduleJoin(eventsim.Time(10*(k+1)), m); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.Run(100); err != nil {
		t.Fatal(err)
	}

	ref, err := core.NewSession(g, 0, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		if _, err := ref.Join(m); err != nil {
			t.Fatal(err)
		}
	}

	pt, rt := inst.Session().Tree(), ref.Tree()
	pe, re := pt.Edges(), rt.Edges()
	if len(pe) != len(re) {
		t.Fatalf("edge counts differ: protocol %v vs algorithm %v", pe, re)
	}
	for i := range pe {
		if pe[i] != re[i] {
			t.Errorf("edge %d: %v vs %v", i, pe[i], re[i])
		}
	}
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.Network().Sent == 0 || inst.Network().Delivered == 0 {
		t.Error("protocol run should have exchanged messages")
	}
}

func TestSMRPSoftStateRefresh(t *testing.T) {
	g, err := topology.PaperFig4()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewSMRPInstance(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ScheduleJoin(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(50); err != nil {
		t.Fatal(err)
	}
	last, ok := inst.LastRefresh(4)
	if !ok {
		t.Fatal("no refresh recorded")
	}
	// With RefreshInterval=5 and horizon 50, the last refresh must be
	// within one interval of the horizon.
	if last < 50-DefaultConfig().RefreshInterval-1 {
		t.Errorf("last refresh at %v, horizon 50", last)
	}
}

func TestSMRPLeaveProtocol(t *testing.T) {
	g, err := topology.PaperFig4()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewSMRPInstance(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ScheduleJoin(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := inst.ScheduleLeave(20, 4); err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(60); err != nil {
		t.Fatal(err)
	}
	if inst.Session().Tree().IsMember(4) {
		t.Error("member should have left")
	}
	if inst.Session().Tree().NumNodes() != 1 {
		t.Errorf("tree not pruned: %v", inst.Session().Tree().Nodes())
	}
}

// TestRecoveryLatencyLocalBeatsGlobal is the paper's headline motivation at
// the protocol level: on the Figure 1 topology with failure of L_AD, SMRP's
// local detour restores D's service faster than the SPF baseline, which
// must wait out routing reconvergence.
func TestRecoveryLatencyLocalBeatsGlobal(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SMRP.DThresh = 0 // identical (SPF-shaped) trees: isolate recovery

	smrp, err := NewSMRPInstance(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spf, err := NewSPFInstance(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []graph.NodeID{3, 4} {
		if err := smrp.ScheduleJoin(1, m); err != nil {
			t.Fatal(err)
		}
		if err := spf.ScheduleJoin(1, m); err != nil {
			t.Fatal(err)
		}
	}
	f := failure.LinkDown(1, 4)
	if err := smrp.InjectFailure(30, f); err != nil {
		t.Fatal(err)
	}
	if err := spf.InjectFailure(30, f); err != nil {
		t.Fatal(err)
	}
	if err := smrp.Run(200); err != nil {
		t.Fatal(err)
	}
	if err := spf.Run(200); err != nil {
		t.Fatal(err)
	}

	sr := smrp.Restorations()
	gr := spf.Restorations()
	if len(sr) != 1 || len(gr) != 1 {
		t.Fatalf("restorations: smrp %v spf %v", sr, gr)
	}
	if sr[0].Member != 4 || gr[0].Member != 4 {
		t.Fatalf("wrong member restored")
	}
	if sr[0].Latency >= gr[0].Latency {
		t.Errorf("local latency %v should beat global %v", sr[0].Latency, gr[0].Latency)
	}
	if sr[0].RecoveryDistance >= gr[0].RecoveryDistance {
		t.Errorf("local RD %v should be below global %v",
			sr[0].RecoveryDistance, gr[0].RecoveryDistance)
	}
	// Expected timelines:
	//   SMRP: detection 2 + notice 0 (D borders the cut) + query RTT 2·2 +
	//         join 2 = 8.
	//   SPF:  detection 2 + flood 0 (D detects directly) + SPF hold-down 5
	//         + join 4 = 11.
	if sr[0].RestoredAt != 38 {
		t.Errorf("SMRP restored at %v, want 38 (30+2+4+2)", sr[0].RestoredAt)
	}
	// Both trees must be healed and valid.
	if err := smrp.Session().Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := spf.Session().Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	if smrp.Session().Tree().UsesEdge(f.Edge) || spf.Session().Tree().UsesEdge(f.Edge) {
		t.Error("healed trees must avoid the failed link")
	}
}

// TestWorstCaseRecoveryBothMembers exercises the L_SA worst case where both
// members are simultaneously disconnected.
func TestWorstCaseRecoveryBothMembers(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SMRP.DThresh = 0
	inst, err := NewSMRPInstance(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []graph.NodeID{3, 4} {
		if err := inst.ScheduleJoin(1, m); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.InjectFailure(30, failure.LinkDown(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(300); err != nil {
		t.Fatal(err)
	}
	rs := inst.Restorations()
	if len(rs) != 2 {
		t.Fatalf("restorations = %v, want both members", rs)
	}
	tr := inst.Session().Tree()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, m := range []graph.NodeID{3, 4} {
		if !tr.IsMember(m) {
			t.Errorf("member %d lost", m)
		}
	}
	if tr.UsesEdge(graph.MakeEdgeID(0, 1)) {
		t.Error("healed tree uses the failed link")
	}
	// Data flows to everyone again.
	deliv := inst.Multicast()
	if len(deliv) != 2 {
		t.Errorf("multicast reaches %d members, want 2", len(deliv))
	}
}

func TestMulticastDuringOutage(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SMRP.DThresh = 0
	inst, err := NewSMRPInstance(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []graph.NodeID{3, 4} {
		if err := inst.ScheduleJoin(1, m); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.Run(20); err != nil {
		t.Fatal(err)
	}
	before := inst.Multicast()
	if len(before) != 2 || before[3] != 3 || before[4] != 2 {
		t.Errorf("pre-failure delivery = %v", before)
	}
	// Cut L_AD and query immediately (before recovery runs).
	inst.Network().FailLink(1, 4)
	during := inst.Multicast()
	if _, ok := during[4]; ok {
		t.Error("cut member still receives data")
	}
	if _, ok := during[3]; !ok {
		t.Error("unaffected member lost data")
	}
}

func TestScheduleInPastRejected(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewSMRPInstance(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inst.Engine().MustSchedule(10, func() {})
	if err := inst.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := inst.ScheduleJoin(5, 3); err == nil {
		t.Error("past join should be rejected")
	}
	if err := inst.ScheduleLeave(5, 3); err == nil {
		t.Error("past leave should be rejected")
	}
	if err := inst.InjectFailure(5, failure.LinkDown(0, 1)); err == nil {
		t.Error("past failure should be rejected")
	}
	spf, err := NewSPFInstance(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	spf.Engine().MustSchedule(10, func() {})
	if err := spf.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := spf.ScheduleJoin(5, 3); err == nil || spf.ScheduleLeave(5, 3) == nil {
		t.Error("past SPF schedule should be rejected")
	}
	if err := spf.InjectFailure(5, failure.LinkDown(0, 1)); err == nil {
		t.Error("past SPF failure should be rejected")
	}
}

// TestQuerySchemeProtocolJoins runs message-level joins under the §3.3.1
// query scheme and verifies the discovery round-trips delay the join.
func TestQuerySchemeProtocolJoins(t *testing.T) {
	g, err := topology.PaperFig4()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SMRP.Knowledge = core.QueryScheme
	inst, err := NewSMRPInstance(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k, m := range []graph.NodeID{4, 5, 6} {
		if err := inst.ScheduleJoin(eventsim.Time(10*(k+1)), m); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.Run(200); err != nil {
		t.Fatal(err)
	}
	tr := inst.Session().Tree()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, m := range []graph.NodeID{4, 5, 6} {
		if !tr.IsMember(m) {
			t.Errorf("member %d missing", m)
		}
	}
}

// TestRandomScenarioLatencies compares restoration latencies on a random
// topology under each protocol's own worst-case failure for one member, the
// paper's central speed claim, end to end.
func TestRandomScenarioLatencies(t *testing.T) {
	rng := topology.NewRNG(4242)
	g, err := topology.Waxman(topology.WaxmanConfig{
		N: 60, Alpha: 0.2, Beta: topology.DefaultBeta, EnsureConnected: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Root the session at a well-connected node so a single worst-case link
	// failure cannot partition the source (degree-1 sources make every
	// member provably unrecoverable, which is not the case under study).
	source := graph.NodeID(0)
	for n := 0; n < g.NumNodes(); n++ {
		if g.Degree(graph.NodeID(n)) > g.Degree(source) {
			source = graph.NodeID(n)
		}
	}
	cfg := DefaultConfig()
	smrp, err := NewSMRPInstance(g, source, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spf, err := NewSPFInstance(g, source, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var members []int
	for _, m := range rng.Sample(60, 13) {
		if graph.NodeID(m) != source && len(members) < 12 {
			members = append(members, m)
		}
	}
	for k, m := range members {
		at := eventsim.Time(k + 1)
		if err := smrp.ScheduleJoin(at, graph.NodeID(m)); err != nil {
			t.Fatal(err)
		}
		if err := spf.ScheduleJoin(at, graph.NodeID(m)); err != nil {
			t.Fatal(err)
		}
	}
	if err := smrp.Run(100); err != nil {
		t.Fatal(err)
	}
	if err := spf.Run(100); err != nil {
		t.Fatal(err)
	}
	victim := graph.NodeID(members[0])
	fS, err := failure.WorstCaseFor(smrp.Session().Tree(), victim)
	if err != nil {
		t.Fatal(err)
	}
	fG, err := failure.WorstCaseFor(spf.Session().Tree(), victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := smrp.InjectFailure(150, fS); err != nil {
		t.Fatal(err)
	}
	if err := spf.InjectFailure(150, fG); err != nil {
		t.Fatal(err)
	}
	if err := smrp.Run(500); err != nil {
		t.Fatal(err)
	}
	if err := spf.Run(500); err != nil {
		t.Fatal(err)
	}

	var sLat, gLat eventsim.Time
	for _, r := range smrp.Restorations() {
		if r.Member == victim {
			sLat = r.Latency
		}
	}
	for _, r := range spf.Restorations() {
		if r.Member == victim {
			gLat = r.Latency
		}
	}
	if sLat == 0 || gLat == 0 {
		t.Fatalf("victim not restored: smrp=%v spf=%v", smrp.Restorations(), spf.Restorations())
	}
	t.Logf("victim %d: SMRP latency %.3f vs SPF %.3f", victim, sLat, gLat)
	if err := smrp.Session().Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := spf.Session().Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSPFLeaveAndMulticast(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewSPFInstance(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []graph.NodeID{3, 4} {
		if err := inst.ScheduleJoin(1, m); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.ScheduleLeave(20, 3); err != nil {
		t.Fatal(err)
	}
	// Leaving a non-member is a silent no-op at fire time.
	if err := inst.ScheduleLeave(25, 2); err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(60); err != nil {
		t.Fatal(err)
	}
	if inst.Session().Tree().IsMember(3) {
		t.Error("member 3 should have left")
	}
	deliv := inst.Multicast()
	if len(deliv) != 1 || deliv[4] != 2 {
		t.Errorf("delivery = %v, want member 4 at +2", deliv)
	}
	if inst.Network() == nil {
		t.Error("Network accessor nil")
	}
}
