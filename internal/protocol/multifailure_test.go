package protocol

import (
	"testing"

	"smrp/internal/eventsim"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

// TestSequentialFailures drives two persistent failures through one SMRP
// instance: the session must survive both, never using any failed component.
func TestSequentialFailures(t *testing.T) {
	rng := topology.NewRNG(777)
	g, err := topology.Waxman(topology.WaxmanConfig{
		N: 60, Alpha: 0.4, Beta: 0.3, EnsureConnected: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	source := graph.NodeID(0)
	for n := 1; n < g.NumNodes(); n++ {
		if g.Degree(graph.NodeID(n)) > g.Degree(source) {
			source = graph.NodeID(n)
		}
	}
	inst, err := NewSMRPInstance(g, source, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var members []graph.NodeID
	for _, id := range rng.Sample(60, 11) {
		if graph.NodeID(id) != source && len(members) < 10 {
			members = append(members, graph.NodeID(id))
		}
	}
	for k, m := range members {
		if err := inst.ScheduleJoin(eventsim.Time(k+1), m); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.Run(100); err != nil {
		t.Fatal(err)
	}

	f1, err := failure.WorstCaseFor(inst.Session().Tree(), members[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.InjectFailure(150, f1); err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(400); err != nil {
		t.Fatal(err)
	}
	tr := inst.Session().Tree()
	if err := tr.Validate(); err != nil {
		t.Fatalf("after first failure: %v", err)
	}

	// Second failure targets another member on the healed tree.
	var second graph.NodeID = graph.Invalid
	for _, m := range tr.Members() {
		if m != members[0] {
			second = m
			break
		}
	}
	if second == graph.Invalid {
		t.Skip("no second member survived the first failure")
	}
	f2, err := failure.WorstCaseFor(tr, second)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Edge == f1.Edge {
		t.Skip("same worst-case link twice; nothing new to test")
	}
	if err := inst.InjectFailure(500, f2); err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(900); err != nil {
		t.Fatal(err)
	}
	tr = inst.Session().Tree()
	if err := tr.Validate(); err != nil {
		t.Fatalf("after second failure: %v", err)
	}
	if tr.UsesEdge(f1.Edge) || tr.UsesEdge(f2.Edge) {
		t.Error("healed tree uses a failed link")
	}
	// Data still flows to every surviving member.
	deliv := inst.Multicast()
	for _, m := range tr.Members() {
		if _, ok := deliv[m]; !ok {
			t.Errorf("member %d receives no data after double failure", m)
		}
	}
}
