package protocol

import (
	"errors"
	"fmt"
	"slices"

	"smrp/internal/core"
	"smrp/internal/eventsim"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/routing"
	"smrp/internal/topology"
	"smrp/internal/trace"
)

// Sentinel errors returned by protocol scheduling and validation.
var (
	// ErrBadConfig is wrapped by every Config.Validate error.
	ErrBadConfig = errors.New("protocol: invalid configuration")
	// ErrPastEvent is wrapped when an event is scheduled before the
	// simulator's current virtual time.
	ErrPastEvent = errors.New("protocol: event scheduled in the past")
)

// Config parameterizes a protocol instance.
type Config struct {
	SMRP    core.Config
	Routing routing.Config
	// RefreshInterval is the soft-state refresh period; HoldTime is how long
	// state survives without refresh (HoldTime > RefreshInterval).
	RefreshInterval eventsim.Time
	HoldTime        eventsim.Time

	// RetryTimeout is how long a recovering member waits before re-detouring
	// after its Join_Req is lost on a link that died while the request was in
	// flight (the multi-failure case). 0 defaults to RefreshInterval.
	RetryTimeout eventsim.Time
	// RetryBackoff is the per-attempt multiplier of RetryTimeout (bounded
	// exponential backoff, capped at HoldTime). Values < 1 default to 2.
	RetryBackoff float64
	// MaxRetries caps re-detour attempts per recovery episode; an exhausted
	// member parks until a repair. 0 defaults to 10.
	MaxRetries int
	// RetryJitter is the maximum deterministic jitter added to each retry
	// delay, drawn from a stream seeded by JitterSeed. The stream is consumed
	// only on actual retries, so failure-free runs are byte-identical
	// regardless of the seed. 0 disables jitter.
	RetryJitter eventsim.Time
	// JitterSeed seeds the jitter stream. 0 defaults to 1.
	JitterSeed uint64
}

// DefaultConfig returns the protocol defaults used by the examples and the
// latency experiments.
func DefaultConfig() Config {
	return Config{
		SMRP:            core.DefaultConfig(),
		Routing:         routing.DefaultConfig(),
		RefreshInterval: 5,
		HoldTime:        16,
		RetryTimeout:    5,
		RetryBackoff:    2,
		MaxRetries:      10,
		RetryJitter:     0.5,
		JitterSeed:      1,
	}
}

// withRecoveryDefaults fills zero-valued retry knobs so configurations built
// by hand (struct literals predating the retry fields) keep working.
func (c Config) withRecoveryDefaults() Config {
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = c.RefreshInterval
	}
	if c.RetryBackoff < 1 {
		c.RetryBackoff = 2
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 10
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.SMRP.Validate(); err != nil {
		return err
	}
	if err := c.Routing.Validate(); err != nil {
		return err
	}
	if c.RefreshInterval <= 0 || c.HoldTime <= c.RefreshInterval {
		return fmt.Errorf("%w: need 0 < RefreshInterval < HoldTime", ErrBadConfig)
	}
	if c.RetryTimeout < 0 || c.RetryBackoff < 0 || c.MaxRetries < 0 || c.RetryJitter < 0 {
		return fmt.Errorf("%w: retry knobs must be non-negative", ErrBadConfig)
	}
	return nil
}

// Restoration records one member's recovery from a failure.
type Restoration struct {
	Member graph.NodeID
	// DetectedAt is when the member learned of the failure (notification
	// down the dead subtree for SMRP; routing convergence for SPF).
	DetectedAt eventsim.Time
	// RestoredAt is when the member's new branch was grafted.
	RestoredAt eventsim.Time
	// Latency is RestoredAt minus the failure instant.
	Latency eventsim.Time
	// RecoveryDistance is the weight of new links brought into the tree.
	RecoveryDistance float64
}

// SMRPInstance is a message-level SMRP session running on the event
// simulator.
type SMRPInstance struct {
	cfg     Config
	engine  *eventsim.Engine
	net     *eventsim.Network
	domain  *routing.Domain
	session *core.Session

	lastRefresh map[graph.NodeID]eventsim.Time
	// refreshGen invalidates a member's old refresh loop when a new one is
	// armed (e.g. after recovery re-grafts the member).
	refreshGen   map[graph.NodeID]int
	silenced     map[graph.NodeID]bool
	restorations map[graph.NodeID]Restoration
	expired      []graph.NodeID
	failedAt     eventsim.Time
	auditArmed   bool
	trace        *trace.Log
	// parked holds members whose recovery exhausted its options (no residual
	// path, or retries ran out): they degrade gracefully and wait for a
	// repair to re-admit them.
	parked map[graph.NodeID]bool
	// jitter is the deterministic retry-jitter stream; it is consumed only
	// when a retry actually fires.
	jitter *topology.RNG
	// scratch is the reusable root-path buffer for refresh ticks, leaves and
	// notice-delay walks — the hottest periodic paths. Safe because SendAlong
	// copies its path before returning and the engine is single-threaded.
	scratch graph.Path
}

// SetTrace installs an event log (nil disables tracing).
func (i *SMRPInstance) SetTrace(l *trace.Log) { i.trace = l }

// NewSMRPInstance builds an SMRP protocol instance over g rooted at source.
func NewSMRPInstance(g *graph.Graph, source graph.NodeID, cfg Config) (*SMRPInstance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withRecoveryDefaults()
	engine := eventsim.NewEngine()
	dom, err := routing.NewDomain(g, cfg.Routing)
	if err != nil {
		return nil, err
	}
	sess, err := core.NewSession(g, source, cfg.SMRP)
	if err != nil {
		return nil, err
	}
	inst := &SMRPInstance{
		cfg:          cfg,
		engine:       engine,
		net:          eventsim.NewNetwork(engine, g),
		domain:       dom,
		session:      sess,
		lastRefresh:  make(map[graph.NodeID]eventsim.Time),
		refreshGen:   make(map[graph.NodeID]int),
		silenced:     make(map[graph.NodeID]bool),
		restorations: make(map[graph.NodeID]Restoration),
		parked:       make(map[graph.NodeID]bool),
		jitter:       topology.NewRNG(cfg.JitterSeed),
	}
	// Every node accepts control messages; decisions are delegated to the
	// control-plane oracle, so handlers only account for delivery.
	for n := 0; n < g.NumNodes(); n++ {
		inst.net.Register(graph.NodeID(n), func(graph.NodeID, eventsim.Message) {})
	}
	return inst, nil
}

// Engine exposes the driving engine (for scheduling and Run).
func (i *SMRPInstance) Engine() *eventsim.Engine { return i.engine }

// Network exposes the message layer (for overhead counters).
func (i *SMRPInstance) Network() *eventsim.Network { return i.net }

// Session exposes the control-plane state (read-only use).
func (i *SMRPInstance) Session() *core.Session { return i.session }

// Run drives the simulation until the horizon.
func (i *SMRPInstance) Run(until eventsim.Time) error { return i.engine.Run(until) }

// ScheduleJoin enqueues a member join at the given time. The join decision
// happens at that time (after query round-trips when the query scheme is
// configured); the graft completes when the Join_Req reaches the merger.
func (i *SMRPInstance) ScheduleJoin(at eventsim.Time, m graph.NodeID) error {
	if at < i.engine.Now() {
		return fmt.Errorf("join of %d: %w", m, ErrPastEvent)
	}
	_, err := i.engine.Schedule(at-i.engine.Now(), func() { i.startJoin(m) })
	return err
}

// queryLatency models the §3.3.1 discovery cost: the worst neighbor-query
// round trip (query out along the neighbor's SPF path to the first on-tree
// node, response back). Under full topology knowledge discovery is free.
func (i *SMRPInstance) queryLatency(m graph.NodeID) eventsim.Time {
	if i.cfg.SMRP.Knowledge != core.QueryScheme {
		return 0
	}
	g := i.net.Graph()
	src := i.session.Tree().Source()
	var worst float64
	for _, arc := range g.Neighbors(m) {
		if i.net.Failed().EdgeBlocked(m, arc.To) {
			continue
		}
		// Query travels m→neighbor→…→first on-tree node and back.
		i.net.Sent++ // the query message itself
		p := i.domain.PathTo(arc.To, src)
		var d float64 = arc.Weight
		for j := 0; j+1 < len(p); j++ {
			if i.session.Tree().OnTree(p[j]) {
				break
			}
			w, _ := g.EdgeWeight(p[j], p[j+1])
			d += w
		}
		if 2*d > worst {
			worst = 2 * d
		}
	}
	return eventsim.Time(worst)
}

// startJoin performs discovery, then sends the Join_Req.
func (i *SMRPInstance) startJoin(m graph.NodeID) {
	if i.session.Tree().IsMember(m) {
		return
	}
	discovery := i.queryLatency(m)
	i.engine.MustSchedule(discovery, func() {
		if i.session.Tree().OnTree(m) {
			// Relay becomes member in place; no Join_Req needed.
			if _, err := i.session.Join(m); err == nil {
				i.trace.Add(i.engine.Now(), trace.CatJoin, m, "relay became member in place")
				i.armRefresh(m)
			}
			return
		}
		// Decide now, against current tree state, with the core logic.
		probe := i.session // decisions and application both via the oracle
		res, err := probe.Join(m)
		if err != nil {
			return
		}
		i.trace.Add(i.engine.Now(), trace.CatJoin, m,
			"merger=%d shr=%d delay=%.3f within-bound=%v", res.Merger, res.MergerSHR, res.Delay, res.WithinBound)
		for _, r := range res.Reshaped {
			i.trace.Add(i.engine.Now(), trace.CatReshape, r, "condition-I trigger after join of %d", m)
		}
		// The Join_Req physically travels member→merger (reverse of the
		// grafted path); its arrival marks when the branch is live.
		if len(res.Connection) >= 2 {
			_ = i.net.SendAlong(res.Connection.Reverse(), JoinReq{Member: m, Path: res.Connection})
		}
		i.armRefresh(m)
	})
}

// armRefresh starts the member's periodic soft-state refresh and (once per
// instance) the expiry audit that reclaims branches of members that fell
// silent — the soft-state robustness mechanism of §3.2.
func (i *SMRPInstance) armRefresh(m graph.NodeID) {
	i.lastRefresh[m] = i.engine.Now()
	i.refreshGen[m]++
	gen := i.refreshGen[m]
	var tick func()
	tick = func() {
		if i.refreshGen[m] != gen {
			return // superseded by a newer loop
		}
		if !i.session.Tree().IsMember(m) || i.silenced[m] {
			return // left, lost, or crashed
		}
		p, err := i.session.Tree().AppendPathToSource(i.scratch[:0], m)
		i.scratch = p[:0]
		if err == nil && len(p) >= 2 {
			_ = i.net.SendAlong(p, Refresh{Member: m})
		}
		i.lastRefresh[m] = i.engine.Now()
		i.engine.MustSchedule(i.cfg.RefreshInterval, tick)
	}
	i.engine.MustSchedule(i.cfg.RefreshInterval, tick)
	i.armAudit()
}

// armAudit starts the periodic soft-state expiry scan.
func (i *SMRPInstance) armAudit() {
	if i.auditArmed {
		return
	}
	i.auditArmed = true
	var audit func()
	audit = func() {
		now := i.engine.Now()
		for _, m := range i.session.Tree().Members() {
			last, ok := i.lastRefresh[m]
			if !ok || now-last <= i.cfg.HoldTime {
				continue
			}
			// The branch's soft state expires hop by hop; the oracle
			// reclaims it at once.
			if err := i.session.Leave(m); err == nil {
				i.expired = append(i.expired, m)
				delete(i.lastRefresh, m)
				i.trace.Add(now, trace.CatExpiry, m, "soft state expired (last refresh t=%.3f)", float64(last))
			}
		}
		i.engine.MustSchedule(i.cfg.RefreshInterval, audit)
	}
	i.engine.MustSchedule(i.cfg.RefreshInterval, audit)
}

// SilenceMember makes member m stop refreshing at the given time without a
// Leave_Req — a receiver crash. Its branch is reclaimed once HoldTime
// passes without a refresh.
func (i *SMRPInstance) SilenceMember(at eventsim.Time, m graph.NodeID) error {
	if at < i.engine.Now() {
		return fmt.Errorf("silence of %d: %w", m, ErrPastEvent)
	}
	_, err := i.engine.Schedule(at-i.engine.Now(), func() { i.silenced[m] = true })
	return err
}

// Expired returns members whose branches were reclaimed by soft-state
// expiry, in expiry order.
func (i *SMRPInstance) Expired() []graph.NodeID {
	out := make([]graph.NodeID, len(i.expired))
	copy(out, i.expired)
	return out
}

// LastRefresh returns when member m last refreshed its branch.
func (i *SMRPInstance) LastRefresh(m graph.NodeID) (eventsim.Time, bool) {
	t, ok := i.lastRefresh[m]
	return t, ok
}

// ScheduleLeave enqueues a member departure; the Leave_Req travels the
// member's branch before state is released.
func (i *SMRPInstance) ScheduleLeave(at eventsim.Time, m graph.NodeID) error {
	if at < i.engine.Now() {
		return fmt.Errorf("leave of %d: %w", m, ErrPastEvent)
	}
	_, err := i.engine.Schedule(at-i.engine.Now(), func() {
		tr := i.session.Tree()
		if !tr.IsMember(m) {
			return
		}
		p, err := tr.AppendPathToSource(i.scratch[:0], m)
		i.scratch = p[:0]
		if err == nil && len(p) >= 2 {
			_ = i.net.SendAlong(p, LeaveReq{Member: m})
		}
		_ = i.session.Leave(m)
		delete(i.lastRefresh, m)
		i.trace.Add(i.engine.Now(), trace.CatLeave, m, "leave_req completed")
	})
	return err
}

// InjectFailure schedules a persistent failure. Detection, notification of
// the dead subtree, local detour discovery, and re-grafting all play out in
// virtual time; per-member restoration latencies are recorded.
func (i *SMRPInstance) InjectFailure(at eventsim.Time, f failure.Failure) error {
	if at < i.engine.Now() {
		return fmt.Errorf("failure: %w", ErrPastEvent)
	}
	_, err := i.engine.Schedule(at-i.engine.Now(), func() { i.onFailureSet([]failure.Failure{f}) })
	return err
}

// onFailureSet applies a correlated failure batch atomically and starts
// SMRP's recovery machinery against the accumulated mask, so detours never
// route over a sibling cut discovered one step later.
func (i *SMRPInstance) onFailureSet(fs []failure.Failure) {
	i.failedAt = i.engine.Now()
	for _, f := range fs {
		i.trace.Add(i.engine.Now(), trace.CatFailure, graph.Invalid, "%v injected", f)
		switch f.Kind {
		case failure.LinkFailure:
			i.net.FailLink(f.Edge.A, f.Edge.B)
		case failure.NodeFailure:
			i.net.FailNode(f.Node)
		}
		i.domain.ApplyFailure(f)
	}

	mask := i.net.Failed()
	tr := i.session.Tree()
	disconnected := failure.DisconnectedMembers(tr, mask)
	if len(disconnected) == 0 {
		return
	}
	// Notice propagation times must be measured on the pre-flush tree (the
	// FailureNotice travels the still-intact dead branch).
	delays := make(map[graph.NodeID]eventsim.Time, len(disconnected))
	for _, m := range disconnected {
		if d, ok := i.noticeDelay(m, mask); ok {
			delays[m] = d
		}
	}
	// Flush dead control state; members re-graft individually below.
	if _, err := i.session.FlushDead(mask); err != nil {
		return
	}
	// The cut is detected after the hello timeout; the downstream endpoint
	// then floods a FailureNotice down the (still intact) dead subtree.
	detect := i.domain.DetectionTime()
	for _, m := range disconnected {
		m := m
		notifyDelay, ok := delays[m]
		if !ok {
			continue
		}
		i.engine.MustSchedule(detect+notifyDelay, func() {
			i.trace.Add(i.engine.Now(), trace.CatNotice, m, "failure notice received")
			i.recoverMember(m, mask)
		})
	}
}

// noticeDelay computes how long the failure notice takes to travel from the
// cut point down the dead subtree to member m (0 when m borders the cut).
func (i *SMRPInstance) noticeDelay(m graph.NodeID, mask *graph.Mask) (eventsim.Time, bool) {
	tr := i.session.Tree()
	p, err := tr.AppendPathToSource(i.scratch[:0], m) // m → … → source
	i.scratch = p[:0]
	if err != nil {
		return 0, false
	}
	// Walk up from m; the cut is the first dead hop. The notice originates
	// at the downstream endpoint of that hop.
	var d float64
	for j := 0; j+1 < len(p); j++ {
		if mask.EdgeBlocked(p[j], p[j+1]) || mask.NodeBlocked(p[j+1]) {
			return eventsim.Time(d), true
		}
		w, _ := i.net.Graph().EdgeWeight(p[j], p[j+1])
		d += w
	}
	return 0, false // not actually cut on its own path
}

// detourFor resolves the member's current local detour: the shortest
// residual path from m to the nearest live on-tree node (the tree has been
// flushed, so every on-tree node is live).
func (i *SMRPInstance) detourFor(m graph.NodeID, mask *graph.Mask) (graph.Path, float64, bool) {
	tr := i.session.Tree()
	target, p, d := i.net.Graph().NearestOf(m, mask, func(n graph.NodeID) bool {
		return tr.OnTree(n) && !mask.NodeBlocked(n)
	})
	if target == graph.Invalid {
		return nil, 0, false
	}
	return p, d, true
}

// recoverMember runs the member's local-detour recovery: discovery (query
// round trip to the nearest survivor), then a Join_Req along the detour.
func (i *SMRPInstance) recoverMember(m graph.NodeID, mask *graph.Mask) {
	if i.session.Tree().IsMember(m) {
		return // already re-grafted
	}
	detectedAt := i.engine.Now()
	_, rd, ok := i.detourFor(m, mask)
	if !ok {
		i.park(m) // unrecoverable until a repair
		return
	}
	// Discovery: query out + response back along the detour.
	i.net.Sent++ // query message
	i.engine.MustSchedule(eventsim.Time(2*rd), func() {
		i.completeRecovery(m, detectedAt, mask, 0)
	})
}

// maxRecoveryRetries bounds re-resolution when concurrent grafts collide
// (the SPF baseline's fixed cap; SMRP instances use Config.MaxRetries).
const maxRecoveryRetries = 10

// completeRecovery re-resolves the detour (the tree may have grown through
// other members' recoveries) and grafts the member when the Join_Req lands.
func (i *SMRPInstance) completeRecovery(m graph.NodeID, detectedAt eventsim.Time, mask *graph.Mask, attempt int) {
	tr := i.session.Tree()
	if tr.IsMember(m) {
		return
	}
	if attempt > i.cfg.MaxRetries {
		i.park(m) // retry budget exhausted; wait for a repair
		return
	}
	if tr.OnTree(m) {
		// m came back as a relay on someone else's detour; become a member
		// in place — service is already flowing through m.
		if err := i.session.RecoverGraft(graph.Path{m}); err != nil {
			return
		}
		delete(i.parked, m)
		i.restorations[m] = Restoration{
			Member:     m,
			DetectedAt: detectedAt,
			RestoredAt: i.engine.Now(),
			Latency:    i.engine.Now() - i.failedAt,
		}
		i.armRefresh(m)
		return
	}
	detour, rd, ok := i.detourFor(m, mask)
	if !ok {
		i.park(m) // no residual path left
		return
	}
	i.engine.MustSchedule(eventsim.Time(rd), func() {
		i.graftDetour(m, detour, rd, detectedAt, attempt)
	})
	_ = i.net.SendAlong(detour, JoinReq{Member: m, Path: detour.Reverse()})
}

// graftDetour applies the detour graft on the oracle tree and records the
// restoration. If a concurrent graft invalidated the path, the recovery is
// re-resolved immediately against the current tree. If the detour itself was
// cut while the Join_Req was in flight (a later failure of the multi-failure
// regime), the request was lost on the dead link: the member re-detours
// after a bounded-exponential-backoff timeout with deterministic jitter.
func (i *SMRPInstance) graftDetour(m graph.NodeID, detour graph.Path, rd float64, detectedAt eventsim.Time, attempt int) {
	tr := i.session.Tree()
	if tr.IsMember(m) {
		return
	}
	if i.detourCut(detour) {
		i.scheduleRetry(m, detectedAt, attempt)
		return
	}
	// detour runs m→…→survivor; grafting wants survivor→…→m.
	if err := i.session.RecoverGraft(detour.Reverse()); err != nil {
		if tr.OnTree(m) || attempt < i.cfg.MaxRetries {
			i.completeRecovery(m, detectedAt, i.net.Failed(), attempt+1)
		}
		return
	}
	delete(i.parked, m)
	i.restorations[m] = Restoration{
		Member:           m,
		DetectedAt:       detectedAt,
		RestoredAt:       i.engine.Now(),
		Latency:          i.engine.Now() - i.failedAt,
		RecoveryDistance: rd,
	}
	i.trace.Add(i.engine.Now(), trace.CatRecovery, m,
		"local detour grafted rd=%.3f latency=%.3f", rd, float64(i.engine.Now()-i.failedAt))
	i.armRefresh(m)
}

// Restorations returns the recorded per-member recoveries, sorted by member.
func (i *SMRPInstance) Restorations() []Restoration {
	out := make([]Restoration, 0, len(i.restorations))
	for _, r := range i.restorations {
		out = append(out, r)
	}
	slices.SortFunc(out, func(a, b Restoration) int { return int(a.Member - b.Member) })
	return out
}

// Multicast delivers one data packet from the source over the current tree,
// returning each reachable member's delivery time offset. Members whose
// branch is currently cut receive nothing — the service disruption the
// recovery machinery exists to shorten.
func (i *SMRPInstance) Multicast() map[graph.NodeID]eventsim.Time {
	return multicastOver(i.session.Tree(), i.net.Failed())
}
