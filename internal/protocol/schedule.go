package protocol

import (
	"fmt"
	"slices"

	"smrp/internal/eventsim"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/trace"
)

// This file is the protocol layer's multi-failure machinery: correlated
// failure batches, repairs, whole failure schedules, the parked-member
// degraded state, and the bounded-backoff retry timers that re-detour a
// member whose Join_Req was lost on a link that died while the request was
// in flight.

// InjectFailureSet schedules a correlated failure batch (an SRLG cut): every
// component in fs fails at the same instant, and recovery runs once against
// the combined mask.
func (i *SMRPInstance) InjectFailureSet(at eventsim.Time, fs ...failure.Failure) error {
	if at < i.engine.Now() {
		return fmt.Errorf("failure set: %w", ErrPastEvent)
	}
	if len(fs) == 0 {
		return fmt.Errorf("protocol: %w: empty failure set", failure.ErrBadSchedule)
	}
	batch := slices.Clone(fs)
	_, err := i.engine.Schedule(at-i.engine.Now(), func() { i.onFailureSet(batch) })
	return err
}

// InjectRepair schedules the restoration of failed components. Parked
// members re-run local-detour recovery (discovery, Join_Req, graft) as soon
// as the repair lands.
func (i *SMRPInstance) InjectRepair(at eventsim.Time, fs ...failure.Failure) error {
	if at < i.engine.Now() {
		return fmt.Errorf("repair: %w", ErrPastEvent)
	}
	if len(fs) == 0 {
		return fmt.Errorf("protocol: %w: empty repair set", failure.ErrBadSchedule)
	}
	batch := slices.Clone(fs)
	_, err := i.engine.Schedule(at-i.engine.Now(), func() { i.onRepair(batch) })
	return err
}

// InjectSchedule installs a whole multi-failure schedule: each event's
// failures are applied as one correlated batch and its repairs restore
// components (and re-admit parked members). Events may land while an earlier
// recovery is still in progress — that is the point.
func (i *SMRPInstance) InjectSchedule(s failure.Schedule) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for _, ev := range s.Events {
		at := eventsim.Time(ev.At)
		if len(ev.Failures) > 0 {
			if err := i.InjectFailureSet(at, ev.Failures...); err != nil {
				return err
			}
		}
		if len(ev.Repairs) > 0 {
			if err := i.InjectRepair(at, ev.Repairs...); err != nil {
				return err
			}
		}
	}
	return nil
}

// onRepair restores components in the network and routing views, then
// restarts recovery for every parked member (ascending, deterministic).
func (i *SMRPInstance) onRepair(fs []failure.Failure) {
	for _, f := range fs {
		i.trace.Add(i.engine.Now(), trace.CatRepair, graph.Invalid, "%v repaired", f)
		switch f.Kind {
		case failure.LinkFailure:
			i.net.RepairLink(f.Edge.A, f.Edge.B)
		case failure.NodeFailure:
			i.net.RepairNode(f.Node)
		}
		i.domain.RemoveFailure(f)
	}
	mask := i.net.Failed()
	for _, m := range i.Parked() {
		if mask.NodeBlocked(m) {
			continue // the member itself is still down
		}
		i.recoverMember(m, mask)
	}
}

// park moves a member into the degraded state: its recovery found no
// residual path (or ran out of retries) and it now waits for a repair.
func (i *SMRPInstance) park(m graph.NodeID) {
	if i.parked[m] {
		return
	}
	i.parked[m] = true
	i.trace.Add(i.engine.Now(), trace.CatPark, m, "no residual path: parked pending repair")
}

// Parked returns the members currently degraded (waiting for a repair),
// ascending.
func (i *SMRPInstance) Parked() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(i.parked))
	for m := range i.parked {
		out = append(out, m)
	}
	slices.Sort(out)
	return out
}

// detourCut reports whether any hop of the detour (or any node past the
// first) is currently failed — i.e. the Join_Req that was sent along it has
// been lost.
func (i *SMRPInstance) detourCut(detour graph.Path) bool {
	mask := i.net.Failed()
	for j := 0; j+1 < len(detour); j++ {
		if mask.EdgeBlocked(detour[j], detour[j+1]) || mask.NodeBlocked(detour[j+1]) {
			return true
		}
	}
	return false
}

// scheduleRetry arms the re-detour timer for a member whose Join_Req was
// lost: bounded exponential backoff (RetryTimeout · RetryBackoff^attempt,
// capped at HoldTime) plus deterministic jitter. The retry budget is
// capped at MaxRetries; an exhausted member parks.
func (i *SMRPInstance) scheduleRetry(m graph.NodeID, detectedAt eventsim.Time, attempt int) {
	if attempt >= i.cfg.MaxRetries {
		i.park(m)
		return
	}
	i.engine.MustSchedule(i.retryDelay(attempt), func() {
		i.completeRecovery(m, detectedAt, i.net.Failed(), attempt+1)
	})
}

// retryDelay computes the backoff delay for the given attempt. The jitter
// stream is consumed here and only here, so runs without lost Join_Reqs are
// byte-identical for any JitterSeed.
func (i *SMRPInstance) retryDelay(attempt int) eventsim.Time {
	d := float64(i.cfg.RetryTimeout)
	for a := 0; a < attempt; a++ {
		d *= i.cfg.RetryBackoff
		if d >= float64(i.cfg.HoldTime) {
			break
		}
	}
	if cap := float64(i.cfg.HoldTime); d > cap {
		d = cap
	}
	if i.cfg.RetryJitter > 0 {
		d += i.jitter.Float64() * float64(i.cfg.RetryJitter)
	}
	return eventsim.Time(d)
}
