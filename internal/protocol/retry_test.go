package protocol

import (
	"errors"
	"slices"
	"testing"

	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

// testInstance builds a small SMRP instance for retry-path unit tests.
func testInstance(t *testing.T, cfg Config) *SMRPInstance {
	t.Helper()
	g, err := topology.Waxman(topology.WaxmanConfig{
		N: 20, Alpha: 0.4, Beta: 0.4, EnsureConnected: true,
	}, topology.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewSMRPInstance(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestRetryDelayBackoffAndCap pins the bounded-exponential-backoff schedule:
// RetryTimeout · RetryBackoff^attempt, capped at HoldTime, no jitter.
func TestRetryDelayBackoffAndCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetryTimeout = 5
	cfg.RetryBackoff = 2
	cfg.HoldTime = 16
	cfg.RetryJitter = 0 // pure backoff
	inst := testInstance(t, cfg)

	want := []float64{5, 10, 16, 16, 16}
	for attempt, w := range want {
		if got := float64(inst.retryDelay(attempt)); got != w {
			t.Errorf("retryDelay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

// TestRetryDelayJitterDeterministic pins the deterministic-jitter contract:
// equal JitterSeed ⇒ identical delay streams; the jitter never exceeds
// RetryJitter; and a different seed draws a different stream.
func TestRetryDelayJitterDeterministic(t *testing.T) {
	mk := func(seed uint64) *SMRPInstance {
		cfg := DefaultConfig()
		cfg.JitterSeed = seed
		return testInstance(t, cfg)
	}
	a, b := mk(7), mk(7)
	var streamA, streamB []float64
	for attempt := 0; attempt < 8; attempt++ {
		da, db := float64(a.retryDelay(attempt)), float64(b.retryDelay(attempt))
		streamA, streamB = append(streamA, da), append(streamB, db)
		base := float64(a.cfg.RetryTimeout)
		for k := 0; k < attempt; k++ {
			base *= a.cfg.RetryBackoff
		}
		if base > float64(a.cfg.HoldTime) {
			base = float64(a.cfg.HoldTime)
		}
		if da < base || da > base+float64(a.cfg.RetryJitter) {
			t.Errorf("retryDelay(%d) = %v outside [%v, %v]", attempt, da, base, base+float64(a.cfg.RetryJitter))
		}
	}
	if !slices.Equal(streamA, streamB) {
		t.Fatalf("equal seeds drew different delay streams:\n%v\n%v", streamA, streamB)
	}
	c := mk(8)
	var streamC []float64
	for attempt := 0; attempt < 8; attempt++ {
		streamC = append(streamC, float64(c.retryDelay(attempt)))
	}
	if slices.Equal(streamA, streamC) {
		t.Fatal("different seeds drew identical delay streams")
	}
}

// TestScheduleRetryExhaustionParks verifies that a member whose retry budget
// is spent degrades to the parked state instead of retrying forever.
func TestScheduleRetryExhaustionParks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRetries = 3
	inst := testInstance(t, cfg)

	m := graph.NodeID(5)
	inst.scheduleRetry(m, 0, cfg.MaxRetries) // budget already spent
	if got := inst.Parked(); !slices.Equal(got, []graph.NodeID{m}) {
		t.Fatalf("Parked() = %v, want [%d]", got, m)
	}
}

// TestInjectErrorsTyped pins the typed sentinels of the event-injection API.
func TestInjectErrorsTyped(t *testing.T) {
	inst := testInstance(t, DefaultConfig())

	if err := inst.InjectFailureSet(-1, failure.LinkDown(0, 1)); !errors.Is(err, ErrPastEvent) {
		t.Errorf("InjectFailureSet(past) = %v, want ErrPastEvent", err)
	}
	if err := inst.InjectRepair(-1, failure.LinkDown(0, 1)); !errors.Is(err, ErrPastEvent) {
		t.Errorf("InjectRepair(past) = %v, want ErrPastEvent", err)
	}
	if err := inst.InjectFailureSet(10); !errors.Is(err, failure.ErrBadSchedule) {
		t.Errorf("InjectFailureSet(empty) = %v, want ErrBadSchedule", err)
	}

	bad := DefaultConfig()
	bad.HoldTime = bad.RefreshInterval // needs HoldTime > RefreshInterval
	if err := bad.Validate(); !errors.Is(err, ErrBadConfig) {
		t.Errorf("Validate(bad hold time) = %v, want ErrBadConfig", err)
	}
	bad = DefaultConfig()
	bad.RetryBackoff = -1
	if err := bad.Validate(); !errors.Is(err, ErrBadConfig) {
		t.Errorf("Validate(negative backoff) = %v, want ErrBadConfig", err)
	}
}
