package protocol

import (
	"errors"
	"fmt"
	"slices"

	"smrp/internal/eventsim"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/multicast"
	"smrp/internal/routing"
	"smrp/internal/spfbase"
	"smrp/internal/trace"
)

// SPFInstance is the message-level SPF/PIM-style baseline: joins follow
// unicast routes, and recovery waits for unicast reconvergence (the global
// detour).
type SPFInstance struct {
	cfg     Config
	engine  *eventsim.Engine
	net     *eventsim.Network
	domain  *routing.Domain
	session *spfbase.Session

	lastRefresh  map[graph.NodeID]eventsim.Time
	restorations map[graph.NodeID]Restoration
	failedAt     eventsim.Time
	trace        *trace.Log
	// scratch is the reusable root-path buffer for refresh ticks and leaves
	// (SendAlong copies its path, and the engine is single-threaded).
	scratch graph.Path
}

// SetTrace installs an event log (nil disables tracing).
func (i *SPFInstance) SetTrace(l *trace.Log) { i.trace = l }

// NewSPFInstance builds an SPF protocol instance over g rooted at source.
func NewSPFInstance(g *graph.Graph, source graph.NodeID, cfg Config) (*SPFInstance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	engine := eventsim.NewEngine()
	dom, err := routing.NewDomain(g, cfg.Routing)
	if err != nil {
		return nil, err
	}
	sess, err := spfbase.NewSession(g, source)
	if err != nil {
		return nil, err
	}
	inst := &SPFInstance{
		cfg:          cfg,
		engine:       engine,
		net:          eventsim.NewNetwork(engine, g),
		domain:       dom,
		session:      sess,
		lastRefresh:  make(map[graph.NodeID]eventsim.Time),
		restorations: make(map[graph.NodeID]Restoration),
	}
	for n := 0; n < g.NumNodes(); n++ {
		inst.net.Register(graph.NodeID(n), func(graph.NodeID, eventsim.Message) {})
	}
	return inst, nil
}

// Engine exposes the driving engine.
func (i *SPFInstance) Engine() *eventsim.Engine { return i.engine }

// Network exposes the message layer.
func (i *SPFInstance) Network() *eventsim.Network { return i.net }

// Session exposes the control-plane state (read-only use).
func (i *SPFInstance) Session() *spfbase.Session { return i.session }

// Run drives the simulation until the horizon.
func (i *SPFInstance) Run(until eventsim.Time) error { return i.engine.Run(until) }

// ScheduleJoin enqueues a PIM-style join toward the source at the given
// time.
func (i *SPFInstance) ScheduleJoin(at eventsim.Time, m graph.NodeID) error {
	if at < i.engine.Now() {
		return fmt.Errorf("protocol: join of %d scheduled in the past", m)
	}
	_, err := i.engine.Schedule(at-i.engine.Now(), func() {
		tr := i.session.Tree()
		if tr.IsMember(m) {
			return
		}
		if err := i.session.Join(m); err != nil {
			return
		}
		if p, err := tr.PathToSource(m); err == nil && len(p) >= 2 {
			_ = i.net.SendAlong(p, JoinReq{Member: m, Path: p.Reverse()})
		}
		i.trace.Add(i.engine.Now(), trace.CatJoin, m, "joined along unicast path")
		i.armRefresh(m)
	})
	return err
}

// armRefresh starts the member's periodic soft-state refresh (PIM-style
// periodic Join/Prune along the member's branch).
func (i *SPFInstance) armRefresh(m graph.NodeID) {
	i.lastRefresh[m] = i.engine.Now()
	var tick func()
	tick = func() {
		if !i.session.Tree().IsMember(m) {
			return
		}
		p, err := i.session.Tree().AppendPathToSource(i.scratch[:0], m)
		i.scratch = p[:0]
		if err == nil && len(p) >= 2 {
			_ = i.net.SendAlong(p, Refresh{Member: m})
		}
		i.lastRefresh[m] = i.engine.Now()
		i.engine.MustSchedule(i.cfg.RefreshInterval, tick)
	}
	i.engine.MustSchedule(i.cfg.RefreshInterval, tick)
}

// LastRefresh returns when member m last refreshed its branch.
func (i *SPFInstance) LastRefresh(m graph.NodeID) (eventsim.Time, bool) {
	t, ok := i.lastRefresh[m]
	return t, ok
}

// ScheduleLeave enqueues a member departure.
func (i *SPFInstance) ScheduleLeave(at eventsim.Time, m graph.NodeID) error {
	if at < i.engine.Now() {
		return fmt.Errorf("protocol: leave of %d scheduled in the past", m)
	}
	_, err := i.engine.Schedule(at-i.engine.Now(), func() {
		tr := i.session.Tree()
		if !tr.IsMember(m) {
			return
		}
		p, err := tr.AppendPathToSource(i.scratch[:0], m)
		i.scratch = p[:0]
		if err == nil && len(p) >= 2 {
			_ = i.net.SendAlong(p, LeaveReq{Member: m})
		}
		_ = i.session.Leave(m)
	})
	return err
}

// InjectFailure schedules a persistent failure. Every disconnected member
// rejoins only after its router's unicast table has reconverged — the
// global-detour latency the paper's related work measured for PIM/OSPF.
func (i *SPFInstance) InjectFailure(at eventsim.Time, f failure.Failure) error {
	if at < i.engine.Now() {
		return errors.New("protocol: failure scheduled in the past")
	}
	_, err := i.engine.Schedule(at-i.engine.Now(), func() { i.onFailure(f) })
	return err
}

func (i *SPFInstance) onFailure(f failure.Failure) {
	i.failedAt = i.engine.Now()
	i.trace.Add(i.engine.Now(), trace.CatFailure, graph.Invalid, "%v injected", f)
	switch f.Kind {
	case failure.LinkFailure:
		i.net.FailLink(f.Edge.A, f.Edge.B)
	case failure.NodeFailure:
		i.net.FailNode(f.Node)
	}
	mask := i.net.Failed()
	tr := i.session.Tree()
	disconnected := failure.DisconnectedMembers(tr, mask)

	// Measure the global detour per member against the pre-recovery tree.
	rds := make(map[graph.NodeID]float64, len(disconnected))
	for _, m := range disconnected {
		if _, rd, err := failure.GlobalDetour(tr, mask, m); err == nil {
			rds[m] = rd
		}
	}

	// Flush dead control state; members rejoin individually below.
	if _, err := i.session.FlushDead(mask); err != nil {
		return
	}

	i.domain.ApplyFailure(f)
	for _, m := range disconnected {
		m := m
		rd, ok := rds[m]
		if !ok {
			continue // unrecoverable
		}
		conv := i.domain.ConvergenceTime(m, f)
		if conv == eventsim.Infinity {
			continue
		}
		i.engine.MustSchedule(conv, func() {
			i.rejoin(m, rd, i.failedAt+conv, 0)
		})
	}
}

// rejoin sends the member's Join_Req along its reconverged unicast route;
// the branch is live when the request reaches the first on-tree node.
func (i *SPFInstance) rejoin(m graph.NodeID, rd float64, detectedAt eventsim.Time, attempt int) {
	tr := i.session.Tree()
	if tr.IsMember(m) || attempt > maxRecoveryRetries {
		return
	}
	if tr.OnTree(m) {
		// m came back as a relay on another member's rejoin; it becomes a
		// member in place — data already flows through it.
		if err := tr.Graft(graph.Path{m}, true); err == nil {
			i.restorations[m] = Restoration{
				Member:     m,
				DetectedAt: detectedAt,
				RestoredAt: i.engine.Now(),
				Latency:    i.engine.Now() - i.failedAt,
			}
		}
		return
	}
	newPath := i.domain.PathTo(m, tr.Source())
	if newPath == nil {
		return
	}
	seg := mergePrefix(tr, newPath)
	if seg == nil {
		return
	}
	joinDist, err := seg.Weight(i.net.Graph())
	if err != nil {
		return
	}
	i.engine.MustSchedule(eventsim.Time(joinDist), func() {
		i.applyRejoin(m, rd, detectedAt, attempt)
	})
	_ = i.net.SendAlong(seg, JoinReq{Member: m, Path: seg.Reverse()})
}

// mergePrefix trims a member-rooted path (m → … → source) to the segment
// ending at the first on-tree node (the portion a Join_Req actually
// travels). It returns nil when the path immediately starts on the tree or
// never reaches it.
func mergePrefix(tr *multicast.Tree, p graph.Path) graph.Path {
	var seg graph.Path
	for _, n := range p {
		seg = append(seg, n)
		if tr.OnTree(n) {
			if len(seg) < 2 {
				return nil
			}
			return seg
		}
	}
	return nil
}

// applyRejoin grafts m along the current merge prefix of its unicast route
// (re-resolved: the tree may have grown through other rejoins).
func (i *SPFInstance) applyRejoin(m graph.NodeID, rd float64, detectedAt eventsim.Time, attempt int) {
	tr := i.session.Tree()
	if tr.IsMember(m) {
		return
	}
	if tr.OnTree(m) {
		if err := tr.Graft(graph.Path{m}, true); err != nil {
			return
		}
	} else {
		newPath := i.domain.PathTo(m, tr.Source())
		if newPath == nil {
			return
		}
		seg := mergePrefix(tr, newPath)
		if seg == nil {
			return
		}
		if err := tr.Graft(seg.Reverse(), true); err != nil {
			// A concurrent graft collided; re-resolve immediately.
			i.rejoin(m, rd, detectedAt, attempt+1)
			return
		}
	}
	i.restorations[m] = Restoration{
		Member:           m,
		DetectedAt:       detectedAt,
		RestoredAt:       i.engine.Now(),
		Latency:          i.engine.Now() - i.failedAt,
		RecoveryDistance: rd,
	}
	i.trace.Add(i.engine.Now(), trace.CatRecovery, m,
		"rejoined after reconvergence rd=%.3f latency=%.3f", rd, float64(i.engine.Now()-i.failedAt))
}

// Restorations returns the recorded per-member recoveries, sorted by member.
func (i *SPFInstance) Restorations() []Restoration {
	out := make([]Restoration, 0, len(i.restorations))
	for _, r := range i.restorations {
		out = append(out, r)
	}
	slices.SortFunc(out, func(a, b Restoration) int { return int(a.Member - b.Member) })
	return out
}

// Multicast delivers one data packet from the source over the current tree.
func (i *SPFInstance) Multicast() map[graph.NodeID]eventsim.Time {
	return multicastOver(i.session.Tree(), i.net.Failed())
}

// multicastOver computes per-member delivery offsets of one packet flooded
// down the tree, skipping branches cut by the mask.
func multicastOver(tr *multicast.Tree, mask *graph.Mask) map[graph.NodeID]eventsim.Time {
	out := make(map[graph.NodeID]eventsim.Time)
	g := tr.Graph()
	type item struct {
		node graph.NodeID
		at   float64
	}
	stack := []item{{node: tr.Source(), at: 0}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if tr.IsMember(it.node) {
			out[it.node] = eventsim.Time(it.at)
		}
		for _, k := range tr.Children(it.node) {
			if mask.NodeBlocked(k) || mask.EdgeBlocked(it.node, k) {
				continue
			}
			w, _ := g.EdgeWeight(it.node, k)
			stack = append(stack, item{node: k, at: it.at + w})
		}
	}
	return out
}
