package multicast

import (
	"math/rand"
	"runtime/debug"
	"testing"

	"smrp/internal/graph"
)

// benchChurnFixture builds a deterministic random connected graph, grows a
// tree with k members on it, and returns a leaf member plus the path that
// regrafts it after a Leave — the steady-state churn cycle the benchmarks
// and the allocation guard below all share.
func benchChurnFixture(tb testing.TB, n, extraEdges, k int, sparse bool) (*Tree, graph.NodeID, graph.Path) {
	tb.Helper()
	rng := rand.New(rand.NewSource(2005))
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), 1+rng.Float64()); err != nil {
			tb.Fatal(err)
		}
	}
	for i := 0; i < extraEdges; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v && !g.HasEdge(u, v) {
			if err := g.AddEdge(u, v, 1+rng.Float64()); err != nil {
				tb.Fatal(err)
			}
		}
	}
	newFn := New
	if sparse {
		newFn = NewSparse
	}
	tr, err := newFn(g, 0)
	if err != nil {
		tb.Fatal(err)
	}
	for joined := 0; joined < k; {
		m := graph.NodeID(rng.Intn(n))
		if tr.IsMember(m) {
			continue
		}
		if tr.OnTree(m) {
			if err := tr.Graft(graph.Path{m}, true); err != nil {
				tb.Fatal(err)
			}
		} else {
			_, p, _ := g.NearestOf(m, nil, tr.OnTree)
			if p == nil {
				continue
			}
			if err := tr.Graft(p.Reverse(), true); err != nil {
				tb.Fatal(err)
			}
		}
		joined++
	}
	// Pick a deterministic leaf member and derive its churn cycle: leave,
	// then regraft along the residual shortest path back to the tree.
	var leaf graph.NodeID = graph.Invalid
	for _, m := range tr.Members() {
		if len(tr.Children(m)) == 0 && m != tr.Source() {
			leaf = m
			break
		}
	}
	if leaf == graph.Invalid {
		tb.Fatal("no leaf member in bench fixture")
	}
	if err := tr.Leave(leaf); err != nil {
		tb.Fatal(err)
	}
	_, p, _ := g.NearestOf(leaf, nil, tr.OnTree)
	if p == nil {
		tb.Fatal("leaf cannot regraft")
	}
	regraft := p.Reverse()
	if err := tr.Graft(regraft, true); err != nil {
		tb.Fatal(err)
	}
	return tr, leaf, regraft
}

// BenchmarkTreeGraftLeave measures one warm membership churn cycle — a leaf
// member leaves (pruning its relay chain) and regrafts along the same path —
// the tree-state half of the per-event join/leave hot path.
func BenchmarkTreeGraftLeave(b *testing.B) {
	tr, leaf, regraft := benchChurnFixture(b, 200, 200, 40, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Leave(leaf); err != nil {
			b.Fatal(err)
		}
		if err := tr.Graft(regraft, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeChurnBackends is the sparse-vs-dense churn comparison at
// megascale (N = 10⁵): the same warm leave/regraft cycle on both storage
// backends over an identical topology. The sparse backend pays hash probes
// along the O(depth) walks; the payoff is the standing-bytes column reported
// by each sub-benchmark (dense O(N) arrays vs O(|tree|) slots).
func BenchmarkTreeChurnBackends(b *testing.B) {
	const n, extra, k = 100_000, 100_000, 64
	for _, mode := range []struct {
		name   string
		sparse bool
	}{{"dense", false}, {"sparse", true}} {
		b.Run(mode.name, func(b *testing.B) {
			tr, leaf, regraft := benchChurnFixture(b, n, extra, k, mode.sparse)
			b.ReportAllocs()
			b.ReportMetric(float64(tr.MemoryFootprint()), "standing-B")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tr.Leave(leaf); err != nil {
					b.Fatal(err)
				}
				if err := tr.Graft(regraft, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestTreeSteadyStateAllocs pins the warm join/leave cycle at zero heap
// allocations, mirroring TestSweepSteadyStateAllocs: once the tree's backing
// arrays have grown to steady state, membership churn must not allocate. GC
// is disabled so a collection cannot shrink pooled storage mid-measurement.
func TestTreeSteadyStateAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	for _, mode := range []struct {
		name   string
		sparse bool
	}{{"dense", false}, {"sparse", true}} {
		t.Run(mode.name, func(t *testing.T) {
			tr, leaf, regraft := benchChurnFixture(t, 200, 200, 40, mode.sparse)
			// Warm: one full cycle outside the measurement.
			if err := tr.Leave(leaf); err != nil {
				t.Fatal(err)
			}
			if err := tr.Graft(regraft, true); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(50, func() {
				if err := tr.Leave(leaf); err != nil {
					t.Fatal(err)
				}
				if err := tr.Graft(regraft, true); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state graft/leave allocated %.1f times per cycle, want 0", allocs)
			}
		})
	}
}
