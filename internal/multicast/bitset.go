package multicast

import (
	"math/bits"

	"smrp/internal/graph"
)

// bitset is a dense set of NodeIDs backed by 64-bit words. The zero value is
// an empty set; grow before setting bits. NodeIDs are dense (0..V-1), so a
// bitset over a topology costs V/8 bytes and membership tests are a shift
// and a mask — no hashing, no per-entry allocation.
type bitset []uint64

// newBitset returns a bitset able to hold IDs 0..n-1.
func newBitset(n int) bitset {
	return make(bitset, (n+63)>>6)
}

// grown returns b extended (if needed) to hold IDs 0..n-1.
func (b bitset) grown(n int) bitset {
	want := (n + 63) >> 6
	if want <= len(b) {
		return b
	}
	nb := make(bitset, want)
	copy(nb, b)
	return nb
}

// grownCap returns b extended to hold IDs 0..n-1 with amortized-doubling
// capacity, for callers that grow one ID at a time (the sparse tree backend
// appends slots individually; plain grown would copy the whole set every 64
// appends).
func (b bitset) grownCap(n int) bitset {
	want := (n + 63) >> 6
	if want <= len(b) {
		return b
	}
	if want <= cap(b) {
		// The backing array was zeroed at make time and words beyond len are
		// never written, so reslicing exposes cleared bits.
		return b[:want]
	}
	newCap := 2 * cap(b)
	if newCap < want {
		newCap = want
	}
	nb := make(bitset, want, newCap)
	copy(nb, b)
	return nb
}

// has reports whether id is in the set. IDs outside the allocated range are
// absent, so callers may probe arbitrary (even negative) NodeIDs safely.
func (b bitset) has(id graph.NodeID) bool {
	if id < 0 {
		return false
	}
	w := int(id) >> 6
	return w < len(b) && (b[w]>>(uint(id)&63))&1 == 1
}

// set adds id to the set (id must be within the allocated range).
func (b bitset) set(id graph.NodeID) { b[int(id)>>6] |= 1 << (uint(id) & 63) }

// clear removes id from the set (id must be within the allocated range).
func (b bitset) clear(id graph.NodeID) { b[int(id)>>6] &^= 1 << (uint(id) & 63) }

// appendIDs appends the set's members to dst in ascending order and returns
// the extended slice.
func (b bitset) appendIDs(dst []graph.NodeID) []graph.NodeID {
	for wi, w := range b {
		base := graph.NodeID(wi << 6)
		for w != 0 {
			dst = append(dst, base+graph.NodeID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// trailingZeros aliases bits.TrailingZeros64 so word-iteration loops in
// tree.go read cleanly.
func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }

// clone returns an independent copy of the set.
func (b bitset) clone() bitset {
	nb := make(bitset, len(b))
	copy(nb, b)
	return nb
}
