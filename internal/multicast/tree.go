// Package multicast provides the shared multicast-tree substrate used by
// both the SMRP protocol (internal/core) and the SPF-based baseline
// (internal/spfbase): a source-rooted tree overlaid on a network graph, with
// member bookkeeping, grafting/pruning, rerouting, per-member delay, tree
// cost, and structural validation.
//
// Terminology follows the paper: the tree is rooted at the multicast source
// S; "members" are receivers (which may be interior nodes); N_R is the
// number of members in the subtree rooted at R.
package multicast

import (
	"errors"
	"fmt"
	"sort"

	"smrp/internal/graph"
)

// Sentinel errors returned by tree mutations.
var (
	// ErrNotOnTree is returned when an operation names a node that is not
	// part of the tree.
	ErrNotOnTree = errors.New("multicast: node not on tree")
	// ErrAlreadyOnTree is returned when a graft would re-add an on-tree node.
	ErrAlreadyOnTree = errors.New("multicast: node already on tree")
	// ErrNotMember is returned when a member operation names a non-member.
	ErrNotMember = errors.New("multicast: node is not a member")
)

// Tree is a source-rooted multicast tree overlaid on a Graph. The zero value
// is not usable; construct with New.
//
// Tree is not safe for concurrent mutation.
type Tree struct {
	g        *graph.Graph
	source   graph.NodeID
	parent   map[graph.NodeID]graph.NodeID
	children map[graph.NodeID][]graph.NodeID
	members  map[graph.NodeID]bool
}

// New returns an empty tree on g rooted at source. The source is on the
// tree from the start (as in PIM, the root's state always exists).
func New(g *graph.Graph, source graph.NodeID) (*Tree, error) {
	if source < 0 || int(source) >= g.NumNodes() {
		return nil, fmt.Errorf("multicast: source %d not in graph", source)
	}
	return &Tree{
		g:        g,
		source:   source,
		parent:   map[graph.NodeID]graph.NodeID{source: graph.Invalid},
		children: make(map[graph.NodeID][]graph.NodeID),
		members:  make(map[graph.NodeID]bool),
	}, nil
}

// Graph returns the underlying network graph.
func (t *Tree) Graph() *graph.Graph { return t.g }

// Source returns the tree's root.
func (t *Tree) Source() graph.NodeID { return t.source }

// OnTree reports whether n currently has tree state.
func (t *Tree) OnTree(n graph.NodeID) bool {
	_, ok := t.parent[n]
	return ok
}

// IsMember reports whether n is a receiver of the session.
func (t *Tree) IsMember(n graph.NodeID) bool { return t.members[n] }

// Parent returns the upstream node of n (Invalid for the source) and whether
// n is on the tree.
func (t *Tree) Parent(n graph.NodeID) (graph.NodeID, bool) {
	p, ok := t.parent[n]
	return p, ok
}

// Children returns a copy of n's downstream neighbors, in ascending order.
func (t *Tree) Children(n graph.NodeID) []graph.NodeID {
	kids := t.children[n]
	out := make([]graph.NodeID, len(kids))
	copy(out, kids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Members returns the current receivers in ascending order.
func (t *Tree) Members() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(t.members))
	for m := range t.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumMembers returns the number of receivers.
func (t *Tree) NumMembers() int { return len(t.members) }

// Nodes returns all on-tree nodes in ascending order (the source is always
// included).
func (t *Tree) Nodes() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(t.parent))
	for n := range t.parent {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumNodes returns the number of on-tree nodes.
func (t *Tree) NumNodes() int { return len(t.parent) }

// Edges returns the tree's edges as canonical EdgeIDs in deterministic
// order.
func (t *Tree) Edges() []graph.EdgeID {
	out := make([]graph.EdgeID, 0, len(t.parent)-1)
	for n, p := range t.parent {
		if p != graph.Invalid {
			out = append(out, graph.MakeEdgeID(n, p))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// UsesEdge reports whether the tree traverses the undirected edge e.
func (t *Tree) UsesEdge(e graph.EdgeID) bool {
	if p, ok := t.parent[e.A]; ok && p == e.B {
		return true
	}
	if p, ok := t.parent[e.B]; ok && p == e.A {
		return true
	}
	return false
}

// PathToSource returns the on-tree path from n up to the source (n first).
func (t *Tree) PathToSource(n graph.NodeID) (graph.Path, error) {
	if !t.OnTree(n) {
		return nil, fmt.Errorf("path to source from %d: %w", n, ErrNotOnTree)
	}
	var p graph.Path
	for cur := n; cur != graph.Invalid; cur = t.parent[cur] {
		p = append(p, cur)
		if len(p) > t.g.NumNodes() {
			return nil, fmt.Errorf("path to source from %d: cycle in tree", n)
		}
	}
	return p, nil
}

// DelayTo returns the total weight of the on-tree path from the source to n
// (the end-to-end delay D_{S,R} of the paper).
func (t *Tree) DelayTo(n graph.NodeID) (float64, error) {
	p, err := t.PathToSource(n)
	if err != nil {
		return 0, err
	}
	return p.Weight(t.g)
}

// Cost returns the sum of all tree-edge weights (the paper's Cost_T).
func (t *Tree) Cost() (float64, error) {
	var total float64
	for n, p := range t.parent {
		if p == graph.Invalid {
			continue
		}
		w, ok := t.g.EdgeWeight(n, p)
		if !ok {
			return 0, fmt.Errorf("tree cost: %d-%d is not a graph edge", n, p)
		}
		total += w
	}
	return total, nil
}

// Graft extends the tree along p, which must run from an on-tree node
// (p.First(), the merger) to the joining node (p.Last()); every intermediate
// node must be off-tree. The final node becomes a member when markMember is
// true. A single-node path (member already on tree, e.g. an on-tree router
// becoming a receiver) is allowed.
func (t *Tree) Graft(p graph.Path, markMember bool) error {
	if len(p) == 0 {
		return errors.New("multicast: graft of empty path")
	}
	if !t.OnTree(p.First()) {
		return fmt.Errorf("graft at %d: %w", p.First(), ErrNotOnTree)
	}
	if err := p.Validate(t.g); err != nil {
		return fmt.Errorf("graft: %w", err)
	}
	for _, n := range p[1:] {
		if t.OnTree(n) {
			return fmt.Errorf("graft through %d: %w", n, ErrAlreadyOnTree)
		}
	}
	if !p.IsSimple() {
		return errors.New("multicast: graft path is not simple")
	}
	for i := 1; i < len(p); i++ {
		t.attach(p[i], p[i-1])
	}
	if markMember {
		t.members[p.Last()] = true
	}
	return nil
}

// attach links child under par (both assumed consistent with caller checks).
func (t *Tree) attach(child, par graph.NodeID) {
	t.parent[child] = par
	t.children[par] = append(t.children[par], child)
}

// detach unlinks child from its parent without pruning.
func (t *Tree) detach(child graph.NodeID) {
	par := t.parent[child]
	if par != graph.Invalid {
		kids := t.children[par]
		for i, k := range kids {
			if k == child {
				t.children[par] = append(kids[:i], kids[i+1:]...)
				break
			}
		}
		if len(t.children[par]) == 0 {
			delete(t.children, par)
		}
	}
	delete(t.parent, child)
}

// Leave removes member m from the session and prunes the now-unneeded chain
// of relays toward the source, mirroring the paper's Leave_Req processing:
// state is cleared hop by hop until a node with remaining downstream members
// (or the source, or another member) is reached.
func (t *Tree) Leave(m graph.NodeID) error {
	if !t.members[m] {
		return fmt.Errorf("leave %d: %w", m, ErrNotMember)
	}
	delete(t.members, m)
	t.pruneUpward(m)
	return nil
}

// pruneUpward removes n and its ancestors while they are leaf relays
// (no children, not a member, not the source).
func (t *Tree) pruneUpward(n graph.NodeID) {
	for n != graph.Invalid && n != t.source && len(t.children[n]) == 0 && !t.members[n] {
		par := t.parent[n]
		t.detach(n)
		n = par
	}
}

// SubtreeNodes returns all nodes in the subtree rooted at r (including r),
// in ascending order.
func (t *Tree) SubtreeNodes(r graph.NodeID) ([]graph.NodeID, error) {
	if !t.OnTree(r) {
		return nil, fmt.Errorf("subtree of %d: %w", r, ErrNotOnTree)
	}
	var out []graph.NodeID
	stack := []graph.NodeID{r}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, n)
		stack = append(stack, t.children[n]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// MemberCount returns N_R, the number of members in the subtree rooted at r.
func (t *Tree) MemberCount(r graph.NodeID) (int, error) {
	nodes, err := t.SubtreeNodes(r)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, n := range nodes {
		if t.members[n] {
			count++
		}
	}
	return count, nil
}

// MemberCounts returns N_R for every on-tree node in a single bottom-up
// pass; the map is keyed by node ID.
func (t *Tree) MemberCounts() map[graph.NodeID]int {
	counts := make(map[graph.NodeID]int, len(t.parent))
	// Post-order accumulate: iterative DFS with an explicit visit stack.
	type frame struct {
		node    graph.NodeID
		visited bool
	}
	stack := []frame{{node: t.source}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.visited {
			c := 0
			if t.members[f.node] {
				c = 1
			}
			for _, k := range t.children[f.node] {
				c += counts[k]
			}
			counts[f.node] = c
			continue
		}
		stack = append(stack, frame{node: f.node, visited: true})
		for _, k := range t.children[f.node] {
			stack = append(stack, frame{node: k})
		}
	}
	return counts
}

// Reroute moves member m (together with its whole subtree) onto newPath,
// which must run from an on-tree merger (newPath.First()) to m
// (newPath.Last()); intermediates must be off-tree, and the merger must not
// lie inside m's own subtree (that would create a cycle). The old upstream
// chain is pruned as in Leave. This implements the switch step of the
// paper's tree-reshaping procedure (§3.2.3).
func (t *Tree) Reroute(m graph.NodeID, newPath graph.Path) error {
	if !t.OnTree(m) {
		return fmt.Errorf("reroute %d: %w", m, ErrNotOnTree)
	}
	if len(newPath) < 2 {
		return errors.New("multicast: reroute path must have at least one edge")
	}
	if newPath.Last() != m {
		return fmt.Errorf("reroute: path ends at %d, not member %d", newPath.Last(), m)
	}
	if err := newPath.Validate(t.g); err != nil {
		return fmt.Errorf("reroute: %w", err)
	}
	if !newPath.IsSimple() {
		return errors.New("multicast: reroute path is not simple")
	}
	merger := newPath.First()
	if !t.OnTree(merger) {
		return fmt.Errorf("reroute merger %d: %w", merger, ErrNotOnTree)
	}
	sub, err := t.SubtreeNodes(m)
	if err != nil {
		return err
	}
	inSub := make(map[graph.NodeID]bool, len(sub))
	for _, n := range sub {
		inSub[n] = true
	}
	if inSub[merger] {
		return fmt.Errorf("reroute: merger %d is inside %d's subtree", merger, m)
	}
	for _, n := range newPath[1 : len(newPath)-1] {
		if t.OnTree(n) {
			return fmt.Errorf("reroute through %d: %w", n, ErrAlreadyOnTree)
		}
	}
	oldParent := t.parent[m]
	t.detach(m)
	// Attach the new chain from the merger down to m.
	for i := 1; i < len(newPath); i++ {
		if newPath[i] == m {
			t.attach(m, newPath[i-1])
		} else {
			t.attach(newPath[i], newPath[i-1])
		}
	}
	t.pruneUpward(oldParent)
	return nil
}

// RemoveSubtree deletes r and every node below it from the tree (members
// included) and prunes the now-unneeded relay chain above r. Removing the
// source is rejected. SMRP's reshaping uses this on a clone to evaluate SHR
// values "as if" the reshaping member's subtree had left (the adjustment
// step of §3.2.3).
func (t *Tree) RemoveSubtree(r graph.NodeID) error {
	if !t.OnTree(r) {
		return fmt.Errorf("remove subtree %d: %w", r, ErrNotOnTree)
	}
	if r == t.source {
		return errors.New("multicast: cannot remove the source's subtree")
	}
	sub, err := t.SubtreeNodes(r)
	if err != nil {
		return err
	}
	oldParent := t.parent[r]
	t.detach(r)
	for _, n := range sub {
		delete(t.parent, n)
		delete(t.children, n)
		delete(t.members, n)
	}
	t.pruneUpward(oldParent)
	return nil
}

// DetachSubtree removes r and every node below it like RemoveSubtree, but
// leaves the relay chain above r in place even if it no longer serves any
// member. Failure recovery uses this to flush dead state while keeping
// surviving relays (whose soft state has not yet expired) available as
// local-detour targets; PruneStale reclaims them afterwards.
func (t *Tree) DetachSubtree(r graph.NodeID) error {
	if !t.OnTree(r) {
		return fmt.Errorf("detach subtree %d: %w", r, ErrNotOnTree)
	}
	if r == t.source {
		return errors.New("multicast: cannot detach the source's subtree")
	}
	sub, err := t.SubtreeNodes(r)
	if err != nil {
		return err
	}
	t.detach(r)
	for _, n := range sub {
		delete(t.parent, n)
		delete(t.children, n)
		delete(t.members, n)
	}
	return nil
}

// PruneStale removes every relay chain that serves no member (childless,
// non-member, non-source nodes, applied to fixpoint), modeling soft-state
// expiry of branches left behind by recovery. It returns the nodes removed.
func (t *Tree) PruneStale() []graph.NodeID {
	var removed []graph.NodeID
	for {
		var victims []graph.NodeID
		for n := range t.parent {
			if n != t.source && len(t.children[n]) == 0 && !t.members[n] {
				victims = append(victims, n)
			}
		}
		if len(victims) == 0 {
			sort.Slice(removed, func(i, j int) bool { return removed[i] < removed[j] })
			return removed
		}
		for _, n := range victims {
			t.detach(n)
			removed = append(removed, n)
		}
	}
}

// Clone returns a deep copy of the tree sharing the same graph.
func (t *Tree) Clone() *Tree {
	c := &Tree{
		g:        t.g,
		source:   t.source,
		parent:   make(map[graph.NodeID]graph.NodeID, len(t.parent)),
		children: make(map[graph.NodeID][]graph.NodeID, len(t.children)),
		members:  make(map[graph.NodeID]bool, len(t.members)),
	}
	for n, p := range t.parent {
		c.parent[n] = p
	}
	for n, kids := range t.children {
		cp := make([]graph.NodeID, len(kids))
		copy(cp, kids)
		c.children[n] = cp
	}
	for m := range t.members {
		c.members[m] = true
	}
	return c
}

// Validate checks the tree's structural invariants: every non-source node
// has a parent reachable from the source, parent/children maps agree, every
// tree edge exists in the graph, and members are on the tree. It returns the
// first violation found.
func (t *Tree) Validate() error {
	if _, ok := t.parent[t.source]; !ok {
		return errors.New("multicast: source missing from tree")
	}
	if t.parent[t.source] != graph.Invalid {
		return errors.New("multicast: source has a parent")
	}
	// children↔parent agreement and edge existence.
	for n, p := range t.parent {
		if p == graph.Invalid {
			if n != t.source {
				return fmt.Errorf("multicast: node %d has no parent but is not the source", n)
			}
			continue
		}
		if !t.g.HasEdge(n, p) {
			return fmt.Errorf("multicast: tree link %d-%d is not a graph edge", n, p)
		}
		found := false
		for _, k := range t.children[p] {
			if k == n {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("multicast: %d not recorded as child of %d", n, p)
		}
	}
	for p, kids := range t.children {
		for _, k := range kids {
			if t.parent[k] != p {
				return fmt.Errorf("multicast: child %d of %d has parent %v", k, p, t.parent[k])
			}
		}
	}
	// Reachability (no cycles, no orphan islands).
	reached := 0
	stack := []graph.NodeID{t.source}
	seen := map[graph.NodeID]bool{t.source: true}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		reached++
		for _, k := range t.children[n] {
			if seen[k] {
				return fmt.Errorf("multicast: node %d reached twice (cycle)", k)
			}
			seen[k] = true
			stack = append(stack, k)
		}
	}
	if reached != len(t.parent) {
		return fmt.Errorf("multicast: %d nodes on tree but only %d reachable from source", len(t.parent), reached)
	}
	for m := range t.members {
		if !t.OnTree(m) {
			return fmt.Errorf("multicast: member %d not on tree", m)
		}
	}
	return nil
}
