// Package multicast provides the shared multicast-tree substrate used by
// both the SMRP protocol (internal/core) and the SPF-based baseline
// (internal/spfbase): a source-rooted tree overlaid on a network graph, with
// member bookkeeping, grafting/pruning, rerouting, per-member delay, tree
// cost, and structural validation.
//
// Terminology follows the paper: the tree is rooted at the multicast source
// S; "members" are receivers (which may be interior nodes); N_R is the
// number of members in the subtree rooted at R.
//
// Storage comes in two backends behind one Tree type. The dense backend
// (New) exploits that graph.NodeID is a compact integer in 0..NumNodes()-1:
// tree state lives in NodeID-indexed arrays (parent vector, per-node
// children lists kept in ascending order, member and on-tree bitsets, and a
// cached N_R column maintained incrementally along the O(depth) root path of
// every mutation). The sparse backend (NewSparse) stores the same arrays
// indexed by a compact touched-node remap instead, so a tree's standing
// bytes are O(nodes ever touched) rather than O(topology) — the
// megascale/multigroup regime where thousands of trees each cover a tiny
// fraction of a million-node graph. Slots are never freed (a node that
// leaves keeps its slot as a tombstone), which is what preserves the
// zero-steady-state-allocation guarantee under membership churn in both
// backends. Every observable output — node/member/edge enumeration order,
// Cost's float summation order, epochs — is bit-identical between the two.
package multicast

import (
	"errors"
	"fmt"
	"maps"
	"slices"

	"smrp/internal/graph"
)

// Sentinel errors returned by tree mutations.
var (
	// ErrNotOnTree is returned when an operation names a node that is not
	// part of the tree.
	ErrNotOnTree = errors.New("multicast: node not on tree")
	// ErrAlreadyOnTree is returned when a graft would re-add an on-tree node.
	ErrAlreadyOnTree = errors.New("multicast: node already on tree")
	// ErrNotMember is returned when a member operation names a non-member.
	ErrNotMember = errors.New("multicast: node is not a member")
)

// Tree is a source-rooted multicast tree overlaid on a Graph. The zero value
// is not usable; construct with New (dense storage) or NewSparse (compact
// touched-node storage).
//
// Tree is not safe for concurrent mutation.
type Tree struct {
	g      *graph.Graph
	source graph.NodeID

	// Slot-indexed state. Under dense storage the slot of node n is n
	// itself; under sparse storage slots are assigned in touch order and
	// translated through slotOf/nodeOf. parent and nr are meaningful only
	// for slots whose onTree bit is set; children lists hold NodeIDs (not
	// slots) in ascending order so accessors never re-sort, and keep their
	// backing capacity when a node leaves so warm churn does not allocate.
	parent   []graph.NodeID
	children [][]graph.NodeID
	onTree   bitset
	members  bitset
	// nr caches N_R — the number of members in the subtree rooted at each
	// on-tree node — maintained incrementally: every membership or
	// attachment change walks the O(depth) root path applying ±δ instead
	// of recounting the tree.
	nr []int32

	// Sparse backend: slotOf maps a touched node to its slot, nodeOf is the
	// inverse. nil slotOf selects dense storage. scratch is a reusable
	// buffer for ascending-NodeID iteration (slot order is touch order, so
	// ordered walks collect and sort into it).
	slotOf  map[graph.NodeID]int32
	nodeOf  []graph.NodeID
	scratch []graph.NodeID

	nNodes   int
	nMembers int
	// epoch counts successful mutations; readers (e.g. the SHR table in
	// internal/core) use it to skip re-reads when the tree is unchanged.
	epoch uint64
}

// New returns an empty dense-storage tree on g rooted at source. The source
// is on the tree from the start (as in PIM, the root's state always exists).
// Dense storage costs O(NumNodes) standing bytes per tree and is the right
// default below megascale.
func New(g *graph.Graph, source graph.NodeID) (*Tree, error) {
	return newTree(g, source, false)
}

// NewSparse returns an empty sparse-storage tree on g rooted at source:
// standing bytes are O(nodes ever touched) instead of O(NumNodes), at the
// price of a hash probe per state access. Behaviour is bit-identical to the
// dense backend. Use it when many trees share a very large topology.
func NewSparse(g *graph.Graph, source graph.NodeID) (*Tree, error) {
	return newTree(g, source, true)
}

func newTree(g *graph.Graph, source graph.NodeID, sparse bool) (*Tree, error) {
	if source < 0 || int(source) >= g.NumNodes() {
		return nil, fmt.Errorf("multicast: source %d not in graph", source)
	}
	t := &Tree{g: g, source: source}
	if sparse {
		t.slotOf = make(map[graph.NodeID]int32)
		i := t.ensureSlot(source)
		t.parent[i] = graph.Invalid
		t.onTree.set(graph.NodeID(i))
	} else {
		n := g.NumNodes()
		t.parent = make([]graph.NodeID, n)
		t.children = make([][]graph.NodeID, n)
		t.onTree = newBitset(n)
		t.members = newBitset(n)
		t.nr = make([]int32, n)
		t.parent[source] = graph.Invalid
		t.onTree.set(source)
	}
	t.nNodes = 1
	return t, nil
}

// SparseStorage reports whether the tree uses the sparse (touched-node)
// backend.
func (t *Tree) SparseStorage() bool { return t.slotOf != nil }

// idx returns the storage slot of n, or -1 when n has no slot yet. Under
// dense storage the slot is n itself (which may lie beyond the allocated
// arrays if the graph grew — callers guard with the bitsets, whose has()
// treats out-of-range slots as absent).
func (t *Tree) idx(n graph.NodeID) int32 {
	if t.slotOf == nil {
		return int32(n)
	}
	if i, ok := t.slotOf[n]; ok {
		return i
	}
	return -1
}

// nodeAt translates a slot back to its NodeID.
func (t *Tree) nodeAt(i int32) graph.NodeID {
	if t.slotOf == nil {
		return graph.NodeID(i)
	}
	return t.nodeOf[i]
}

// ensureSlot returns n's slot, creating storage for it as needed: dense
// storage grows the arrays to cover node id n (the graph may have gained
// nodes after the tree was created); sparse storage appends a fresh slot.
func (t *Tree) ensureSlot(n graph.NodeID) int32 {
	if t.slotOf == nil {
		if int(n) < len(t.parent) {
			return int32(n)
		}
		want := int(n) + 1
		if g := t.g.NumNodes(); g > want {
			want = g
		}
		for len(t.parent) < want {
			t.parent = append(t.parent, graph.Invalid)
			t.children = append(t.children, nil)
			t.nr = append(t.nr, 0)
		}
		t.onTree = t.onTree.grown(want)
		t.members = t.members.grown(want)
		return int32(n)
	}
	if i, ok := t.slotOf[n]; ok {
		return i
	}
	i := int32(len(t.nodeOf))
	t.slotOf[n] = i
	t.nodeOf = append(t.nodeOf, n)
	t.parent = append(t.parent, graph.Invalid)
	t.children = append(t.children, nil)
	t.nr = append(t.nr, 0)
	t.onTree = t.onTree.grownCap(int(i) + 1)
	t.members = t.members.grownCap(int(i) + 1)
	return i
}

// parentOf returns n's recorded parent, Invalid when n has no storage.
// Meaningful only for on-tree nodes (as with the raw parent vector).
func (t *Tree) parentOf(n graph.NodeID) graph.NodeID {
	i := t.idx(n)
	if i < 0 || int(i) >= len(t.parent) {
		return graph.Invalid
	}
	return t.parent[i]
}

// appendNodeIDs converts the slot-bitset b to NodeIDs appended to dst in
// ascending NodeID order. Dense slots are NodeIDs already in ascending bit
// order; sparse slots are in touch order and get sorted.
func (t *Tree) appendNodeIDs(b bitset, dst []graph.NodeID) []graph.NodeID {
	if t.slotOf == nil {
		return b.appendIDs(dst)
	}
	start := len(dst)
	for wi, w := range b {
		base := wi << 6
		for w != 0 {
			dst = append(dst, t.nodeOf[base+trailingZeros(w)])
			w &= w - 1
		}
	}
	slices.Sort(dst[start:])
	return dst
}

// Graph returns the underlying network graph.
func (t *Tree) Graph() *graph.Graph { return t.g }

// Source returns the tree's root.
func (t *Tree) Source() graph.NodeID { return t.source }

// Epoch returns a counter that increases on every successful mutation.
// Callers can compare epochs to skip re-reading tree state that has not
// changed (e.g. memoized SHR tables).
func (t *Tree) Epoch() uint64 { return t.epoch }

// OnTree reports whether n currently has tree state.
func (t *Tree) OnTree(n graph.NodeID) bool { return t.onTree.has(graph.NodeID(t.idx(n))) }

// IsMember reports whether n is a receiver of the session.
func (t *Tree) IsMember(n graph.NodeID) bool { return t.members.has(graph.NodeID(t.idx(n))) }

// Parent returns the upstream node of n (Invalid for the source) and whether
// n is on the tree.
func (t *Tree) Parent(n graph.NodeID) (graph.NodeID, bool) {
	if !t.OnTree(n) {
		return graph.Invalid, false
	}
	return t.parent[t.idx(n)], true
}

// Children returns a copy of n's downstream neighbors, in ascending order.
func (t *Tree) Children(n graph.NodeID) []graph.NodeID {
	kids := t.ChildList(n)
	out := make([]graph.NodeID, len(kids))
	copy(out, kids)
	return out
}

// ChildList returns n's downstream neighbors in ascending order WITHOUT
// copying. The returned slice aliases tree state: callers must not mutate
// it and must not hold it across tree mutations. Hot read paths (SHR
// propagation, surviving-node walks, delivery simulation) use this to
// iterate allocation-free; everything else should prefer Children.
func (t *Tree) ChildList(n graph.NodeID) []graph.NodeID {
	i := t.idx(n)
	if i < 0 || int(i) >= len(t.children) {
		return nil
	}
	return t.children[i]
}

// Members returns the current receivers in ascending order.
func (t *Tree) Members() []graph.NodeID {
	return t.appendNodeIDs(t.members, make([]graph.NodeID, 0, t.nMembers))
}

// NumMembers returns the number of receivers.
func (t *Tree) NumMembers() int { return t.nMembers }

// Nodes returns all on-tree nodes in ascending order (the source is always
// included).
func (t *Tree) Nodes() []graph.NodeID {
	return t.appendNodeIDs(t.onTree, make([]graph.NodeID, 0, t.nNodes))
}

// NumNodes returns the number of on-tree nodes.
func (t *Tree) NumNodes() int { return t.nNodes }

// Edges returns the tree's edges as canonical EdgeIDs in deterministic
// order.
func (t *Tree) Edges() []graph.EdgeID {
	out := make([]graph.EdgeID, 0, t.nNodes-1)
	for wi, w := range t.onTree {
		base := wi << 6
		for w != 0 {
			i := int32(base + trailingZeros(w))
			w &= w - 1
			if p := t.parent[i]; p != graph.Invalid {
				out = append(out, graph.MakeEdgeID(t.nodeAt(i), p))
			}
		}
	}
	slices.SortFunc(out, func(a, b graph.EdgeID) int {
		if a.A != b.A {
			return int(a.A) - int(b.A)
		}
		return int(a.B) - int(b.B)
	})
	return out
}

// UsesEdge reports whether the tree traverses the undirected edge e.
func (t *Tree) UsesEdge(e graph.EdgeID) bool {
	if t.OnTree(e.A) && t.parent[t.idx(e.A)] == e.B {
		return true
	}
	if t.OnTree(e.B) && t.parent[t.idx(e.B)] == e.A {
		return true
	}
	return false
}

// PathToSource returns the on-tree path from n up to the source (n first).
func (t *Tree) PathToSource(n graph.NodeID) (graph.Path, error) {
	return t.AppendPathToSource(nil, n)
}

// AppendPathToSource appends the on-tree path from n up to the source (n
// first) to buf and returns the extended slice, letting periodic callers
// (refresh timers fire once per member per interval for the whole run) reuse
// one scratch buffer instead of allocating a fresh path every tick. Callers
// that retain the result across calls must copy it.
func (t *Tree) AppendPathToSource(buf graph.Path, n graph.NodeID) (graph.Path, error) {
	if !t.OnTree(n) {
		return buf, fmt.Errorf("path to source from %d: %w", n, ErrNotOnTree)
	}
	start := len(buf)
	for cur := n; cur != graph.Invalid; cur = t.parent[t.idx(cur)] {
		buf = append(buf, cur)
		if len(buf)-start > t.g.NumNodes() {
			return buf[:start], fmt.Errorf("path to source from %d: cycle in tree", n)
		}
	}
	return buf, nil
}

// TopAncestor returns the child of the source on n's root path — the root
// of the top-level branch containing n — or Invalid when n is the source or
// off the tree. Incremental SHR maintenance uses this as the dirty-subtree
// root: a membership change at n can only perturb SHR values inside n's
// top-level branch.
func (t *Tree) TopAncestor(n graph.NodeID) graph.NodeID {
	if !t.OnTree(n) || n == t.source {
		return graph.Invalid
	}
	for {
		p := t.parent[t.idx(n)]
		if p == t.source {
			return n
		}
		n = p
	}
}

// DelayTo returns the total weight of the on-tree path from the source to n
// (the end-to-end delay D_{S,R} of the paper).
func (t *Tree) DelayTo(n graph.NodeID) (float64, error) {
	p, err := t.PathToSource(n)
	if err != nil {
		return 0, err
	}
	return p.Weight(t.g)
}

// Cost returns the sum of all tree-edge weights (the paper's Cost_T).
// Summation runs in ascending NodeID order in both storage backends, so the
// float result is bit-identical regardless of backend.
func (t *Tree) Cost() (float64, error) {
	if t.slotOf != nil {
		t.scratch = t.appendNodeIDs(t.onTree, t.scratch[:0])
		var total float64
		for _, n := range t.scratch {
			p := t.parent[t.slotOf[n]]
			if p == graph.Invalid {
				continue
			}
			ew, ok := t.g.EdgeWeight(n, p)
			if !ok {
				return 0, fmt.Errorf("tree cost: %d-%d is not a graph edge", n, p)
			}
			total += ew
		}
		return total, nil
	}
	var total float64
	for wi, w := range t.onTree {
		base := graph.NodeID(wi << 6)
		for w != 0 {
			n := base + graph.NodeID(trailingZeros(w))
			w &= w - 1
			p := t.parent[n]
			if p == graph.Invalid {
				continue
			}
			ew, ok := t.g.EdgeWeight(n, p)
			if !ok {
				return 0, fmt.Errorf("tree cost: %d-%d is not a graph edge", n, p)
			}
			total += ew
		}
	}
	return total, nil
}

// Graft extends the tree along p, which must run from an on-tree node
// (p.First(), the merger) to the joining node (p.Last()); every intermediate
// node must be off-tree. The final node becomes a member when markMember is
// true. A single-node path (member already on tree, e.g. an on-tree router
// becoming a receiver) is allowed.
func (t *Tree) Graft(p graph.Path, markMember bool) error {
	if len(p) == 0 {
		return errors.New("multicast: graft of empty path")
	}
	if !t.OnTree(p.First()) {
		return fmt.Errorf("graft at %d: %w", p.First(), ErrNotOnTree)
	}
	if err := p.Validate(t.g); err != nil {
		return fmt.Errorf("graft: %w", err)
	}
	for _, n := range p[1:] {
		if t.OnTree(n) {
			return fmt.Errorf("graft through %d: %w", n, ErrAlreadyOnTree)
		}
	}
	if !p.IsSimple() {
		return errors.New("multicast: graft path is not simple")
	}
	changed := len(p) > 1
	for i := 1; i < len(p); i++ {
		t.attach(p[i], p[i-1])
	}
	if last := t.idx(p.Last()); !t.members.has(graph.NodeID(last)) && markMember {
		t.members.set(graph.NodeID(last))
		t.nMembers++
		t.bumpNR(p.Last(), 1)
		changed = true
	}
	if changed {
		t.epoch++
	}
	return nil
}

// bumpNR applies δ to the cached N_R of every node on the root path
// starting at from (inclusive) — the O(depth) incremental maintenance of
// Eq. 2's N_R terms.
func (t *Tree) bumpNR(from graph.NodeID, delta int32) {
	for cur := from; cur != graph.Invalid; {
		i := t.idx(cur)
		t.nr[i] += delta
		cur = t.parent[i]
	}
}

// attach links the off-tree node child under on-tree node par, inserting it
// into par's ascending children list.
func (t *Tree) attach(child, par graph.NodeID) {
	i := t.ensureSlot(child)
	t.parent[i] = par
	t.insertChild(par, child)
	t.onTree.set(graph.NodeID(i))
	t.nr[i] = 0
	t.nNodes++
}

// link re-parents the already-on-tree node child under par (Reroute's move
// of an existing subtree root) without touching node counts.
func (t *Tree) link(child, par graph.NodeID) {
	t.parent[t.idx(child)] = par
	t.insertChild(par, child)
}

// insertChild inserts child into par's children list keeping ascending
// order; amortized O(len) with no allocation once capacity is warm.
func (t *Tree) insertChild(par, child graph.NodeID) {
	pi := t.idx(par)
	kids := t.children[pi]
	i := len(kids)
	for i > 0 && kids[i-1] > child {
		i--
	}
	kids = append(kids, 0)
	copy(kids[i+1:], kids[i:])
	kids[i] = child
	t.children[pi] = kids
}

// removeChild deletes child from par's children list, keeping order and
// backing capacity.
func (t *Tree) removeChild(par, child graph.NodeID) {
	pi := t.idx(par)
	kids := t.children[pi]
	for i, k := range kids {
		if k == child {
			copy(kids[i:], kids[i+1:])
			t.children[pi] = kids[:len(kids)-1]
			return
		}
	}
}

// detach unlinks child from its parent and drops it from the tree without
// pruning. The child's children list keeps its capacity (and, under sparse
// storage, its slot) for reuse.
func (t *Tree) detach(child graph.NodeID) {
	i := t.idx(child)
	par := t.parent[i]
	if par != graph.Invalid {
		t.removeChild(par, child)
	}
	t.onTree.clear(graph.NodeID(i))
	t.parent[i] = graph.Invalid
	t.nr[i] = 0
	t.nNodes--
}

// Leave removes member m from the session and prunes the now-unneeded chain
// of relays toward the source, mirroring the paper's Leave_Req processing:
// state is cleared hop by hop until a node with remaining downstream members
// (or the source, or another member) is reached.
func (t *Tree) Leave(m graph.NodeID) error {
	i := t.idx(m)
	if !t.members.has(graph.NodeID(i)) {
		return fmt.Errorf("leave %d: %w", m, ErrNotMember)
	}
	t.members.clear(graph.NodeID(i))
	t.nMembers--
	t.bumpNR(m, -1)
	t.pruneUpward(m)
	t.epoch++
	return nil
}

// pruneUpward removes n and its ancestors while they are leaf relays
// (no children, not a member, not the source). Pruned nodes carry N_R = 0,
// so removal never perturbs ancestor counts.
func (t *Tree) pruneUpward(n graph.NodeID) {
	for n != graph.Invalid && n != t.source {
		i := t.idx(n)
		if !t.onTree.has(graph.NodeID(i)) || len(t.children[i]) != 0 ||
			t.members.has(graph.NodeID(i)) {
			return
		}
		par := t.parent[i]
		t.detach(n)
		n = par
	}
}

// SubtreeNodes returns all nodes in the subtree rooted at r (including r),
// in ascending order.
func (t *Tree) SubtreeNodes(r graph.NodeID) ([]graph.NodeID, error) {
	if !t.OnTree(r) {
		return nil, fmt.Errorf("subtree of %d: %w", r, ErrNotOnTree)
	}
	var out []graph.NodeID
	stack := []graph.NodeID{r}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, n)
		stack = append(stack, t.children[t.idx(n)]...)
	}
	slices.Sort(out)
	return out, nil
}

// MemberCount returns N_R, the number of members in the subtree rooted at
// r. The count is served from the incrementally maintained per-node cache
// in O(1), where the map-backed tree re-walked (and re-sorted) the subtree.
func (t *Tree) MemberCount(r graph.NodeID) (int, error) {
	i := t.idx(r)
	if !t.onTree.has(graph.NodeID(i)) {
		return 0, fmt.Errorf("subtree of %d: %w", r, ErrNotOnTree)
	}
	return int(t.nr[i]), nil
}

// MemberCounts returns N_R for every on-tree node, keyed by node ID. The
// values come straight from the incrementally maintained cache; the map is
// built only for the caller's convenience (hot paths should use MemberCount
// per node instead).
func (t *Tree) MemberCounts() map[graph.NodeID]int {
	counts := make(map[graph.NodeID]int, t.nNodes)
	for wi, w := range t.onTree {
		base := wi << 6
		for w != 0 {
			i := int32(base + trailingZeros(w))
			w &= w - 1
			counts[t.nodeAt(i)] = int(t.nr[i])
		}
	}
	return counts
}

// Reroute moves member m (together with its whole subtree) onto newPath,
// which must run from an on-tree merger (newPath.First()) to m
// (newPath.Last()); intermediates must be off-tree, and the merger must not
// lie inside m's own subtree (that would create a cycle). The old upstream
// chain is pruned as in Leave. This implements the switch step of the
// paper's tree-reshaping procedure (§3.2.3).
func (t *Tree) Reroute(m graph.NodeID, newPath graph.Path) error {
	if !t.OnTree(m) {
		return fmt.Errorf("reroute %d: %w", m, ErrNotOnTree)
	}
	if len(newPath) < 2 {
		return errors.New("multicast: reroute path must have at least one edge")
	}
	if newPath.Last() != m {
		return fmt.Errorf("reroute: path ends at %d, not member %d", newPath.Last(), m)
	}
	if err := newPath.Validate(t.g); err != nil {
		return fmt.Errorf("reroute: %w", err)
	}
	if !newPath.IsSimple() {
		return errors.New("multicast: reroute path is not simple")
	}
	merger := newPath.First()
	if !t.OnTree(merger) {
		return fmt.Errorf("reroute merger %d: %w", merger, ErrNotOnTree)
	}
	// The merger lies inside m's subtree exactly when m is an ancestor of
	// it — an O(depth) root-path walk instead of materializing the subtree.
	for cur := merger; cur != graph.Invalid; cur = t.parent[t.idx(cur)] {
		if cur == m {
			return fmt.Errorf("reroute: merger %d is inside %d's subtree", merger, m)
		}
	}
	for _, n := range newPath[1 : len(newPath)-1] {
		if t.OnTree(n) {
			return fmt.Errorf("reroute through %d: %w", n, ErrAlreadyOnTree)
		}
	}
	mi := t.idx(m)
	oldParent := t.parent[mi]
	sub := t.nr[mi] // members moving with m's subtree
	if oldParent != graph.Invalid {
		t.removeChild(oldParent, m)
		t.parent[mi] = graph.Invalid
		t.bumpNR(oldParent, -sub)
	}
	// Attach the new chain from the merger down to m.
	for i := 1; i < len(newPath); i++ {
		if newPath[i] == m {
			t.link(m, newPath[i-1])
		} else {
			t.attach(newPath[i], newPath[i-1])
		}
	}
	// The moved members now count along the new root path (the fresh chain
	// nodes were attached with N_R = 0 and pick up the subtree here).
	t.bumpNR(t.parent[t.idx(m)], sub)
	t.pruneUpward(oldParent)
	t.epoch++
	return nil
}

// RemoveSubtree deletes r and every node below it from the tree (members
// included) and prunes the now-unneeded relay chain above r. Removing the
// source is rejected. SMRP's reshaping uses this on a clone to evaluate SHR
// values "as if" the reshaping member's subtree had left (the adjustment
// step of §3.2.3).
func (t *Tree) RemoveSubtree(r graph.NodeID) error {
	if !t.OnTree(r) {
		return fmt.Errorf("remove subtree %d: %w", r, ErrNotOnTree)
	}
	if r == t.source {
		return errors.New("multicast: cannot remove the source's subtree")
	}
	oldParent := t.parent[t.idx(r)]
	t.dropSubtree(r)
	t.pruneUpward(oldParent)
	t.epoch++
	return nil
}

// DetachSubtree removes r and every node below it like RemoveSubtree, but
// leaves the relay chain above r in place even if it no longer serves any
// member. Failure recovery uses this to flush dead state while keeping
// surviving relays (whose soft state has not yet expired) available as
// local-detour targets; PruneStale reclaims them afterwards.
func (t *Tree) DetachSubtree(r graph.NodeID) error {
	if !t.OnTree(r) {
		return fmt.Errorf("detach subtree %d: %w", r, ErrNotOnTree)
	}
	if r == t.source {
		return errors.New("multicast: cannot detach the source's subtree")
	}
	t.dropSubtree(r)
	t.epoch++
	return nil
}

// dropSubtree unlinks r from its parent, deducts the subtree's member count
// from the surviving root path, and clears all state below r.
func (t *Tree) dropSubtree(r graph.NodeID) {
	ri := t.idx(r)
	oldParent := t.parent[ri]
	sub := t.nr[ri]
	if oldParent != graph.Invalid {
		t.removeChild(oldParent, r)
		t.bumpNR(oldParent, -sub)
	}
	stack := []graph.NodeID{r}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		i := t.idx(n)
		stack = append(stack, t.children[i]...)
		t.children[i] = t.children[i][:0]
		t.onTree.clear(graph.NodeID(i))
		t.parent[i] = graph.Invalid
		t.nr[i] = 0
		t.nNodes--
		if t.members.has(graph.NodeID(i)) {
			t.members.clear(graph.NodeID(i))
			t.nMembers--
		}
	}
}

// PruneStale removes every relay chain that serves no member (childless,
// non-member, non-source nodes, applied to fixpoint), modeling soft-state
// expiry of branches left behind by recovery. It returns the nodes removed.
func (t *Tree) PruneStale() []graph.NodeID {
	var removed []graph.NodeID
	var victims []graph.NodeID
	for {
		victims = victims[:0]
		for wi, w := range t.onTree {
			base := wi << 6
			for w != 0 {
				i := int32(base + trailingZeros(w))
				w &= w - 1
				n := t.nodeAt(i)
				if n != t.source && len(t.children[i]) == 0 && !t.members.has(graph.NodeID(i)) {
					victims = append(victims, n)
				}
			}
		}
		if len(victims) == 0 {
			if len(removed) > 0 {
				t.epoch++
			}
			slices.Sort(removed)
			return removed
		}
		for _, n := range victims {
			t.detach(n)
			removed = append(removed, n)
		}
	}
}

// Clone returns a deep copy of the tree sharing the same graph (and the same
// storage backend).
func (t *Tree) Clone() *Tree {
	c := &Tree{
		g:        t.g,
		source:   t.source,
		parent:   slices.Clone(t.parent),
		children: make([][]graph.NodeID, len(t.children)),
		onTree:   t.onTree.clone(),
		members:  t.members.clone(),
		nr:       slices.Clone(t.nr),
		nNodes:   t.nNodes,
		nMembers: t.nMembers,
		epoch:    t.epoch,
	}
	if t.slotOf != nil {
		c.slotOf = maps.Clone(t.slotOf)
		c.nodeOf = slices.Clone(t.nodeOf)
	}
	for i, kids := range t.children {
		if len(kids) > 0 {
			c.children[i] = slices.Clone(kids)
		}
	}
	return c
}

// Validate checks the tree's structural invariants: every non-source node
// has a parent reachable from the source, parent/children lists agree, every
// tree edge exists in the graph, members are on the tree, and the cached
// N_R column matches a from-scratch recount. It returns the first violation
// found.
func (t *Tree) Validate() error {
	if !t.OnTree(t.source) {
		return errors.New("multicast: source missing from tree")
	}
	if t.parent[t.idx(t.source)] != graph.Invalid {
		return errors.New("multicast: source has a parent")
	}
	// children↔parent agreement and edge existence.
	nodes := t.Nodes()
	if len(nodes) != t.nNodes {
		return fmt.Errorf("multicast: node count %d does not match on-tree set %d", t.nNodes, len(nodes))
	}
	for _, n := range nodes {
		p := t.parent[t.idx(n)]
		if p == graph.Invalid {
			if n != t.source {
				return fmt.Errorf("multicast: node %d has no parent but is not the source", n)
			}
			continue
		}
		if !t.g.HasEdge(n, p) {
			return fmt.Errorf("multicast: tree link %d-%d is not a graph edge", n, p)
		}
		if !t.OnTree(p) {
			return fmt.Errorf("multicast: parent %d of %d is off the tree", p, n)
		}
		if !slices.Contains(t.children[t.idx(p)], n) {
			return fmt.Errorf("multicast: %d not recorded as child of %d", n, p)
		}
	}
	for _, p := range nodes {
		kids := t.children[t.idx(p)]
		if !slices.IsSorted(kids) {
			return fmt.Errorf("multicast: children of %d not in ascending order", p)
		}
		for _, k := range kids {
			if !t.OnTree(k) || t.parent[t.idx(k)] != p {
				return fmt.Errorf("multicast: child %d of %d has parent %v", k, p, t.parentOf(k))
			}
		}
	}
	// Reachability (no cycles, no orphan islands) plus a from-scratch N_R
	// recount checked against the incremental cache. Scratch state here is
	// NodeID-indexed (not slot-indexed) so the walk is backend-agnostic.
	limit := t.g.NumNodes()
	reached := 0
	members := 0
	stack := []graph.NodeID{t.source}
	seen := newBitset(limit)
	seen.set(t.source)
	counts := make([]int32, limit)
	order := make([]graph.NodeID, 0, t.nNodes)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		reached++
		order = append(order, n)
		if t.IsMember(n) {
			counts[n] = 1
			members++
		}
		for _, k := range t.children[t.idx(n)] {
			if seen.has(k) {
				return fmt.Errorf("multicast: node %d reached twice (cycle)", k)
			}
			seen.set(k)
			stack = append(stack, k)
		}
	}
	if reached != t.nNodes {
		return fmt.Errorf("multicast: %d nodes on tree but only %d reachable from source", t.nNodes, reached)
	}
	if members != t.nMembers {
		return fmt.Errorf("multicast: member count %d does not match member set %d", t.nMembers, members)
	}
	for i := len(order) - 1; i >= 0; i-- { // reverse pre-order = bottom-up
		n := order[i]
		if counts[n] != t.nr[t.idx(n)] {
			return fmt.Errorf("multicast: cached N_%d = %d, recount = %d", n, t.nr[t.idx(n)], counts[n])
		}
		if p := t.parent[t.idx(n)]; p != graph.Invalid {
			counts[p] += counts[n]
		}
	}
	for _, m := range t.Members() {
		if !t.OnTree(m) {
			return fmt.Errorf("multicast: member %d not on tree", m)
		}
	}
	return nil
}
