package multicast

import (
	"errors"
	"math/rand"
	"testing"

	"smrp/internal/graph"
)

// testGraph builds the Figure-1-like graph used across these tests:
//
//	S(0)-A(1):1  S-B(2):4  A-C(3):2  A-D(4):1  C-D:2  B-D:3
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(5)
	edges := []struct {
		u, v graph.NodeID
		w    float64
	}{
		{0, 1, 1}, {0, 2, 4}, {1, 3, 2}, {1, 4, 1}, {3, 4, 2}, {2, 4, 3},
	}
	for _, e := range edges {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// fig1Tree grafts the SPF tree for members {C=3, D=4}: S→A→C, S→A→D.
func fig1Tree(t *testing.T) *Tree {
	t.Helper()
	tr, err := New(testGraph(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Graft(graph.Path{0, 1, 3}, true); err != nil {
		t.Fatal(err)
	}
	if err := tr.Graft(graph.Path{1, 4}, true); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewRejectsBadSource(t *testing.T) {
	g := testGraph(t)
	if _, err := New(g, 99); err == nil {
		t.Error("source outside graph should error")
	}
	if _, err := New(g, -1); err == nil {
		t.Error("negative source should error")
	}
}

func TestGraftAndAccessors(t *testing.T) {
	tr := fig1Tree(t)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.NumMembers() != 2 || tr.NumNodes() != 4 {
		t.Errorf("members=%d nodes=%d, want 2, 4", tr.NumMembers(), tr.NumNodes())
	}
	if !tr.IsMember(3) || !tr.IsMember(4) || tr.IsMember(1) {
		t.Error("membership flags wrong")
	}
	if p, ok := tr.Parent(3); !ok || p != 1 {
		t.Errorf("Parent(3) = %d,%v", p, ok)
	}
	kids := tr.Children(1)
	if len(kids) != 2 || kids[0] != 3 || kids[1] != 4 {
		t.Errorf("Children(1) = %v", kids)
	}
	if got := tr.Members(); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("Members = %v", got)
	}
	nodes := tr.Nodes()
	if len(nodes) != 4 || nodes[0] != 0 {
		t.Errorf("Nodes = %v", nodes)
	}
	if tr.Source() != 0 {
		t.Errorf("Source = %d", tr.Source())
	}
	if tr.Graph() == nil {
		t.Error("Graph accessor nil")
	}
}

func TestGraftErrors(t *testing.T) {
	tr := fig1Tree(t)
	tests := []struct {
		name string
		path graph.Path
	}{
		{name: "empty", path: nil},
		{name: "merger off tree", path: graph.Path{2, 4}},
		{name: "intermediate on tree", path: graph.Path{0, 1, 4}},
		{name: "non-edge", path: graph.Path{0, 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tr.Graft(tt.path, true); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestGraftSingleNodeMakesMember(t *testing.T) {
	tr := fig1Tree(t)
	// Node A (1) is an on-tree relay; it can become a member in place.
	if err := tr.Graft(graph.Path{1}, true); err != nil {
		t.Fatalf("Graft single: %v", err)
	}
	if !tr.IsMember(1) {
		t.Error("node 1 should now be a member")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEdgesAndUsesEdge(t *testing.T) {
	tr := fig1Tree(t)
	edges := tr.Edges()
	want := []graph.EdgeID{{A: 0, B: 1}, {A: 1, B: 3}, {A: 1, B: 4}}
	if len(edges) != len(want) {
		t.Fatalf("Edges = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("Edges[%d] = %v, want %v", i, edges[i], want[i])
		}
	}
	if !tr.UsesEdge(graph.MakeEdgeID(1, 0)) {
		t.Error("UsesEdge(S-A) should be true")
	}
	if tr.UsesEdge(graph.MakeEdgeID(3, 4)) {
		t.Error("UsesEdge(C-D) should be false")
	}
}

func TestPathDelayCost(t *testing.T) {
	tr := fig1Tree(t)
	p, err := tr.PathToSource(3)
	if err != nil || p.String() != "3→1→0" {
		t.Errorf("PathToSource(3) = %v, %v", p, err)
	}
	d, err := tr.DelayTo(3)
	if err != nil || d != 3 {
		t.Errorf("DelayTo(3) = %v, %v, want 3", d, err)
	}
	c, err := tr.Cost()
	if err != nil || c != 4 {
		t.Errorf("Cost = %v, %v, want 4 (1+2+1)", c, err)
	}
	if _, err := tr.PathToSource(2); !errors.Is(err, ErrNotOnTree) {
		t.Errorf("PathToSource(off-tree) err = %v", err)
	}
}

func TestMemberCounts(t *testing.T) {
	tr := fig1Tree(t)
	counts := tr.MemberCounts()
	wants := map[graph.NodeID]int{0: 2, 1: 2, 3: 1, 4: 1}
	for n, w := range wants {
		if counts[n] != w {
			t.Errorf("N_%d = %d, want %d", n, counts[n], w)
		}
	}
	n1, err := tr.MemberCount(1)
	if err != nil || n1 != 2 {
		t.Errorf("MemberCount(1) = %d, %v", n1, err)
	}
	if _, err := tr.MemberCount(2); !errors.Is(err, ErrNotOnTree) {
		t.Errorf("MemberCount off-tree err = %v", err)
	}
	// Interior member counts itself.
	if err := tr.Graft(graph.Path{1}, true); err != nil {
		t.Fatal(err)
	}
	if got := tr.MemberCounts()[1]; got != 3 {
		t.Errorf("N_1 after interior membership = %d, want 3", got)
	}
}

func TestLeaveLeafPrunes(t *testing.T) {
	tr := fig1Tree(t)
	if err := tr.Leave(3); err != nil {
		t.Fatal(err)
	}
	if tr.OnTree(3) {
		t.Error("leaf member should be pruned after leave")
	}
	if !tr.OnTree(1) {
		t.Error("relay with remaining member below must stay")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
	// Last member leaving collapses everything but the source.
	if err := tr.Leave(4); err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 1 || !tr.OnTree(0) {
		t.Errorf("after all leaves: nodes = %v", tr.Nodes())
	}
}

func TestLeaveInteriorMemberKeepsRelay(t *testing.T) {
	g := testGraph(t)
	tr, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// S→A→D with A also a member; D member below A.
	if err := tr.Graft(graph.Path{0, 1}, true); err != nil {
		t.Fatal(err)
	}
	if err := tr.Graft(graph.Path{1, 4}, true); err != nil {
		t.Fatal(err)
	}
	if err := tr.Leave(1); err != nil {
		t.Fatal(err)
	}
	if !tr.OnTree(1) {
		t.Error("interior ex-member must remain as relay for downstream member")
	}
	if tr.IsMember(1) {
		t.Error("membership should be cleared")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLeaveErrors(t *testing.T) {
	tr := fig1Tree(t)
	if err := tr.Leave(1); !errors.Is(err, ErrNotMember) {
		t.Errorf("Leave(non-member) err = %v", err)
	}
}

func TestSubtreeNodes(t *testing.T) {
	tr := fig1Tree(t)
	sub, err := tr.SubtreeNodes(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 3 || sub[0] != 1 || sub[1] != 3 || sub[2] != 4 {
		t.Errorf("SubtreeNodes(1) = %v", sub)
	}
}

func TestReroute(t *testing.T) {
	tr := fig1Tree(t)
	// Move D (4) from parent A to hang off C via edge C-D.
	if err := tr.Reroute(4, graph.Path{3, 4}); err != nil {
		t.Fatal(err)
	}
	if p, _ := tr.Parent(4); p != 3 {
		t.Errorf("Parent(4) = %d, want 3", p)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := tr.DelayTo(4)
	if err != nil || d != 5 {
		t.Errorf("DelayTo(4) = %v, want 5 (1+2+2)", d)
	}
}

func TestRerouteMovesSubtree(t *testing.T) {
	g := testGraph(t)
	tr, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Chain S→A→D→C with C member, D member.
	if err := tr.Graft(graph.Path{0, 1, 4}, true); err != nil {
		t.Fatal(err)
	}
	if err := tr.Graft(graph.Path{4, 3}, true); err != nil {
		t.Fatal(err)
	}
	// Reroute D to S via B: path S(0)→B(2)→D(4). C must follow underneath.
	if err := tr.Reroute(4, graph.Path{0, 2, 4}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if p, _ := tr.Parent(3); p != 4 {
		t.Errorf("C should still hang under D, parent = %d", p)
	}
	if tr.OnTree(1) {
		t.Error("old relay A should be pruned")
	}
}

func TestRerouteErrors(t *testing.T) {
	tr := fig1Tree(t)
	tests := []struct {
		name string
		m    graph.NodeID
		path graph.Path
	}{
		{name: "off-tree member", m: 2, path: graph.Path{0, 2}},
		{name: "short path", m: 4, path: graph.Path{4}},
		{name: "wrong endpoint", m: 4, path: graph.Path{0, 2}},
		{name: "merger off tree", m: 4, path: graph.Path{2, 4}},
		{name: "merger inside subtree", m: 1, path: graph.Path{3, 1}},
		{name: "non-edge hop", m: 4, path: graph.Path{0, 4}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tr.Reroute(tt.m, tt.path); err == nil {
				t.Error("expected error")
			}
		})
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("failed reroutes must not corrupt the tree: %v", err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	tr := fig1Tree(t)
	c := tr.Clone()
	if err := c.Leave(3); err != nil {
		t.Fatal(err)
	}
	if !tr.IsMember(3) || !tr.OnTree(3) {
		t.Error("mutating clone affected original")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

// TestRandomChurnInvariant property-tests the tree under random join/leave
// churn: after every operation the structural invariants must hold and every
// member must have a loop-free path to the source.
func TestRandomChurnInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 30
		g := graph.New(n)
		// Random connected graph: spanning tree + extras.
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			_ = g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), 1+rng.Float64())
		}
		for i := 0; i < n; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v && !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v, 1+rng.Float64())
			}
		}
		tr, err := New(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 200; op++ {
			if rng.Float64() < 0.6 || tr.NumMembers() == 0 {
				// Join a random non-member along its shortest path to the
				// nearest on-tree node.
				cand := graph.NodeID(rng.Intn(n))
				if tr.IsMember(cand) {
					continue
				}
				if tr.OnTree(cand) {
					if err := tr.Graft(graph.Path{cand}, true); err != nil {
						t.Fatalf("trial %d op %d: graft-in-place: %v", trial, op, err)
					}
				} else {
					_, p, _ := g.NearestOf(cand, nil, tr.OnTree)
					if p == nil {
						continue
					}
					if err := tr.Graft(p.Reverse(), true); err != nil {
						t.Fatalf("trial %d op %d: graft %v: %v", trial, op, p, err)
					}
				}
			} else {
				ms := tr.Members()
				m := ms[rng.Intn(len(ms))]
				if err := tr.Leave(m); err != nil {
					t.Fatalf("trial %d op %d: leave %d: %v", trial, op, m, err)
				}
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("trial %d op %d: invariant: %v", trial, op, err)
			}
			for _, m := range tr.Members() {
				if _, err := tr.PathToSource(m); err != nil {
					t.Fatalf("trial %d op %d: member %d: %v", trial, op, m, err)
				}
			}
		}
	}
}
