package multicast

// Deterministic memory accounting for tree storage, mirroring
// graph.MemoryFootprint: byte counts derive from element counts and fixed
// per-element sizes, never from the live heap, so the same tree reports the
// same number on every run, machine, and worker count. The megascale and
// multigroup studies publish these as CI-stable per-session standing-state
// metrics.
const (
	bytesPerParentEntry = 8  // graph.NodeID
	bytesPerKidsHeader  = 24 // slice header of one children list
	bytesPerKidEntry    = 8  // one child NodeID
	bytesPerNREntry     = 4  // int32
	bytesPerWord        = 8  // one bitset word
	// bytesPerSlotEntry is the sparse backend's per-slot remap overhead: one
	// map[NodeID]int32 entry (key 8 + value 4 + bucket overhead) plus the
	// 8-byte nodeOf inverse entry.
	bytesPerSlotEntry = 24 + 8
)

// MemoryFootprint returns the deterministic byte accounting of the tree's
// standing state: parent vector, children list headers and elements, the N_R
// column, the on-tree/member bitsets, and (under sparse storage) the
// touched-node remap. Dense trees cost O(graph nodes); sparse trees cost
// O(nodes ever touched). The reusable iteration scratch is excluded — it is
// a rebuildable derivative, not tree state.
func (t *Tree) MemoryFootprint() int64 {
	slots := int64(len(t.parent))
	kidElems := int64(t.nNodes - 1)
	if kidElems < 0 {
		kidElems = 0
	}
	words := int64(len(t.onTree) + len(t.members))
	b := slots*(bytesPerParentEntry+bytesPerKidsHeader+bytesPerNREntry) +
		kidElems*bytesPerKidEntry +
		words*bytesPerWord
	if t.slotOf != nil {
		b += slots * bytesPerSlotEntry
	}
	return b
}
