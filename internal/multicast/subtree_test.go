package multicast

import (
	"errors"
	"testing"

	"smrp/internal/graph"
)

// chainTree builds S(0)→1→2→3 with members at 2 and 3 on the line graph
// 0-1-2-3-4.
func chainTree(t *testing.T) *Tree {
	t.Helper()
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		if err := g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Graft(graph.Path{0, 1, 2}, true); err != nil {
		t.Fatal(err)
	}
	if err := tr.Graft(graph.Path{2, 3}, true); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRemoveSubtree(t *testing.T) {
	tr := chainTree(t)
	if err := tr.RemoveSubtree(2); err != nil {
		t.Fatal(err)
	}
	// 2 and 3 gone; relay 1 pruned because nothing remains below it.
	for _, n := range []graph.NodeID{1, 2, 3} {
		if tr.OnTree(n) {
			t.Errorf("node %d should be gone", n)
		}
	}
	if tr.NumMembers() != 0 {
		t.Errorf("members = %v", tr.Members())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveSubtreeErrors(t *testing.T) {
	tr := chainTree(t)
	if err := tr.RemoveSubtree(4); !errors.Is(err, ErrNotOnTree) {
		t.Errorf("off-tree err = %v", err)
	}
	if err := tr.RemoveSubtree(0); err == nil {
		t.Error("removing the source must fail")
	}
}

func TestDetachSubtreeKeepsRelays(t *testing.T) {
	tr := chainTree(t)
	if err := tr.DetachSubtree(2); err != nil {
		t.Fatal(err)
	}
	if tr.OnTree(2) || tr.OnTree(3) {
		t.Error("detached nodes should be gone")
	}
	if !tr.OnTree(1) {
		t.Error("relay 1 must survive a detach (soft state not expired)")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// PruneStale then reclaims the leftover relay.
	removed := tr.PruneStale()
	if len(removed) != 1 || removed[0] != 1 {
		t.Errorf("PruneStale removed %v, want [1]", removed)
	}
	if tr.NumNodes() != 1 {
		t.Errorf("nodes = %v", tr.Nodes())
	}
}

func TestDetachSubtreeErrors(t *testing.T) {
	tr := chainTree(t)
	if err := tr.DetachSubtree(0); err == nil {
		t.Error("detaching the source must fail")
	}
	if err := tr.DetachSubtree(4); !errors.Is(err, ErrNotOnTree) {
		t.Errorf("off-tree err = %v", err)
	}
}

func TestPruneStaleKeepsMembersAndSource(t *testing.T) {
	tr := chainTree(t)
	if got := tr.PruneStale(); len(got) != 0 {
		t.Errorf("nothing is stale, removed %v", got)
	}
	// Interior ex-member chain: member 3 leaves → nothing stale (2 still a
	// member); member 2 leaves → chain pruned by Leave itself.
	if err := tr.Leave(3); err != nil {
		t.Fatal(err)
	}
	if got := tr.PruneStale(); len(got) != 0 {
		t.Errorf("removed %v after leaf leave", got)
	}
}

func TestPruneStaleChain(t *testing.T) {
	tr := chainTree(t)
	// Manually orphan the chain: unmark members without pruning by
	// detaching the deepest member only.
	if err := tr.DetachSubtree(3); err != nil {
		t.Fatal(err)
	}
	if err := tr.DetachSubtree(2); err != nil {
		t.Fatal(err)
	}
	removed := tr.PruneStale()
	if len(removed) != 1 || removed[0] != 1 {
		t.Errorf("removed %v, want [1]", removed)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
