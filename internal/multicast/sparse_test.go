package multicast

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"

	"smrp/internal/graph"
)

// twinTrees drives an identical random mutation sequence — grafts, leaves,
// reroutes, subtree removals/detachments, stale pruning, clone swaps —
// through a dense and a sparse tree on the same graph, checking after every
// operation that all observable state is bit-identical. This is the
// equivalence oracle that lets the sparse backend stand in for the dense one
// anywhere without perturbing a single study output.
func TestSparseDenseEquivalence(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(5100 + trial)))
		n := 40 + rng.Intn(40)
		g := graph.New(n)
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			_ = g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), 1+rng.Float64())
		}
		for i := 0; i < 2*n; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v && !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v, 1+rng.Float64())
			}
		}
		dense, err := New(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := NewSparse(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !sparse.SparseStorage() || dense.SparseStorage() {
			t.Fatal("backend selection broken")
		}

		for op := 0; op < 300; op++ {
			r := rng.Float64()
			switch {
			case r < 0.5 || dense.NumMembers() == 0:
				cand := graph.NodeID(rng.Intn(n))
				if dense.IsMember(cand) {
					continue
				}
				if dense.OnTree(cand) {
					mustBoth(t, trial, op, "graft-in-place",
						dense.Graft(graph.Path{cand}, true), sparse.Graft(graph.Path{cand}, true))
				} else {
					_, p, _ := g.NearestOf(cand, nil, dense.OnTree)
					if p == nil {
						continue
					}
					gp := p.Reverse()
					mustBoth(t, trial, op, "graft",
						dense.Graft(gp, true), sparse.Graft(slices.Clone(gp), true))
				}
			case r < 0.75:
				ms := dense.Members()
				m := ms[rng.Intn(len(ms))]
				mustBoth(t, trial, op, "leave", dense.Leave(m), sparse.Leave(m))
			case r < 0.85:
				nodes := dense.Nodes()
				v := nodes[rng.Intn(len(nodes))]
				if v == dense.Source() {
					continue
				}
				if rng.Intn(2) == 0 {
					mustBoth(t, trial, op, "remove-subtree",
						dense.RemoveSubtree(v), sparse.RemoveSubtree(v))
				} else {
					mustBoth(t, trial, op, "detach-subtree",
						dense.DetachSubtree(v), sparse.DetachSubtree(v))
				}
			case r < 0.92:
				dr := dense.PruneStale()
				sr := sparse.PruneStale()
				if !slices.Equal(dr, sr) {
					t.Fatalf("trial %d op %d: PruneStale %v != %v", trial, op, dr, sr)
				}
			default:
				// Clone both and continue the run on the clones: clone
				// lineage must preserve equivalence (reshaping works on
				// clones of live session trees).
				dense, sparse = dense.Clone(), sparse.Clone()
			}
			compareTrees(t, trial, op, dense, sparse)
		}
	}
}

func mustBoth(t *testing.T, trial, op int, what string, errDense, errSparse error) {
	t.Helper()
	if (errDense == nil) != (errSparse == nil) {
		t.Fatalf("trial %d op %d: %s diverges: dense=%v sparse=%v", trial, op, what, errDense, errSparse)
	}
}

// compareTrees asserts every observable of the two trees is bit-identical.
func compareTrees(t *testing.T, trial, op int, a, b *Tree) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("trial %d op %d: %s", trial, op, fmt.Sprintf(format, args...))
	}
	if a.Epoch() != b.Epoch() {
		fail("epoch %d != %d", a.Epoch(), b.Epoch())
	}
	if a.NumNodes() != b.NumNodes() || a.NumMembers() != b.NumMembers() {
		fail("counts (%d,%d) != (%d,%d)", a.NumNodes(), a.NumMembers(), b.NumNodes(), b.NumMembers())
	}
	an, bn := a.Nodes(), b.Nodes()
	if !slices.Equal(an, bn) {
		fail("nodes %v != %v", an, bn)
	}
	if !slices.Equal(a.Members(), b.Members()) {
		fail("members %v != %v", a.Members(), b.Members())
	}
	if !slices.Equal(a.Edges(), b.Edges()) {
		fail("edges diverge")
	}
	ac, aerr := a.Cost()
	bc, berr := b.Cost()
	if (aerr == nil) != (berr == nil) || math.Float64bits(ac) != math.Float64bits(bc) {
		fail("cost %v (%v) != %v (%v)", ac, aerr, bc, berr)
	}
	for _, node := range an {
		ap, aok := a.Parent(node)
		bp, bok := b.Parent(node)
		if ap != bp || aok != bok {
			fail("parent(%d) (%d,%v) != (%d,%v)", node, ap, aok, bp, bok)
		}
		if !slices.Equal(a.ChildList(node), b.ChildList(node)) {
			fail("children(%d) diverge", node)
		}
		anr, _ := a.MemberCount(node)
		bnr, _ := b.MemberCount(node)
		if anr != bnr {
			fail("N_%d %d != %d", node, anr, bnr)
		}
		if a.TopAncestor(node) != b.TopAncestor(node) {
			fail("top ancestor(%d) diverges", node)
		}
		ad, _ := a.DelayTo(node)
		bd, _ := b.DelayTo(node)
		if math.Float64bits(ad) != math.Float64bits(bd) {
			fail("delay(%d) %v != %v", node, ad, bd)
		}
		as, _ := a.SubtreeNodes(node)
		bs, _ := b.SubtreeNodes(node)
		if !slices.Equal(as, bs) {
			fail("subtree(%d) diverges", node)
		}
	}
	if err := a.Validate(); err != nil {
		fail("dense invariant: %v", err)
	}
	if err := b.Validate(); err != nil {
		fail("sparse invariant: %v", err)
	}
	if a.MemoryFootprint() <= 0 || b.MemoryFootprint() <= 0 {
		fail("non-positive footprint")
	}
}
