// Package workload generates deterministic membership-churn schedules for
// multicast sessions: receivers arrive and depart over virtual time,
// producing the "series of join and departure events" after which, per
// §3.2.3 of the paper, the multicast tree becomes skewed and tree reshaping
// pays off.
package workload

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"smrp/internal/graph"
	"smrp/internal/topology"
)

// EventKind distinguishes joins from leaves.
type EventKind int

// Event kinds. Enum starts at 1 so the zero value is invalid.
const (
	Join EventKind = iota + 1
	Leave
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Join:
		return "join"
	case Leave:
		return "leave"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one membership change.
type Event struct {
	At   float64 // virtual time
	Kind EventKind
	Node graph.NodeID
}

// Schedule is a time-ordered churn schedule.
type Schedule struct {
	Events []Event
}

// Config parameterizes churn generation.
type Config struct {
	// Nodes is the population receivers are drawn from (the source must not
	// be included).
	Nodes []graph.NodeID
	// Horizon is the schedule length in virtual time.
	Horizon float64
	// ArrivalRate is the mean number of joins per unit time (exponential
	// inter-arrivals).
	ArrivalRate float64
	// MeanLifetime is the mean membership duration (exponential); 0 means
	// members never leave.
	MeanLifetime float64
	// InitialMembers join at time 0 before churn begins.
	InitialMembers int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if len(c.Nodes) == 0 {
		return errors.New("workload: empty node population")
	}
	if c.Horizon <= 0 {
		return errors.New("workload: horizon must be positive")
	}
	if c.ArrivalRate < 0 || c.MeanLifetime < 0 {
		return errors.New("workload: rates must be non-negative")
	}
	if c.InitialMembers < 0 || c.InitialMembers > len(c.Nodes) {
		return fmt.Errorf("workload: InitialMembers = %d out of [0, %d]", c.InitialMembers, len(c.Nodes))
	}
	return nil
}

// expVariate draws an exponential variate with the given mean.
func expVariate(rng *topology.RNG, mean float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return -mean * math.Log(u)
}

// Generate builds a churn schedule: InitialMembers join at t=0; further
// receivers arrive as a Poisson process; each member stays for an
// exponential lifetime (truncated at the horizon — no Leave is emitted for
// members alive at the end). A node rejoins only after having left.
func Generate(cfg Config, rng *topology.RNG) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var events []Event
	free := append([]graph.NodeID(nil), cfg.Nodes...)
	// Deterministic shuffle of the candidate pool.
	for i := len(free) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		free[i], free[j] = free[j], free[i]
	}
	take := func() (graph.NodeID, bool) {
		if len(free) == 0 {
			return graph.Invalid, false
		}
		n := free[len(free)-1]
		free = free[:len(free)-1]
		return n, true
	}
	release := func(n graph.NodeID) { free = append(free, n) }

	var pending []departure
	schedule := func(n graph.NodeID, joinAt float64) {
		events = append(events, Event{At: joinAt, Kind: Join, Node: n})
		if cfg.MeanLifetime <= 0 {
			return
		}
		leaveAt := joinAt + expVariate(rng, cfg.MeanLifetime)
		if leaveAt < cfg.Horizon {
			pending = append(pending, departure{at: leaveAt, node: n})
		}
	}

	for i := 0; i < cfg.InitialMembers; i++ {
		n, ok := take()
		if !ok {
			break
		}
		schedule(n, 0)
	}
	if cfg.ArrivalRate > 0 {
		t := expVariate(rng, 1/cfg.ArrivalRate)
		for t < cfg.Horizon {
			// Release every departure that happens before this arrival so
			// the node pool reflects reality at time t.
			pending = flushDepartures(pending, t, &events, release)
			if n, ok := take(); ok {
				schedule(n, t)
			}
			t += expVariate(rng, 1/cfg.ArrivalRate)
		}
	}
	pending = flushDepartures(pending, cfg.Horizon, &events, release)
	_ = pending

	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return &Schedule{Events: events}, nil
}

// departure is a scheduled future Leave event.
type departure struct {
	at   float64
	node graph.NodeID
}

// flushDepartures emits every pending departure at or before the cutoff,
// returning the still-pending remainder.
func flushDepartures(pending []departure, cutoff float64, events *[]Event, release func(graph.NodeID)) []departure {
	var rest []departure
	for _, d := range pending {
		if d.at <= cutoff {
			*events = append(*events, Event{At: d.at, Kind: Leave, Node: d.node})
			release(d.node)
		} else {
			rest = append(rest, d)
		}
	}
	return rest
}

// Stats summarizes a schedule.
type Stats struct {
	Joins, Leaves int
	PeakMembers   int
	FinalMembers  int
}

// Describe computes schedule statistics.
func (s *Schedule) Describe() Stats {
	var st Stats
	cur := 0
	// Events are time-sorted; same-time events apply in emitted order.
	sorted := append([]Event(nil), s.Events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	for _, e := range sorted {
		switch e.Kind {
		case Join:
			st.Joins++
			cur++
		case Leave:
			st.Leaves++
			cur--
		}
		if cur > st.PeakMembers {
			st.PeakMembers = cur
		}
	}
	st.FinalMembers = cur
	return st
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("joins=%d leaves=%d peak=%d final=%d",
		s.Joins, s.Leaves, s.PeakMembers, s.FinalMembers)
}
