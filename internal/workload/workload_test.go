package workload

import (
	"testing"
	"testing/quick"

	"smrp/internal/graph"
	"smrp/internal/topology"
)

func population(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i + 1) // node 0 reserved for the source
	}
	return out
}

func TestEventKindString(t *testing.T) {
	if Join.String() != "join" || Leave.String() != "leave" {
		t.Error("kind strings wrong")
	}
	if EventKind(0).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Nodes: population(10), Horizon: 100, ArrivalRate: 1, MeanLifetime: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Horizon: 100},
		{Nodes: population(5), Horizon: 0},
		{Nodes: population(5), Horizon: 10, ArrivalRate: -1},
		{Nodes: population(5), Horizon: 10, MeanLifetime: -1},
		{Nodes: population(5), Horizon: 10, InitialMembers: 6},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestGenerateInitialOnly(t *testing.T) {
	cfg := Config{Nodes: population(20), Horizon: 100, InitialMembers: 8}
	s, err := Generate(cfg, topology.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	st := s.Describe()
	if st.Joins != 8 || st.Leaves != 0 || st.FinalMembers != 8 {
		t.Errorf("stats = %v", st)
	}
	for _, e := range s.Events {
		if e.At != 0 || e.Kind != Join {
			t.Errorf("unexpected event %+v", e)
		}
	}
}

func TestGenerateChurnInvariants(t *testing.T) {
	cfg := Config{
		Nodes:          population(30),
		Horizon:        200,
		ArrivalRate:    0.5,
		MeanLifetime:   20,
		InitialMembers: 5,
	}
	s, err := Generate(cfg, topology.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	// Time-ordered.
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].At < s.Events[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
	}
	// No node is double-joined and no leave without join.
	active := map[graph.NodeID]bool{}
	for _, e := range s.Events {
		switch e.Kind {
		case Join:
			if active[e.Node] {
				t.Fatalf("node %d joined twice while active", e.Node)
			}
			active[e.Node] = true
		case Leave:
			if !active[e.Node] {
				t.Fatalf("node %d left without being a member", e.Node)
			}
			delete(active, e.Node)
		}
	}
	st := s.Describe()
	if st.Joins == 0 || st.Leaves == 0 {
		t.Errorf("expected churn, got %v", st)
	}
	if st.FinalMembers != len(active) {
		t.Errorf("FinalMembers %d != tracked %d", st.FinalMembers, len(active))
	}
	if st.String() == "" {
		t.Error("Stats String empty")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := Config{Nodes: population(30), Horizon: 100, ArrivalRate: 1, MeanLifetime: 15, InitialMembers: 3}
	a, err := Generate(cfg, topology.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, topology.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

// TestGenerateQuickProperty churn invariants hold across arbitrary seeds.
func TestGenerateQuickProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		cfg := Config{
			Nodes:          population(15),
			Horizon:        80,
			ArrivalRate:    0.8,
			MeanLifetime:   10,
			InitialMembers: 4,
		}
		s, err := Generate(cfg, topology.NewRNG(seed))
		if err != nil {
			return false
		}
		active := map[graph.NodeID]bool{}
		for _, e := range s.Events {
			if e.At < 0 || e.At > cfg.Horizon {
				return false
			}
			switch e.Kind {
			case Join:
				if active[e.Node] {
					return false
				}
				active[e.Node] = true
			case Leave:
				if !active[e.Node] {
					return false
				}
				delete(active, e.Node)
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
