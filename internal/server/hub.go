package server

import "sync"

// subBuf is the per-subscriber event buffer. A subscriber that falls more
// than subBuf events behind is marked lagged and stops receiving individual
// events; the SSE writer detects the sequence gap and coalesces it into one
// snapshot (see Actor.Snapshot and the events handler). Publishing is
// therefore always non-blocking: a slow consumer can never stall the actor.
const subBuf = 64

// subscriber is one attached event-feed consumer.
type subscriber struct {
	ch chan Event
}

// hub fans one session's events out to its subscribers. It is written from
// the session's actor goroutine (publish) and read/modified from HTTP
// handler goroutines (subscribe/unsubscribe), so the subscriber set is
// mutex-guarded; the per-subscriber channels decouple the two sides.
type hub struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool
}

func newHub() *hub {
	return &hub{subs: make(map[*subscriber]struct{})}
}

// subscribe attaches a new consumer. It returns nil when the hub is already
// closed (session deleted or server draining).
func (h *hub) subscribe() *subscriber {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	s := &subscriber{ch: make(chan Event, subBuf)}
	h.subs[s] = struct{}{}
	return s
}

// unsubscribe detaches s. Idempotent; safe after close.
func (h *hub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, s)
}

// publish delivers ev to every subscriber without ever blocking: a consumer
// whose buffer is full simply misses the event, which the SSE writer
// observes as a sequence gap and repairs with a coalesced snapshot. Called
// only from the actor goroutine, so subscribers see events in actor order.
func (h *hub) publish(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for s := range h.subs {
		select {
		case s.ch <- ev:
		default: // lagged: drop; the seq gap triggers snapshot coalescing
		}
	}
}

// close publishes nothing further and closes every subscriber channel, which
// ends their SSE streams after any buffered events drain.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		close(s.ch)
		delete(h.subs, s)
	}
}

// numSubs returns the current subscriber count (metrics).
func (h *hub) numSubs() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}
