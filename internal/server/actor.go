package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
)

// Sentinel errors of the serving layer, matchable with errors.Is.
var (
	// ErrSessionClosed is returned for commands submitted to a session that
	// has been deleted or is draining.
	ErrSessionClosed = errors.New("server: session closed")
	// ErrUnknownSession is returned by registry lookups for IDs that do not
	// (or no longer) exist.
	ErrUnknownSession = errors.New("server: unknown session")
	// ErrMailboxFull is returned when a command could not be enqueued before
	// its context expired (the bounded mailbox is the backpressure surface).
	ErrMailboxFull = errors.New("server: session mailbox full")
)

// defaultMailboxCap bounds each actor's command mailbox. Submissions beyond
// the bound block the HTTP handler (not the actor) until space frees or the
// request context expires — that is the server's backpressure: overload
// turns into 503s at the edge, never into unbounded queues.
const defaultMailboxCap = 64

// cmdKind enumerates the actor mailbox protocol.
type cmdKind int

const (
	cmdJoin cmdKind = iota + 1
	cmdLeave
	cmdFail
	cmdRepair
	cmdReshape
	cmdStats
	cmdSnapshot
)

// command is one mailbox entry. reply is buffered (capacity 1) so the actor
// never blocks handing back a result, even if the submitter gave up.
type command struct {
	kind     cmdKind
	node     graph.NodeID
	failures []failure.Failure
	recover  bool
	reply    chan cmdResult
}

type cmdResult struct {
	val any
	err error
}

// snapshotReply pairs a session snapshot with the event sequence number it
// is consistent with: every event with Seq <= AsOfSeq is already reflected
// in Snap. The SSE writer uses this to coalesce a lag gap into one snapshot
// and resume the stream without duplicating or losing transitions.
type snapshotReply struct {
	Snap    core.Snapshot
	AsOfSeq uint64
}

// statsReply is the cmdStats payload.
type statsReply struct {
	Stats        core.Stats
	Members      int
	Parked       int
	MailboxDepth int
	EventSeq     uint64
}

// Actor owns one core.Session on a dedicated goroutine. All access to the
// session flows through the bounded mailbox, preserving core's
// single-goroutine contract with no locks around protocol state; the only
// shared structures the session touches (the topology and its SPF cache)
// are read-only respectively concurrency-safe.
type Actor struct {
	// ID is the registry-assigned, generation-stamped session ID.
	ID string
	// Source is the session's multicast source node.
	Source graph.NodeID

	sess *core.Session
	mbox chan *command
	hub  *hub

	stop     chan struct{} // closed by Close: stop accepting, flush, exit
	done     chan struct{} // closed when the run loop has fully exited
	stopOnce func()

	// stopMu serializes enqueues against Close: submit enqueues under the
	// read lock, Close sets stopped under the write lock before closing
	// stop. That ordering guarantees no command can enter the mailbox after
	// the stop signal, so the run loop's drain flush is definitive — after
	// Drained, the mailbox is empty and stays empty.
	stopMu  sync.RWMutex
	stopped bool // guarded by stopMu

	seq     uint64        // event sequence; actor goroutine only
	lastSeq atomic.Uint64 // published copy of seq for metrics/handlers
	handled atomic.Uint64 // commands processed (metrics)
	members atomic.Int64  // published member count (list/metrics gauges)
	parked  atomic.Int64  // published parked-member count (list/metrics gauges)

	// standing is the session's deterministic standing-state byte
	// accounting (core.Session.MemoryFootprint), published after every
	// handled command so /metrics can report per-fleet standing bytes —
	// the server-side view of the sparse-vs-dense storage tradeoff —
	// without a mailbox round trip.
	standing atomic.Int64
}

// newActor wraps sess in an actor and starts its goroutine.
func newActor(id string, sess *core.Session, mailboxCap int) *Actor {
	a := buildActor(id, sess, mailboxCap)
	go a.run()
	return a
}

// buildActor constructs the actor without starting its goroutine (tests
// preload the mailbox this way to exercise coalescing deterministically).
func buildActor(id string, sess *core.Session, mailboxCap int) *Actor {
	if mailboxCap < 1 {
		mailboxCap = defaultMailboxCap
	}
	a := &Actor{
		ID:     id,
		Source: sess.Tree().Source(),
		sess:   sess,
		mbox:   make(chan *command, mailboxCap),
		hub:    newHub(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	a.standing.Store(sess.MemoryFootprint())
	var once atomic.Bool
	a.stopOnce = func() {
		if once.CompareAndSwap(false, true) {
			a.stopMu.Lock()
			a.stopped = true
			a.stopMu.Unlock()
			close(a.stop)
		}
	}
	return a
}

// Close stops the actor: no new commands are accepted, commands already in
// the mailbox are flushed (each gets its reply and its events), a final
// EventClosed snapshot is published, and every event feed ends. It does not
// wait; use Drained to wait for the flush to finish.
func (a *Actor) Close() { a.stopOnce() }

// Drained returns a channel closed once the actor's goroutine has exited
// (mailbox flushed, feeds closed).
func (a *Actor) Drained() <-chan struct{} { return a.done }

// MailboxDepth reports how many commands are queued right now.
func (a *Actor) MailboxDepth() int { return len(a.mbox) }

// EventSeq reports the sequence number of the most recently published event.
func (a *Actor) EventSeq() uint64 { return a.lastSeq.Load() }

// Handled reports how many commands the actor has processed.
func (a *Actor) Handled() uint64 { return a.handled.Load() }

// Subscribers reports the current event-feed subscriber count.
func (a *Actor) Subscribers() int { return a.hub.numSubs() }

// Members reports the session's member count as of the last handled command.
// Published by the actor goroutine; safe to read concurrently — this is what
// the session-list endpoint and /metrics serve without a mailbox round trip.
func (a *Actor) Members() int { return int(a.members.Load()) }

// Parked reports the parked-member count as of the last handled command
// (same publication discipline as Members).
func (a *Actor) Parked() int { return int(a.parked.Load()) }

// StandingBytes reports the session's deterministic standing-state byte
// accounting as of the last handled command (same publication discipline as
// Members). Sparse-storage sessions report O(|tree|+|members|) bytes; dense
// ones report O(topology).
func (a *Actor) StandingBytes() int64 { return a.standing.Load() }

// submit enqueues c and waits for its reply. It returns ErrSessionClosed if
// the actor is (or becomes) closed before the command is handled, and the
// context error if ctx expires while the mailbox is full.
func (a *Actor) submit(ctx context.Context, c *command) (any, error) {
	// Enqueue under the read lock: Close flips stopped under the write lock
	// before signalling stop, so a command either lands in the mailbox
	// before the drain flush begins (and is guaranteed a reply) or is
	// rejected here. Blocking on a full mailbox while holding the read lock
	// is safe — the actor is still consuming until stop is signalled, and
	// stop cannot be signalled while we hold the lock.
	a.stopMu.RLock()
	if a.stopped {
		a.stopMu.RUnlock()
		return nil, ErrSessionClosed
	}
	select {
	case a.mbox <- c:
		a.stopMu.RUnlock()
	case <-ctx.Done():
		a.stopMu.RUnlock()
		return nil, errors.Join(ErrMailboxFull, ctx.Err())
	}
	select {
	case r := <-c.reply:
		return r.val, r.err
	case <-a.done:
		// The actor exited while our command was in flight. Every enqueued
		// command is replied to by the drain flush, so the reply must be
		// here by now.
		select {
		case r := <-c.reply:
			return r.val, r.err
		default:
			return nil, ErrSessionClosed
		}
	}
}

// run is the actor goroutine: handle commands until Close, then flush the
// mailbox, publish a final snapshot, and end all feeds.
func (a *Actor) run() {
	defer close(a.done)
	for {
		select {
		case c := <-a.mbox:
			a.dispatch(c)
		case <-a.stop:
			for {
				select {
				case c := <-a.mbox:
					a.dispatch(c)
				default:
					snap := a.sess.Snapshot()
					a.emit(Event{Kind: EventClosed, Detail: marshalDetail(snap)})
					a.hub.close()
					return
				}
			}
		}
	}
}

// dispatch routes one dequeued command. A join opens a coalescing window:
// every join queued consecutively behind it is pulled into one batch and
// admitted through core.JoinBatch, which amortizes the source SPF and the
// candidate-enumeration sweeps across the whole run of joiners. A session's
// mailbox joins are same-group by construction (one actor owns one session),
// so a backed-up flash crowd is exactly the shape the batched path is built
// for. Coalescing never reorders: the window closes at the first non-join
// command, which is then handled in its queue position, so the command and
// event order are identical to one-at-a-time handling — and JoinBatch itself
// is bit-identical to sequential joins, so replies and events match too.
func (a *Actor) dispatch(c *command) {
	if c.kind != cmdJoin {
		a.handle(c)
		return
	}
	batch := []*command{c}
	var next *command
collect:
	for {
		select {
		case nc := <-a.mbox:
			if nc.kind != cmdJoin {
				next = nc
				break collect
			}
			batch = append(batch, nc)
		default:
			break collect
		}
	}
	a.handleJoins(batch)
	if next != nil {
		a.handle(next)
	}
}

// handleJoins admits a coalesced run of join commands. A solo join takes the
// ordinary path; two or more go through the session's batched join. Either
// way each command gets its own reply and its own events, in order.
func (a *Actor) handleJoins(batch []*command) {
	joinBatchHist.observe(len(batch))
	if len(batch) == 1 {
		a.handle(batch[0])
		return
	}
	nodes := make([]graph.NodeID, len(batch))
	for i, c := range batch {
		nodes[i] = c.node
	}
	results, errs := a.sess.JoinBatch(nodes)
	for i, c := range batch {
		a.handled.Add(1)
		r, err := results[i], errs[i]
		if err == nil {
			joinsTotal.Add(1)
			a.emit(Event{Kind: EventJoin, Node: c.node, Detail: marshalDetail(joinWire(r))})
			for _, m := range r.Reshaped {
				a.emit(Event{Kind: EventReshape, Node: m})
			}
		} else if errors.Is(err, core.ErrPartitioned) {
			a.emit(Event{Kind: EventPark, Node: c.node})
		}
		c.reply <- cmdResult{val: r, err: err} // buffered: never blocks
	}
	a.members.Store(int64(a.sess.Tree().NumMembers()))
	a.parked.Store(int64(a.sess.NumParked()))
	a.standing.Store(a.sess.MemoryFootprint())
}

// emit assigns the next sequence number and publishes ev to the hub.
// Actor goroutine only.
func (a *Actor) emit(ev Event) {
	a.seq++
	ev.Seq = a.seq
	ev.Session = a.ID
	a.lastSeq.Store(a.seq)
	a.hub.publish(ev)
}

// handle executes one command against the owned session and publishes the
// resulting events in the exact order the state transitions happened.
func (a *Actor) handle(c *command) {
	a.handled.Add(1)
	var res cmdResult
	switch c.kind {
	case cmdJoin:
		r, err := a.sess.Join(c.node)
		res = cmdResult{val: r, err: err}
		if err == nil {
			joinsTotal.Add(1)
			a.emit(Event{Kind: EventJoin, Node: c.node, Detail: marshalDetail(joinWire(r))})
			for _, m := range r.Reshaped {
				a.emit(Event{Kind: EventReshape, Node: m})
			}
		} else if errors.Is(err, core.ErrPartitioned) {
			// The join parked the member (graceful degradation).
			a.emit(Event{Kind: EventPark, Node: c.node})
		}
	case cmdLeave:
		err := a.sess.Leave(c.node)
		res = cmdResult{err: err}
		if err == nil {
			a.emit(Event{Kind: EventLeave, Node: c.node})
		}
	case cmdFail:
		if !c.recover {
			// Mirror Recover's pre-validation: a batch naming the source
			// would leave the session permanently degraded with nothing to
			// repair it, so reject it without touching the mask.
			if failure.TakesDownNode(c.failures, a.sess.Tree().Source()) {
				res = cmdResult{err: failure.ErrSourceFailed}
				break
			}
			a.sess.ApplyFailure(c.failures...)
			res = cmdResult{val: (*core.HealReport)(nil)}
			a.emit(Event{Kind: EventFail, Detail: marshalDetail(failuresWire(c.failures))})
			break
		}
		rep, err := a.sess.Recover(c.failures...)
		res = cmdResult{val: rep, err: err}
		if err == nil {
			a.emit(Event{Kind: EventFail, Detail: marshalDetail(healWire(rep))})
			for _, m := range rep.Unrecovered {
				a.emit(Event{Kind: EventPark, Node: m})
			}
			for _, m := range rep.Readmitted {
				a.emit(Event{Kind: EventReadmit, Node: m})
			}
		}
	case cmdRepair:
		rep, err := a.sess.Repair(c.failures...)
		res = cmdResult{val: rep, err: err}
		if err == nil {
			a.emit(Event{Kind: EventRepair, Detail: marshalDetail(repairWire(rep))})
			for _, m := range rep.Readmitted {
				a.emit(Event{Kind: EventReadmit, Node: m})
			}
		}
	case cmdReshape:
		moved := a.sess.ReshapeAll()
		res = cmdResult{val: moved}
		for _, m := range moved {
			a.emit(Event{Kind: EventReshape, Node: m})
		}
	case cmdStats:
		res = cmdResult{val: statsReply{
			Stats:        a.sess.Stats(),
			Members:      a.sess.Tree().NumMembers(),
			Parked:       a.sess.NumParked(),
			MailboxDepth: len(a.mbox),
			EventSeq:     a.seq,
		}}
	case cmdSnapshot:
		res = cmdResult{val: snapshotReply{Snap: a.sess.Snapshot(), AsOfSeq: a.seq}}
	default:
		res = cmdResult{err: errors.New("server: unknown command")}
	}
	// Publish the membership gauges so list/metrics handlers can report them
	// without a mailbox round trip.
	a.members.Store(int64(a.sess.Tree().NumMembers()))
	a.parked.Store(int64(a.sess.NumParked()))
	a.standing.Store(a.sess.MemoryFootprint())
	c.reply <- res // buffered: never blocks the actor
}

// Convenience command wrappers used by the HTTP handlers and tests.

func (a *Actor) Join(ctx context.Context, n graph.NodeID) (*core.JoinResult, error) {
	v, err := a.submit(ctx, &command{kind: cmdJoin, node: n, reply: make(chan cmdResult, 1)})
	if err != nil {
		return nil, err
	}
	r, _ := v.(*core.JoinResult)
	return r, nil
}

func (a *Actor) Leave(ctx context.Context, n graph.NodeID) error {
	_, err := a.submit(ctx, &command{kind: cmdLeave, node: n, reply: make(chan cmdResult, 1)})
	return err
}

// Fail applies fs to the session. With recover set the failures are healed
// via SMRP local detours (core.Session.Recover) and the report is returned; without
// it the failures only accumulate in the session mask (core.ApplyFailure)
// and the report is nil.
func (a *Actor) Fail(ctx context.Context, fs []failure.Failure, recover bool) (*core.HealReport, error) {
	v, err := a.submit(ctx, &command{kind: cmdFail, failures: fs, recover: recover, reply: make(chan cmdResult, 1)})
	if err != nil {
		return nil, err
	}
	r, _ := v.(*core.HealReport)
	return r, nil
}

func (a *Actor) Repair(ctx context.Context, fs []failure.Failure) (*core.RepairReport, error) {
	v, err := a.submit(ctx, &command{kind: cmdRepair, failures: fs, reply: make(chan cmdResult, 1)})
	if err != nil {
		return nil, err
	}
	r, _ := v.(*core.RepairReport)
	return r, nil
}

func (a *Actor) Reshape(ctx context.Context) ([]graph.NodeID, error) {
	v, err := a.submit(ctx, &command{kind: cmdReshape, reply: make(chan cmdResult, 1)})
	if err != nil {
		return nil, err
	}
	moved, _ := v.([]graph.NodeID)
	return moved, nil
}

func (a *Actor) Stats(ctx context.Context) (statsReply, error) {
	v, err := a.submit(ctx, &command{kind: cmdStats, reply: make(chan cmdResult, 1)})
	if err != nil {
		return statsReply{}, err
	}
	return v.(statsReply), nil
}

// Snapshot returns the session state together with the event sequence it is
// consistent with (see snapshotReply).
func (a *Actor) Snapshot(ctx context.Context) (snapshotReply, error) {
	v, err := a.submit(ctx, &command{kind: cmdSnapshot, reply: make(chan cmdResult, 1)})
	if err != nil {
		return snapshotReply{}, err
	}
	return v.(snapshotReply), nil
}
