package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"smrp/internal/core"
	"smrp/internal/graph"
)

// Registry owns the shared topology and the set of live session actors.
// All sessions run over the same immutable *graph.Graph and share its SPF
// cache: concurrent sessions on one topology accumulate overlapping failure
// history, so one session's delta-repaired shortest-path tree becomes the
// lineage ancestor for another session's cache miss — cross-session reuse
// multiplies the incremental-SPF hit rate (ROADMAP item 1).
//
// Session IDs are generation-stamped: the registry's generation (fixed at
// construction, e.g. a boot counter) plus a monotonically increasing
// sequence number. IDs are never reused, even after Delete, so a stale
// client holding an ID from a previous generation (or a deleted session)
// gets a clean ErrUnknownSession instead of silently addressing a different
// session.
type Registry struct {
	g          *graph.Graph
	cache      *graph.SPFCache
	defaultCfg core.Config
	mailboxCap int
	generation uint64

	seq atomic.Uint64 // session sequence within this generation

	mu       sync.RWMutex
	sessions map[string]*Actor
	closed   bool
}

// RegistryConfig parameterizes NewRegistry.
type RegistryConfig struct {
	// Generation stamps every session ID minted by this registry. A daemon
	// restart should use a fresh generation so IDs from the previous life
	// are recognizably dead. Values < 1 default to 1.
	Generation uint64
	// MailboxCap bounds each session actor's command mailbox; < 1 selects
	// the default (64).
	MailboxCap int
	// DefaultConfig is the session config used when a create request does
	// not override tuning knobs. Zero value selects core.DefaultConfig.
	DefaultConfig core.Config
}

// NewRegistry builds a registry over g, attaching (or reusing) the graph's
// SPF cache. The graph must not be mutated after this point: the registry
// shares it read-only across every session actor.
func NewRegistry(g *graph.Graph, cfg RegistryConfig) *Registry {
	if cfg.Generation < 1 {
		cfg.Generation = 1
	}
	if (cfg.DefaultConfig == core.Config{}) {
		cfg.DefaultConfig = core.DefaultConfig()
	}
	return &Registry{
		g:          g,
		cache:      g.EnableSPFCache(),
		defaultCfg: cfg.DefaultConfig,
		mailboxCap: cfg.MailboxCap,
		generation: cfg.Generation,
		sessions:   make(map[string]*Actor),
	}
}

// Graph returns the shared topology (read-only).
func (r *Registry) Graph() *graph.Graph { return r.g }

// Cache returns the shared SPF cache.
func (r *Registry) Cache() *graph.SPFCache { return r.cache }

// Create mints a new session actor rooted at source. Config overrides are
// applied on top of the registry default.
func (r *Registry) Create(req CreateSessionRequest) (*Actor, error) {
	cfg := r.defaultCfg
	if req.DThresh != nil {
		cfg.DThresh = *req.DThresh
	}
	if req.ReshapeDelta != nil {
		cfg.ReshapeDelta = *req.ReshapeDelta
	}
	if req.PeriodicReshape != nil {
		cfg.PeriodicReshape = *req.PeriodicReshape
	}
	if req.Source < 0 || int(req.Source) >= r.g.NumNodes() {
		return nil, fmt.Errorf("create: source %d: %w", req.Source, core.ErrUnknownNode)
	}
	sess, err := core.NewSession(r.g, req.Source, cfg)
	if err != nil {
		return nil, err
	}
	id := fmt.Sprintf("s%d-%d", r.generation, r.seq.Add(1))
	a := newActor(id, sess, r.mailboxCap)

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		a.Close()
		<-a.Drained()
		return nil, ErrSessionClosed
	}
	r.sessions[id] = a
	r.mu.Unlock()
	return a, nil
}

// Get returns the actor for id, or ErrUnknownSession.
func (r *Registry) Get(id string) (*Actor, error) {
	r.mu.RLock()
	a := r.sessions[id]
	r.mu.RUnlock()
	if a == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	return a, nil
}

// List returns all live actors sorted by ID (creation order within a
// generation: the numeric suffix is monotonic, but lexicographic order is
// stable and good enough for an inventory endpoint).
func (r *Registry) List() []*Actor {
	r.mu.RLock()
	out := make([]*Actor, 0, len(r.sessions))
	for _, a := range r.sessions {
		out = append(out, a)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of live sessions.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sessions)
}

// Delete closes the actor for id, waits for its mailbox flush, and removes
// it. The ID is never reused.
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	a := r.sessions[id]
	delete(r.sessions, id)
	r.mu.Unlock()
	if a == nil {
		return fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	a.Close()
	<-a.Drained()
	return nil
}

// Close drains every session concurrently and waits for all actors to exit.
// Subsequent Creates fail with ErrSessionClosed; the registry keeps
// answering Get/List (draining clients may still read final state).
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	actors := make([]*Actor, 0, len(r.sessions))
	for _, a := range r.sessions {
		actors = append(actors, a)
	}
	r.mu.Unlock()

	for _, a := range actors {
		a.Close()
	}
	for _, a := range actors {
		<-a.Drained()
	}
}
