// Package server is the long-lived multicast-session control plane: it hosts
// many concurrent SMRP sessions over one shared topology and exposes them
// through an HTTP/JSON API with per-session Server-Sent-Events feeds.
//
// Concurrency model. core.Session is deliberately single-goroutine; the
// server preserves that invariant with a per-session actor (see Actor): one
// goroutine owns each session and consumes commands from a bounded mailbox,
// so no session state is ever touched by two goroutines. Sessions share one
// immutable *graph.Graph and its SPFCache — the cache is concurrency-safe
// and sharing it across sessions multiplies the incremental-SPF lineage hit
// rate, because sessions on one topology share failure history.
package server

import (
	"encoding/json"

	"smrp/internal/graph"
)

// EventKind labels one entry in a session's event feed.
type EventKind string

// Event kinds emitted by session actors. Every state-changing command emits
// at least one event; park/readmit transitions emit one event per member so
// feeds can track the degraded-member state machine exactly.
const (
	EventJoin     EventKind = "join"
	EventLeave    EventKind = "leave"
	EventFail     EventKind = "fail"
	EventRepair   EventKind = "repair"
	EventPark     EventKind = "park"
	EventReadmit  EventKind = "readmit"
	EventReshape  EventKind = "reshape"
	EventSnapshot EventKind = "snapshot"
	EventClosed   EventKind = "closed"
)

// Event is one entry in a session's event feed. Seq is assigned by the
// session's actor goroutine and is strictly increasing per session, so a
// subscriber observing increasing Seq values is observing events in the
// exact order the actor applied them. A gap in Seq means the subscriber
// lagged and events were dropped; the stream heals the gap with an
// EventSnapshot carrying the full session state at a Seq past the gap.
type Event struct {
	Seq     uint64    `json:"seq"`
	Session string    `json:"session"`
	Kind    EventKind `json:"kind"`
	// Node is set for member-scoped events (join/leave/park/readmit/reshape).
	Node graph.NodeID `json:"node,omitempty"`
	// Detail carries the kind-specific payload (join result, heal report,
	// repair report, snapshot, ...), pre-marshaled by the actor so
	// subscribers share one immutable copy.
	Detail json.RawMessage `json:"detail,omitempty"`
}

// marshalDetail renders v for Event.Detail, tolerating marshal failures (the
// event still flows, just without its payload).
func marshalDetail(v any) json.RawMessage {
	if v == nil {
		return nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil
	}
	return b
}
