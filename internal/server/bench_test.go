package server

import (
	"context"
	"net/http"
	"sync/atomic"
	"testing"

	"smrp/internal/graph"
)

// BenchmarkActorJoin measures the actor round-trip alone: command enqueue,
// session join, event publish, reply — no HTTP in the path.
func BenchmarkActorJoin(b *testing.B) {
	g := waxmanGraph(b, 200, 11)
	reg := NewRegistry(g, RegistryConfig{})
	defer reg.Close()
	a, err := reg.Create(CreateSessionRequest{Source: 0})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node := graph.NodeID(1 + i%(g.NumNodes()-1))
		if _, err := a.Join(ctx, node); err == nil {
			_ = a.Leave(ctx, node)
		}
	}
}

// BenchmarkServeJoinsHTTP measures end-to-end join throughput over HTTP with
// concurrent sessions sharing one topology and SPF cache — the serving
// layer's capacity number (ops are joins; joins/sec = 1e9/ns_per_op).
func BenchmarkServeJoinsHTTP(b *testing.B) {
	g := waxmanGraph(b, 200, 11)
	_, ts := testServer(b, g)
	client := ts.Client()
	var nextSource atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		src := graph.NodeID(nextSource.Add(1) % int64(g.NumNodes()))
		var info SessionInfo
		code, err := tryJSON(client, http.MethodPost, ts.URL+"/v1/sessions",
			CreateSessionRequest{Source: src}, &info)
		if err != nil || code != http.StatusCreated {
			b.Errorf("create: status %d err %v", code, err)
			return
		}
		joinURL := ts.URL + "/v1/sessions/" + info.ID + "/join"
		n := 0
		for pb.Next() {
			n++
			node := graph.NodeID((int(src) + n*3) % g.NumNodes())
			if node == src {
				continue
			}
			code, err := tryJSON(client, http.MethodPost, joinURL, NodeRequest{Node: node}, nil)
			if err != nil {
				b.Errorf("join: %v", err)
				return
			}
			switch code {
			case http.StatusOK, http.StatusConflict, http.StatusUnprocessableEntity:
			default:
				b.Errorf("join node %d: status %d", node, code)
				return
			}
		}
	})
}
