package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"smrp/internal/graph"
	"smrp/internal/topology"
)

// testGraph builds a small fixed topology with known structure:
//
//	0 — 1 — 2 — 3
//	    |       |
//	    4 ——————+
//	2 — 5            (5's only link: failing node 2 partitions 5)
//	6 is isolated    (no links: joining 6 on a healthy net is no_path)
//
// All weights 1, except the 4–3 long way (weight 2) so shortest paths are
// unambiguous.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New(7)
	type e struct {
		u, v graph.NodeID
		w    float64
	}
	for _, ed := range []e{
		{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {1, 4, 1}, {4, 3, 2}, {2, 5, 1},
	} {
		if err := g.AddEdge(ed.u, ed.v, ed.w); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", ed.u, ed.v, err)
		}
	}
	return g
}

// waxmanGraph builds a connected evaluation-scale topology for concurrency
// and capacity tests.
func waxmanGraph(t testing.TB, n int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := topology.Waxman(topology.WaxmanConfig{
		N: n, Alpha: 0.25, Beta: topology.DefaultBeta, EnsureConnected: true,
	}, topology.NewRNG(seed))
	if err != nil {
		t.Fatalf("waxman: %v", err)
	}
	return g
}

// testServer boots a handler-only control plane over g and returns the
// Server plus an httptest frontend. The server is drained at cleanup.
func testServer(t testing.TB, g *graph.Graph) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry(g, RegistryConfig{Generation: 7})
	srv := New(reg, Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Drain()
		ts.Close()
	})
	return srv, ts
}

// readAll drains and closes a response body as a string.
func readAll(t testing.TB, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return string(data)
}

// tryJSON issues one request with a JSON body and decodes the JSON response,
// reporting failures as errors — safe from non-test goroutines where
// t.Fatal is illegal. A nil body sends no payload; a nil out discards the
// response body.
func tryJSON(client *http.Client, method, url string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, fmt.Errorf("marshal body: %w", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, fmt.Errorf("new request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("%s %s: %w", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, fmt.Errorf("read body: %w", err)
	}
	if out != nil && len(bytes.TrimSpace(data)) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("%s %s: decode %q: %w", method, url, data, err)
		}
	}
	return resp.StatusCode, nil
}

// doJSON is tryJSON with t.Fatal on any transport or decoding failure. Only
// call it from the test goroutine.
func doJSON(t testing.TB, client *http.Client, method, url string, body, out any) int {
	t.Helper()
	code, err := tryJSON(client, method, url, body, out)
	if err != nil {
		t.Fatal(err)
	}
	return code
}

// createSession creates a session rooted at source and returns its ID.
func createSession(t testing.TB, client *http.Client, base string, source graph.NodeID) string {
	t.Helper()
	var info SessionInfo
	code := doJSON(t, client, http.MethodPost, base+"/v1/sessions",
		CreateSessionRequest{Source: source}, &info)
	if code != http.StatusCreated {
		t.Fatalf("create session: status %d", code)
	}
	if info.ID == "" {
		t.Fatal("create session: empty ID")
	}
	return info.ID
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	ID    uint64
	Kind  string
	Event Event
}

// openSSE subscribes to a session's event feed and returns a channel of
// parsed frames plus a cancel function. The channel closes when the stream
// ends.
func openSSE(t testing.TB, base, id string) (<-chan sseEvent, func()) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/sessions/"+id+"/events", nil)
	if err != nil {
		t.Fatalf("sse request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("sse connect: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("sse connect: status %d", resp.StatusCode)
	}
	out := make(chan sseEvent, 256)
	go func() {
		defer close(out)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		var cur sseEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if cur.Kind != "" {
					out <- cur
				}
				cur = sseEvent{}
			case strings.HasPrefix(line, "id: "):
				fmt.Sscanf(line, "id: %d", &cur.ID)
			case strings.HasPrefix(line, "event: "):
				cur.Kind = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				_ = json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.Event)
			}
		}
	}()
	return out, func() { resp.Body.Close() }
}
