package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smrp/internal/core"
	"smrp/internal/graph"
)

// TestGracefulDrainUnderJoinStorm boots a real listener, hammers it with
// concurrent joins, cancels the serve context mid-storm (the SIGTERM path),
// and verifies the drain contract: Serve returns cleanly, every actor's
// mailbox is flushed, accepted commands were all handled, and no goroutines
// leak.
func TestGracefulDrainUnderJoinStorm(t *testing.T) {
	g := waxmanGraph(t, 96, 1)
	baseline := runtime.NumGoroutine()

	reg := NewRegistry(g, RegistryConfig{Generation: 2})
	srv := New(reg, Config{DrainTimeout: 10 * time.Second})

	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- srv.ListenAndServe(ctx, "127.0.0.1:0", func(addr string) { addrCh <- addr })
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(5 * time.Second):
		t.Fatal("server did not start")
	}

	tr := &http.Transport{}
	client := &http.Client{Transport: tr, Timeout: 15 * time.Second}

	const sessions = 16
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = createSession(t, client, base, graph.NodeID(i))
	}

	// Join storm: each session gets a dedicated stormer issuing joins as
	// fast as the server accepts them, until the drain cuts it off.
	var accepted atomic.Uint64
	var wg sync.WaitGroup
	stormCtx, stopStorm := context.WithCancel(context.Background())
	defer stopStorm()
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			for n := 20; ; n++ {
				if stormCtx.Err() != nil {
					return
				}
				node := graph.NodeID((i*7 + n) % g.NumNodes())
				code, err := tryJSON(client, http.MethodPost,
					fmt.Sprintf("%s/v1/sessions/%s/join", base, id),
					NodeRequest{Node: node}, nil)
				switch {
				case err != nil:
					// Connection severed by the drain — done storming.
					return
				case code == http.StatusOK, code == http.StatusConflict,
					code == http.StatusUnprocessableEntity:
					accepted.Add(1)
				default:
					// Drain cut us off (503/404) — stop storming this session.
					return
				}
			}
		}(i, id)
	}

	// Let the storm build up, then pull the plug mid-flight.
	waitFor(t, "storm to make progress", func() bool { return accepted.Load() > 2*sessions })
	cancel()

	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v, want clean drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}
	stopStorm()
	wg.Wait()

	if !srv.Draining() {
		t.Fatal("server not marked draining after shutdown")
	}

	// Every actor flushed its mailbox and exited; accepted commands were all
	// handled, not dropped.
	var handled uint64
	for _, a := range reg.List() {
		select {
		case <-a.Drained():
		default:
			t.Fatalf("session %s not drained", a.ID)
		}
		if d := a.MailboxDepth(); d != 0 {
			t.Fatalf("session %s mailbox depth %d after drain, want 0", a.ID, d)
		}
		handled += a.Handled()
	}
	// Each session handled at least its create-time state plus the storm
	// joins the server accepted before the cut.
	if handled < accepted.Load() {
		t.Fatalf("handled %d commands < %d accepted over HTTP: commands were dropped", handled, accepted.Load())
	}

	// New sessions are refused once drained: the listener is down (dial
	// error) or, at worst, a lingering keep-alive gets a 503.
	if code, err := tryJSON(client, http.MethodPost, base+"/v1/sessions",
		CreateSessionRequest{Source: 0}, nil); err == nil && code == http.StatusCreated {
		t.Fatal("create succeeded after drain")
	}

	// No leaked goroutines: once client keep-alives are closed, the count
	// returns to (near) the pre-server baseline.
	tr.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, now, buf[:n])
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
}

// TestConcurrentSessionLifecycles drives 64 concurrent sessions end to end
// over HTTP — create, join fan-in, failure burst, repair, stats, leave,
// delete — over one shared topology and SPF cache. Run with -race this
// doubles as the shared-state safety check for the registry, hub, and the
// graph's SPF counters.
func TestConcurrentSessionLifecycles(t *testing.T) {
	g := waxmanGraph(t, 96, 3)
	_, ts := testServer(t, g)
	client := ts.Client()
	client.Timeout = 30 * time.Second

	const sessions = 64
	const joins = 8
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				errs <- fmt.Errorf("session %d: "+format, append([]any{i}, args...)...)
			}
			src := graph.NodeID(i % g.NumNodes())
			var info SessionInfo
			code, err := tryJSON(client, http.MethodPost, ts.URL+"/v1/sessions",
				CreateSessionRequest{Source: src}, &info)
			if err != nil || code != http.StatusCreated {
				fail("create: status %d err %v", code, err)
				return
			}
			base := ts.URL + "/v1/sessions/" + info.ID

			members := 0
			for n := 1; n <= joins; n++ {
				node := graph.NodeID((i*11 + n*5) % g.NumNodes())
				if node == src {
					continue
				}
				code, err := tryJSON(client, http.MethodPost, base+"/join", NodeRequest{Node: node}, nil)
				switch {
				case err != nil:
					fail("join %d: %v", node, err)
					return
				case code == http.StatusOK:
					members++
				case code == http.StatusConflict, code == http.StatusUnprocessableEntity:
					// already a member / unreachable under current failures
				default:
					fail("join %d: status %d", node, code)
					return
				}
			}

			// Failure burst + repair round-trip.
			victim := graph.NodeID((i*13 + 1) % g.NumNodes())
			if victim != src {
				spec := FailureSpec{Nodes: []graph.NodeID{victim}}
				code, err := tryJSON(client, http.MethodPost, base+"/fail", FailRequest{FailureSpec: spec}, nil)
				if err != nil || (code != http.StatusOK && code != http.StatusConflict) {
					fail("fail %d: status %d err %v", victim, code, err)
					return
				}
				if code == http.StatusOK {
					if code, err := tryJSON(client, http.MethodPost, base+"/repair", spec, nil); err != nil || code != http.StatusOK {
						fail("repair %d: status %d err %v", victim, code, err)
						return
					}
				}
			}

			var got struct {
				ID string `json:"id"`
				core.Snapshot
			}
			if code, err := tryJSON(client, http.MethodGet, base, nil, &got); err != nil || code != http.StatusOK {
				fail("get: status %d err %v", code, err)
				return
			}
			if got.ID != info.ID {
				fail("get: id %q, want %q", got.ID, info.ID)
				return
			}
			if len(got.Members) != members {
				fail("get: %d members, want %d", len(got.Members), members)
				return
			}

			if code, err := tryJSON(client, http.MethodDelete, base, nil, nil); err != nil || code != http.StatusNoContent {
				fail("delete: status %d err %v", code, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
