package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Default backpressure and drain bounds.
const (
	// defaultMailboxWait bounds how long a request waits for mailbox space
	// before surfacing backpressure as a 503.
	defaultMailboxWait = 10 * time.Second
	// defaultDrainTimeout bounds the shutdown sequence: actors flush their
	// mailboxes first (bounded, so this terminates), then remaining HTTP
	// connections get until the timeout to finish.
	defaultDrainTimeout = 15 * time.Second
)

// Config parameterizes a Server.
type Config struct {
	// MailboxWait bounds how long a request may block on a full session
	// mailbox; <= 0 selects the default (10s).
	MailboxWait time.Duration
	// DrainTimeout bounds graceful shutdown; <= 0 selects the default (15s).
	DrainTimeout time.Duration
}

// Server is the HTTP control plane over a Registry. Create one with New,
// mount Handler on any http.Server, or use Serve for the full lifecycle
// (listen, serve, graceful drain on context cancellation).
type Server struct {
	reg          *Registry
	mux          *http.ServeMux
	mailboxWait  time.Duration
	drainTimeout time.Duration
	draining     atomic.Bool
}

// New builds a Server over reg.
func New(reg *Registry, cfg Config) *Server {
	if cfg.MailboxWait <= 0 {
		cfg.MailboxWait = defaultMailboxWait
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = defaultDrainTimeout
	}
	s := &Server{
		reg:          reg,
		mux:          http.NewServeMux(),
		mailboxWait:  cfg.MailboxWait,
		drainTimeout: cfg.DrainTimeout,
	}
	s.routes(s.mux)
	return s
}

// Registry returns the server's session registry.
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the control-plane HTTP handler (all /v1, /healthz and
// /metrics routes).
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain runs the graceful-shutdown sequence on the registry side: flip the
// draining flag (healthz turns 503, creates are refused), then close every
// actor — each stops accepting, flushes its queued commands, publishes a
// final snapshot event, and ends its feeds. It is idempotent and also usable
// without Serve (e.g. handler-only deployments under httptest).
func (s *Server) Drain() {
	s.draining.Store(true)
	s.reg.Close()
}

// Serve accepts connections on ln until ctx is cancelled, then drains:
//
//  1. stop advertising health (healthz 503) and refuse new sessions,
//  2. flush every session actor (bounded mailboxes, so this terminates),
//     ending all SSE feeds with a final snapshot event,
//  3. shut the HTTP server down, giving in-flight requests until
//     DrainTimeout to complete.
//
// It returns nil after a clean drain, or the first listener/shutdown error.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler: s.mux,
		BaseContext: func(net.Listener) context.Context {
			// Request contexts outlive ctx deliberately: in-flight work is
			// completed during the drain, not cancelled mid-command.
			return context.Background()
		},
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Listener failed before any drain was requested.
		s.Drain()
		return err
	case <-ctx.Done():
	}

	s.Drain()
	shCtx, cancel := context.WithTimeout(context.Background(), s.drainTimeout)
	defer cancel()
	err := hs.Shutdown(shCtx)
	if serr := <-serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	return err
}

// ListenAndServe listens on addr and calls Serve. The ready callback (if
// non-nil) receives the bound address once the listener is open — tests and
// the daemon use it to learn the port when addr ends in ":0".
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready func(addr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	return s.Serve(ctx, ln)
}
