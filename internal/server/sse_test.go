package server

import (
	"context"
	"net/http"
	"testing"
	"time"

	"smrp/internal/graph"
)

// collect reads frames from an SSE channel until either want frames arrived
// or the timeout elapses.
func collect(t *testing.T, ch <-chan sseEvent, want int, timeout time.Duration) []sseEvent {
	t.Helper()
	var out []sseEvent
	deadline := time.After(timeout)
	for len(out) < want {
		select {
		case ev, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, ev)
		case <-deadline:
			t.Fatalf("timed out with %d/%d frames: %+v", len(out), want, out)
		}
	}
	return out
}

// waitFor polls cond until it holds or the deadline elapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSSEOrderMatchesActorOrder drives a scripted command sequence and
// asserts the feed delivers exactly the events the actor applied, in actor
// order, with contiguous sequence numbers.
func TestSSEOrderMatchesActorOrder(t *testing.T) {
	_, ts := testServer(t, testGraph(t))
	c := ts.Client()
	id := createSession(t, c, ts.URL, 0)
	base := ts.URL + "/v1/sessions/" + id

	ch, cancel := openSSE(t, ts.URL, id)
	defer cancel()

	// The stream must open with a baseline snapshot before any events.
	first := collect(t, ch, 1, 5*time.Second)[0]
	if first.Kind != string(EventSnapshot) || first.ID != 0 {
		t.Fatalf("first frame = %+v, want snapshot id 0", first)
	}

	// Scripted lifecycle: join 3, join 5, fail node 2 (parks 5), repair
	// node 2 (readmits 5), leave 3.
	doJSON(t, c, http.MethodPost, base+"/join", NodeRequest{Node: 3}, nil)
	doJSON(t, c, http.MethodPost, base+"/join", NodeRequest{Node: 5}, nil)
	doJSON(t, c, http.MethodPost, base+"/fail",
		FailRequest{FailureSpec: FailureSpec{Nodes: []graph.NodeID{2}}}, nil)
	doJSON(t, c, http.MethodPost, base+"/repair",
		FailureSpec{Nodes: []graph.NodeID{2}}, nil)
	doJSON(t, c, http.MethodPost, base+"/leave", NodeRequest{Node: 3}, nil)

	// join, join, fail, park, repair, readmit, leave = 7 events.
	frames := collect(t, ch, 7, 5*time.Second)
	wantKinds := []EventKind{
		EventJoin, EventJoin, EventFail, EventPark, EventRepair, EventReadmit, EventLeave,
	}
	wantNodes := []graph.NodeID{3, 5, 0, 5, 0, 5, 3}
	for i, fr := range frames {
		if fr.Kind != string(wantKinds[i]) {
			t.Fatalf("frame %d kind = %q, want %q (frames %+v)", i, fr.Kind, wantKinds[i], frames)
		}
		if fr.ID != uint64(i+1) {
			t.Fatalf("frame %d seq = %d, want %d (contiguous actor order)", i, fr.ID, i+1)
		}
		if fr.Event.Seq != fr.ID {
			t.Fatalf("frame %d: header id %d != payload seq %d", i, fr.ID, fr.Event.Seq)
		}
		if wantNodes[i] != 0 && fr.Event.Node != wantNodes[i] {
			t.Fatalf("frame %d node = %d, want %d", i, fr.Event.Node, wantNodes[i])
		}
		if fr.Event.Session != id {
			t.Fatalf("frame %d session = %q, want %q", i, fr.Event.Session, id)
		}
	}
}

// TestSSECoalescesLagIntoSnapshot simulates a slow consumer with a blocking
// writeSSE, overflows the subscriber buffer while the pump is stalled, and
// verifies the resulting lag gap is healed by exactly one coalesced
// snapshot: sequence numbers never decrease, the discontinuity is bridged by
// a snapshot frame whose snapshot reflects everything missed, and live
// events resume in actor order afterwards.
func TestSSECoalescesLagIntoSnapshot(t *testing.T) {
	g := testGraph(t)
	reg := NewRegistry(g, RegistryConfig{})
	t.Cleanup(reg.Close)
	a, err := reg.Create(CreateSessionRequest{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	sub := a.hub.subscribe()
	if sub == nil {
		t.Fatal("subscribe failed")
	}
	defer a.hub.unsubscribe(sub)

	// The pump's consumer is the test: every frame is handed over on an
	// unbuffered channel, so not reading stalls the pump exactly like a
	// slow SSE client with full socket buffers.
	frameCh := make(chan Event)
	done := make(chan struct{})
	pumpCtx, cancelPump := context.WithCancel(ctx)
	defer cancelPump()
	go func() {
		defer close(done)
		streamEvents(pumpCtx, a, sub, func(ev Event) bool {
			select {
			case frameCh <- ev:
				return true
			case <-pumpCtx.Done():
				return false
			}
		})
	}()
	next := func() Event {
		select {
		case ev := <-frameCh:
			return ev
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for frame")
			return Event{}
		}
	}

	// Baseline snapshot at seq 0 (no events yet).
	if f := next(); f.Kind != EventSnapshot || f.Seq != 0 {
		t.Fatalf("baseline = %+v, want snapshot seq 0", f)
	}

	// Park the pump deterministically: publish one event and wait until the
	// pump has taken it off the subscriber buffer — it is now blocked in
	// writeSSE holding event 1, and will consume nothing else.
	if _, err := a.Join(ctx, 3); err != nil { // seq 1
		t.Fatalf("join: %v", err)
	}
	waitFor(t, "pump to pick up event 1", func() bool { return len(sub.ch) == 0 })

	// Publish 199 more events (seq 2..200) into the stalled subscriber:
	// 2..65 fill the buffer, 66..200 are dropped.
	if err := a.Leave(ctx, 3); err != nil { // seq 2
		t.Fatalf("leave: %v", err)
	}
	for i := 0; i < 99; i++ {
		if _, err := a.Join(ctx, 3); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		if err := a.Leave(ctx, 3); err != nil {
			t.Fatalf("leave %d: %v", i, err)
		}
	}
	if got := len(sub.ch); got != subBuf {
		t.Fatalf("subscriber buffer holds %d events, want full %d", got, subBuf)
	}

	// Resume consuming: event 1 plus the buffered 2..65 arrive contiguously.
	for want := uint64(1); want <= uint64(subBuf)+1; want++ {
		f := next()
		if f.Seq != want {
			t.Fatalf("frame seq = %d, want %d (contiguous buffered prefix)", f.Seq, want)
		}
	}

	// The next live event arrives with a sequence gap (66..200 were
	// dropped), which the pump must heal with a coalesced snapshot.
	if _, err := a.Join(ctx, 3); err != nil { // seq 201
		t.Fatalf("live join: %v", err)
	}
	heal := next()
	if heal.Kind != EventSnapshot {
		t.Fatalf("gap healed by %q (seq %d), want snapshot", heal.Kind, heal.Seq)
	}
	if heal.Seq < 201 {
		t.Fatalf("coalesced snapshot seq = %d, want >= 201 (must cover the dropped events)", heal.Seq)
	}
	if len(heal.Detail) == 0 {
		t.Fatal("coalesced snapshot has no state payload")
	}
	// Events at or before the snapshot are skipped; a fresh event published
	// after the heal must flow through live.
	if err := a.Leave(ctx, 3); err != nil { // seq 202 > heal.Seq
		t.Fatalf("live leave: %v", err)
	}
	f := next()
	if f.Seq <= heal.Seq {
		t.Fatalf("post-snapshot frame seq = %d, want > %d", f.Seq, heal.Seq)
	}

	cancelPump()
	<-done
}

// TestSSEFeedEndsOnSessionDelete verifies the feed terminates (after a final
// closed event) when the session is deleted.
func TestSSEFeedEndsOnSessionDelete(t *testing.T) {
	_, ts := testServer(t, testGraph(t))
	c := ts.Client()
	id := createSession(t, c, ts.URL, 0)

	ch, cancel := openSSE(t, ts.URL, id)
	defer cancel()
	collect(t, ch, 1, 5*time.Second) // baseline snapshot

	doJSON(t, c, http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil, nil)

	var last sseEvent
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				if last.Kind != string(EventClosed) {
					t.Fatalf("stream ended on %q, want final closed event", last.Kind)
				}
				return
			}
			last = ev
		case <-deadline:
			t.Fatal("stream did not end after session delete")
		}
	}
}
