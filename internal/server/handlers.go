package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
)

// routes wires the control-plane endpoints onto mux. Patterns use the Go
// 1.22 method+wildcard router, so no third-party mux is needed.
func (s *Server) routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/sessions", s.createSession)
	mux.HandleFunc("GET /v1/sessions", s.listSessions)
	mux.HandleFunc("GET /v1/sessions/{id}", s.getSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.deleteSession)
	mux.HandleFunc("POST /v1/sessions/{id}/join", s.memberOp((*Actor).Join))
	mux.HandleFunc("POST /v1/sessions/{id}/leave", s.memberOp(
		func(a *Actor, ctx context.Context, n graph.NodeID) (*core.JoinResult, error) {
			return nil, a.Leave(ctx, n)
		}))
	mux.HandleFunc("POST /v1/sessions/{id}/fail", s.postFail)
	mux.HandleFunc("POST /v1/sessions/{id}/repair", s.postRepair)
	mux.HandleFunc("POST /v1/sessions/{id}/reshape", s.postReshape)
	mux.HandleFunc("GET /v1/sessions/{id}/stats", s.getStats)
	mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /metrics", s.metrics)
}

// writeJSON renders v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if v != nil {
		_ = json.NewEncoder(w).Encode(v)
	}
}

// writeErr maps err onto the API's stable (status, code) pairs and renders
// an ErrorWire body.
func writeErr(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, "internal"
	switch {
	case errors.Is(err, ErrUnknownSession):
		status, code = http.StatusNotFound, "unknown_session"
	case errors.Is(err, ErrSessionClosed):
		status, code = http.StatusServiceUnavailable, "session_closed"
	case errors.Is(err, ErrMailboxFull):
		status, code = http.StatusServiceUnavailable, "mailbox_full"
	case errors.Is(err, core.ErrAlreadyMember):
		status, code = http.StatusConflict, "already_member"
	case errors.Is(err, core.ErrPartitioned):
		// The member is alive but cut off: it parked and will be readmitted
		// automatically. Conflict (not failure): the request was understood
		// and the degraded-member state machine took over.
		status, code = http.StatusConflict, "partitioned"
	case errors.Is(err, failure.ErrMemberFailed):
		status, code = http.StatusConflict, "member_failed"
	case errors.Is(err, failure.ErrSourceFailed):
		status, code = http.StatusConflict, "source_failed"
	case errors.Is(err, core.ErrNotMember):
		status, code = http.StatusNotFound, "not_member"
	case errors.Is(err, core.ErrUnknownNode):
		status, code = http.StatusBadRequest, "unknown_node"
	case errors.Is(err, core.ErrNoPath):
		// Includes ErrNoCandidate (it wraps ErrNoPath).
		status, code = http.StatusUnprocessableEntity, "no_path"
	case errors.Is(err, core.ErrBadConfig):
		status, code = http.StatusBadRequest, "bad_config"
	case errors.Is(err, failure.ErrBadSchedule):
		status, code = http.StatusBadRequest, "bad_failures"
	case errors.Is(err, errBadRequest):
		status, code = http.StatusBadRequest, "bad_request"
	}
	writeJSON(w, status, ErrorWire{Error: err.Error(), Code: code})
}

// errBadRequest tags body-decode and validation failures for writeErr.
var errBadRequest = errors.New("bad request")

// decodeBody strictly decodes the request body into v.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	return nil
}

// opCtx bounds how long a request may wait for mailbox space: backpressure
// must surface as a 503 at the edge, not as an unbounded queue of blocked
// handlers.
func (s *Server) opCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.mailboxWait)
}

// actorFor resolves the {id} path value, handling draining and 404.
func (s *Server) actorFor(w http.ResponseWriter, r *http.Request) *Actor {
	a, err := s.reg.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return nil
	}
	return a
}

func (s *Server) createSession(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, fmt.Errorf("create: %w", ErrSessionClosed))
		return
	}
	var req CreateSessionRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	a, err := s.reg.Create(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/sessions/"+a.ID)
	writeJSON(w, http.StatusCreated, s.infoOf(a))
}

// infoOf samples an actor's lock-free gauges into a SessionInfo. Member and
// parked counts are the actor's published gauges (as of its last handled
// command) — no mailbox round trip per session, so listing N sessions never
// queues behind their traffic; GET /v1/sessions/{id} gives the
// snapshot-consistent view.
func (s *Server) infoOf(a *Actor) SessionInfo {
	return SessionInfo{
		ID:           a.ID,
		Source:       a.Source,
		Members:      a.Members(),
		Parked:       a.Parked(),
		MailboxDepth: a.MailboxDepth(),
		EventSeq:     a.EventSeq(),
	}
}

func (s *Server) listSessions(w http.ResponseWriter, r *http.Request) {
	actors := s.reg.List()
	out := make([]SessionInfo, 0, len(actors))
	for _, a := range actors {
		out = append(out, s.infoOf(a))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) getSession(w http.ResponseWriter, r *http.Request) {
	a := s.actorFor(w, r)
	if a == nil {
		return
	}
	ctx, cancel := s.opCtx(r)
	defer cancel()
	sr, err := a.Snapshot(ctx)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ID string `json:"id"`
		core.Snapshot
		EventSeq uint64 `json:"event_seq"`
	}{ID: a.ID, Snapshot: sr.Snap, EventSeq: sr.AsOfSeq})
}

func (s *Server) deleteSession(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Delete(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// memberOp builds a join/leave handler around one actor member operation.
func (s *Server) memberOp(op func(*Actor, context.Context, graph.NodeID) (*core.JoinResult, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		a := s.actorFor(w, r)
		if a == nil {
			return
		}
		var req NodeRequest
		if err := decodeBody(r, &req); err != nil {
			writeErr(w, err)
			return
		}
		ctx, cancel := s.opCtx(r)
		defer cancel()
		res, err := op(a, ctx, req.Node)
		if err != nil {
			writeErr(w, err)
			return
		}
		if res == nil { // leave: no payload
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, joinWire(res))
	}
}

func (s *Server) postFail(w http.ResponseWriter, r *http.Request) {
	a := s.actorFor(w, r)
	if a == nil {
		return
	}
	var req FailRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	fs, err := req.failures()
	if err != nil {
		writeErr(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	recover := req.Recover == nil || *req.Recover
	ctx, cancel := s.opCtx(r)
	defer cancel()
	rep, err := a.Fail(ctx, fs, recover)
	if err != nil {
		writeErr(w, err)
		return
	}
	if !recover {
		writeJSON(w, http.StatusAccepted, failuresWire(fs))
		return
	}
	writeJSON(w, http.StatusOK, healWire(rep))
}

func (s *Server) postRepair(w http.ResponseWriter, r *http.Request) {
	a := s.actorFor(w, r)
	if a == nil {
		return
	}
	var req FailureSpec
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	fs, err := req.failures()
	if err != nil {
		writeErr(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	ctx, cancel := s.opCtx(r)
	defer cancel()
	rep, err := a.Repair(ctx, fs)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, repairWire(rep))
}

func (s *Server) postReshape(w http.ResponseWriter, r *http.Request) {
	a := s.actorFor(w, r)
	if a == nil {
		return
	}
	ctx, cancel := s.opCtx(r)
	defer cancel()
	moved, err := a.Reshape(ctx)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Reshaped []graph.NodeID `json:"reshaped"`
	}{Reshaped: moved})
}

func (s *Server) getStats(w http.ResponseWriter, r *http.Request) {
	a := s.actorFor(w, r)
	if a == nil {
		return
	}
	ctx, cancel := s.opCtx(r)
	defer cancel()
	st, err := a.Stats(ctx)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, StatsWire{
		ID:           a.ID,
		Members:      st.Members,
		Parked:       st.Parked,
		MailboxDepth: st.MailboxDepth,
		EventSeq:     st.EventSeq,
		Stats:        st.Stats,
	})
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining", "sessions": s.reg.Len(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "sessions": s.reg.Len(),
	})
}

// metrics renders a Prometheus-style text exposition from lock-free gauges
// only — it never round-trips a mailbox, so a scrape can neither stall on a
// busy actor nor add load to the serving path.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	actors := s.reg.List()
	var handled, events uint64
	var depth, subs, members, parked int
	var standing int64
	for _, a := range actors {
		handled += a.Handled()
		events += a.EventSeq()
		depth += a.MailboxDepth()
		subs += a.Subscribers()
		members += a.Members()
		parked += a.Parked()
		standing += a.StandingBytes()
	}
	draining := 0
	if s.draining.Load() {
		draining = 1
	}
	fmt.Fprintf(w, "smrp_draining %d\n", draining)
	fmt.Fprintf(w, "smrp_sessions %d\n", len(actors))
	fmt.Fprintf(w, "smrp_commands_handled_total %d\n", handled)
	fmt.Fprintf(w, "smrp_events_published_total %d\n", events)
	fmt.Fprintf(w, "smrp_mailbox_depth_sum %d\n", depth)
	fmt.Fprintf(w, "smrp_event_subscribers %d\n", subs)
	fmt.Fprintf(w, "smrp_members %d\n", members)
	fmt.Fprintf(w, "smrp_parked %d\n", parked)
	fmt.Fprintf(w, "smrp_session_standing_bytes %d\n", standing)
	fmt.Fprintf(w, "smrp_joins_total %d\n", joinsTotal.Load())
	// How large the actor mailbox's coalesced join batches actually get: one
	// observation per dispatch window (all-ones under light load; the mass
	// moves right when flash crowds back the mailbox up).
	joinBatchHist.write(w, "smrp_actor_join_batch_size")

	spf := graph.SPFCounters()
	fmt.Fprintf(w, "smrp_spf_full_runs_total %d\n", spf.FullRuns)
	fmt.Fprintf(w, "smrp_spf_delta_runs_total %d\n", spf.DeltaRuns)
	fmt.Fprintf(w, "smrp_spf_nodes_settled_total %d\n", spf.NodesSettled)
	fmt.Fprintf(w, "smrp_spf_cache_hits_total %d\n", spf.CacheHits)
	fmt.Fprintf(w, "smrp_spf_cache_misses_total %d\n", spf.CacheMisses)
	fmt.Fprintf(w, "smrp_spf_cache_entries %d\n", s.reg.Cache().Len())

	for _, a := range actors {
		fmt.Fprintf(w, "smrp_session_mailbox_depth{session=%q} %d\n", a.ID, a.MailboxDepth())
		fmt.Fprintf(w, "smrp_session_events_total{session=%q} %d\n", a.ID, a.EventSeq())
		fmt.Fprintf(w, "smrp_session_commands_total{session=%q} %d\n", a.ID, a.Handled())
	}
}

// handleEvents streams the session's event feed as Server-Sent Events.
//
// The stream always opens with an EventSnapshot giving the subscriber a
// consistent baseline, then replays events with strictly increasing Seq in
// actor order. A consumer too slow for its 64-event buffer loses events —
// never blocking the actor — and the resulting Seq gap is healed by
// coalescing: the writer fetches a fresh snapshot (serialized through the
// mailbox, so it reflects every skipped event) and resumes the live stream
// past it.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	a := s.actorFor(w, r)
	if a == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, errors.New("streaming unsupported"))
		return
	}
	sub := a.hub.subscribe()
	if sub == nil {
		writeErr(w, fmt.Errorf("events: %w", ErrSessionClosed))
		return
	}
	defer a.hub.unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	writeSSE := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	streamEvents(r.Context(), a, sub, writeSSE)
}

// / streamEvents is the feed pump shared by the SSE handler and its tests:
// emit a baseline snapshot, then replay live events in actor order, healing
// any lag gap (dropped events) with a fresh coalesced snapshot. writeSSE
// returns false to stop (client gone, write error).
func streamEvents(ctx context.Context, a *Actor, sub *subscriber, writeSSE func(Event) bool) {
	snapshotEvent := func() (uint64, bool) {
		sr, err := a.Snapshot(ctx)
		if err != nil {
			return 0, false
		}
		ok := writeSSE(Event{
			Seq:     sr.AsOfSeq,
			Session: a.ID,
			Kind:    EventSnapshot,
			Detail:  marshalDetail(sr.Snap),
		})
		return sr.AsOfSeq, ok
	}

	last, ok := snapshotEvent()
	if !ok {
		return
	}
	for {
		select {
		case ev, open := <-sub.ch:
			if !open {
				return // session closed: feed ends after the final events
			}
			if ev.Seq <= last {
				continue // already covered by a snapshot
			}
			if ev.Seq != last+1 {
				// Lag gap: coalesce everything missed into one snapshot.
				var snapOK bool
				if last, snapOK = snapshotEvent(); !snapOK {
					return
				}
				if ev.Seq <= last {
					continue
				}
			}
			if !writeSSE(ev) {
				return
			}
			last = ev.Seq
		case <-ctx.Done():
			return
		}
	}
}
