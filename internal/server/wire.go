package server

import (
	"fmt"

	"smrp/internal/core"
	"smrp/internal/failure"
	"smrp/internal/graph"
)

// Wire types: the JSON shapes of the HTTP/JSON control API and the SSE event
// payloads. They are deliberately decoupled from the core structs so the
// externally visible contract can stay stable while internals evolve.

// LinkWire names one undirected link by its endpoints.
type LinkWire struct {
	U graph.NodeID `json:"u"`
	V graph.NodeID `json:"v"`
}

// FailureSpec selects components for fail/repair requests.
type FailureSpec struct {
	// Links lists undirected links by endpoint pair.
	Links []LinkWire `json:"links,omitempty"`
	// Nodes lists failed/repaired routers.
	Nodes []graph.NodeID `json:"nodes,omitempty"`
}

// failures converts the spec into the core failure list.
func (s FailureSpec) failures() ([]failure.Failure, error) {
	fs := make([]failure.Failure, 0, len(s.Links)+len(s.Nodes))
	for _, l := range s.Links {
		if l.U == l.V {
			return nil, fmt.Errorf("link (%d,%d): self-loop", l.U, l.V)
		}
		fs = append(fs, failure.LinkDown(l.U, l.V))
	}
	for _, n := range s.Nodes {
		fs = append(fs, failure.NodeDown(n))
	}
	if len(fs) == 0 {
		return nil, fmt.Errorf("empty failure set")
	}
	return fs, nil
}

// CreateSessionRequest is the POST /v1/sessions body. Omitted tuning fields
// inherit the server's default config (the paper's defaults).
type CreateSessionRequest struct {
	Source graph.NodeID `json:"source"`
	// DThresh overrides the delay-bound knob when non-nil.
	DThresh *float64 `json:"dthresh,omitempty"`
	// ReshapeDelta overrides the Condition-I trigger threshold when non-nil.
	ReshapeDelta *int `json:"reshape_delta,omitempty"`
	// PeriodicReshape overrides Condition-II availability when non-nil.
	PeriodicReshape *bool `json:"periodic_reshape,omitempty"`
}

// SessionInfo describes one session in list/create responses.
type SessionInfo struct {
	ID      string       `json:"id"`
	Source  graph.NodeID `json:"source"`
	Members int          `json:"members"`
	Parked  int          `json:"parked"`
	// MailboxDepth is the number of queued commands at sampling time.
	MailboxDepth int `json:"mailbox_depth"`
	// EventSeq is the latest published event sequence number.
	EventSeq uint64 `json:"event_seq"`
}

// NodeRequest is the join/leave body.
type NodeRequest struct {
	Node graph.NodeID `json:"node"`
}

// FailRequest is the fail body: a failure spec plus the recovery switch.
// Recover defaults to true (fail-and-heal, the SMRP lifecycle); set it to
// false to only accumulate the failures in the session mask, protocol-layer
// style, and reconcile later.
type FailRequest struct {
	FailureSpec
	Recover *bool `json:"recover,omitempty"`
}

// JoinWire is the join response and EventJoin detail.
type JoinWire struct {
	Member      graph.NodeID   `json:"member"`
	Merger      graph.NodeID   `json:"merger"`
	Connection  []graph.NodeID `json:"connection"`
	Delay       float64        `json:"delay"`
	SPFDelay    float64        `json:"spf_delay"`
	MergerSHR   int            `json:"merger_shr"`
	WithinBound bool           `json:"within_bound"`
	Reshaped    []graph.NodeID `json:"reshaped,omitempty"`
}

func joinWire(r *core.JoinResult) *JoinWire {
	if r == nil {
		return nil
	}
	return &JoinWire{
		Member:      r.Member,
		Merger:      r.Merger,
		Connection:  r.Connection,
		Delay:       r.Delay,
		SPFDelay:    r.SPFDelay,
		MergerSHR:   r.MergerSHR,
		WithinBound: r.WithinBound,
		Reshaped:    r.Reshaped,
	}
}

// HealWire is the fail (recover=true) response and EventFail detail.
type HealWire struct {
	Failures     []string                    `json:"failures"`
	Disconnected []graph.NodeID              `json:"disconnected"`
	Recovered    map[graph.NodeID]float64    `json:"recovered,omitempty"`
	Detours      map[graph.NodeID]graph.Path `json:"detours,omitempty"`
	Unrecovered  []graph.NodeID              `json:"unrecovered,omitempty"`
	Readmitted   []graph.NodeID              `json:"readmitted,omitempty"`
	Pruned       []graph.NodeID              `json:"pruned,omitempty"`
}

func healWire(r *core.HealReport) *HealWire {
	if r == nil {
		return nil
	}
	w := &HealWire{
		Disconnected: r.Disconnected,
		Recovered:    r.RecoveryDistance,
		Detours:      r.Detours,
		Unrecovered:  r.Unrecovered,
		Readmitted:   r.Readmitted,
		Pruned:       r.Pruned,
	}
	for _, f := range r.Failures {
		w.Failures = append(w.Failures, f.String())
	}
	return w
}

// RepairWire is the repair response and EventRepair detail.
type RepairWire struct {
	Repaired    []string       `json:"repaired"`
	Readmitted  []graph.NodeID `json:"readmitted,omitempty"`
	StillParked []graph.NodeID `json:"still_parked,omitempty"`
}

func repairWire(r *core.RepairReport) *RepairWire {
	if r == nil {
		return nil
	}
	w := &RepairWire{
		Readmitted:  r.Readmitted,
		StillParked: r.StillParked,
	}
	for _, f := range r.Repaired {
		w.Repaired = append(w.Repaired, f.String())
	}
	return w
}

// FailuresWire is the EventFail detail for recover=false (mask-only) fails.
type FailuresWire struct {
	Applied []string `json:"applied"`
	// Recovered is always false here: recovery was deferred.
	Recovered bool `json:"recovered"`
}

func failuresWire(fs []failure.Failure) *FailuresWire {
	w := &FailuresWire{}
	for _, f := range fs {
		w.Applied = append(w.Applied, f.String())
	}
	return w
}

// StatsWire is the per-session stats response.
type StatsWire struct {
	ID           string     `json:"id"`
	Members      int        `json:"members"`
	Parked       int        `json:"parked"`
	MailboxDepth int        `json:"mailbox_depth"`
	EventSeq     uint64     `json:"event_seq"`
	Stats        core.Stats `json:"stats"`
}

// ErrorWire is the body of every non-2xx response.
type ErrorWire struct {
	Error string `json:"error"`
	// Code is a stable, machine-matchable slug (e.g. "already_member",
	// "partitioned", "unknown_session").
	Code string `json:"code"`
}
