package server

import (
	"fmt"
	"strings"
	"testing"

	"smrp/internal/core"
	"smrp/internal/graph"
)

// preload builds an actor whose goroutine has not started and stuffs its
// mailbox with the given commands, returning the per-command reply channels.
// Starting run() afterwards makes coalescing deterministic: the actor wakes
// to a backed-up mailbox, exactly the flash-crowd shape.
func preload(t *testing.T, sess *core.Session, cmds []*command) (*Actor, []chan cmdResult) {
	t.Helper()
	a := buildActor("s-test", sess, len(cmds)+1)
	replies := make([]chan cmdResult, len(cmds))
	for i, c := range cmds {
		c.reply = make(chan cmdResult, 1)
		replies[i] = c.reply
		a.mbox <- c
	}
	return a, replies
}

// TestActorCoalescesMailboxJoins is the server half of the batched-join
// contract: joins queued consecutively in the mailbox are admitted through
// one core.JoinBatch, a non-join command closes the window in its queue
// position, and the replies, final tree, and event order are identical to
// one-at-a-time handling.
func TestActorCoalescesMailboxJoins(t *testing.T) {
	g := testGraph(t)
	sess, err := core.NewSession(g, 0, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	joinsBefore := joinsTotal.Load()
	histCountBefore := joinBatchHist.count.Load()
	histSumBefore := joinBatchHist.sum.Load()

	// Four queued joins, then a leave (closes the coalescing window), then
	// one more join that must run solo after the leave.
	cmds := []*command{
		{kind: cmdJoin, node: 1},
		{kind: cmdJoin, node: 2},
		{kind: cmdJoin, node: 3},
		{kind: cmdJoin, node: 4},
		{kind: cmdLeave, node: 2},
		{kind: cmdJoin, node: 5},
	}
	a, replies := preload(t, sess, cmds)
	sub := a.hub.subscribe()
	go a.run()
	defer func() {
		a.Close()
		<-a.Drained()
	}()

	for i, ch := range replies {
		r := <-ch
		if r.err != nil {
			t.Fatalf("command %d (%v node %d): %v", i, cmds[i].kind, cmds[i].node, r.err)
		}
	}

	// The first four joins went through the batched path, the trailing one
	// through the plain path — visible in the session's work counters.
	if got := sess.Stats().BatchJoins; got != 4 {
		t.Fatalf("BatchJoins = %d, want 4 (coalesced window)", got)
	}
	if got := sess.Stats().Joins; got != 5 {
		t.Fatalf("Joins = %d, want 5", got)
	}

	// Event feed: same kinds, same order, strictly increasing Seq — exactly
	// what sequential handling would publish.
	wantKinds := []EventKind{EventJoin, EventJoin, EventJoin, EventJoin, EventLeave, EventJoin}
	var lastSeq uint64
	for i, want := range wantKinds {
		ev := <-sub.ch
		if ev.Kind != want {
			t.Fatalf("event %d: kind %q, want %q", i, ev.Kind, want)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("event %d: seq %d not increasing past %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}

	// The final tree matches a sequential twin bit for bit.
	twin, err := core.NewSession(testGraph(t), 0, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []graph.NodeID{1, 2, 3, 4} {
		if _, err := twin.Join(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := twin.Leave(2); err != nil {
		t.Fatal(err)
	}
	if _, err := twin.Join(5); err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(sess.Tree().Members()), fmt.Sprint(twin.Tree().Members()); got != want {
		t.Fatalf("members %s, want %s", got, want)
	}
	for _, n := range twin.Tree().Nodes() {
		tp, _ := twin.Tree().Parent(n)
		ap, _ := sess.Tree().Parent(n)
		if tp != ap {
			t.Fatalf("node %d parent %d, want %d", n, ap, tp)
		}
	}

	// Instrumentation: 5 successful joins; two dispatch windows of sizes 4
	// and 1 observed by the batch-size histogram.
	if got := joinsTotal.Load() - joinsBefore; got != 5 {
		t.Fatalf("smrp_joins_total advanced by %d, want 5", got)
	}
	if got := joinBatchHist.count.Load() - histCountBefore; got != 2 {
		t.Fatalf("batch histogram count advanced by %d, want 2", got)
	}
	if got := joinBatchHist.sum.Load() - histSumBefore; got != 5 {
		t.Fatalf("batch histogram sum advanced by %d, want 5", got)
	}
}

// TestActorCoalescedJoinErrors pins per-joiner error behavior inside a
// coalesced window: a bad joiner gets its own error reply without aborting
// the rest of the batch.
func TestActorCoalescedJoinErrors(t *testing.T) {
	g := testGraph(t)
	sess, err := core.NewSession(g, 0, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Node 6 is isolated: its join must fail with no-path while 1 and 3 land.
	cmds := []*command{
		{kind: cmdJoin, node: 1},
		{kind: cmdJoin, node: 6},
		{kind: cmdJoin, node: 3},
	}
	a, replies := preload(t, sess, cmds)
	go a.run()
	defer func() {
		a.Close()
		<-a.Drained()
	}()

	if r := <-replies[0]; r.err != nil {
		t.Fatalf("join 1: %v", r.err)
	}
	if r := <-replies[1]; r.err == nil {
		t.Fatal("join 6 (isolated) succeeded, want error")
	}
	if r := <-replies[2]; r.err != nil {
		t.Fatalf("join 3: %v", r.err)
	}
	if !sess.Tree().IsMember(1) || !sess.Tree().IsMember(3) || sess.Tree().IsMember(6) {
		t.Fatalf("membership wrong after mixed batch: %v", sess.Tree().Members())
	}
}

// TestMetricsExposesJoinInstrumentation checks the /metrics exposition for
// the join counter and the batch-size histogram series.
func TestMetricsExposesJoinInstrumentation(t *testing.T) {
	_, ts := testServer(t, testGraph(t))
	client := ts.Client()

	var created struct {
		ID string `json:"id"`
	}
	if code, err := tryJSON(client, "POST", ts.URL+"/v1/sessions",
		map[string]any{"source": 0}, &created); err != nil || code != 201 {
		t.Fatalf("create session: code=%d err=%v", code, err)
	}
	for _, n := range []int{1, 2, 3} {
		if code, err := tryJSON(client, "POST",
			ts.URL+"/v1/sessions/"+created.ID+"/join",
			map[string]any{"node": n}, nil); err != nil || code != 200 {
			t.Fatalf("join %d: code=%d err=%v", n, code, err)
		}
	}

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	for _, want := range []string{
		"smrp_joins_total ",
		`smrp_actor_join_batch_size_bucket{le="1"} `,
		`smrp_actor_join_batch_size_bucket{le="+Inf"} `,
		"smrp_actor_join_batch_size_sum ",
		"smrp_actor_join_batch_size_count ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	// The three HTTP joins above all succeeded; the process-wide counter
	// must be at least that far along.
	var joins uint64
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "smrp_joins_total ") {
			fmt.Sscanf(line, "smrp_joins_total %d", &joins)
		}
	}
	if joins < 3 {
		t.Fatalf("smrp_joins_total = %d, want >= 3", joins)
	}
}
