package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"smrp/internal/graph"
)

// TestSessionLifecycleHTTP drives one session through the full HTTP
// lifecycle on the fixed test topology: create, join, duplicate join,
// leave, fail (partitioning a member), repair (readmitting it), stats,
// delete.
func TestSessionLifecycleHTTP(t *testing.T) {
	_, ts := testServer(t, testGraph(t))
	c := ts.Client()

	id := createSession(t, c, ts.URL, 0)
	if !strings.HasPrefix(id, "s7-") {
		t.Fatalf("ID %q not generation-stamped with s7-", id)
	}
	base := ts.URL + "/v1/sessions/" + id

	// Join members 3 and 5.
	var jr JoinWire
	if code := doJSON(t, c, http.MethodPost, base+"/join", NodeRequest{Node: 3}, &jr); code != http.StatusOK {
		t.Fatalf("join 3: status %d", code)
	}
	if jr.Member != 3 || len(jr.Connection) == 0 {
		t.Fatalf("join 3: bad result %+v", jr)
	}
	if code := doJSON(t, c, http.MethodPost, base+"/join", NodeRequest{Node: 5}, nil); code != http.StatusOK {
		t.Fatalf("join 5: status %d", code)
	}

	// Duplicate join conflicts.
	var ew ErrorWire
	if code := doJSON(t, c, http.MethodPost, base+"/join", NodeRequest{Node: 3}, &ew); code != http.StatusConflict {
		t.Fatalf("duplicate join: status %d", code)
	}
	if ew.Code != "already_member" {
		t.Fatalf("duplicate join: code %q", ew.Code)
	}

	// Fail node 2: member 5 (whose only link is to node 2) parks.
	var heal HealWire
	if code := doJSON(t, c, http.MethodPost, base+"/fail",
		FailRequest{FailureSpec: FailureSpec{Nodes: []graph.NodeID{2}}}, &heal); code != http.StatusOK {
		t.Fatalf("fail node 2: status %d", code)
	}
	if len(heal.Unrecovered) != 1 || heal.Unrecovered[0] != 5 {
		t.Fatalf("fail node 2: want unrecovered [5], got %+v", heal)
	}

	// The session view shows 5 parked and the net degraded.
	var got struct {
		ID       string         `json:"id"`
		Members  []MemberJSON   `json:"members"`
		Parked   []graph.NodeID `json:"parked"`
		Degraded bool           `json:"degraded"`
	}
	if code := doJSON(t, c, http.MethodGet, base, nil, &got); code != http.StatusOK {
		t.Fatalf("get session: status %d", code)
	}
	if got.ID != id || !got.Degraded || len(got.Parked) != 1 || got.Parked[0] != 5 {
		t.Fatalf("get session: %+v", got)
	}

	// Joining the parked member again reports partitioned.
	if code := doJSON(t, c, http.MethodPost, base+"/join", NodeRequest{Node: 5}, &ew); code != http.StatusConflict || ew.Code != "partitioned" {
		t.Fatalf("join parked: status %d code %q", code, ew.Code)
	}

	// Repair node 2: member 5 is readmitted automatically.
	var rw RepairWire
	if code := doJSON(t, c, http.MethodPost, base+"/repair",
		FailureSpec{Nodes: []graph.NodeID{2}}, &rw); code != http.StatusOK {
		t.Fatalf("repair: status %d", code)
	}
	if len(rw.Readmitted) != 1 || rw.Readmitted[0] != 5 {
		t.Fatalf("repair: want readmitted [5], got %+v", rw)
	}

	// Stats reflect the work: 2 joins + 1 readmission-join.
	var st StatsWire
	if code := doJSON(t, c, http.MethodGet, base+"/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Members != 2 || st.Parked != 0 || st.Stats.Joins < 3 || st.Stats.Parks < 1 || st.Stats.Readmissions < 1 {
		t.Fatalf("stats: %+v", st)
	}

	// Leave member 3.
	if code := doJSON(t, c, http.MethodPost, base+"/leave", NodeRequest{Node: 3}, nil); code != http.StatusNoContent {
		t.Fatalf("leave 3: status %d", code)
	}

	// Delete the session; subsequent lookups 404.
	if code := doJSON(t, c, http.MethodDelete, base, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if code := doJSON(t, c, http.MethodGet, base, nil, &ew); code != http.StatusNotFound || ew.Code != "unknown_session" {
		t.Fatalf("get deleted: status %d code %q", code, ew.Code)
	}
	if code := doJSON(t, c, http.MethodDelete, base, nil, &ew); code != http.StatusNotFound {
		t.Fatalf("double delete: status %d", code)
	}
}

// MemberJSON mirrors core.MemberState's wire shape for test decoding.
type MemberJSON struct {
	Node  graph.NodeID `json:"node"`
	Delay float64      `json:"delay"`
	SHR   int          `json:"shr"`
}

// TestHTTPErrorPaths table-tests every endpoint's failure surface: unknown
// sessions, malformed bodies, invalid nodes, conflicting operations.
func TestHTTPErrorPaths(t *testing.T) {
	_, ts := testServer(t, testGraph(t))
	c := ts.Client()
	id := createSession(t, c, ts.URL, 0)
	base := ts.URL + "/v1/sessions/" + id
	if code := doJSON(t, c, http.MethodPost, base+"/join", NodeRequest{Node: 3}, nil); code != http.StatusOK {
		t.Fatalf("setup join: status %d", code)
	}

	cases := []struct {
		name     string
		method   string
		url      string
		body     any
		raw      string // non-JSON body when set
		wantCode int
		wantSlug string
	}{
		{"create bad source", http.MethodPost, ts.URL + "/v1/sessions",
			CreateSessionRequest{Source: 99}, "", http.StatusBadRequest, "unknown_node"},
		{"create invalid dthresh", http.MethodPost, ts.URL + "/v1/sessions",
			map[string]any{"source": 0, "dthresh": -1}, "", http.StatusBadRequest, "bad_config"},
		{"create unknown field", http.MethodPost, ts.URL + "/v1/sessions",
			map[string]any{"source": 0, "bogus": 1}, "", http.StatusBadRequest, "bad_request"},
		{"create malformed JSON", http.MethodPost, ts.URL + "/v1/sessions",
			nil, "{not json", http.StatusBadRequest, "bad_request"},
		{"get unknown session", http.MethodGet, ts.URL + "/v1/sessions/s7-999",
			nil, "", http.StatusNotFound, "unknown_session"},
		{"join unknown session", http.MethodPost, ts.URL + "/v1/sessions/nope/join",
			NodeRequest{Node: 3}, "", http.StatusNotFound, "unknown_session"},
		{"join node out of range", http.MethodPost, base + "/join",
			NodeRequest{Node: 99}, "", http.StatusBadRequest, "unknown_node"},
		{"join unreachable node", http.MethodPost, base + "/join",
			NodeRequest{Node: 6}, "", http.StatusUnprocessableEntity, "no_path"},
		{"join malformed body", http.MethodPost, base + "/join",
			nil, "{", http.StatusBadRequest, "bad_request"},
		{"leave non-member", http.MethodPost, base + "/leave",
			NodeRequest{Node: 4}, "", http.StatusNotFound, "not_member"},
		{"fail empty set", http.MethodPost, base + "/fail",
			FailRequest{}, "", http.StatusBadRequest, "bad_request"},
		{"fail self-loop link", http.MethodPost, base + "/fail",
			FailRequest{FailureSpec: FailureSpec{Links: []LinkWire{{U: 1, V: 1}}}}, "",
			http.StatusBadRequest, "bad_request"},
		{"fail the source", http.MethodPost, base + "/fail",
			FailRequest{FailureSpec: FailureSpec{Nodes: []graph.NodeID{0}}}, "",
			http.StatusConflict, "source_failed"},
		{"repair empty set", http.MethodPost, base + "/repair",
			FailureSpec{}, "", http.StatusBadRequest, "bad_request"},
		{"stats unknown session", http.MethodGet, ts.URL + "/v1/sessions/gone/stats",
			nil, "", http.StatusNotFound, "unknown_session"},
		{"events unknown session", http.MethodGet, ts.URL + "/v1/sessions/gone/events",
			nil, "", http.StatusNotFound, "unknown_session"},
		{"delete unknown session", http.MethodDelete, ts.URL + "/v1/sessions/gone",
			nil, "", http.StatusNotFound, "unknown_session"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ew ErrorWire
			var code int
			if tc.raw != "" {
				req, err := http.NewRequest(tc.method, tc.url, strings.NewReader(tc.raw))
				if err != nil {
					t.Fatal(err)
				}
				resp, err := c.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				code = resp.StatusCode
				var tmp ErrorWire
				if err := json.NewDecoder(resp.Body).Decode(&tmp); err == nil {
					ew = tmp
				}
			} else {
				code = doJSON(t, c, tc.method, tc.url, tc.body, &ew)
			}
			if code != tc.wantCode {
				t.Fatalf("status = %d, want %d (body code %q)", code, tc.wantCode, ew.Code)
			}
			if tc.wantSlug != "" && ew.Code != tc.wantSlug {
				t.Fatalf("code = %q, want %q", ew.Code, tc.wantSlug)
			}
		})
	}

	// Wrong method on a known route is a router-level 405.
	resp, err := c.Get(base + "/join")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on join: status %d, want 405", resp.StatusCode)
	}
}

// TestHealthAndMetrics checks the operational endpoints: healthz flips to
// 503 on drain, and metrics exposes session and SPF counters.
func TestHealthAndMetrics(t *testing.T) {
	srv, ts := testServer(t, testGraph(t))
	c := ts.Client()
	id := createSession(t, c, ts.URL, 0)
	doJSON(t, c, http.MethodPost, ts.URL+"/v1/sessions/"+id+"/join", NodeRequest{Node: 3}, nil)

	var hz struct {
		Status   string `json:"status"`
		Sessions int    `json:"sessions"`
	}
	if code := doJSON(t, c, http.MethodGet, ts.URL+"/healthz", nil, &hz); code != http.StatusOK || hz.Status != "ok" || hz.Sessions != 1 {
		t.Fatalf("healthz: %d %+v", code, hz)
	}

	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	for _, want := range []string{
		"smrp_sessions 1",
		"smrp_spf_cache_misses_total",
		"smrp_session_mailbox_depth{session=\"" + id + "\"}",
		"smrp_draining 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
	// The standing-bytes gauge is a fleet sum of deterministic per-session
	// byte accounting; with one live session it must be present and nonzero.
	if strings.Contains(body, "smrp_session_standing_bytes 0\n") ||
		!strings.Contains(body, "smrp_session_standing_bytes ") {
		t.Errorf("metrics standing-bytes gauge missing or zero in:\n%s", body)
	}

	srv.Drain()
	if code := doJSON(t, c, http.MethodGet, ts.URL+"/healthz", nil, &hz); code != http.StatusServiceUnavailable || hz.Status != "draining" {
		t.Fatalf("healthz during drain: %d %+v", code, hz)
	}
	// New sessions are refused while draining.
	var ew ErrorWire
	if code := doJSON(t, c, http.MethodPost, ts.URL+"/v1/sessions",
		CreateSessionRequest{Source: 0}, &ew); code != http.StatusServiceUnavailable || ew.Code != "session_closed" {
		t.Fatalf("create during drain: %d %q", code, ew.Code)
	}
}

// TestListSessions exercises the inventory endpoint across creates and
// deletes, including ID-never-reused semantics.
func TestListSessions(t *testing.T) {
	_, ts := testServer(t, testGraph(t))
	c := ts.Client()

	id1 := createSession(t, c, ts.URL, 0)
	id2 := createSession(t, c, ts.URL, 1)
	if id1 == id2 {
		t.Fatalf("duplicate session IDs: %q", id1)
	}
	var list []SessionInfo
	if code := doJSON(t, c, http.MethodGet, ts.URL+"/v1/sessions", nil, &list); code != http.StatusOK || len(list) != 2 {
		t.Fatalf("list: %d, %d entries", code, len(list))
	}
	// The list view reports the actors' published membership gauges: joins
	// already acknowledged must show up without a per-session mailbox trip.
	doJSON(t, c, http.MethodPost, ts.URL+"/v1/sessions/"+id1+"/join", NodeRequest{Node: 3}, nil)
	doJSON(t, c, http.MethodPost, ts.URL+"/v1/sessions/"+id1+"/join", NodeRequest{Node: 4}, nil)
	if code := doJSON(t, c, http.MethodGet, ts.URL+"/v1/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("list after joins: %d", code)
	}
	for _, info := range list {
		if info.ID == id1 && info.Members != 2 {
			t.Errorf("list: session %s members = %d, want 2", id1, info.Members)
		}
	}
	doJSON(t, c, http.MethodDelete, ts.URL+"/v1/sessions/"+id1, nil, nil)
	id3 := createSession(t, c, ts.URL, 2)
	if id3 == id1 || id3 == id2 {
		t.Fatalf("session ID %q reused", id3)
	}
	if code := doJSON(t, c, http.MethodGet, ts.URL+"/v1/sessions", nil, &list); code != http.StatusOK || len(list) != 2 {
		t.Fatalf("list after delete+create: %d, %d entries", code, len(list))
	}
}

// TestFailWithoutRecover covers the recover=false accumulate-only path and a
// later repair.
func TestFailWithoutRecover(t *testing.T) {
	_, ts := testServer(t, testGraph(t))
	c := ts.Client()
	id := createSession(t, c, ts.URL, 0)
	base := ts.URL + "/v1/sessions/" + id
	doJSON(t, c, http.MethodPost, base+"/join", NodeRequest{Node: 3}, nil)

	no := false
	var fw FailuresWire
	if code := doJSON(t, c, http.MethodPost, base+"/fail",
		FailRequest{FailureSpec: FailureSpec{Links: []LinkWire{{U: 2, V: 5}}}, Recover: &no}, &fw); code != http.StatusAccepted {
		t.Fatalf("fail recover=false: status %d", code)
	}
	if len(fw.Applied) != 1 || fw.Recovered {
		t.Fatalf("fail recover=false: %+v", fw)
	}
	// The accumulated mask now blocks joins over that link: node 5 is
	// unreachable, so it parks (partitioned), not no_path.
	var ew ErrorWire
	if code := doJSON(t, c, http.MethodPost, base+"/join", NodeRequest{Node: 5}, &ew); code != http.StatusConflict || ew.Code != "partitioned" {
		t.Fatalf("join over failed link: %d %q", code, ew.Code)
	}
	var rw RepairWire
	if code := doJSON(t, c, http.MethodPost, base+"/repair",
		FailureSpec{Links: []LinkWire{{U: 2, V: 5}}}, &rw); code != http.StatusOK || len(rw.Readmitted) != 1 {
		t.Fatalf("repair link: %d %+v", code, rw)
	}
}

// TestFailSourceRejectedCleanly is the HTTP-level regression for the
// source-failure corruption bug: POST /fail naming the source must return
// 409 source_failed AND leave the session fully usable — the mask untouched,
// degraded false, later joins succeeding. (It used to brick the session:
// the 409 came back but the mask had already swallowed the source, so every
// later join answered 409 partitioned.)
func TestFailSourceRejectedCleanly(t *testing.T) {
	_, ts := testServer(t, testGraph(t))
	c := ts.Client()
	id := createSession(t, c, ts.URL, 0)
	base := ts.URL + "/v1/sessions/" + id
	doJSON(t, c, http.MethodPost, base+"/join", NodeRequest{Node: 3}, nil)

	for _, recover := range []bool{true, false} {
		var ew ErrorWire
		req := FailRequest{FailureSpec: FailureSpec{Nodes: []graph.NodeID{0}}, Recover: &recover}
		if code := doJSON(t, c, http.MethodPost, base+"/fail", req, &ew); code != http.StatusConflict || ew.Code != "source_failed" {
			t.Fatalf("fail source (recover=%v): %d %q, want 409 source_failed", recover, code, ew.Code)
		}
	}
	// The session must behave as if the bad requests never happened.
	var jw JoinWire
	if code := doJSON(t, c, http.MethodPost, base+"/join", NodeRequest{Node: 1}, &jw); code != http.StatusOK {
		t.Fatalf("join after rejected source fail: status %d", code)
	}
	var snap struct {
		Degraded bool `json:"degraded"`
	}
	if code := doJSON(t, c, http.MethodGet, base, nil, &snap); code != http.StatusOK || snap.Degraded {
		t.Fatalf("session after rejected source fail: status %d degraded=%v, want 200 false", code, snap.Degraded)
	}
}
