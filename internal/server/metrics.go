package server

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Join instrumentation, process-wide like graph.SPFCounters: plain atomics so
// the actor hot path pays one RMW per observation and /metrics scrapes never
// take a lock.
//
//   - joinsTotal counts successful joins admitted through any actor
//     (smrp_joins_total).
//   - joinBatchHist is the coalesced-batch-size histogram: one observation
//     per mailbox dispatch of consecutive queued joins, including solo joins
//     (batch size 1). The distribution shows how often the mailbox actually
//     backs up enough for the batched path to engage — under light load it
//     is all ones; under a flash crowd the mass moves right.
var (
	joinsTotal    atomic.Uint64
	joinBatchHist batchHist
)

// joinBatchBounds are the histogram's upper bucket bounds (le); an implicit
// +Inf bucket follows. Powers of two up to the default mailbox capacity.
var joinBatchBounds = [...]int{1, 2, 4, 8, 16, 32, 64}

// batchHist is a fixed-bucket histogram on atomics. buckets[i] counts
// observations with v <= joinBatchBounds[i] (non-cumulative storage; the
// exposition cumulates); the last slot is the +Inf overflow.
type batchHist struct {
	buckets [len(joinBatchBounds) + 1]atomic.Uint64
	sum     atomic.Uint64
	count   atomic.Uint64
}

func (h *batchHist) observe(v int) {
	i := 0
	for i < len(joinBatchBounds) && v > joinBatchBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(uint64(v))
	h.count.Add(1)
}

// write renders the histogram in Prometheus text exposition format under the
// given metric name.
func (h *batchHist) write(w io.Writer, name string) {
	var cum uint64
	for i, le := range joinBatchBounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, le, cum)
	}
	cum += h.buckets[len(joinBatchBounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.sum.Load())
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}
