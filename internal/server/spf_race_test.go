package server

import (
	"context"
	"sync"
	"testing"

	"smrp/internal/graph"
)

// TestSPFCountersConcurrentSessions hammers the process-global SPF counters
// from many session actors sharing one topology while readers snapshot and
// reset them concurrently. The counters are atomics, so under -race this
// pins the concurrency contract the serving layer depends on: parallel
// sessions may drive SPF work (bumping counters through the shared cache)
// while /metrics scrapes SPFCounters and an operator resets them, with no
// synchronization beyond the atomics themselves.
func TestSPFCountersConcurrentSessions(t *testing.T) {
	g := waxmanGraph(t, 64, 5)
	reg := NewRegistry(g, RegistryConfig{})
	t.Cleanup(reg.Close)

	const actors = 8
	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writers: sessions joining and leaving, each join a cache lookup and a
	// potential full or delta SPF run.
	for i := 0; i < actors; i++ {
		a, err := reg.Create(CreateSessionRequest{Source: graph.NodeID(i)})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, a *Actor) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				node := graph.NodeID((i*17 + n*3 + 1) % g.NumNodes())
				if node == a.Source {
					continue
				}
				if _, err := a.Join(ctx, node); err == nil {
					_ = a.Leave(ctx, node)
				}
			}
		}(i, a)
	}

	// Readers: a metrics scraper and a counter-resetting operator.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if r == 0 {
					_ = graph.SPFCounters()
					_ = graph.SPFDeltaEnabled()
				} else if n%64 == 0 {
					graph.ResetSPFCounters()
				}
			}
		}(r)
	}

	// Let the contention run for a fixed number of scheduler passes; under
	// -race any unsynchronized access fails the test.
	waitFor(t, "sessions to accumulate SPF work", func() bool {
		var handled uint64
		for _, a := range reg.List() {
			handled += a.Handled()
		}
		return handled > 2000
	})
	close(stop)
	wg.Wait()
	// No value assertions: concurrent resets legitimately interleave with
	// increments. The contract under test is freedom from data races.
}
