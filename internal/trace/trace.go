// Package trace provides a structured event log for simulation runs: every
// protocol decision (joins, reshapes, failures, notices, recoveries) can be
// recorded with its virtual timestamp and replayed, filtered, or rendered —
// the observability layer behind cmd/smrp-trace.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"smrp/internal/eventsim"
	"smrp/internal/graph"
)

// Category classifies events for filtering.
type Category string

// Well-known categories emitted by the protocol layer.
const (
	CatJoin     Category = "join"
	CatLeave    Category = "leave"
	CatReshape  Category = "reshape"
	CatFailure  Category = "failure"
	CatNotice   Category = "notice"
	CatRecovery Category = "recovery"
	CatExpiry   Category = "expiry"
	CatPark     Category = "park"
	CatRepair   Category = "repair"
)

// Entry is one recorded event.
type Entry struct {
	At       eventsim.Time
	Category Category
	Node     graph.NodeID // primary subject (Invalid when not node-scoped)
	Message  string
}

// String renders the entry on one line.
func (e Entry) String() string {
	if e.Node == graph.Invalid {
		return fmt.Sprintf("t=%-10.3f %-9s %s", float64(e.At), e.Category, e.Message)
	}
	return fmt.Sprintf("t=%-10.3f %-9s node=%-4d %s", float64(e.At), e.Category, e.Node, e.Message)
}

// Log accumulates entries in insertion order. The zero value is usable.
// A nil *Log discards everything, so instrumented code never needs nil
// checks beyond passing the pointer through.
type Log struct {
	entries []Entry
	cap     int
}

// New returns a log bounded to the given number of entries (0 = unbounded).
// When full, the oldest entries are dropped.
func New(capacity int) *Log {
	return &Log{cap: capacity}
}

// Add records an event. Nil-safe.
func (l *Log) Add(at eventsim.Time, cat Category, node graph.NodeID, format string, args ...any) {
	if l == nil {
		return
	}
	l.entries = append(l.entries, Entry{
		At:       at,
		Category: cat,
		Node:     node,
		Message:  fmt.Sprintf(format, args...),
	})
	if l.cap > 0 && len(l.entries) > l.cap {
		drop := len(l.entries) - l.cap
		l.entries = append(l.entries[:0], l.entries[drop:]...)
	}
}

// Len returns the number of recorded entries. Nil-safe.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.entries)
}

// Entries returns a copy of all entries in insertion order. Nil-safe.
func (l *Log) Entries() []Entry {
	if l == nil {
		return nil
	}
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Filter returns entries matching the category, in order. Nil-safe.
func (l *Log) Filter(cat Category) []Entry {
	if l == nil {
		return nil
	}
	var out []Entry
	for _, e := range l.entries {
		if e.Category == cat {
			out = append(out, e)
		}
	}
	return out
}

// ForNode returns entries whose subject is the given node. Nil-safe.
func (l *Log) ForNode(n graph.NodeID) []Entry {
	if l == nil {
		return nil
	}
	var out []Entry
	for _, e := range l.entries {
		if e.Node == n {
			out = append(out, e)
		}
	}
	return out
}

// WriteTo renders all entries, one per line, and reports bytes written.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range l.Entries() {
		n, err := fmt.Fprintln(w, e.String())
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the whole log.
func (l *Log) String() string {
	var b strings.Builder
	if _, err := l.WriteTo(&b); err != nil {
		return ""
	}
	return b.String()
}

// Summary counts entries per category, rendered deterministically.
func (l *Log) Summary() string {
	if l == nil {
		return ""
	}
	counts := map[Category]int{}
	for _, e := range l.entries {
		counts[e.Category]++
	}
	cats := make([]string, 0, len(counts))
	for c := range counts {
		cats = append(cats, string(c))
	}
	sort.Strings(cats)
	parts := make([]string, 0, len(cats))
	for _, c := range cats {
		parts = append(parts, fmt.Sprintf("%s=%d", c, counts[Category(c)]))
	}
	return strings.Join(parts, " ")
}
