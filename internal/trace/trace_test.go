package trace

import (
	"bytes"
	"strings"
	"testing"

	"smrp/internal/graph"
)

func TestLogBasics(t *testing.T) {
	l := New(0)
	l.Add(1, CatJoin, 5, "merger=%d", 2)
	l.Add(2, CatFailure, graph.Invalid, "link down")
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	es := l.Entries()
	if es[0].Category != CatJoin || es[0].Node != 5 || es[0].Message != "merger=2" {
		t.Errorf("entry = %+v", es[0])
	}
	// Entries returns a copy.
	es[0].Message = "mutated"
	if l.Entries()[0].Message != "merger=2" {
		t.Error("Entries must copy")
	}
}

func TestLogNilSafe(t *testing.T) {
	var l *Log
	l.Add(1, CatJoin, 0, "x")
	if l.Len() != 0 || l.Entries() != nil || l.Filter(CatJoin) != nil ||
		l.ForNode(0) != nil || l.Summary() != "" {
		t.Error("nil log must be inert")
	}
}

func TestLogCapacity(t *testing.T) {
	l := New(3)
	for i := 0; i < 5; i++ {
		l.Add(0, CatJoin, graph.NodeID(i), "e%d", i)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want capped 3", l.Len())
	}
	if l.Entries()[0].Node != 2 {
		t.Errorf("oldest surviving entry = %+v, want node 2", l.Entries()[0])
	}
}

func TestLogFilterAndForNode(t *testing.T) {
	l := New(0)
	l.Add(1, CatJoin, 1, "a")
	l.Add(2, CatLeave, 1, "b")
	l.Add(3, CatJoin, 2, "c")
	if got := l.Filter(CatJoin); len(got) != 2 {
		t.Errorf("Filter = %v", got)
	}
	if got := l.ForNode(1); len(got) != 2 {
		t.Errorf("ForNode = %v", got)
	}
}

func TestLogRendering(t *testing.T) {
	l := New(0)
	l.Add(1.5, CatRecovery, 7, "rd=%0.1f", 2.0)
	l.Add(2, CatFailure, graph.Invalid, "boom")
	var buf bytes.Buffer
	n, err := l.WriteTo(&buf)
	if err != nil || n == 0 {
		t.Fatalf("WriteTo = %d, %v", n, err)
	}
	out := buf.String()
	if !strings.Contains(out, "recovery") || !strings.Contains(out, "node=7") {
		t.Errorf("render = %q", out)
	}
	if !strings.Contains(out, "boom") {
		t.Errorf("render = %q", out)
	}
	if l.String() != out {
		t.Error("String should equal WriteTo output")
	}
	sum := l.Summary()
	if sum != "failure=1 recovery=1" {
		t.Errorf("Summary = %q", sum)
	}
}
