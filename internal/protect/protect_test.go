package protect

import (
	"errors"
	"testing"

	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

// biconnWaxman samples a connected Waxman graph and densifies it until it is
// biconnected (adds shortest chords around articulation points).
func biconnWaxman(t *testing.T, n int, seed uint64) *graph.Graph {
	t.Helper()
	rng := topology.NewRNG(seed)
	for tries := 0; tries < 50; tries++ {
		g, err := topology.Waxman(topology.WaxmanConfig{
			N: n, Alpha: 0.6, Beta: 0.4, EnsureConnected: true,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.Biconnected(nil) {
			return g
		}
	}
	t.Skip("no biconnected sample drawn")
	return nil
}

func ring(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := topology.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildRedundantTreesRing(t *testing.T) {
	g := ring(t, 6)
	rt, err := BuildRedundantTrees(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for m := 1; m < 6; m++ {
		if err := rt.Subscribe(graph.NodeID(m)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Validate(); err != nil {
		t.Fatal(err)
	}
	// On a ring, the two trees are the two directions; combined cost covers
	// (almost) every edge.
	c, err := rt.Cost()
	if err != nil {
		t.Fatal(err)
	}
	if c < 6 {
		t.Errorf("combined cost %v suspiciously low for a 6-ring", c)
	}
}

func TestRedundantTreesSurviveEverySingleFailure(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := biconnWaxman(t, 30, seed+100)
		rt, err := BuildRedundantTrees(g, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rng := topology.NewRNG(seed)
		for _, m := range rng.Sample(29, 8) {
			if err := rt.Subscribe(graph.NodeID(m + 1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Every single-link failure leaves every member reachable by at
		// least one tree.
		for _, e := range g.Edges() {
			mask := failure.LinkDown(e.A, e.B).Mask()
			for _, m := range rt.Red.Members() {
				r := rt.Survives(mask, m)
				if !r.ViaRed && !r.ViaBlue {
					t.Fatalf("seed %d: member %d unprotected against %v", seed, m, e)
				}
			}
		}
		// Every single-node failure (excluding source and the member).
		for v := 1; v < g.NumNodes(); v++ {
			mask := failure.NodeDown(graph.NodeID(v)).Mask()
			for _, m := range rt.Red.Members() {
				if graph.NodeID(v) == m {
					continue
				}
				r := rt.Survives(mask, m)
				if !r.ViaRed && !r.ViaBlue {
					t.Fatalf("seed %d: member %d unprotected against node %d", seed, m, v)
				}
			}
		}
	}
}

func TestBuildRedundantTreesRejectsNonBiconnected(t *testing.T) {
	g, err := topology.Line(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildRedundantTrees(g, 0); !errors.Is(err, graph.ErrNotBiconnected) {
		t.Errorf("err = %v", err)
	}
	if _, err := BuildRedundantTrees(g, 99); err == nil {
		t.Error("unknown source should fail")
	}
}

func TestDependableSessionBasics(t *testing.T) {
	g := ring(t, 6)
	s, err := NewDependableSession(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := s.Join(3)
	if err != nil {
		t.Fatal(err)
	}
	if !conn.Disjoint {
		t.Error("ring offers fully disjoint backup")
	}
	// Primary and backup go opposite ways around the ring.
	if conn.Primary.Last() != 0 || conn.Backup.Last() != 0 {
		t.Error("paths must end at the source")
	}
	if _, err := s.Join(3); err == nil {
		t.Error("double join should fail")
	}
	if got := s.Members(); len(got) != 1 || got[0] != 3 {
		t.Errorf("members = %v", got)
	}
	if _, ok := s.Connection(3); !ok {
		t.Error("connection lookup failed")
	}
	cost, err := s.ReservedCost()
	if err != nil || cost != 6 {
		t.Errorf("reserved cost = %v (%v), want 6 (3 + 3 around the ring)", cost, err)
	}
	if err := s.Leave(3); err != nil {
		t.Fatal(err)
	}
	if err := s.Leave(3); err == nil {
		t.Error("double leave should fail")
	}
}

func TestDependableFailover(t *testing.T) {
	g := ring(t, 6)
	s, err := NewDependableSession(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Join(2); err != nil {
		t.Fatal(err)
	}
	conn, _ := s.Connection(2)

	// A failure missing both paths.
	out, err := s.Failover(graph.NewMask(), 2)
	if err != nil || out != PrimaryUnaffected {
		t.Errorf("outcome = %v, %v", out, err)
	}
	// Kill the primary's first hop.
	mask := failure.LinkDown(conn.Primary[0], conn.Primary[1]).Mask()
	out, err = s.Failover(mask, 2)
	if err != nil || out != SwitchedToBackup {
		t.Errorf("outcome = %v, %v", out, err)
	}
	// Kill one link of each direction: both channels down.
	both := failure.LinkDown(conn.Primary[0], conn.Primary[1]).Mask().
		Union(failure.LinkDown(conn.Backup[0], conn.Backup[1]).Mask())
	out, err = s.Failover(both, 2)
	if err != nil || out != BothChannelsDown {
		t.Errorf("outcome = %v, %v", out, err)
	}
	if _, err := s.Failover(mask, 5); err == nil {
		t.Error("failover of non-member should error")
	}
}

func TestDependableBackupOnBridgyGraph(t *testing.T) {
	// Line graph: no disjoint backup exists; the fallback reuses primary
	// links (Disjoint = false) rather than failing.
	g, err := topology.Line(4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewDependableSession(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := s.Join(3)
	if err != nil {
		t.Fatal(err)
	}
	if conn.Disjoint {
		t.Error("line graph cannot offer a disjoint backup")
	}
	if conn.Backup == nil {
		t.Error("fallback backup missing")
	}
}

func TestFailoverOutcomeString(t *testing.T) {
	if PrimaryUnaffected.String() == "" || SwitchedToBackup.String() == "" ||
		BothChannelsDown.String() == "" || FailoverOutcome(0).String() == "" {
		t.Error("outcome strings must render")
	}
}

func TestDependableUnreachableMember(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	s, err := NewDependableSession(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Join(2); err == nil {
		t.Error("unreachable member should fail")
	}
	if _, err := NewDependableSession(g, 9); err == nil {
		t.Error("bad source should fail")
	}
}

func TestPrunedCostBelowSpanningCost(t *testing.T) {
	g := ring(t, 8)
	rt, err := BuildRedundantTrees(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Subscribe(2); err != nil {
		t.Fatal(err)
	}
	full, err := rt.Cost()
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := rt.PrunedCost()
	if err != nil {
		t.Fatal(err)
	}
	if pruned >= full {
		t.Errorf("pruned cost %v should be below spanning cost %v", pruned, full)
	}
	// Pruning for accounting must not mutate the real trees.
	if err := rt.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Red.NumNodes(); got != 8 {
		t.Errorf("red tree mutated: %d nodes", got)
	}
}
