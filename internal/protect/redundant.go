// Package protect implements the two *proactive* fault-tolerance baselines
// the paper contrasts SMRP with in its related work (§2):
//
//   - Médard et al.'s redundant trees ("Redundant Trees for Preplanned
//     Recovery in Arbitrary Vertex-Redundant or Edge-Redundant Graphs"):
//     a red and a blue tree rooted at the source such that any single
//     link/node failure leaves every node connected to the source by at
//     least one tree — recovery is an instant switchover (RD = 0) at the
//     price of maintaining two trees and, as the paper notes, a complex
//     construction that needs global topology knowledge;
//
//   - Han & Shin-style dependable connections: each receiver reserves a
//     backup path maximally disjoint from its primary; a failure on the
//     primary activates the backup without a path search.
//
// Both give SMRP's evaluation a "preplanned" corner of the design space to
// compare against: zero recovery distance, but higher standing resource
// usage.
package protect

import (
	"errors"
	"fmt"
	"sort"

	"smrp/internal/graph"
	"smrp/internal/multicast"
)

// ErrNotRedundant is returned when the topology cannot support redundant
// trees (it is not biconnected, so a single failure can partition it).
var ErrNotRedundant = errors.New("protect: graph is not biconnected")

// RedundantTrees is a red/blue tree pair rooted at Source with the Médard
// property: the red path and blue path of every node are internally
// vertex-disjoint.
type RedundantTrees struct {
	Source graph.NodeID
	Red    *multicast.Tree
	Blue   *multicast.Tree
	// Numbering is the underlying st-numbering (diagnostic; red paths
	// descend in it, blue paths ascend).
	Numbering map[graph.NodeID]int
}

// BuildRedundantTrees constructs the red/blue pair on a biconnected graph:
// take an st-numbering with s = source and t = a neighbor of s; in the red
// tree every vertex attaches to a lower-numbered neighbor (paths descend to
// s), in the blue tree every vertex except t attaches to a higher-numbered
// neighbor and t attaches directly to s (paths ascend to t, then hop to s).
// Because one path uses only lower numbers and the other only higher
// numbers, the two paths of any vertex share no interior vertex.
func BuildRedundantTrees(g *graph.Graph, source graph.NodeID) (*RedundantTrees, error) {
	if source < 0 || int(source) >= g.NumNodes() {
		return nil, fmt.Errorf("protect: source %d not in graph", source)
	}
	neighbors := g.Neighbors(source)
	if len(neighbors) == 0 {
		return nil, ErrNotRedundant
	}
	tEnd := neighbors[0].To
	num, err := g.STNumbering(source, tEnd)
	if err != nil {
		return nil, fmt.Errorf("protect: %w", err)
	}

	red, err := multicast.New(g, source)
	if err != nil {
		return nil, err
	}
	blue, err := multicast.New(g, source)
	if err != nil {
		return nil, err
	}

	// Process vertices in ascending st-number so every red parent is
	// already on the red tree when its child attaches; descending for blue.
	order := make([]graph.NodeID, 0, g.NumNodes())
	for v := range num {
		order = append(order, v)
	}
	sort.Slice(order, func(i, j int) bool { return num[order[i]] < num[order[j]] })

	// Red tree: parent = the lowest-numbered neighbor (guaranteed lower
	// than v for all v ≠ source). Exception: t must not attach directly to
	// the source — the blue tree already uses the (s, t) edge, and sharing
	// it would leave t with two paths through one link.
	for _, v := range order {
		if v == source {
			continue
		}
		par := graph.Invalid
		best := num[v]
		for _, arc := range g.Neighbors(v) {
			if v == tEnd && arc.To == source {
				continue
			}
			if num[arc.To] < best {
				best = num[arc.To]
				par = arc.To
			}
		}
		if par == graph.Invalid {
			return nil, fmt.Errorf("protect: vertex %d has no red parent", v)
		}
		if err := red.Graft(graph.Path{par, v}, false); err != nil {
			return nil, fmt.Errorf("protect: red graft %d: %w", v, err)
		}
	}

	// Blue tree: t attaches to the source; every other vertex attaches to
	// its highest-numbered neighbor (guaranteed higher).
	if err := blue.Graft(graph.Path{source, tEnd}, false); err != nil {
		return nil, fmt.Errorf("protect: blue root edge: %w", err)
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if v == source || v == tEnd {
			continue
		}
		par := graph.Invalid
		best := num[v]
		for _, arc := range g.Neighbors(v) {
			if num[arc.To] > best {
				best = num[arc.To]
				par = arc.To
			}
		}
		if par == graph.Invalid {
			return nil, fmt.Errorf("protect: vertex %d has no blue parent", v)
		}
		if err := blue.Graft(graph.Path{par, v}, false); err != nil {
			return nil, fmt.Errorf("protect: blue graft %d: %w", v, err)
		}
	}
	return &RedundantTrees{Source: source, Red: red, Blue: blue, Numbering: num}, nil
}

// Subscribe marks m as a receiver on both trees.
func (rt *RedundantTrees) Subscribe(m graph.NodeID) error {
	if err := rt.Red.Graft(graph.Path{m}, true); err != nil {
		return fmt.Errorf("protect: subscribe red: %w", err)
	}
	if err := rt.Blue.Graft(graph.Path{m}, true); err != nil {
		return fmt.Errorf("protect: subscribe blue: %w", err)
	}
	return nil
}

// Reach reports which tree(s) still deliver to m under the failure mask.
type Reach struct {
	ViaRed, ViaBlue bool
}

// Survives evaluates a failure for member m: with the Médard property, at
// least one of the two flags is true for any single link/node failure that
// does not hit m or the source itself.
func (rt *RedundantTrees) Survives(mask *graph.Mask, m graph.NodeID) Reach {
	return Reach{
		ViaRed:  treeDelivers(rt.Red, mask, m),
		ViaBlue: treeDelivers(rt.Blue, mask, m),
	}
}

// treeDelivers walks m's path to the root checking every hop against the
// mask.
func treeDelivers(t *multicast.Tree, mask *graph.Mask, m graph.NodeID) bool {
	p, err := t.PathToSource(m)
	if err != nil {
		return false
	}
	for i := 0; i+1 < len(p); i++ {
		if mask.NodeBlocked(p[i]) || mask.EdgeBlocked(p[i], p[i+1]) {
			return false
		}
	}
	return !mask.NodeBlocked(p[len(p)-1])
}

// Cost returns the combined standing resource usage of both trees — the
// price of preplanned protection.
func (rt *RedundantTrees) Cost() (float64, error) {
	r, err := rt.Red.Cost()
	if err != nil {
		return 0, err
	}
	b, err := rt.Blue.Cost()
	if err != nil {
		return 0, err
	}
	return r + b, nil
}

// PrunedCost returns the combined cost of the two trees with every branch
// that serves no member removed — the resources a deployment would actually
// reserve (the spanning construction is pruned to the subscribed subtrees,
// as Médard et al. note).
func (rt *RedundantTrees) PrunedCost() (float64, error) {
	r := rt.Red.Clone()
	r.PruneStale()
	b := rt.Blue.Clone()
	b.PruneStale()
	rc, err := r.Cost()
	if err != nil {
		return 0, err
	}
	bc, err := b.Cost()
	if err != nil {
		return 0, err
	}
	return rc + bc, nil
}

// Validate checks both trees' structural invariants plus the disjointness
// property for every member: red and blue paths share no interior vertex.
func (rt *RedundantTrees) Validate() error {
	if err := rt.Red.Validate(); err != nil {
		return fmt.Errorf("protect: red: %w", err)
	}
	if err := rt.Blue.Validate(); err != nil {
		return fmt.Errorf("protect: blue: %w", err)
	}
	for _, m := range rt.Red.Members() {
		rp, err := rt.Red.PathToSource(m)
		if err != nil {
			return err
		}
		bp, err := rt.Blue.PathToSource(m)
		if err != nil {
			return err
		}
		interior := make(map[graph.NodeID]bool)
		for _, n := range rp[1 : len(rp)-1] {
			interior[n] = true
		}
		for _, n := range bp[1 : len(bp)-1] {
			if interior[n] {
				return fmt.Errorf("protect: member %d: paths share interior vertex %d", m, n)
			}
		}
	}
	return nil
}
