package protect

import (
	"errors"
	"fmt"
	"sort"

	"smrp/internal/graph"
)

// ErrNoBackup is returned when no backup path exists for a member (the
// graph offers no alternative at all).
var ErrNoBackup = errors.New("protect: no backup path exists")

// DependableConnection is a Han & Shin-style primary/backup channel pair
// for one receiver: the primary carries traffic; the backup is preplanned
// and activated on a primary failure without any path search.
type DependableConnection struct {
	Member  graph.NodeID
	Primary graph.Path // member → … → source
	Backup  graph.Path // member → … → source, maximally disjoint
	// Disjoint reports whether the backup shares no link with the primary
	// (always preferred; false only when the topology forces sharing).
	Disjoint bool
}

// DependableSession manages primary/backup channels for a set of receivers
// of one source.
type DependableSession struct {
	g      *graph.Graph
	source graph.NodeID
	conns  map[graph.NodeID]*DependableConnection
}

// NewDependableSession creates an empty session rooted at source.
func NewDependableSession(g *graph.Graph, source graph.NodeID) (*DependableSession, error) {
	if source < 0 || int(source) >= g.NumNodes() {
		return nil, fmt.Errorf("protect: source %d not in graph", source)
	}
	return &DependableSession{
		g:      g,
		source: source,
		conns:  make(map[graph.NodeID]*DependableConnection),
	}, nil
}

// Join establishes m's primary channel (unicast shortest path) and reserves
// a backup: the shortest path in the graph with every primary link removed;
// if that disconnects m, the backup is the shortest path avoiding as much of
// the primary as possible (penalized reuse).
func (s *DependableSession) Join(m graph.NodeID) (*DependableConnection, error) {
	if _, ok := s.conns[m]; ok {
		return nil, fmt.Errorf("protect: %d already joined", m)
	}
	primary, _ := s.g.ShortestPath(m, s.source, nil)
	if primary == nil {
		return nil, fmt.Errorf("protect: %d cannot reach the source", m)
	}
	conn := &DependableConnection{Member: m, Primary: primary}

	// Fully link-disjoint backup first.
	mask := graph.NewMask()
	for _, e := range primary.Edges() {
		mask.BlockEdge(e.A, e.B)
	}
	if backup, _ := s.g.ShortestPath(m, s.source, mask); backup != nil {
		conn.Backup = backup
		conn.Disjoint = true
	} else {
		// The topology forces sharing: drop the constraint link by link,
		// preferring backups that avoid the links closest to the member
		// (those are the likeliest to share the primary's fate).
		edges := primary.Edges()
		for drop := len(edges) - 1; drop >= 0; drop-- {
			mask2 := graph.NewMask()
			for i := 0; i < drop; i++ {
				mask2.BlockEdge(edges[i].A, edges[i].B)
			}
			if backup, _ := s.g.ShortestPath(m, s.source, mask2); backup != nil {
				conn.Backup = backup
				break
			}
		}
		if conn.Backup == nil {
			return nil, fmt.Errorf("protect: member %d: %w", m, ErrNoBackup)
		}
	}
	s.conns[m] = conn
	return conn, nil
}

// Leave releases m's channels.
func (s *DependableSession) Leave(m graph.NodeID) error {
	if _, ok := s.conns[m]; !ok {
		return fmt.Errorf("protect: %d is not joined", m)
	}
	delete(s.conns, m)
	return nil
}

// Members lists joined receivers in ascending order.
func (s *DependableSession) Members() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(s.conns))
	for m := range s.conns {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Connection returns m's channel pair.
func (s *DependableSession) Connection(m graph.NodeID) (*DependableConnection, bool) {
	c, ok := s.conns[m]
	return c, ok
}

// FailoverOutcome describes how a member weathers a failure.
type FailoverOutcome int

// Failover outcomes. Enum starts at 1 so the zero value is invalid.
const (
	// PrimaryUnaffected: the failure missed the primary entirely.
	PrimaryUnaffected FailoverOutcome = iota + 1
	// SwitchedToBackup: primary hit, backup intact — instant activation.
	SwitchedToBackup
	// BothChannelsDown: both paths hit; the member must fall back to
	// reactive recovery (e.g. SMRP's local detour or an SPF rejoin).
	BothChannelsDown
)

// String implements fmt.Stringer.
func (o FailoverOutcome) String() string {
	switch o {
	case PrimaryUnaffected:
		return "primary-unaffected"
	case SwitchedToBackup:
		return "switched-to-backup"
	case BothChannelsDown:
		return "both-channels-down"
	default:
		return fmt.Sprintf("FailoverOutcome(%d)", int(o))
	}
}

// Failover evaluates the failure mask for member m.
func (s *DependableSession) Failover(mask *graph.Mask, m graph.NodeID) (FailoverOutcome, error) {
	c, ok := s.conns[m]
	if !ok {
		return 0, fmt.Errorf("protect: %d is not joined", m)
	}
	if pathIntact(c.Primary, mask) {
		return PrimaryUnaffected, nil
	}
	if pathIntact(c.Backup, mask) {
		return SwitchedToBackup, nil
	}
	return BothChannelsDown, nil
}

// pathIntact checks every hop and node of the path against the mask.
func pathIntact(p graph.Path, mask *graph.Mask) bool {
	if len(p) == 0 {
		return false
	}
	for i, n := range p {
		if mask.NodeBlocked(n) {
			return false
		}
		if i+1 < len(p) && mask.EdgeBlocked(n, p[i+1]) {
			return false
		}
	}
	return true
}

// ReservedCost is the standing resource usage: the weight of every primary
// plus every backup reservation (links reserved twice count twice, as two
// channels hold them).
func (s *DependableSession) ReservedCost() (float64, error) {
	var total float64
	for _, c := range s.conns {
		pw, err := c.Primary.Weight(s.g)
		if err != nil {
			return 0, err
		}
		bw, err := c.Backup.Weight(s.g)
		if err != nil {
			return 0, err
		}
		total += pw + bw
	}
	return total, nil
}
