package core

import (
	"math/rand"
	"testing"

	"smrp/internal/graph"
)

// TestSparseSessionFootprintGate is the megascale standing-memory CI gate
// from ROADMAP item 2: at N = 10⁵ with a 64-member group, a sparse-storage
// session's deterministic MemoryFootprint must be at most 5% of the dense
// backend's on the same topology and membership. Footprints are
// element-count accounting (never live heap), so this gate is exact and
// machine-independent.
func TestSparseSessionFootprintGate(t *testing.T) {
	const (
		n       = 100_000
		extra   = 200_000
		members = 64
	)
	rng := rand.New(rand.NewSource(2005))
	g := graph.New(n)
	// Random-attachment spanning structure (expected depth O(log n)) plus
	// uniform extra edges: a small-diameter random topology, the regime the
	// megascale studies run in.
	for i := 1; i < n; i++ {
		_ = g.AddEdge(graph.NodeID(i), graph.NodeID(rng.Intn(i)), 1+rng.Float64())
	}
	for i := 0; i < extra; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddEdge(u, v, 1+rng.Float64())
		}
	}
	g.Freeze()

	joiners := make([]graph.NodeID, 0, members)
	seen := map[graph.NodeID]bool{0: true}
	for len(joiners) < members {
		m := graph.NodeID(rng.Intn(n))
		if !seen[m] {
			seen[m] = true
			joiners = append(joiners, m)
		}
	}

	cfg := DefaultConfig()
	cfg.ReshapeDelta = 0 // memory gate, not a reshaping test: keep joins cheap

	build := func(storage TreeStorage) *Session {
		c := cfg
		c.TreeStorage = storage
		s, err := NewSession(g, 0, c)
		if err != nil {
			t.Fatal(err)
		}
		if _, errs := s.JoinBatch(joiners); errs != nil {
			for _, err := range errs {
				if err != nil {
					t.Fatalf("join: %v", err)
				}
			}
		}
		return s
	}

	dense := build(StorageDense)
	sparse := build(StorageSparse)
	if dense.Tree().NumMembers() != members || sparse.Tree().NumMembers() != members {
		t.Fatalf("fixture broken: %d/%d members joined", dense.Tree().NumMembers(), sparse.Tree().NumMembers())
	}
	if dense.Stats() != sparse.Stats() {
		t.Fatalf("backends diverged:\ndense:  %+v\nsparse: %+v", dense.Stats(), sparse.Stats())
	}

	db, sb := dense.MemoryFootprint(), sparse.MemoryFootprint()
	t.Logf("standing bytes: dense %d, sparse %d (%.2f%%), tree size %d nodes",
		db, sb, 100*float64(sb)/float64(db), sparse.Tree().NumNodes())
	if sb*20 > db {
		t.Fatalf("sparse session standing bytes %d exceed 5%% of dense %d", sb, db)
	}

	// StorageAuto must have picked sparse at this scale.
	auto := cfg
	auto.TreeStorage = StorageAuto
	s, err := NewSession(g, 0, auto)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Tree().SparseStorage() {
		t.Fatalf("StorageAuto chose dense storage at N=%d (threshold %d)", n, SparseNodeThreshold)
	}
}
