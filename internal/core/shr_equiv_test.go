package core

import (
	"fmt"
	"testing"

	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/multicast"
	"smrp/internal/topology"
)

// computeSHRReference is the pre-dense SHR algorithm kept as an independent
// oracle: it derives subtree member counts itself (bottom-up over Children,
// never touching the tree's incrementally maintained N_R cache) and then
// applies Eq. 2 top-down. The property test below holds both the cached N_R
// values and the session's incrementally repaired SHR table to exact
// equality against it after every mutation.
func computeSHRReference(t *multicast.Tree) map[graph.NodeID]int {
	// Bottom-up member counts via explicit post-order traversal.
	counts := make(map[graph.NodeID]int, t.NumNodes())
	var walk func(n graph.NodeID) int
	walk = func(n graph.NodeID) int {
		c := 0
		if t.IsMember(n) {
			c = 1
		}
		for _, k := range t.Children(n) {
			c += walk(k)
		}
		counts[n] = c
		return c
	}
	walk(t.Source())

	// Top-down SHR propagation: SHR(R) = SHR(R_u) + N_R, SHR(S) = 0.
	shr := make(map[graph.NodeID]int, t.NumNodes())
	shr[t.Source()] = 0
	stack := []graph.NodeID{t.Source()}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, k := range t.Children(n) {
			shr[k] = shr[n] + counts[k]
			stack = append(stack, k)
		}
	}
	return shr
}

// checkSHRState asserts, after an arbitrary session mutation, that
//   - the tree's structural invariants and its cached N_R values hold
//     (Tree.Validate recounts N_R from scratch),
//   - ComputeSHR matches the independent reference oracle, and
//   - the eager session's incrementally repaired dense table matches too.
func checkSHRState(t *testing.T, s *Session, op string) {
	t.Helper()
	tr := s.Tree()
	if err := tr.Validate(); err != nil {
		t.Fatalf("%s: tree invalid: %v", op, err)
	}
	ref := computeSHRReference(tr)
	got := ComputeSHR(tr)
	if len(got) != len(ref) {
		t.Fatalf("%s: ComputeSHR has %d entries, reference %d", op, len(got), len(ref))
	}
	for n, want := range ref {
		if got[n] != want {
			t.Fatalf("%s: ComputeSHR[%d] = %d, reference %d", op, n, got[n], want)
		}
	}
	if s.cfg.SHRMode == EagerSHR {
		dense := s.shr.table(tr)
		for n, want := range ref {
			if dense.at(n) != want {
				t.Fatalf("%s: incremental SHR[%d] = %d, reference %d", op, n, dense.at(n), want)
			}
		}
	}
}

// TestIncrementalSHREquivalence drives random membership churn, reshaping,
// and failure healing across many Waxman topologies and asserts after every
// single operation that the incrementally maintained state (cached N_R,
// eager dirty-subtree SHR repairs) is indistinguishable from a from-scratch
// recompute. This is the correctness contract of the dense-tree refactor: no
// sequence of O(depth) incremental updates may ever drift from Eq. 2.
func TestIncrementalSHREquivalence(t *testing.T) {
	topologies := 50
	if testing.Short() {
		topologies = 12
	}
	for ti := 0; ti < topologies; ti++ {
		ti := ti
		t.Run(fmt.Sprintf("topo%02d", ti), func(t *testing.T) {
			rng := topology.NewRNG(9000 + uint64(ti))
			n := 24 + rng.Intn(57) // 24..80 nodes
			g, err := topology.Waxman(topology.WaxmanConfig{
				N:               n,
				Alpha:           0.15 + 0.2*rng.Float64(),
				Beta:            topology.DefaultBeta,
				EnsureConnected: true,
			}, rng)
			if err != nil {
				t.Fatal(err)
			}
			src := graph.NodeID(rng.Intn(n))
			cfg := DefaultConfig()
			if ti%4 == 3 {
				cfg.SHRMode = DeferredSHR // every 4th run exercises the memoized path
			}
			s, err := NewSession(g, src, cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkSHRState(t, s, "init")

			// Random join/leave/reshape churn.
			ops := 30 + rng.Intn(31)
			for i := 0; i < ops; i++ {
				switch r := rng.Intn(10); {
				case r < 6: // join a random off-tree node
					v := graph.NodeID(rng.Intn(n))
					if s.Tree().OnTree(v) {
						continue
					}
					if _, err := s.Join(v); err != nil {
						t.Fatalf("join %d: %v", v, err)
					}
					checkSHRState(t, s, fmt.Sprintf("join %d", v))
				case r < 8: // leave a random member
					ms := s.Tree().Members()
					if len(ms) == 0 {
						continue
					}
					m := ms[rng.Intn(len(ms))]
					if m == src {
						continue
					}
					if err := s.Leave(m); err != nil {
						t.Fatalf("leave %d: %v", m, err)
					}
					checkSHRState(t, s, fmt.Sprintf("leave %d", m))
				default: // Condition-II reshape pass (exercises Reroute)
					s.ReshapeAll()
					checkSHRState(t, s, "reshape")
				}
			}

			// Heal a random failure (exercises FlushDead's batched
			// dirty-root refresh, regraft repairs, and PruneStale).
			if s.Tree().NumMembers() > 1 {
				var f failure.Failure
				if rng.Intn(2) == 0 {
					es := s.Tree().Edges()
					e := es[rng.Intn(len(es))]
					f = failure.LinkDown(e.A, e.B)
				} else {
					nodes := s.Tree().Nodes()
					v := nodes[rng.Intn(len(nodes))]
					if v == src {
						return
					}
					f = failure.NodeDown(v)
				}
				if _, err := s.Recover(f); err != nil {
					t.Fatalf("heal %v: %v", f, err)
				}
				checkSHRState(t, s, fmt.Sprintf("heal %v", f))

				// Post-heal churn: leaves still work on the degraded tree.
				for _, m := range s.Tree().Members() {
					if m == src || rng.Intn(3) != 0 {
						continue
					}
					if err := s.Leave(m); err != nil {
						t.Fatalf("post-heal leave %d: %v", m, err)
					}
					checkSHRState(t, s, fmt.Sprintf("post-heal leave %d", m))
				}
			}
		})
	}
}
