package core

import (
	"smrp/internal/graph"
)

// batchState carries the machinery one JoinBatch call amortizes across its
// joiners:
//
//   - spt: the source-rooted SPF tree under the session's failure mask,
//     computed once per batch. Sequential joins ask ShortestPath(source, nr)
//     per joiner — k full sweeps without a cache, k cache probes with one;
//     the batch reads every joiner's SPF delay off this single tree. Joins
//     never move the failure mask, so the tree stays valid for the whole
//     batch.
//   - sw: one sweep scratch arena shared by every joiner's candidate
//     enumeration, run in bounded mode (stop when the last live on-tree
//     merger settles — see graph.Sweep.RunBounded).
//
// Both substitutions are value-identical to the sequential machinery, which
// is what makes JoinBatch bit-identical to one-at-a-time joins
// (TestJoinBatchBitIdentical).
type batchState struct {
	spt *graph.SPTree
	sw  *graph.Sweep
}

// JoinBatch admits joiners in order, producing the same session state,
// results, and errors as calling Join for each element of joiners in the same
// order — bit-identical, not merely equivalent: grafts, SHR refreshes,
// Condition-I reshaping, parking, and every float in every JoinResult match
// the sequential reference exactly.
//
// What the batch buys is amortization, not reordering: one source-rooted SPF
// serves every joiner's delay-bound query, one sweep arena serves every
// candidate enumeration, and each enumeration stops as soon as all live
// on-tree mergers have settled instead of flooding the remaining topology.
// For a k-joiner flash crowd this cuts the settled-node work (Stats.
// EnumSettled) substantially versus k independent Join calls — the intended
// use is exactly that shape: k simultaneous joiners of one group, as queued
// by the server actor's mailbox or a flash-crowd workload.
//
// Per-joiner failures do not abort the batch: results[i] and errs[i] report
// joiner i's outcome, and a failed joiner leaves exactly the state a failed
// sequential Join would (e.g. parked on ErrPartitioned).
func (s *Session) JoinBatch(joiners []graph.NodeID) (results []*JoinResult, errs []error) {
	results = make([]*JoinResult, len(joiners))
	errs = make([]error, len(joiners))
	if len(joiners) == 0 {
		return results, errs
	}
	bs := &batchState{sw: s.g.NewSweep()}
	defer bs.sw.Release()
	// One source SPF for the whole batch. With an SPF cache attached this is
	// a single probe; without one it replaces k early-exit point queries with
	// one full tree — still a large saving for k > 1.
	bs.spt = s.g.Dijkstra(s.tree.Source(), s.maskOrNil())
	for i, nr := range joiners {
		results[i], errs[i] = s.join(nr, bs)
		if errs[i] == nil {
			s.stats.BatchJoins++
		}
	}
	return results, errs
}

// RecoverGraftSet grafts a batch of local-detour paths (each reattachment
// point → … → member, as accepted by RecoverGraft) and restores the session
// bookkeeping with a single SHR repair pass over every dirtied branch instead
// of one pass per graft. The final tree and SHR table are identical to
// sequential RecoverGraft calls — the repair recomputes from tree state, and
// the final tree is the same either way. The one observable difference is
// deliberate: the Condition-I baselines recorded for the batch's members are
// read from the post-batch tree rather than mid-batch, which is the right
// reading for a correlated recovery event (the members came back together;
// their baselines should reflect the tree they all landed on).
//
// A graft error aborts the batch: grafts applied so far stay applied and the
// SHR table is repaired for them before the error is returned, so the
// session is never left with a stale table.
func (s *Session) RecoverGraftSet(paths []graph.Path) error {
	if len(paths) == 0 {
		return nil
	}
	dirty := make([]graph.NodeID, 0, len(paths))
	members := make([]graph.NodeID, 0, len(paths))
	var graftErr error
	for _, p := range paths {
		if err := s.tree.Graft(p, true); err != nil {
			graftErr = err
			break
		}
		m := p.Last()
		delete(s.parked, m)
		members = append(members, m)
		dirty = append(dirty, s.tree.TopAncestor(m))
	}
	s.shr.refresh(s.tree, dirty...)
	for _, m := range members {
		s.recordUpSHR(m)
	}
	return graftErr
}
