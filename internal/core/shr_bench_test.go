package core

import (
	"runtime/debug"
	"testing"

	"smrp/internal/graph"
	"smrp/internal/topology"
)

// eagerChurnFixture builds a warm 30-member EagerSHR session on the
// evaluation-scale bench topology and returns a leaf member plus the detour
// path that regrafts it after a Leave, forming a stable churn cycle.
func eagerChurnFixture(tb testing.TB) (*Session, graph.NodeID, graph.Path) {
	tb.Helper()
	g := benchGraph(tb, 2005)
	s, err := NewSession(g, 0, DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	for _, m := range topology.NewRNG(77).Sample(g.NumNodes(), 30) {
		if graph.NodeID(m) == 0 {
			continue
		}
		if _, err := s.Join(graph.NodeID(m)); err != nil {
			tb.Fatal(err)
		}
	}
	tr := s.Tree()
	var leaf graph.NodeID = graph.Invalid
	for _, m := range tr.Members() {
		if len(tr.Children(m)) == 0 && m != tr.Source() {
			leaf = m
			break
		}
	}
	if leaf == graph.Invalid {
		tb.Fatal("no leaf member in bench session")
	}
	if err := s.Leave(leaf); err != nil {
		tb.Fatal(err)
	}
	_, p, _ := g.NearestOf(leaf, nil, tr.OnTree)
	if p == nil {
		tb.Fatal("leaf cannot regraft")
	}
	regraft := p.Reverse()
	if err := s.RecoverGraft(regraft); err != nil {
		tb.Fatal(err)
	}
	return s, leaf, regraft
}

// TestEagerChurnSteadyStateAllocs pins the warm Leave/RecoverGraft cycle —
// tree mutation plus eager SHR dirty-subtree repair — at zero heap
// allocations, mirroring TestSweepSteadyStateAllocs and
// TestTreeSteadyStateAllocs. GC is disabled so a collection cannot shrink
// pooled storage mid-measurement.
func TestEagerChurnSteadyStateAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	s, leaf, regraft := eagerChurnFixture(t)
	// Warm: one full cycle outside the measurement.
	if err := s.Leave(leaf); err != nil {
		t.Fatal(err)
	}
	if err := s.RecoverGraft(regraft); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := s.Leave(leaf); err != nil {
			t.Fatal(err)
		}
		if err := s.RecoverGraft(regraft); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state churn allocated %.1f times per cycle, want 0", allocs)
	}
}

// BenchmarkEagerSHRChurn measures one warm membership churn event under
// eager SHR maintenance: a leaf member leaves and regrafts (RecoverGraft, no
// candidate enumeration), so the timing isolates tree-state mutation plus
// SHR table maintenance — the per-event cost §3.3.2's update-message analysis
// is about.
func BenchmarkEagerSHRChurn(b *testing.B) {
	s, leaf, regraft := eagerChurnFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Leave(leaf); err != nil {
			b.Fatal(err)
		}
		if err := s.RecoverGraft(regraft); err != nil {
			b.Fatal(err)
		}
	}
}
