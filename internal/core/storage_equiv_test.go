package core

import (
	"fmt"
	"math"
	"reflect"
	"slices"
	"testing"

	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

// TestStorageEquivalence is the dense-vs-sparse session oracle: two sessions
// with forced storage backends run the same randomized sequence of joins,
// batched joins, leaves, reshaping, persistent failures, recovery, and
// repair over identical Waxman topologies, and after every event all
// observable state — snapshots, SHR tables, work counters, tree cost bits,
// parked sets — must be identical. This is what licenses StorageAuto to flip
// backends by topology size without perturbing any study output.
func TestStorageEquivalence(t *testing.T) {
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := topology.NewRNG(0xC0FFEE00 + uint64(trial))
			n := 30 + rng.Intn(50)
			g, err := topology.Waxman(topology.WaxmanConfig{
				N:               n,
				Alpha:           0.15 + 0.2*rng.Float64(),
				Beta:            topology.DefaultBeta,
				EnsureConnected: true,
			}, rng)
			if err != nil {
				t.Fatal(err)
			}
			src := graph.NodeID(rng.Intn(n))

			cfg := DefaultConfig()
			if trial%2 == 1 {
				cfg.SHRMode = DeferredSHR
			}
			if trial%3 == 0 {
				cfg.Knowledge = QueryScheme
			}
			cfgDense, cfgSparse := cfg, cfg
			cfgDense.TreeStorage = StorageDense
			cfgSparse.TreeStorage = StorageSparse

			sd, err := NewSession(g, src, cfgDense)
			if err != nil {
				t.Fatal(err)
			}
			ss, err := NewSession(g, src, cfgSparse)
			if err != nil {
				t.Fatal(err)
			}
			if sd.Tree().SparseStorage() || !ss.Tree().SparseStorage() {
				t.Fatal("TreeStorage force did not select the requested backend")
			}

			for op := 0; op < 120; op++ {
				r := rng.Float64()
				switch {
				case r < 0.45 || sd.Tree().NumMembers() == 0:
					m := graph.NodeID(rng.Intn(n))
					_, errD := sd.Join(m)
					_, errS := ss.Join(m)
					mustAgree(t, op, "join", errD, errS)
				case r < 0.55:
					var batch []graph.NodeID
					for len(batch) < 3 {
						batch = append(batch, graph.NodeID(rng.Intn(n)))
					}
					_, errsD := sd.JoinBatch(batch)
					_, errsS := ss.JoinBatch(slices.Clone(batch))
					for i := range errsD {
						mustAgree(t, op, "join-batch", errsD[i], errsS[i])
					}
				case r < 0.75:
					ms := sd.Tree().Members()
					m := ms[rng.Intn(len(ms))]
					mustAgree(t, op, "leave", sd.Leave(m), ss.Leave(m))
				case r < 0.82:
					sd.ReshapeAll()
					ss.ReshapeAll()
				case r < 0.94:
					var f failure.Failure
					if es := g.Edges(); rng.Intn(2) == 0 && len(es) > 0 {
						e := es[rng.Intn(len(es))]
						f = failure.LinkDown(e.A, e.B)
					} else {
						v := graph.NodeID(rng.Intn(n))
						if v == src {
							continue
						}
						f = failure.NodeDown(v)
					}
					_, errD := sd.Recover(f)
					_, errS := ss.Recover(f)
					mustAgree(t, op, "recover", errD, errS)
				default:
					_, errD := sd.Repair()
					_, errS := ss.Repair()
					mustAgree(t, op, "repair", errD, errS)
				}
				compareSessions(t, op, sd, ss)
			}
		})
	}
}

func mustAgree(t *testing.T, op int, what string, errD, errS error) {
	t.Helper()
	if (errD == nil) != (errS == nil) || (errD != nil && errD.Error() != errS.Error()) {
		t.Fatalf("op %d: %s diverges: dense=%v sparse=%v", op, what, errD, errS)
	}
}

func compareSessions(t *testing.T, op int, sd, ss *Session) {
	t.Helper()
	if sd.Stats() != ss.Stats() {
		t.Fatalf("op %d: stats diverge:\ndense:  %+v\nsparse: %+v", op, sd.Stats(), ss.Stats())
	}
	snapD, snapS := sd.Snapshot(), ss.Snapshot()
	if !reflect.DeepEqual(snapD, snapS) {
		t.Fatalf("op %d: snapshots diverge:\ndense:  %+v\nsparse: %+v", op, snapD, snapS)
	}
	if !reflect.DeepEqual(sd.SHRSnapshot(), ss.SHRSnapshot()) {
		t.Fatalf("op %d: SHR snapshots diverge", op)
	}
	if !slices.Equal(sd.Parked(), ss.Parked()) {
		t.Fatalf("op %d: parked %v != %v", op, sd.Parked(), ss.Parked())
	}
	cd, _ := sd.Tree().Cost()
	cs, _ := ss.Tree().Cost()
	if math.Float64bits(cd) != math.Float64bits(cs) {
		t.Fatalf("op %d: tree cost %v != %v", op, cd, cs)
	}
	if !slices.Equal(sd.Tree().Edges(), ss.Tree().Edges()) {
		t.Fatalf("op %d: tree edges diverge", op)
	}
	if err := sd.Tree().Validate(); err != nil {
		t.Fatalf("op %d: dense tree invalid: %v", op, err)
	}
	if err := ss.Tree().Validate(); err != nil {
		t.Fatalf("op %d: sparse tree invalid: %v", op, err)
	}
}
