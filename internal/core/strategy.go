package core

import (
	"errors"
	"fmt"
	"slices"

	"smrp/internal/failure"
	"smrp/internal/graph"
)

// RecoveryStrategy is the pluggable restoration seam: it decides how a
// session reconnects members after persistent failures. SMRP's local-detour
// recovery (the paper's protocol) is the default implementation; the
// comparative-testbed baselines — MRC backup routing configurations
// (internal/mrc) and Bhosle–Gonzalez precomputed detours (internal/detour) —
// plug in through Config.Strategy.
//
// A strategy instance is bound to exactly one session: Precompute(s) binds
// and (re)builds any precomputed state, and the session re-invokes it after
// every tree mutation (join, leave, recovery graft), so implementations must
// make it idempotent — memoize against Tree.Epoch() (or a build flag for
// topology-only state) and return fast when nothing changed. Recover and
// StateBytes operate on the bound session.
type RecoveryStrategy interface {
	// Name identifies the strategy in study output and reports.
	Name() string
	// Precompute binds the strategy to s and builds (or incrementally
	// refreshes) its precomputed recovery state. The session calls it at
	// construction and after every tree mutation; it must be idempotent.
	Precompute(s *Session) error
	// Recover restores the bound session after the failure set fs, which
	// has already been folded into the session's accumulated mask (fs is
	// nil on a Reconcile — re-run recovery under the current mask). It
	// must leave the session satisfying the chaos harness's invariant
	// oracle: tree valid, no failed component on tree, every member
	// on-tree XOR parked, and parked members genuinely unreachable.
	Recover(fs []failure.Failure) (*HealReport, error)
	// StateBytes is the deterministic byte accounting of the strategy's
	// precomputed state (fixed per-element sizes, never live heap
	// measurement — the same contract as graph.MemoryFootprint), so the
	// strategies study can publish state overhead as a CI-stable metric.
	StateBytes() int64
}

// smrpStrategy adapts the session's built-in local-detour recovery to the
// RecoveryStrategy interface. It keeps no state of its own: Recover simply
// runs the same reconcile engine a strategy-less session uses, so a session
// configured with NewSMRPStrategy is bit-identical to the default.
type smrpStrategy struct {
	s *Session
}

// NewSMRPStrategy returns the paper's local-detour recovery as an explicit
// strategy. Sessions without a configured strategy use this behavior
// implicitly; configuring it pins the dispatch path without changing any
// output.
func NewSMRPStrategy() RecoveryStrategy { return &smrpStrategy{} }

// Name implements RecoveryStrategy.
func (st *smrpStrategy) Name() string { return "smrp" }

// Precompute binds the session. SMRP precomputes nothing: every detour is
// found reactively by the nearest-survivor search at recovery time.
func (st *smrpStrategy) Precompute(s *Session) error {
	st.s = s
	return nil
}

// Recover implements RecoveryStrategy by delegating to the built-in
// nearest-first reconcile engine.
func (st *smrpStrategy) Recover(fs []failure.Failure) (*HealReport, error) {
	if st.s == nil {
		return nil, fmt.Errorf("core: smrp strategy: %w", ErrUnboundStrategy)
	}
	return st.s.reconcile(fs)
}

// StateBytes implements RecoveryStrategy: SMRP holds no precomputed state.
func (st *smrpStrategy) StateBytes() int64 { return 0 }

// ErrUnboundStrategy is returned when a strategy's Recover runs before
// Precompute bound it to a session.
var ErrUnboundStrategy = errors.New("recovery strategy not bound to a session (Precompute not called)")

// notifyStrategy re-runs the configured strategy's Precompute after a tree
// mutation so precomputed tables (the detour baseline's per-node entries)
// stay current with the tree. Strategies memoize against Tree.Epoch(), so
// the healthy-session hot path pays one interface call and an epoch compare.
// With no strategy configured this is free — the default SMRP path is
// untouched.
func (s *Session) notifyStrategy() {
	if s.cfg.Strategy != nil {
		// A refresh failure must not un-do the mutation that triggered it;
		// the strategy surfaces persistent trouble from its own Recover.
		_ = s.cfg.Strategy.Precompute(s)
	}
}

// dispatchRecover routes one recovery request (failures already folded into
// the accumulated mask) to the configured strategy, or to the built-in SMRP
// reconcile engine when none is set.
func (s *Session) dispatchRecover(fs []failure.Failure) (*HealReport, error) {
	if st := s.cfg.Strategy; st != nil {
		return st.Recover(fs)
	}
	return s.reconcile(fs)
}

// ReconnectFunc is a strategy's per-member recovery answer inside
// RecoverScaffold: propose a residual detour for disconnected member m as a
// path m → … → survivor whose final node is on-tree and unmasked. ok=false
// means the strategy has no (valid) precomputed answer; the scaffold then
// falls back to the live nearest-survivor search and counts the miss in
// Stats.StrategyFallbacks.
type ReconnectFunc func(m graph.NodeID, mask *graph.Mask) (p graph.Path, ok bool)

// RecoverScaffold is the shared recovery skeleton behind the pluggable
// baselines: it flushes tree state dead under the accumulated mask, then
// repeatedly offers every affected member (including previously parked ones
// — a graft can bring an on-tree node back within their reach) to the
// strategy's reconnect function in ascending-ID passes until a pass makes no
// progress, and finally parks whoever is left. Proposed detours are
// sanitized — trimmed at their first live on-tree node and validated against
// the mask — so a stale precomputed entry degrades to a fallback search
// instead of corrupting the tree. Bookkeeping (SHR repair, Condition-I
// baselines, stale-relay pruning, park/readmit accounting) matches the
// built-in reconcile engine exactly.
func (s *Session) RecoverScaffold(fs []failure.Failure, reconnect ReconnectFunc) (*HealReport, error) {
	mask := s.maskOrNil()
	var selfFailed []graph.NodeID
	if mask != nil {
		for _, m := range s.tree.Members() {
			if mask.NodeBlocked(m) {
				selfFailed = append(selfFailed, m)
			}
		}
	}
	disconnected, err := s.FlushDead(mask)
	if err != nil {
		return nil, err
	}
	if len(selfFailed) > 0 {
		disconnected = append(disconnected, selfFailed...)
		slices.Sort(disconnected)
	}
	rep := &HealReport{
		Failures:         fs,
		Disconnected:     disconnected,
		RecoveryDistance: make(map[graph.NodeID]float64),
		Detours:          make(map[graph.NodeID]graph.Path),
	}
	if len(fs) > 0 {
		rep.Failure = fs[0]
	}

	remaining := make(map[graph.NodeID]bool, len(rep.Disconnected)+len(s.parked))
	wasParked := make(map[graph.NodeID]bool, len(s.parked))
	for _, m := range rep.Disconnected {
		if mask.NodeBlocked(m) {
			s.park(m)
			rep.Unrecovered = append(rep.Unrecovered, m)
			continue
		}
		remaining[m] = true
	}
	for m := range s.parked {
		if !mask.NodeBlocked(m) && !s.tree.IsMember(m) {
			remaining[m] = true
			wasParked[m] = true
		}
	}

	var dirty, order []graph.NodeID
	for progress := true; progress && len(remaining) > 0; {
		progress = false
		order = order[:0]
		for m := range remaining {
			order = append(order, m)
		}
		slices.Sort(order)
		for _, m := range order {
			p, rd, ok := s.tryReconnect(m, mask, reconnect)
			if !ok {
				continue
			}
			// p runs member→…→survivor; graft wants survivor→…→member.
			if err := s.tree.Graft(p.Reverse(), true); err != nil {
				return nil, fmt.Errorf("recover: regraft %d: %w", m, err)
			}
			if wasParked[m] {
				delete(s.parked, m)
				s.stats.Readmissions++
				rep.Readmitted = append(rep.Readmitted, m)
			}
			dirty = append(dirty, s.tree.TopAncestor(m))
			rep.RecoveryDistance[m] = rd
			rep.Detours[m] = p
			delete(remaining, m)
			progress = true
		}
	}
	for m := range remaining {
		if wasParked[m] {
			continue // already parked; stays parked
		}
		s.park(m)
		rep.Unrecovered = append(rep.Unrecovered, m)
	}
	slices.Sort(rep.Unrecovered)
	slices.Sort(rep.Readmitted)

	rep.Pruned = s.tree.PruneStale()
	s.shr.refresh(s.tree, dirty...)
	for _, m := range s.tree.Members() {
		if _, ok := s.lastUpSHR[m]; !ok {
			s.recordUpSHR(m)
		}
	}
	s.notifyStrategy()
	return rep, nil
}

// tryReconnect resolves one member inside RecoverScaffold: an already
// re-attached relay becomes a member in place; otherwise the strategy's
// proposal is sanitized and used, and a live nearest-survivor search covers
// strategy misses (counted in Stats.StrategyFallbacks when it succeeds where
// the strategy had no valid answer).
func (s *Session) tryReconnect(m graph.NodeID, mask *graph.Mask, reconnect ReconnectFunc) (graph.Path, float64, bool) {
	if s.tree.OnTree(m) {
		return graph.Path{m}, 0, true
	}
	if p, ok := reconnect(m, mask); ok {
		if sp, rd, valid := s.sanitizeDetour(p, m, mask); valid {
			return sp, rd, true
		}
	}
	accept := func(n graph.NodeID) bool {
		return s.tree.OnTree(n) && !mask.NodeBlocked(n)
	}
	node, p, d, settled := s.g.NearestOfCounted(m, mask, accept)
	s.stats.HealSettled += settled
	if node == graph.Invalid {
		return nil, 0, false
	}
	s.stats.StrategyFallbacks++
	return p, d, true
}

// sanitizeDetour validates a strategy-proposed detour for member m against
// the current session state: the path must start at m, traverse only
// existing, unmasked components, and reach a live on-tree node. It is
// trimmed at the FIRST on-tree node encountered (everything beyond already
// rides the tree) and the recovery distance is recomputed as the weight of
// the kept segment, so the reported RD_R is the distance actually grafted —
// the same semantics as the nearest-survivor search.
func (s *Session) sanitizeDetour(p graph.Path, m graph.NodeID, mask *graph.Mask) (graph.Path, float64, bool) {
	if len(p) == 0 || p[0] != m {
		return nil, 0, false
	}
	var rd float64
	for i, n := range p {
		if mask.NodeBlocked(n) {
			return nil, 0, false
		}
		if i > 0 {
			w, ok := s.g.EdgeWeight(p[i-1], n)
			if !ok || mask.EdgeBlocked(p[i-1], n) {
				return nil, 0, false
			}
			rd += w
			if s.tree.OnTree(n) {
				return p[:i+1], rd, true
			}
		}
	}
	return nil, 0, false // never reached a live on-tree node
}
