package core

import (
	"testing"

	"smrp/internal/failure"
	"smrp/internal/graph"
)

// twoBranchSession builds a fully deterministic session on the 7-node graph
//
//	0 ─1─ 1 ─1─ 2 ─1─ 3 ─1─ 4        (branch A)
//	0 ─1─ 5 ─1─ 6                    (branch B)
//	              3 ─5─ 6            (detour edge)
//
// and joins members 3, 4, 6 in that order, yielding the tree
//
//	0 → 1 → 2 → 3 → 4   (members 3, 4)
//	0 → 5 → 6           (member 6)
//
// with SHR = {1:2, 2:4, 3:6, 4:7, 5:1, 6:2}.
func twoBranchSession(t *testing.T) *Session {
	t.Helper()
	g := graph.New(7)
	for _, e := range []struct {
		u, v graph.NodeID
		w    float64
	}{
		{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1},
		{0, 5, 1}, {5, 6, 1},
		{3, 6, 5},
	} {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewSession(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []graph.NodeID{3, 4, 6} {
		if _, err := s.Join(m); err != nil {
			t.Fatalf("join %d: %v", m, err)
		}
	}
	return s
}

// assertTableMatchesScratch asserts that the session's maintained SHR table
// is exactly the from-scratch Eq. 2 recompute of the current tree.
func assertTableMatchesScratch(t *testing.T, s *Session, op string) {
	t.Helper()
	want := ComputeSHR(s.Tree())
	for n, w := range want {
		got, err := s.SHR(n)
		if err != nil {
			t.Fatalf("%s: SHR(%d): %v", op, n, err)
		}
		if got != w {
			t.Fatalf("%s: maintained SHR(%d) = %d, scratch recompute %d", op, n, got, w)
		}
	}
}

// TestEagerSHRUpdateCountsDirtyNodesOnly pins the new eager-maintenance
// accounting: Stats.SHRUpdates must count exactly the nodes whose SHR value
// changed (the paper's per-event update messages, §3.3.2), not a tree-wide
// rewrite. The expected deltas below are hand-derived from the fixed
// two-branch tree in twoBranchSession.
func TestEagerSHRUpdateCountsDirtyNodesOnly(t *testing.T) {
	s := twoBranchSession(t)
	assertTableMatchesScratch(t, s, "after joins")

	// Leave(4): member 4 is a leaf, so it is pruned off-tree and branch A's
	// surviving nodes 1, 2, 3 each lose one downstream member
	// (SHR 2→1, 4→2, 6→3). Branch B (nodes 5, 6) is untouched, so exactly
	// 3 update messages must be counted — not the old tree-wide 6.
	before := s.Stats().SHRUpdates
	if err := s.Leave(4); err != nil {
		t.Fatal(err)
	}
	if d := s.Stats().SHRUpdates - before; d != 3 {
		t.Fatalf("Leave(4) counted %d SHR updates, want 3 (nodes 1,2,3)", d)
	}
	assertTableMatchesScratch(t, s, "after leave")

	// Heal(link 2-3 down): member 3 is cut off.
	//   FlushDead detaches subtree {3}; branch A's survivors 1, 2 drop to
	//   SHR 0 → 2 updates.
	//   Recovery regrafts 3 via the detour 6-3 into branch B; nodes 5, 6
	//   gain a member (SHR 1→2, 2→4) and 3 gets its new value 5 → 3
	//   updates.
	//   PruneStale then reclaims the stale relays 1, 2 — pruned relays have
	//   N_R = 0, so pruning must contribute 0 updates.
	before = s.Stats().SHRUpdates
	rep, err := s.Recover(failure.LinkDown(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Stats().SHRUpdates - before; d != 5 {
		t.Fatalf("Heal counted %d SHR updates, want 5 (2 flush + 3 regraft)", d)
	}
	assertTableMatchesScratch(t, s, "after heal")

	// Sanity on the heal itself so the accounting above is checking the
	// scenario it claims to: 3 recovered over the weight-5 detour, relays
	// 1 and 2 pruned.
	if len(rep.Disconnected) != 1 || rep.Disconnected[0] != 3 {
		t.Fatalf("disconnected = %v, want [3]", rep.Disconnected)
	}
	if rd := rep.RecoveryDistance[3]; rd != 5 {
		t.Fatalf("RD(3) = %v, want 5", rd)
	}
	if len(rep.Pruned) != 2 || rep.Pruned[0] != 1 || rep.Pruned[1] != 2 {
		t.Fatalf("pruned = %v, want [1 2]", rep.Pruned)
	}
	if want := map[graph.NodeID]int{0: 0, 5: 2, 6: 4, 3: 5}; true {
		got := ComputeSHR(s.Tree())
		if len(got) != len(want) {
			t.Fatalf("post-heal SHR = %v, want %v", got, want)
		}
		for n, w := range want {
			if got[n] != w {
				t.Fatalf("post-heal SHR[%d] = %d, want %d", n, got[n], w)
			}
		}
	}
}

// TestDeferredSHRMemoizesOnEpoch pins the deferred-mode fix that rode along
// with Tree.Epoch(): repeated SHR reads of an unmutated tree must not
// recount SHRComputes — only reads that observe a new tree epoch do.
func TestDeferredSHRMemoizesOnEpoch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SHRMode = DeferredSHR
	g := graph.New(4)
	for _, e := range []struct{ u, v graph.NodeID }{{0, 1}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e.u, e.v, 1); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewSession(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Join(3); err != nil {
		t.Fatal(err)
	}
	base := s.Stats().SHRComputes
	if base == 0 {
		t.Fatal("deferred join performed no SHR computes")
	}
	// Reads without an intervening mutation: memoized, no recount.
	for i := 0; i < 3; i++ {
		if _, err := s.SHR(3); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().SHRComputes; got != base {
		t.Fatalf("reads of unmutated tree recounted SHRComputes: %d → %d", base, got)
	}
	// A mutation invalidates the memo; the next read recounts.
	if _, err := s.Join(2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SHR(2); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().SHRComputes; got <= base {
		t.Fatalf("post-mutation read did not recount SHRComputes (still %d)", got)
	}
}
