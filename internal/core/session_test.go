package core

import (
	"errors"
	"math"
	"testing"

	"smrp/internal/graph"
	"smrp/internal/topology"
)

// Node IDs in the Figure 4 fixture.
const (
	f4S = graph.NodeID(0)
	f4A = graph.NodeID(1)
	f4B = graph.NodeID(2)
	f4D = graph.NodeID(3)
	f4E = graph.NodeID(4)
	f4G = graph.NodeID(5)
	f4F = graph.NodeID(6)
	f4C = graph.NodeID(7)
)

func fig4Session(t *testing.T, cfg Config) *Session {
	t.Helper()
	g, err := topology.PaperFig4()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(g, f4S, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSessionValidation(t *testing.T) {
	g, err := topology.PaperFig4()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession(g, 0, Config{DThresh: -1, Knowledge: FullTopology, SHRMode: EagerSHR}); err == nil {
		t.Error("negative DThresh should fail validation")
	}
	if _, err := NewSession(g, 0, Config{DThresh: 0.3}); err == nil {
		t.Error("zero-value Knowledge/SHRMode should fail validation")
	}
	if _, err := NewSession(g, 99, DefaultConfig()); err == nil {
		t.Error("source outside graph should fail")
	}
}

func TestConfigStringers(t *testing.T) {
	if FullTopology.String() != "full-topology" || QueryScheme.String() != "query-scheme" {
		t.Error("Knowledge String mismatch")
	}
	if EagerSHR.String() != "eager" || DeferredSHR.String() != "deferred" {
		t.Error("SHRMode String mismatch")
	}
	if Knowledge(0).String() == "" || SHRMode(0).String() == "" {
		t.Error("unknown enum values should still render")
	}
}

// TestPaperFigure4Sequence replays the paper's worked example (§3.2.2,
// Figure 4, and the Figure 5 reshaping) and checks every narrated decision:
//
//  1. E joins via the shortest path S→A→D→E; SHR(S,D) becomes 2.
//  2. G prefers G→B→S (merger S, SHR 0) over the shorter G→F→D→A→S.
//  3. F's S-merging options exceed (1+0.3)·SPF, so F joins via D;
//     SHR(S,D) rises from 2 to 4.
//  4. Condition I fires at E, which reshapes to E→C→A→S (merger A).
func TestPaperFigure4Sequence(t *testing.T) {
	s := fig4Session(t, DefaultConfig())

	// Step 1: E joins.
	resE, err := s.Join(f4E)
	if err != nil {
		t.Fatalf("join E: %v", err)
	}
	if resE.Merger != f4S {
		t.Errorf("E merger = %d, want S", resE.Merger)
	}
	if resE.Connection.String() != "0→1→3→4" {
		t.Errorf("E path = %v, want S→A→D→E", resE.Connection)
	}
	if shr, _ := s.SHR(f4D); shr != 2 {
		t.Errorf("SHR(S,D) after E = %d, want 2", shr)
	}

	// Step 2: G joins, preferring the less-shared longer path.
	resG, err := s.Join(f4G)
	if err != nil {
		t.Fatalf("join G: %v", err)
	}
	if resG.Merger != f4S {
		t.Errorf("G merger = %d, want S", resG.Merger)
	}
	if resG.Connection.String() != "0→2→5" {
		t.Errorf("G path = %v, want S→B→G", resG.Connection)
	}
	if resG.MergerSHR != 0 {
		t.Errorf("G merger SHR = %d, want 0", resG.MergerSHR)
	}
	if !resG.WithinBound {
		t.Error("G's path should satisfy the D_thresh bound")
	}
	// Sanity: a strictly shorter path existed.
	if resG.Delay <= resG.SPFDelay {
		t.Errorf("G delay %v should exceed SPF %v (traded for disjointness)", resG.Delay, resG.SPFDelay)
	}

	// Step 3: F joins via D because the disjoint options exceed the bound.
	resF, err := s.Join(f4F)
	if err != nil {
		t.Fatalf("join F: %v", err)
	}
	if resF.Merger != f4D {
		t.Errorf("F merger = %d, want D", resF.Merger)
	}
	if resF.Connection.String() != "3→6" {
		t.Errorf("F path = %v, want D→F", resF.Connection)
	}

	// Step 4: Condition I reshaped E onto the C branch (Figure 5).
	if len(resF.Reshaped) != 1 || resF.Reshaped[0] != f4E {
		t.Fatalf("reshaped = %v, want [E]", resF.Reshaped)
	}
	if p, _ := s.Tree().Parent(f4E); p != f4C {
		t.Errorf("E's parent after reshape = %d, want C", p)
	}
	pathE, err := s.Tree().PathToSource(f4E)
	if err != nil || pathE.String() != "4→7→1→0" {
		t.Errorf("E path after reshape = %v (%v), want E→C→A→S", pathE, err)
	}

	// Final SHR values on the reshaped tree.
	wantSHR := map[graph.NodeID]int{f4S: 0, f4A: 2, f4D: 3, f4F: 4, f4C: 3, f4E: 4, f4B: 1, f4G: 2}
	for n, want := range wantSHR {
		got, err := s.SHR(n)
		if err != nil {
			t.Fatalf("SHR(%d): %v", n, err)
		}
		if got != want {
			t.Errorf("SHR(S,%d) = %d, want %d", n, got, want)
		}
	}
	if err := s.Tree().Validate(); err != nil {
		t.Errorf("tree invariant: %v", err)
	}
	st := s.Stats()
	if st.Joins != 3 || st.Reshapes != 1 {
		t.Errorf("stats = %+v, want 3 joins / 1 reshape", st)
	}
}

// TestFigure2DisjointPaths replays the Figure 1/2 contrast: with a generous
// D_thresh SMRP builds disjoint paths for C and D, so the worst-case failure
// L_SA disconnects only one of them.
func TestFigure2DisjointPaths(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DThresh = 1.0
	s, err := NewSession(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// C = 3, D = 4 in the fixture.
	if _, err := s.Join(3); err != nil {
		t.Fatal(err)
	}
	resD, err := s.Join(4)
	if err != nil {
		t.Fatal(err)
	}
	if resD.Merger != 0 {
		t.Errorf("D merger = %d, want S (disjoint path)", resD.Merger)
	}
	pD, _ := s.Tree().PathToSource(4)
	if pD.String() != "4→2→0" {
		t.Errorf("D path = %v, want D→B→S", pD)
	}
	pC, _ := s.Tree().PathToSource(3)
	if pC.String() != "3→1→0" {
		t.Errorf("C path = %v, want C→A→S", pC)
	}
}

func TestTightBoundDegradesToSPF(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DThresh = 0 // no slack: every join must take its shortest path
	s, err := NewSession(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []graph.NodeID{3, 4} {
		res, err := s.Join(m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Delay-res.SPFDelay) > 1e-9 {
			t.Errorf("member %d delay %v != SPF %v under DThresh=0", m, res.Delay, res.SPFDelay)
		}
	}
}

func TestJoinErrors(t *testing.T) {
	s := fig4Session(t, DefaultConfig())
	if _, err := s.Join(99); err == nil {
		t.Error("join of unknown node should fail")
	}
	if _, err := s.Join(f4E); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Join(f4E); !errors.Is(err, ErrAlreadyMember) {
		t.Errorf("duplicate join err = %v", err)
	}
}

func TestJoinDisconnectedNode(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Join(2); !errors.Is(err, ErrNoPath) {
		t.Errorf("join of unreachable node err = %v", err)
	}
}

func TestJoinOnTreeRelayBecomesMember(t *testing.T) {
	s := fig4Session(t, DefaultConfig())
	if _, err := s.Join(f4E); err != nil {
		t.Fatal(err)
	}
	// A (1) is now a relay on E's path; it can become a member in place.
	res, err := s.Join(f4A)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merger != f4A || len(res.Connection) != 1 {
		t.Errorf("in-place join = %+v", res)
	}
	if !s.Tree().IsMember(f4A) {
		t.Error("A should be a member")
	}
}

func TestSourceCanJoinAsMember(t *testing.T) {
	s := fig4Session(t, DefaultConfig())
	res, err := s.Join(f4S)
	if err != nil {
		t.Fatalf("source join: %v", err)
	}
	if res.Merger != f4S || res.Delay != 0 {
		t.Errorf("source join result = %+v", res)
	}
}

func TestLeave(t *testing.T) {
	s := fig4Session(t, DefaultConfig())
	for _, m := range []graph.NodeID{f4E, f4G, f4F} {
		if _, err := s.Join(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Leave(f4G); err != nil {
		t.Fatal(err)
	}
	if s.Tree().OnTree(f4G) || s.Tree().OnTree(f4B) {
		t.Error("G's exclusive branch should be pruned")
	}
	if err := s.Leave(f4G); err == nil {
		t.Error("double leave should fail")
	}
	if err := s.Tree().Validate(); err != nil {
		t.Error(err)
	}
	if s.Stats().Leaves != 1 {
		t.Errorf("Leaves = %d", s.Stats().Leaves)
	}
}

func TestSHRAccessors(t *testing.T) {
	s := fig4Session(t, DefaultConfig())
	if _, err := s.SHR(f4E); err == nil {
		t.Error("SHR of off-tree node should error")
	}
	if _, err := s.Join(f4E); err != nil {
		t.Fatal(err)
	}
	snap := s.SHRSnapshot()
	if snap[f4S] != 0 || snap[f4E] != 3 {
		t.Errorf("snapshot = %v", snap)
	}
	// Mutating the returned snapshot must not affect the session.
	snap[f4S] = 99
	if v, _ := s.SHR(f4S); v != 0 {
		t.Error("snapshot mutation leaked into session")
	}
}

// TestSHRRecurrenceInvariant property-checks Eq. (2) of the paper on random
// sessions: SHR(S,R) == SHR(S,R_u) + N_R for every on-tree node.
func TestSHRRecurrenceInvariant(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		rng := topology.NewRNG(seed)
		g, err := topology.Waxman(topology.WaxmanConfig{
			N: 60, Alpha: 0.2, Beta: topology.DefaultBeta, EnsureConnected: true,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSession(g, 0, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range rng.Sample(59, 15) {
			if _, err := s.Join(graph.NodeID(m + 1)); err != nil {
				t.Fatalf("seed %d: join %d: %v", seed, m+1, err)
			}
		}
		tr := s.Tree()
		shr := s.SHRSnapshot()
		counts := tr.MemberCounts()
		for _, n := range tr.Nodes() {
			if n == tr.Source() {
				if shr[n] != 0 {
					t.Errorf("seed %d: SHR(S,S) = %d", seed, shr[n])
				}
				continue
			}
			p, _ := tr.Parent(n)
			if shr[n] != shr[p]+counts[n] {
				t.Errorf("seed %d: SHR(%d)=%d != SHR(%d)=%d + N=%d",
					seed, n, shr[n], p, shr[p], counts[n])
			}
		}
	}
}

// TestDelayBoundInvariant checks that every member admitted within bound
// satisfies D(S,m) ≤ (1+DThresh)·SPF at join time.
func TestDelayBoundInvariant(t *testing.T) {
	for seed := uint64(10); seed < 14; seed++ {
		rng := topology.NewRNG(seed)
		g, err := topology.Waxman(topology.WaxmanConfig{
			N: 80, Alpha: 0.2, Beta: topology.DefaultBeta, EnsureConnected: true,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.ReshapeDelta = 0 // isolate the join decision
		s, err := NewSession(g, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range rng.Sample(79, 25) {
			res, err := s.Join(graph.NodeID(m + 1))
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !res.WithinBound || len(res.Connection) == 1 {
				// In-place joins (the node was already an on-tree relay)
				// inherit the existing path, which is not re-selected.
				continue
			}
			bound := (1 + cfg.DThresh) * res.SPFDelay
			if res.Delay > bound+1e-6 {
				t.Errorf("seed %d: member %d delay %v exceeds bound %v", seed, m+1, res.Delay, bound)
			}
		}
	}
}

// TestReshapeAllConditionII checks the periodic re-selection: after heavy
// churn, ReshapeAll must only ever improve (or keep) each member's merger
// SHR and must preserve tree invariants.
func TestReshapeAllConditionII(t *testing.T) {
	rng := topology.NewRNG(77)
	g, err := topology.Waxman(topology.WaxmanConfig{
		N: 60, Alpha: 0.2, Beta: topology.DefaultBeta, EnsureConnected: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ReshapeDelta = 0 // Condition I off; exercise Condition II alone
	s, err := NewSession(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := rng.Sample(59, 20)
	for _, m := range ids {
		if _, err := s.Join(graph.NodeID(m + 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Churn: half of them leave.
	for _, m := range ids[:10] {
		if err := s.Leave(graph.NodeID(m + 1)); err != nil {
			t.Fatal(err)
		}
	}
	moved := s.ReshapeAll()
	if err := s.Tree().Validate(); err != nil {
		t.Fatalf("after ReshapeAll: %v", err)
	}
	// A second immediate pass should move (almost) nothing: reshaping must
	// not oscillate.
	moved2 := s.ReshapeAll()
	if len(moved2) > len(moved) {
		t.Errorf("second ReshapeAll moved %d members (first: %d) — oscillation?", len(moved2), len(moved))
	}
	third := s.ReshapeAll()
	if len(third) != 0 {
		t.Errorf("third ReshapeAll still moved %v — not converging", third)
	}
}

func TestReshapeAllDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PeriodicReshape = false
	s := fig4Session(t, cfg)
	if _, err := s.Join(f4E); err != nil {
		t.Fatal(err)
	}
	if got := s.ReshapeAll(); got != nil {
		t.Errorf("ReshapeAll with PeriodicReshape=false = %v", got)
	}
}

func TestDeferredSHRMatchesEager(t *testing.T) {
	mkSession := func(mode SHRMode) *Session {
		cfg := DefaultConfig()
		cfg.SHRMode = mode
		return fig4Session(t, cfg)
	}
	eager, deferred := mkSession(EagerSHR), mkSession(DeferredSHR)
	for _, m := range []graph.NodeID{f4E, f4G, f4F} {
		if _, err := eager.Join(m); err != nil {
			t.Fatal(err)
		}
		if _, err := deferred.Join(m); err != nil {
			t.Fatal(err)
		}
	}
	es, ds := eager.SHRSnapshot(), deferred.SHRSnapshot()
	if len(es) != len(ds) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(es), len(ds))
	}
	for n, v := range es {
		if ds[n] != v {
			t.Errorf("SHR(%d): eager %d, deferred %d", n, v, ds[n])
		}
	}
	// The overhead profile must differ per §3.3.2: eager does tree-wide
	// updates, deferred only on-demand computes.
	if eager.Stats().SHRUpdates == 0 || eager.Stats().SHRComputes != 0 {
		t.Errorf("eager stats = %+v", eager.Stats())
	}
	if deferred.Stats().SHRUpdates != 0 || deferred.Stats().SHRComputes == 0 {
		t.Errorf("deferred stats = %+v", deferred.Stats())
	}
}

func TestQuerySchemeJoins(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Knowledge = QueryScheme
	s := fig4Session(t, cfg)
	for _, m := range []graph.NodeID{f4E, f4G, f4F} {
		if _, err := s.Join(m); err != nil {
			t.Fatalf("query-scheme join %d: %v", m, err)
		}
	}
	if err := s.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().QueryMessages == 0 {
		t.Error("query scheme should have sent query messages")
	}
	for _, m := range []graph.NodeID{f4E, f4G, f4F} {
		if !s.Tree().IsMember(m) {
			t.Errorf("member %d missing", m)
		}
	}
}

// TestQuerySchemeOnRandomGraphs checks the partial-knowledge scheme still
// always connects members on larger graphs.
func TestQuerySchemeOnRandomGraphs(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		rng := topology.NewRNG(seed)
		g, err := topology.Waxman(topology.WaxmanConfig{
			N: 60, Alpha: 0.25, Beta: topology.DefaultBeta, EnsureConnected: true,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Knowledge = QueryScheme
		s, err := NewSession(g, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range rng.Sample(59, 15) {
			if _, err := s.Join(graph.NodeID(m + 1)); err != nil {
				t.Fatalf("seed %d: join %d: %v", seed, m+1, err)
			}
		}
		if err := s.Tree().Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
