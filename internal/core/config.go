// Package core implements SMRP, the Survivable Multicast Routing Protocol of
// Wu & Shin (DSN 2005): multicast tree construction that minimizes path
// sharing (the SHR metric) subject to a bounded end-to-end delay
// ((1+D_thresh)·SPF), plus member join/leave, tree reshaping, and
// local-detour failure recovery.
//
// The package exposes an algorithmic, synchronous Session; the message-level
// protocol driven by the discrete-event simulator lives in
// internal/protocol and delegates its decisions to this package.
package core

import (
	"errors"
	"fmt"
)

// ErrBadConfig is wrapped by every Config.Validate error, so callers can
// match invalid-parameter failures with errors.Is without depending on
// message text.
var ErrBadConfig = errors.New("core: invalid configuration")

// Knowledge selects how a joining member learns about on-tree nodes
// (§3.3.1 of the paper).
type Knowledge int

// Knowledge modes. Enum starts at 1 so the zero value is caught by
// validation.
const (
	// FullTopology assumes every member knows the network topology and can
	// enumerate all candidate paths (the paper's base assumption, §3.2.2).
	FullTopology Knowledge = iota + 1
	// QueryScheme uses the neighbor-relayed query of §3.3.1: each neighbor
	// forwards a query along its unicast shortest path to the source and the
	// first on-tree node hit answers with its SHR. Candidates are partial,
	// so path selection may be suboptimal.
	QueryScheme
)

// String implements fmt.Stringer.
func (k Knowledge) String() string {
	switch k {
	case FullTopology:
		return "full-topology"
	case QueryScheme:
		return "query-scheme"
	default:
		return fmt.Sprintf("Knowledge(%d)", int(k))
	}
}

// SHRMode selects how SHR values are maintained (§3.3.2).
type SHRMode int

// SHR maintenance modes. Enum starts at 1 so the zero value is caught by
// validation.
const (
	// EagerSHR propagates SHR updates tree-wide on every membership change.
	EagerSHR SHRMode = iota + 1
	// DeferredSHR recomputes SHR values only when a join/reshape actually
	// needs them, amortizing maintenance into the join process.
	DeferredSHR
)

// String implements fmt.Stringer.
func (m SHRMode) String() string {
	switch m {
	case EagerSHR:
		return "eager"
	case DeferredSHR:
		return "deferred"
	default:
		return fmt.Sprintf("SHRMode(%d)", int(m))
	}
}

// TreeStorage selects the session's tree-state backend.
type TreeStorage int

// Tree-storage modes. The zero value (StorageAuto) preserves historical
// behaviour on every pre-existing configuration: topologies below
// SparseNodeThreshold get the dense backend, which is byte-identical to all
// prior releases.
const (
	// StorageAuto picks dense storage below SparseNodeThreshold nodes and
	// sparse storage at or above it.
	StorageAuto TreeStorage = iota
	// StorageDense forces NodeID-indexed arrays: O(topology) standing bytes
	// per session, single-load state access.
	StorageDense
	// StorageSparse forces the compact touched-node remap: O(|tree| +
	// |members|) standing bytes per session, a hash probe per state access.
	// Behaviour is pinned bit-identical to dense by the equivalence oracles.
	StorageSparse
)

// SparseNodeThreshold is the StorageAuto cutover: sessions on topologies
// with at least this many nodes default to sparse tree storage. The value
// sits far above every small-scale study topology (so their blessed outputs
// are untouched) and below the megascale tier, where dense per-session
// arrays are what capped the session count.
const SparseNodeThreshold = 32768

// String implements fmt.Stringer.
func (s TreeStorage) String() string {
	switch s {
	case StorageAuto:
		return "auto"
	case StorageDense:
		return "dense"
	case StorageSparse:
		return "sparse"
	default:
		return fmt.Sprintf("TreeStorage(%d)", int(s))
	}
}

// Config parameterizes an SMRP session.
type Config struct {
	// DThresh bounds candidate path length: a candidate is admissible when
	// its end-to-end delay is at most (1+DThresh) times the unicast
	// shortest-path delay between source and the joining member. 0 degrades
	// SMRP to pure SPF joins.
	DThresh float64

	// ReshapeDelta is the Condition-I trigger threshold: a member initiates
	// reshaping once the SHR of its upstream node has grown by more than
	// ReshapeDelta since the member's last (re)selection. <= 0 disables
	// Condition I.
	ReshapeDelta int

	// PeriodicReshape enables Condition II: Session.ReshapeAll re-runs path
	// selection for every member (the protocol layer drives this from a
	// timer).
	PeriodicReshape bool

	// Knowledge selects full-topology or query-scheme candidate discovery.
	Knowledge Knowledge

	// SHRMode selects eager or deferred SHR maintenance.
	SHRMode SHRMode

	// TreeStorage selects the tree-state backend. The zero value
	// (StorageAuto) chooses dense arrays below SparseNodeThreshold nodes
	// and the O(|tree|) sparse remap above it; StorageDense/StorageSparse
	// force a backend. Both backends are bit-identical in behaviour — the
	// choice only moves the standing-memory/access-cost tradeoff.
	TreeStorage TreeStorage

	// Strategy selects the failure-recovery implementation. nil (the
	// default) is SMRP's local-detour recovery, unchanged from every prior
	// release; NewSMRPStrategy pins the same behavior explicitly through
	// the strategy seam, and the comparative baselines (MRC backup
	// configurations, Bhosle–Gonzalez precomputed detours) plug in here.
	// A strategy instance is bound to one session: NewSession calls
	// Strategy.Precompute and the session re-invokes it after every tree
	// mutation, so do not share an instance between sessions.
	Strategy RecoveryStrategy
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation: D_thresh = 0.3, Condition I with a delta of 2 (the Figure-5
// example triggers on an increase of 2), full topology knowledge, eager SHR.
func DefaultConfig() Config {
	return Config{
		DThresh:         0.3,
		ReshapeDelta:    2,
		PeriodicReshape: true,
		Knowledge:       FullTopology,
		SHRMode:         EagerSHR,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.DThresh < 0 {
		return fmt.Errorf("%w: DThresh = %v must be non-negative", ErrBadConfig, c.DThresh)
	}
	switch c.Knowledge {
	case FullTopology, QueryScheme:
	default:
		return fmt.Errorf("%w: Knowledge must be FullTopology or QueryScheme", ErrBadConfig)
	}
	switch c.SHRMode {
	case EagerSHR, DeferredSHR:
	default:
		return fmt.Errorf("%w: SHRMode must be EagerSHR or DeferredSHR", ErrBadConfig)
	}
	switch c.TreeStorage {
	case StorageAuto, StorageDense, StorageSparse:
	default:
		return fmt.Errorf("%w: TreeStorage must be StorageAuto, StorageDense, or StorageSparse", ErrBadConfig)
	}
	return nil
}

// Stats counts protocol work performed by a session; the overhead ablations
// (§3.3.2) compare these across configurations.
type Stats struct {
	Joins          int // successful member joins
	Leaves         int // successful member departures
	Reshapes       int // path switches actually performed
	ReshapeChecks  int // reshaping evaluations (triggered or periodic)
	SHRUpdates     int // per-node SHR writes under eager maintenance
	SHRComputes    int // on-demand SHR evaluations under deferred maintenance
	QueryMessages  int // query-scheme messages sent (neighbor relays)
	CandidatesSeen int // total candidates examined during path selections
	Parks          int // members degraded to the parked state (partitioned)
	Readmissions   int // parked members automatically re-admitted

	// StrategyFallbacks counts recoveries where the configured strategy's
	// precomputed answer was missing or invalidated by the accumulated
	// failures and RecoverScaffold's live nearest-survivor search stood in
	// — the strategies study's "table miss" column. Always 0 for the
	// default (SMRP) recovery, which is reactive by design.
	StrategyFallbacks int

	// BatchJoins counts members admitted through JoinBatch (a subset of
	// Joins). EnumSettled tallies nodes settled by candidate-enumeration
	// sweeps — the settled-node counter is the repository's CI-stable unit of
	// SPF work (wall-clock is noise on shared single-core runners), and the
	// batched join path's bounded sweeps show up here as a reduction against
	// the one-at-a-time reference.
	BatchJoins  int
	EnumSettled int

	// HealSettled tallies nodes settled by the failure-recovery sweeps
	// (nearest-survivor searches during Heal/Reconcile/RecoverMember). It is
	// the per-recovery-event analogue of EnumSettled: the CI-stable measure
	// of how much of the network a recovery touches, which the megascale
	// study compares between the flat and hierarchical architectures.
	HealSettled int
}
