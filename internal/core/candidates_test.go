package core

import (
	"testing"

	"smrp/internal/graph"
	"smrp/internal/multicast"
	"smrp/internal/topology"
)

// denseSHRFor computes a fresh dense SHR table for t, the shape the
// enumerators consume since the map-based table was retired.
func denseSHRFor(t *multicast.Tree) shrVals {
	vals, _ := computeSHRInto(t, shrVals{}, nil)
	return vals
}

func TestSelectCandidateCriterion(t *testing.T) {
	cands := []Candidate{
		{Merger: 1, TotalDelay: 10, SHR: 3},
		{Merger: 2, TotalDelay: 12, SHR: 1},
		{Merger: 3, TotalDelay: 11, SHR: 1},
		{Merger: 4, TotalDelay: 30, SHR: 0}, // outside the bound
	}
	got, ok := selectCandidate(cands, 10, 0.3) // bound = 13
	if !ok {
		t.Fatal("feasible candidates exist")
	}
	// Min SHR among feasible is 1; tie broken by delay → merger 3.
	if got.Merger != 3 {
		t.Errorf("selected merger %d, want 3", got.Merger)
	}
}

func TestSelectCandidateTieOnMergerID(t *testing.T) {
	cands := []Candidate{
		{Merger: 7, TotalDelay: 10, SHR: 2},
		{Merger: 4, TotalDelay: 10, SHR: 2},
	}
	got, ok := selectCandidate(cands, 10, 0.5)
	if !ok || got.Merger != 4 {
		t.Errorf("tie break by merger ID failed: %+v, %v", got, ok)
	}
}

func TestSelectCandidateFallback(t *testing.T) {
	cands := []Candidate{
		{Merger: 1, TotalDelay: 20, SHR: 5},
		{Merger: 2, TotalDelay: 18, SHR: 9},
	}
	got, ok := selectCandidate(cands, 10, 0.3) // bound 13: nothing feasible
	if ok {
		t.Fatal("no candidate should be within bound")
	}
	// Fallback picks the fastest, regardless of SHR.
	if got.Merger != 2 {
		t.Errorf("fallback merger = %d, want 2", got.Merger)
	}
}

func TestEnumerateFullMergersAreExact(t *testing.T) {
	// On the Figure 4 tree after E joined (S-A-D-E), F's candidates must
	// merge exactly at their stated node: each connection's only on-tree
	// node is the merger.
	g, err := topology.PaperFig4()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := multicast.New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Graft(graph.Path{0, 1, 3, 4}, true); err != nil {
		t.Fatal(err)
	}
	shr := ComputeSHR(tr)
	cands := enumerateFull(tr, f4F, denseSHRFor(tr), nil, nil)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	seen := map[graph.NodeID]bool{}
	for _, c := range cands {
		if seen[c.Merger] {
			t.Errorf("duplicate merger %d", c.Merger)
		}
		seen[c.Merger] = true
		if c.Connection.First() != c.Merger || c.Connection.Last() != f4F {
			t.Errorf("connection endpoints wrong: %v", c.Connection)
		}
		for _, n := range c.Connection[1:] {
			if n != f4F && tr.OnTree(n) {
				t.Errorf("connection %v passes through on-tree node %d", c.Connection, n)
			}
		}
		if err := c.Connection.Validate(g); err != nil {
			t.Errorf("invalid connection: %v", err)
		}
		w, err := c.Connection.Weight(g)
		if err != nil || w != c.ConnDelay {
			t.Errorf("conn delay mismatch: %v vs %v", w, c.ConnDelay)
		}
		td, err := tr.DelayTo(c.Merger)
		if err != nil || td+c.ConnDelay != c.TotalDelay {
			t.Errorf("total delay mismatch for merger %d", c.Merger)
		}
		if c.SHR != shr[c.Merger] {
			t.Errorf("SHR mismatch for merger %d", c.Merger)
		}
	}
}

func TestEnumerateFullRespectsExtraMask(t *testing.T) {
	g, err := topology.PaperFig4()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := multicast.New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Graft(graph.Path{0, 1, 3, 4}, true); err != nil {
		t.Fatal(err)
	}
	shr := denseSHRFor(tr)
	mask := graph.NewMask().BlockNode(f4D)
	for _, c := range enumerateFull(tr, f4F, shr, mask, nil) {
		if c.Merger == f4D || c.Connection.ContainsNode(f4D) {
			t.Errorf("masked node appeared in candidate %v", c.Connection)
		}
	}
}

func TestEnumerateQueryCoverageSubset(t *testing.T) {
	// Query-scheme candidates are a subset of the full candidate mergers'
	// node set (every query answer is a real on-tree node) and carry
	// consistent bookkeeping.
	g, err := topology.PaperFig4()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := multicast.New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Graft(graph.Path{0, 1, 3, 4}, true); err != nil {
		t.Fatal(err)
	}
	shr := denseSHRFor(tr)
	var st Stats
	cands := enumerateQuery(tr, f4G, shr, nil, &st)
	if len(cands) == 0 {
		t.Fatal("query scheme found nothing")
	}
	if st.QueryMessages == 0 {
		t.Error("no query messages counted")
	}
	for _, c := range cands {
		if !tr.OnTree(c.Merger) {
			t.Errorf("merger %d not on tree", c.Merger)
		}
		if c.Connection.First() != c.Merger || c.Connection.Last() != f4G {
			t.Errorf("connection endpoints wrong: %v", c.Connection)
		}
		if err := c.Connection.Validate(g); err != nil {
			t.Errorf("invalid connection: %v", err)
		}
	}
}

func TestComputeSHREmptyTree(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := multicast.New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	shr := ComputeSHR(tr)
	if len(shr) != 1 || shr[0] != 0 {
		t.Errorf("SHR of bare tree = %v", shr)
	}
}
