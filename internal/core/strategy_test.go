package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

// TestSMRPStrategyEquivalence pins the api_redesign's zero-behavior-change
// guarantee: a session configured with the explicit SMRP strategy must
// reproduce, bit-exactly, every Heal/HealSet/Repair/Reconcile report and the
// final session state of a default (nil-Strategy) session across randomized
// failure schedules.
func TestSMRPStrategyEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		seed    uint64
		n       int
		members int
	}{
		{"small-sparse", 0x51AA, 24, 5},
		{"medium", 0x51AB, 40, 8},
		{"dense-members", 0x51AC, 60, 12},
		{"large", 0x51AD, 80, 10},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := topology.NewRNG(tc.seed)
			g, err := topology.Waxman(topology.WaxmanConfig{
				N: tc.n, Alpha: 0.2, Beta: 0.35, EnsureConnected: true,
			}, rng)
			if err != nil {
				t.Fatal(err)
			}
			g.EnableSPFCache()
			source := graph.NodeID(0)
			for n := 1; n < g.NumNodes(); n++ {
				if g.Degree(graph.NodeID(n)) > g.Degree(source) {
					source = graph.NodeID(n)
				}
			}
			var members []graph.NodeID
			for _, id := range rng.Sample(tc.n, tc.members+1) {
				if graph.NodeID(id) != source && len(members) < tc.members {
					members = append(members, graph.NodeID(id))
				}
			}
			sched, err := failure.RandomSchedule(g, source, members, failure.DefaultChaosConfig(), rng)
			if err != nil {
				t.Fatal(err)
			}

			def, err := NewSession(g, source, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.Strategy = NewSMRPStrategy()
			strat, err := NewSession(g, source, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, sess := range []*Session{def, strat} {
				_, joinErrs := sess.JoinBatch(members)
				for i, err := range joinErrs {
					if err != nil {
						t.Fatalf("join %d: %v", members[i], err)
					}
				}
			}

			for k, ev := range sched.Events {
				if len(ev.Failures) > 0 {
					// The deprecated entry point on the default session, the
					// blessed one on the strategy session: both must produce
					// the same report through the same reconcile engine.
					repA, errA := def.Recover(ev.Failures...)
					repB, errB := strat.Recover(ev.Failures...)
					if (errA == nil) != (errB == nil) {
						t.Fatalf("event %d: heal err %v vs strategy err %v", k, errA, errB)
					}
					if errA != nil {
						continue
					}
					if !reflect.DeepEqual(repA, repB) {
						t.Fatalf("event %d: heal reports diverge:\ndefault:  %+v\nstrategy: %+v", k, repA, repB)
					}
				}
				if len(ev.Repairs) > 0 {
					repA, errA := def.Repair(ev.Repairs...)
					repB, errB := strat.Repair(ev.Repairs...)
					if (errA == nil) != (errB == nil) {
						t.Fatalf("event %d: repair err %v vs %v", k, errA, errB)
					}
					if errA == nil && !reflect.DeepEqual(repA, repB) {
						t.Fatalf("event %d: repair reports diverge:\ndefault:  %+v\nstrategy: %+v", k, repA, repB)
					}
				}
				if k%3 == 0 {
					repA, errA := def.Reconcile()
					repB, errB := strat.Reconcile()
					if (errA == nil) != (errB == nil) {
						t.Fatalf("event %d: reconcile err %v vs %v", k, errA, errB)
					}
					if errA == nil && !reflect.DeepEqual(repA, repB) {
						t.Fatalf("event %d: reconcile reports diverge", k)
					}
				}
				if diff := sessionDiff(def, strat); diff != "" {
					t.Fatalf("event %d: sessions diverge: %s", k, diff)
				}
			}
			if def.Stats() != strat.Stats() {
				t.Errorf("stats diverge:\ndefault:  %+v\nstrategy: %+v", def.Stats(), strat.Stats())
			}
		})
	}
}

// sessionDiff compares the externally observable state of two sessions and
// describes the first divergence ("" when identical).
func sessionDiff(a, b *Session) string {
	ta, tb := a.Tree(), b.Tree()
	na, nb := ta.Nodes(), tb.Nodes()
	if !reflect.DeepEqual(na, nb) {
		return fmt.Sprintf("tree nodes %v vs %v", na, nb)
	}
	if ma, mb := ta.Members(), tb.Members(); !reflect.DeepEqual(ma, mb) {
		return fmt.Sprintf("members %v vs %v", ma, mb)
	}
	for _, n := range na {
		pa, oka := ta.Parent(n)
		pb, okb := tb.Parent(n)
		if pa != pb || oka != okb {
			return fmt.Sprintf("parent of %d: %d vs %d", n, pa, pb)
		}
	}
	if pa, pb := a.Parked(), b.Parked(); !reflect.DeepEqual(pa, pb) {
		return fmt.Sprintf("parked %v vs %v", pa, pb)
	}
	return ""
}

// TestStrategyDispatch verifies the seam's plumbing: a configured strategy
// receives Recover calls, the Strategy accessor reflects the configuration,
// and an unbound strategy reports ErrUnboundStrategy.
func TestStrategyDispatch(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Strategy = NewSMRPStrategy()
	s, err := NewSession(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Strategy().Name(); got != "smrp" {
		t.Errorf("Strategy().Name() = %q, want smrp", got)
	}
	// Default sessions expose the implicit SMRP strategy through the same
	// accessor.
	d, err := NewSession(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Strategy().Name(); got != "smrp" {
		t.Errorf("default Strategy().Name() = %q, want smrp", got)
	}
	if got := d.Strategy().StateBytes(); got != 0 {
		t.Errorf("SMRP StateBytes = %d, want 0", got)
	}

	unbound := NewSMRPStrategy()
	if _, err := unbound.Recover(nil); !errors.Is(err, ErrUnboundStrategy) {
		t.Errorf("unbound Recover error = %v, want ErrUnboundStrategy", err)
	}
}

// TestRecoverEmptySet pins the blessed entry point's argument contract.
func TestRecoverEmptySet(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(); !errors.Is(err, failure.ErrBadSchedule) {
		t.Errorf("Recover() error = %v, want ErrBadSchedule", err)
	}
}
