package core

import (
	"slices"

	"smrp/internal/graph"
	"smrp/internal/multicast"
)

// Candidate is one admissible way for a joining node to connect to the
// multicast tree: merge at on-tree node Merger via Connection.
type Candidate struct {
	// Merger is the on-tree node where the new path merges into the tree
	// (R_i in the paper).
	Merger graph.NodeID
	// Connection is the off-tree path from Merger to the joining node;
	// Connection[0] == Merger, Connection[len-1] == joiner.
	Connection graph.Path
	// ConnDelay is the total weight of Connection.
	ConnDelay float64
	// TotalDelay is the end-to-end delay of the candidate multicast path:
	// on-tree delay S→Merger plus ConnDelay (D^{R_i}_{S,NR}).
	TotalDelay float64
	// SHR is SHR(S, Merger) at selection time.
	SHR int
}

// delayEps absorbs floating-point noise in delay-bound comparisons.
const delayEps = 1e-9

// enumerateFull generates one candidate per on-tree node R: the shortest
// path from R to joiner that avoids every *other* on-tree node (so the
// candidate genuinely merges at R), realizing the paper's "all possible
// paths connecting to the current tree" under footnote 4 (only the shortest
// connection per merger is considered).
//
// It runs as a single absorbing Dijkstra sweep rooted at the joiner: on-tree
// nodes settle as path endpoints but are never relaxed through, so one
// O(E log V) pass yields, for every merger simultaneously, the shortest
// connection whose interior avoids the tree. On an undirected graph this is
// exactly the per-merger formulation above — a connection's interior is
// off-tree in both views, and Dijkstra's optimality applies per endpoint —
// but without the old per-merger full Dijkstra plus O(|tree|) mask clone
// (O(|tree|·E log V) per join).
//
// ConnDelay is recomputed from the materialized merger→joiner path with
// Path.Weight rather than read off the sweep's joiner-rooted accumulation,
// keeping the float left-to-right summation order — and therefore every
// downstream selection decision — bit-identical to the per-merger version.
//
// extraMask additionally blocks nodes/edges (used by reshaping to keep the
// member's own subtree out of the new path). The joiner must be off-tree.
func enumerateFull(t *multicast.Tree, joiner graph.NodeID, shr shrVals, extraMask *graph.Mask, stats *Stats) []Candidate {
	g := t.Graph()
	sw := g.NewSweep()
	defer sw.Release()
	return enumerateFullWith(sw, false, t, joiner, shr, extraMask, stats)
}

// enumerateFullWith is enumerateFull on a caller-supplied sweep, optionally
// bounded. bounded stops the absorbing sweep the moment every unmasked
// on-tree node has settled: each merger's distance and parent chain is final
// at its settle (Dijkstra never re-relaxes a settled node), so the candidate
// set — connections, delays, ordering — is identical to the exhaustive run;
// only nodes that would have settled after the last merger are skipped. The
// batched join path passes its batch-scoped sweep (one scratch arena for the
// whole batch) with bounded=true; the sequential path keeps the exhaustive
// sweep it has always run, which is what makes EnumSettled a meaningful
// batch-vs-sequential comparison.
func enumerateFullWith(sw *graph.Sweep, bounded bool, t *multicast.Tree, joiner graph.NodeID, shr shrVals, extraMask *graph.Mask, stats *Stats) []Candidate {
	g := t.Graph()
	treeNodes := t.Nodes()
	out := make([]Candidate, 0, len(treeNodes))

	if bounded {
		want := 0
		for _, n := range treeNodes {
			if !extraMask.NodeBlocked(n) {
				want++
			}
		}
		sw.RunBounded(joiner, extraMask, t.OnTree, want)
	} else {
		sw.Run(joiner, extraMask, t.OnTree)
	}
	if stats != nil {
		stats.EnumSettled += sw.SettledCount()
	}

	for _, merger := range treeNodes {
		if extraMask.NodeBlocked(merger) || !sw.Reached(merger) {
			continue
		}
		conn := sw.PathFrom(merger) // merger → … → joiner
		d, err := conn.Weight(g)
		if err != nil {
			continue
		}
		treeDelay, err := t.DelayTo(merger)
		if err != nil {
			continue
		}
		out = append(out, Candidate{
			Merger:     merger,
			Connection: conn,
			ConnDelay:  d,
			TotalDelay: treeDelay + d,
			SHR:        shr.at(merger),
		})
	}
	return out
}

// enumerateQuery generates candidates via the query scheme of §3.3.1: the
// joiner asks each of its graph neighbors to relay a query along the
// neighbor's unicast shortest path toward the source; the first on-tree node
// met answers with its SHR and becomes a candidate merger. Coverage is
// partial by design — the scheme trades optimality for not needing topology
// knowledge. Each relayed query increments stats.QueryMessages.
func enumerateQuery(t *multicast.Tree, joiner graph.NodeID, shr shrVals, extraMask *graph.Mask, stats *Stats) []Candidate {
	g := t.Graph()
	src := t.Source()
	best := make(map[graph.NodeID]Candidate)
	for _, arc := range g.Neighbors(joiner) {
		v := arc.To
		if extraMask.NodeBlocked(v) || extraMask.EdgeBlocked(joiner, v) {
			continue
		}
		stats.QueryMessages++
		// The neighbor's own unicast shortest path toward the source.
		spf, _ := g.ShortestPath(v, src, extraMask)
		if spf == nil {
			continue
		}
		// Walk toward the source until the first on-tree node.
		var merger graph.NodeID = graph.Invalid
		var relay graph.Path
		for _, n := range spf {
			relay = append(relay, n)
			if t.OnTree(n) {
				merger = n
				break
			}
		}
		if merger == graph.Invalid {
			continue
		}
		// Candidate connection runs merger → ... → neighbor → joiner.
		conn := append(relay.Reverse(), joiner)
		if !conn.IsSimple() {
			continue // joiner already appears on the relayed prefix
		}
		cd, err := conn.Weight(g)
		if err != nil {
			continue
		}
		treeDelay, err := t.DelayTo(merger)
		if err != nil {
			continue
		}
		cand := Candidate{
			Merger:     merger,
			Connection: conn,
			ConnDelay:  cd,
			TotalDelay: treeDelay + cd,
			SHR:        shr.at(merger),
		}
		if prev, ok := best[merger]; !ok || cand.TotalDelay < prev.TotalDelay {
			best[merger] = cand
		}
	}
	out := make([]Candidate, 0, len(best))
	for _, c := range best {
		out = append(out, c)
	}
	slices.SortFunc(out, func(a, b Candidate) int { return int(a.Merger - b.Merger) })
	return out
}

// selectCandidate applies the paper's Path Selection Criterion: among
// candidates whose TotalDelay is within (1+DThresh)·spfDelay, pick the one
// with minimum SHR; break ties on TotalDelay, then on merger ID for
// determinism. When no candidate meets the bound the minimum-delay candidate
// is returned with withinBound=false — a member must still be able to join
// (the paper leaves this corner unspecified; falling back to the fastest
// available path is the SPF-like behaviour).
func selectCandidate(cands []Candidate, spfDelay, dThresh float64) (Candidate, bool) {
	bound := (1 + dThresh) * spfDelay
	bestFeasible, haveFeasible := Candidate{}, false
	bestAny, haveAny := Candidate{}, false
	for _, c := range cands {
		if !haveAny || less(c, bestAny, true) {
			bestAny, haveAny = c, true
		}
		if c.TotalDelay <= bound+delayEps {
			if !haveFeasible || less(c, bestFeasible, false) {
				bestFeasible, haveFeasible = c, true
			}
		}
	}
	if haveFeasible {
		return bestFeasible, true
	}
	return bestAny, false
}

// less orders candidates: by delay first when delayFirst (used by the
// fallback), otherwise by SHR, then delay, then merger ID.
func less(a, b Candidate, delayFirst bool) bool {
	if delayFirst {
		if a.TotalDelay != b.TotalDelay {
			return a.TotalDelay < b.TotalDelay
		}
		return a.Merger < b.Merger
	}
	if a.SHR != b.SHR {
		return a.SHR < b.SHR
	}
	if a.TotalDelay != b.TotalDelay {
		return a.TotalDelay < b.TotalDelay
	}
	return a.Merger < b.Merger
}
