package core

import (
	"smrp/internal/graph"
	"smrp/internal/multicast"
)

// shrVals is the session's SHR table. It mirrors the tree's storage backend:
// over a dense tree the table is a NodeID-indexed []int32 (the hot path —
// candidate enumeration, Condition-I checks — reads SHR with a single
// bounds-checked load); over a sparse tree it is a map keyed by NodeID, so a
// session's standing SHR state is O(nodes ever touched) instead of
// O(topology). Entries are meaningful only for on-tree nodes; the source's
// entry is always 0.
type shrVals struct {
	dense  []int32
	sparse map[graph.NodeID]int32
}

// at returns SHR(S, n). n must be on the tree the table was computed for.
func (v shrVals) at(n graph.NodeID) int {
	if v.dense != nil {
		return int(v.dense[n])
	}
	return int(v.sparse[n])
}

// get reads the entry for n; absent sparse entries read as 0 (same as a
// never-written dense slot).
func (v shrVals) get(n graph.NodeID) int32 {
	if v.dense != nil {
		return v.dense[n]
	}
	return v.sparse[n]
}

// set writes the entry for n. The backend must have been prepared (see
// computeSHRInto) for the tree the value belongs to.
func (v shrVals) set(n graph.NodeID, x int32) {
	if v.dense != nil {
		v.dense[n] = x
		return
	}
	v.sparse[n] = x
}

// footprint is the table's deterministic standing-byte accounting: fixed
// per-entry constants (4 bytes per dense slot; key + value + bucket overhead
// per sparse entry), never live heap.
func (v shrVals) footprint() int64 {
	if v.sparse != nil {
		return int64(len(v.sparse)) * bytesPerSHRMapEntry
	}
	return int64(len(v.dense)) * bytesPerSHRDenseEntry
}

// ComputeSHR returns SHR(S,R) for every on-tree node R of t, where
//
//	SHR(S,R) = Σ N_{R'}  over on-tree nodes R' on the path S→R, excluding S
//	         = SHR(S, R_u) + N_R                             (Eq. 2)
//
// and N_R is the number of members in the subtree rooted at R. SHR(S,S) = 0.
//
// The value measures how many member paths share the links from S down to R:
// the smaller SHR(S,R), the more attractive R is as a merger point for a new
// member, because a failure above R disconnects fewer receivers.
//
// N_R values come from the tree's incrementally maintained cache, so the
// computation is a single top-down pass with no intermediate MemberCounts
// map. This is the exported, map-shaped convenience API; the session's hot
// path uses the backend-matched shrTable below instead.
func ComputeSHR(t *multicast.Tree) map[graph.NodeID]int {
	shr := make(map[graph.NodeID]int, t.NumNodes())
	src := t.Source()
	shr[src] = 0
	// Top-down propagation along the recurrence SHR(R) = SHR(R_u) + N_R.
	stack := []graph.NodeID{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		base := shr[n]
		for _, k := range t.ChildList(n) {
			nr, _ := t.MemberCount(k)
			shr[k] = base + nr
			stack = append(stack, k)
		}
	}
	return shr
}

// computeSHRInto fills vals with SHR for every on-tree node of t, reusing
// the provided buffers (grown as needed) and matching the value backend to
// the tree's storage backend. It returns the (possibly reallocated) buffers
// so callers can keep them warm across calls.
func computeSHRInto(t *multicast.Tree, vals shrVals, stack []graph.NodeID) (shrVals, []graph.NodeID) {
	if t.SparseStorage() {
		if vals.sparse == nil {
			vals.sparse = make(map[graph.NodeID]int32, t.NumNodes())
		}
		vals.dense = nil
	} else {
		n := t.Graph().NumNodes()
		if cap(vals.dense) < n {
			vals.dense = make([]int32, n)
		}
		vals.dense = vals.dense[:n]
		vals.sparse = nil
	}
	src := t.Source()
	vals.set(src, 0)
	stack = append(stack[:0], src)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		base := vals.get(u)
		for _, k := range t.ChildList(u) {
			nr, _ := t.MemberCount(k)
			vals.set(k, base+int32(nr))
			stack = append(stack, k)
		}
	}
	return vals, stack
}

// shrTable maintains SHR values for a session under the configured mode.
//
// Under EagerSHR the table is kept incrementally: after a membership change
// at member m, only the nodes inside m's top-level branch (the subtree
// rooted at the source's child on m's root path — the dirty subtree of
// Eq. 2's recurrence) can change, so refresh recomputes exactly that region
// in O(depth + |dirty subtree|) and counts the per-node writes that
// actually changed a value in Stats.SHRUpdates. That counter now models the
// true per-event update-message cost §3.3.2 worries about, instead of the
// old tree-wide rewrite per mutation.
//
// Under DeferredSHR the table is memoized against the tree's epoch: values
// are recomputed (and counted in Stats.SHRComputes) only when path
// selection needs them AND the tree has mutated since the last compute.
type shrTable struct {
	mode  SHRMode
	stats *Stats

	vals  shrVals
	stack []graph.NodeID

	// epoch/valid memoize the deferred-mode table against Tree.Epoch.
	epoch uint64
	valid bool
}

func newSHRTable(mode SHRMode, stats *Stats) *shrTable {
	return &shrTable{mode: mode, stats: stats}
}

// init installs the table for a fresh session tree. The empty tree carries
// only the source (SHR(S,S) = 0, a constant that needs no update message),
// so nothing is counted.
func (s *shrTable) init(t *multicast.Tree) {
	if s.mode != EagerSHR {
		return
	}
	s.vals, s.stack = computeSHRInto(t, s.vals, s.stack)
}

// refresh repairs the table after a tree mutation whose dirty subtrees are
// rooted at the given nodes (typically Tree.TopAncestor of the mutated
// member; Invalid and off-tree roots are skipped, as is the source, whose
// SHR is constant). It is a no-op under deferred maintenance, where the
// epoch memo invalidates lazily.
func (s *shrTable) refresh(t *multicast.Tree, dirtyRoots ...graph.NodeID) {
	if s.mode != EagerSHR {
		return
	}
	if !t.SparseStorage() {
		n := t.Graph().NumNodes()
		if cap(s.vals.dense) < n {
			// The graph grew since init: fall back to a full rebuild.
			s.vals, s.stack = computeSHRInto(t, s.vals, s.stack)
			return
		}
		s.vals.dense = s.vals.dense[:n]
	}
	s.vals.set(t.Source(), 0)
	writes := 0
	for i, root := range dirtyRoots {
		if root == graph.Invalid || root == t.Source() || !t.OnTree(root) {
			continue
		}
		if contains(dirtyRoots[:i], root) {
			continue // deduplicate repeated roots
		}
		// Top-down repair of the dirty subtree: parents are finalized
		// before their children are pushed, so vals[parent] is always
		// current when a node is visited.
		s.stack = append(s.stack[:0], root)
		for len(s.stack) > 0 {
			u := s.stack[len(s.stack)-1]
			s.stack = s.stack[:len(s.stack)-1]
			p, _ := t.Parent(u)
			nr, _ := t.MemberCount(u)
			want := s.vals.get(p) + int32(nr)
			if s.vals.get(u) != want {
				s.vals.set(u, want)
				writes++
			}
			s.stack = append(s.stack, t.ChildList(u)...)
		}
	}
	s.stats.SHRUpdates += writes
}

// table returns the current SHR table for t, recomputing it under deferred
// maintenance when the tree has mutated since the last compute.
func (s *shrTable) table(t *multicast.Tree) shrVals {
	if s.mode == EagerSHR {
		return s.vals
	}
	if !s.valid || s.epoch != t.Epoch() {
		s.vals, s.stack = computeSHRInto(t, s.vals, s.stack)
		s.stats.SHRComputes += t.NumNodes()
		s.epoch = t.Epoch()
		s.valid = true
	}
	return s.vals
}

// at returns SHR(S, n) for on-tree node n under the configured maintenance
// mode.
func (s *shrTable) at(t *multicast.Tree, n graph.NodeID) int {
	return s.table(t).at(n)
}

// contains reports whether roots holds r (tiny linear scan; dirty-root
// lists have at most a handful of entries).
func contains(roots []graph.NodeID, r graph.NodeID) bool {
	for _, x := range roots {
		if x == r {
			return true
		}
	}
	return false
}
