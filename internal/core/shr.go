package core

import (
	"smrp/internal/graph"
	"smrp/internal/multicast"
)

// ComputeSHR returns SHR(S,R) for every on-tree node R of t, where
//
//	SHR(S,R) = Σ N_{R'}  over on-tree nodes R' on the path S→R, excluding S
//	         = SHR(S, R_u) + N_R                             (Eq. 2)
//
// and N_R is the number of members in the subtree rooted at R. SHR(S,S) = 0.
//
// The value measures how many member paths share the links from S down to R:
// the smaller SHR(S,R), the more attractive R is as a merger point for a new
// member, because a failure above R disconnects fewer receivers.
func ComputeSHR(t *multicast.Tree) map[graph.NodeID]int {
	counts := t.MemberCounts()
	shr := make(map[graph.NodeID]int, len(counts))
	src := t.Source()
	shr[src] = 0
	// Top-down propagation along the recurrence SHR(R) = SHR(R_u) + N_R.
	stack := []graph.NodeID{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, k := range t.Children(n) {
			shr[k] = shr[n] + counts[k]
			stack = append(stack, k)
		}
	}
	return shr
}

// shrTable maintains SHR values for a session under the configured mode.
//
// Under EagerSHR the table is refreshed tree-wide after every membership
// change (each write is counted in Stats.SHRUpdates, modeling the update
// messages §3.3.2 worries about). Under DeferredSHR nothing is cached:
// values are recomputed when path selection needs them, counted in
// Stats.SHRComputes.
type shrTable struct {
	mode   SHRMode
	cached map[graph.NodeID]int
	stats  *Stats
}

func newSHRTable(mode SHRMode, stats *Stats) *shrTable {
	return &shrTable{mode: mode, stats: stats}
}

// refresh must be called after every tree mutation; it is a no-op under
// deferred maintenance.
func (s *shrTable) refresh(t *multicast.Tree) {
	if s.mode != EagerSHR {
		return
	}
	s.cached = ComputeSHR(t)
	s.stats.SHRUpdates += len(s.cached)
}

// snapshot returns current SHR values for all on-tree nodes, computing them
// on demand under deferred maintenance.
func (s *shrTable) snapshot(t *multicast.Tree) map[graph.NodeID]int {
	if s.mode == EagerSHR {
		return s.cached
	}
	m := ComputeSHR(t)
	s.stats.SHRComputes += len(m)
	return m
}
