package core

import (
	"fmt"
	"testing"

	"smrp/internal/graph"
	"smrp/internal/multicast"
	"smrp/internal/topology"
)

// bruteEnumerate is a reference copy of the pre-sweep enumerateFull: one full
// masked Dijkstra per on-tree merger, with every other on-tree node blocked.
// The property test below holds the sweep-based enumerator to exact equality
// against it; keep this in sync with the enumerateFull doc comment, not with
// its implementation.
func bruteEnumerate(t *multicast.Tree, joiner graph.NodeID, shr shrVals, extraMask *graph.Mask) []Candidate {
	g := t.Graph()
	treeNodes := t.Nodes()
	out := make([]Candidate, 0, len(treeNodes))
	for _, merger := range treeNodes {
		if extraMask.NodeBlocked(merger) {
			continue
		}
		mask := extraMask.Clone()
		for _, n := range treeNodes {
			if n != merger {
				mask.BlockNode(n)
			}
		}
		conn, d := g.ShortestPath(merger, joiner, mask)
		if conn == nil {
			continue
		}
		treeDelay, err := t.DelayTo(merger)
		if err != nil {
			continue
		}
		out = append(out, Candidate{
			Merger:     merger,
			Connection: conn,
			ConnDelay:  d,
			TotalDelay: treeDelay + d,
			SHR:        shr.at(merger),
		})
	}
	return out
}

// growRandomTree builds a multicast tree rooted at src by grafting the SPF
// path of k randomly chosen members, mirroring how the experiment harness
// seeds sessions. Members that are unreachable or already on-tree are
// skipped.
func growRandomTree(tb testing.TB, g *graph.Graph, src graph.NodeID, k int, rng *topology.RNG) *multicast.Tree {
	tb.Helper()
	tr, err := multicast.New(g, src)
	if err != nil {
		tb.Fatal(err)
	}
	for _, idx := range rng.Sample(g.NumNodes(), k) {
		m := graph.NodeID(idx)
		if tr.OnTree(m) {
			continue
		}
		p, _ := g.ShortestPath(src, m, nil)
		if p == nil {
			continue
		}
		// The SPF path may re-enter the tree at intermediate nodes; graft
		// each maximal off-tree run from its on-tree predecessor.
		for i := 1; i < len(p); i++ {
			if tr.OnTree(p[i]) {
				continue
			}
			j := i
			for j+1 < len(p) && !tr.OnTree(p[j+1]) {
				j++
			}
			if err := tr.Graft(p[i-1:j+1], j == len(p)-1); err != nil {
				tb.Fatal(err)
			}
			i = j
		}
	}
	return tr
}

// TestEnumerateFullMatchesBruteForce is the tentpole's safety net: across 60
// randomized Waxman topologies the single absorbing-sweep enumerator must
// produce exactly the per-merger brute-force candidate set — same mergers in
// the same order, bit-identical ConnDelay/TotalDelay, node-for-node identical
// connections — both with a nil extra mask and with a random node/edge mask
// (the reshaping case).
func TestEnumerateFullMatchesBruteForce(t *testing.T) {
	const topologies = 60
	for trial := 0; trial < topologies; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := topology.NewRNG(0x5EED2005 + uint64(trial))
			n := 20 + rng.Intn(41) // 20..60 nodes
			g, err := topology.Waxman(topology.WaxmanConfig{
				N:               n,
				Alpha:           0.15 + 0.2*rng.Float64(),
				Beta:            topology.DefaultBeta,
				EnsureConnected: true,
			}, rng)
			if err != nil {
				t.Fatal(err)
			}
			src := graph.NodeID(rng.Intn(n))
			tr := growRandomTree(t, g, src, 3+rng.Intn(6), rng)
			shr := denseSHRFor(tr)

			// Off-tree joiners: every off-tree node gets checked on small
			// graphs; cap the work on larger ones.
			joiners := make([]graph.NodeID, 0, n)
			for v := 0; v < n; v++ {
				if !tr.OnTree(graph.NodeID(v)) {
					joiners = append(joiners, graph.NodeID(v))
				}
			}
			if len(joiners) > 8 {
				joiners = joiners[:8]
			}
			for _, joiner := range joiners {
				masks := []*graph.Mask{nil}
				// A random extra mask exercises the reshaping path. Blocking
				// the joiner itself is legal (both sides must yield nothing).
				m := graph.NewMask().BlockNode(graph.NodeID(rng.Intn(n)))
				if es := g.Edges(); len(es) > 0 {
					e := es[rng.Intn(len(es))]
					m.BlockEdge(e.A, e.B)
				}
				masks = append(masks, m)

				for mi, mask := range masks {
					want := bruteEnumerate(tr, joiner, shr, mask)
					got := enumerateFull(tr, joiner, shr, mask, nil)
					if len(got) != len(want) {
						t.Fatalf("joiner %d mask %d: %d candidates, want %d",
							joiner, mi, len(got), len(want))
					}
					for i := range want {
						w, gc := want[i], got[i]
						if gc.Merger != w.Merger {
							t.Fatalf("joiner %d mask %d cand %d: merger %d, want %d",
								joiner, mi, i, gc.Merger, w.Merger)
						}
						if gc.ConnDelay != w.ConnDelay || gc.TotalDelay != w.TotalDelay {
							t.Fatalf("joiner %d mask %d merger %d: delays (%v,%v), want (%v,%v)",
								joiner, mi, w.Merger, gc.ConnDelay, gc.TotalDelay, w.ConnDelay, w.TotalDelay)
						}
						if gc.SHR != w.SHR {
							t.Fatalf("joiner %d mask %d merger %d: SHR %d, want %d",
								joiner, mi, w.Merger, gc.SHR, w.SHR)
						}
						if len(gc.Connection) != len(w.Connection) {
							t.Fatalf("joiner %d mask %d merger %d: path %v, want %v",
								joiner, mi, w.Merger, gc.Connection, w.Connection)
						}
						for j := range w.Connection {
							if gc.Connection[j] != w.Connection[j] {
								t.Fatalf("joiner %d mask %d merger %d: path %v, want %v",
									joiner, mi, w.Merger, gc.Connection, w.Connection)
							}
						}
					}
				}
			}
		})
	}
}
