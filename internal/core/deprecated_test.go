package core

import (
	"errors"
	"reflect"
	"testing"

	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

// healPinSession builds a fresh Fig-1 session with members C and D joined —
// the shared starting state for the deprecated-wrapper pins below.
func healPinSession(t *testing.T) *Session {
	t.Helper()
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DThresh = 0
	s, err := NewSession(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, errs := s.JoinBatch([]graph.NodeID{3, 4})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestDeprecatedHealWrappers pins the compatibility contract of the
// pre-strategy names: Heal and HealSet remain callable, and on identical
// sessions they produce reports and statistics bit-identical to Recover.
// These are the only remaining in-repo callers of the old names — every
// other call site has migrated to Recover.
func TestDeprecatedHealWrappers(t *testing.T) {
	f := failure.LinkDown(1, 4)

	recoverSess := healPinSession(t)
	want, err := recoverSess.Recover(f)
	if err != nil {
		t.Fatal(err)
	}

	healSess := healPinSession(t)
	got, err := healSess.Heal(f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Heal report diverges from Recover:\n heal   %+v\n recover %+v", got, want)
	}

	setSess := healPinSession(t)
	gotSet, err := setSess.HealSet([]failure.Failure{f})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSet, want) {
		t.Errorf("HealSet report diverges from Recover:\n healset %+v\n recover %+v", gotSet, want)
	}

	if recoverSess.Stats() != healSess.Stats() || recoverSess.Stats() != setSess.Stats() {
		t.Errorf("work counters diverge: recover=%+v heal=%+v healset=%+v",
			recoverSess.Stats(), healSess.Stats(), setSess.Stats())
	}
}

// TestDeprecatedHealSetEmptyBatch pins HealSet's historical empty-batch
// error: it reports ErrBadSchedule just like Recover, from its own guard.
func TestDeprecatedHealSetEmptyBatch(t *testing.T) {
	s := healPinSession(t)
	if _, err := s.HealSet(nil); !errors.Is(err, failure.ErrBadSchedule) {
		t.Fatalf("HealSet(nil) = %v, want ErrBadSchedule", err)
	}
	if _, err := s.Recover(); !errors.Is(err, failure.ErrBadSchedule) {
		t.Fatalf("Recover() = %v, want ErrBadSchedule", err)
	}
}
