package core

import (
	"errors"
	"slices"
	"testing"

	"smrp/internal/failure"
	"smrp/internal/graph"
)

// lineGraph builds 0—1—…—(n-1) with unit weights.
func lineGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// ringGraph closes the line into a cycle.
func ringGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := lineGraph(t, n)
	if err := g.AddEdge(graph.NodeID(n-1), 0, 1); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestDegradationPartitionRepair is the table-driven degraded-member state
// machine test: failures that partition a member must park it (not corrupt
// the session), and Repair must re-admit exactly the members it reconnects.
func TestDegradationPartitionRepair(t *testing.T) {
	cases := []struct {
		name            string
		build           func(t *testing.T) *graph.Graph
		members         []graph.NodeID
		fail            []failure.Failure
		wantUnrecovered []graph.NodeID
		wantParked      []graph.NodeID
		repair          []failure.Failure
		wantReadmitted  []graph.NodeID
		wantStillParked []graph.NodeID
	}{
		{
			name:            "line cut strands both downstream members",
			build:           func(t *testing.T) *graph.Graph { return lineGraph(t, 6) },
			members:         []graph.NodeID{3, 5},
			fail:            []failure.Failure{failure.LinkDown(2, 3)},
			wantUnrecovered: []graph.NodeID{3, 5},
			wantParked:      []graph.NodeID{3, 5},
			repair:          []failure.Failure{failure.LinkDown(2, 3)},
			wantReadmitted:  []graph.NodeID{3, 5},
		},
		{
			name:            "node failure strands only the far member",
			build:           func(t *testing.T) *graph.Graph { return lineGraph(t, 6) },
			members:         []graph.NodeID{3, 5},
			fail:            []failure.Failure{failure.NodeDown(4)},
			wantUnrecovered: []graph.NodeID{5},
			wantParked:      []graph.NodeID{5},
			repair:          []failure.Failure{failure.NodeDown(4)},
			wantReadmitted:  []graph.NodeID{5},
		},
		{
			name:  "ring survives one cut, parks on full isolation",
			build: func(t *testing.T) *graph.Graph { return ringGraph(t, 6) },
			members: []graph.NodeID{
				3,
			},
			fail:            []failure.Failure{failure.LinkDown(2, 3), failure.LinkDown(3, 4)},
			wantUnrecovered: []graph.NodeID{3},
			wantParked:      []graph.NodeID{3},
			// Partial repair: one of the two incident links is enough.
			repair:         []failure.Failure{failure.LinkDown(3, 4)},
			wantReadmitted: []graph.NodeID{3},
		},
		{
			name:            "partial repair leaves the far member parked",
			build:           func(t *testing.T) *graph.Graph { return lineGraph(t, 6) },
			members:         []graph.NodeID{3, 5},
			fail:            []failure.Failure{failure.LinkDown(2, 3), failure.LinkDown(4, 5)},
			wantUnrecovered: []graph.NodeID{3, 5},
			wantParked:      []graph.NodeID{3, 5},
			repair:          []failure.Failure{failure.LinkDown(2, 3)},
			wantReadmitted:  []graph.NodeID{3},
			wantStillParked: []graph.NodeID{5},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSession(tc.build(t), 0, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range tc.members {
				if _, err := s.Join(m); err != nil {
					t.Fatalf("Join(%d) = %v", m, err)
				}
			}
			rep, err := s.Recover(tc.fail...)
			if err != nil {
				t.Fatalf("HealSet(%v) = %v", tc.fail, err)
			}
			if !slices.Equal(rep.Unrecovered, tc.wantUnrecovered) {
				t.Fatalf("Unrecovered = %v, want %v", rep.Unrecovered, tc.wantUnrecovered)
			}
			if got := s.Parked(); !slices.Equal(got, tc.wantParked) {
				t.Fatalf("Parked() = %v, want %v", got, tc.wantParked)
			}
			for _, m := range tc.wantParked {
				if !s.IsParked(m) {
					t.Errorf("IsParked(%d) = false, want true", m)
				}
				if s.Tree().IsMember(m) {
					t.Errorf("parked member %d still on the tree", m)
				}
			}
			// The degraded tree must remain structurally valid.
			if err := s.Tree().Validate(); err != nil {
				t.Fatalf("degraded tree invalid: %v", err)
			}

			rr, err := s.Repair(tc.repair...)
			if err != nil {
				t.Fatalf("Repair(%v) = %v", tc.repair, err)
			}
			if !slices.Equal(rr.Readmitted, tc.wantReadmitted) {
				t.Fatalf("Readmitted = %v, want %v", rr.Readmitted, tc.wantReadmitted)
			}
			if !slices.Equal(rr.StillParked, tc.wantStillParked) {
				t.Fatalf("StillParked = %v, want %v", rr.StillParked, tc.wantStillParked)
			}
			for _, m := range tc.wantReadmitted {
				if s.IsParked(m) || !s.Tree().IsMember(m) {
					t.Errorf("member %d not re-admitted cleanly", m)
				}
			}
			if err := s.Tree().Validate(); err != nil {
				t.Fatalf("repaired tree invalid: %v", err)
			}
			if st := s.Stats(); st.Readmissions != len(tc.wantReadmitted) {
				t.Errorf("Stats().Readmissions = %d, want %d", st.Readmissions, len(tc.wantReadmitted))
			}
		})
	}
}

// TestDegradationErrorIdentity pins the typed-sentinel contract of the
// degraded paths: every error must be matchable with errors.Is.
func TestDegradationErrorIdentity(t *testing.T) {
	g := lineGraph(t, 6)
	s, err := NewSession(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Join(3); err != nil {
		t.Fatal(err)
	}

	// Join while partitioned → ErrPartitioned, and the joiner is parked.
	s.ApplyFailure(failure.LinkDown(2, 3))
	if _, err := s.Join(4); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("Join under partition = %v, want ErrPartitioned", err)
	}
	if !s.IsParked(4) {
		t.Fatal("partitioned joiner must be parked")
	}

	// Join of a failed node → failure.ErrMemberFailed.
	s.ApplyFailure(failure.NodeDown(5))
	if _, err := s.Join(5); !errors.Is(err, failure.ErrMemberFailed) {
		t.Fatalf("Join of failed node = %v, want ErrMemberFailed", err)
	}

	// RecoverMember of a failed node → failure.ErrMemberFailed.
	if _, _, err := s.RecoverMember(5); !errors.Is(err, failure.ErrMemberFailed) {
		t.Fatalf("RecoverMember of failed node = %v, want ErrMemberFailed", err)
	}

	// Out-of-range member → graph.ErrUnknownNode via the core alias.
	if _, err := s.Join(99); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Join(99) = %v, want ErrUnknownNode", err)
	}
	if _, err := s.Join(3); !errors.Is(err, ErrAlreadyMember) {
		t.Fatalf("re-Join = %v, want ErrAlreadyMember", err)
	}

	// Repair everything: parked member 4 comes back, the failed-node member
	// never parked (it was refused, not degraded).
	rr, err := s.Repair(failure.LinkDown(2, 3), failure.NodeDown(5))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(rr.Readmitted, []graph.NodeID{4}) {
		t.Fatalf("Readmitted = %v, want [4]", rr.Readmitted)
	}
	if len(rr.StillParked) != 0 {
		t.Fatalf("StillParked = %v, want empty", rr.StillParked)
	}
	if !s.FailedMask().IsEmpty() {
		t.Fatal("mask must be empty after full repair")
	}
}
