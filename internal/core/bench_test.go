package core

import (
	"testing"

	"smrp/internal/graph"
	"smrp/internal/topology"
)

// benchGraph builds an evaluation-scale Waxman topology (paper-style, 100
// nodes) deterministically.
func benchGraph(tb testing.TB, seed uint64) *graph.Graph {
	tb.Helper()
	g, err := topology.Waxman(topology.WaxmanConfig{
		N:               100,
		Alpha:           0.2,
		Beta:            topology.DefaultBeta,
		EnsureConnected: true,
	}, topology.NewRNG(seed))
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// BenchmarkEnumerateCandidates measures one full candidate enumeration (the
// per-join hot path) against a ~25-member tree on a 100-node topology.
func BenchmarkEnumerateCandidates(b *testing.B) {
	g := benchGraph(b, 2005)
	rng := topology.NewRNG(2005)
	tr := growRandomTree(b, g, 0, 25, rng)
	shr := denseSHRFor(tr)

	// A deterministic off-tree joiner.
	joiner := graph.Invalid
	for v := g.NumNodes() - 1; v >= 0; v-- {
		if !tr.OnTree(graph.NodeID(v)) {
			joiner = graph.NodeID(v)
			break
		}
	}
	if joiner == graph.Invalid {
		b.Fatal("no off-tree joiner")
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enumerateFull(tr, joiner, shr, nil, nil)
	}
}

// BenchmarkJoinSession measures building a 30-member session from scratch —
// enumeration, path selection, SHR maintenance, and grafting together.
func BenchmarkJoinSession(b *testing.B) {
	g := benchGraph(b, 2005)
	members := topology.NewRNG(77).Sample(g.NumNodes(), 30)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSession(g, 0, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range members {
			if graph.NodeID(m) == 0 {
				continue
			}
			if _, err := s.Join(graph.NodeID(m)); err != nil {
				b.Fatal(err)
			}
		}
	}
}
