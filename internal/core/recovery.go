package core

import (
	"fmt"
	"math"
	"slices"

	"smrp/internal/failure"
	"smrp/internal/graph"
)

// HealReport describes how a session recovered from one failure event
// (a single failure, or a correlated SRLG batch via HealSet).
type HealReport struct {
	// Failure is the (first) event that was healed; Failures lists the full
	// correlated batch.
	Failure  failure.Failure
	Failures []failure.Failure
	// Disconnected lists the members the failure cut off, ascending.
	Disconnected []graph.NodeID
	// RecoveryDistance maps each recovered member to the weight of its
	// local detour (the paper's RD_R).
	RecoveryDistance map[graph.NodeID]float64
	// Detours maps each recovered member to its detour path
	// (member → … → reattachment point).
	Detours map[graph.NodeID]graph.Path
	// Unrecovered lists members newly parked by this event: no residual
	// path existed, so they degraded to the parked state (ErrPartitioned)
	// and await re-admission.
	Unrecovered []graph.NodeID
	// Readmitted lists previously-parked members this heal brought back:
	// the event's recovery grafts (or its batch of repairs) made an on-tree
	// node reachable again.
	Readmitted []graph.NodeID
	// Pruned lists stale relays reclaimed after recovery (soft-state expiry).
	Pruned []graph.NodeID
}

// TotalRecoveryDistance sums RD over recovered members.
func (r *HealReport) TotalRecoveryDistance() float64 {
	var total float64
	for _, d := range r.RecoveryDistance {
		total += d
	}
	return total
}

// RepairReport describes a Repair: which components came back and which
// parked members were automatically re-admitted.
type RepairReport struct {
	// Repaired lists the components restored.
	Repaired []failure.Failure
	// Readmitted lists parked members re-admitted by this repair, in
	// re-admission order (ascending).
	Readmitted []graph.NodeID
	// StillParked lists members that remain partitioned afterwards.
	StillParked []graph.NodeID
}

// FlushDead removes all tree state cut off from the source by the mask
// (every maximal dead subtree), returning the members that lost their
// branch. Surviving relays are kept even if childless — their soft state has
// not expired and they remain local-detour targets. The protocol layer calls
// this at failure-detection time and re-grafts members individually.
func (s *Session) FlushDead(mask *graph.Mask) ([]graph.NodeID, error) {
	surviving := failure.SurvivingNodes(s.tree, mask)
	if len(surviving) == 0 {
		return nil, failure.ErrSourceFailed
	}
	disconnected := failure.DisconnectedMembers(s.tree, mask)
	var deadRoots []graph.NodeID
	for _, n := range s.tree.Nodes() {
		if surviving[n] || n == s.tree.Source() {
			continue
		}
		p, ok := s.tree.Parent(n)
		if ok && (p == graph.Invalid || surviving[p]) {
			deadRoots = append(deadRoots, n)
		}
	}
	// Each detached subtree dirties the top-level branch it hung from:
	// ancestors between the source and the detachment point lose N_R, so
	// every surviving node in that branch needs its SHR repaired. The dirty
	// top is captured *before* the detach (afterwards the root may be
	// off-tree); when the dead root is itself a source child the whole
	// branch disappears and no surviving SHR changes (refresh skips the
	// then-off-tree top).
	var dirty []graph.NodeID
	for _, r := range deadRoots {
		if !s.tree.OnTree(r) {
			continue
		}
		dirty = append(dirty, s.tree.TopAncestor(r))
		if err := s.tree.DetachSubtree(r); err != nil {
			return nil, fmt.Errorf("flush dead: %w", err)
		}
	}
	for _, m := range disconnected {
		delete(s.lastUpSHR, m)
	}
	s.shr.refresh(s.tree, dirty...)
	return disconnected, nil
}

// RecoverGraft grafts a local-detour path (reattachment point → … → member)
// produced by failure recovery and restores the session bookkeeping for the
// recovered member.
func (s *Session) RecoverGraft(p graph.Path) error {
	if err := s.tree.Graft(p, true); err != nil {
		return err
	}
	m := p.Last()
	delete(s.parked, m)
	s.shr.refresh(s.tree, s.tree.TopAncestor(m))
	s.recordUpSHR(m)
	s.notifyStrategy()
	return nil
}

// Recover restores the session after the given failure set using the
// configured RecoveryStrategy (SMRP's local detours by default). The
// failures are folded into the session's accumulated mask before recovery
// begins, so overlapping failures compose and a correlated batch (an SRLG
// cut) never routes a detour over a sibling cut discovered one step later.
// It is the blessed strategy-aware recovery entry point; Heal and HealSet
// are the pre-strategy names for the same operation.
func (s *Session) Recover(fs ...failure.Failure) (*HealReport, error) {
	if len(fs) == 0 {
		return nil, fmt.Errorf("core: recover: %w: empty failure set", failure.ErrBadSchedule)
	}
	// Reject before mutating: a batch that takes the source down has no
	// recovery (FlushDead would surface ErrSourceFailed), and folding it
	// into the mask first would corrupt the session on a *rejected* request
	// — the caller sees an error, yet every later Join finds the source
	// blocked. Callers that want a source failure to accumulate anyway
	// (hierarchy's domain-down bookkeeping) call ApplyFailure directly.
	if failure.TakesDownNode(fs, s.tree.Source()) {
		return nil, failure.ErrSourceFailed
	}
	s.ApplyFailure(fs...)
	return s.dispatchRecover(fs)
}

// Heal restores the session after the given failure using SMRP's local
// detours. The failure is folded into the session's accumulated mask, so
// overlapping failures compose: every detour avoids *all* failed components,
// not just the newest one. Dead tree state below the cut is flushed, then
// each disconnected member reconnects to the nearest unaffected on-tree
// node, nearest member first (each reconnection enlarges the live tree,
// modeling neighbor-assisted recovery). Members with no residual path
// degrade gracefully: they are parked (see Parked/ErrPartitioned) and
// re-admitted automatically by a later Heal or Repair that makes them
// reachable. Surviving relays whose branches died are kept as detour
// targets during recovery and pruned afterwards.
//
// The failed component remains failed: subsequent joins and reshapes treat
// the underlying graph as degraded automatically.
//
// Deprecated: Heal is the pre-strategy name of single-failure recovery. Use
// Recover, which dispatches to the configured RecoveryStrategy; with the
// default (SMRP) strategy the two are bit-identical.
func (s *Session) Heal(f failure.Failure) (*HealReport, error) {
	return s.Recover(f)
}

// HealSet is Heal for a correlated batch (an SRLG cut): every failure in fs
// is applied atomically before recovery begins, so detours never route over
// a sibling cut discovered one step later.
//
// Deprecated: HealSet is the pre-strategy name of batch recovery. Use
// Recover, which dispatches to the configured RecoveryStrategy; with the
// default (SMRP) strategy the two are bit-identical.
func (s *Session) HealSet(fs []failure.Failure) (*HealReport, error) {
	if len(fs) == 0 {
		return nil, fmt.Errorf("core: heal: %w: empty failure set", failure.ErrBadSchedule)
	}
	return s.Recover(fs...)
}

// Reconcile re-runs failure recovery against the session's accumulated mask
// without applying new failures. It flushes tree state that is dead under the
// current mask and re-grafts (or parks) the affected members — the repair
// path for a session whose mask changed while recovery was suspended (e.g. a
// recovery domain whose agent was down while further failures accumulated).
// It is a no-op on a healthy session with an intact tree. Like Recover it
// dispatches through the configured RecoveryStrategy (fs = nil).
func (s *Session) Reconcile() (*HealReport, error) {
	return s.dispatchRecover(nil)
}

// reconcile is the shared heal engine: flush dead state under the
// accumulated mask, then reconnect nearest-first.
func (s *Session) reconcile(fs []failure.Failure) (*HealReport, error) {
	mask := s.maskOrNil()
	// Members that failed themselves are flushed with their branches and
	// parked below: they are gone until repaired, then re-admitted like any
	// other parked member. (DisconnectedMembers excludes them by design —
	// they are not *disconnected* — but the degraded-member state machine
	// must still account for them.)
	var selfFailed []graph.NodeID
	if mask != nil {
		for _, m := range s.tree.Members() {
			if mask.NodeBlocked(m) {
				selfFailed = append(selfFailed, m)
			}
		}
	}
	disconnected, err := s.FlushDead(mask)
	if err != nil {
		return nil, err
	}
	if len(selfFailed) > 0 {
		disconnected = append(disconnected, selfFailed...)
		slices.Sort(disconnected)
	}
	rep := &HealReport{
		Failures:         fs,
		Disconnected:     disconnected,
		RecoveryDistance: make(map[graph.NodeID]float64),
		Detours:          make(map[graph.NodeID]graph.Path),
	}
	if len(fs) > 0 {
		rep.Failure = fs[0]
	}

	// Reconnect nearest-first, letting the live tree grow. Previously
	// parked members compete too: a recovery graft may bring an on-tree
	// node back within their reach (automatic re-admission).
	remaining := make(map[graph.NodeID]bool, len(rep.Disconnected)+len(s.parked))
	wasParked := make(map[graph.NodeID]bool, len(s.parked))
	for _, m := range rep.Disconnected {
		if mask.NodeBlocked(m) {
			// The member itself failed: it cannot reconnect while down, so it
			// parks immediately and re-joins when repaired.
			s.park(m)
			rep.Unrecovered = append(rep.Unrecovered, m)
			continue
		}
		remaining[m] = true
	}
	for m := range s.parked {
		if !mask.NodeBlocked(m) && !s.tree.IsMember(m) {
			remaining[m] = true
			wasParked[m] = true
		}
	}
	accept := func(n graph.NodeID) bool {
		return s.tree.OnTree(n) && !mask.NodeBlocked(n)
	}
	var dirty []graph.NodeID
	for len(remaining) > 0 {
		bestD := math.Inf(1)
		var bestM graph.NodeID = graph.Invalid
		var bestPath graph.Path
		for m := range remaining {
			p, d := graph.Path(nil), math.Inf(1)
			var settled int
			_, p, d, settled = s.g.NearestOfCounted(m, mask, accept)
			s.stats.HealSettled += settled
			if p != nil && (d < bestD || (d == bestD && m < bestM)) {
				bestD, bestM, bestPath = d, m, p
			}
		}
		if bestM == graph.Invalid {
			// Everyone left is genuinely partitioned: park the newly
			// disconnected; the already-parked stay parked.
			for m := range remaining {
				if wasParked[m] {
					continue
				}
				s.park(m)
				rep.Unrecovered = append(rep.Unrecovered, m)
			}
			break
		}
		delete(remaining, bestM)
		// bestPath runs member→…→survivor; graft wants survivor→…→member.
		if err := s.tree.Graft(bestPath.Reverse(), true); err != nil {
			return nil, fmt.Errorf("heal: regraft %d: %w", bestM, err)
		}
		if wasParked[bestM] {
			delete(s.parked, bestM)
			s.stats.Readmissions++
			rep.Readmitted = append(rep.Readmitted, bestM)
		}
		dirty = append(dirty, s.tree.TopAncestor(bestM))
		rep.RecoveryDistance[bestM] = bestD
		rep.Detours[bestM] = bestPath
	}
	slices.Sort(rep.Unrecovered)
	slices.Sort(rep.Readmitted)

	// Stale relays are childless non-members (N_R = 0), so pruning them
	// never changes a survivor's SHR — only the regrafted branches are
	// dirty. One batched repair covers every regraft.
	rep.Pruned = s.tree.PruneStale()
	s.shr.refresh(s.tree, dirty...)
	for _, m := range s.tree.Members() {
		if _, ok := s.lastUpSHR[m]; !ok {
			s.recordUpSHR(m)
		}
	}
	s.notifyStrategy()
	return rep, nil
}

// RecoverMember attempts a local-detour re-admission of a single off-tree
// node (typically a parked member): the shortest residual path to the
// nearest live on-tree node is grafted. It returns ErrPartitioned — and
// parks the member — when no residual path exists.
func (s *Session) RecoverMember(m graph.NodeID) (graph.Path, float64, error) {
	if m < 0 || int(m) >= s.g.NumNodes() {
		return nil, 0, fmt.Errorf("recover %d: %w", m, ErrUnknownNode)
	}
	if s.tree.IsMember(m) {
		return nil, 0, fmt.Errorf("recover %d: %w", m, ErrAlreadyMember)
	}
	mask := s.maskOrNil()
	if mask.NodeBlocked(m) {
		return nil, 0, fmt.Errorf("recover %d: %w", m, failure.ErrMemberFailed)
	}
	if s.tree.OnTree(m) {
		if err := s.RecoverGraft(graph.Path{m}); err != nil {
			return nil, 0, err
		}
		return graph.Path{m}, 0, nil
	}
	accept := func(n graph.NodeID) bool {
		return s.tree.OnTree(n) && !mask.NodeBlocked(n)
	}
	node, p, d, settled := s.g.NearestOfCounted(m, mask, accept)
	s.stats.HealSettled += settled
	if node == graph.Invalid {
		s.park(m)
		return nil, 0, fmt.Errorf("recover %d: %w", m, ErrPartitioned)
	}
	if err := s.RecoverGraft(p.Reverse()); err != nil {
		return nil, 0, err
	}
	return p, d, nil
}

// Repair restores failed components and automatically re-admits every
// parked member the repair reconnects, ascending (each re-admission runs the
// full SMRP path selection, so re-admitted members land on low-SHR paths,
// not merely the nearest survivor). Repairing a component that was never
// failed is a no-op.
func (s *Session) Repair(fs ...failure.Failure) (*RepairReport, error) {
	rep := &RepairReport{Repaired: fs}
	if s.failed != nil {
		for _, f := range fs {
			f.RemoveFrom(s.failed)
		}
	}
	for _, m := range s.Parked() {
		if s.maskOrNil().NodeBlocked(m) {
			continue // component still down; stays parked
		}
		delete(s.parked, m) // Join must not see it as parked
		if _, err := s.Join(m); err != nil {
			// Still partitioned (or worse): back to parked.
			s.park(m)
			continue
		}
		s.stats.Readmissions++
		rep.Readmitted = append(rep.Readmitted, m)
	}
	rep.StillParked = s.Parked()
	return rep, nil
}
