package core

import (
	"fmt"
	"math"
	"slices"

	"smrp/internal/failure"
	"smrp/internal/graph"
)

// HealReport describes how a session recovered from a failure.
type HealReport struct {
	// Failure is the event that was healed.
	Failure failure.Failure
	// Disconnected lists the members the failure cut off, ascending.
	Disconnected []graph.NodeID
	// RecoveryDistance maps each recovered member to the weight of its
	// local detour (the paper's RD_R).
	RecoveryDistance map[graph.NodeID]float64
	// Detours maps each recovered member to its detour path
	// (member → … → reattachment point).
	Detours map[graph.NodeID]graph.Path
	// Unrecovered lists members for which no residual path existed.
	Unrecovered []graph.NodeID
	// Pruned lists stale relays reclaimed after recovery (soft-state expiry).
	Pruned []graph.NodeID
}

// TotalRecoveryDistance sums RD over recovered members.
func (r *HealReport) TotalRecoveryDistance() float64 {
	var total float64
	for _, d := range r.RecoveryDistance {
		total += d
	}
	return total
}

// FlushDead removes all tree state cut off from the source by the mask
// (every maximal dead subtree), returning the members that lost their
// branch. Surviving relays are kept even if childless — their soft state has
// not expired and they remain local-detour targets. The protocol layer calls
// this at failure-detection time and re-grafts members individually.
func (s *Session) FlushDead(mask *graph.Mask) ([]graph.NodeID, error) {
	surviving := failure.SurvivingNodes(s.tree, mask)
	if len(surviving) == 0 {
		return nil, failure.ErrSourceFailed
	}
	disconnected := failure.DisconnectedMembers(s.tree, mask)
	var deadRoots []graph.NodeID
	for _, n := range s.tree.Nodes() {
		if surviving[n] || n == s.tree.Source() {
			continue
		}
		p, ok := s.tree.Parent(n)
		if ok && (p == graph.Invalid || surviving[p]) {
			deadRoots = append(deadRoots, n)
		}
	}
	// Each detached subtree dirties the top-level branch it hung from:
	// ancestors between the source and the detachment point lose N_R, so
	// every surviving node in that branch needs its SHR repaired. The dirty
	// top is captured *before* the detach (afterwards the root may be
	// off-tree); when the dead root is itself a source child the whole
	// branch disappears and no surviving SHR changes (refresh skips the
	// then-off-tree top).
	var dirty []graph.NodeID
	for _, r := range deadRoots {
		if !s.tree.OnTree(r) {
			continue
		}
		dirty = append(dirty, s.tree.TopAncestor(r))
		if err := s.tree.DetachSubtree(r); err != nil {
			return nil, fmt.Errorf("flush dead: %w", err)
		}
	}
	for _, m := range disconnected {
		delete(s.lastUpSHR, m)
	}
	s.shr.refresh(s.tree, dirty...)
	return disconnected, nil
}

// RecoverGraft grafts a local-detour path (reattachment point → … → member)
// produced by failure recovery and restores the session bookkeeping for the
// recovered member.
func (s *Session) RecoverGraft(p graph.Path) error {
	if err := s.tree.Graft(p, true); err != nil {
		return err
	}
	s.shr.refresh(s.tree, s.tree.TopAncestor(p.Last()))
	s.recordUpSHR(p.Last())
	return nil
}

// Heal restores the session after the given failure using SMRP's local
// detours: dead tree state below the failure is flushed, then each
// disconnected member reconnects to the nearest unaffected on-tree node,
// nearest member first (each reconnection enlarges the live tree, modeling
// neighbor-assisted recovery). Surviving relays whose branches died are kept
// as detour targets during recovery and pruned afterwards.
//
// The failed component remains failed: subsequent operations on the session
// should treat the underlying graph as degraded (pass the same mask).
func (s *Session) Heal(f failure.Failure) (*HealReport, error) {
	mask := f.Mask()
	disconnected, err := s.FlushDead(mask)
	if err != nil {
		return nil, err
	}
	rep := &HealReport{
		Failure:          f,
		Disconnected:     disconnected,
		RecoveryDistance: make(map[graph.NodeID]float64),
		Detours:          make(map[graph.NodeID]graph.Path),
	}

	// Reconnect members nearest-first, letting the live tree grow.
	remaining := make(map[graph.NodeID]bool, len(rep.Disconnected))
	for _, m := range rep.Disconnected {
		remaining[m] = true
	}
	accept := func(n graph.NodeID) bool {
		return s.tree.OnTree(n) && !mask.NodeBlocked(n)
	}
	var dirty []graph.NodeID
	for len(remaining) > 0 {
		bestD := math.Inf(1)
		var bestM graph.NodeID = graph.Invalid
		var bestPath graph.Path
		for m := range remaining {
			p, d := graph.Path(nil), math.Inf(1)
			_, p, d = s.g.NearestOf(m, mask, accept)
			if p != nil && (d < bestD || (d == bestD && m < bestM)) {
				bestD, bestM, bestPath = d, m, p
			}
		}
		if bestM == graph.Invalid {
			for m := range remaining {
				rep.Unrecovered = append(rep.Unrecovered, m)
			}
			slices.Sort(rep.Unrecovered)
			break
		}
		delete(remaining, bestM)
		// bestPath runs member→…→survivor; graft wants survivor→…→member.
		if err := s.tree.Graft(bestPath.Reverse(), true); err != nil {
			return nil, fmt.Errorf("heal: regraft %d: %w", bestM, err)
		}
		dirty = append(dirty, s.tree.TopAncestor(bestM))
		rep.RecoveryDistance[bestM] = bestD
		rep.Detours[bestM] = bestPath
	}

	// Stale relays are childless non-members (N_R = 0), so pruning them
	// never changes a survivor's SHR — only the regrafted branches are
	// dirty. One batched repair covers every regraft.
	rep.Pruned = s.tree.PruneStale()
	s.shr.refresh(s.tree, dirty...)
	for _, m := range s.tree.Members() {
		if _, ok := s.lastUpSHR[m]; !ok {
			s.recordUpSHR(m)
		}
	}
	return rep, nil
}
