package core

import (
	"fmt"
	"testing"

	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

// snapshotSession captures everything observable about a session the batch
// path must reproduce exactly: the tree (nodes, parents, membership), member
// delays, SHR values, the parked set, and the work counters the two paths
// are required to agree on.
type sessionSnapshot struct {
	parents map[graph.NodeID]graph.NodeID
	members []graph.NodeID
	delays  map[graph.NodeID]float64
	shr     map[graph.NodeID]int
	parked  []graph.NodeID
	stats   Stats
}

func snapshot(t *testing.T, s *Session) sessionSnapshot {
	t.Helper()
	tr := s.Tree()
	snap := sessionSnapshot{
		parents: make(map[graph.NodeID]graph.NodeID),
		delays:  make(map[graph.NodeID]float64),
		members: tr.Members(),
		shr:     s.SHRSnapshot(),
		parked:  s.Parked(),
		stats:   s.Stats(),
	}
	for _, n := range tr.Nodes() {
		p, _ := tr.Parent(n)
		snap.parents[n] = p
		d, err := tr.DelayTo(n)
		if err != nil {
			t.Fatalf("DelayTo(%d): %v", n, err)
		}
		snap.delays[n] = d
	}
	return snap
}

// equalJoinResults compares two JoinResults field for field, bit-exact on the
// floats.
func equalJoinResults(a, b *JoinResult) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Member != b.Member || a.Merger != b.Merger || a.Delay != b.Delay ||
		a.SPFDelay != b.SPFDelay || a.MergerSHR != b.MergerSHR ||
		a.WithinBound != b.WithinBound {
		return false
	}
	if len(a.Connection) != len(b.Connection) || len(a.Reshaped) != len(b.Reshaped) {
		return false
	}
	for i := range a.Connection {
		if a.Connection[i] != b.Connection[i] {
			return false
		}
	}
	for i := range a.Reshaped {
		if a.Reshaped[i] != b.Reshaped[i] {
			return false
		}
	}
	return true
}

// TestJoinBatchBitIdentical is the batched-join equivalence property test:
// across randomized topologies, configurations, failure masks, and joiner
// lists (including duplicates, already-members, failed and partitioned
// joiners), JoinBatch must leave the session in exactly the state sequential
// Join calls do — same tree, same delays, same SHR table, same parked set,
// same per-joiner results and errors, and the same work counters apart from
// EnumSettled (where the batch's bounded sweeps must do no more work than
// the sequential reference) and BatchJoins (which only the batch counts).
func TestJoinBatchBitIdentical(t *testing.T) {
	const topologies = 50
	for trial := 0; trial < topologies; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := topology.NewRNG(0xBA7C4 + uint64(trial))
			n := 20 + rng.Intn(41) // 20..60 nodes
			g, err := topology.Waxman(topology.WaxmanConfig{
				N:               n,
				Alpha:           0.15 + 0.2*rng.Float64(),
				Beta:            topology.DefaultBeta,
				EnsureConnected: true,
			}, rng)
			if err != nil {
				t.Fatal(err)
			}
			if trial%2 == 0 {
				g.EnableSPFCache()
			}
			cfg := DefaultConfig()
			cfg.DThresh = 0.1 + 0.4*rng.Float64()
			cfg.ReshapeDelta = rng.Intn(4) // 0 disables Condition I
			if trial%3 == 0 {
				cfg.SHRMode = DeferredSHR
			}

			src := graph.NodeID(rng.Intn(n))
			seq, err := NewSession(g, src, cfg)
			if err != nil {
				t.Fatal(err)
			}
			bat, err := NewSession(g, src, cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Seed both sessions with a few members the ordinary way.
			for _, idx := range rng.Sample(n, 3) {
				m := graph.NodeID(idx)
				if m == src {
					continue
				}
				if _, err := seq.Join(m); err != nil {
					continue
				}
				if _, err := bat.Join(m); err != nil {
					t.Fatalf("seed join diverged for %d: %v", m, err)
				}
			}

			// Some trials run degraded: a random failure exercises the masked
			// SPF, parking, and ErrPartitioned paths inside the batch.
			if trial%2 == 1 {
				var f failure.Failure
				if es := g.Edges(); rng.Intn(2) == 0 && len(es) > 0 {
					e := es[rng.Intn(len(es))]
					f = failure.LinkDown(e.A, e.B)
				} else {
					down := graph.NodeID(rng.Intn(n))
					if down == src {
						down = (down + 1) % graph.NodeID(n)
					}
					f = failure.NodeDown(down)
				}
				seq.ApplyFailure(f)
				bat.ApplyFailure(f)
			}

			// A flash crowd with deliberate dirt: duplicates, the source, and
			// already-on-tree nodes all appear so error paths are compared too.
			k := 4 + rng.Intn(13) // 4..16 joiners
			joiners := make([]graph.NodeID, 0, k)
			for i := 0; i < k; i++ {
				joiners = append(joiners, graph.NodeID(rng.Intn(n)))
			}

			seqRes := make([]*JoinResult, len(joiners))
			seqErr := make([]error, len(joiners))
			for i, nr := range joiners {
				seqRes[i], seqErr[i] = seq.Join(nr)
			}
			batRes, batErr := bat.JoinBatch(joiners)

			for i := range joiners {
				if (seqErr[i] == nil) != (batErr[i] == nil) {
					t.Fatalf("joiner %d (%d): err %v vs %v", i, joiners[i], seqErr[i], batErr[i])
				}
				if seqErr[i] != nil && seqErr[i].Error() != batErr[i].Error() {
					t.Fatalf("joiner %d (%d): err %q vs %q", i, joiners[i], seqErr[i], batErr[i])
				}
				if !equalJoinResults(seqRes[i], batRes[i]) {
					t.Fatalf("joiner %d (%d): result %+v vs %+v", i, joiners[i], seqRes[i], batRes[i])
				}
			}

			a, b := snapshot(t, seq), snapshot(t, bat)
			if len(a.parents) != len(b.parents) {
				t.Fatalf("tree size %d vs %d", len(a.parents), len(b.parents))
			}
			for n, p := range a.parents {
				if b.parents[n] != p {
					t.Fatalf("node %d parent %d vs %d", n, p, b.parents[n])
				}
				if a.delays[n] != b.delays[n] {
					t.Fatalf("node %d delay %v vs %v", n, a.delays[n], b.delays[n])
				}
			}
			if fmt.Sprint(a.members) != fmt.Sprint(b.members) {
				t.Fatalf("members %v vs %v", a.members, b.members)
			}
			if fmt.Sprint(a.parked) != fmt.Sprint(b.parked) {
				t.Fatalf("parked %v vs %v", a.parked, b.parked)
			}
			if fmt.Sprint(a.shr) != fmt.Sprint(b.shr) {
				t.Fatalf("SHR %v vs %v", a.shr, b.shr)
			}

			// Work counters: identical protocol work, cheaper SPF work.
			as, bs := a.stats, b.stats
			if bs.EnumSettled > as.EnumSettled {
				t.Fatalf("batch settled more enumeration nodes than sequential: %d > %d",
					bs.EnumSettled, as.EnumSettled)
			}
			okJoins := 0
			for i := range batErr {
				if batErr[i] == nil {
					okJoins++
				}
			}
			if bs.BatchJoins != okJoins {
				t.Fatalf("BatchJoins = %d, want %d (successful batch joiners)", bs.BatchJoins, okJoins)
			}
			as.EnumSettled, bs.EnumSettled = 0, 0
			as.BatchJoins, bs.BatchJoins = 0, 0
			if as != bs {
				t.Fatalf("stats diverged:\nseq   %+v\nbatch %+v", as, bs)
			}
		})
	}
}

// TestJoinBatchEmpty pins the trivial cases: an empty batch does nothing and
// allocates no machinery, and a batch of one behaves exactly like Join.
func TestJoinBatchEmpty(t *testing.T) {
	s := fig4Session(t, DefaultConfig())
	res, errs := s.JoinBatch(nil)
	if len(res) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch returned %d results, %d errors", len(res), len(errs))
	}
	if st := s.Stats(); st.Joins != 0 || st.BatchJoins != 0 {
		t.Fatalf("empty batch did work: %+v", st)
	}
}

// TestRecoverGraftSetMatchesSequential verifies that the batched recovery
// graft leaves the same tree and SHR table as sequential RecoverGraft calls
// (the documented equivalence: the final tree is identical and the SHR
// repair recomputes from it).
func TestRecoverGraftSetMatchesSequential(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := topology.NewRNG(0x6AF7 + uint64(trial))
		n := 20 + rng.Intn(21)
		g, err := topology.Waxman(topology.WaxmanConfig{
			N: n, Alpha: 0.2, Beta: topology.DefaultBeta, EnsureConnected: true,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		src := graph.NodeID(0)
		mk := func() *Session {
			s, err := NewSession(g, src, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			for _, idx := range rng.Sample(n, 4) {
				if graph.NodeID(idx) != src {
					s.Join(graph.NodeID(idx)) //nolint:errcheck // unreachable seeds are fine
				}
			}
			return s
		}
		rngState := *rng // mk consumes rng; replay for the twin sessions
		probe := mk()
		*rng = rngState
		seq := mk()
		*rng = rngState
		bat := mk()

		// Recovery paths: nearest-attachment detours for a few off-tree
		// nodes, computed incrementally against a probe session so each path
		// is valid at its position in the batch (its interior stays off-tree
		// given the preceding grafts — the shape reconcile produces).
		var paths []graph.Path
		for v := 0; v < n && len(paths) < 4; v++ {
			m := graph.NodeID(v)
			if probe.Tree().OnTree(m) {
				continue
			}
			node, p, _ := g.NearestOf(m, nil, probe.Tree().OnTree)
			if node == graph.Invalid {
				continue
			}
			rp := p.Reverse()
			if err := probe.RecoverGraft(rp); err != nil {
				t.Fatal(err)
			}
			paths = append(paths, rp)
		}

		for _, p := range paths {
			if err := seq.RecoverGraft(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := bat.RecoverGraftSet(paths); err != nil {
			t.Fatal(err)
		}

		if fmt.Sprint(seq.Tree().Members()) != fmt.Sprint(bat.Tree().Members()) {
			t.Fatalf("members diverged: %v vs %v", seq.Tree().Members(), bat.Tree().Members())
		}
		for _, nd := range seq.Tree().Nodes() {
			sp, _ := seq.Tree().Parent(nd)
			bp, _ := bat.Tree().Parent(nd)
			if sp != bp {
				t.Fatalf("node %d parent %d vs %d", nd, sp, bp)
			}
		}
		if fmt.Sprint(seq.SHRSnapshot()) != fmt.Sprint(bat.SHRSnapshot()) {
			t.Fatalf("SHR diverged:\nseq   %v\nbatch %v", seq.SHRSnapshot(), bat.SHRSnapshot())
		}
	}
}
