package core

// Deterministic memory accounting for session standing state, in the style
// of graph.MemoryFootprint and Tree.MemoryFootprint: element counts times
// fixed per-element sizes, never live heap, so the multigroup study's
// per-group standing-bytes column is CI-stable across runs, machines, and
// worker counts.
const (
	// bytesPerSHRDenseEntry is one slot of a dense SHR table (int32).
	bytesPerSHRDenseEntry = 4
	// bytesPerSHRMapEntry is one entry of a sparse SHR table:
	// NodeID key (8) + int32 value (4) + map bucket overhead.
	bytesPerSHRMapEntry = 24
	// bytesPerBaselineEntry is one lastUpSHR entry (NodeID key + int value
	// + bucket overhead) — the Condition-I baseline kept per member.
	bytesPerBaselineEntry = 32
	// bytesPerParkedEntry is one parked-member entry.
	bytesPerParkedEntry = 16
)

// MemoryFootprint returns the deterministic byte accounting of the
// session's standing state: the tree (dense arrays or the sparse
// touched-node remap), the SHR table and its reshaping scratch twin, the
// per-member Condition-I baselines, and parked members. With sparse tree
// storage every term is O(|tree| + |members|); with dense storage the tree
// and SHR terms are O(topology) — the ratio between the two is what the
// megascale CI gate pins.
func (s *Session) MemoryFootprint() int64 {
	return s.tree.MemoryFootprint() +
		s.shr.vals.footprint() +
		s.hypoVals.footprint() +
		int64(len(s.lastUpSHR))*bytesPerBaselineEntry +
		int64(len(s.parked))*bytesPerParkedEntry
}
