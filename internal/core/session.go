package core

import (
	"errors"
	"fmt"
	"slices"

	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/multicast"
)

// Sentinel errors returned by Session operations. All are matchable with
// errors.Is through any wrapping the session applies.
var (
	// ErrAlreadyMember is returned when a join names an existing member.
	ErrAlreadyMember = errors.New("core: node is already a member")
	// ErrNoPath is returned when a joining node cannot reach the tree.
	ErrNoPath = errors.New("core: no path connects the node to the tree")
	// ErrNoCandidate is returned when candidate enumeration finds no
	// admissible connection path for a joiner (distinct from ErrNoPath: the
	// node may be reachable but every candidate is excluded by the mask).
	ErrNoCandidate = fmt.Errorf("%w: no candidate connection", ErrNoPath)
	// ErrPartitioned is returned when a member is genuinely cut off from the
	// source by the accumulated failures: no residual path exists. The
	// member is parked (see Parked) and re-admitted automatically once a
	// Repair — or a later recovery graft — makes it reachable again.
	ErrPartitioned = errors.New("core: member is partitioned from the source")
	// ErrNotMember aliases the tree-layer sentinel so callers can match
	// membership errors at this layer.
	ErrNotMember = multicast.ErrNotMember
	// ErrUnknownNode aliases the graph-layer sentinel for nodes outside the
	// session's topology.
	ErrUnknownNode = graph.ErrUnknownNode
)

// Session is a synchronous SMRP multicast session: a tree under
// construction plus the SHR bookkeeping and reshaping state the protocol
// maintains. It is the algorithmic heart of the reproduction; the
// message-level protocol in internal/protocol drives the same logic through
// simulated packets.
//
// Session is not safe for concurrent use.
type Session struct {
	cfg  Config
	g    *graph.Graph
	tree *multicast.Tree
	shr  *shrTable

	// lastUpSHR implements Condition I (§3.2.3): for each member, the SHR of
	// its upstream node as of the member's last path (re)selection
	// (SHR^old_{S,Ru} in the paper).
	lastUpSHR map[graph.NodeID]int

	// hypoVals/hypoStack are reusable buffers for the hypothetical-tree SHR
	// computation inside reshapeMember.
	hypoVals  shrVals
	hypoStack []graph.NodeID

	// failed accumulates every persistent failure applied to the session
	// (ApplyFailure/Recover); nil while the network is healthy. Path selection,
	// reshaping, and recovery all avoid the accumulated mask.
	failed *graph.Mask
	// parked holds members degraded out of the tree because no residual
	// path to the source existed under the accumulated failures. They are
	// re-admitted automatically by Repair or by a later Recover whose grafts
	// bring an on-tree node back within reach.
	parked map[graph.NodeID]bool

	stats Stats
}

// NewSession creates an SMRP session on g rooted at source.
func NewSession(g *graph.Graph, source graph.NodeID, cfg Config) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	newTree := multicast.New
	if cfg.TreeStorage == StorageSparse ||
		(cfg.TreeStorage == StorageAuto && g.NumNodes() >= SparseNodeThreshold) {
		newTree = multicast.NewSparse
	}
	tree, err := newTree(g, source)
	if err != nil {
		return nil, err
	}
	s := &Session{
		cfg:       cfg,
		g:         g,
		tree:      tree,
		lastUpSHR: make(map[graph.NodeID]int),
	}
	s.shr = newSHRTable(cfg.SHRMode, &s.stats)
	s.shr.init(tree)
	if cfg.Strategy != nil {
		if err := cfg.Strategy.Precompute(s); err != nil {
			return nil, fmt.Errorf("core: strategy %s precompute: %w", cfg.Strategy.Name(), err)
		}
	}
	return s, nil
}

// Strategy returns the session's active recovery strategy: the configured
// one, or a fresh SMRP (local-detour) strategy bound to this session when
// none was set.
func (s *Session) Strategy() RecoveryStrategy {
	if s.cfg.Strategy != nil {
		return s.cfg.Strategy
	}
	return &smrpStrategy{s: s}
}

// Tree returns the session's multicast tree. Callers must not mutate it
// directly; use Join/Leave/Reshape.
func (s *Session) Tree() *multicast.Tree { return s.tree }

// Config returns the session configuration.
func (s *Session) Config() Config { return s.cfg }

// Graph returns the graph the session routes over (for a domain sub-session,
// the induced subgraph it was built on). Callers must not mutate it.
func (s *Session) Graph() *graph.Graph { return s.g }

// Stats returns a copy of the session's work counters.
func (s *Session) Stats() Stats { return s.stats }

// SHR returns the current SHR value of on-tree node n (0 for the source).
func (s *Session) SHR(n graph.NodeID) (int, error) {
	if !s.tree.OnTree(n) {
		return 0, fmt.Errorf("SHR of %d: %w", n, multicast.ErrNotOnTree)
	}
	return s.shr.at(s.tree, n), nil
}

// SHRSnapshot returns SHR values for all on-tree nodes.
func (s *Session) SHRSnapshot() map[graph.NodeID]int {
	vals := s.shr.table(s.tree)
	out := make(map[graph.NodeID]int, s.tree.NumNodes())
	for _, n := range s.tree.Nodes() {
		out[n] = vals.at(n)
	}
	return out
}

// JoinResult describes the outcome of a member join.
type JoinResult struct {
	Member graph.NodeID
	// Merger is the on-tree node the new path merged at.
	Merger graph.NodeID
	// Connection is the newly grafted path (Merger first, Member last);
	// a single-node path means the member was already an on-tree relay.
	Connection graph.Path
	// Delay is the member's end-to-end delay on the tree after joining.
	Delay float64
	// SPFDelay is the unicast shortest-path delay from the source.
	SPFDelay float64
	// MergerSHR is SHR(S, Merger) at selection time.
	MergerSHR int
	// WithinBound reports whether the selected path met the
	// (1+DThresh)·SPF bound (false only in the no-feasible-candidate
	// fallback).
	WithinBound bool
	// Reshaped lists members that switched paths due to Condition I
	// triggers caused by this join.
	Reshaped []graph.NodeID
}

// Join admits nr into the session following the paper's Path Selection
// Criterion, grafts the chosen path, and then evaluates Condition-I
// reshaping triggers. It fails if nr is already a member or cannot reach the
// tree.
func (s *Session) Join(nr graph.NodeID) (*JoinResult, error) {
	return s.join(nr, nil)
}

// join is the shared admission engine behind Join and JoinBatch. A non-nil
// batchState substitutes the batch's amortized machinery — the shared
// source-rooted SPF tree and the bounded candidate sweep — for the
// per-call equivalents; every substitution is value-identical (see
// batch.go), so the two paths produce bit-identical sessions.
func (s *Session) join(nr graph.NodeID, bs *batchState) (*JoinResult, error) {
	if nr < 0 || int(nr) >= s.g.NumNodes() {
		return nil, fmt.Errorf("join %d: %w", nr, ErrUnknownNode)
	}
	if s.tree.IsMember(nr) {
		return nil, fmt.Errorf("join %d: %w", nr, ErrAlreadyMember)
	}
	mask := s.maskOrNil()
	if mask.NodeBlocked(nr) {
		return nil, fmt.Errorf("join %d: %w", nr, failure.ErrMemberFailed)
	}

	var spfDelay float64
	var spfReachable bool
	if bs != nil {
		// The batch's shared source tree answers every joiner's SPF query:
		// same source, same mask (joins never move the failure mask), so the
		// distances are the ones ShortestPath would have produced.
		spfReachable = bs.spt.Reachable(nr)
		spfDelay = bs.spt.Dist[nr]
	} else {
		var spfPath graph.Path
		spfPath, spfDelay = s.g.ShortestPath(s.tree.Source(), nr, mask)
		spfReachable = spfPath != nil
	}
	if !spfReachable && nr != s.tree.Source() {
		if mask != nil {
			// Degrade gracefully: the joiner is alive but the accumulated
			// failures cut it off. Park it for automatic re-admission.
			s.park(nr)
			return nil, fmt.Errorf("join %d: %w", nr, ErrPartitioned)
		}
		return nil, fmt.Errorf("join %d: %w", nr, ErrNoPath)
	}

	res := &JoinResult{Member: nr, SPFDelay: spfDelay, WithinBound: true}

	if s.tree.OnTree(nr) {
		// An on-tree relay (or the source) becomes a receiver in place.
		if err := s.tree.Graft(graph.Path{nr}, true); err != nil {
			return nil, err
		}
		res.Merger = nr
		res.Connection = graph.Path{nr}
	} else {
		cand, ok, err := s.selectJoinPath(nr, spfDelay, nil, bs)
		if err != nil {
			if mask != nil && errors.Is(err, ErrNoPath) {
				s.park(nr)
				return nil, fmt.Errorf("join %d: %w", nr, ErrPartitioned)
			}
			return nil, fmt.Errorf("join %d: %w", nr, err)
		}
		if err := s.tree.Graft(cand.Connection, true); err != nil {
			return nil, fmt.Errorf("join %d: graft: %w", nr, err)
		}
		res.Merger = cand.Merger
		res.Connection = cand.Connection
		res.MergerSHR = cand.SHR
		res.WithinBound = ok
	}

	delete(s.parked, nr)
	s.stats.Joins++
	// The join perturbs N_R (and therefore SHR) only inside the member's
	// top-level branch — repair exactly that dirty subtree.
	s.shr.refresh(s.tree, s.tree.TopAncestor(nr))
	s.recordUpSHR(nr)

	if s.cfg.ReshapeDelta > 0 {
		res.Reshaped = s.checkConditionI(nr)
	}
	if d, err := s.tree.DelayTo(nr); err == nil {
		res.Delay = d
	}
	s.notifyStrategy()
	return res, nil
}

// selectJoinPath enumerates candidates for joiner (per the configured
// knowledge mode) and applies the selection criterion. extraMask lets
// reshaping exclude the member's own subtree; the session's accumulated
// failure mask is always folded in on top. A non-nil batchState routes
// full-topology enumeration through the batch's shared sweep in bounded
// mode (value-identical; see enumerateFullWith).
func (s *Session) selectJoinPath(joiner graph.NodeID, spfDelay float64, extraMask *graph.Mask, bs *batchState) (Candidate, bool, error) {
	shr := s.shr.table(s.tree)
	mask := s.opMask(extraMask)
	var cands []Candidate
	switch s.cfg.Knowledge {
	case QueryScheme:
		cands = enumerateQuery(s.tree, joiner, shr, mask, &s.stats)
	default:
		if bs != nil {
			cands = enumerateFullWith(bs.sw, true, s.tree, joiner, shr, mask, &s.stats)
		} else {
			cands = enumerateFull(s.tree, joiner, shr, mask, &s.stats)
		}
	}
	s.stats.CandidatesSeen += len(cands)
	if len(cands) == 0 {
		return Candidate{}, false, ErrNoCandidate
	}
	best, ok := selectCandidate(cands, spfDelay, s.cfg.DThresh)
	return best, ok, nil
}

// maskOrNil returns the accumulated failure mask, or nil while healthy (the
// nil fast path keeps the healthy hot path and its SPF-cache keys identical
// to a mask-free session).
func (s *Session) maskOrNil() *graph.Mask {
	if s.failed.IsEmpty() {
		return nil
	}
	return s.failed
}

// opMask combines an operation-specific extra mask with the accumulated
// failure mask, avoiding allocation whenever either side is empty.
func (s *Session) opMask(extra *graph.Mask) *graph.Mask {
	if s.failed.IsEmpty() {
		return extra
	}
	if extra.IsEmpty() {
		return s.failed
	}
	return extra.Union(s.failed)
}

// park records m as degraded out of the session (no residual path).
func (s *Session) park(m graph.NodeID) {
	if s.parked == nil {
		s.parked = make(map[graph.NodeID]bool)
	}
	if !s.parked[m] {
		s.parked[m] = true
		s.stats.Parks++
	}
	delete(s.lastUpSHR, m)
}

// Parked returns the members currently degraded out of the tree because the
// accumulated failures partition them from the source, in ascending order.
func (s *Session) Parked() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(s.parked))
	for m := range s.parked {
		out = append(out, m)
	}
	slices.Sort(out)
	return out
}

// NumParked reports how many members are currently parked, without the
// allocation Parked pays to build its sorted slice.
func (s *Session) NumParked() int { return len(s.parked) }

// IsParked reports whether m is currently parked.
func (s *Session) IsParked(m graph.NodeID) bool { return s.parked[m] }

// FailedMask returns a copy of the accumulated failure mask (empty while
// healthy).
func (s *Session) FailedMask() *graph.Mask { return s.failed.Clone() }

// ApplyFailure folds persistent failures into the session's accumulated
// mask without healing. Recover applies its failures itself; use this when the
// protocol layer detects a failure before recovery begins.
func (s *Session) ApplyFailure(fs ...failure.Failure) {
	if len(fs) == 0 {
		return
	}
	if s.failed == nil {
		s.failed = graph.NewMask()
	}
	for _, f := range fs {
		f.ApplyTo(s.failed)
	}
}

// Leave removes member m and prunes its unused branch.
func (s *Session) Leave(m graph.NodeID) error {
	// The dirty subtree root must be captured before the leave: the prune
	// may remove part (or all) of the branch.
	top := s.tree.TopAncestor(m)
	if err := s.tree.Leave(m); err != nil {
		return err
	}
	delete(s.lastUpSHR, m)
	s.stats.Leaves++
	s.shr.refresh(s.tree, top)
	s.notifyStrategy()
	return nil
}

// recordUpSHR stores SHR(S, parent(m)) as m's Condition-I baseline.
func (s *Session) recordUpSHR(m graph.NodeID) {
	p, ok := s.tree.Parent(m)
	if !ok || p == graph.Invalid {
		s.lastUpSHR[m] = 0
		return
	}
	s.lastUpSHR[m] = s.shr.at(s.tree, p)
}

// checkConditionI scans members (except the one that just joined) for
// Condition-I triggers and reshapes those that fire. A single pass is made
// per join — reshaping refreshes baselines, so cascades settle across
// subsequent joins rather than looping here.
func (s *Session) checkConditionI(justJoined graph.NodeID) []graph.NodeID {
	var reshaped []graph.NodeID
	for _, m := range s.tree.Members() {
		if m == justJoined {
			continue
		}
		p, ok := s.tree.Parent(m)
		if !ok || p == graph.Invalid {
			continue
		}
		cur := s.shr.at(s.tree, p)
		if cur-s.lastUpSHR[m] < s.cfg.ReshapeDelta {
			continue
		}
		s.stats.ReshapeChecks++
		moved, err := s.reshapeMember(m)
		if err != nil {
			continue // a failed reshape leaves the member on its old path
		}
		if moved {
			reshaped = append(reshaped, m)
		} else {
			// Triggered but current path is still best: reset the baseline
			// so the same growth does not re-trigger immediately.
			s.recordUpSHR(m)
		}
	}
	slices.Sort(reshaped)
	return reshaped
}

// ReshapeAll implements Condition II (§3.2.3): every member re-runs path
// selection as if it had just joined (the protocol layer drives this from a
// periodic timer). It returns the members that actually switched paths.
func (s *Session) ReshapeAll() []graph.NodeID {
	if !s.cfg.PeriodicReshape {
		return nil
	}
	var reshaped []graph.NodeID
	for _, m := range s.tree.Members() {
		s.stats.ReshapeChecks++
		moved, err := s.reshapeMember(m)
		if err != nil {
			continue
		}
		if moved {
			reshaped = append(reshaped, m)
		}
	}
	return reshaped
}

// reshapeMember evaluates a new path for member m per §3.2.3 and switches if
// the new path is strictly better. The evaluation removes m's subtree from a
// hypothetical copy of the tree so SHR values are adjusted for m's own
// contribution before comparison (the paper's "should be adjusted" note).
// It reports whether a switch happened.
func (s *Session) reshapeMember(m graph.NodeID) (bool, error) {
	if !s.tree.OnTree(m) {
		return false, fmt.Errorf("reshape %d: %w", m, multicast.ErrNotOnTree)
	}
	if m == s.tree.Source() {
		return false, nil
	}
	parent, _ := s.tree.Parent(m)
	if parent == graph.Invalid {
		return false, nil
	}

	// Hypothetical tree without m's subtree.
	hypo := s.tree.Clone()
	subNodes, err := s.tree.SubtreeNodes(m)
	if err != nil {
		return false, err
	}
	if err := hypo.RemoveSubtree(m); err != nil {
		return false, err
	}
	s.hypoVals, s.hypoStack = computeSHRInto(hypo, s.hypoVals, s.hypoStack)
	hypoSHR := s.hypoVals
	if s.cfg.SHRMode == DeferredSHR {
		s.stats.SHRComputes += hypo.NumNodes()
	}

	// New-path candidates must avoid m's own subtree (cycle prevention) and
	// every failed component. Block the whole subtree in one call, then lift
	// m itself — m is the joiner, not an obstacle.
	mask := s.opMask(graph.NewMask().BlockNodes(subNodes...).UnblockNode(m))
	var cands []Candidate
	switch s.cfg.Knowledge {
	case QueryScheme:
		cands = enumerateQuery(hypo, m, hypoSHR, mask, &s.stats)
	default:
		cands = enumerateFull(hypo, m, hypoSHR, mask, &s.stats)
	}
	s.stats.CandidatesSeen += len(cands)
	if len(cands) == 0 {
		return false, nil
	}

	_, spfDelay := s.g.ShortestPath(s.tree.Source(), m, s.maskOrNil())
	best, ok := selectCandidate(cands, spfDelay, s.cfg.DThresh)
	if !ok {
		return false, nil // no admissible alternative; stay put
	}

	// Current attachment, viewed on the hypothetical tree: the deepest
	// ancestor of m that survives m's departure is the current merger.
	curMerger := parent
	for !hypo.OnTree(curMerger) {
		p, okp := s.tree.Parent(curMerger)
		if !okp || p == graph.Invalid {
			break
		}
		curMerger = p
	}
	curSHR := hypoSHR.at(curMerger)
	curDelay, err := s.tree.DelayTo(m)
	if err != nil {
		return false, err
	}

	improves := best.SHR < curSHR ||
		(best.SHR == curSHR && best.TotalDelay < curDelay-delayEps)
	if !improves {
		return false, nil
	}
	// The switch dirties both the branch m leaves and the branch it joins.
	oldTop := s.tree.TopAncestor(m)
	if err := s.tree.Reroute(m, best.Connection); err != nil {
		return false, fmt.Errorf("reshape %d: %w", m, err)
	}
	s.stats.Reshapes++
	s.shr.refresh(s.tree, oldTop, s.tree.TopAncestor(m))
	s.recordUpSHR(m)
	s.notifyStrategy()
	return true, nil
}
