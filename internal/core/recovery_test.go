package core

import (
	"errors"
	"testing"

	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

func TestHealSingleMember(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DThresh = 0 // SPF-shaped tree: C and D share S→A
	s, err := NewSession(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []graph.NodeID{3, 4} {
		if _, err := s.Join(m); err != nil {
			t.Fatal(err)
		}
	}
	// Fail L_AD: D (4) is cut off; local detour D→C with RD 2.
	rep, err := s.Recover(failure.LinkDown(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Disconnected) != 1 || rep.Disconnected[0] != 4 {
		t.Fatalf("disconnected = %v", rep.Disconnected)
	}
	if rd := rep.RecoveryDistance[4]; rd != 2 {
		t.Errorf("RD = %v, want 2", rd)
	}
	if rep.Detours[4].String() != "4→3" {
		t.Errorf("detour = %v, want D→C", rep.Detours[4])
	}
	if len(rep.Unrecovered) != 0 {
		t.Errorf("unrecovered = %v", rep.Unrecovered)
	}
	if rep.TotalRecoveryDistance() != 2 {
		t.Errorf("total RD = %v", rep.TotalRecoveryDistance())
	}
	// Tree is whole again and valid.
	if err := s.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, m := range []graph.NodeID{3, 4} {
		if !s.Tree().IsMember(m) {
			t.Errorf("member %d lost after heal", m)
		}
	}
	if p, _ := s.Tree().Parent(4); p != 3 {
		t.Errorf("D's new parent = %d, want C", p)
	}
	// The healed tree must not use the failed link.
	if s.Tree().UsesEdge(graph.MakeEdgeID(1, 4)) {
		t.Error("healed tree still uses the failed link")
	}
}

func TestHealCascadedRecovery(t *testing.T) {
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DThresh = 0
	s, err := NewSession(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []graph.NodeID{3, 4} {
		if _, err := s.Join(m); err != nil {
			t.Fatal(err)
		}
	}
	// Fail L_SA: both members cut. D reconnects via B (distance 4); then C
	// reconnects to the now-live D (distance 2) — neighbor-assisted
	// recovery growing the live tree.
	rep, err := s.Recover(failure.LinkDown(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Disconnected) != 2 {
		t.Fatalf("disconnected = %v", rep.Disconnected)
	}
	if rd := rep.RecoveryDistance[4]; rd != 4 {
		t.Errorf("RD(D) = %v, want 4 (D→B→S)", rd)
	}
	if rd := rep.RecoveryDistance[3]; rd != 2 {
		t.Errorf("RD(C) = %v, want 2 (C→D after D recovered)", rd)
	}
	if err := s.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Tree().UsesEdge(graph.MakeEdgeID(0, 1)) {
		t.Error("healed tree uses failed link")
	}
}

func TestHealSourceFailure(t *testing.T) {
	s := fig4Session(t, DefaultConfig())
	if _, err := s.Join(f4E); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(failure.NodeDown(f4S)); !errors.Is(err, failure.ErrSourceFailed) {
		t.Errorf("heal source failure err = %v", err)
	}
}

// A rejected source failure must leave the session untouched: the mask stays
// empty and later operations behave as if the bad request never happened.
// (Regression: HealSet used to fold the batch into the mask *before*
// discovering the source was in it, permanently bricking the session — every
// subsequent Join returned ErrPartitioned — even though the caller got an
// error back.)
func TestHealSourceFailureLeavesSessionIntact(t *testing.T) {
	s := fig4Session(t, DefaultConfig())
	if _, err := s.Join(f4E); err != nil {
		t.Fatal(err)
	}
	// The whole batch is rejected, including the sibling link failure: the
	// cut is correlated, so applying half of it would misrepresent it.
	batch := []failure.Failure{failure.LinkDown(f4S, f4A), failure.NodeDown(f4S)}
	if _, err := s.Recover(batch...); !errors.Is(err, failure.ErrSourceFailed) {
		t.Fatalf("heal batch with source err = %v, want ErrSourceFailed", err)
	}
	if snap := s.Snapshot(); snap.Degraded {
		t.Errorf("session degraded after rejected source failure (mask mutated)")
	}
	if _, err := s.Join(f4G); err != nil {
		t.Errorf("join after rejected source failure: %v", err)
	}
	if err := s.Tree().Validate(); err != nil {
		t.Error(err)
	}
}

func TestHealUnrecoverableMember(t *testing.T) {
	// S(0)-1-2 line, member at 2; failing 1-2 with no alternative strands 2.
	g := graph.New(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Join(2); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Recover(failure.LinkDown(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unrecovered) != 1 || rep.Unrecovered[0] != 2 {
		t.Errorf("unrecovered = %v", rep.Unrecovered)
	}
	if err := s.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	// The stranded member's state is flushed; stale relay 1 pruned.
	if s.Tree().OnTree(2) || s.Tree().OnTree(1) {
		t.Errorf("stale state kept: nodes = %v", s.Tree().Nodes())
	}
}

func TestHealNodeFailure(t *testing.T) {
	s := fig4Session(t, DefaultConfig())
	for _, m := range []graph.NodeID{f4E, f4G, f4F} {
		if _, err := s.Join(m); err != nil {
			t.Fatal(err)
		}
	}
	// After the Figure-4 sequence the tree is S-A-D-F, S-A-C-E, S-B-G.
	// Node D fails: F is disconnected (E is on the C branch).
	rep, err := s.Recover(failure.NodeDown(f4D))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Disconnected) != 1 || rep.Disconnected[0] != f4F {
		t.Fatalf("disconnected = %v, want [F]", rep.Disconnected)
	}
	if err := s.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.Tree().IsMember(f4F) {
		t.Error("F not recovered")
	}
	if s.Tree().OnTree(f4D) {
		t.Error("failed node still on tree")
	}
	// F's detour must avoid D: F→G (0.8) reaching the live B branch.
	if rep.Detours[f4F].ContainsNode(f4D) {
		t.Errorf("detour %v passes through failed node", rep.Detours[f4F])
	}
}

// TestHealRandomWorstCases drives Heal across random scenarios and checks
// global invariants: healed trees are valid, avoid the failed component, and
// retain every recoverable member.
func TestHealRandomWorstCases(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		rng := topology.NewRNG(seed)
		g, err := topology.Waxman(topology.WaxmanConfig{
			N: 70, Alpha: 0.2, Beta: topology.DefaultBeta, EnsureConnected: true,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSession(g, 0, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		members := rng.Sample(69, 12)
		for _, m := range members {
			if _, err := s.Join(graph.NodeID(m + 1)); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		victim := graph.NodeID(members[0] + 1)
		f, err := failure.WorstCaseFor(s.Tree(), victim)
		if err != nil {
			t.Fatal(err)
		}
		before := s.Tree().NumMembers()
		rep, err := s.Recover(f)
		if err != nil {
			t.Fatalf("seed %d: heal: %v", seed, err)
		}
		if err := s.Tree().Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if s.Tree().UsesEdge(f.Edge) {
			t.Errorf("seed %d: healed tree uses failed link", seed)
		}
		if got := s.Tree().NumMembers() + len(rep.Unrecovered); got != before {
			t.Errorf("seed %d: members %d + unrecovered %d != %d",
				seed, s.Tree().NumMembers(), len(rep.Unrecovered), before)
		}
		// Session remains usable after healing: one more join. The session
		// now treats the graph as degraded, so candidates the failure cut
		// off park with ErrPartitioned — skip those and join the first
		// reachable node.
		for n := 1; n < g.NumNodes(); n++ {
			nd := graph.NodeID(n)
			if s.Tree().IsMember(nd) || f.Mask().NodeBlocked(nd) {
				continue
			}
			if _, err := s.Join(nd); err != nil {
				if errors.Is(err, ErrPartitioned) {
					continue
				}
				t.Fatalf("seed %d: post-heal join: %v", seed, err)
			}
			break
		}
		if err := s.Tree().Validate(); err != nil {
			t.Fatalf("seed %d: post-heal join invariant: %v", seed, err)
		}
	}
}
