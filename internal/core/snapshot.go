package core

import (
	"slices"

	"smrp/internal/graph"
)

// MemberState is one member's view in a Snapshot: its current end-to-end
// delay on the tree and the SHR of the node it attaches through (its parent;
// 0 when the member is the source or a source child).
type MemberState struct {
	Node  graph.NodeID `json:"node"`
	Delay float64      `json:"delay"`
	SHR   int          `json:"shr"`
}

// Snapshot is a self-contained, value-typed copy of a session's observable
// state: membership, parked members, per-member delay/SHR, tree shape
// counters, and the work statistics. It shares no memory with the session,
// so a snapshot taken inside the session's owning goroutine may be handed to
// other goroutines (the serving layer's SSE coalescing and GET handlers rely
// on exactly this).
type Snapshot struct {
	Source graph.NodeID `json:"source"`
	// Members lists current receivers ascending by node ID.
	Members []MemberState `json:"members"`
	// Parked lists members degraded out of the tree (partitioned), ascending.
	Parked []graph.NodeID `json:"parked"`
	// OnTreeNodes counts all tree nodes (members + relays + source).
	OnTreeNodes int `json:"on_tree_nodes"`
	// TreeCost is the total weight of the tree's edges.
	TreeCost float64 `json:"tree_cost"`
	// Degraded reports whether the accumulated failure mask is non-empty.
	Degraded bool `json:"degraded"`
	// Stats is a copy of the session's work counters.
	Stats Stats `json:"stats"`
}

// Snapshot captures the session's observable state as a value. It must be
// called from the goroutine that owns the session (like every other method);
// the returned value is independent of the session and safe to share.
func (s *Session) Snapshot() Snapshot {
	snap := Snapshot{
		Source:      s.tree.Source(),
		OnTreeNodes: s.tree.NumNodes(),
		Parked:      s.Parked(),
		Degraded:    !s.failed.IsEmpty(),
		Stats:       s.stats,
	}
	if cost, err := s.tree.Cost(); err == nil {
		snap.TreeCost = cost
	}
	members := s.tree.Members()
	slices.Sort(members)
	snap.Members = make([]MemberState, 0, len(members))
	for _, m := range members {
		ms := MemberState{Node: m}
		if d, err := s.tree.DelayTo(m); err == nil {
			ms.Delay = d
		}
		if p, ok := s.tree.Parent(m); ok && p != graph.Invalid {
			ms.SHR = s.shr.at(s.tree, p)
		}
		snap.Members = append(snap.Members, ms)
	}
	return snap
}
