package topology

import (
	"encoding/json"
	"fmt"
	"io"

	"smrp/internal/graph"
)

// jsonTopology is the on-disk representation of a topology.
type jsonTopology struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	ID int     `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

type jsonEdge struct {
	U      int     `json:"u"`
	V      int     `json:"v"`
	Weight float64 `json:"weight"`
}

// WriteJSON serializes g to w as indented JSON, with nodes and edges in
// deterministic order.
func WriteJSON(w io.Writer, g *graph.Graph) error {
	jt := jsonTopology{
		Nodes: make([]jsonNode, g.NumNodes()),
		Edges: make([]jsonEdge, 0, g.NumEdges()),
	}
	for i := 0; i < g.NumNodes(); i++ {
		p := g.Pos(graph.NodeID(i))
		jt.Nodes[i] = jsonNode{ID: i, X: p.X, Y: p.Y}
	}
	for _, e := range g.Edges() {
		wgt, _ := g.EdgeWeight(e.A, e.B)
		jt.Edges = append(jt.Edges, jsonEdge{U: int(e.A), V: int(e.B), Weight: wgt})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jt); err != nil {
		return fmt.Errorf("encode topology: %w", err)
	}
	return nil
}

// ReadJSON parses a topology previously written by WriteJSON.
func ReadJSON(r io.Reader) (*graph.Graph, error) {
	var jt jsonTopology
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("decode topology: %w", err)
	}
	for i, n := range jt.Nodes {
		if n.ID != i {
			return nil, fmt.Errorf("decode topology: node IDs must be dense, got %d at index %d", n.ID, i)
		}
	}
	g := graph.New(len(jt.Nodes))
	for _, n := range jt.Nodes {
		g.SetPos(graph.NodeID(n.ID), graph.Point{X: n.X, Y: n.Y})
	}
	for _, e := range jt.Edges {
		if err := g.AddEdge(graph.NodeID(e.U), graph.NodeID(e.V), e.Weight); err != nil {
			return nil, fmt.Errorf("decode topology: %w", err)
		}
	}
	return g, nil
}
