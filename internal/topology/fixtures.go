package topology

import (
	"fmt"

	"smrp/internal/graph"
)

// Fixture names for the worked examples in the paper. Node naming follows
// the figures; the Source constant is always node 0.

// Fig1Nodes gives symbolic names to the nodes of the paper's Figure 1
// topology, in ID order.
var Fig1Nodes = []string{"S", "A", "B", "C", "D"}

// PaperFig1 reconstructs the 5-node topology of the paper's Figure 1:
//
//	S-A:1  S-B:2  A-C:2  A-D:1  C-D:2  B-D:2
//
// The SPF multicast tree for members {C, D} is S→A→C and S→A→D. Failing
// L_AD, the post-reconvergence shortest path for D is D→B→S (weight 4, all
// new links) while the local detour is D→C (weight 2, RD_D = 2) reusing C's
// on-tree path — the example that motivates SMRP's recovery-distance metric.
// Failing L_SA instead disconnects both C and D simultaneously (the
// motivation for reducing path sharing, Figure 2).
func PaperFig1() (*graph.Graph, error) {
	g := graph.New(5)
	edges := []struct {
		u, v graph.NodeID
		w    float64
	}{
		{u: 0, v: 1, w: 1}, // S-A
		{u: 0, v: 2, w: 2}, // S-B
		{u: 1, v: 3, w: 2}, // A-C
		{u: 1, v: 4, w: 1}, // A-D
		{u: 3, v: 4, w: 2}, // C-D
		{u: 2, v: 4, w: 2}, // B-D
	}
	for _, e := range edges {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			return nil, fmt.Errorf("fig1: %w", err)
		}
	}
	// Lay the nodes out roughly as drawn, for visualization tools.
	g.SetPos(0, graph.Point{X: 0.5, Y: 1.0})
	g.SetPos(1, graph.Point{X: 0.3, Y: 0.6})
	g.SetPos(2, graph.Point{X: 0.8, Y: 0.6})
	g.SetPos(3, graph.Point{X: 0.2, Y: 0.2})
	g.SetPos(4, graph.Point{X: 0.6, Y: 0.2})
	return g, nil
}

// Fig4Nodes gives symbolic names to the nodes of the Figure 4/5 topology,
// in ID order.
var Fig4Nodes = []string{"S", "A", "B", "D", "E", "G", "F", "C"}

// PaperFig4 reconstructs a topology consistent with the paper's Figures 4
// and 5 (basic tree construction and reshaping with members E, G, F and
// D_thresh = 0.3). The exact figure is not fully legible from the text, so
// this fixture is engineered to reproduce the *decisions* the paper narrates:
//
//   - E joins first via the shortest path E→D→A→S, giving SHR(S,D) = 2.
//   - G then prefers G→B→S (merger S, SHR 0) over the shorter G→F→D→A→S.
//   - F's S-merger options (F→B→S, F→G→B→S) exceed (1+0.3)·SPF, so F joins
//     via F→D→A→S, raising SHR(S,D) to 4.
//   - E's reshaping (Condition I) then switches E to E→C→A→S whose merger A
//     has SHR 2 < 4.
//
// Node IDs: S=0 A=1 B=2 D=3 E=4 G=5 F=6 C=7.
func PaperFig4() (*graph.Graph, error) {
	g := graph.New(8)
	edges := []struct {
		u, v graph.NodeID
		w    float64
	}{
		{u: 0, v: 1, w: 1.0}, // S-A
		{u: 0, v: 2, w: 1.6}, // S-B
		{u: 1, v: 3, w: 1.0}, // A-D
		{u: 1, v: 7, w: 1.1}, // A-C
		{u: 3, v: 4, w: 0.6}, // D-E
		{u: 7, v: 4, w: 0.9}, // C-E
		{u: 3, v: 6, w: 0.7}, // D-F
		{u: 6, v: 5, w: 0.8}, // F-G
		{u: 2, v: 5, w: 2.0}, // B-G
		{u: 2, v: 6, w: 2.6}, // B-F
	}
	for _, e := range edges {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			return nil, fmt.Errorf("fig4: %w", err)
		}
	}
	g.SetPos(0, graph.Point{X: 0.5, Y: 1.0})
	g.SetPos(1, graph.Point{X: 0.3, Y: 0.7})
	g.SetPos(2, graph.Point{X: 0.8, Y: 0.7})
	g.SetPos(3, graph.Point{X: 0.25, Y: 0.4})
	g.SetPos(7, graph.Point{X: 0.45, Y: 0.45})
	g.SetPos(4, graph.Point{X: 0.35, Y: 0.15})
	g.SetPos(6, graph.Point{X: 0.6, Y: 0.3})
	g.SetPos(5, graph.Point{X: 0.85, Y: 0.25})
	return g, nil
}

// Line returns the path graph 0-1-...-(n-1) with unit weights; a convenient
// deterministic fixture for protocol tests.
func Line(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("line: %w: n = %d, need at least 2", ErrBadConfig, n)
	}
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.SetPos(graph.NodeID(i), graph.Point{X: float64(i) / float64(n-1)})
		if err := g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1); err != nil {
			return nil, err
		}
	}
	g.SetPos(graph.NodeID(n-1), graph.Point{X: 1})
	return g, nil
}

// Ring returns the cycle graph over n nodes with unit weights.
func Ring(n int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("ring: %w: n = %d, need at least 3", ErrBadConfig, n)
	}
	g, err := Line(n)
	if err != nil {
		return nil, err
	}
	if err := g.AddEdge(0, graph.NodeID(n-1), 1); err != nil {
		return nil, err
	}
	return g, nil
}

// Grid returns the rows×cols grid graph with unit weights; node ID is
// r*cols + c.
func Grid(rows, cols int) (*graph.Graph, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("grid: %w: %dx%d too small", ErrBadConfig, rows, cols)
	}
	g := graph.New(rows * cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.SetPos(id(r, c), graph.Point{X: float64(c), Y: float64(r)})
			if c+1 < cols {
				if err := g.AddEdge(id(r, c), id(r, c+1), 1); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := g.AddEdge(id(r, c), id(r+1, c), 1); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}
