// Package topology generates the network topologies used by the SMRP
// evaluation: Waxman random graphs (the GT-ITM model the paper configures),
// transit–stub hierarchies for the hierarchical recovery architecture, and
// small deterministic fixtures reproducing the paper's worked figures.
//
// All generation is driven by an explicit, seedable RNG so every experiment
// in the repository is reproducible bit-for-bit.
package topology

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**, seeded via splitmix64). It is intentionally independent of
// math/rand so that generated topologies stay stable across Go releases.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed into the xoshiro state.
	x := seed
	for i := range r.s {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n) via unbiased mask rejection. It
// panics if n <= 0, matching math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("topology: Intn called with non-positive n")
	}
	un := uint64(n)
	mask := ^uint64(0) >> leadingZeros(un)
	for {
		candidate := r.Uint64() & mask
		if candidate < un {
			return int(candidate)
		}
	}
}

// leadingZeros counts leading zero bits of x (x != 0 assumed for callers).
func leadingZeros(x uint64) uint {
	if x == 0 {
		return 64
	}
	var n uint
	if x <= 0x00000000FFFFFFFF {
		n += 32
		x <<= 32
	}
	if x <= 0x0000FFFFFFFFFFFF {
		n += 16
		x <<= 16
	}
	if x <= 0x00FFFFFFFFFFFFFF {
		n += 8
		x <<= 8
	}
	if x <= 0x0FFFFFFFFFFFFFFF {
		n += 4
		x <<= 4
	}
	if x <= 0x3FFFFFFFFFFFFFFF {
		n += 2
		x <<= 2
	}
	if x <= 0x7FFFFFFFFFFFFFFF {
		n++
	}
	return n
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. It panics if k > n.
func (r *RNG) Sample(n, k int) []int {
	if k > n {
		panic("topology: Sample k > n")
	}
	return r.Perm(n)[:k]
}

// NormFloat64 returns a standard normal variate (Box–Muller). Provided for
// jittered workload generators.
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Split derives an independent child generator; useful to give each scenario
// its own stream while keeping the parent sequence untouched by consumption
// order changes.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xA5A5A5A5DEADBEEF)
}
