package topology

import (
	"fmt"
	"math"

	"smrp/internal/graph"
)

// DomainKind distinguishes transit from stub domains in a transit–stub
// topology.
type DomainKind int

// Domain kinds. Enum starts at 1 so the zero value is invalid.
const (
	TransitDomain DomainKind = iota + 1
	StubDomain
)

// String implements fmt.Stringer.
func (k DomainKind) String() string {
	switch k {
	case TransitDomain:
		return "transit"
	case StubDomain:
		return "stub"
	default:
		return fmt.Sprintf("DomainKind(%d)", int(k))
	}
}

// Domain is one recovery domain of a transit–stub topology: a set of nodes
// plus the gateway that attaches the domain to the next level up. For the
// transit domain the gateway is its first node.
type Domain struct {
	ID      int
	Kind    DomainKind
	Nodes   []graph.NodeID
	Gateway graph.NodeID // node connecting this domain upward (stub→transit)
	Attach  graph.NodeID // transit node a stub domain is attached to (Invalid for transit)
}

// TransitStub is a 2-level transit–stub topology: one transit (core) domain
// with a stub domain hanging off each transit node. This is the structure
// the paper's hierarchical recovery architecture (Fig. 6) maps onto.
type TransitStub struct {
	Graph   *graph.Graph
	Transit Domain
	Stubs   []Domain
}

// TransitStubConfig parameterizes the 2-level generator.
type TransitStubConfig struct {
	TransitNodes  int     // nodes in the transit (core) domain
	StubsPerNode  int     // stub domains attached to each transit node
	StubNodes     int     // nodes per stub domain
	TransitAlpha  float64 // Waxman alpha for intra-transit wiring
	StubAlpha     float64 // Waxman alpha for intra-stub wiring
	Beta          float64 // shared Waxman beta
	TransitExtent float64 // side length of the transit placement square
	StubExtent    float64 // side length of each stub placement square
}

// DefaultTransitStubConfig returns the configuration used by the
// hierarchical experiments: a 4-node core, one 12-node stub per core node.
// Beta is larger than the flat-Waxman default because inside a stub the
// placement extent is small, so a higher β is needed to keep intra-domain
// path diversity (without it, stubs degenerate into trees and single link
// failures become unrecoverable inside the domain).
func DefaultTransitStubConfig() TransitStubConfig {
	return TransitStubConfig{
		TransitNodes:  4,
		StubsPerNode:  1,
		StubNodes:     12,
		TransitAlpha:  0.9,
		StubAlpha:     0.9,
		Beta:          0.6,
		TransitExtent: 1.0,
		StubExtent:    0.25,
	}
}

// Validate reports whether the configuration is usable.
func (c TransitStubConfig) Validate() error {
	if c.TransitNodes < 2 {
		return fmt.Errorf("transit-stub: %w: TransitNodes = %d, need at least 2", ErrBadConfig, c.TransitNodes)
	}
	if c.StubsPerNode < 1 {
		return fmt.Errorf("transit-stub: %w: StubsPerNode = %d, need at least 1", ErrBadConfig, c.StubsPerNode)
	}
	if c.StubNodes < 2 {
		return fmt.Errorf("transit-stub: %w: StubNodes = %d, need at least 2", ErrBadConfig, c.StubNodes)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{name: "TransitAlpha", v: c.TransitAlpha},
		{name: "StubAlpha", v: c.StubAlpha},
		{name: "Beta", v: c.Beta},
	} {
		if p.v <= 0 || p.v > 1 {
			return fmt.Errorf("transit-stub: %w: %s = %v out of (0, 1]", ErrBadConfig, p.name, p.v)
		}
	}
	if c.TransitExtent <= 0 || c.StubExtent <= 0 {
		return fmt.Errorf("transit-stub: %w: extents must be positive", ErrBadConfig)
	}
	return nil
}

// GenerateTransitStub builds a 2-level transit–stub topology. The transit
// nodes are wired as a dense Waxman graph over the full plane; each stub
// domain is a smaller Waxman graph placed near its attachment point and
// joined to it through the stub's gateway node. All domains are individually
// connected (Connectify is applied per domain).
func GenerateTransitStub(cfg TransitStubConfig, rng *RNG) (*TransitStub, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	total := cfg.TransitNodes + cfg.TransitNodes*cfg.StubsPerNode*cfg.StubNodes
	g := graph.New(total)
	next := 0
	newNode := func(p graph.Point) graph.NodeID {
		id := graph.NodeID(next)
		g.SetPos(id, p)
		next++
		return id
	}

	// Transit domain nodes spread over the full plane.
	transit := Domain{ID: 0, Kind: TransitDomain, Attach: graph.Invalid}
	for i := 0; i < cfg.TransitNodes; i++ {
		id := newNode(graph.Point{
			X: rng.Float64() * cfg.TransitExtent,
			Y: rng.Float64() * cfg.TransitExtent,
		})
		transit.Nodes = append(transit.Nodes, id)
	}
	transit.Gateway = transit.Nodes[0]
	if err := wireWaxman(g, transit.Nodes, cfg.TransitAlpha, cfg.Beta, rng); err != nil {
		return nil, fmt.Errorf("transit wiring: %w", err)
	}

	ts := &TransitStub{Graph: g, Transit: transit}

	// Stub domains, each clustered around its transit attachment.
	domainID := 1
	for _, attach := range transit.Nodes {
		for s := 0; s < cfg.StubsPerNode; s++ {
			center := g.Pos(attach)
			stub := Domain{ID: domainID, Kind: StubDomain, Attach: attach}
			domainID++
			for i := 0; i < cfg.StubNodes; i++ {
				id := newNode(graph.Point{
					X: center.X + (rng.Float64()-0.5)*cfg.StubExtent,
					Y: center.Y + (rng.Float64()-0.5)*cfg.StubExtent,
				})
				stub.Nodes = append(stub.Nodes, id)
			}
			if err := wireWaxman(g, stub.Nodes, cfg.StubAlpha, cfg.Beta, rng); err != nil {
				return nil, fmt.Errorf("stub %d wiring: %w", stub.ID, err)
			}
			// Gateway: the stub node geometrically closest to the attach
			// point, linked upward into the transit domain.
			stub.Gateway = nearestTo(g, stub.Nodes, center)
			if err := addDistEdge(g, stub.Gateway, attach); err != nil {
				return nil, fmt.Errorf("stub %d uplink: %w", stub.ID, err)
			}
			ts.Stubs = append(ts.Stubs, stub)
		}
	}
	return ts, nil
}

// wireWaxman adds Waxman-model edges among the given node subset and then
// joins any leftover components within the subset.
func wireWaxman(g *graph.Graph, nodes []graph.NodeID, alpha, beta float64, rng *RNG) error {
	maxDist := maxPairDist(g, nodes)
	if maxDist <= 0 {
		maxDist = 1
	}
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			d := g.Pos(nodes[i]).Dist(g.Pos(nodes[j]))
			p := alpha * waxmanExp(d, beta, maxDist)
			if rng.Float64() < p {
				if err := addDistEdge(g, nodes[i], nodes[j]); err != nil {
					return err
				}
			}
		}
	}
	return connectifySubset(g, nodes)
}

// waxmanExp computes exp(−d/(β·L)).
func waxmanExp(d, beta, l float64) float64 {
	return math.Exp(-d / (beta * l))
}

// connectifySubset joins the components induced by the node subset, adding
// geometric shortest edges, ignoring the rest of the graph.
func connectifySubset(g *graph.Graph, nodes []graph.NodeID) error {
	inSet := make(map[graph.NodeID]bool, len(nodes))
	for _, n := range nodes {
		inSet[n] = true
	}
	// Same large-subset escape hatch as Connectify: past the cap the exact
	// nearest-pair scan gives way to the deterministic centroid pick.
	if len(nodes) > connectifyExactCap {
		return joinComponentsCentroid(g, subsetComponents(g, nodes, inSet))
	}
	for {
		comps := subsetComponents(g, nodes, inSet)
		if len(comps) <= 1 {
			return nil
		}
		bestD := -1.0
		var bu, bv graph.NodeID = graph.Invalid, graph.Invalid
		for _, u := range comps[0] {
			for ci := 1; ci < len(comps); ci++ {
				for _, v := range comps[ci] {
					d := g.Pos(u).Dist(g.Pos(v))
					if bestD < 0 || d < bestD {
						bestD, bu, bv = d, u, v
					}
				}
			}
		}
		if bu == graph.Invalid {
			return fmt.Errorf("connectify subset: no joining pair")
		}
		if err := addDistEdge(g, bu, bv); err != nil {
			return err
		}
	}
}

// subsetComponents computes connected components restricted to the subset.
func subsetComponents(g *graph.Graph, nodes []graph.NodeID, inSet map[graph.NodeID]bool) [][]graph.NodeID {
	seen := make(map[graph.NodeID]bool, len(nodes))
	var comps [][]graph.NodeID
	for _, start := range nodes {
		if seen[start] {
			continue
		}
		var comp []graph.NodeID
		stack := []graph.NodeID{start}
		seen[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, arc := range g.Neighbors(u) {
				if !inSet[arc.To] || seen[arc.To] {
					continue
				}
				seen[arc.To] = true
				stack = append(stack, arc.To)
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// nearestTo returns the node of the subset closest to point p.
func nearestTo(g *graph.Graph, nodes []graph.NodeID, p graph.Point) graph.NodeID {
	best := nodes[0]
	bestD := g.Pos(best).Dist(p)
	for _, n := range nodes[1:] {
		if d := g.Pos(n).Dist(p); d < bestD {
			best, bestD = n, d
		}
	}
	return best
}

// maxPairDist returns the maximum pairwise distance within the subset.
func maxPairDist(g *graph.Graph, nodes []graph.NodeID) float64 {
	var maxD float64
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if d := g.Pos(nodes[i]).Dist(g.Pos(nodes[j])); d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

// DomainOf returns the domain containing node n (transit checked first), or
// nil if n belongs to no domain of ts.
func (ts *TransitStub) DomainOf(n graph.NodeID) *Domain {
	for _, t := range ts.Transit.Nodes {
		if t == n {
			return &ts.Transit
		}
	}
	for i := range ts.Stubs {
		for _, m := range ts.Stubs[i].Nodes {
			if m == n {
				return &ts.Stubs[i]
			}
		}
	}
	return nil
}
