package topology

import (
	"fmt"
	"math"
	"slices"

	"smrp/internal/graph"
)

// GridWaxmanConfig parameterizes the spatial-grid-bucketed Waxman generator.
// The edge-probability model is the same as WaxmanConfig —
//
//	P(u,v) = Alpha · exp(−d(u,v) / (Beta·L))
//
// — truncated at PMin: pairs whose probability would fall below PMin are
// never probed (their probability is rounded to 0). The truncation induces a
// cutoff distance
//
//	d_cut = Beta·L·ln(Alpha/PMin)
//
// beyond which no edge can form, which is what makes grid bucketing exact:
// with cells of side ≥ d_cut, every pair that could possibly connect lies in
// the same or an adjacent cell, so only those pairs are probed —
// O(N·avg-degree) probes on a constant-density plane instead of O(N²).
//
// Per-pair randomness is keyed, not streamed: the uniform deciding pair
// (u, v) is derived by hashing (pairSeed, u, v) rather than consumed from the
// RNG sequence. Probe order therefore cannot change the outcome, and the
// grid generator is byte-identical to an O(N²) scan of the same truncated
// model (pinned by TestGridWaxmanMatchesPairwise).
type GridWaxmanConfig struct {
	N     int     // number of nodes
	Alpha float64 // edge-density parameter, (0, 1]
	Beta  float64 // long-edge parameter, (0, 1]

	// Side is the side length of the placement square. Zero means 1 (the
	// classic unit square). Megascale flat topologies grow Side with √N to
	// keep node density — and therefore node degree — constant.
	Side float64

	// L is the distance scale in the exponent. Zero means Side·√2 (the
	// placement-square diagonal, matching WaxmanConfig). Megascale configs
	// pin L to a constant while Side grows, so link lengths stay local
	// instead of stretching with the plane.
	L float64

	// PMin is the probability below which a pair is truncated to "never".
	// Zero means DefaultPMin. Must be < Alpha (otherwise no edge could
	// form). Smaller PMin means a larger cutoff radius: more faithful to
	// the untruncated model, more pairs probed.
	PMin float64

	// EnsureConnected applies Connectify post-processing, as in WaxmanConfig.
	EnsureConnected bool
}

// DefaultPMin is the default truncation threshold. At the harness's default
// parameters (α=0.2, β=0.15, unit square) the cutoff it induces is ≈1.13 —
// nearly the whole square, so small-N graphs see essentially no truncation —
// while on a constant-density megascale plane it bounds every node's probe
// neighborhood to a constant-area disc.
const DefaultPMin = 1e-3

// withDefaults returns the config with zero-valued optional fields resolved.
func (c GridWaxmanConfig) withDefaults() GridWaxmanConfig {
	if c.Side == 0 {
		c.Side = 1
	}
	if c.L == 0 {
		c.L = c.Side * math.Sqrt2
	}
	if c.PMin == 0 {
		c.PMin = DefaultPMin
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c GridWaxmanConfig) Validate() error {
	c = c.withDefaults()
	if c.N < 2 {
		return fmt.Errorf("grid waxman: %w: N = %d, need at least 2 nodes", ErrBadConfig, c.N)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("grid waxman: %w: Alpha = %v out of (0, 1]", ErrBadConfig, c.Alpha)
	}
	if c.Beta <= 0 || c.Beta > 1 {
		return fmt.Errorf("grid waxman: %w: Beta = %v out of (0, 1]", ErrBadConfig, c.Beta)
	}
	if c.Side < 0 || math.IsInf(c.Side, 0) || math.IsNaN(c.Side) {
		return fmt.Errorf("grid waxman: %w: Side = %v", ErrBadConfig, c.Side)
	}
	if c.L < 0 || math.IsInf(c.L, 0) || math.IsNaN(c.L) {
		return fmt.Errorf("grid waxman: %w: L = %v", ErrBadConfig, c.L)
	}
	if c.PMin <= 0 || c.PMin >= c.Alpha {
		return fmt.Errorf("grid waxman: %w: PMin = %v must be in (0, Alpha)", ErrBadConfig, c.PMin)
	}
	return nil
}

// cutoff returns the truncation distance d_cut, clamped to the placement
// square's diagonal (beyond which no pair exists anyway).
func (c GridWaxmanConfig) cutoff() float64 {
	d := c.Beta * c.L * math.Log(c.Alpha/c.PMin)
	if diag := c.Side * math.Sqrt2; d > diag {
		d = diag
	}
	return d
}

// GridStats reports how much work a grid generation did; the deterministic
// evidence (probe counters, not wall-clock) that bucketing beats the O(N²)
// scan.
type GridStats struct {
	// Probed counts candidate pairs distance-checked. The pairwise scan of
	// the same model probes exactly N(N−1)/2.
	Probed int64
	// Within counts probed pairs inside the cutoff radius (those that got a
	// keyed coin flip).
	Within int64
	// Edges counts pairs whose flip succeeded (before Connectify).
	Edges int64
	// Cells is the grid dimension actually used (Cells × Cells buckets).
	Cells int
}

// mixSplit is the splitmix64 finalizer, used to key per-pair randomness.
func mixSplit(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// pairUniform derives the uniform in [0, 1) deciding pair (u, v) from the
// generation's pair seed. Canonicalizing the endpoints makes it symmetric;
// hashing instead of consuming an RNG stream makes it independent of probe
// order, which is what lets the grid and pairwise generators agree exactly.
func pairUniform(seed uint64, u, v graph.NodeID) float64 {
	if u > v {
		u, v = v, u
	}
	h := mixSplit(seed + uint64(u)*0x9E3779B97F4A7C15)
	h = mixSplit(h ^ uint64(v)*0xD1B54A32D192ED03)
	return float64(h>>11) / (1 << 53)
}

// waxmanAccept decides u < alpha·e^(−x) while dodging math.Exp on the
// overwhelmingly common rejections. The cheap paths are one-sided and exact:
// alpha·e^(−x) ≤ alpha always, and e^(−x) < 1/(1+x+x²/2+x³/6) strictly for
// x > 0 (e^x exceeds its truncated Taylor series), with a margin of x⁴/24
// that dwarfs float rounding once x ≥ 0.01 — so every cheap rejection is one
// the exp comparison would also make, and both generators calling this
// shared helper stay byte-identical.
func waxmanAccept(u, alpha, x float64) bool {
	if u >= alpha {
		return false
	}
	if x >= 0.01 && u*(1+x*(1+x*(0.5+x/6))) >= alpha {
		return false
	}
	return u < alpha*math.Exp(-x)
}

// waxmanBins is the resolution of waxmanDecider's radial rejection table.
const waxmanBins = 64

// waxmanDecider front-loads the edge-acceptance test with a radial table:
// bin k of squared distance stores the model's maximum acceptance
// probability over that bin (its inner-radius probability), so a pair whose
// uniform is at or above the ceiling — the overwhelming majority at
// single-digit average degrees — is rejected with one multiply and one array
// load, no sqrt and no exp. Pairs passing the ceiling fall through to
// waxmanAccept. Both generators build the identical table from the identical
// config, so decisions stay byte-identical between them.
type waxmanDecider struct {
	alpha, scale float64
	binScale     float64 // waxmanBins / cut²
	pHi          [waxmanBins]float64
}

func newWaxmanDecider(alpha, scale, cut2 float64) *waxmanDecider {
	d := &waxmanDecider{alpha: alpha, scale: scale}
	if cut2 > 0 {
		d.binScale = waxmanBins / cut2
	}
	for k := range d.pHi {
		dmin := math.Sqrt(float64(k) * cut2 / waxmanBins)
		d.pHi[k] = alpha * math.Exp(-dmin/scale)
	}
	return d
}

// accept decides pair (u, v) at squared distance d2 ≤ cut². The ceiling
// rejection is exact: within bin k the distance is ≥ the bin's inner radius,
// so the true probability is ≤ pHi[k]; u ≥ pHi[k] therefore implies the full
// comparison would reject too (acceptance is strict <).
func (d *waxmanDecider) accept(u, d2 float64) bool {
	k := int(d2 * d.binScale)
	if k >= waxmanBins {
		k = waxmanBins - 1
	}
	if u >= d.pHi[k] {
		return false
	}
	return waxmanAccept(u, d.alpha, math.Sqrt(d2)/d.scale)
}

// GridWaxman generates a truncated Waxman graph using spatial-grid bucketing:
// O(N·avg-degree) pair probes on a constant-density plane. See
// GridWaxmanConfig for the model. The result is byte-identical to
// pairwiseGridWaxman on the same config and RNG.
func GridWaxman(cfg GridWaxmanConfig, rng *RNG) (*graph.Graph, error) {
	g, _, err := GridWaxmanWithStats(cfg, rng)
	return g, err
}

// GridWaxmanWithStats is GridWaxman, additionally reporting probe counters.
func GridWaxmanWithStats(cfg GridWaxmanConfig, rng *RNG) (*graph.Graph, GridStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, GridStats{}, err
	}
	cfg = cfg.withDefaults()
	g, pairSeed := placeNodes(cfg, rng)
	cut := cfg.cutoff()
	cut2 := cut * cut
	dec := newWaxmanDecider(cfg.Alpha, cfg.Beta*cfg.L, cut2)

	// Bucket nodes into a grid of cells with side ≥ d_cut, so any pair
	// within the cutoff shares a cell or sits in adjacent cells.
	cols := 1
	if cut > 0 {
		if c := int(cfg.Side / cut); c > 1 {
			cols = c
		}
	}
	cellSize := cfg.Side / float64(cols)
	cellOf := func(p graph.Point) (int, int) {
		cx, cy := int(p.X/cellSize), int(p.Y/cellSize)
		if cx >= cols {
			cx = cols - 1
		}
		if cy >= cols {
			cy = cols - 1
		}
		return cx, cy
	}
	// Counting-sort node IDs by cell: start offsets + one flat []NodeID.
	ncells := cols * cols
	counts := make([]int32, ncells+1)
	for n := 0; n < cfg.N; n++ {
		cx, cy := cellOf(g.Pos(graph.NodeID(n)))
		counts[cy*cols+cx+1]++
	}
	for i := 1; i <= ncells; i++ {
		counts[i] += counts[i-1]
	}
	bucketed := make([]graph.NodeID, cfg.N)
	fill := make([]int32, ncells)
	for n := 0; n < cfg.N; n++ {
		cx, cy := cellOf(g.Pos(graph.NodeID(n)))
		c := cy*cols + cx
		bucketed[counts[c]+fill[c]] = graph.NodeID(n)
		fill[c]++
	}
	cellNodes := func(cx, cy int) []graph.NodeID {
		c := cy*cols + cx
		return bucketed[counts[c]:counts[c+1]]
	}

	st := GridStats{Cells: cols}
	// Reserve for the expected yield (avg degree is single-digit at every
	// config we run) so append never copies the edge list mid-probe.
	edges := make([]graph.EdgeID, 0, cfg.N*4)
	// Flat local position copy: the probe loops below are the generator's
	// entire inner-loop budget, and indexing a local slice beats a method
	// call per endpoint at ~10⁷ probes.
	pos := make([]graph.Point, cfg.N)
	for n := range pos {
		pos[n] = g.Pos(graph.NodeID(n))
	}
	var probed, within, accepted int64
	// Canonical half neighborhood: each unordered cell pair within Chebyshev
	// distance 1 is visited exactly once. The probe body is inlined in both
	// loops — at ~10⁷ probes even a closure call is measurable.
	offsets := [4][2]int{{1, 0}, {-1, 1}, {0, 1}, {1, 1}}
	for cy := 0; cy < cols; cy++ {
		for cx := 0; cx < cols; cx++ {
			in := cellNodes(cx, cy)
			for i := 0; i < len(in); i++ {
				u := in[i]
				pu := pos[u]
				for _, v := range in[i+1:] {
					pv := pos[v]
					dx, dy := pu.X-pv.X, pu.Y-pv.Y
					if d2 := dx*dx + dy*dy; d2 <= cut2 {
						within++
						if dec.accept(pairUniform(pairSeed, u, v), d2) {
							accepted++
							edges = append(edges, graph.MakeEdgeID(u, v))
						}
					}
				}
			}
			probed += int64(len(in)) * int64(len(in)-1) / 2
			for _, off := range offsets {
				nx, ny := cx+off[0], cy+off[1]
				if nx < 0 || nx >= cols || ny >= cols {
					continue
				}
				out := cellNodes(nx, ny)
				for _, u := range in {
					pu := pos[u]
					for _, v := range out {
						pv := pos[v]
						dx, dy := pu.X-pv.X, pu.Y-pv.Y
						if d2 := dx*dx + dy*dy; d2 <= cut2 {
							within++
							if dec.accept(pairUniform(pairSeed, u, v), d2) {
								accepted++
								edges = append(edges, graph.MakeEdgeID(u, v))
							}
						}
					}
				}
				probed += int64(len(in)) * int64(len(out))
			}
		}
	}
	st.Probed, st.Within, st.Edges = probed, within, accepted
	if err := insertSortedEdges(g, edges, cfg.EnsureConnected); err != nil {
		return nil, st, err
	}
	return g, st, nil
}

// pairwiseGridWaxman is the O(N²) reference for the same truncated model:
// identical placement, identical keyed per-pair randomness, all N(N−1)/2
// pairs scanned. Tests pin GridWaxman byte-identical to it; the megascale
// generation benchmark measures the gap.
func pairwiseGridWaxman(cfg GridWaxmanConfig, rng *RNG) (*graph.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	g, pairSeed := placeNodes(cfg, rng)
	cut := cfg.cutoff()
	cut2 := cut * cut
	dec := newWaxmanDecider(cfg.Alpha, cfg.Beta*cfg.L, cut2)
	edges := make([]graph.EdgeID, 0, cfg.N*4)
	pos := make([]graph.Point, cfg.N)
	for n := range pos {
		pos[n] = g.Pos(graph.NodeID(n))
	}
	for u := 0; u < cfg.N; u++ {
		pu := pos[u]
		for v := u + 1; v < cfg.N; v++ {
			pv := pos[v]
			dx, dy := pu.X-pv.X, pu.Y-pv.Y
			d2 := dx*dx + dy*dy
			if d2 > cut2 {
				continue
			}
			if dec.accept(pairUniform(pairSeed, graph.NodeID(u), graph.NodeID(v)), d2) {
				edges = append(edges, graph.MakeEdgeID(graph.NodeID(u), graph.NodeID(v)))
			}
		}
	}
	if err := insertSortedEdges(g, edges, cfg.EnsureConnected); err != nil {
		return nil, err
	}
	return g, nil
}

// placeNodes draws node positions from the RNG stream (in node-ID order) and
// then the pair seed, so every generator over the same config and RNG state
// sees identical placement and identical keyed randomness.
func placeNodes(cfg GridWaxmanConfig, rng *RNG) (*graph.Graph, uint64) {
	g := graph.New(cfg.N)
	for i := 0; i < cfg.N; i++ {
		g.SetPos(graph.NodeID(i), graph.Point{
			X: rng.Float64() * cfg.Side,
			Y: rng.Float64() * cfg.Side,
		})
	}
	return g, rng.Uint64()
}

// insertSortedEdges adds the candidate edges in canonical EdgeID order —
// probe order never leaks into adjacency-list order, so structurally equal
// candidate sets yield structurally identical graphs — then optionally
// connectifies.
func insertSortedEdges(g *graph.Graph, edges []graph.EdgeID, ensureConnected bool) error {
	// Sort packed uint64 keys: canonical (A, B) order without a comparator
	// call per comparison. Node IDs are dense and non-negative, so the pack
	// is order-preserving.
	keys := make([]uint64, len(edges))
	for i, e := range edges {
		keys[i] = uint64(e.A)<<32 | uint64(uint32(e.B))
	}
	slices.Sort(keys)
	for _, k := range keys {
		if err := addDistEdge(g, graph.NodeID(k>>32), graph.NodeID(uint32(k))); err != nil {
			return err
		}
	}
	if ensureConnected {
		return Connectify(g)
	}
	return nil
}
