package topology

import (
	"math"
	"testing"

	"smrp/internal/graph"
)

// graphsIdentical fails the test unless a and b have identical node
// positions, edge sets, and edge weights.
func graphsIdentical(t *testing.T, a, b *graph.Graph, label string) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("%s: node counts differ: %d vs %d", label, a.NumNodes(), b.NumNodes())
	}
	for n := 0; n < a.NumNodes(); n++ {
		if a.Pos(graph.NodeID(n)) != b.Pos(graph.NodeID(n)) {
			t.Fatalf("%s: position of node %d differs", label, n)
		}
	}
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatalf("%s: edge counts differ: %d vs %d", label, len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("%s: edge %d differs: %v vs %v", label, i, ae[i], be[i])
		}
		wa, _ := a.EdgeWeight(ae[i].A, ae[i].B)
		wb, _ := b.EdgeWeight(be[i].A, be[i].B)
		if wa != wb {
			t.Fatalf("%s: weight of %v differs: %v vs %v", label, ae[i], wa, wb)
		}
	}
}

// TestGridWaxmanMatchesPairwise pins the tentpole equivalence: the bucketed
// generator must produce the exact same graph as an O(N²) scan of the same
// truncated model — same placement stream, same keyed per-pair randomness —
// across unit-square and megascale-plane shapes, with and without
// Connectify.
func TestGridWaxmanMatchesPairwise(t *testing.T) {
	cases := []struct {
		name string
		cfg  GridWaxmanConfig
	}{
		{"unit-square-paper-params", GridWaxmanConfig{N: 250, Alpha: 0.2, Beta: 0.15}},
		{"unit-square-dense", GridWaxmanConfig{N: 150, Alpha: 0.9, Beta: 0.6, EnsureConnected: true}},
		{"plane-constant-density", GridWaxmanConfig{
			N: 600, Alpha: 0.9, Beta: 0.6,
			Side: math.Sqrt(600 / megascaleFlatDensity), L: math.Sqrt2,
		}},
		{"plane-connectified", GridWaxmanConfig{
			N: 400, Alpha: 0.9, Beta: 0.6,
			Side: math.Sqrt(400 / megascaleFlatDensity), L: math.Sqrt2,
			EnsureConnected: true,
		}},
		{"tight-pmin", GridWaxmanConfig{N: 200, Alpha: 0.5, Beta: 0.3, PMin: 0.05}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				gg, st, err := GridWaxmanWithStats(tc.cfg, NewRNG(seed))
				if err != nil {
					t.Fatalf("grid: %v", err)
				}
				pg, err := pairwiseGridWaxman(tc.cfg, NewRNG(seed))
				if err != nil {
					t.Fatalf("pairwise: %v", err)
				}
				graphsIdentical(t, gg, pg, tc.name)
				if gg.NumEdges() == 0 {
					t.Fatalf("%s seed %d: generated no edges", tc.name, seed)
				}
				maxProbes := int64(tc.cfg.N) * int64(tc.cfg.N-1) / 2
				if st.Probed > maxProbes {
					t.Fatalf("%s: grid probed %d pairs, more than the %d the pairwise scan does",
						tc.name, st.Probed, maxProbes)
				}
			}
		})
	}
}

// TestGridWaxmanDistributionEquivalence checks that at small N in the unit
// square the truncated grid model is distribution-equivalent to the classic
// streamed Waxman generator: with the default PMin the truncation discards
// only pairs with p < 1e-3, so mean degree over many seeds must agree
// closely. (Exact per-seed equality is impossible — the classic generator
// consumes stream randomness per pair — so this is a statistical check; the
// exact-equality check against the pairwise reference is above.)
func TestGridWaxmanDistributionEquivalence(t *testing.T) {
	const n = 200
	const seeds = 40
	classicCfg := WaxmanConfig{N: n, Alpha: 0.2, Beta: 0.15}
	gridCfg := GridWaxmanConfig{N: n, Alpha: 0.2, Beta: 0.15}
	var classicDeg, gridDeg float64
	for seed := uint64(100); seed < 100+seeds; seed++ {
		cg, err := Waxman(classicCfg, NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		gg, err := GridWaxman(gridCfg, NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		classicDeg += cg.AvgDegree()
		gridDeg += gg.AvgDegree()
	}
	classicDeg /= seeds
	gridDeg /= seeds
	// Truncation can only remove edges, and removes at most PMin per pair in
	// probability: expected degree deficit < N·PMin = 0.2. Allow generous
	// sampling noise on top.
	if gridDeg > classicDeg+0.15 {
		t.Fatalf("grid mean degree %.3f exceeds classic %.3f (truncation can only remove edges)",
			gridDeg, classicDeg)
	}
	if classicDeg-gridDeg > 0.35 {
		t.Fatalf("grid mean degree %.3f too far below classic %.3f", gridDeg, classicDeg)
	}
	if gridDeg < 2 {
		t.Fatalf("grid mean degree %.3f implausibly low", gridDeg)
	}
}

// TestGridProbeReduction is the deterministic ≥10× evidence at N=50k: the
// grid generator must probe at most a tenth of the N(N−1)/2 pairs the
// pairwise scan distance-checks (in practice it is >100× fewer on the
// constant-density plane). Counter-based so it means the same thing on any
// machine; the wall-clock companion is BenchmarkMegascaleGeneration.
func TestGridProbeReduction(t *testing.T) {
	const n = 50_000
	g, st, err := FlatMegascale(n, 2005)
	if err != nil {
		t.Fatal(err)
	}
	pairwiseProbes := int64(n) * int64(n-1) / 2
	if st.Probed*10 > pairwiseProbes {
		t.Fatalf("grid probed %d pairs at N=%d; need ≤ %d (10× fewer than pairwise)",
			st.Probed, n, pairwiseProbes/10)
	}
	t.Logf("N=%d: grid probed %d pairs vs %d pairwise (%.0f× reduction), %d cells, %d edges",
		n, st.Probed, pairwiseProbes, float64(pairwiseProbes)/float64(st.Probed), st.Cells*st.Cells, g.NumEdges())
	if !g.Connected(nil) {
		t.Fatal("flat megascale graph not connected")
	}
	if d := g.AvgDegree(); d < 3 || d > 12 {
		t.Fatalf("flat megascale avg degree %.2f outside sane range [3, 12]", d)
	}
}

// TestMegascaleComposer checks the sized hierarchy: realized node count
// matches NumNodesFor, the graph is connected, domain attribution is dense
// and consistent, and regenerating with the same seed is byte-identical
// while a different seed is not.
func TestMegascaleComposer(t *testing.T) {
	cfg := MegascaleConfig{TargetNodes: 2000, NodesPerDomain: 50}
	topo, err := GenerateMegascale(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := topo.Graph.NumNodes(), cfg.NumNodesFor(); got != want {
		t.Fatalf("realized %d nodes, NumNodesFor says %d", got, want)
	}
	if got := topo.Graph.NumNodes(); got < cfg.TargetNodes {
		t.Fatalf("realized %d nodes, below target %d", got, cfg.TargetNodes)
	}
	if !topo.Graph.Connected(nil) {
		t.Fatal("megascale hierarchy not connected")
	}
	seen := 0
	for di, d := range topo.Domains {
		for _, n := range d.Nodes {
			if topo.DomainOf(n) != di {
				t.Fatalf("DomainOf(%d) = %d, node listed in domain %d", n, topo.DomainOf(n), di)
			}
			seen++
		}
		if d.Parent >= 0 {
			if topo.DomainOf(d.Attach) != d.Parent {
				t.Fatalf("domain %d attach node %d not in parent %d", di, d.Attach, d.Parent)
			}
			if !topo.Graph.HasEdge(d.Gateway, d.Attach) {
				t.Fatalf("domain %d uplink edge missing", di)
			}
		}
	}
	if seen != topo.Graph.NumNodes() {
		t.Fatalf("domains cover %d nodes, graph has %d", seen, topo.Graph.NumNodes())
	}
	if topo.DomainOf(graph.NodeID(-1)) != -1 || topo.DomainOf(graph.NodeID(topo.Graph.NumNodes())) != -1 {
		t.Fatal("DomainOf out-of-range lookup not -1")
	}

	again, err := GenerateMegascale(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	graphsIdentical(t, topo.Graph, again.Graph, "same-seed regeneration")
	other, err := GenerateMegascale(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if other.Graph.NumEdges() == topo.Graph.NumEdges() {
		same := true
		ae, be := topo.Graph.Edges(), other.Graph.Edges()
		for i := range ae {
			if ae[i] != be[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical edge sets")
		}
	}
}

// TestConnectifyCentroidLargeGraph pins the capped Connectify path: a large
// deliberately fragmented graph must come out connected via the centroid
// pick, deterministically.
func TestConnectifyCentroidLargeGraph(t *testing.T) {
	const n = connectifyExactCap + 1000
	build := func() *graph.Graph {
		g := graph.New(n)
		rng := NewRNG(42)
		for i := 0; i < n; i++ {
			g.SetPos(graph.NodeID(i), graph.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
		}
		// 50 disjoint chains.
		const chains = 50
		per := n / chains
		for c := 0; c < chains; c++ {
			for i := c * per; i+1 < (c+1)*per && i+1 < n; i++ {
				if err := g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1); err != nil {
					t.Fatal(err)
				}
			}
		}
		return g
	}
	g := build()
	if err := Connectify(g); err != nil {
		t.Fatal(err)
	}
	if !g.Connected(nil) {
		t.Fatal("centroid connectify left graph disconnected")
	}
	h := build()
	if err := Connectify(h); err != nil {
		t.Fatal(err)
	}
	graphsIdentical(t, g, h, "centroid connectify determinism")
}

// BenchmarkMegascaleGeneration is the wall-clock companion to
// TestGridProbeReduction: grid vs pairwise generation of the same truncated
// model at N=50k. The grid arm is the production path (FlatMegascale); the
// pairwise arm is the O(N²) reference.
func BenchmarkMegascaleGeneration(b *testing.B) {
	const n = 50_000
	cfg := GridWaxmanConfig{
		N: n, Alpha: 0.9, Beta: 0.6,
		Side: math.Sqrt(n / megascaleFlatDensity), L: math.Sqrt2,
	}
	b.Run("grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := GridWaxman(cfg, NewRNG(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pairwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pairwiseGridWaxman(cfg, NewRNG(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
}
