package topology

import (
	"fmt"
	"math"

	"smrp/internal/graph"
)

// MegascaleConfig parameterizes the megascale N-level composer: a hierarchy
// sized by total node count rather than by explicit fanout, every domain
// built independently from its own derived seed. The result is an
// NLevelTopology, so the §3.3.3 hierarchical recovery layer runs on it
// unchanged.
type MegascaleConfig struct {
	// TargetNodes is the approximate total size. The composer picks the
	// fanout whose complete Levels-deep tree of NodesPerDomain-node domains
	// lands closest to (and not far below) this target; NumNodesFor reports
	// the exact count.
	TargetNodes int
	// NodesPerDomain is the size of every domain (default 100 — the paper's
	// evaluation scale, which is the whole point: per-event recovery work
	// confined to one paper-sized domain regardless of total N).
	NodesPerDomain int
	// Levels is the hierarchy depth (default 3).
	Levels int
	// Alpha/Beta are the intra-domain Waxman parameters (defaults 0.9/0.6,
	// matching DefaultNLevelConfig: dense enough that domains keep path
	// diversity at small extents).
	Alpha, Beta float64
	// Extent is the root placement square side (default 1); each level down
	// shrinks by Shrink (default 0.35).
	Extent, Shrink float64
}

// withDefaults resolves zero-valued optional fields.
func (c MegascaleConfig) withDefaults() MegascaleConfig {
	if c.NodesPerDomain == 0 {
		c.NodesPerDomain = 100
	}
	if c.Levels == 0 {
		c.Levels = 3
	}
	if c.Alpha == 0 {
		c.Alpha = 0.9
	}
	if c.Beta == 0 {
		c.Beta = 0.6
	}
	if c.Extent == 0 {
		c.Extent = 1
	}
	if c.Shrink == 0 {
		c.Shrink = 0.35
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c MegascaleConfig) Validate() error {
	c = c.withDefaults()
	if c.NodesPerDomain < 2 {
		return fmt.Errorf("megascale: %w: NodesPerDomain = %d, need at least 2", ErrBadConfig, c.NodesPerDomain)
	}
	if c.Levels < 2 {
		return fmt.Errorf("megascale: %w: Levels = %d, need at least 2", ErrBadConfig, c.Levels)
	}
	if c.TargetNodes < c.NodesPerDomain*c.Levels {
		return fmt.Errorf("megascale: %w: TargetNodes = %d too small for %d levels of %d-node domains",
			ErrBadConfig, c.TargetNodes, c.Levels, c.NodesPerDomain)
	}
	if c.Alpha <= 0 || c.Alpha > 1 || c.Beta <= 0 || c.Beta > 1 {
		return fmt.Errorf("megascale: %w: Waxman parameters out of (0, 1]", ErrBadConfig)
	}
	if c.Extent <= 0 || c.Shrink <= 0 || c.Shrink >= 1 {
		return fmt.Errorf("megascale: %w: need Extent > 0 and Shrink in (0, 1)", ErrBadConfig)
	}
	return nil
}

// domainTreeSize returns 1 + f + f² + … + f^(levels−1).
func domainTreeSize(fanout, levels int) int {
	total, pow := 0, 1
	for l := 0; l < levels; l++ {
		total += pow
		pow *= fanout
	}
	return total
}

// fanoutFor picks the smallest fanout whose complete tree reaches the
// domain-count target (so the realized size is ≥ target/overshoot-free it is
// the first fanout meeting the target).
func (c MegascaleConfig) fanoutFor() int {
	c = c.withDefaults()
	wantDomains := (c.TargetNodes + c.NodesPerDomain - 1) / c.NodesPerDomain
	f := 1
	for domainTreeSize(f, c.Levels) < wantDomains {
		f++
	}
	return f
}

// NumNodesFor reports the exact node count GenerateMegascale will realize for
// this configuration.
func (c MegascaleConfig) NumNodesFor() int {
	c = c.withDefaults()
	return domainTreeSize(c.fanoutFor(), c.Levels) * c.NodesPerDomain
}

// GenerateMegascale builds an N-level hierarchy sized to cfg.TargetNodes.
// Unlike GenerateNLevel's single RNG stream, every domain draws placement and
// wiring from its own RNG seeded by mix(seed, domainID): domains are fully
// independent of construction order (and of each other), there is no global
// O(N²) step anywhere — per-domain Waxman wiring is O(d²) with d =
// NodesPerDomain, so the whole build is O(N·d) — and the dense domainOf index
// keeps recovery attribution an array load.
func GenerateMegascale(cfg MegascaleConfig, seed uint64) (*NLevelTopology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	fanout := cfg.fanoutFor()
	totalDomains := domainTreeSize(fanout, cfg.Levels)

	g := graph.New(totalDomains * cfg.NodesPerDomain)
	t := &NLevelTopology{
		Graph:    g,
		Root:     0,
		domainOf: make([]int32, g.NumNodes()),
	}

	next := 0
	type job struct {
		parent int
		attach graph.NodeID
		level  int
		center graph.Point
		extent float64
	}
	queue := []job{{
		parent: -1,
		attach: graph.Invalid,
		level:  0,
		center: graph.Point{X: cfg.Extent / 2, Y: cfg.Extent / 2},
		extent: cfg.Extent,
	}}
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		id := len(t.Domains)
		// Independent per-domain stream: the golden-ratio stride decorrelates
		// consecutive domain IDs before the splitmix finalizer.
		rng := NewRNG(mixSplit(seed ^ (uint64(id)+1)*0x9E3779B97F4A7C15))

		nodes := make([]graph.NodeID, cfg.NodesPerDomain)
		for i := range nodes {
			n := graph.NodeID(next)
			next++
			g.SetPos(n, graph.Point{
				X: j.center.X + (rng.Float64()-0.5)*j.extent,
				Y: j.center.Y + (rng.Float64()-0.5)*j.extent,
			})
			nodes[i] = n
			t.domainOf[n] = int32(id)
		}
		if err := wireWaxman(g, nodes, cfg.Alpha, cfg.Beta, rng); err != nil {
			return nil, fmt.Errorf("megascale: domain %d wiring: %w", id, err)
		}
		d := NLevelDomain{
			ID:     id,
			Level:  j.level,
			Nodes:  nodes,
			Parent: j.parent,
			Attach: j.attach,
		}
		if j.parent == -1 {
			d.Gateway = nodes[0]
		} else {
			d.Gateway = nearestTo(g, nodes, g.Pos(j.attach))
			if err := addDistEdge(g, d.Gateway, j.attach); err != nil {
				return nil, fmt.Errorf("megascale: domain %d uplink: %w", id, err)
			}
			t.Domains[j.parent].Children = append(t.Domains[j.parent].Children, id)
		}
		t.Domains = append(t.Domains, d)

		if j.level+1 < cfg.Levels {
			for c := 0; c < fanout; c++ {
				attach := nodes[(c+1)%len(nodes)]
				queue = append(queue, job{
					parent: id,
					attach: attach,
					level:  j.level + 1,
					center: g.Pos(attach),
					extent: j.extent * cfg.Shrink,
				})
			}
		}
	}
	// The composed hierarchy is immutable from here on (sessions mutate trees
	// and masks, never the topology), so freeze into the CSR-first
	// representation: the per-edge weights map collapses into the sorted
	// flat pair and the steady-state footprint halves.
	g.Freeze()
	return t, nil
}

// megascaleFlatDensity is the node density (nodes per unit area) of the flat
// megascale plane. With the megascale Waxman parameters (α=0.9, β=0.6,
// L=√2) it yields average degrees in the ≈5–6 range — comparable to the
// hierarchy's intra-domain density — independent of N, because the plane
// grows with √N while the interaction radius stays fixed.
const megascaleFlatDensity = 1.5

// FlatMegascale generates the flat control arm of the megascale study: n
// nodes on a constant-density plane wired by the truncated grid Waxman model
// with the same α/β the hierarchy uses per domain, connectified. Total
// generation cost is O(N·avg-degree).
func FlatMegascale(n int, seed uint64) (*graph.Graph, GridStats, error) {
	cfg := GridWaxmanConfig{
		N:               n,
		Alpha:           0.9,
		Beta:            0.6,
		Side:            math.Sqrt(float64(n) / megascaleFlatDensity),
		L:               math.Sqrt2,
		EnsureConnected: true,
	}
	g, st, err := GridWaxmanWithStats(cfg, NewRNG(seed))
	if err != nil {
		return nil, st, err
	}
	// Megascale graphs are never mutated after generation; freeze into the
	// sorted-pair edge representation so the flat arm's standing graph bytes
	// reflect the CSR steady state the study reports.
	return g.Freeze(), st, nil
}
