package topology

import "errors"

// ErrBadConfig is wrapped by every generator-configuration validation error
// in this package (Waxman, transit–stub, N-level, and the fixed fixtures), so
// callers can match invalid-parameter failures with errors.Is without
// depending on message text.
var ErrBadConfig = errors.New("topology: invalid configuration")
