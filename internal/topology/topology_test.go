package topology

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"smrp/internal/graph"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(123)
	b := NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRNG(124)
	same := 0
	a = NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds coincide %d/100 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(9)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		// Each bucket expects 10000; allow ±5% (well beyond 6σ).
		if c < 9500 || c > 10500 {
			t.Errorf("Intn(7) bucket %d count %d, suspiciously non-uniform", v, c)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGPermAndSample(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
	s := r.Sample(10, 4)
	if len(s) != 4 {
		t.Fatalf("Sample returned %d values", len(s))
	}
	dup := map[int]bool{}
	for _, v := range s {
		if dup[v] {
			t.Fatalf("Sample has duplicates: %v", s)
		}
		dup[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(42)
	child := parent.Split()
	// The child stream must not simply replay the parent stream.
	p2 := NewRNG(42)
	_ = p2.Uint64() // advance same as Split consumed
	if child.Uint64() == p2.Uint64() {
		t.Error("split child replays parent stream")
	}
}

func TestLeadingZeros(t *testing.T) {
	tests := []struct {
		x    uint64
		want uint
	}{
		{x: 0, want: 64},
		{x: 1, want: 63},
		{x: 0x8000000000000000, want: 0},
		{x: 0xFF, want: 56},
	}
	for _, tt := range tests {
		if got := leadingZeros(tt.x); got != tt.want {
			t.Errorf("leadingZeros(%#x) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestWaxmanValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  WaxmanConfig
	}{
		{name: "too few nodes", cfg: WaxmanConfig{N: 1, Alpha: 0.2, Beta: 0.25}},
		{name: "alpha zero", cfg: WaxmanConfig{N: 10, Alpha: 0, Beta: 0.25}},
		{name: "alpha too big", cfg: WaxmanConfig{N: 10, Alpha: 1.5, Beta: 0.25}},
		{name: "beta zero", cfg: WaxmanConfig{N: 10, Alpha: 0.2, Beta: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Waxman(tt.cfg, NewRNG(1)); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestWaxmanGeneratesConnectedGraph(t *testing.T) {
	cfg := WaxmanConfig{N: 100, Alpha: 0.2, Beta: DefaultBeta, EnsureConnected: true}
	for seed := uint64(0); seed < 5; seed++ {
		g, err := Waxman(cfg, NewRNG(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if g.NumNodes() != 100 {
			t.Fatalf("seed %d: %d nodes", seed, g.NumNodes())
		}
		if !g.Connected(nil) {
			t.Errorf("seed %d: graph not connected", seed)
		}
		st := Describe(g)
		if st.AvgDegree < 2 || st.AvgDegree > 12 {
			t.Errorf("seed %d: avg degree %.2f outside sane band", seed, st.AvgDegree)
		}
	}
}

func TestWaxmanDeterministic(t *testing.T) {
	cfg := WaxmanConfig{N: 60, Alpha: 0.2, Beta: DefaultBeta, EnsureConnected: true}
	g1, err := Waxman(cfg, NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Waxman(cfg, NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatalf("edge counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestWaxmanAlphaControlsDensity(t *testing.T) {
	lowCfg := WaxmanConfig{N: 100, Alpha: 0.15, Beta: DefaultBeta, EnsureConnected: true}
	highCfg := WaxmanConfig{N: 100, Alpha: 0.3, Beta: DefaultBeta, EnsureConnected: true}
	var lowSum, highSum float64
	const trials = 5
	for seed := uint64(0); seed < trials; seed++ {
		gl, err := Waxman(lowCfg, NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		gh, err := Waxman(highCfg, NewRNG(seed+100))
		if err != nil {
			t.Fatal(err)
		}
		lowSum += gl.AvgDegree()
		highSum += gh.AvgDegree()
	}
	if highSum/trials <= lowSum/trials {
		t.Errorf("alpha=0.3 avg degree %.2f not above alpha=0.15 %.2f",
			highSum/trials, lowSum/trials)
	}
}

func TestWaxmanWeightsAreEuclidean(t *testing.T) {
	cfg := WaxmanConfig{N: 30, Alpha: 0.4, Beta: DefaultBeta}
	g, err := Waxman(cfg, NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		w, _ := g.EdgeWeight(e.A, e.B)
		d := g.Pos(e.A).Dist(g.Pos(e.B))
		if math.Abs(w-d) > 1e-9 {
			t.Errorf("edge %v weight %v != distance %v", e, w, d)
		}
	}
}

func TestConnectify(t *testing.T) {
	g := graph.New(4)
	g.SetPos(0, graph.Point{X: 0})
	g.SetPos(1, graph.Point{X: 0.1})
	g.SetPos(2, graph.Point{X: 5})
	g.SetPos(3, graph.Point{X: 5.1})
	if err := g.AddEdge(0, 1, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := Connectify(g); err != nil {
		t.Fatal(err)
	}
	if !g.Connected(nil) {
		t.Fatal("graph still disconnected")
	}
	// The join should be the geometrically closest inter-component pair, 1-2.
	if !g.HasEdge(1, 2) {
		t.Errorf("expected joining edge 1-2, edges: %v", g.Edges())
	}
}

func TestDescribe(t *testing.T) {
	g, err := Line(4)
	if err != nil {
		t.Fatal(err)
	}
	s := Describe(g)
	if s.Nodes != 4 || s.Edges != 3 || s.Components != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.MinDegree != 1 || s.MaxDegree != 2 {
		t.Errorf("degree range = [%d,%d]", s.MinDegree, s.MaxDegree)
	}
	if s.AvgWeight != 1 {
		t.Errorf("avg weight = %v", s.AvgWeight)
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestFixtures(t *testing.T) {
	t.Run("fig1", func(t *testing.T) {
		g, err := PaperFig1()
		if err != nil {
			t.Fatal(err)
		}
		if g.NumNodes() != 5 || g.NumEdges() != 6 {
			t.Errorf("fig1 shape: %d nodes %d edges", g.NumNodes(), g.NumEdges())
		}
		// SPF paths from S: C via A (3), D via A (2).
		tr := g.Dijkstra(0, nil)
		if tr.Dist[3] != 3 || tr.Dist[4] != 2 {
			t.Errorf("fig1 SPF dists C=%v D=%v, want 3, 2", tr.Dist[3], tr.Dist[4])
		}
	})
	t.Run("fig4", func(t *testing.T) {
		g, err := PaperFig4()
		if err != nil {
			t.Fatal(err)
		}
		if g.NumNodes() != 8 {
			t.Errorf("fig4 nodes = %d", g.NumNodes())
		}
		if !g.Connected(nil) {
			t.Error("fig4 must be connected")
		}
	})
	t.Run("line ring grid", func(t *testing.T) {
		if _, err := Line(1); err == nil {
			t.Error("Line(1) should error")
		}
		if _, err := Ring(2); err == nil {
			t.Error("Ring(2) should error")
		}
		if _, err := Grid(1, 1); err == nil {
			t.Error("Grid(1,1) should error")
		}
		r, err := Ring(5)
		if err != nil || r.NumEdges() != 5 {
			t.Errorf("Ring(5): %v edges=%d", err, r.NumEdges())
		}
		gr, err := Grid(3, 4)
		if err != nil || gr.NumEdges() != 3*3+2*4 {
			t.Errorf("Grid(3,4): %v edges=%d want 17", err, gr.NumEdges())
		}
		if !gr.Connected(nil) {
			t.Error("grid must be connected")
		}
	})
}

func TestTransitStub(t *testing.T) {
	cfg := DefaultTransitStubConfig()
	ts, err := GenerateTransitStub(cfg, NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := cfg.TransitNodes + cfg.TransitNodes*cfg.StubsPerNode*cfg.StubNodes
	if ts.Graph.NumNodes() != wantNodes {
		t.Fatalf("nodes = %d, want %d", ts.Graph.NumNodes(), wantNodes)
	}
	if !ts.Graph.Connected(nil) {
		t.Error("transit-stub graph must be connected")
	}
	if len(ts.Stubs) != cfg.TransitNodes*cfg.StubsPerNode {
		t.Errorf("stub domains = %d", len(ts.Stubs))
	}
	for _, stub := range ts.Stubs {
		if stub.Kind != StubDomain {
			t.Errorf("stub %d kind = %v", stub.ID, stub.Kind)
		}
		if !ts.Graph.HasEdge(stub.Gateway, stub.Attach) {
			t.Errorf("stub %d gateway %d not linked to attach %d", stub.ID, stub.Gateway, stub.Attach)
		}
		if got := ts.DomainOf(stub.Nodes[1]); got == nil || got.ID != stub.ID {
			t.Errorf("DomainOf(stub node) = %+v", got)
		}
	}
	if got := ts.DomainOf(ts.Transit.Nodes[0]); got == nil || got.Kind != TransitDomain {
		t.Errorf("DomainOf(transit node) = %+v", got)
	}
	if got := ts.DomainOf(graph.NodeID(wantNodes + 5)); got != nil {
		t.Errorf("DomainOf(unknown) = %+v, want nil", got)
	}
}

func TestTransitStubValidation(t *testing.T) {
	bad := DefaultTransitStubConfig()
	bad.TransitNodes = 1
	if _, err := GenerateTransitStub(bad, NewRNG(1)); err == nil {
		t.Error("expected validation error for 1 transit node")
	}
	bad2 := DefaultTransitStubConfig()
	bad2.StubAlpha = 2
	if _, err := GenerateTransitStub(bad2, NewRNG(1)); err == nil {
		t.Error("expected validation error for alpha > 1")
	}
}

func TestDomainKindString(t *testing.T) {
	if TransitDomain.String() != "transit" || StubDomain.String() != "stub" {
		t.Error("DomainKind String mismatch")
	}
	if DomainKind(0).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	cfg := WaxmanConfig{N: 40, Alpha: 0.25, Beta: DefaultBeta, EnsureConnected: true}
	g, err := Waxman(cfg, NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip shape mismatch: %d/%d vs %d/%d",
			back.NumNodes(), back.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		w1, _ := g.EdgeWeight(e.A, e.B)
		w2, ok := back.EdgeWeight(e.A, e.B)
		if !ok || w1 != w2 {
			t.Errorf("edge %v weight %v vs %v (ok=%v)", e, w1, w2, ok)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{")); err == nil {
		t.Error("truncated JSON should error")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"nodes":[{"id":5}],"edges":[]}`)); err == nil {
		t.Error("non-dense node IDs should error")
	}
}

// TestRNGFloat64QuickProperty uses testing/quick to check the Float64 range
// holds over arbitrary seeds.
func TestRNGFloat64QuickProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestWaxmanConnectedQuickProperty checks generated topologies are always
// connected across arbitrary seeds when EnsureConnected is set.
func TestWaxmanConnectedQuickProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		g, err := Waxman(WaxmanConfig{N: 50, Alpha: 0.2, Beta: DefaultBeta, EnsureConnected: true}, NewRNG(seed))
		return err == nil && g.Connected(nil)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(31)
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Errorf("mean = %v, want ≈0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("variance = %v, want ≈1", variance)
	}
}

func TestNLevelWithinPackage(t *testing.T) {
	cfg := DefaultNLevelConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	nt, err := GenerateNLevel(cfg, NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(nt.Leaves()) == 0 {
		t.Error("no leaves")
	}
	if nt.DomainOf(nt.Domains[0].Nodes[0]) != 0 {
		t.Error("DomainOf root node wrong")
	}
}
