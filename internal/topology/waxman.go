package topology

import (
	"fmt"
	"math"

	"smrp/internal/graph"
)

// WaxmanConfig parameterizes the Waxman random-graph model the paper uses
// via GT-ITM:
//
//	P(u,v) = Alpha · exp(−d(u,v) / (Beta·L))
//
// where d(u,v) is the Euclidean distance between u and v and L is the
// maximum possible distance in the placement plane. Increasing Alpha raises
// edge density; increasing Beta favours long edges. The paper fixes Beta and
// varies Alpha to tune average node degree (citing Zegura et al.).
type WaxmanConfig struct {
	N     int     // number of nodes
	Alpha float64 // edge-density parameter, (0, 1]
	Beta  float64 // long-edge parameter, (0, 1]

	// EnsureConnected, when true, joins any disconnected components by
	// adding the geometrically shortest inter-component edge (GT-ITM-style
	// post-processing). Without it, disconnected samples would have to be
	// discarded and the seed stream would diverge between parameterizations.
	EnsureConnected bool
}

// DefaultBeta is the fixed Beta used by the evaluation harness. With nodes
// in the unit square it yields average node degrees in the ≈2.5–5 range over
// the Alpha values the paper sweeps (0.15–0.3), and was calibrated so the
// default setup (α=0.2, D_thresh=0.3) reproduces the paper's headline
// trade-off (≈20% shorter recovery paths at ≈5% delay penalty).
const DefaultBeta = 0.15

// Validate reports whether the configuration is usable.
func (c WaxmanConfig) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("waxman: %w: N = %d, need at least 2 nodes", ErrBadConfig, c.N)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("waxman: %w: Alpha = %v out of (0, 1]", ErrBadConfig, c.Alpha)
	}
	if c.Beta <= 0 || c.Beta > 1 {
		return fmt.Errorf("waxman: %w: Beta = %v out of (0, 1]", ErrBadConfig, c.Beta)
	}
	return nil
}

// Waxman generates a Waxman random graph with nodes placed uniformly in the
// unit square. Link weight (used as both delay and cost, mirroring the
// paper's per-link delay labels) is the Euclidean distance between the
// endpoints.
func Waxman(cfg WaxmanConfig, rng *RNG) (*graph.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := graph.New(cfg.N)
	for i := 0; i < cfg.N; i++ {
		g.SetPos(graph.NodeID(i), graph.Point{X: rng.Float64(), Y: rng.Float64()})
	}
	maxDist := math.Sqrt2 // diagonal of the unit square
	for u := 0; u < cfg.N; u++ {
		for v := u + 1; v < cfg.N; v++ {
			d := g.Pos(graph.NodeID(u)).Dist(g.Pos(graph.NodeID(v)))
			p := cfg.Alpha * math.Exp(-d/(cfg.Beta*maxDist))
			if rng.Float64() < p {
				if err := addDistEdge(g, graph.NodeID(u), graph.NodeID(v)); err != nil {
					return nil, err
				}
			}
		}
	}
	if cfg.EnsureConnected {
		if err := Connectify(g); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// addDistEdge inserts edge (u, v) weighted by the Euclidean distance between
// the endpoint positions, with a small floor so coincident points still get
// a positive weight.
func addDistEdge(g *graph.Graph, u, v graph.NodeID) error {
	d := g.Pos(u).Dist(g.Pos(v))
	if d < 1e-9 {
		d = 1e-9
	}
	return g.AddEdge(u, v, d)
}

// connectifyExactCap bounds the exact all-pairs Connectify scan: graphs
// larger than this use the deterministic centroid-based pair pick instead.
// The cap sits far above every paper-scale study topology (N ≤ 300, which
// must keep the exact scan so blessed outputs stay byte-identical) and far
// below megascale, where an O(comps²·|ci|·|cj|) scan could dominate the
// whole O(N·deg) generation.
const connectifyExactCap = 4096

// Connectify joins the connected components of g by repeatedly adding the
// geometrically shortest edge between the largest component and another
// component. This mirrors the connectivity post-processing used with random
// topology generators so that every generated sample is usable. Past
// connectifyExactCap nodes the exact nearest-pair scan is replaced by a
// centroid-guided pick (still deterministic, O(N) per component joined).
func Connectify(g *graph.Graph) error {
	if g.NumNodes() > connectifyExactCap {
		return connectifyCentroid(g)
	}
	for {
		comps := g.Components(nil)
		if len(comps) <= 1 {
			return nil
		}
		// Find the overall closest pair of nodes in different components.
		bestD := math.Inf(1)
		var bestU, bestV graph.NodeID = graph.Invalid, graph.Invalid
		for ci := 0; ci < len(comps); ci++ {
			for cj := ci + 1; cj < len(comps); cj++ {
				for _, u := range comps[ci] {
					for _, v := range comps[cj] {
						d := g.Pos(u).Dist(g.Pos(v))
						if d < bestD {
							bestD, bestU, bestV = d, u, v
						}
					}
				}
			}
		}
		if bestU == graph.Invalid {
			return fmt.Errorf("connectify: no joining pair found across %d components", len(comps))
		}
		if err := addDistEdge(g, bestU, bestV); err != nil {
			return fmt.Errorf("connectify: %w", err)
		}
	}
}

// connectifyCentroid joins components at megascale without the quadratic
// nearest-pair scan: every minority component attaches to the largest one
// via (nearest main-component node to the minority centroid) ↔ (nearest
// minority node to that anchor). One Components pass, one linear scan per
// join, fully deterministic (ties break on lower node ID via scan order).
func connectifyCentroid(g *graph.Graph) error {
	return joinComponentsCentroid(g, g.Components(nil))
}

// joinComponentsCentroid implements the centroid-guided join over an
// explicit component list (shared by Connectify and connectifySubset).
func joinComponentsCentroid(g *graph.Graph, comps [][]graph.NodeID) error {
	if len(comps) <= 1 {
		return nil
	}
	// Largest component hosts the others; first-listed wins ties
	// (Components orders by lowest contained node ID).
	main := 0
	for i, c := range comps {
		if len(c) > len(comps[main]) {
			main = i
		}
	}
	for i, c := range comps {
		if i == main {
			continue
		}
		var cx, cy float64
		for _, n := range c {
			p := g.Pos(n)
			cx += p.X
			cy += p.Y
		}
		centroid := graph.Point{X: cx / float64(len(c)), Y: cy / float64(len(c))}
		anchor := nearestTo(g, comps[main], centroid)
		v := nearestTo(g, c, g.Pos(anchor))
		if err := addDistEdge(g, anchor, v); err != nil {
			return fmt.Errorf("connectify (centroid): %w", err)
		}
	}
	return nil
}

// Stats summarizes a generated topology.
type Stats struct {
	Nodes      int
	Edges      int
	AvgDegree  float64
	MinDegree  int
	MaxDegree  int
	Components int
	AvgWeight  float64
}

// Describe computes summary statistics for g.
func Describe(g *graph.Graph) Stats {
	s := Stats{
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		AvgDegree:  g.AvgDegree(),
		Components: len(g.Components(nil)),
		MinDegree:  math.MaxInt,
	}
	if s.Nodes == 0 {
		s.MinDegree = 0
		return s
	}
	for n := 0; n < s.Nodes; n++ {
		d := g.Degree(graph.NodeID(n))
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	var total float64
	for _, e := range g.Edges() {
		w, _ := g.EdgeWeight(e.A, e.B)
		total += w
	}
	if s.Edges > 0 {
		s.AvgWeight = total / float64(s.Edges)
	}
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d edges=%d avg_deg=%.2f deg=[%d,%d] comps=%d avg_w=%.3f",
		s.Nodes, s.Edges, s.AvgDegree, s.MinDegree, s.MaxDegree, s.Components, s.AvgWeight)
}
