package topology

import (
	"fmt"

	"smrp/internal/graph"
)

// NLevelConfig parameterizes the recursive N-level hierarchical generator —
// the generalization of the 2-level transit–stub model that §3.3.3 of the
// paper says the recovery architecture extends to.
type NLevelConfig struct {
	// Levels is the hierarchy depth (2 reproduces transit–stub).
	Levels int
	// Fanout is the number of child domains attached to each domain.
	Fanout int
	// NodesPerDomain is the size of every domain at every level.
	NodesPerDomain int
	// Alpha/Beta are the Waxman parameters used inside every domain.
	Alpha, Beta float64
	// Extent is the placement square of the top domain; each level down
	// shrinks by Shrink.
	Extent, Shrink float64
}

// DefaultNLevelConfig returns a 3-level hierarchy: a 6-node core, 2 child
// domains per domain, 8 nodes each (6 + 12·8... 6 + 2·8 + 4·8 = 54 nodes).
func DefaultNLevelConfig() NLevelConfig {
	return NLevelConfig{
		Levels:         3,
		Fanout:         2,
		NodesPerDomain: 8,
		Alpha:          0.9,
		Beta:           0.6,
		Extent:         1.0,
		Shrink:         0.35,
	}
}

// Validate reports whether the configuration is usable.
func (c NLevelConfig) Validate() error {
	if c.Levels < 2 {
		return fmt.Errorf("nlevel: %w: Levels = %d, need at least 2", ErrBadConfig, c.Levels)
	}
	if c.Fanout < 1 {
		return fmt.Errorf("nlevel: %w: Fanout = %d, need at least 1", ErrBadConfig, c.Fanout)
	}
	if c.NodesPerDomain < 2 {
		return fmt.Errorf("nlevel: %w: NodesPerDomain = %d, need at least 2", ErrBadConfig, c.NodesPerDomain)
	}
	if c.Alpha <= 0 || c.Alpha > 1 || c.Beta <= 0 || c.Beta > 1 {
		return fmt.Errorf("nlevel: %w: Waxman parameters out of (0, 1]", ErrBadConfig)
	}
	if c.Extent <= 0 || c.Shrink <= 0 || c.Shrink >= 1 {
		return fmt.Errorf("nlevel: %w: need Extent > 0 and Shrink in (0, 1)", ErrBadConfig)
	}
	return nil
}

// NLevelDomain is one recovery domain in an N-level hierarchy.
type NLevelDomain struct {
	ID    int
	Level int // 0 = root/core
	Nodes []graph.NodeID
	// Gateway is this domain's uplink node (equal to Nodes[...]; for the
	// root domain it is its first node and carries no uplink edge).
	Gateway graph.NodeID
	// Attach is the parent-domain node the gateway links to (Invalid for
	// the root).
	Attach graph.NodeID
	// Parent/Children index into NLevelTopology.Domains (-1 for the root's
	// parent).
	Parent   int
	Children []int
}

// NLevelTopology is a full N-level hierarchical network.
type NLevelTopology struct {
	Graph   *graph.Graph
	Domains []NLevelDomain
	Root    int // index of the root domain (always 0)
	// domainOf maps every node to its owning domain index, densely indexed
	// by NodeID (node IDs are 0..NumNodes-1 by construction). At megascale a
	// map here would cost ~50 bytes/node and a hash per recovery-attribution
	// lookup; the dense slice is 4 bytes/node and an array load.
	domainOf []int32
}

// DomainOf returns the index of the domain owning node n, or -1.
func (t *NLevelTopology) DomainOf(n graph.NodeID) int {
	if n < 0 || int(n) >= len(t.domainOf) {
		return -1
	}
	return int(t.domainOf[n])
}

// GenerateNLevel builds the hierarchy: the root domain is a Waxman graph
// over the full extent; each domain spawns Fanout child domains, placed near
// their attachment nodes with a shrunken extent, each joined upward through
// its gateway. Every domain is internally connected.
func GenerateNLevel(cfg NLevelConfig, rng *RNG) (*NLevelTopology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Total domains: Fanout^0 + … + Fanout^(Levels-1).
	totalDomains := 0
	pow := 1
	for l := 0; l < cfg.Levels; l++ {
		totalDomains += pow
		pow *= cfg.Fanout
	}
	g := graph.New(totalDomains * cfg.NodesPerDomain)
	t := &NLevelTopology{
		Graph:    g,
		Root:     0,
		domainOf: make([]int32, g.NumNodes()),
	}

	next := 0
	newDomainNodes := func(center graph.Point, extent float64, id int) []graph.NodeID {
		nodes := make([]graph.NodeID, cfg.NodesPerDomain)
		for i := range nodes {
			n := graph.NodeID(next)
			next++
			g.SetPos(n, graph.Point{
				X: center.X + (rng.Float64()-0.5)*extent,
				Y: center.Y + (rng.Float64()-0.5)*extent,
			})
			nodes[i] = n
			t.domainOf[n] = int32(id)
		}
		return nodes
	}

	// Breadth-first domain construction.
	type job struct {
		parent int // domain index; -1 for root
		attach graph.NodeID
		level  int
		center graph.Point
		extent float64
	}
	queue := []job{{
		parent: -1,
		attach: graph.Invalid,
		level:  0,
		center: graph.Point{X: cfg.Extent / 2, Y: cfg.Extent / 2},
		extent: cfg.Extent,
	}}
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		id := len(t.Domains)
		nodes := newDomainNodes(j.center, j.extent, id)
		if err := wireWaxman(g, nodes, cfg.Alpha, cfg.Beta, rng); err != nil {
			return nil, fmt.Errorf("nlevel: domain %d wiring: %w", id, err)
		}
		d := NLevelDomain{
			ID:     id,
			Level:  j.level,
			Nodes:  nodes,
			Parent: j.parent,
			Attach: j.attach,
		}
		if j.parent == -1 {
			d.Gateway = nodes[0]
		} else {
			d.Gateway = nearestTo(g, nodes, g.Pos(j.attach))
			if err := addDistEdge(g, d.Gateway, j.attach); err != nil {
				return nil, fmt.Errorf("nlevel: domain %d uplink: %w", id, err)
			}
			t.Domains[j.parent].Children = append(t.Domains[j.parent].Children, id)
		}
		t.Domains = append(t.Domains, d)

		if j.level+1 < cfg.Levels {
			for c := 0; c < cfg.Fanout; c++ {
				attach := nodes[(c+1)%len(nodes)]
				queue = append(queue, job{
					parent: id,
					attach: attach,
					level:  j.level + 1,
					center: g.Pos(attach),
					extent: j.extent * cfg.Shrink,
				})
			}
		}
	}
	return t, nil
}

// Leaves returns the indices of the deepest-level domains.
func (t *NLevelTopology) Leaves() []int {
	maxLevel := 0
	for _, d := range t.Domains {
		if d.Level > maxLevel {
			maxLevel = d.Level
		}
	}
	var out []int
	for _, d := range t.Domains {
		if d.Level == maxLevel {
			out = append(out, d.ID)
		}
	}
	return out
}
