package graph

import (
	"math"
	"testing"
)

// line builds the path graph 0-1-2-...-(n-1) with unit weights.
func line(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(NodeID(i), NodeID(i+1), 1); err != nil {
			t.Fatalf("add edge: %v", err)
		}
	}
	return g
}

func TestMakeEdgeIDCanonical(t *testing.T) {
	tests := []struct {
		name string
		u, v NodeID
		want EdgeID
	}{
		{name: "ordered", u: 1, v: 2, want: EdgeID{A: 1, B: 2}},
		{name: "reversed", u: 2, v: 1, want: EdgeID{A: 1, B: 2}},
		{name: "zero", u: 0, v: 5, want: EdgeID{A: 0, B: 5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := MakeEdgeID(tt.u, tt.v); got != tt.want {
				t.Errorf("MakeEdgeID(%d,%d) = %v, want %v", tt.u, tt.v, got, tt.want)
			}
		})
	}
}

func TestEdgeIDOther(t *testing.T) {
	e := MakeEdgeID(3, 7)
	if got, ok := e.Other(3); !ok || got != 7 {
		t.Errorf("Other(3) = %v,%v, want 7,true", got, ok)
	}
	if got, ok := e.Other(7); !ok || got != 3 {
		t.Errorf("Other(7) = %v,%v, want 3,true", got, ok)
	}
	if _, ok := e.Other(5); ok {
		t.Error("Other(5) should report false for non-endpoint")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	tests := []struct {
		name    string
		u, v    NodeID
		w       float64
		wantErr bool
	}{
		{name: "valid", u: 0, v: 1, w: 1.5, wantErr: false},
		{name: "duplicate", u: 1, v: 0, w: 2, wantErr: true},
		{name: "self loop", u: 2, v: 2, w: 1, wantErr: true},
		{name: "unknown node", u: 0, v: 9, w: 1, wantErr: true},
		{name: "negative node", u: -1, v: 1, w: 1, wantErr: true},
		{name: "zero weight", u: 0, v: 2, w: 0, wantErr: true},
		{name: "negative weight", u: 0, v: 2, w: -3, wantErr: true},
		{name: "nan weight", u: 0, v: 2, w: math.NaN(), wantErr: true},
		{name: "inf weight", u: 0, v: 2, w: math.Inf(1), wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := g.AddEdge(tt.u, tt.v, tt.w)
			if (err != nil) != tt.wantErr {
				t.Errorf("AddEdge(%d,%d,%v) error = %v, wantErr %v", tt.u, tt.v, tt.w, err, tt.wantErr)
			}
		})
	}
}

func TestGraphAccessors(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1, 2)
	mustEdge(t, g, 1, 2, 3)
	mustEdge(t, g, 2, 3, 4)

	if got := g.NumNodes(); got != 4 {
		t.Errorf("NumNodes = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 3 {
		t.Errorf("NumEdges = %d, want 3", got)
	}
	if w, ok := g.EdgeWeight(2, 1); !ok || w != 3 {
		t.Errorf("EdgeWeight(2,1) = %v,%v, want 3,true", w, ok)
	}
	if g.HasEdge(0, 3) {
		t.Error("HasEdge(0,3) should be false")
	}
	if got := g.Degree(1); got != 2 {
		t.Errorf("Degree(1) = %d, want 2", got)
	}
	if got := g.AvgDegree(); got != 1.5 {
		t.Errorf("AvgDegree = %v, want 1.5", got)
	}
}

func TestAvgDegreeEmpty(t *testing.T) {
	g := New(0)
	if got := g.AvgDegree(); got != 0 {
		t.Errorf("AvgDegree of empty graph = %v, want 0", got)
	}
}

func TestAddNodeAndPos(t *testing.T) {
	g := New(1)
	id := g.AddNode(Point{X: 3, Y: 4})
	if id != 1 {
		t.Fatalf("AddNode returned %d, want 1", id)
	}
	if p := g.Pos(id); p.X != 3 || p.Y != 4 {
		t.Errorf("Pos(%d) = %+v, want {3 4}", id, p)
	}
	g.SetPos(0, Point{X: 0, Y: 0})
	if d := g.Pos(0).Dist(g.Pos(1)); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 3, 2, 1)
	mustEdge(t, g, 1, 0, 1)
	mustEdge(t, g, 2, 0, 1)
	got := g.Edges()
	want := []EdgeID{{0, 1}, {0, 2}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("Edges len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Edges[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := line(t, 3)
	c := g.Clone()
	mustEdge(t, c, 0, 2, 9)
	if g.HasEdge(0, 2) {
		t.Error("mutating the clone leaked into the original")
	}
	if !c.HasEdge(0, 1) || !c.HasEdge(1, 2) {
		t.Error("clone missing original edges")
	}
}

func TestMaskBlocking(t *testing.T) {
	m := NewMask().BlockNode(2).BlockEdge(0, 1)
	if !m.NodeBlocked(2) || m.NodeBlocked(1) {
		t.Error("NodeBlocked mismatch")
	}
	if !m.EdgeBlocked(1, 0) {
		t.Error("EdgeBlocked should be orientation-insensitive")
	}
	// Blocked endpoint blocks incident edges too.
	if !m.EdgeBlocked(2, 3) {
		t.Error("edge incident to blocked node should be blocked")
	}
	if m.EdgeBlocked(3, 4) {
		t.Error("unrelated edge should not be blocked")
	}
}

func TestNilMaskBlocksNothing(t *testing.T) {
	var m *Mask
	if m.NodeBlocked(0) || m.EdgeBlocked(0, 1) {
		t.Error("nil mask must block nothing")
	}
	c := m.Clone()
	if c == nil || c.NodeBlocked(0) {
		t.Error("cloning nil mask should yield empty mask")
	}
}

func TestMaskUnion(t *testing.T) {
	a := NewMask().BlockNode(1)
	b := NewMask().BlockEdge(2, 3)
	u := a.Union(b)
	if !u.NodeBlocked(1) || !u.EdgeBlocked(2, 3) {
		t.Error("union should block both constituents")
	}
	if a.EdgeBlocked(2, 3) {
		t.Error("union must not mutate its receiver")
	}
	if got := a.Union(nil); !got.NodeBlocked(1) {
		t.Error("union with nil should equal clone")
	}
}

func mustEdge(t *testing.T, g *Graph, u, v NodeID, w float64) {
	t.Helper()
	if err := g.AddEdge(u, v, w); err != nil {
		t.Fatalf("AddEdge(%d,%d,%v): %v", u, v, w, err)
	}
}
