package graph

import "math"

// Unreachable is the distance reported for nodes that cannot be reached.
var Unreachable = math.Inf(1)

// SPTree is a shortest-path tree rooted at Source, as produced by Dijkstra.
type SPTree struct {
	Source NodeID
	Dist   []float64 // Dist[n] = shortest distance from Source to n (Unreachable if none)
	Parent []NodeID  // Parent[n] = predecessor of n on its shortest path (Invalid at Source / unreachable)
}

// Reachable reports whether node n is reachable from the tree's source.
func (t *SPTree) Reachable(n NodeID) bool {
	return !math.IsInf(t.Dist[n], 1)
}

// PathTo reconstructs the shortest path from the tree's source to n, or nil
// if n is unreachable.
func (t *SPTree) PathTo(n NodeID) Path {
	if !t.Reachable(n) {
		return nil
	}
	ln := 0
	for cur := n; cur != Invalid; cur = t.Parent[cur] {
		ln++
	}
	p := make(Path, ln)
	for cur, i := n, ln-1; cur != Invalid; cur, i = t.Parent[cur], i-1 {
		p[i] = cur
	}
	return p
}

// Dijkstra computes the shortest-path tree from src over the graph minus the
// mask. It runs on the pooled sweep engine (see Sweep); ties are broken on
// node ID, so the resulting tree is deterministic.
//
// When an SPF cache is attached (EnableSPFCache) the result is memoized by
// (src, mask fingerprint) and shared between callers, which also makes the
// call safe for concurrent use; cached trees must be treated as read-only.
func (g *Graph) Dijkstra(src NodeID, mask *Mask) *SPTree {
	if g.spf != nil {
		return g.spf.Dijkstra(src, mask)
	}
	return g.dijkstra(src, mask)
}

// dijkstra is the uncached shortest-path-tree computation: a full sweep
// copied out into a freshly allocated SPTree (the result escapes — it may be
// memoized and shared — so it cannot borrow pooled scratch arrays).
func (g *Graph) dijkstra(src NodeID, mask *Mask) *SPTree {
	n := g.NumNodes()
	t := &SPTree{
		Source: src,
		Dist:   make([]float64, n),
		Parent: make([]NodeID, n),
	}
	s := g.NewSweep()
	s.run(src, mask, Invalid, nil, nil, 0)
	spfFullRuns.Add(1)
	spfNodesSettled.Add(uint64(s.settledCount))
	for i := 0; i < n; i++ {
		if s.seen[i] == s.epoch {
			t.Dist[i] = s.dist[i]
			t.Parent[i] = s.parent[i]
		} else {
			t.Dist[i] = Unreachable
			t.Parent[i] = Invalid
		}
	}
	s.Release()
	return t
}

// ShortestPath returns the shortest path from src to dst avoiding the mask,
// together with its length. It returns (nil, Unreachable) when no path
// exists.
//
// With an SPF cache attached the full (src, mask) tree is computed once and
// memoized — the cache deliberately stores only complete trees, because a
// tree truncated at one destination would silently under-serve the next
// caller asking the same (src, mask) about a different destination. Without
// a cache there is nobody to share a full tree with, so the sweep exits
// early the moment dst settles: settled nodes are never re-relaxed, hence
// dst's distance and parent chain are already final and identical to the
// full run's.
func (g *Graph) ShortestPath(src, dst NodeID, mask *Mask) (Path, float64) {
	if !g.valid(dst) {
		return nil, Unreachable
	}
	if g.spf != nil {
		t := g.spf.Dijkstra(src, mask)
		if !t.Reachable(dst) {
			return nil, Unreachable
		}
		return t.PathTo(dst), t.Dist[dst]
	}
	s := g.NewSweep()
	defer s.Release()
	if s.run(src, mask, dst, nil, nil, 0) == Invalid {
		return nil, Unreachable
	}
	return s.PathTo(dst), s.dist[dst]
}

// NearestOf runs Dijkstra from src and returns the closest node for which
// accept returns true, along with the path to it and its distance. src itself
// is considered if accept(src) holds. It returns (Invalid, nil, Unreachable)
// when no accepted node is reachable.
//
// This is the primitive behind local-detour recovery: "find the nearest
// surviving on-tree node in the residual network". The sweep stops at the
// first settled accepted node, and the pooled scratch arena makes the
// steady-state call allocation-free apart from the returned path.
//
// NearestOf deliberately bypasses the SPF cache even when one is attached:
// the nearest survivor is almost always a few hops out, so the early-exit
// sweep settles a handful of nodes, far less than the full (src, mask) tree
// a cache entry would require — memoizing here would cost more settled work
// than it saves (the sources are disconnected members, rarely re-queried).
func (g *Graph) NearestOf(src NodeID, mask *Mask, accept func(NodeID) bool) (NodeID, Path, float64) {
	n, p, d, _ := g.NearestOfCounted(src, mask, accept)
	return n, p, d
}

// NearestOfCounted is NearestOf reporting additionally how many nodes the
// early-exit sweep settled before finding (or failing to find) an accepted
// node. The count is the deterministic unit of recovery work the megascale
// study compares across architectures: on a flat topology the ball grows with
// the network, inside a domain sub-session it is bounded by the domain.
func (g *Graph) NearestOfCounted(src NodeID, mask *Mask, accept func(NodeID) bool) (NodeID, Path, float64, int) {
	s := g.NewSweep()
	defer s.Release()
	got := s.run(src, mask, Invalid, nil, accept, 0)
	settled := s.SettledCount()
	if got == Invalid {
		return Invalid, nil, Unreachable, settled
	}
	return got, s.PathTo(got), s.dist[got], settled
}
