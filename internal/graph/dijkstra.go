package graph

import (
	"container/heap"
	"math"
)

// Unreachable is the distance reported for nodes that cannot be reached.
var Unreachable = math.Inf(1)

// SPTree is a shortest-path tree rooted at Source, as produced by Dijkstra.
type SPTree struct {
	Source NodeID
	Dist   []float64 // Dist[n] = shortest distance from Source to n (Unreachable if none)
	Parent []NodeID  // Parent[n] = predecessor of n on its shortest path (Invalid at Source / unreachable)
}

// Reachable reports whether node n is reachable from the tree's source.
func (t *SPTree) Reachable(n NodeID) bool {
	return !math.IsInf(t.Dist[n], 1)
}

// PathTo reconstructs the shortest path from the tree's source to n, or nil
// if n is unreachable.
func (t *SPTree) PathTo(n NodeID) Path {
	if !t.Reachable(n) {
		return nil
	}
	var rev []NodeID
	for cur := n; cur != Invalid; cur = t.Parent[cur] {
		rev = append(rev, cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return Path(rev)
}

// pqItem is an entry in the Dijkstra priority queue.
type pqItem struct {
	node NodeID
	dist float64
}

// pq is a binary min-heap of pqItems keyed by dist, with deterministic
// tie-breaking on node ID so results are stable across runs.
type pq []pqItem

func (q pq) Len() int { return len(q) }

func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].node < q[j].node
}

func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *pq) Push(x any) {
	item, ok := x.(pqItem)
	if !ok {
		return // heap.Push is only ever called with pqItem from this package
	}
	*q = append(*q, item)
}

func (q *pq) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

var _ heap.Interface = (*pq)(nil)

// Dijkstra computes the shortest-path tree from src over the graph minus the
// mask. It uses a lazy-deletion binary heap; ties are broken on node ID, so
// the resulting tree is deterministic.
//
// When an SPF cache is attached (EnableSPFCache) the result is memoized by
// (src, mask fingerprint) and shared between callers, which also makes the
// call safe for concurrent use; cached trees must be treated as read-only.
func (g *Graph) Dijkstra(src NodeID, mask *Mask) *SPTree {
	if g.spf != nil {
		return g.spf.Dijkstra(src, mask)
	}
	return g.dijkstra(src, mask)
}

// dijkstra is the uncached shortest-path-tree computation.
func (g *Graph) dijkstra(src NodeID, mask *Mask) *SPTree {
	n := g.NumNodes()
	t := &SPTree{
		Source: src,
		Dist:   make([]float64, n),
		Parent: make([]NodeID, n),
	}
	for i := range t.Dist {
		t.Dist[i] = Unreachable
		t.Parent[i] = Invalid
	}
	if !g.valid(src) || mask.NodeBlocked(src) {
		return t
	}
	t.Dist[src] = 0

	done := make([]bool, n)
	q := pq{{node: src, dist: 0}}
	for len(q) > 0 {
		item, ok := heap.Pop(&q).(pqItem)
		if !ok {
			break
		}
		u := item.node
		if done[u] || item.dist > t.Dist[u] {
			continue // stale heap entry
		}
		done[u] = true
		for _, arc := range g.adj[u] {
			v := arc.To
			if done[v] || mask.NodeBlocked(v) || mask.EdgeBlocked(u, v) {
				continue
			}
			nd := t.Dist[u] + arc.Weight
			// Deterministic tie-breaking on parent ID keeps shortest-path
			// trees stable when multiple equal-length paths exist.
			if nd < t.Dist[v] || (nd == t.Dist[v] && u < t.Parent[v]) {
				t.Dist[v] = nd
				t.Parent[v] = u
				heap.Push(&q, pqItem{node: v, dist: nd})
			}
		}
	}
	return t
}

// ShortestPath returns the shortest path from src to dst avoiding the mask,
// together with its length. It returns (nil, Unreachable) when no path
// exists.
func (g *Graph) ShortestPath(src, dst NodeID, mask *Mask) (Path, float64) {
	t := g.Dijkstra(src, mask)
	if !g.valid(dst) || !t.Reachable(dst) {
		return nil, Unreachable
	}
	return t.PathTo(dst), t.Dist[dst]
}

// NearestOf runs Dijkstra from src and returns the closest node for which
// accept returns true, along with the path to it and its distance. src itself
// is considered if accept(src) holds. It returns (Invalid, nil, Unreachable)
// when no accepted node is reachable.
//
// This is the primitive behind local-detour recovery: "find the nearest
// surviving on-tree node in the residual network".
func (g *Graph) NearestOf(src NodeID, mask *Mask, accept func(NodeID) bool) (NodeID, Path, float64) {
	n := g.NumNodes()
	if !g.valid(src) || mask.NodeBlocked(src) {
		return Invalid, nil, Unreachable
	}
	dist := make([]float64, n)
	parent := make([]NodeID, n)
	for i := range dist {
		dist[i] = Unreachable
		parent[i] = Invalid
	}
	dist[src] = 0
	done := make([]bool, n)
	q := pq{{node: src, dist: 0}}
	for len(q) > 0 {
		item, ok := heap.Pop(&q).(pqItem)
		if !ok {
			break
		}
		u := item.node
		if done[u] || item.dist > dist[u] {
			continue
		}
		done[u] = true
		if accept(u) {
			// First settled accepted node is the nearest one.
			var rev []NodeID
			for cur := u; cur != Invalid; cur = parent[cur] {
				rev = append(rev, cur)
			}
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return u, Path(rev), dist[u]
		}
		for _, arc := range g.adj[u] {
			v := arc.To
			if done[v] || mask.NodeBlocked(v) || mask.EdgeBlocked(u, v) {
				continue
			}
			nd := dist[u] + arc.Weight
			if nd < dist[v] || (nd == dist[v] && u < parent[v]) {
				dist[v] = nd
				parent[v] = u
				heap.Push(&q, pqItem{node: v, dist: nd})
			}
		}
	}
	return Invalid, nil, Unreachable
}
