package graph

// Deterministic memory accounting for megascale topologies. The footprint is
// computed from element counts and fixed per-element sizes rather than read
// off the live heap, so the same graph reports the same number on every run,
// machine, and worker count — which is what lets the megascale study publish
// per-component memory as a CI-stable metric.

// Per-element sizes of the graph's resident structures on a 64-bit platform.
// The map constant folds the bucket overhead Go's runtime adds per occupied
// entry (~1.4 slots of key+value+tophash at default load factor) into one
// fixed per-entry figure, keeping the accounting deterministic where a live
// heap measurement would not be.
const (
	bytesPerArc      = 16 // Arc{To NodeID(8), Weight float64(8)}
	bytesPerPoint    = 16 // Point{X, Y float64}
	bytesSliceHeader = 24 // ptr + len + cap
	bytesPerMapEntry = 48 // EdgeID(16) + float64(8) + bucket overhead
	// bytesPerSortedEdge is one entry of a frozen graph's flat edge pair:
	// EdgeID(16) in edgeIDs plus float64(8) in edgeW — no bucket overhead,
	// which is exactly the saving Freeze banks over the build-phase map.
	bytesPerSortedEdge = 24
)

// MemoryFootprint returns the deterministic byte accounting of the graph's
// core structures: adjacency lists (headers plus arcs), node positions, and
// the edge store — the weight map during the build phase, or the sorted flat
// edge pair once frozen. Lazily materialized caches (the CSR sweep view, the
// SPF cache) are deliberately excluded — they are rebuildable derivatives
// whose presence depends on query history, not on the topology itself.
func (g *Graph) MemoryFootprint() int64 {
	arcs := 0
	for _, a := range g.adj {
		arcs += len(a)
	}
	edgeBytes := int64(len(g.weights)) * bytesPerMapEntry
	if g.frozen {
		edgeBytes = int64(len(g.edgeIDs)) * bytesPerSortedEdge
	}
	return int64(len(g.adj))*bytesSliceHeader +
		int64(arcs)*bytesPerArc +
		int64(len(g.pos))*bytesPerPoint +
		edgeBytes
}
