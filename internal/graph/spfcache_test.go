package graph

import (
	"sync"
	"testing"
)

// cacheTestGraph builds a small weighted graph:
//
//	0 —1— 1 —1— 2
//	 \         /
//	  2———————3   (0–4–2 via node 3? no: direct edge 0-3 w2, 3-2 w2)
func cacheTestGraph(t *testing.T) *Graph {
	t.Helper()
	g := New(5)
	edges := []struct {
		u, v NodeID
		w    float64
	}{
		{0, 1, 1}, {1, 2, 1}, {0, 3, 2}, {3, 2, 2}, {2, 4, 1},
	}
	for _, e := range edges {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestSPFCacheHitsAndEquivalence(t *testing.T) {
	g := cacheTestGraph(t)
	want := g.Dijkstra(0, nil) // uncached reference
	c := g.EnableSPFCache()

	t1 := g.Dijkstra(0, nil)
	t2 := g.Dijkstra(0, nil)
	if t1 != t2 {
		t.Error("second lookup should return the memoized tree")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	for n := range want.Dist {
		if want.Dist[n] != t1.Dist[n] || want.Parent[n] != t1.Parent[n] {
			t.Errorf("node %d: cached (%v,%v) != uncached (%v,%v)",
				n, t1.Dist[n], t1.Parent[n], want.Dist[n], want.Parent[n])
		}
	}
}

func TestSPFCacheDistinguishesMasks(t *testing.T) {
	g := cacheTestGraph(t)
	g.EnableSPFCache()

	free := g.Dijkstra(0, nil)
	masked := g.Dijkstra(0, NewMask().BlockEdge(0, 1))
	if free == masked {
		t.Fatal("different masks must not share a cache entry")
	}
	if free.Dist[2] != 2 {
		t.Errorf("unmasked dist to 2 = %v, want 2", free.Dist[2])
	}
	if masked.Dist[2] != 4 {
		t.Errorf("masked dist to 2 = %v, want 4 (via 0-3-2)", masked.Dist[2])
	}
}

func TestSPFCacheInvalidatesOnMutation(t *testing.T) {
	g := cacheTestGraph(t)
	c := g.EnableSPFCache()

	before := g.Dijkstra(0, nil)
	if before.Dist[4] != 3 {
		t.Fatalf("dist to 4 = %v, want 3", before.Dist[4])
	}
	if err := g.AddEdge(0, 4, 0.5); err != nil { // shortcut mutates topology
		t.Fatal(err)
	}
	after := g.Dijkstra(0, nil)
	if after.Dist[4] != 0.5 {
		t.Errorf("post-mutation dist to 4 = %v, want 0.5 (cache must flush)", after.Dist[4])
	}
	if c.Len() != 1 {
		t.Errorf("cache should hold exactly the recomputed tree, len = %d", c.Len())
	}
}

func TestSPFCacheConcurrentLookups(t *testing.T) {
	g := cacheTestGraph(t)
	g.EnableSPFCache()
	want := g.dijkstra(1, nil)

	var wg sync.WaitGroup
	const goroutines = 16
	errs := make([]string, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				src := NodeID(k % 5)
				tr := g.Dijkstra(src, nil)
				if tr.Source != src {
					errs[slot] = "wrong source tree returned"
					return
				}
				if src == 1 && tr.Dist[4] != want.Dist[4] {
					errs[slot] = "cached tree diverges from direct computation"
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != "" {
			t.Fatal(e)
		}
	}
}

func TestSPFCacheShardEviction(t *testing.T) {
	g := cacheTestGraph(t)
	c := NewSPFCache(g, 2) // tiny shards to force eviction
	for k := 0; k < 100; k++ {
		m := NewMask().BlockNode(NodeID(k%3 + 1))
		if k%2 == 0 {
			m.BlockEdge(2, 4)
		}
		_ = c.Dijkstra(0, m)
	}
	if c.Len() > 2*spfShardCount {
		t.Errorf("cache exceeded its bound: %d entries", c.Len())
	}
}

func TestMaskFingerprint(t *testing.T) {
	a := NewMask().BlockNode(3).BlockEdge(1, 2)
	b := NewMask().BlockEdge(2, 1).BlockNode(3) // same set, different order
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint must be insertion-order independent")
	}
	if (&Mask{}).Fingerprint() != (*Mask)(nil).Fingerprint() {
		t.Error("empty and nil masks must fingerprint identically")
	}
	c := NewMask().BlockNode(3)
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different blocked sets should fingerprint differently")
	}
	// A node-block and an edge-block must not collide trivially.
	n := NewMask().BlockNode(1)
	e := NewMask().BlockEdge(0, 1)
	if n.Fingerprint() == e.Fingerprint() {
		t.Error("node vs edge block collided")
	}
}
