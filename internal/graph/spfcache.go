package graph

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// spfShardCount is the number of independent lock domains in an SPFCache.
// Sixteen shards keep lock contention negligible for worker pools up to a
// few dozen goroutines while costing almost nothing at rest.
const spfShardCount = 16

// defaultSPFShardCap bounds each shard. When a shard fills up it is cleared
// wholesale — memoization is purely a performance optimization, so dropping
// entries is always safe, and wholesale clearing avoids the bookkeeping of
// an LRU on the hot path.
const defaultSPFShardCap = 512

// spfKey identifies one memoized shortest-path tree: the Dijkstra source
// plus the fingerprint of the failure mask it was computed under.
type spfKey struct {
	src NodeID
	fp  uint64
}

type spfShard struct {
	mu sync.RWMutex
	m  map[spfKey]*SPTree
}

// SPFCache is a concurrency-safe memoization layer over Graph.Dijkstra,
// sharded by (source, mask-fingerprint) so parallel scenario trials that
// share a topology stop recomputing identical shortest-path trees from
// scratch.
//
// Cached *SPTree values are shared between callers and MUST be treated as
// read-only; every consumer in this repository already does (PathTo and Dist
// lookups only).
//
// Invalidation: the cache snapshots the graph's structural version and
// flushes itself whenever the graph mutates (AddNode/AddEdge/SetPos bump the
// version). Mutating the graph while other goroutines query the cache is not
// supported — the contract is "mutate single-threaded, then share read-only",
// which is how every topology in this repository is built.
type SPFCache struct {
	g       *Graph
	version atomic.Uint64
	shards  [spfShardCount]spfShard
	cap     int

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewSPFCache builds a cache over g. capPerShard bounds each of the 16
// shards; values < 1 select the default (512 entries per shard).
func NewSPFCache(g *Graph, capPerShard int) *SPFCache {
	if capPerShard < 1 {
		capPerShard = defaultSPFShardCap
	}
	c := &SPFCache{g: g, cap: capPerShard}
	c.version.Store(g.version)
	for i := range c.shards {
		c.shards[i].m = make(map[spfKey]*SPTree)
	}
	return c
}

// Dijkstra returns the shortest-path tree from src under mask, computing and
// memoizing it on first use. Safe for concurrent use. The returned tree is
// shared: callers must not mutate it.
func (c *SPFCache) Dijkstra(src NodeID, mask *Mask) *SPTree {
	if c.g.version != c.version.Load() {
		c.flushTo(c.g.version)
	}
	key := spfKey{src: src, fp: mask.Fingerprint()}
	sh := &c.shards[mix64(uint64(uint32(key.src))^key.fp)%spfShardCount]

	sh.mu.RLock()
	t, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return t
	}
	c.misses.Add(1)
	t = c.g.dijkstra(src, mask)
	sh.mu.Lock()
	if len(sh.m) >= c.cap {
		// Shard full: drop it wholesale. Correctness never depends on a
		// cache hit, and clearing is O(1) amortized vs. LRU bookkeeping.
		sh.m = make(map[spfKey]*SPTree)
	}
	// Last writer wins on a racing double-compute; both results are
	// identical because dijkstra is deterministic.
	sh.m[key] = t
	sh.mu.Unlock()
	return t
}

// Flush drops every memoized tree.
func (c *SPFCache) Flush() { c.flushTo(c.g.version) }

// flushTo clears all shards and records the graph version the cache now
// reflects. Racing flushes are harmless: both clear, and the version
// converges to the current graph version.
func (c *SPFCache) flushTo(v uint64) {
	for i := range c.shards {
		c.shards[i].mu.Lock()
		c.shards[i].m = make(map[spfKey]*SPTree)
		c.shards[i].mu.Unlock()
	}
	c.version.Store(v)
}

// Len returns the number of memoized trees across all shards.
func (c *SPFCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}

// Stats returns cumulative hit/miss counters.
func (c *SPFCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// String describes the cache state.
func (c *SPFCache) String() string {
	h, m := c.Stats()
	return fmt.Sprintf("graph.SPFCache{entries=%d hits=%d misses=%d}", c.Len(), h, m)
}

// EnableSPFCache attaches a memoizing SPF cache to the graph: all subsequent
// Dijkstra and ShortestPath calls consult it transparently, making them both
// faster on repeated queries and safe for concurrent use. Idempotent — the
// existing cache is kept if one is already attached. Returns the cache.
//
// Call this after topology generation is complete. The graph may still be
// mutated afterwards (the cache flushes itself via the version counter), but
// never concurrently with readers.
func (g *Graph) EnableSPFCache() *SPFCache {
	if g.spf == nil {
		g.spf = NewSPFCache(g, 0)
	}
	return g.spf
}

// DisableSPFCache detaches the memoizing SPF cache, returning Dijkstra to
// uncached per-call computation.
func (g *Graph) DisableSPFCache() { g.spf = nil }

// SPFCacheOf returns the graph's attached SPF cache, or nil when disabled.
func (g *Graph) SPFCacheOf() *SPFCache { return g.spf }
