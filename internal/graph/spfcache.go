package graph

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// spfShardCount is the number of independent write domains in an SPFCache.
// Sixteen shards keep writer serialization negligible for worker pools up to
// a few dozen goroutines while costing almost nothing at rest. Readers never
// touch a shard lock at all — see spfShard.
const spfShardCount = 16

// defaultSPFShardCap bounds each shard. When a shard fills up it is cleared
// wholesale — memoization is purely a performance optimization, so dropping
// entries is always safe, and wholesale clearing avoids the bookkeeping of
// an LRU on the hot path.
const defaultSPFShardCap = 512

// spfKey identifies one memoized shortest-path tree: the Dijkstra source
// plus the fingerprint of the failure mask it was computed under.
type spfKey struct {
	src NodeID
	fp  uint64
}

// spfEntry is one memoized tree together with the mask it was computed under
// (a private clone — callers reuse and mutate their masks, notably the KSP
// scratch mask). The mask is what makes an entry usable as a delta-repair
// ancestor: a later miss for the same source diffs its mask against this one
// and, when the diff is small, clones the tree and repairs it in place
// instead of re-sweeping the whole topology (see ispf.go). Entries are
// immutable once published.
type spfEntry struct {
	tree *SPTree
	mask *Mask
}

// spfMap is one shard's immutable entry snapshot. A published map is never
// mutated again; writers clone-on-write and publish a fresh map through the
// shard's atomic pointer.
type spfMap = map[spfKey]*spfEntry

// spfShard is one write domain of the cache. The read path is lock-free:
// a hit loads the current snapshot pointer and probes the immutable map —
// no mutex, no atomic read-modify-write, nothing a concurrent writer can
// contend on. The mutex serializes writers only (clone → insert → publish);
// readers racing a publish see either the old or the new snapshot, both of
// which are internally consistent.
type spfShard struct {
	m  atomic.Pointer[spfMap]
	mu sync.Mutex // serializes writers; the read path never touches it
}

// load returns the shard's current immutable snapshot.
func (sh *spfShard) load() spfMap {
	if p := sh.m.Load(); p != nil {
		return *p
	}
	return nil
}

// SPFCache is a concurrency-safe memoization layer over Graph.Dijkstra,
// sharded by (source, mask-fingerprint) so parallel scenario trials — and
// parallel sessions inside one scenario — that share a topology stop
// recomputing identical shortest-path trees from scratch.
//
// The read path is entirely lock-free: hits load an immutable per-shard
// snapshot map and a per-source lineage head through atomic pointers, so any
// number of reader goroutines scale without a shared cache line to bounce a
// mutex on (DESIGN.md §14). Writers clone-on-write and publish; the cost of
// the clone is bounded by the shard cap and paid only on misses, which a
// hit-dominated workload amortizes away.
//
// Cached *SPTree values are shared between callers and MUST be treated as
// read-only; every consumer in this repository already does (PathTo and Dist
// lookups only).
//
// Invalidation: the cache snapshots the graph's structural version and
// flushes itself whenever the graph mutates (AddNode/AddEdge/SetPos bump the
// version). Mutating the graph while other goroutines query the cache is not
// supported — the contract is "mutate single-threaded, then share read-only",
// which is how every topology in this repository is built.
type SPFCache struct {
	g       *Graph
	version atomic.Uint64
	shards  [spfShardCount]spfShard
	// recent tracks, per source, the most recently touched entry — the
	// clone-on-write lineage head that delta repairs start from. The slice is
	// indexed by NodeID and republished wholesale on flush (the pointer
	// indirection keeps a concurrent reader of the old slice safe while a
	// flush installs the new one).
	recent atomic.Pointer[[]atomic.Pointer[spfEntry]]
	cap    int

	flushMu sync.Mutex // serializes flushes (writer-side only)

	hits   atomic.Uint64
	misses atomic.Uint64
	deltas atomic.Uint64
}

// NewSPFCache builds a cache over g. capPerShard bounds each of the 16
// shards; values < 1 select the default (512 entries per shard).
func NewSPFCache(g *Graph, capPerShard int) *SPFCache {
	if capPerShard < 1 {
		capPerShard = defaultSPFShardCap
	}
	c := &SPFCache{g: g, cap: capPerShard}
	c.version.Store(g.version)
	for i := range c.shards {
		m := make(spfMap)
		c.shards[i].m.Store(&m)
	}
	rs := make([]atomic.Pointer[spfEntry], g.NumNodes())
	c.recent.Store(&rs)
	return c
}

// noteRecent records e as the lineage head for src (lock-free publish).
func (c *SPFCache) noteRecent(src NodeID, e *spfEntry) {
	rs := *c.recent.Load()
	if int(src) < len(rs) {
		rs[src].Store(e)
	}
}

// recentOf returns the lineage head for src, or nil (lock-free load).
func (c *SPFCache) recentOf(src NodeID) *spfEntry {
	rs := *c.recent.Load()
	if int(src) < len(rs) {
		return rs[src].Load()
	}
	return nil
}

// Dijkstra returns the shortest-path tree from src under mask, computing and
// memoizing it on first use. Safe for concurrent use; hits take zero locks
// (pinned by TestSPFCacheHitZeroAlloc and TestSPFCacheHitMutexProfile). The
// returned tree is shared: callers
// must not mutate it.
func (c *SPFCache) Dijkstra(src NodeID, mask *Mask) *SPTree {
	if c.g.version != c.version.Load() {
		c.flushTo(c.g.version)
	}
	key := spfKey{src: src, fp: mask.Fingerprint()}
	sh := &c.shards[mix64(uint64(uint32(key.src))^key.fp)%spfShardCount]

	if e, ok := sh.load()[key]; ok {
		c.hits.Add(1)
		spfCacheHits.Add(1)
		// A hit refreshes the lineage head: the next miss for this source is
		// most likely a small delta of the mask just queried.
		c.noteRecent(src, e)
		return e.tree
	}
	c.misses.Add(1)
	spfCacheMisses.Add(1)
	t := c.tryDelta(src, mask)
	if t == nil {
		t = c.g.dijkstra(src, mask)
	}
	e := &spfEntry{tree: t, mask: mask.Clone()}
	sh.mu.Lock()
	old := sh.load()
	var next spfMap
	if len(old) >= c.cap {
		// Shard full: drop it wholesale. Correctness never depends on a
		// cache hit, and starting fresh beats LRU bookkeeping (and keeps the
		// clone below O(cap)).
		next = make(spfMap)
	} else {
		// Clone-on-write: the published map is immutable, so an insert
		// copies the current snapshot and publishes the successor. Readers
		// racing this see the old snapshot — a spurious miss at worst.
		next = make(spfMap, len(old)+1)
		for k, v := range old {
			next[k] = v
		}
	}
	// Last writer wins on a racing double-compute; both results are
	// identical because dijkstra and the delta repair are deterministic.
	next[key] = e
	sh.m.Store(&next)
	sh.mu.Unlock()
	c.noteRecent(src, e)
	return t
}

// tryDelta attempts to produce the (src, mask) tree by incremental repair of
// the source's lineage head instead of a full sweep. It returns nil when the
// delta path is disabled, no lineage exists, the mask diff is too large, or
// the repair declined (degenerate source) — the caller then falls back to
// g.dijkstra. On success the returned tree is bit-identical to what the full
// sweep would have produced (see ispf.go for why).
func (c *SPFCache) tryDelta(src NodeID, mask *Mask) *SPTree {
	if spfDeltaOff.Load() {
		return nil
	}
	prev := c.recentOf(src)
	if prev == nil {
		return nil
	}
	sc := ispfPool.Get().(*ispfScratch)
	defer ispfPool.Put(sc)
	added, removed, ok := mask.AppendDiff(sc.added[:0], sc.removed[:0], prev.mask, DefaultDiffLimit)
	sc.added, sc.removed = added[:0], removed[:0] // keep grown buffers pooled
	if !ok {
		return nil
	}
	if len(added) == 0 && len(removed) == 0 {
		// Content-identical mask (entry was evicted from the shard map):
		// the lineage tree is already the answer.
		return prev.tree
	}
	nt := cloneTree(prev.tree)
	settled, ok := ispfRepair(c.g, nt, added, removed, mask, sc)
	if !ok {
		return nil
	}
	c.deltas.Add(1)
	spfDeltaRuns.Add(1)
	spfNodesSettled.Add(uint64(settled))
	if ispfCrosscheck {
		ref := c.g.dijkstra(src, mask)
		for v := range ref.Dist {
			if nt.Dist[v] != ref.Dist[v] || nt.Parent[v] != ref.Parent[v] {
				panic(fmt.Sprintf("ispf mismatch src=%d node=%d got=(%v,%v) want=(%v,%v) added=%v removed=%v",
					src, v, nt.Dist[v], nt.Parent[v], ref.Dist[v], ref.Parent[v], added, removed))
			}
		}
	}
	return nt
}

// ispfCrosscheck, when set via SMRP_ISPF_CHECK=1, verifies every delta repair
// against a full sweep (debugging aid; defeats the optimization).
var ispfCrosscheck = os.Getenv("SMRP_ISPF_CHECK") == "1"

// Flush drops every memoized tree.
func (c *SPFCache) Flush() { c.flushTo(c.g.version) }

// flushTo clears all shards (including the delta-repair lineage index, whose
// trees are just as stale as the mapped ones) by publishing fresh empty
// snapshots, and records the graph version the cache now reflects. Flushes
// serialize against each other and against shard writers; concurrent readers
// simply observe the swap. The version is recorded before the snapshots are
// replaced so a reader racing the flush can never re-publish a stale hit
// under the new version's key space (keys carry the mask fingerprint, which
// is version-independent — a racing reader may see an old entry for a
// heartbeat, which is exactly as stale as the tree it had already been
// handed; the single-threaded-mutation contract makes this unreachable in
// practice).
func (c *SPFCache) flushTo(v uint64) {
	c.flushMu.Lock()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		m := make(spfMap)
		sh.m.Store(&m)
		sh.mu.Unlock()
	}
	rs := make([]atomic.Pointer[spfEntry], c.g.NumNodes())
	c.recent.Store(&rs)
	c.version.Store(v)
	c.flushMu.Unlock()
}

// Len returns the number of memoized trees across all shards.
func (c *SPFCache) Len() int {
	n := 0
	for i := range c.shards {
		n += len(c.shards[i].load())
	}
	return n
}

// Stats returns cumulative hit/miss counters.
func (c *SPFCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// DeltaRepairs returns how many misses this cache served by incremental
// delta repair instead of a full sweep.
func (c *SPFCache) DeltaRepairs() uint64 { return c.deltas.Load() }

// String describes the cache state.
func (c *SPFCache) String() string {
	h, m := c.Stats()
	return fmt.Sprintf("graph.SPFCache{entries=%d hits=%d misses=%d deltas=%d}",
		c.Len(), h, m, c.deltas.Load())
}

// EnableSPFCache attaches a memoizing SPF cache to the graph: all subsequent
// Dijkstra and ShortestPath calls consult it transparently, making them both
// faster on repeated queries and safe for concurrent use. Idempotent — the
// existing cache is kept if one is already attached. Returns the cache.
//
// Call this after topology generation is complete. The graph may still be
// mutated afterwards (the cache flushes itself via the version counter), but
// never concurrently with readers.
func (g *Graph) EnableSPFCache() *SPFCache {
	if g.spf == nil {
		g.spf = NewSPFCache(g, 0)
	}
	return g.spf
}

// DisableSPFCache detaches the memoizing SPF cache, returning Dijkstra to
// uncached per-call computation.
func (g *Graph) DisableSPFCache() { g.spf = nil }

// SPFCacheOf returns the graph's attached SPF cache, or nil when disabled.
func (g *Graph) SPFCacheOf() *SPFCache { return g.spf }
