package graph

import (
	"math/rand"
	"runtime/debug"
	"testing"
)

// TestSweepMatchesDijkstra cross-checks the pooled sweep against the public
// Dijkstra tree on random graphs, including masked runs.
func TestSweepMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomConnectedGraph(rng, 50, 120)
		var mask *Mask
		if trial%2 == 1 {
			mask = NewMask().BlockNode(NodeID(rng.Intn(50)))
		}
		src := NodeID(rng.Intn(50))
		tr := g.Dijkstra(src, mask)

		s := g.NewSweep()
		s.Run(src, mask, nil)
		for v := 0; v < 50; v++ {
			n := NodeID(v)
			if tr.Reachable(n) != s.Reached(n) {
				t.Fatalf("trial %d node %d: reachability mismatch", trial, v)
			}
			if !tr.Reachable(n) {
				continue
			}
			if tr.Dist[n] != s.Dist(n) || tr.Parent[n] != s.Parent(n) {
				t.Fatalf("trial %d node %d: (dist,parent)=(%v,%d) sweep (%v,%d)",
					trial, v, tr.Dist[n], tr.Parent[n], s.Dist(n), s.Parent(n))
			}
		}
		s.Release()
	}
}

// TestSweepAbsorbing checks absorbing semantics: absorbing nodes settle as
// endpoints but never appear in the interior of any sweep path.
func TestSweepAbsorbing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomConnectedGraph(rng, 60, 150)
	absorbing := map[NodeID]bool{5: true, 17: true, 23: true, 42: true}
	src := NodeID(0)

	s := g.NewSweep()
	defer s.Release()
	s.Run(src, nil, func(n NodeID) bool { return absorbing[n] })

	for v := 0; v < 60; v++ {
		p := s.PathTo(NodeID(v))
		for i, n := range p {
			if absorbing[n] && i != len(p)-1 && n != src {
				t.Fatalf("absorbing node %d interior to path %v", n, p)
			}
		}
	}

	// Cross-check each absorbing node's distance against a masked
	// ShortestPath that blocks the other absorbing nodes.
	for a := range absorbing {
		mask := NewMask()
		for b := range absorbing {
			if b != a {
				mask.BlockNode(b)
			}
		}
		p, d := g.ShortestPath(src, a, mask)
		if (p == nil) != !s.Reached(a) {
			t.Fatalf("absorbing %d: reachability mismatch", a)
		}
		if p != nil && d != s.Dist(a) {
			t.Fatalf("absorbing %d: dist %v, masked SPF %v", a, s.Dist(a), d)
		}
	}
}

// TestShortestPathEarlyExitMatchesFullTree verifies the uncached early-exit
// single-target path is identical to the one read off the full tree.
func TestShortestPathEarlyExitMatchesFullTree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		g := randomConnectedGraph(rng, 40, 90)
		src := NodeID(rng.Intn(40))
		tr := g.Dijkstra(src, nil)
		for v := 0; v < 40; v++ {
			dst := NodeID(v)
			p, d := g.ShortestPath(src, dst, nil)
			full := tr.PathTo(dst)
			if tr.Dist[dst] != d || len(p) != len(full) {
				t.Fatalf("trial %d %d→%d: early-exit (%v,%v) vs full (%v,%v)",
					trial, src, dst, p, d, full, tr.Dist[dst])
			}
			for i := range p {
				if p[i] != full[i] {
					t.Fatalf("trial %d %d→%d: path %v vs %v", trial, src, dst, p, full)
				}
			}
		}
	}
}

// TestSweepSteadyStateAllocs is the allocation-regression guard from the PR 2
// issue: once warm, a full sweep plus path extraction performs zero heap
// allocations. GC is disabled so a collection cannot clear the sweep pool or
// shrink the pooled arrays mid-measurement.
func TestSweepSteadyStateAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	rng := rand.New(rand.NewSource(17))
	g := randomConnectedGraph(rng, 200, 600)
	s := g.NewSweep()
	defer s.Release()

	absorbing := func(n NodeID) bool { return n%17 == 0 && n != 0 }
	buf := make(Path, 0, 256)
	var sink float64

	// Warm everything outside the measurement: CSR view, scratch arrays,
	// heap capacity, path buffer.
	s.Run(0, nil, absorbing)
	buf = s.AppendPathFrom(buf[:0], NodeID(199))

	allocs := testing.AllocsPerRun(50, func() {
		s.Run(0, nil, absorbing)
		buf = s.AppendPathFrom(buf[:0], NodeID(199))
		sink += s.Dist(NodeID(199))
	})
	if allocs != 0 {
		t.Fatalf("steady-state sweep allocated %.1f times per run, want 0", allocs)
	}
	_ = sink
}

// BenchmarkDijkstra measures the full shortest-path-tree computation (sweep +
// copy-out) on an evaluation-scale graph.
func BenchmarkDijkstra(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	g := randomConnectedGraph(rng, 200, 600)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Dijkstra(NodeID(i%200), nil)
	}
}

// BenchmarkSweep measures the raw pooled sweep without the SPTree copy-out —
// the primitive under candidate enumeration and NearestOf.
func BenchmarkSweep(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	g := randomConnectedGraph(rng, 200, 600)
	s := g.NewSweep()
	defer s.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(NodeID(i%200), nil, nil)
	}
}

// BenchmarkShortestPathEarlyExit measures the uncached single-target path,
// which stops as soon as the destination settles.
func BenchmarkShortestPathEarlyExit(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	g := randomConnectedGraph(rng, 200, 600)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.ShortestPath(NodeID(i%200), NodeID((i+1)%200), nil)
	}
}

// megascaleLattice builds a W×H grid graph with diagonal shortcuts — a cheap
// deterministic stand-in for a megascale topology (unit-ish degree ~5,
// spatially local edges) that costs O(N) to construct, so benchmarks don't
// pay Waxman generation to measure sweep relaxation.
func megascaleLattice(w, h int) *Graph {
	g := New(w * h)
	id := func(x, y int) NodeID { return NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.SetPos(id(x, y), Point{X: float64(x), Y: float64(y)})
			if x+1 < w {
				_ = g.AddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < h {
				_ = g.AddEdge(id(x, y), id(x, y+1), 1)
			}
			if x+1 < w && y+1 < h && (x+y)%3 == 0 {
				_ = g.AddEdge(id(x, y), id(x+1, y+1), 1.5)
			}
		}
	}
	return g
}

// BenchmarkSweepMaskedMegascale measures the full relaxation sweep over a
// ~10⁵-node graph with a few thousand blocked nodes — the megascale-study hot
// path — comparing the map-backed mask representation against the dense
// bitset. The per-arc NodeBlocked probe is the only difference between the
// sub-benchmarks.
func BenchmarkSweepMaskedMegascale(b *testing.B) {
	const w, h = 320, 320 // 102,400 nodes
	g := megascaleLattice(w, h)
	s := g.NewSweep()
	defer s.Release()

	// Block a dispersed ~2% of nodes (never the source), same set for both
	// representations.
	blocked := make([]NodeID, 0, w*h/50)
	for n := 51; n < w*h; n += 50 {
		blocked = append(blocked, NodeID(n))
	}
	mapMask := &Mask{nodes: make(map[NodeID]bool), edges: map[EdgeID]bool{}}
	for _, n := range blocked { // bypass promotion: keep the map representation
		mapMask.nodes[n] = true
		mapMask.nnodes++
		mapMask.fp ^= nodeMix(n)
		mapMask.count++
	}
	bitMask := NewMaskWithCapacity(w * h).BlockNodes(blocked...)
	if mapMask.bits != nil || bitMask.bits == nil {
		b.Fatal("benchmark masks not in the intended representations")
	}
	if mapMask.Fingerprint() != bitMask.Fingerprint() {
		b.Fatal("benchmark masks disagree")
	}

	for _, bc := range []struct {
		name string
		mask *Mask
	}{{"map", mapMask}, {"bitset", bitMask}} {
		b.Run(bc.name, func(b *testing.B) {
			s.Run(0, bc.mask, nil) // warm CSR + arena outside the timer
			want := s.SettledCount()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Run(0, bc.mask, nil)
			}
			b.StopTimer()
			if s.SettledCount() != want {
				b.Fatalf("settled count drifted: %d vs %d", s.SettledCount(), want)
			}
		})
	}
}
