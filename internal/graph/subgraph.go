package graph

import "fmt"

// Subgraph extracts the induced subgraph over the given node subset. Nodes
// are renumbered densely in the order given; the returned NodeMap translates
// between the two ID spaces. Duplicate or unknown nodes are rejected.
func (g *Graph) Subgraph(nodes []NodeID) (*Graph, *NodeMap, error) {
	nm := &NodeMap{
		toSub:  make(map[NodeID]NodeID, len(nodes)),
		toFull: make([]NodeID, 0, len(nodes)),
	}
	sub := New(len(nodes))
	for i, n := range nodes {
		if !g.valid(n) {
			return nil, nil, fmt.Errorf("subgraph: unknown node %d", n)
		}
		if _, dup := nm.toSub[n]; dup {
			return nil, nil, fmt.Errorf("subgraph: duplicate node %d", n)
		}
		nm.toSub[n] = NodeID(i)
		nm.toFull = append(nm.toFull, n)
		sub.SetPos(NodeID(i), g.Pos(n))
	}
	for _, n := range nodes {
		for _, arc := range g.adj[n] {
			peer, ok := nm.toSub[arc.To]
			if !ok {
				continue
			}
			a, b := nm.toSub[n], peer
			if a < b { // add each undirected edge once
				if err := sub.AddEdge(a, b, arc.Weight); err != nil {
					return nil, nil, fmt.Errorf("subgraph: %w", err)
				}
			}
		}
	}
	return sub, nm, nil
}

// NodeMap translates node IDs between a graph and one of its subgraphs.
type NodeMap struct {
	toSub  map[NodeID]NodeID
	toFull []NodeID
}

// ToSub maps a full-graph node into the subgraph ID space.
func (m *NodeMap) ToSub(n NodeID) (NodeID, bool) {
	s, ok := m.toSub[n]
	return s, ok
}

// ToFull maps a subgraph node back into the full-graph ID space.
func (m *NodeMap) ToFull(n NodeID) (NodeID, bool) {
	if n < 0 || int(n) >= len(m.toFull) {
		return Invalid, false
	}
	return m.toFull[n], true
}

// PathToFull translates a subgraph path into full-graph IDs.
func (m *NodeMap) PathToFull(p Path) (Path, error) {
	out := make(Path, len(p))
	for i, n := range p {
		f, ok := m.ToFull(n)
		if !ok {
			return nil, fmt.Errorf("node map: %d not in subgraph", n)
		}
		out[i] = f
	}
	return out, nil
}
